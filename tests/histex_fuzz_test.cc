// HISTEX fuzz harness tests: seeded random histories over engines ×
// per-transaction level mixes × shard counts, every commit certified by
// the online checker.  Environment knobs (all optional):
//
//   HISTEX_SEEDS=N        seeds per configuration (default 5)
//   HISTEX_TXNS=N         transactions per run (default 200)
//   HISTEX_FAILURE_DIR=D  write failing-seed replay files into D
//   HISTEX_REPLAY=CFG     HistexFuzz.Replay runs this one configuration
//
// A failing run prints (and, with HISTEX_FAILURE_DIR, persists) a
// copy-pasteable replay command; the nightly CI job uploads those files
// as artifacts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "critique/harness/histex.h"

namespace critique {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

int SeedsPerConfig() { return std::max(1, EnvInt("HISTEX_SEEDS", 5)); }
int TxnsPerRun() { return std::max(1, EnvInt("HISTEX_TXNS", 200)); }

// Runs one configuration and asserts the certification invariants every
// stock engine must keep: zero violations, and the serialization-abort
// split counters summing to the total.
void CheckRun(HistexConfig cfg) {
  cfg.txns = TxnsPerRun();
  HistexResult r = RunHistex(cfg);
  if (!r.ok) {
    const char* dir = std::getenv("HISTEX_FAILURE_DIR");
    if (dir != nullptr && *dir != '\0') {
      std::ofstream out(std::string(dir) + "/histex_seed" +
                        std::to_string(cfg.seed) + "_" +
                        LevelToken(cfg.engine) + ".txt");
      out << cfg.ToString() << "\n" << ReplayCommand(cfg) << "\n"
          << r.detail << "\n";
    }
    ADD_FAILURE() << "histex run failed: " << cfg.ToString() << "\n"
                  << r.detail;
    return;
  }
  EXPECT_EQ(r.report.violations, 0u) << cfg.ToString();
  if (cfg.shards == 1) {
    EXPECT_EQ(r.committed, r.report.commits_certified) << cfg.ToString();
  } else {
    // A cross-shard transaction is certified once per participant shard.
    EXPECT_GE(r.report.commits_certified, r.committed) << cfg.ToString();
  }
  // Satellite invariant: the abort-split counters account for every
  // serialization abort, at every level mix and shard count.
  EXPECT_EQ(r.stats.fcw_aborts + r.stats.ssi_aborts + r.stats.in_doubt_aborts,
            r.stats.serialization_aborts)
      << cfg.ToString();
}

void Sweep(IsolationLevel engine, std::vector<IsolationLevel> mix,
           int shards, StorageBackend backend = StorageBackend::kMap) {
  for (int s = 0; s < SeedsPerConfig(); ++s) {
    HistexConfig cfg;
    cfg.seed = 1 + static_cast<uint64_t>(s);
    cfg.engine = engine;
    cfg.txn_levels = mix;
    cfg.shards = shards;
    cfg.backend = backend;
    CheckRun(cfg);
  }
}

TEST(HistexFuzz, LockingSerializable) {
  Sweep(IsolationLevel::kSerializable, {}, 1);
}

TEST(HistexFuzz, LockingMixedTable2Levels) {
  Sweep(IsolationLevel::kSerializable,
        {IsolationLevel::kReadCommitted, IsolationLevel::kSerializable,
         IsolationLevel::kCursorStability, IsolationLevel::kRepeatableRead},
        1);
}

TEST(HistexFuzz, LockingWeakEngineWithReadUncommitted) {
  Sweep(IsolationLevel::kReadCommitted,
        {IsolationLevel::kReadUncommitted, IsolationLevel::kReadCommitted},
        1);
}

TEST(HistexFuzz, SnapshotIsolation) {
  Sweep(IsolationLevel::kSnapshotIsolation, {}, 1);
}

TEST(HistexFuzz, SnapshotIsolationWithReadCommitted) {
  Sweep(IsolationLevel::kSnapshotIsolation,
        {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshotIsolation},
        1);
}

TEST(HistexFuzz, SerializableSI) {
  Sweep(IsolationLevel::kSerializableSI, {}, 1);
}

TEST(HistexFuzz, SerializableSIFullMix) {
  Sweep(IsolationLevel::kSerializableSI,
        {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshotIsolation,
         IsolationLevel::kSerializableSI},
        1);
}

// --- the storage-backend dimension: the hash backend under the same
// adversarial coverage that found the PR 9 SI bug --------------------------

TEST(HistexFuzz, SnapshotIsolationHashBackend) {
  Sweep(IsolationLevel::kSnapshotIsolation, {}, 1, StorageBackend::kHash);
}

TEST(HistexFuzz, SerializableSIFullMixHashBackend) {
  Sweep(IsolationLevel::kSerializableSI,
        {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshotIsolation,
         IsolationLevel::kSerializableSI},
        1, StorageBackend::kHash);
}

TEST(HistexFuzz, OracleReadConsistencyHashBackend) {
  Sweep(IsolationLevel::kOracleReadConsistency, {}, 1, StorageBackend::kHash);
}

TEST(HistexFuzz, ShardedSerializableSIHashBackend) {
  Sweep(IsolationLevel::kSerializableSI,
        {IsolationLevel::kSnapshotIsolation, IsolationLevel::kSerializableSI},
        3, StorageBackend::kHash);
}

TEST(HistexFuzz, BackendsAgreeOnSeededRuns) {
  // The two backends must drive bit-identical histories: same commit and
  // abort counts, same certification totals, seed by seed.
  for (int s = 0; s < SeedsPerConfig(); ++s) {
    HistexConfig cfg;
    cfg.seed = 11 + static_cast<uint64_t>(s);
    cfg.engine = IsolationLevel::kSnapshotIsolation;
    cfg.txns = TxnsPerRun();
    cfg.backend = StorageBackend::kMap;
    HistexResult map_run = RunHistex(cfg);
    cfg.backend = StorageBackend::kHash;
    HistexResult hash_run = RunHistex(cfg);
    EXPECT_EQ(map_run.committed, hash_run.committed) << cfg.ToString();
    EXPECT_EQ(map_run.aborted, hash_run.aborted) << cfg.ToString();
    EXPECT_EQ(map_run.report.commits_certified,
              hash_run.report.commits_certified)
        << cfg.ToString();
    EXPECT_EQ(map_run.report.violations, hash_run.report.violations)
        << cfg.ToString();
  }
}

TEST(HistexFuzz, ShardedLockingSerializable) {
  Sweep(IsolationLevel::kSerializable, {}, 3);
}

TEST(HistexFuzz, ShardedSerializableSIFullMix) {
  Sweep(IsolationLevel::kSerializableSI,
        {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshotIsolation,
         IsolationLevel::kSerializableSI},
        3);
}

TEST(HistexFuzz, DeterministicReplay) {
  HistexConfig cfg;
  cfg.seed = 42;
  cfg.engine = IsolationLevel::kSerializable;
  cfg.txn_levels = {IsolationLevel::kReadCommitted,
                    IsolationLevel::kSerializable};
  cfg.txns = 150;
  HistexResult a = RunHistex(cfg);
  HistexResult b = RunHistex(cfg);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.blocked_steps, b.blocked_steps);
  EXPECT_EQ(a.forced_rollbacks, b.forced_rollbacks);
  EXPECT_EQ(a.report.edges_added, b.report.edges_added);
  EXPECT_EQ(a.report.violations, b.report.violations);
}

TEST(HistexFuzz, ConfigRoundTrip) {
  HistexConfig cfg;
  cfg.seed = 99;
  cfg.engine = IsolationLevel::kSerializableSI;
  cfg.txn_levels = {IsolationLevel::kReadCommitted,
                    IsolationLevel::kSerializableSI};
  cfg.shards = 4;
  cfg.sessions = 7;
  cfg.txns = 321;
  cfg.items = 9;
  cfg.max_ops = 5;
  cfg.checker_prune_interval = 16;
  cfg.backend = StorageBackend::kHash;
  auto parsed = ParseHistexConfig(cfg.ToString());
  ASSERT_TRUE(parsed.has_value()) << cfg.ToString();
  EXPECT_EQ(parsed->ToString(), cfg.ToString());

  // Empty mix round-trips too.
  cfg.txn_levels.clear();
  parsed = ParseHistexConfig(cfg.ToString());
  ASSERT_TRUE(parsed.has_value()) << cfg.ToString();
  EXPECT_EQ(parsed->ToString(), cfg.ToString());

  EXPECT_FALSE(ParseHistexConfig("seed=1 bogus=2").has_value());
  EXPECT_FALSE(ParseHistexConfig("engine=nope").has_value());
  EXPECT_FALSE(ParseHistexConfig("store=btree").has_value());

  // The store token defaults to the reference backend when absent (old
  // replay lines stay replayable).
  auto legacy = ParseHistexConfig("seed=3 engine=si");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->backend, StorageBackend::kMap);
}

TEST(HistexFuzz, UnhonorableMixFailsFast) {
  // The SI engine cannot honor a Repeatable Read contract; the run must
  // refuse the configuration, not run it silently at another level.
  HistexConfig cfg;
  cfg.engine = IsolationLevel::kSnapshotIsolation;
  cfg.txn_levels = {IsolationLevel::kRepeatableRead};
  cfg.txns = 10;
  HistexResult r = RunHistex(cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.committed, 0u);
}

// Replays the configuration in HISTEX_REPLAY verbatim — the debugging
// entry point named by `ReplayCommand`.
TEST(HistexFuzz, Replay) {
  const char* spec = std::getenv("HISTEX_REPLAY");
  if (spec == nullptr || *spec == '\0') {
    GTEST_SKIP() << "set HISTEX_REPLAY='seed=... engine=...' to replay";
  }
  auto cfg = ParseHistexConfig(spec);
  ASSERT_TRUE(cfg.has_value()) << "unparseable HISTEX_REPLAY: " << spec;
  HistexResult r = RunHistex(*cfg);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.report.violations, 0u) << r.report.ToString();
}

}  // namespace
}  // namespace critique
