// Runner / Program tests: schedule semantics, lazy begins, blocked-step
// retries, drain, outcome classification, schedule helpers, and the
// stats/outcome consistency contract between the facade's counters and the
// runner's outcome classification.

#include <gtest/gtest.h>

#include <algorithm>

#include "critique/db/database.h"
#include "critique/engine/locking_engine.h"
#include "critique/exec/runner.h"

namespace critique {
namespace {

Database LockingDb(IsolationLevel level) {
  DbOptions options;
  options.engine_factory = [level] {
    return std::make_unique<LockingEngine>(level);
  };
  return Database(options);
}

// The invariant the EngineStats satellite promises: every transaction the
// runner classified must be visible in the engine counters, and commits
// plus aborts must add up to the number of finished transactions.
void ExpectStatsMatchOutcomes(const Database& db, const RunResult& result) {
  uint64_t committed = 0, app_aborted = 0, deadlocked = 0, serialization = 0;
  for (const auto& [txn, outcome] : result.outcomes) {
    (void)txn;
    switch (outcome) {
      case TxnOutcome::kCommitted:
        ++committed;
        break;
      case TxnOutcome::kAbortedByApplication:
        ++app_aborted;
        break;
      case TxnOutcome::kAbortedDeadlockVictim:
        ++deadlocked;
        break;
      case TxnOutcome::kAbortedSerialization:
        ++serialization;
        break;
    }
  }
  const EngineStats& stats = db.stats();
  EXPECT_EQ(stats.commits, committed) << stats.ToString();
  EXPECT_EQ(stats.aborts, app_aborted) << stats.ToString();
  EXPECT_EQ(stats.deadlock_aborts, deadlocked) << stats.ToString();
  EXPECT_EQ(stats.serialization_aborts, serialization) << stats.ToString();
  EXPECT_EQ(stats.finished_txns(), result.outcomes.size())
      << stats.ToString();
}

TEST(ParseScheduleTest, ParsesTokens) {
  EXPECT_EQ(ParseSchedule("1 2 1"), (std::vector<TxnId>{1, 2, 1}));
  EXPECT_TRUE(ParseSchedule("").empty());
}

TEST(ProgramTest, FluentConstructionCountsSteps) {
  Program p;
  p.Read("x").Write("x", Value(1)).Commit();
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.steps()[0].kind, StepKind::kOperation);
  EXPECT_EQ(p.steps()[2].kind, StepKind::kCommit);
}

TEST(TxnLocalsTest, GetSetDefaults) {
  TxnLocals l;
  EXPECT_TRUE(l.Get("missing").is_null());
  EXPECT_EQ(l.GetInt("missing"), 0);
  l.Set("a", Value(5));
  EXPECT_EQ(l.GetInt("a"), 5);
  l.SetReadSet("P", {"x", "y"});
  EXPECT_EQ(l.GetReadSet("P").size(), 2u);
  EXPECT_TRUE(l.GetReadSet("Q").empty());
}

TEST(RunnerTest, UnknownTxnInScheduleFails) {
  Database db(IsolationLevel::kSerializable);
  Runner runner(db);
  Program p;
  p.Commit();
  runner.AddProgram(1, std::move(p));
  auto result = runner.Run({1, 7});
  EXPECT_FALSE(result.ok());
}

TEST(RunnerTest, DrainCompletesUnscheduledSteps) {
  Database db(IsolationLevel::kSerializable);
  (void)db.Load("x", Value(1));
  Runner runner(db);
  Program p;
  p.Read("x").Write("x", Value(2)).Commit();
  runner.AddProgram(1, std::move(p));
  // Empty schedule: everything happens in the drain.
  auto result = runner.Run({});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(1));
  EXPECT_EQ(result->history.size(), 3u);
  ExpectStatsMatchOutcomes(db, *result);
}

TEST(RunnerTest, BeginFollowsScheduleOrder) {
  // Under SI the snapshot is taken at the first step: T2 beginning after
  // T1's commit must see T1's write.
  Database db(IsolationLevel::kSnapshotIsolation);
  (void)db.Load("x", Value(1));
  Runner runner(db);
  Program t1;
  t1.Write("x", Value(2)).Commit();
  Program t2;
  t2.Read("x", "seen").Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 1 2 2"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->locals.at(2).GetInt("seen"), 2);

  // Reversed: T2 begins first and must NOT see it.
  Database db2(IsolationLevel::kSnapshotIsolation);
  (void)db2.Load("x", Value(1));
  Runner runner2(db2);
  Program t1b;
  t1b.Write("x", Value(2)).Commit();
  Program t2b;
  t2b.Read("x", "seen").Read("x", "seen2").Commit();
  runner2.AddProgram(1, std::move(t1b));
  runner2.AddProgram(2, std::move(t2b));
  auto result2 = runner2.Run(ParseSchedule("2 1 1 2 2"));
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->locals.at(2).GetInt("seen2"), 1);
}

TEST(RunnerTest, BlockedStepRetriesAndSucceeds) {
  Database db = LockingDb(IsolationLevel::kReadCommitted);
  (void)db.Load("x", Value(1));
  Runner runner(db);
  Program t1;
  t1.Write("x", Value(2)).Commit();
  Program t2;
  t2.Read("x", "seen").Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  // T2's read lands while T1 holds the write lock: it must retry, then
  // observe the committed 2.
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 2 2"));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->blocked_retries, 0u);
  EXPECT_EQ(result->locals.at(2).GetInt("seen"), 2);
  ExpectStatsMatchOutcomes(db, *result);
}

TEST(RunnerTest, OutcomeClassification) {
  Database db = LockingDb(IsolationLevel::kRepeatableRead);
  (void)db.Load("x", Value(1));
  Runner runner(db);
  Program t1;  // will deadlock against t2
  t1.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 1);
    }).Commit();
  Program t2;
  t2.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 1);
    }).Commit();
  Program t3;  // aborts voluntarily
  t3.Read("x").Abort();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  runner.AddProgram(3, std::move(t3));
  auto result = runner.Run(ParseSchedule("1 2 3 3 1 2 1 2"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcomes.at(3), TxnOutcome::kAbortedByApplication);
  int deadlock_victims = 0, committed = 0;
  for (TxnId t : {1, 2}) {
    deadlock_victims +=
        result->outcomes.at(t) == TxnOutcome::kAbortedDeadlockVictim;
    committed += result->outcomes.at(t) == TxnOutcome::kCommitted;
  }
  EXPECT_EQ(deadlock_victims, 1);
  EXPECT_EQ(committed, 1);
  ExpectStatsMatchOutcomes(db, *result);
}

TEST(RunnerTest, SerializationOutcome) {
  Database db(IsolationLevel::kSnapshotIsolation);
  (void)db.Load("x", Value(1));
  Runner runner(db);
  Program t1;
  t1.Write("x", Value(2)).Commit();
  Program t2;
  t2.Write("x", Value(3)).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 1 2"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes.at(1), TxnOutcome::kCommitted);
  EXPECT_EQ(result->outcomes.at(2), TxnOutcome::kAbortedSerialization);
  EXPECT_TRUE(result->final_status.at(2).IsSerializationFailure());
  ExpectStatsMatchOutcomes(db, *result);
}

TEST(RunnerTest, RoundRobinCoversAllSteps) {
  Database db(IsolationLevel::kSerializable);
  Runner runner(db);
  Program t1;
  t1.Write("a", Value(1)).Commit();  // 2 steps
  Program t2;
  t2.Write("b", Value(1)).Write("c", Value(1)).Commit();  // 3 steps
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto schedule = runner.RoundRobinSchedule();
  EXPECT_EQ(schedule.size(), 5u);
  EXPECT_EQ(std::count(schedule.begin(), schedule.end(), 1), 2);
  EXPECT_EQ(std::count(schedule.begin(), schedule.end(), 2), 3);
}

TEST(RunnerTest, RandomScheduleIsPermutationOfSteps) {
  Database db(IsolationLevel::kSerializable);
  Runner runner(db);
  Program t1;
  t1.Write("a", Value(1)).Commit();
  Program t2;
  t2.Write("b", Value(1)).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  Rng rng(4);
  auto schedule = runner.RandomSchedule(rng);
  EXPECT_EQ(schedule.size(), 4u);
  EXPECT_EQ(std::count(schedule.begin(), schedule.end(), 1), 2);
  EXPECT_EQ(std::count(schedule.begin(), schedule.end(), 2), 2);
}

TEST(RunnerTest, FatalStepErrorSurfacesAsRunError) {
  Database db(IsolationLevel::kSerializable);
  Runner runner(db);
  Program p;
  p.Delete("never_existed").Commit();
  runner.AddProgram(1, std::move(p));
  auto result = runner.Run({1, 1});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
}

TEST(RunnerTest, UpdateStatementStep) {
  Database db(IsolationLevel::kSerializable);
  (void)db.Load("x", Value(10));
  Runner runner(db);
  Program p;
  p.UpdateAddStatement("x", 7).Commit();
  runner.AddProgram(1, std::move(p));
  auto result = runner.Run(runner.RoundRobinSchedule());
  ASSERT_TRUE(result.ok());
  Transaction reader = db.Begin();
  auto r = reader.GetScalar("x");
  EXPECT_TRUE(r->Equals(Value(17)));
  (void)reader.Commit();
}

TEST(RunnerTest, ExplicitIdsAndAutoIdsCoexist) {
  // A runner using explicit ids 1..2 must not collide with auto-assigned
  // inspection sessions begun afterwards.
  Database db(IsolationLevel::kSerializable);
  (void)db.Load("x", Value(1));
  Runner runner(db);
  Program t1;
  t1.Write("x", Value(2)).Commit();
  Program t2;
  t2.Read("x").Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  ASSERT_TRUE(runner.Run(runner.RoundRobinSchedule()).ok());
  Transaction after = db.Begin();
  EXPECT_GT(after.id(), 2);
  (void)after.Commit();
}

TEST(TxnOutcomeTest, Names) {
  EXPECT_EQ(TxnOutcomeName(TxnOutcome::kCommitted), "committed");
  EXPECT_EQ(TxnOutcomeName(TxnOutcome::kAbortedDeadlockVictim),
            "aborted (deadlock victim)");
}

}  // namespace
}  // namespace critique
