// Session executor (sched layer): the lock manager's release-notification
// hook (FIFO wakeup policy, S-batching, ReleaseAll cancellation), its
// exposure through EngineConcurrency / Database::SetLockWakeupHook, and
// the SessionExecutor itself — exact-count reconciliation over disjoint
// and hot keys, peak-open-session accounting, fairness under a hot key
// (no parked session starves, no polling), deadlock-retry integration,
// and a park/wakeup handoff smoke meant to run under --tsan (lost
// wakeups show up as a DrainFor timeout; races as TSan reports).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "critique/db/database.h"
#include "critique/engine/locking_engine.h"
#include "critique/lock/lock_manager.h"
#include "critique/sched/session_executor.h"

// Sanitized builds trade scale for instrumentation: keep the shapes, cut
// the session counts.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CRITIQUE_SANITIZED 1
#endif
#endif
#if !defined(CRITIQUE_SANITIZED) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define CRITIQUE_SANITIZED 1
#endif

namespace critique {
namespace {

using std::chrono::milliseconds;

LockSpec W(TxnId t, const ItemId& id) {
  return LockSpec::WriteItem(t, id, std::nullopt, std::nullopt);
}
LockSpec R(TxnId t, const ItemId& id) {
  return LockSpec::ReadItem(t, id, std::nullopt);
}

// ---------------------------------------------------------------------------
// LockManager release-notification hook
// ---------------------------------------------------------------------------

TEST(WakeupHookTest, FifoHeadWokenAloneForExclusive) {
  LockManager lm(4);
  std::vector<TxnId> woken;
  lm.SetWakeupHook([&](TxnId t) { woken.push_back(t); });

  auto h1 = lm.TryAcquire(W(1, "k"));
  ASSERT_TRUE(h1.ok());
  EXPECT_TRUE(lm.TryAcquire(W(2, "k")).status().IsWouldBlock());
  EXPECT_TRUE(lm.TryAcquire(W(3, "k")).status().IsWouldBlock());

  // Head of the FIFO only: T2 registered first, and an X waiter is woken
  // alone.
  lm.Release(*h1);
  EXPECT_EQ(woken, (std::vector<TxnId>{2}));

  auto h2 = lm.TryAcquire(W(2, "k"));
  ASSERT_TRUE(h2.ok());
  lm.Release(*h2);
  EXPECT_EQ(woken, (std::vector<TxnId>{2, 3}));

  LockStats s = lm.stats();
  EXPECT_EQ(s.coop_parks, 2u);
  EXPECT_EQ(s.wakeups, 2u);
}

TEST(WakeupHookTest, SharedWaitersBatchUpToFirstExclusive) {
  LockManager lm(4);
  std::vector<TxnId> woken;
  lm.SetWakeupHook([&](TxnId t) { woken.push_back(t); });

  auto h1 = lm.TryAcquire(W(1, "k"));
  ASSERT_TRUE(h1.ok());
  EXPECT_TRUE(lm.TryAcquire(R(2, "k")).status().IsWouldBlock());
  EXPECT_TRUE(lm.TryAcquire(R(3, "k")).status().IsWouldBlock());
  EXPECT_TRUE(lm.TryAcquire(W(4, "k")).status().IsWouldBlock());
  EXPECT_TRUE(lm.TryAcquire(R(5, "k")).status().IsWouldBlock());

  // Readers admit together: the S head batches the later S waiters, but
  // only up to the first X — T5 queued behind the writer stays parked.
  lm.Release(*h1);
  EXPECT_EQ(woken, (std::vector<TxnId>{2, 3}));
}

TEST(WakeupHookTest, ReRegistrationKeepsFifoSeniority) {
  // An X waiter woken by one S holder's release while another S holder
  // remains must re-register — with its ORIGINAL seniority.  A fresh seq
  // per registration would rotate it behind every waiter that arrived
  // while it was being woken, and reader churn could starve it.
  LockManager lm(4);
  std::vector<TxnId> woken;
  lm.SetWakeupHook([&](TxnId t) { woken.push_back(t); });

  auto h1 = lm.TryAcquire(R(1, "k"));
  auto h2 = lm.TryAcquire(R(2, "k"));
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_TRUE(lm.TryAcquire(W(3, "k")).status().IsWouldBlock());

  // T1's release wakes T3 (head of the queue) — prematurely: T2 still
  // holds S.
  lm.Release(*h1);
  ASSERT_EQ(woken, (std::vector<TxnId>{3}));

  // T4 queues up while T3 is between wakeup and retry, then T3's retry
  // still conflicts and re-registers.
  EXPECT_TRUE(lm.TryAcquire(W(4, "k")).status().IsWouldBlock());
  EXPECT_TRUE(lm.TryAcquire(W(3, "k")).status().IsWouldBlock());

  // The last release must wake T3 again, not T4: T3's wait began first.
  lm.Release(*h2);
  ASSERT_EQ(woken, (std::vector<TxnId>{3, 3}));

  auto h3 = lm.TryAcquire(W(3, "k"));
  ASSERT_TRUE(h3.ok());
  EXPECT_EQ(woken.size(), 2u);  // and T3 was not left registered twice
  lm.ReleaseAll(3);
  EXPECT_EQ(woken, (std::vector<TxnId>{3, 3, 4}));
}

TEST(WakeupHookTest, ReleaseAllNeverMissesARacingFirstWaiter) {
  // Regression stress for a lost-wakeup race: ReleaseAll used to read
  // the cooperative-waiter count once, before taking any bucket latch.
  // A TryAcquire registering the FIRST waiter (under all bucket latches)
  // could land between that read and the bucket loop; ReleaseAll then
  // dropped the conflicting lock without collecting the wakeup and the
  // waiter stayed parked forever.  The count is now re-read under each
  // bucket latch, which orders it against registration.
  LockManager lm(4);
  std::mutex mu;
  std::condition_variable cv;
  bool woken = false;
  lm.SetWakeupHook([&](TxnId) {
    {
      std::lock_guard<std::mutex> l(mu);
      woken = true;
    }
    cv.notify_all();
  });
#if defined(CRITIQUE_SANITIZED)
  const int kIters = 300;
#else
  const int kIters = 3000;
#endif
  for (int i = 0; i < kIters; ++i) {
    {
      std::lock_guard<std::mutex> l(mu);
      woken = false;
    }
    ASSERT_TRUE(lm.TryAcquire(W(1, "k")).ok());
    std::thread releaser([&] { lm.ReleaseAll(1); });
    Result<LockHandle> r = lm.TryAcquire(W(2, "k"));
    if (r.status().IsWouldBlock()) {
      std::unique_lock<std::mutex> l(mu);
      const bool ok = cv.wait_for(l, std::chrono::seconds(10),
                                  [&] { return woken; });
      EXPECT_TRUE(ok) << "lost wakeup on iteration " << i;
      if (!ok) {
        releaser.join();
        break;
      }
    }
    releaser.join();
    lm.ReleaseAll(2);
  }
  EXPECT_EQ(lm.HeldCount(), 0u);
}

TEST(WakeupHookTest, ReleaseAllWakesAcrossItemsAndCancelsOwnRegistration) {
  LockManager lm(4);
  std::vector<TxnId> woken;
  lm.SetWakeupHook([&](TxnId t) { woken.push_back(t); });

  ASSERT_TRUE(lm.TryAcquire(W(1, "a")).ok());
  ASSERT_TRUE(lm.TryAcquire(W(1, "b")).ok());
  EXPECT_TRUE(lm.TryAcquire(W(2, "a")).status().IsWouldBlock());
  EXPECT_TRUE(lm.TryAcquire(W(3, "b")).status().IsWouldBlock());
  // T2 is blocked AND holds nothing T1 needs; now make T2 also a waiter
  // that T1's rollback must not wake twice or strand.
  lm.ReleaseAll(1);
  std::sort(woken.begin(), woken.end());
  EXPECT_EQ(woken, (std::vector<TxnId>{2, 3}));

  // A waiter rolled back while parked cancels its own registration: no
  // stale wakeup fires later.
  woken.clear();
  auto ha = lm.TryAcquire(W(2, "a"));
  ASSERT_TRUE(ha.ok());
  EXPECT_TRUE(lm.TryAcquire(W(3, "a")).status().IsWouldBlock());
  lm.ReleaseAll(3);  // T3 gives up while parked
  lm.Release(*ha);
  EXPECT_TRUE(woken.empty());
}

TEST(WakeupHookTest, DeadlockVerdictLeavesNoRegistration) {
  LockManager lm(4);
  std::vector<TxnId> woken;
  lm.SetWakeupHook([&](TxnId t) { woken.push_back(t); });

  ASSERT_TRUE(lm.TryAcquire(W(1, "a")).ok());
  ASSERT_TRUE(lm.TryAcquire(W(2, "b")).ok());
  EXPECT_TRUE(lm.TryAcquire(W(2, "a")).status().IsWouldBlock());
  // T1 -> b closes the cycle: requester is the victim, and the verdict
  // must leave no wakeup registration behind for T1.
  EXPECT_TRUE(lm.TryAcquire(W(1, "b")).status().IsDeadlock());

  lm.ReleaseAll(1);  // the victim rolls back; its lock on "a" wakes T2
  EXPECT_EQ(woken, (std::vector<TxnId>{2}));
  lm.ReleaseAll(2);
  EXPECT_EQ(woken.size(), 1u);  // nobody is registered for T1 anymore
}

TEST(WakeupHookTest, PredicateWaitersWokenByItemRelease) {
  LockManager lm(4);
  std::vector<TxnId> woken;
  lm.SetWakeupHook([&](TxnId t) { woken.push_back(t); });

  auto h = lm.TryAcquire(W(1, "x"));
  ASSERT_TRUE(h.ok());
  // A predicate waiter structurally overlapping item "x".
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WritePredicate(2, Predicate::KeyIs("x")))
          .status()
          .IsWouldBlock());
  lm.Release(*h);
  EXPECT_EQ(woken, (std::vector<TxnId>{2}));
}

// ---------------------------------------------------------------------------
// Hook exposure through EngineConcurrency / the Database facade
// ---------------------------------------------------------------------------

TEST(WakeupHookTest, DatabaseExposesHookThroughEngineConcurrency) {
  Database db(IsolationLevel::kSerializable);
  std::mutex mu;
  std::vector<TxnId> woken;
  db.SetLockWakeupHook([&](TxnId t) {
    std::lock_guard<std::mutex> lk(mu);
    woken.push_back(t);
  });
  ASSERT_TRUE(db.Load("x", Value(1)).ok());

  Transaction t1 = db.Begin();
  Transaction t2 = db.Begin();
  ASSERT_TRUE(t1.Put("x", Value(2)).ok());
  auto blocked = t2.Get("x");
  ASSERT_TRUE(blocked.status().IsWouldBlock());
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_TRUE(woken.empty());
  }
  ASSERT_TRUE(t1.Commit().ok());  // releases T1's X lock -> wakes T2
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(woken, (std::vector<TxnId>{t2.id()}));
  }
  ASSERT_TRUE(t2.Get("x").ok());
  ASSERT_TRUE(t2.Commit().ok());

  // Uninstalling requires quiescence and stops further notifications.
  db.SetLockWakeupHook(nullptr);
  Transaction t3 = db.Begin();
  ASSERT_TRUE(t3.Put("x", Value(3)).ok());
  ASSERT_TRUE(t3.Commit().ok());
  std::lock_guard<std::mutex> lk(mu);
  EXPECT_EQ(woken.size(), 1u);
}

// ---------------------------------------------------------------------------
// SessionExecutor
// ---------------------------------------------------------------------------

DbOptions CoopOptions(IsolationLevel level, int txn_retries = 64) {
  DbOptions opt(level);
  opt.mode = ConcurrencyMode::kCooperative;
  opt.retry_policy = std::make_shared<LimitedRetryPolicy>(txn_retries, 0);
  return opt;
}

Status IncrementStep(Transaction& txn, const ItemId& key) {
  return txn.Update(key, [](const std::optional<Row>& r) {
    const int64_t v = r.has_value() && !r->scalar().is_null()
                          ? r->scalar().AsInt()
                          : 0;
    return Row::Scalar(Value(v + 1));
  });
}

int64_t ReadCount(Database& db, const ItemId& key) {
  Transaction t = db.Begin();
  auto v = t.GetScalar(key);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  const int64_t out = v.ok() && !v->is_null() ? v->AsInt() : 0;
  EXPECT_TRUE(t.Commit().ok());
  return out;
}

TEST(SessionExecutorTest, DisjointSessionsAllCommitExactCounts) {
  const int kSessions = 2000;
  Database db(CoopOptions(IsolationLevel::kSerializable));
  SessionExecutorOptions opt;
  opt.workers = 4;
  SessionExecutor ex(db, opt);
  std::atomic<int> ok_done{0};
  for (int i = 0; i < kSessions; ++i) {
    const ItemId key = "k" + std::to_string(i);
    ex.Submit(1,
              [key](Transaction& txn, uint64_t) {
                return IncrementStep(txn, key);
              },
              [&](uint64_t, const Status& s) { ok_done += s.ok(); });
  }
  ex.Drain();
  SessionExecutorStats st = ex.stats();
  EXPECT_EQ(st.submitted, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(st.completed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(st.committed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(ok_done.load(), kSessions);
  EXPECT_EQ(db.open_transactions(), 0);
  for (int i = 0; i < kSessions; i += 97) {
    EXPECT_EQ(ReadCount(db, "k" + std::to_string(i)), 1);
  }
}

TEST(SessionExecutorTest, PeakOpenSessionsReachesSubmitted) {
  const int kSessions = 500;
  Database db(CoopOptions(IsolationLevel::kSnapshotIsolation));
  SessionExecutorOptions opt;
  opt.workers = 4;
  opt.start_paused = true;
  opt.commit_barrier = kSessions;
  SessionExecutor ex(db, opt);
  for (int i = 0; i < kSessions; ++i) {
    const ItemId key = "p" + std::to_string(i);
    ex.Submit(1, [key](Transaction& txn, uint64_t) {
      return txn.Put(key, Value(1));
    });
  }
  ex.Resume();
  ex.Drain();
  SessionExecutorStats st = ex.stats();
  EXPECT_EQ(st.committed, static_cast<uint64_t>(kSessions));
  // The commit barrier held the doors: every session was open at once.
  EXPECT_GE(st.peak_open_sessions, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(db.open_transactions(), 0);
}

TEST(SessionExecutorTest, HotKeyFairnessNoParkedSessionStarves) {
  // One X-locked key, hundreds of parked writers, 4 workers.  Every
  // session must drain through the FIFO wait list — a starved parked
  // session shows up as a DrainFor timeout — and the wait path must be
  // event-driven: every cooperative park is resolved by a wakeup, never
  // by a timeout or a poll.
  const int kSessions = 256;
  Database db(CoopOptions(IsolationLevel::kSerializable));
  ASSERT_TRUE(db.Load("hot", Value(0)).ok());
  SessionExecutorOptions opt;
  opt.workers = 4;
  SessionExecutor ex(db, opt);
  for (int i = 0; i < kSessions; ++i) {
    ex.Submit(1, [i](Transaction& txn, uint64_t) {
      return txn.Put("hot", Value(i));  // blind write: X lock, no upgrade
    });
  }
  ASSERT_TRUE(ex.DrainFor(milliseconds(60000)));
  SessionExecutorStats st = ex.stats();
  EXPECT_EQ(st.committed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.parks, 0u);

  auto* engine = dynamic_cast<LockingEngine*>(&db.engine());
  ASSERT_NE(engine, nullptr);
  LockStats ls = engine->lock_stats();
  EXPECT_EQ(ls.timeouts, 0u);        // nobody waited on a clock
  EXPECT_GT(ls.wakeups, 0u);         // the hook, not polling, resumed them
  EXPECT_EQ(ls.coop_parks, ls.wakeups);  // every park ended in a wakeup
  EXPECT_EQ(st.parks, ls.coop_parks);
}

TEST(SessionExecutorTest, HotKeyIncrementsReconcileThroughDeadlockRetries) {
  // Read-modify-write on one key under locking SERIALIZABLE: the S->X
  // upgrade pattern deadlocks constantly, so this drives the executor's
  // abort -> RetryPolicy -> re-enqueue loop hard.  Exactly one increment
  // per session must survive.  Backoff is load-bearing: with zero-delay
  // retries the aborted sessions re-take S immediately and the parked
  // X waiter's window never opens under a sanitizer's slowdown.
  const int kSessions = 96;
  DbOptions dbo(IsolationLevel::kSerializable);
  dbo.mode = ConcurrencyMode::kCooperative;
  dbo.retry_policy = std::make_shared<ExponentialBackoffRetryPolicy>(1 << 20);
  Database db(dbo);
  ASSERT_TRUE(db.Load("ctr", Value(0)).ok());
  SessionExecutorOptions opt;
  opt.workers = 4;
  SessionExecutor ex(db, opt);
  for (int i = 0; i < kSessions; ++i) {
    ex.Submit(1, [](Transaction& txn, uint64_t) {
      return IncrementStep(txn, "ctr");
    });
  }
  ASSERT_TRUE(ex.DrainFor(milliseconds(120000)));
  SessionExecutorStats st = ex.stats();
  EXPECT_EQ(st.committed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(ReadCount(db, "ctr"), kSessions);
}

TEST(SessionExecutorTest, ContendedSnapshotIsolationRetriesToExactCount) {
  // First-Committer-Wins refusals (kSerializationFailure) re-enqueue
  // through the policy — with backoff, so the timer path runs too.
  const int kSessions = 1000;
  const int kKeys = 32;
  DbOptions dbo(IsolationLevel::kSnapshotIsolation);
  dbo.mode = ConcurrencyMode::kCooperative;
  dbo.retry_policy = std::make_shared<ExponentialBackoffRetryPolicy>(
      1 << 20, std::chrono::microseconds(50), std::chrono::microseconds(800));
  Database db(dbo);
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(db.Load("s" + std::to_string(k), Value(0)).ok());
  }
  SessionExecutorOptions opt;
  opt.workers = 4;
  SessionExecutor ex(db, opt);
  for (int i = 0; i < kSessions; ++i) {
    const ItemId key = "s" + std::to_string(i % kKeys);
    ex.Submit(1, [key](Transaction& txn, uint64_t) {
      return IncrementStep(txn, key);
    });
  }
  ASSERT_TRUE(ex.DrainFor(milliseconds(120000)));
  SessionExecutorStats st = ex.stats();
  EXPECT_EQ(st.committed, static_cast<uint64_t>(kSessions));
  EXPECT_GT(st.retries, 0u);  // FCW definitely fired at this contention
  int64_t sum = 0;
  for (int k = 0; k < kKeys; ++k) sum += ReadCount(db, "s" + std::to_string(k));
  EXPECT_EQ(sum, kSessions);
}

TEST(SessionExecutorTest, ParkWakeupHandoffNoLostWakeups) {
  // The TSan smoke: few workers, many sessions hammering a handful of
  // keys in *different orders* (so parks, wakeups, deadlock aborts, and
  // retries all interleave).  A lost wakeup wedges a parked session
  // forever and fails the DrainFor; a racy handoff is a TSan report.
  const int kKeys = 8;
#if defined(CRITIQUE_SANITIZED)
  const int kSessions = 256;
#else
  const int kSessions = 512;
#endif
  Database db(CoopOptions(IsolationLevel::kSerializable, 1 << 20));
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(db.Load("h" + std::to_string(k), Value(0)).ok());
  }
  SessionExecutorOptions opt;
  opt.workers = 2;
  SessionExecutor ex(db, opt);
  for (int i = 0; i < kSessions; ++i) {
    // Each session writes two hot keys; odd sessions in reverse order,
    // manufacturing lock-order cycles on purpose.
    const ItemId a = "h" + std::to_string(i % kKeys);
    const ItemId b = "h" + std::to_string((i + 3) % kKeys);
    const bool flip = (i % 2) != 0;
    ex.Submit(2, [a, b, flip, i](Transaction& txn, uint64_t step) {
      const ItemId& key = (step == 0) == flip ? b : a;
      return txn.Put(key, Value(i));
    });
  }
  ASSERT_TRUE(ex.DrainFor(milliseconds(120000)));
  SessionExecutorStats st = ex.stats();
  EXPECT_EQ(st.completed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(st.committed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(db.open_transactions(), 0);
}

TEST(SessionExecutorTest, ExactCountReconciliationManySessions) {
  // The C10K claim at test scale: massively more open sessions than
  // workers, every one of them open concurrently at some point is not
  // asserted here (that is the peak test / bench) — what is asserted is
  // exact accounting: every session commits exactly once and every
  // increment lands.  Snapshot Isolation keeps the per-op cost flat at
  // this width.
#if defined(CRITIQUE_SANITIZED)
  const int kSessions = 20000;
#else
  const int kSessions = 100000;
#endif
  Database db(CoopOptions(IsolationLevel::kSnapshotIsolation));
  SessionExecutorOptions opt;
  opt.workers = 8;
  SessionExecutor ex(db, opt);
  std::atomic<uint64_t> acked{0};
  for (int i = 0; i < kSessions; ++i) {
    const ItemId key = "m" + std::to_string(i);
    ex.Submit(1,
              [key](Transaction& txn, uint64_t) {
                return IncrementStep(txn, key);
              },
              [&](uint64_t, const Status& s) { acked += s.ok(); });
  }
  ex.Drain();
  SessionExecutorStats st = ex.stats();
  EXPECT_EQ(st.committed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(acked.load(), static_cast<uint64_t>(kSessions));
  EXPECT_EQ(db.open_transactions(), 0);
  // Spot-check reconciliation across the key space.
  for (int i = 0; i < kSessions; i += 997) {
    EXPECT_EQ(ReadCount(db, "m" + std::to_string(i)), 1);
  }
}

TEST(SessionExecutorTest, NonRetryableErrorFinishesSessionWithStatus) {
  Database db(CoopOptions(IsolationLevel::kSerializable));
  SessionExecutor ex(db);
  Status seen = Status::OK();
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ex.Submit(1,
            [](Transaction& txn, uint64_t) {
              return txn.Erase("never-existed");  // NotFound: semantic, final
            },
            [&](uint64_t, const Status& s) {
              std::lock_guard<std::mutex> lk(mu);
              seen = s;
              done = true;
              cv.notify_all();
            });
  ex.Drain();
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return done; });
  EXPECT_TRUE(seen.IsNotFound());
  EXPECT_EQ(ex.stats().failed, 1u);
  EXPECT_EQ(db.open_transactions(), 0);
}

TEST(SessionExecutorTest, DestructorRollsBackUnfinishedSessions) {
  Database db(CoopOptions(IsolationLevel::kSerializable));
  ASSERT_TRUE(db.Load("x", Value(0)).ok());
  {
    SessionExecutorOptions opt;
    opt.workers = 2;
    opt.start_paused = true;
    SessionExecutor ex(db, opt);
    for (int i = 0; i < 16; ++i) {
      ex.Submit(1, [](Transaction& txn, uint64_t) {
        return txn.Put("x", Value(99));
      });
    }
    // Never resumed: the destructor abandons the queue and rolls back
    // whatever had begun.
  }
  EXPECT_EQ(db.open_transactions(), 0);
  EXPECT_EQ(ReadCount(db, "x"), 0);
  // The hook was removed: plain cooperative use works afterwards.
  Transaction t = db.Begin();
  ASSERT_TRUE(t.Put("x", Value(1)).ok());
  ASSERT_TRUE(t.Commit().ok());
}

}  // namespace
}  // namespace critique
