// Isolation level metadata, the Table 2 policy table, the engine factory,
// and the report renderers.

#include <gtest/gtest.h>

#include "critique/engine/engine_factory.h"
#include "critique/engine/isolation.h"
#include "critique/harness/report.h"

namespace critique {
namespace {

TEST(IsolationLevelTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (IsolationLevel level : AllEngineLevels()) {
    EXPECT_TRUE(names.insert(IsolationLevelName(level)).second)
        << IsolationLevelName(level);
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(IsolationLevelTest, Table4LevelsAreThePaperRows) {
  EXPECT_EQ(Table4Levels().size(), 6u);
  EXPECT_EQ(Table4Levels().front(), IsolationLevel::kReadUncommitted);
  EXPECT_EQ(Table4Levels().back(), IsolationLevel::kSerializable);
}

TEST(IsolationLevelTest, LockingClassification) {
  EXPECT_TRUE(IsLockingLevel(IsolationLevel::kDegree0));
  EXPECT_TRUE(IsLockingLevel(IsolationLevel::kCursorStability));
  EXPECT_TRUE(IsLockingLevel(IsolationLevel::kSerializable));
  EXPECT_FALSE(IsLockingLevel(IsolationLevel::kSnapshotIsolation));
  EXPECT_FALSE(IsLockingLevel(IsolationLevel::kOracleReadConsistency));
  EXPECT_FALSE(IsLockingLevel(IsolationLevel::kSerializableSI));
}

TEST(LockingPolicyTest, Degree0HasShortWritesOnly) {
  LockingPolicy p = PolicyFor(IsolationLevel::kDegree0);
  EXPECT_FALSE(p.read_locks);
  EXPECT_EQ(p.write, LockDuration::kShort);
}

TEST(LockingPolicyTest, Degree1AddsLongWrites) {
  LockingPolicy p = PolicyFor(IsolationLevel::kReadUncommitted);
  EXPECT_FALSE(p.read_locks);
  EXPECT_EQ(p.write, LockDuration::kLong);
}

TEST(LockingPolicyTest, Degree2ShortReads) {
  LockingPolicy p = PolicyFor(IsolationLevel::kReadCommitted);
  EXPECT_TRUE(p.read_locks);
  EXPECT_EQ(p.item_read, LockDuration::kShort);
  EXPECT_EQ(p.pred_read, LockDuration::kShort);
  EXPECT_FALSE(p.cursor_stability);
}

TEST(LockingPolicyTest, CursorStabilityIsDegree2PlusCursors) {
  LockingPolicy p = PolicyFor(IsolationLevel::kCursorStability);
  EXPECT_TRUE(p.cursor_stability);
  EXPECT_EQ(p.item_read, LockDuration::kShort);
}

TEST(LockingPolicyTest, RepeatableReadLongItemsShortPredicates) {
  // The defining split of the paper's Locking REPEATABLE READ row.
  LockingPolicy p = PolicyFor(IsolationLevel::kRepeatableRead);
  EXPECT_EQ(p.item_read, LockDuration::kLong);
  EXPECT_EQ(p.pred_read, LockDuration::kShort);
}

TEST(LockingPolicyTest, SerializableAllLong) {
  LockingPolicy p = PolicyFor(IsolationLevel::kSerializable);
  EXPECT_EQ(p.item_read, LockDuration::kLong);
  EXPECT_EQ(p.pred_read, LockDuration::kLong);
  EXPECT_EQ(p.write, LockDuration::kLong);
}

TEST(LockingPolicyTest, ToStringMentionsDurations) {
  std::string s = PolicyFor(IsolationLevel::kRepeatableRead).ToString();
  EXPECT_NE(s.find("item long"), std::string::npos);
  EXPECT_NE(s.find("predicate short"), std::string::npos);
  std::string d0 = PolicyFor(IsolationLevel::kDegree0).ToString();
  EXPECT_NE(d0.find("none required"), std::string::npos);
}

TEST(EngineFactoryTest, CreatesEveryLevel) {
  for (IsolationLevel level : AllEngineLevels()) {
    auto engine = CreateEngine(level);
    ASSERT_NE(engine, nullptr) << IsolationLevelName(level);
    EXPECT_EQ(engine->level(), level);
    EXPECT_EQ(engine->name(), IsolationLevelName(level));
  }
}

TEST(EngineFactoryTest, EnginesStartEmptyAndIndependent) {
  auto a = CreateEngine(IsolationLevel::kSerializable);
  auto b = CreateEngine(IsolationLevel::kSerializable);
  ASSERT_TRUE(a->Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(b->Begin(1).ok());
  auto r = b->Read(1, "x");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());  // b never saw a's load
}

// --- Report renderers --------------------------------------------------------

TEST(ReportTest, Table1RendersBothInterpretations) {
  std::string strict = RenderTable1(AnsiInterpretation::kStrict);
  EXPECT_NE(strict.find("A1"), std::string::npos);
  EXPECT_NE(strict.find("ANOMALY SERIALIZABLE"), std::string::npos);
  std::string broad = RenderTable1(AnsiInterpretation::kBroad);
  EXPECT_NE(broad.find("P1"), std::string::npos);
  EXPECT_NE(broad.find("Not Possible"), std::string::npos);
}

TEST(ReportTest, StrictVsBroadDemoShowsTheFlaw) {
  std::string demo = RenderStrictVsBroadDemo();
  // Every history classifies as ANOMALY SERIALIZABLE under strict...
  size_t count = 0;
  size_t pos = 0;
  while ((pos = demo.find("strict -> ANOMALY SERIALIZABLE", pos)) !=
         std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 3u);
}

TEST(ReportTest, Table2ListsAllSixRows) {
  std::string t2 = RenderTable2();
  EXPECT_NE(t2.find("Degree 0"), std::string::npos);
  EXPECT_NE(t2.find("Cursor Stability"), std::string::npos);
  EXPECT_NE(t2.find("Locking SERIALIZABLE (Degree 3)"), std::string::npos);
}

TEST(ReportTest, Table3ForbidsP0Everywhere) {
  std::string t3 = RenderTable3();
  EXPECT_NE(t3.find("P0"), std::string::npos);
  // READ UNCOMMITTED row: P0 must be Not Possible under Table 3.
  size_t row = t3.find("READ UNCOMMITTED");
  ASSERT_NE(row, std::string::npos);
  size_t eol = t3.find('\n', row);
  EXPECT_NE(t3.substr(row, eol - row).find("Not Possible"),
            std::string::npos);
}

TEST(ReportTest, MatrixComparisonFlagsMismatches) {
  AnomalyMatrix measured, expected;
  measured.SetCell(IsolationLevel::kSerializable, Phenomenon::kP4,
                   CellValue::kPossible);
  expected.SetCell(IsolationLevel::kSerializable, Phenomenon::kP4,
                   CellValue::kNotPossible);
  std::string cmp = RenderMatrixComparison(measured, expected);
  EXPECT_NE(cmp.find("MISMATCHES: 1"), std::string::npos);

  measured.SetCell(IsolationLevel::kSerializable, Phenomenon::kP4,
                   CellValue::kNotPossible);
  cmp = RenderMatrixComparison(measured, expected);
  EXPECT_NE(cmp.find("All cells match"), std::string::npos);
}

TEST(MatrixTest, AllowedListsNonNotPossible) {
  AnomalyMatrix m;
  m.SetCell(IsolationLevel::kSnapshotIsolation, Phenomenon::kA5B,
            CellValue::kPossible);
  m.SetCell(IsolationLevel::kSnapshotIsolation, Phenomenon::kP3,
            CellValue::kSometimesPossible);
  m.SetCell(IsolationLevel::kSnapshotIsolation, Phenomenon::kP2,
            CellValue::kNotPossible);
  auto allowed = m.Allowed(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(allowed.size(), 2u);
}

TEST(MatrixTest, PaperTable4Shape) {
  const AnomalyMatrix& t4 = PaperTable4();
  EXPECT_EQ(t4.levels().size(), 6u);
  EXPECT_EQ(t4.columns().size(), 8u);
  // Spot-check the three subtle cells.
  EXPECT_EQ(t4.Cell(IsolationLevel::kCursorStability, Phenomenon::kP4),
            CellValue::kSometimesPossible);
  EXPECT_EQ(t4.Cell(IsolationLevel::kSnapshotIsolation, Phenomenon::kP3),
            CellValue::kSometimesPossible);
  EXPECT_EQ(t4.Cell(IsolationLevel::kSnapshotIsolation, Phenomenon::kA5B),
            CellValue::kPossible);
}

}  // namespace
}  // namespace critique
