// Named multi-cursor coverage through the session API
// (Transaction::FetchNamed / CloseCursorNamed) across the locking, SI and
// read-consistency engines, including the Section 4.1 case: "the technique
// of putting a cursor on an item to hold its value stable can be used for
// multiple items, at the cost of using multiple cursors" — parlaying
// Cursor Stability to effective REPEATABLE READ for a fixed item set.

#include <gtest/gtest.h>

#include "critique/db/database.h"
#include "critique/exec/runner.h"

namespace critique {
namespace {

// --- Cursor Stability: named cursors pin items independently ----------------

TEST(NamedCursorTest, CursorStabilityPinsEachNamedCursorsItem) {
  Database db(IsolationLevel::kCursorStability);
  (void)db.Load("x", Value(1));
  (void)db.Load("y", Value(2));

  Transaction reader = db.Begin();
  ASSERT_TRUE(reader.FetchNamed("cx", "x").ok());
  ASSERT_TRUE(reader.FetchNamed("cy", "y").ok());

  Transaction writer = db.Begin();
  // Both items are pinned simultaneously — the multi-cursor trick.
  EXPECT_TRUE(writer.Put("x", Value(9)).IsWouldBlock());
  EXPECT_TRUE(writer.Put("y", Value(9)).IsWouldBlock());

  // Closing one cursor releases only that item.
  ASSERT_TRUE(reader.CloseCursorNamed("cx").ok());
  EXPECT_TRUE(writer.Put("x", Value(9)).ok());
  EXPECT_TRUE(writer.Put("y", Value(9)).IsWouldBlock());

  ASSERT_TRUE(reader.Commit().ok());
  EXPECT_TRUE(writer.Put("y", Value(9)).ok());
  ASSERT_TRUE(writer.Commit().ok());
}

TEST(NamedCursorTest, DefaultCursorStillMovesItsLock) {
  // The unnamed cursor keeps single-cursor semantics: moving it releases
  // the previous item.
  Database db(IsolationLevel::kCursorStability);
  (void)db.Load("x", Value(1));
  (void)db.Load("y", Value(2));
  Transaction reader = db.Begin();
  ASSERT_TRUE(reader.Fetch("x").ok());
  ASSERT_TRUE(reader.Fetch("y").ok());
  Transaction writer = db.Begin();
  EXPECT_TRUE(writer.Put("x", Value(9)).ok());
  EXPECT_TRUE(writer.Put("y", Value(9)).IsWouldBlock());
  (void)writer.Rollback();
  (void)reader.Rollback();
}

TEST(NamedCursorTest, ReadCommittedDoesNotHoldNamedCursorLocks) {
  // Below Cursor Stability the named fetch takes only a short read lock:
  // nothing stays pinned.
  Database db(IsolationLevel::kReadCommitted);
  (void)db.Load("x", Value(1));
  Transaction reader = db.Begin();
  ASSERT_TRUE(reader.FetchNamed("cx", "x").ok());
  Transaction writer = db.Begin();
  EXPECT_TRUE(writer.Put("x", Value(9)).ok());
  (void)writer.Rollback();
  (void)reader.Rollback();
}

// --- SI: named cursors delegate; readers never block writers ---------------

TEST(NamedCursorTest, SnapshotIsolationNamedCursorsNeverBlock) {
  Database db(IsolationLevel::kSnapshotIsolation);
  (void)db.Load("x", Value(1));

  Transaction reader = db.Begin();
  auto fetched = reader.FetchNamed("c1", "x");
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE((*fetched)->scalar().Equals(Value(1)));

  // A concurrent writer is not blocked by the open cursor...
  Transaction writer = db.Begin();
  EXPECT_TRUE(writer.Put("x", Value(9)).ok());
  EXPECT_TRUE(writer.Commit().ok());

  // ...and the cursor re-fetch still sees the snapshot value.
  auto refetched = reader.FetchNamed("c1", "x");
  ASSERT_TRUE(refetched.ok());
  EXPECT_TRUE((*refetched)->scalar().Equals(Value(1)));
  EXPECT_TRUE(reader.CloseCursorNamed("c1").ok());
  EXPECT_TRUE(reader.Commit().ok());
  EXPECT_EQ(db.stats().blocked_ops, 0u);
}

// --- Oracle Read Consistency: cursor fetch locks at fetch time --------------

TEST(NamedCursorTest, ReadConsistencyCursorLocksAtFetch) {
  // Section 4.3: Oracle Read Consistency forbids P4C because FETCH is
  // SELECT ... FOR UPDATE — a *long* write lock at fetch time; the named
  // form delegates to the same path, and closing the cursor does not
  // release it (only commit/abort does).
  Database db(IsolationLevel::kOracleReadConsistency);
  (void)db.Load("x", Value(1));

  Transaction t1 = db.Begin();
  ASSERT_TRUE(t1.FetchNamed("c", "x").ok());

  Transaction t2 = db.Begin();
  EXPECT_TRUE(t2.Put("x", Value(9)).IsWouldBlock());

  ASSERT_TRUE(t1.CloseCursorNamed("c").ok());
  EXPECT_TRUE(t2.Put("x", Value(9)).IsWouldBlock());  // still held: FOR UPDATE

  ASSERT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Put("x", Value(9)).ok());
  (void)t2.Commit();
}

// --- Section 4.1: the multi-cursor parlay defeats cursor write skew ---------

// Doctor-style guarded withdrawal against x + y (see the A5B scenario),
// reading through named cursors when `pinned`.
Program ParlayTxn(bool pinned, const ItemId& target, const std::string& xv,
                  const std::string& yv) {
  Program p;
  if (pinned) {
    p.FetchNamed("cx", "x", xv).FetchNamed("cy", "y", yv);
  } else {
    p.Read("x", xv).Read("y", yv);
  }
  p.Custom(StepKind::kOperation, [target, xv, yv](StepContext& ctx) {
    if (ctx.locals.GetInt(xv) + ctx.locals.GetInt(yv) < 100) {
      return Status::OK();  // would overdraw: skip the withdrawal
    }
    int64_t current = ctx.locals.GetInt(target == "x" ? xv : yv);
    return ctx.txn.Put(target, Value(current - 90));
  });
  p.Commit();
  return p;
}

int64_t JointBalance(Database& db) {
  Transaction txn = db.Begin();
  auto x = txn.GetScalar("x");
  auto y = txn.GetScalar("y");
  int64_t out = 0;
  if (x.ok() && x->AsNumeric()) out += static_cast<int64_t>(*x->AsNumeric());
  if (y.ok() && y->AsNumeric()) out += static_cast<int64_t>(*y->AsNumeric());
  (void)txn.Commit();
  return out;
}

TEST(NamedCursorTest, MultiCursorParlayPreventsWriteSkewAtCursorStability) {
  // With every read pinned by its own cursor, Cursor Stability behaves
  // like REPEATABLE READ on the pinned set: H5's write skew cannot leave
  // the joint balance negative.
  Database db(IsolationLevel::kCursorStability);
  (void)db.Load("x", Value(50));
  (void)db.Load("y", Value(50));
  Runner runner(db);
  runner.AddProgram(1, ParlayTxn(true, "y", "x1", "y1"));
  runner.AddProgram(2, ParlayTxn(true, "x", "x2", "y2"));
  auto result = runner.Run(ParseSchedule("1 1 2 2 1 2 1 2"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(JointBalance(db), 0);
  // The pins force the conflict to surface as blocking/deadlock instead.
  EXPECT_TRUE(result->blocked_retries > 0 ||
              db.stats().deadlock_aborts > 0);
}

TEST(NamedCursorTest, UnpinnedReadsStillShowWriteSkewAtCursorStability) {
  // The contrast making the parlay non-vacuous: with plain reads the same
  // schedule empties the joint account at Cursor Stability.
  Database db(IsolationLevel::kCursorStability);
  (void)db.Load("x", Value(50));
  (void)db.Load("y", Value(50));
  Runner runner(db);
  runner.AddProgram(1, ParlayTxn(false, "y", "x1", "y1"));
  runner.AddProgram(2, ParlayTxn(false, "x", "x2", "y2"));
  auto result = runner.Run(ParseSchedule("1 1 2 2 1 2 1 2"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->Committed(1));
  ASSERT_TRUE(result->Committed(2));
  EXPECT_LE(JointBalance(db), 0);
}

}  // namespace
}  // namespace critique
