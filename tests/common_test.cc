// Unit tests for the common kernel: Status, Result, Rng, string utilities.

#include <gtest/gtest.h>

#include <set>

#include "critique/common/clock.h"
#include "critique/common/random.h"
#include "critique/common/result.h"
#include "critique/common/status.h"
#include "critique/common/string_util.h"

namespace critique {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::FailedPrecondition().IsFailedPrecondition());
  EXPECT_TRUE(Status::WouldBlock().IsWouldBlock());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::SerializationFailure().IsSerializationFailure());
  EXPECT_TRUE(Status::TransactionAborted().IsTransactionAborted());
  EXPECT_TRUE(Status::Internal().IsInternal());

  Status s = Status::SerializationFailure("first-committer-wins on x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "SerializationFailure: first-committer-wins on x");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Internal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::OK());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MacroPropagatesErrors) {
  auto fails = []() -> Result<int> { return Status::WouldBlock(); };
  auto wrapper = [&]() -> Status {
    CRITIQUE_ASSIGN_OR_RETURN(int v, fails());
    (void)v;
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsWouldBlock());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(10);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 500 draws
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ClockTest, StrictlyIncreasingFromOne) {
  LogicalClock clock;
  EXPECT_EQ(clock.Now(), kInvalidTimestamp);
  Timestamp a = clock.Tick();
  Timestamp b = clock.Tick();
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(clock.Now(), 2u);
}

TEST(StringUtilTest, SplitNonEmpty) {
  auto parts = SplitNonEmpty("a,,b,c,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("w1[x]", "w1"));
  EXPECT_FALSE(StartsWith("w", "w1"));
}

TEST(StringUtilTest, JoinAndPad) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(PadTo("ab", 4), "ab  ");
  EXPECT_EQ(PadTo("abcdef", 4), "abcd");
}

}  // namespace
}  // namespace critique
