// Backend-conformance battery: every registered `VersionStore` backend is
// held to the same observable answers — visibility at snapshots,
// own-pending reads, tombstone chains, hinted vs hint-free commit/abort
// equivalence, exact GC watermark semantics, RetainAll time travel, and
// the engine-level gc_floor refusal — plus GC under concurrent writers
// per backend (run under --tsan for the data-race certificate).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "critique/db/database.h"
#include "critique/engine/si_engine.h"
#include "critique/storage/version_store.h"

namespace critique {
namespace {

Row R(int64_t v) { return Row::Scalar(Value(v)); }

class VersionStoreTest : public ::testing::TestWithParam<StorageBackend> {
 protected:
  std::unique_ptr<VersionStore> NewStore() const {
    std::unique_ptr<VersionStore> s = MakeVersionStore(GetParam());
    EXPECT_EQ(s->backend(), GetParam());
    return s;
  }
};

TEST_P(VersionStoreTest, VisibilityAtSnapshots) {
  auto s = NewStore();
  s->Bootstrap("x", R(0), 1);
  for (TxnId t = 2; t <= 5; ++t) {
    s->Write("x", R(t), t);
    s->CommitTxn(t, t * 10, std::set<ItemId>{"x"});
  }
  // Commit timestamps 1, 20, 30, 40, 50: a snapshot sees the newest
  // committed version at or below it.
  EXPECT_TRUE(s->Read("x", 1, 99)->scalar().Equals(Value(int64_t{0})));
  EXPECT_TRUE(s->Read("x", 19, 99)->scalar().Equals(Value(int64_t{0})));
  EXPECT_TRUE(s->Read("x", 20, 99)->scalar().Equals(Value(int64_t{2})));
  EXPECT_TRUE(s->Read("x", 35, 99)->scalar().Equals(Value(int64_t{3})));
  EXPECT_TRUE(s->Read("x", 99, 99)->scalar().Equals(Value(int64_t{5})));
  EXPECT_FALSE(s->Read("nope", 99, 99).has_value());
  EXPECT_EQ(s->VersionCount(), 5u);
  EXPECT_EQ(s->MaxChainLength(), 5u);
  EXPECT_EQ(s->ItemCount(), 1u);
}

TEST_P(VersionStoreTest, OwnPendingVersionWins) {
  auto s = NewStore();
  s->Bootstrap("x", R(0), 1);
  s->Write("x", R(7), /*txn=*/2);
  // The writer sees its own pending version at any snapshot; everyone
  // else still reads committed state.
  EXPECT_TRUE(s->Read("x", 1, 2)->scalar().Equals(Value(int64_t{7})));
  EXPECT_TRUE(s->Read("x", 99, 3)->scalar().Equals(Value(int64_t{0})));
  EXPECT_TRUE(s->HasPendingWrite("x", 2));
  EXPECT_FALSE(s->HasPendingWrite("x", 3));
  EXPECT_TRUE(s->HasConcurrentPendingWrite("x", 3));
  EXPECT_FALSE(s->HasConcurrentPendingWrite("x", 2));
  // A second write by the same transaction replaces its pending version
  // instead of growing the chain.
  s->Write("x", R(8), 2);
  EXPECT_EQ(s->VersionCount(), 2u);
  EXPECT_TRUE(s->Read("x", 1, 2)->scalar().Equals(Value(int64_t{8})));
}

TEST_P(VersionStoreTest, TombstoneChains) {
  auto s = NewStore();
  s->Bootstrap("x", R(1), 1);
  s->Delete("x", 2);
  // Pending tombstone: gone for its creator, present for others.
  EXPECT_FALSE(s->Read("x", 99, 2).has_value());
  EXPECT_TRUE(s->Read("x", 99, 3).has_value());
  // ReadVersionInfo surfaces the tombstone itself.
  ASSERT_TRUE(s->ReadVersionInfo("x", 99, 2).has_value());
  EXPECT_TRUE(s->ReadVersionInfo("x", 99, 2)->tombstone);
  s->CommitTxn(2, 10, std::set<ItemId>{"x"});
  // Committed tombstone: absent at snapshots >= 10, present below.
  EXPECT_FALSE(s->Read("x", 10, 99).has_value());
  EXPECT_TRUE(s->Read("x", 9, 99).has_value());
  // Re-insert over the tombstone.
  s->Write("x", R(5), 3);
  s->CommitTxn(3, 20, std::set<ItemId>{"x"});
  EXPECT_TRUE(s->Read("x", 20, 99)->scalar().Equals(Value(int64_t{5})));
  EXPECT_FALSE(s->Read("x", 15, 99).has_value());
}

TEST_P(VersionStoreTest, LatestCommitTsProbe) {
  auto s = NewStore();
  EXPECT_EQ(s->LatestCommitTs("x"), kInvalidTimestamp);
  s->Bootstrap("x", R(0), 1);
  EXPECT_EQ(s->LatestCommitTs("x"), 1u);
  s->Write("x", R(1), 2);
  EXPECT_EQ(s->LatestCommitTs("x"), 1u);  // pending doesn't count
  s->CommitTxn(2, 30, std::set<ItemId>{"x"});
  EXPECT_EQ(s->LatestCommitTs("x"), 30u);
  // Commit order != append order: an older append committing later must
  // still win the probe.
  s->Write("x", R(2), 3);
  s->Write("x", R(3), 4);
  s->CommitTxn(4, 40, std::set<ItemId>{"x"});
  s->CommitTxn(3, 50, std::set<ItemId>{"x"});
  EXPECT_EQ(s->LatestCommitTs("x"), 50u);
  EXPECT_TRUE(s->Read("x", 45, 99)->scalar().Equals(Value(int64_t{3})));
  EXPECT_TRUE(s->Read("x", 55, 99)->scalar().Equals(Value(int64_t{2})));
}

TEST_P(VersionStoreTest, HintedCommitMatchesFullScan) {
  auto hinted = NewStore();
  auto scanned = NewStore();
  for (auto* s : {hinted.get(), scanned.get()}) {
    s->Bootstrap("x", R(0), 1);
    s->Bootstrap("y", R(0), 1);
    s->Write("x", R(7), 2);
    s->Write("y", R(8), 2);
  }
  hinted->CommitTxn(2, 5, std::set<ItemId>{"x", "y"});
  scanned->CommitTxn(2, 5);  // hint-free slow path
  for (const ItemId& id : {ItemId("x"), ItemId("y")}) {
    EXPECT_TRUE(hinted->Read(id, 9, 99)->scalar().Equals(
        scanned->Read(id, 9, 99)->scalar()));
  }
  EXPECT_EQ(hinted->VersionCount(), scanned->VersionCount());
  // The slow path is counted; the fast path is not.
  EXPECT_EQ(hinted->unhinted_commits(), 0u);
  EXPECT_EQ(scanned->unhinted_commits(), 1u);
}

TEST_P(VersionStoreTest, HintedAbortMatchesFullScanAndErasesEmptyChains) {
  auto hinted = NewStore();
  auto scanned = NewStore();
  for (auto* s : {hinted.get(), scanned.get()}) {
    s->Bootstrap("x", R(0), 1);
    s->Write("x", R(7), 2);
    s->Write("fresh", R(9), 2);  // aborted insert of a new item
  }
  hinted->AbortTxn(2, std::set<ItemId>{"x", "fresh"});
  scanned->AbortTxn(2);  // hint-free slow path
  for (auto* s : {hinted.get(), scanned.get()}) {
    EXPECT_TRUE(s->Read("x", 9, 99)->scalar().Equals(Value(int64_t{0})));
    EXPECT_FALSE(s->Read("fresh", 99, 99).has_value());
    EXPECT_EQ(s->VersionCount(), 1u);
  }
  // The hinted abort retires the chain it emptied; the hint-free one
  // cannot know which chains it emptied, so the husk stays until GC.
  EXPECT_EQ(hinted->ItemCount(), 1u);
  EXPECT_EQ(scanned->ItemCount(), 2u);
  EXPECT_EQ(hinted->unhinted_aborts(), 0u);
  EXPECT_EQ(scanned->unhinted_aborts(), 1u);
}

TEST_P(VersionStoreTest, ScanReturnsKeyOrder) {
  auto s = NewStore();
  // Insertion order deliberately scrambled relative to key order.
  for (const char* id : {"m", "a", "z", "k", "b"}) {
    s->Bootstrap(id, R(1), 1);
  }
  s->Delete("k", 2);
  s->CommitTxn(2, 10, std::set<ItemId>{"k"});
  auto rows = s->Scan(Predicate::All(), 99, 99);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].first, "a");
  EXPECT_EQ(rows[1].first, "b");
  EXPECT_EQ(rows[2].first, "m");
  EXPECT_EQ(rows[3].first, "z");
}

TEST_P(VersionStoreTest, GcPrunesOnlyBelowWatermark) {
  auto s = NewStore();
  s->Bootstrap("x", R(0), 1);
  for (TxnId t = 2; t <= 6; ++t) {
    s->Write("x", R(t), t);
    s->CommitTxn(t, t * 10, std::set<ItemId>{"x"});
  }
  // Chain commit timestamps: 1, 20, 30, 40, 50, 60.  Watermark 45 keeps
  // the newest at/below it (40) and everything newer.
  EXPECT_EQ(s->GarbageCollect(45), 3u);
  EXPECT_TRUE(s->Read("x", 45, 99)->scalar().Equals(Value(int64_t{4})));
  EXPECT_TRUE(s->Read("x", 65, 99)->scalar().Equals(Value(int64_t{6})));
  EXPECT_EQ(s->MaxChainLength(), 3u);
  // Pending versions survive any watermark.
  s->Write("x", R(77), 100);
  EXPECT_EQ(s->GarbageCollect(1000), 2u);  // 40, 50 go; 60 + pending stay
  EXPECT_TRUE(s->Read("x", 1000, 100)->scalar().Equals(Value(int64_t{77})));
  EXPECT_TRUE(s->Read("x", 1000, 99)->scalar().Equals(Value(int64_t{6})));
}

TEST_P(VersionStoreTest, GcDropsTombstoneOnlyChains) {
  auto s = NewStore();
  s->Bootstrap("x", R(1), 1);
  s->Delete("x", 2);
  s->CommitTxn(2, 10, std::set<ItemId>{"x"});
  ASSERT_EQ(s->ItemCount(), 1u);
  // Watermark above the tombstone: the whole chain folds away — an
  // absent item and a tombstone read identically at surviving snapshots.
  EXPECT_EQ(s->GarbageCollect(20), 2u);
  EXPECT_EQ(s->ItemCount(), 0u);
  EXPECT_FALSE(s->Read("x", 30, 99).has_value());
  // The slot is genuinely reusable afterwards.
  s->Bootstrap("x", R(5), 25);
  EXPECT_TRUE(s->Read("x", 30, 99)->scalar().Equals(Value(int64_t{5})));
}

TEST_P(VersionStoreTest, DeepChainsStayExact) {
  // Far past any inline hot-slot capacity: RetainAll-style history must
  // answer every historical snapshot exactly, from whatever mix of inline
  // and overflow storage the backend chose.
  auto s = NewStore();
  s->Bootstrap("x", R(0), 1);
  constexpr int64_t kDepth = 200;
  for (int64_t t = 2; t <= kDepth; ++t) {
    s->Write("x", R(t), static_cast<TxnId>(t));
    s->CommitTxn(static_cast<TxnId>(t), static_cast<Timestamp>(t * 10),
                 std::set<ItemId>{"x"});
  }
  EXPECT_EQ(s->MaxChainLength(), static_cast<size_t>(kDepth));
  for (int64_t t = 2; t <= kDepth; t += 17) {
    EXPECT_TRUE(s->Read("x", static_cast<Timestamp>(t * 10), 999)
                    ->scalar()
                    .Equals(Value(t)));
  }
  std::vector<Version> chain = s->Chain("x");
  ASSERT_EQ(chain.size(), static_cast<size_t>(kDepth));
  // Chain() reports oldest first.
  EXPECT_EQ(chain.front().commit_ts, 1u);
  EXPECT_EQ(chain.back().commit_ts, static_cast<Timestamp>(kDepth * 10));
}

TEST_P(VersionStoreTest, ManyItemsSurviveGrowth) {
  // Push any hash backend through several growth episodes and (via the
  // deletes) index-slot reuse; every item must stay exactly readable.
  auto s = NewStore();
  constexpr int kItems = 3000;
  for (int i = 0; i < kItems; ++i) {
    s->Bootstrap("item" + std::to_string(i), R(i), 1);
  }
  EXPECT_EQ(s->ItemCount(), static_cast<size_t>(kItems));
  // Delete every third item through hinted aborts-after-delete commits.
  for (int i = 0; i < kItems; i += 3) {
    const ItemId id = "item" + std::to_string(i);
    s->Delete(id, 2);
  }
  s->CommitTxn(2, 10, [] {
    std::set<ItemId> all;
    for (int i = 0; i < kItems; i += 3) all.insert("item" + std::to_string(i));
    return all;
  }());
  EXPECT_EQ(s->GarbageCollect(20), 2u * ((kItems + 2) / 3));
  for (int i = 0; i < kItems; ++i) {
    auto v = s->Read("item" + std::to_string(i), 99, 999);
    if (i % 3 == 0) {
      EXPECT_FALSE(v.has_value()) << i;
    } else {
      ASSERT_TRUE(v.has_value()) << i;
      EXPECT_TRUE(v->scalar().Equals(Value(int64_t{i}))) << i;
    }
  }
  EXPECT_EQ(s->ItemCount(), static_cast<size_t>(kItems - (kItems + 2) / 3));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, VersionStoreTest, ::testing::ValuesIn(AllStorageBackends()),
    [](const ::testing::TestParamInfo<StorageBackend>& info) {
      return std::string(StorageBackendName(info.param));
    });

// --- engine-level conformance: the SPI behind a real engine -----------------

DbOptions BackendOptions(StorageBackend backend, VersionGcMode gc,
                         uint32_t interval = 64) {
  DbOptions opts(IsolationLevel::kSnapshotIsolation);
  opts.storage_backend = backend;
  opts.version_gc = gc;
  opts.version_gc_interval = interval;
  return opts;
}

class VersionStoreEngineTest
    : public ::testing::TestWithParam<StorageBackend> {};

TEST_P(VersionStoreEngineTest, GcFloorRefusesPrunedSnapshots) {
  DbOptions opts =
      BackendOptions(GetParam(), VersionGcMode::kWatermark, /*interval=*/64);
  SnapshotIsolationEngine e;
  EngineConcurrency c;
  c.storage_backend = GetParam();
  e.SetConcurrency(c);
  e.SetVersionGc({opts.version_gc, opts.version_gc_interval});
  (void)e.Load("x", R(0));
  Timestamp old_ts = e.Now();
  for (TxnId t = 1; t <= 4; ++t) {
    ASSERT_TRUE(e.Begin(t).ok());
    ASSERT_TRUE(e.Write(t, "x", R(t)).ok());
    ASSERT_TRUE(e.Commit(t).ok());
  }
  (void)e.GarbageCollectVersions();
  ASSERT_GT(e.gc_floor(), old_ts);
  // Below the floor: refused, never answered from a pruned chain.
  Status s = e.BeginAt(100, old_ts);
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
  // At or above the floor: fine.
  EXPECT_TRUE(e.BeginAt(101, e.gc_floor()).ok());
}

TEST_P(VersionStoreEngineTest, RetainAllKeepsTimeTravelExact) {
  Database db(BackendOptions(GetParam(), VersionGcMode::kRetainAll));
  (void)db.Load("x", Value(int64_t{0}));
  std::vector<Timestamp> after;
  for (int64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(db.Execute([&](Transaction& txn) {
      return txn.Put("x", Value(i));
    }).ok());
    after.push_back(*db.CurrentTimestamp());
  }
  EXPECT_GE(db.VersionCount(), 21u);  // nothing pruned
  for (size_t i = 0; i < after.size(); i += 5) {
    auto t = db.BeginAtTimestamp(after[i]);
    ASSERT_TRUE(t.ok());
    auto v = t->GetScalar("x");
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->Equals(Value(static_cast<int64_t>(i + 1))));
    (void)t->Commit();
  }
}

TEST_P(VersionStoreEngineTest, GcUnderConcurrentWritersIsSafe) {
  DbOptions opts =
      BackendOptions(GetParam(), VersionGcMode::kWatermark, /*interval=*/4);
  opts.mode = ConcurrencyMode::kBlocking;
  Database db(opts);
  const int64_t kItems = 8;
  for (int64_t k = 0; k < kItems; ++k) {
    (void)db.Load("k" + std::to_string(k), Value(int64_t{0}));
  }
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 50;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&db, &committed, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        Status s = db.Execute([&](Transaction& txn) {
          return txn.Put("k" + std::to_string((t * 3 + i) % kItems),
                         Value(int64_t{i}));
        });
        if (s.ok()) committed.fetch_add(1);
      }
    });
  }
  // A maintenance thread running explicit GC passes against the writers.
  std::thread gc([&db] {
    for (int i = 0; i < 50; ++i) {
      (void)db.GarbageCollectVersions();
      (void)db.OldestOpenSnapshot();
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) w.join();
  gc.join();

  const EngineStats stats = db.stats();
  EXPECT_EQ(stats.commits, committed.load());
  EXPECT_GE(committed.load(),
            static_cast<uint64_t>(kThreads * kTxnsPerThread * 3 / 4));
  EXPECT_LE(db.engine().MaxVersionChainLength(), 16u);
  auto t = db.Begin();
  for (int64_t k = 0; k < kItems; ++k) {
    auto v = t.Get("k" + std::to_string(k));
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, VersionStoreEngineTest,
    ::testing::ValuesIn(AllStorageBackends()),
    [](const ::testing::TestParamInfo<StorageBackend>& info) {
      return std::string(StorageBackendName(info.param));
    });

}  // namespace
}  // namespace critique
