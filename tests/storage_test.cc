// Tests for the single-version store (undo discipline) and the
// multiversion store (visibility, pending versions, FCW probes, GC).

#include <gtest/gtest.h>

#include "critique/storage/mv_store.h"
#include "critique/storage/sv_store.h"

namespace critique {
namespace {

TEST(SingleVersionStoreTest, PutGetErase) {
  SingleVersionStore store;
  EXPECT_FALSE(store.Get("x").has_value());
  EXPECT_FALSE(store.Contains("x"));

  auto before = store.Put("x", Row::Scalar(Value(50)));
  EXPECT_FALSE(before.has_value());
  ASSERT_TRUE(store.Get("x").has_value());
  EXPECT_TRUE(store.Get("x")->scalar().Equals(Value(50)));
  EXPECT_EQ(store.size(), 1u);

  before = store.Put("x", Row::Scalar(Value(10)));
  ASSERT_TRUE(before.has_value());
  EXPECT_TRUE(before->scalar().Equals(Value(50)));

  auto erased = store.Erase("x");
  ASSERT_TRUE(erased.has_value());
  EXPECT_TRUE(erased->scalar().Equals(Value(10)));
  EXPECT_FALSE(store.Contains("x"));
  EXPECT_FALSE(store.Erase("x").has_value());
}

TEST(SingleVersionStoreTest, UndoRestoresBeforeImages) {
  SingleVersionStore store;
  store.Put("x", Row::Scalar(Value(50)));

  // Transaction: update x, insert y; then roll back in LIFO order.
  std::vector<UndoRecord> undo;
  undo.push_back({"x", store.Put("x", Row::Scalar(Value(10)))});
  undo.push_back({"y", store.Put("y", Row::Scalar(Value(90)))});

  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    store.ApplyUndo(*it);
  }
  EXPECT_TRUE(store.Get("x")->scalar().Equals(Value(50)));
  EXPECT_FALSE(store.Contains("y"));
}

TEST(SingleVersionStoreTest, UndoOfDelete) {
  SingleVersionStore store;
  store.Put("x", Row::Scalar(Value(50)));
  UndoRecord undo{"x", store.Erase("x")};
  EXPECT_FALSE(store.Contains("x"));
  store.ApplyUndo(undo);
  EXPECT_TRUE(store.Get("x")->scalar().Equals(Value(50)));
}

TEST(SingleVersionStoreTest, ScanFiltersByPredicate) {
  SingleVersionStore store;
  store.Put("e1", Row().Set("active", true).Set("dept", "sales"));
  store.Put("e2", Row().Set("active", false).Set("dept", "sales"));
  store.Put("e3", Row().Set("active", true).Set("dept", "eng"));

  auto active = store.Scan(Predicate::Cmp("active", CompareOp::kEq, true));
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].first, "e1");
  EXPECT_EQ(active[1].first, "e3");

  EXPECT_EQ(store.Scan(Predicate::All()).size(), 3u);
}

// --- Multiversion store ------------------------------------------------------

TEST(MVStoreTest, SnapshotVisibility) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(50)), /*ts=*/1);

  // Pending write by txn 1, invisible to others at any snapshot.
  store.Write("x", Row::Scalar(Value(10)), /*txn=*/1);
  EXPECT_TRUE(store.Read("x", 5, /*txn=*/2)->scalar().Equals(Value(50)));
  // Own pending write visible to its creator.
  EXPECT_TRUE(store.Read("x", 5, /*txn=*/1)->scalar().Equals(Value(10)));

  store.CommitTxn(1, /*commit_ts=*/7);
  // Snapshot before the commit still sees the old version.
  EXPECT_TRUE(store.Read("x", 5, /*txn=*/2)->scalar().Equals(Value(50)));
  // Snapshot after the commit sees the new one.
  EXPECT_TRUE(store.Read("x", 8, /*txn=*/2)->scalar().Equals(Value(10)));
}

TEST(MVStoreTest, AbortDiscardsPendingVersions) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(50)), 1);
  store.Write("x", Row::Scalar(Value(99)), 3);
  EXPECT_TRUE(store.HasPendingWrite("x", 3));
  store.AbortTxn(3);
  EXPECT_FALSE(store.HasPendingWrite("x", 3));
  EXPECT_TRUE(store.Read("x", 10, 3)->scalar().Equals(Value(50)));
}

TEST(MVStoreTest, TombstoneHidesItem) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(50)), 1);
  store.Delete("x", 2);
  // Deleter sees its own tombstone.
  EXPECT_FALSE(store.Read("x", 10, 2).has_value());
  // Others still see the committed row.
  EXPECT_TRUE(store.Read("x", 10, 3).has_value());
  store.CommitTxn(2, 4);
  EXPECT_FALSE(store.Read("x", 10, 3).has_value());
  // Time travel below the delete still sees it.
  EXPECT_TRUE(store.Read("x", 3, 3).has_value());
}

TEST(MVStoreTest, ReadVersionInfoExposesCreator) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(50)), 1);
  store.Write("x", Row::Scalar(Value(10)), 4);
  store.CommitTxn(4, 6);
  auto v = store.ReadVersionInfo("x", 10, 9);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->creator, 4);
  EXPECT_EQ(v->commit_ts, 6u);
  auto old_v = store.ReadVersionInfo("x", 2, 9);
  ASSERT_TRUE(old_v.has_value());
  EXPECT_EQ(old_v->creator, kInitialTxn);
}

TEST(MVStoreTest, LatestCommitTsIsFirstCommitterWinsProbe) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(0)), 1);
  EXPECT_EQ(store.LatestCommitTs("x"), 1u);
  store.Write("x", Row::Scalar(Value(1)), 2);
  EXPECT_EQ(store.LatestCommitTs("x"), 1u);  // pending writes don't count
  store.CommitTxn(2, 9);
  EXPECT_EQ(store.LatestCommitTs("x"), 9u);
  EXPECT_EQ(store.LatestCommitTs("nope"), kInvalidTimestamp);
}

TEST(MVStoreTest, ConcurrentPendingWriteProbe) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(0)), 1);
  EXPECT_FALSE(store.HasConcurrentPendingWrite("x", 2));
  store.Write("x", Row::Scalar(Value(1)), 3);
  EXPECT_TRUE(store.HasConcurrentPendingWrite("x", 2));
  EXPECT_FALSE(store.HasConcurrentPendingWrite("x", 3));  // own write
}

TEST(MVStoreTest, ScanUsesSnapshot) {
  MultiVersionStore store;
  store.Bootstrap("a", Row().Set("active", true), 1);
  store.Bootstrap("b", Row().Set("active", false), 1);
  store.Write("c", Row().Set("active", true), 5);  // pending insert

  auto pred = Predicate::Cmp("active", CompareOp::kEq, true);
  EXPECT_EQ(store.Scan(pred, 10, /*txn=*/9).size(), 1u);  // c invisible
  EXPECT_EQ(store.Scan(pred, 10, /*txn=*/5).size(), 2u);  // own insert

  store.CommitTxn(5, 12);
  EXPECT_EQ(store.Scan(pred, 13, 9).size(), 2u);
  EXPECT_EQ(store.Scan(pred, 10, 9).size(), 1u);  // old snapshot unchanged
}

TEST(MVStoreTest, WriteTwiceReplacesOwnPending) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(0)), 1);
  store.Write("x", Row::Scalar(Value(1)), 2);
  store.Write("x", Row::Scalar(Value(2)), 2);
  EXPECT_EQ(store.Chain("x").size(), 2u);  // initial + one pending
  EXPECT_TRUE(store.Read("x", 10, 2)->scalar().Equals(Value(2)));
}

TEST(MVStoreTest, GarbageCollectKeepsWatermarkVisible) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(0)), 1);
  for (TxnId t = 2; t <= 5; ++t) {
    store.Write("x", Row::Scalar(Value(t)), t);
    store.CommitTxn(t, t * 10);
  }
  EXPECT_EQ(store.Chain("x").size(), 5u);

  // Watermark 35: versions committed at 1, 20, 30 are superseded by 30;
  // keep 30 (visible at 35) and 40, 50.
  size_t dropped = store.GarbageCollect(35);
  EXPECT_EQ(dropped, 2u);
  ASSERT_TRUE(store.Read("x", 35, 9).has_value());
  EXPECT_TRUE(store.Read("x", 35, 9)->scalar().Equals(Value(3)));
  EXPECT_TRUE(store.Read("x", 55, 9)->scalar().Equals(Value(5)));
}

TEST(MVStoreTest, GarbageCollectSparesPendingVersions) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(0)), 1);
  store.Write("x", Row::Scalar(Value(1)), 7);  // pending
  EXPECT_EQ(store.GarbageCollect(100), 0u);
  EXPECT_TRUE(store.HasPendingWrite("x", 7));
}

TEST(MVStoreTest, VersionAndItemCounts) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(0)), 1);
  store.Bootstrap("y", Row::Scalar(Value(0)), 1);
  store.Write("x", Row::Scalar(Value(1)), 2);
  EXPECT_EQ(store.ItemCount(), 2u);
  EXPECT_EQ(store.VersionCount(), 3u);
}

}  // namespace
}  // namespace critique
