// The GLPT degrees-of-consistency crosswalk, the multi-cursor trick of
// Section 4.1, and a concurrent stress of the lock manager.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "critique/analysis/glpt.h"
#include "critique/common/random.h"
#include "critique/engine/engine_factory.h"
#include "critique/engine/locking_engine.h"
#include "critique/lock/lock_manager.h"

namespace critique {
namespace {

TEST(GlptTest, DegreesMapToLockingLevels) {
  EXPECT_EQ(LevelForDegree(ConsistencyDegree::kDegree0),
            IsolationLevel::kDegree0);
  EXPECT_EQ(LevelForDegree(ConsistencyDegree::kDegree1),
            IsolationLevel::kReadUncommitted);
  EXPECT_EQ(LevelForDegree(ConsistencyDegree::kDegree2),
            IsolationLevel::kReadCommitted);
  EXPECT_EQ(LevelForDegree(ConsistencyDegree::kDegree3),
            IsolationLevel::kSerializable);
}

TEST(GlptTest, RoundTripDegrees) {
  for (ConsistencyDegree d :
       {ConsistencyDegree::kDegree0, ConsistencyDegree::kDegree1,
        ConsistencyDegree::kDegree2, ConsistencyDegree::kDegree3}) {
    auto back = DegreeForLevel(LevelForDegree(d));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, d);
  }
}

TEST(GlptTest, NoDegreeMatchesRepeatableReadOrCursorStability) {
  // "No isolation degree matches the Locking REPEATABLE READ isolation
  // level" (Section 2.3).
  EXPECT_FALSE(DegreeForLevel(IsolationLevel::kRepeatableRead).has_value());
  EXPECT_FALSE(DegreeForLevel(IsolationLevel::kCursorStability).has_value());
  EXPECT_FALSE(
      DegreeForLevel(IsolationLevel::kSnapshotIsolation).has_value());
}

TEST(GlptTest, RepeatableReadTraditions) {
  // Date/IBM "Repeatable Read" is serializable; ANSI's is not — the
  // "doubly unfortunate" terminology of Section 5.
  EXPECT_EQ(RepeatableReadMeaning(RepeatableReadTradition::kDateIBM),
            IsolationLevel::kSerializable);
  EXPECT_EQ(RepeatableReadMeaning(RepeatableReadTradition::kAnsiSql),
            IsolationLevel::kRepeatableRead);
}

TEST(GlptTest, CrosswalkMentionsTheMisnomer) {
  std::string text = RenderTerminologyCrosswalk();
  EXPECT_NE(text.find("NOT repeatable"), std::string::npos);
  EXPECT_NE(text.find("Degree 3"), std::string::npos);
}

// --- Multi-cursor trick (Section 4.1) ---------------------------------------

TEST(MultiCursorTest, TwoCursorsPinTwoItems) {
  // "The programmer can parlay Cursor Stability to effective Locking
  // REPEATABLE READ isolation for any transaction accessing a small,
  // fixed number of data items."
  LockingEngine e(IsolationLevel::kCursorStability);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.FetchCursorNamed(1, "cx", "x").ok());
  ASSERT_TRUE(e.FetchCursorNamed(1, "cy", "y").ok());

  ASSERT_TRUE(e.Begin(2).ok());
  // Both items are pinned simultaneously.
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(9))).IsWouldBlock());
  EXPECT_TRUE(e.Write(2, "y", Row::Scalar(Value(9))).IsWouldBlock());

  // Closing one cursor releases only that item.
  ASSERT_TRUE(e.CloseCursorNamed(1, "cx").ok());
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(9))).ok());
  EXPECT_TRUE(e.Write(2, "y", Row::Scalar(Value(9))).IsWouldBlock());

  ASSERT_TRUE(e.Commit(1).ok());
  EXPECT_TRUE(e.Write(2, "y", Row::Scalar(Value(9))).ok());
  ASSERT_TRUE(e.Commit(2).ok());
}

TEST(MultiCursorTest, SingleCursorStillMovesLock) {
  // The default cursor keeps the old single-cursor semantics: moving it
  // releases the previous item.
  LockingEngine e(IsolationLevel::kCursorStability);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.FetchCursor(1, "x").ok());
  ASSERT_TRUE(e.FetchCursor(1, "y").ok());
  ASSERT_TRUE(e.Begin(2).ok());
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(9))).ok());
  EXPECT_TRUE(e.Write(2, "y", Row::Scalar(Value(9))).IsWouldBlock());
}

TEST(MultiCursorTest, NamedCursorsDefaultOnOtherEngines) {
  // MV engines delegate the named forms to the plain ones.
  auto engine = CreateEngine(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(engine->Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(engine->Begin(1).ok());
  auto r = engine->FetchCursorNamed(1, "c1", "x");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->scalar().Equals(Value(1)));
  EXPECT_TRUE(engine->CloseCursorNamed(1, "c1").ok());
}

// --- Lock manager thread-safety ---------------------------------------------

TEST(LockManagerStressTest, ConcurrentAcquireReleaseIsSafe) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<uint64_t> granted{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&lm, &granted, w] {
      Rng rng(static_cast<uint64_t>(w) + 1);
      TxnId txn = static_cast<TxnId>(w + 1);
      std::vector<LockHandle> held;
      for (int op = 0; op < kOpsPerThread; ++op) {
        ItemId item = "k" + std::to_string(rng.Uniform(16));
        LockSpec spec = rng.Chance(0.5)
                            ? LockSpec::ReadItem(txn, item, std::nullopt)
                            : LockSpec::WriteItem(txn, item, std::nullopt,
                                                  std::nullopt);
        auto r = lm.TryAcquire(spec);
        if (r.ok()) {
          ++granted;
          held.push_back(*r);
        }
        if (held.size() > 4 || (!held.empty() && rng.Chance(0.3))) {
          lm.Release(held.back());
          held.pop_back();
        }
      }
      lm.ReleaseAll(txn);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(granted.load(), 0u);
  EXPECT_EQ(lm.HeldCount(), 0u);
  auto st = lm.stats();
  EXPECT_EQ(st.acquired, st.released);
}

}  // namespace
}  // namespace critique
