// Property-based sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P): random
// transfer workloads under random schedules, across engines and seeds.
// Each isolation level must uphold its *defining* guarantees on every
// random run — these are the invariants Table 3/Table 4 promise:
//
//  * every run completes (deadlocks are resolved, no livelock);
//  * rollback is exact: aborted transactions leave no trace in totals;
//  * long write locks: no engine above Degree 0 ever shows P0, and no
//    engine above READ UNCOMMITTED ever shows A1;
//  * REPEATABLE READ and up (and SI/SSI) preserve the transfer invariant;
//  * Locking SERIALIZABLE and SSI produce only (view-)serializable runs;
//  * SI runs validate against snapshot visibility and First-Committer-Wins,
//    and SI read-only transactions never block or abort.

#include <gtest/gtest.h>

#include <tuple>

#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/mv_analysis.h"
#include "critique/analysis/phenomena.h"
#include "critique/analysis/view.h"
#include "critique/db/database.h"
#include "critique/exec/runner.h"
#include "critique/workload/workload.h"

namespace critique {
namespace {

struct RandomRun {
  RunResult result;
  int64_t initial_total = 0;
  int64_t final_total = 0;
  IsolationLevel level;
};

RandomRun RunRandomTransfers(IsolationLevel level, uint64_t seed,
                             int num_txns, uint64_t num_items) {
  WorkloadOptions opts;
  opts.num_items = num_items;
  opts.zipf_theta = 0.6;  // mild hot spot to force conflicts
  WorkloadGenerator gen(opts);
  Database db(level);
  EXPECT_TRUE(gen.LoadInitial(db).ok());

  Rng rng(seed);
  Runner runner(db);
  for (int t = 1; t <= num_txns; ++t) {
    runner.AddProgram(t, gen.MakeTransferTxn(rng, rng.UniformRange(1, 10)));
  }
  auto result = runner.Run(runner.RandomSchedule(rng));
  EXPECT_TRUE(result.ok()) << IsolationLevelName(level) << " seed " << seed
                           << ": " << result.status().ToString();

  RandomRun out;
  out.level = level;
  out.result = std::move(*result);
  out.initial_total =
      static_cast<int64_t>(num_items) * opts.initial_balance;
  out.final_total = WorkloadGenerator::TotalBalance(db, num_items);
  return out;
}

History AnalyzedHistory(const RandomRun& run) {
  switch (run.level) {
    case IsolationLevel::kSnapshotIsolation:
    case IsolationLevel::kSerializableSI:
      return MapSnapshotHistoryToSingleVersion(run.result.history);
    case IsolationLevel::kOracleReadConsistency:
      return MapStatementSnapshotHistoryToSingleVersion(run.result.history);
    default:
      return run.result.history;
  }
}

class EngineSweep
    : public ::testing::TestWithParam<std::tuple<IsolationLevel, uint64_t>> {
};

TEST_P(EngineSweep, RandomRunsCompleteAndRespectLevelGuarantees) {
  const auto [level, seed] = GetParam();
  RandomRun run = RunRandomTransfers(level, seed, /*num_txns=*/6,
                                     /*num_items=*/8);
  History analyzed = AnalyzedHistory(run);

  // Long write locks / private versions: no dirty writes above Degree 0.
  if (level != IsolationLevel::kDegree0) {
    EXPECT_FALSE(Exhibits(analyzed, Phenomenon::kP0))
        << IsolationLevelName(level) << " seed " << seed << "\n"
        << analyzed.ToString();
  }

  // Dirty reads of aborted data require READ UNCOMMITTED or below.
  if (level != IsolationLevel::kDegree0 &&
      level != IsolationLevel::kReadUncommitted) {
    EXPECT_FALSE(Exhibits(analyzed, Phenomenon::kA1))
        << IsolationLevelName(level) << " seed " << seed;
  }

  // Transfer invariant at the lost-update-free levels.
  const bool preserves_total =
      level == IsolationLevel::kRepeatableRead ||
      level == IsolationLevel::kSerializable ||
      level == IsolationLevel::kSnapshotIsolation ||
      level == IsolationLevel::kSerializableSI;
  if (preserves_total) {
    EXPECT_EQ(run.final_total, run.initial_total)
        << IsolationLevelName(level) << " seed " << seed;
  }

  // Serializability where promised.
  if (level == IsolationLevel::kSerializable ||
      level == IsolationLevel::kSerializableSI) {
    EXPECT_TRUE(IsSerializable(analyzed))
        << IsolationLevelName(level) << " seed " << seed << "\n"
        << analyzed.ToString();
  }

  // SI-family histories must be valid snapshot executions, and the
  // [OOBBGM] mapping must preserve their dataflow (view equivalence).
  if (level == IsolationLevel::kSnapshotIsolation ||
      level == IsolationLevel::kSerializableSI) {
    EXPECT_TRUE(ValidateSnapshotVisibility(run.result.history).ok())
        << run.result.history.ToString();
    EXPECT_TRUE(ValidateFirstCommitterWins(run.result.history).ok())
        << run.result.history.ToString();
    EXPECT_EQ(run.result.blocked_retries, 0u)
        << "SI must never block (Section 4.2)";
    EXPECT_TRUE(ViewEquivalent(run.result.history, analyzed))
        << IsolationLevelName(level) << " seed " << seed << "\nMV: "
        << run.result.history.ToString() << "\nSV: " << analyzed.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevelsManySeeds, EngineSweep,
    ::testing::Combine(::testing::ValuesIn(AllEngineLevels()),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                         55u, 89u)),
    [](const ::testing::TestParamInfo<std::tuple<IsolationLevel, uint64_t>>&
           info) {
      std::string name = IsolationLevelName(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// Read-only transactions under SI never block and always see a consistent
// snapshot, even while transfers rage (the Section 4.2 concurrency claim).
class SnapshotAuditSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotAuditSweep, AuditsAlwaysConsistentUnderSI) {
  const uint64_t seed = GetParam();
  WorkloadOptions opts;
  opts.num_items = 6;
  WorkloadGenerator gen(opts);
  Database db(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(gen.LoadInitial(db).ok());

  Rng rng(seed);
  Runner runner(db);
  for (int t = 1; t <= 4; ++t) {
    runner.AddProgram(t, gen.MakeTransferTxn(rng, rng.UniformRange(1, 20)));
  }
  runner.AddProgram(5, gen.MakeAuditTxn());
  runner.AddProgram(6, gen.MakeAuditTxn());
  auto result = runner.Run(runner.RandomSchedule(rng));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const int64_t expected = 6 * opts.initial_balance;
  EXPECT_TRUE(result->Committed(5));  // read-only SI txns never abort
  EXPECT_TRUE(result->Committed(6));
  EXPECT_EQ(result->locals.at(5).GetInt("sum"), expected) << "seed " << seed;
  EXPECT_EQ(result->locals.at(6).GetInt("sum"), expected) << "seed " << seed;
  EXPECT_EQ(result->blocked_retries, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotAuditSweep,
                         ::testing::Range(uint64_t{100}, uint64_t{120}));

// Under READ COMMITTED the same audit CAN see a torn total (inconsistent
// analysis) — demonstrate that at least one seed in the sweep does, so the
// SI guarantee above is not vacuous.
TEST(SnapshotAuditContrast, ReadCommittedAuditsCanTear) {
  int torn = 0;
  for (uint64_t seed = 100; seed < 140 && torn == 0; ++seed) {
    WorkloadOptions opts;
    opts.num_items = 6;
    WorkloadGenerator gen(opts);
    Database db(IsolationLevel::kReadCommitted);
    ASSERT_TRUE(gen.LoadInitial(db).ok());
    Rng rng(seed);
    Runner runner(db);
    for (int t = 1; t <= 4; ++t) {
      runner.AddProgram(t, gen.MakeTransferTxn(rng, rng.UniformRange(1, 20)));
    }
    runner.AddProgram(5, gen.MakeAuditTxn());
    auto result = runner.Run(runner.RandomSchedule(rng));
    ASSERT_TRUE(result.ok());
    if (result->Committed(5) &&
        result->locals.at(5).GetInt("sum") != 6 * opts.initial_balance) {
      ++torn;
    }
  }
  EXPECT_GT(torn, 0) << "no seed tore a READ COMMITTED audit";
}

}  // namespace
}  // namespace critique
