// Bulk predicate writes (UPDATE/DELETE ... WHERE): the paper's `w1[P]`
// action, Table 2's Write predicate locks, and their behaviour across the
// locking, SI and Oracle engines.

#include <gtest/gtest.h>

#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/mv_analysis.h"
#include "critique/analysis/phenomena.h"
#include "critique/engine/engine_factory.h"
#include "critique/engine/locking_engine.h"
#include "critique/engine/si_engine.h"

namespace critique {
namespace {

Predicate Dept(const char* dept) {
  return Predicate::Cmp("dept", CompareOp::kEq, Value(dept));
}

Row Emp(const char* dept, int64_t salary) {
  return Row().Set("dept", dept).Set("salary", salary);
}

Row GiveRaise(const Row& row) {
  Row out = row;
  auto salary = row.Get("salary").AsNumeric();
  out.Set("salary", static_cast<int64_t>(*salary) + 10);
  return out;
}

void LoadEmployees(Engine& e) {
  ASSERT_TRUE(e.Load("e1", Emp("sales", 100)).ok());
  ASSERT_TRUE(e.Load("e2", Emp("sales", 200)).ok());
  ASSERT_TRUE(e.Load("e3", Emp("eng", 300)).ok());
}

TEST(BulkOpsTest, UpdateWhereTransformsMatches) {
  LockingEngine e(IsolationLevel::kSerializable);
  LoadEmployees(e);
  ASSERT_TRUE(e.Begin(1).ok());
  auto n = e.UpdateWhere(1, "Sales", Dept("sales"), GiveRaise);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  ASSERT_TRUE(e.Commit(1).ok());

  ASSERT_TRUE(e.Begin(2).ok());
  EXPECT_TRUE((*e.Read(2, "e1"))->Get("salary").Equals(Value(110)));
  EXPECT_TRUE((*e.Read(2, "e2"))->Get("salary").Equals(Value(210)));
  EXPECT_TRUE((*e.Read(2, "e3"))->Get("salary").Equals(Value(300)));
}

TEST(BulkOpsTest, DeleteWhereRemovesMatches) {
  LockingEngine e(IsolationLevel::kSerializable);
  LoadEmployees(e);
  ASSERT_TRUE(e.Begin(1).ok());
  auto n = e.DeleteWhere(1, "Sales", Dept("sales"));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  ASSERT_TRUE(e.Commit(1).ok());
  EXPECT_EQ(e.store().size(), 1u);
}

TEST(BulkOpsTest, HistoryRecordsPredicateWrite) {
  LockingEngine e(IsolationLevel::kSerializable);
  LoadEmployees(e);
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.UpdateWhere(1, "Sales", Dept("sales"), GiveRaise).ok());
  ASSERT_TRUE(e.Commit(1).ok());
  const History& h = e.history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].ToString(), "w1[Sales]");
  EXPECT_EQ(h[0].type, Action::Type::kPredicateWrite);
  EXPECT_EQ(h[0].read_set, (std::vector<ItemId>{"e1", "e2"}));
  EXPECT_EQ(WrittenItems(h[0]), (std::vector<ItemId>{"e1", "e2"}));
}

TEST(BulkOpsTest, RollbackRestoresBulkWrites) {
  LockingEngine e(IsolationLevel::kSerializable);
  LoadEmployees(e);
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.UpdateWhere(1, "Sales", Dept("sales"), GiveRaise).ok());
  ASSERT_TRUE(e.DeleteWhere(1, "Eng", Dept("eng")).ok());
  ASSERT_TRUE(e.Abort(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  EXPECT_TRUE((*e.Read(2, "e1"))->Get("salary").Equals(Value(100)));
  EXPECT_TRUE(e.Read(2, "e3")->has_value());
}

TEST(BulkOpsTest, WritePredicateLockBlocksOverlappingBulkWrite) {
  // Even at READ UNCOMMITTED: write locks are long at every level >= 1.
  LockingEngine e(IsolationLevel::kReadUncommitted);
  LoadEmployees(e);
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.UpdateWhere(1, "Sales", Dept("sales"), GiveRaise).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  // Overlapping predicate: blocked.
  EXPECT_TRUE(e.UpdateWhere(2, "SalesAgain", Dept("sales"), GiveRaise)
                  .status()
                  .IsWouldBlock());
  // Provably disjoint predicate: proceeds.
  EXPECT_TRUE(e.UpdateWhere(2, "Eng", Dept("eng"), GiveRaise).ok());
  ASSERT_TRUE(e.Commit(1).ok());
  EXPECT_TRUE(e.UpdateWhere(2, "SalesAgain", Dept("sales"), GiveRaise).ok());
  ASSERT_TRUE(e.Commit(2).ok());
}

TEST(BulkOpsTest, WritePredicateLockBlocksItemWriteIntoPredicate) {
  LockingEngine e(IsolationLevel::kReadCommitted);
  LoadEmployees(e);
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.UpdateWhere(1, "Sales", Dept("sales"), GiveRaise).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  // Insert of a row entering the locked predicate: blocked (phantom).
  EXPECT_TRUE(e.Insert(2, "e9", Emp("sales", 50)).IsWouldBlock());
  // A row outside the predicate is fine.
  EXPECT_TRUE(e.Insert(2, "e8", Emp("eng", 50)).ok());
}

TEST(BulkOpsTest, PredicateReadBlocksOnBulkWriteLock) {
  LockingEngine e(IsolationLevel::kReadCommitted);
  LoadEmployees(e);
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.UpdateWhere(1, "Sales", Dept("sales"), GiveRaise).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  EXPECT_TRUE(
      e.ReadPredicate(2, "Sales", Dept("sales")).status().IsWouldBlock());
}

TEST(BulkOpsTest, SnapshotBulkUpdateUsesSnapshot) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("e1", Emp("sales", 100)).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Read(1, "e1").ok());  // pin the snapshot

  // A concurrent transaction moves e1 out of sales and commits.
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Write(2, "e1", Emp("eng", 100)).ok());
  ASSERT_TRUE(e.Commit(2).ok());

  // T1's bulk update still sees its snapshot (e1 in sales)...
  auto n = e.UpdateWhere(1, "Sales", Dept("sales"), GiveRaise);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  // ...but First-Committer-Wins refuses the commit (e1 was overwritten).
  EXPECT_TRUE(e.Commit(1).IsSerializationFailure());
}

TEST(BulkOpsTest, SnapshotBulkHistoriesValidate) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("e1", Emp("sales", 100)).ok());
  ASSERT_TRUE(e.Load("e2", Emp("sales", 200)).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.UpdateWhere(1, "Sales", Dept("sales"), GiveRaise).ok());
  ASSERT_TRUE(e.Commit(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  EXPECT_TRUE((*e.Read(2, "e1"))->Get("salary").Equals(Value(110)));
  ASSERT_TRUE(e.Commit(2).ok());
  EXPECT_TRUE(ValidateFirstCommitterWins(e.history()).ok());
}

TEST(BulkOpsTest, BaseImplementationWorksOnOracle) {
  auto e = CreateEngine(IsolationLevel::kOracleReadConsistency);
  ASSERT_TRUE(e->Load("e1", Emp("sales", 100)).ok());
  ASSERT_TRUE(e->Load("e2", Emp("sales", 200)).ok());
  ASSERT_TRUE(e->Begin(1).ok());
  auto n = e->UpdateWhere(1, "Sales", Dept("sales"), GiveRaise);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  ASSERT_TRUE(e->Commit(1).ok());
  ASSERT_TRUE(e->Begin(2).ok());
  EXPECT_TRUE((*e->Read(2, "e2"))->Get("salary").Equals(Value(210)));
}

// --- Detector integration ----------------------------------------------------

TEST(BulkOpsDetectorTest, PredicateWriteTriggersP3) {
  // r1[P] w2[P] c2 c1 with the same predicate name: P3 by name equality.
  auto h = *History::Parse("r1[P] w2[P] c2 c1");
  EXPECT_TRUE(Exhibits(h, Phenomenon::kP3));
  EXPECT_FALSE(Exhibits(h, Phenomenon::kA3));  // no re-read
  auto a3 = *History::Parse("r1[P] w2[P] c2 r1[P] c1");
  EXPECT_TRUE(Exhibits(a3, Phenomenon::kA3));
}

TEST(BulkOpsDetectorTest, DisjointPredicatesDoNotConflict) {
  Action pr = Action::PredicateRead(1, "Lo",
                                    Predicate::Cmp("v", CompareOp::kLt, 10));
  Action pw = Action::PredicateWrite(
      2, "Hi", Predicate::Cmp("v", CompareOp::kGt, 20));
  EXPECT_FALSE(Conflicts(pr, pw));
  EXPECT_FALSE(Conflicts(pw, pr));
}

TEST(BulkOpsDetectorTest, PredicateWriteVsItemOps) {
  Action pw = Action::PredicateWrite(
      1, "Sales", Predicate::Cmp("dept", CompareOp::kEq, Value("sales")));
  pw.read_set = {"e1", "e2"};

  ConflictKind kind;
  Action read_hit = Action::Read(2, "e1");
  EXPECT_TRUE(Conflicts(pw, read_hit, &kind));
  EXPECT_EQ(kind, ConflictKind::kWriteRead);

  Action read_miss = Action::Read(2, "e9");
  EXPECT_FALSE(Conflicts(pw, read_miss));

  // An item write whose image falls under the predicate conflicts even
  // without being in the recorded affected set (phantom).
  Action phantom_insert = Action::Write(2, "e9");
  phantom_insert.after_image = Emp("sales", 1);
  EXPECT_TRUE(Conflicts(pw, phantom_insert, &kind));
  EXPECT_EQ(kind, ConflictKind::kWriteWrite);
}

TEST(BulkOpsDetectorTest, DependencyGraphLabelsPredicateWrites) {
  auto h = *History::Parse("r1[P] w2[P] c2 c1");
  auto g = DependencyGraph::Build(h);
  ASSERT_FALSE(g.edges().empty());
  EXPECT_EQ(g.edges()[0].item, "<P>");
  EXPECT_EQ(g.edges()[0].kind, ConflictKind::kReadWrite);
}

TEST(BulkOpsDetectorTest, EngineBulkRunsAnalyzeCleanly) {
  // Serializable engine + bulk ops: the recorded history must be
  // serializable and free of all phenomena.
  LockingEngine e(IsolationLevel::kSerializable);
  LoadEmployees(e);
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.UpdateWhere(1, "Sales", Dept("sales"), GiveRaise).ok());
  ASSERT_TRUE(e.Commit(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.DeleteWhere(2, "Eng", Dept("eng")).ok());
  ASSERT_TRUE(e.Commit(2).ok());
  EXPECT_TRUE(IsSerializable(e.history()));
  EXPECT_TRUE(ExhibitedPhenomena(e.history()).empty());
}

}  // namespace
}  // namespace critique
