// ReadConsistencyEngine tests: Oracle's statement-level snapshots,
// First-Writer-Wins locking, and the Section 4.3 claims — stronger than
// READ COMMITTED (no P4C), but P4 / A5A / P2 still possible.

#include <gtest/gtest.h>

#include "critique/analysis/phenomena.h"
#include "critique/engine/read_consistency_engine.h"
#include "critique/exec/runner.h"

namespace critique {
namespace {

Value FinalScalar(Engine& engine, const ItemId& id, TxnId reader) {
  EXPECT_TRUE(engine.Begin(reader).ok());
  auto r = engine.Read(reader, id);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(engine.Commit(reader).ok());
  return r->has_value() ? (*r)->scalar() : Value();
}


// Wraps a read-consistency engine in a session facade; tests reach the
// raw engine through db.engine() for statement-snapshot assertions.
Database MakeDb() {
  DbOptions options;
  options.engine_factory = [] {
    return std::make_unique<ReadConsistencyEngine>();
  };
  return Database(options);
}

TEST(RCEngineTest, StatementLevelSnapshotAdvances) {
  ReadConsistencyEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  auto first = e.Read(1, "x");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE((*first)->scalar().Equals(Value(50)));

  // Another transaction commits a new value mid-flight.
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Write(2, "x", Row::Scalar(Value(99))).ok());
  ASSERT_TRUE(e.Commit(2).ok());

  // "As if the start-timestamp is advanced at each SQL statement": the
  // re-read sees the newer committed value (P2 possible, unlike SI).
  auto second = e.Read(1, "x");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE((*second)->scalar().Equals(Value(99)));
  ASSERT_TRUE(e.Commit(1).ok());
  EXPECT_TRUE(Exhibits(e.history(), Phenomenon::kA2));
}

TEST(RCEngineTest, NeverReadsUncommitted) {
  ReadConsistencyEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(10))).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  auto r = e.Read(2, "x");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->scalar().Equals(Value(50)));  // not the pending 10
}

TEST(RCEngineTest, FirstWriterWinsBlocksSecondWriter) {
  ReadConsistencyEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(0))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(1))).ok());
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(2))).IsWouldBlock());
  ASSERT_TRUE(e.Commit(1).ok());
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e.Commit(2).ok());
  EXPECT_TRUE(FinalScalar(e, "x", 9).Equals(Value(2)));
}

TEST(RCEngineTest, GeneralLostUpdatePossible) {
  // Application-level read-then-write across statements: P4 (the paper:
  // Read Consistency "allows ... general lost updates (P4)").
  Database db = MakeDb();
  auto& e = static_cast<ReadConsistencyEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(100))).ok());
  Runner runner(db);
  Program t1;
  t1.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 30);
    }).Commit();
  Program t2;
  t2.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 20);
    }).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(1));
  EXPECT_TRUE(result->Committed(2));
  EXPECT_TRUE(Exhibits(result->history, Phenomenon::kP4));
  EXPECT_TRUE(FinalScalar(e, "x", 9).Equals(Value(130)));  // +20 lost
}

TEST(RCEngineTest, UpdateStatementHasWriteConsistency) {
  // Statement-level UPDATE recomputes against the latest committed value
  // after the lock wait — no lost update between two UPDATE statements.
  Database db = MakeDb();
  auto& e = static_cast<ReadConsistencyEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(100))).ok());
  Runner runner(db);
  Program t1;
  t1.UpdateAddStatement("x", 30).Commit();
  Program t2;
  t2.UpdateAddStatement("x", 20).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 1 2"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(1));
  EXPECT_TRUE(result->Committed(2));
  EXPECT_TRUE(FinalScalar(e, "x", 9).Equals(Value(150)));  // both survive
}

TEST(RCEngineTest, CursorLostUpdatePrevented) {
  // FetchCursor is SELECT ... FOR UPDATE: P4C cannot arise (Section 4.3:
  // Read Consistency "disallows cursor lost updates (P4C)").
  Database db = MakeDb();
  auto& e = static_cast<ReadConsistencyEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(100))).ok());
  Runner runner(db);
  Program t1;
  t1.Fetch("x").WriteCursorComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 30);
    }).Commit();
  Program t2;
  t2.Fetch("x").WriteCursorComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 20);
    }).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(1));
  EXPECT_TRUE(result->Committed(2));
  EXPECT_FALSE(Exhibits(result->history, Phenomenon::kP4C));
  EXPECT_TRUE(FinalScalar(e, "x", 9).Equals(Value(150)));  // both survive
}

TEST(RCEngineTest, ReadSkewPossible) {
  // A5A: T1 reads x, T2 commits a transfer, T1's later statement sees the
  // new y — inconsistent pair (the paper: Read Consistency allows A5A).
  ReadConsistencyEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  auto x = e.Read(1, "x");
  ASSERT_TRUE(x.ok());

  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Write(2, "x", Row::Scalar(Value(10))).ok());
  ASSERT_TRUE(e.Write(2, "y", Row::Scalar(Value(90))).ok());
  ASSERT_TRUE(e.Commit(2).ok());

  auto y = e.Read(1, "y");
  ASSERT_TRUE(y.ok());
  ASSERT_TRUE(e.Commit(1).ok());
  int64_t sum = static_cast<int64_t>(*(*x)->scalar().AsNumeric()) +
                static_cast<int64_t>(*(*y)->scalar().AsNumeric());
  EXPECT_EQ(sum, 140);  // 50 + 90: read skew
  EXPECT_TRUE(Exhibits(e.history(), Phenomenon::kA5A));
}

TEST(RCEngineTest, WriteWriteDeadlockResolved) {
  Database db = MakeDb();
  auto& e = static_cast<ReadConsistencyEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(0))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(0))).ok());
  Runner runner(db);
  Program t1;
  t1.Write("x", Value(1)).Write("y", Value(1)).Commit();
  Program t2;
  t2.Write("y", Value(2)).Write("x", Value(2)).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 1 2 1 2"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->Committed(1) + result->Committed(2), 1);
  // The survivor wrote both items: x == y afterwards.
  EXPECT_TRUE(FinalScalar(e, "x", 8).Equals(FinalScalar(e, "y", 9)));
}

TEST(RCEngineTest, RollbackDiscardsPendingVersions) {
  ReadConsistencyEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(5))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(6))).ok());
  ASSERT_TRUE(e.Abort(1).ok());
  EXPECT_TRUE(FinalScalar(e, "x", 9).Equals(Value(5)));
}

}  // namespace
}  // namespace critique
