// Li et al. extension anomalies (arXiv:2110.14230): step-IAT and
// sawtooth, single-site and cross-shard, each checked against its
// expected verdict row and cross-checked by the online MVSG checker.

#include <gtest/gtest.h>

#include <algorithm>

#include "critique/analysis/mv_analysis.h"
#include "critique/harness/scenario.h"
#include "critique/shard/shard_scenarios.h"

namespace critique {
namespace {

bool ExpectedAt(const ExtensionScenario& s, IsolationLevel level) {
  return std::find(s.manifests_at.begin(), s.manifests_at.end(), level) !=
         s.manifests_at.end();
}

TEST(LiAnomalyTest, RegistryHasTheTwoShapes) {
  const auto& scenarios = LiAnomalyScenarios();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_NE(scenarios[0].title.find("step-IAT"), std::string::npos);
  EXPECT_NE(scenarios[1].title.find("sawtooth"), std::string::npos);
}

// Every engine level gets the verdict its row promises: the anomaly
// manifests exactly at the levels listed, and is prevented everywhere
// else (by blocking, aborting, or snapshot reads).
TEST(LiAnomalyTest, VerdictsMatchAcrossAllEngineLevels) {
  for (const ExtensionScenario& scenario : LiAnomalyScenarios()) {
    for (IsolationLevel level : AllEngineLevels()) {
      auto outcome = RunVariant(level, scenario.variant);
      ASSERT_TRUE(outcome.ok())
          << scenario.title << " at " << IsolationLevelName(level) << ": "
          << outcome.status().ToString();
      EXPECT_EQ(outcome->anomaly, ExpectedAt(scenario, level))
          << scenario.title << " at " << IsolationLevelName(level)
          << "\nhistory: " << outcome->history.ToString();
    }
  }
}

// When the anomaly manifests on the SI engine, the recorded multiversion
// history must be unserializable — the offline graph agrees with the
// semantic judgment.
TEST(LiAnomalyTest, ManifestedAnomaliesAreUnserializable) {
  for (const ExtensionScenario& scenario : LiAnomalyScenarios()) {
    if (!ExpectedAt(scenario, IsolationLevel::kSnapshotIsolation)) continue;
    auto outcome =
        RunVariant(IsolationLevel::kSnapshotIsolation, scenario.variant);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->anomaly) << scenario.title;
    EXPECT_FALSE(IsMVSerializable(outcome->history))
        << scenario.title << "\n" << outcome->history.ToString();
  }
}

ShardedDbOptions CheckedShardOptions(int shards, IsolationLevel level) {
  ShardedDbOptions opts(shards, level);
  opts.shard_options.online_check = true;
  return opts;
}

TEST(LiAnomalyTest, CrossShardStepIatManifestsUnderPerShardSI) {
  ShardedDatabase db(
      CheckedShardOptions(3, IsolationLevel::kSnapshotIsolation));
  auto out = RunCrossShardStepIat(db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->anomaly) << out->detail;
  // Every shard-local history is impeccable SI; the checker, judging the
  // declared SI contracts, excuses each shard's share of the cycle.
  EXPECT_EQ(db.CheckerReportAggregate().violations, 0u)
      << db.CheckerReportAggregate().ToString();
}

TEST(LiAnomalyTest, CrossShardStepIatPreventedUnderPerShardLocking) {
  ShardedDatabase db(CheckedShardOptions(3, IsolationLevel::kSerializable));
  auto out = RunCrossShardStepIat(db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->anomaly) << out->detail;
  // Serializable shards buy the prevention with blocking and a
  // distributed sacrifice.
  EXPECT_TRUE(out->blocked || out->aborted) << out->detail;
}

TEST(LiAnomalyTest, CrossShardSawtoothManifestsUnderPerShardSI) {
  ShardedDatabase db(
      CheckedShardOptions(3, IsolationLevel::kSnapshotIsolation));
  auto out = RunCrossShardSawtooth(db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Per-shard snapshots are taken at first touch: the reader's y and z
  // snapshots postdate commits its x snapshot predates.
  EXPECT_TRUE(out->anomaly) << out->detail;
  EXPECT_EQ(db.CheckerReportAggregate().violations, 0u)
      << db.CheckerReportAggregate().ToString();
}

TEST(LiAnomalyTest, CrossShardSawtoothPreventedUnderPerShardLocking) {
  ShardedDatabase db(CheckedShardOptions(3, IsolationLevel::kSerializable));
  auto out = RunCrossShardSawtooth(db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->anomaly) << out->detail;
  EXPECT_TRUE(out->blocked) << out->detail;
}

}  // namespace
}  // namespace critique
