#include "critique/common/json_writer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace critique {
namespace {

TEST(JsonWriterTest, NestedObjectAndArrayCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("throughput");
  w.Key("threads");
  w.Int(8);
  w.Key("engines");
  w.BeginArray();
  w.BeginObject();
  w.Key("name");
  w.String("SI");
  w.Key("ok");
  w.Bool(true);
  w.EndObject();
  w.BeginObject();
  w.Key("name");
  w.String("Locking");
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"bench\":\"throughput\",\"threads\":8,\"engines\":"
            "[{\"name\":\"SI\",\"ok\":true},{\"name\":\"Locking\"}]}");
}

TEST(JsonWriterTest, TopLevelArrayOfScalars) {
  JsonWriter w;
  w.BeginArray();
  w.Int(1);
  w.Double(2.5);
  w.Null();
  w.UInt(7);
  w.EndArray();
  EXPECT_EQ(w.str(), "[1,2.5,null,7]");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("msg");
  w.String("a\"b\\c\nd\te");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"msg\":\"a\\\"b\\\\c\\nd\\te\"}");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(INFINITY);
  w.Double(0.125);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,0.125]");
}

}  // namespace
}  // namespace critique
