// Striped lock table: configuration, cross-bucket conflict correctness,
// predicate locks against the striped item table, deadlock detection
// across buckets (cooperative and blocking), and a blocking stress run
// asserting no lost wakeups — every acquire terminates — with consistent
// counters.  Run under --tsan for the data-race certificate.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "critique/db/database.h"
#include "critique/lock/lock_manager.h"

namespace critique {
namespace {

using std::chrono::milliseconds;

LockSpec W(TxnId t, const ItemId& id) {
  return LockSpec::WriteItem(t, id, std::nullopt, std::nullopt);
}
LockSpec R(TxnId t, const ItemId& id) {
  return LockSpec::ReadItem(t, id, std::nullopt);
}

TEST(LockStripingTest, StripeCountConfigurable) {
  LockManager lm(7);
  EXPECT_EQ(lm.stripe_count(), 7u);
  EXPECT_TRUE(lm.SetStripeCount(32));
  EXPECT_EQ(lm.stripe_count(), 32u);
  // Clamped to at least one bucket.
  EXPECT_TRUE(lm.SetStripeCount(0));
  EXPECT_EQ(lm.stripe_count(), 1u);
}

TEST(LockStripingTest, SetStripeCountRefusedWhileLocksHeld) {
  LockManager lm(4);
  auto h = lm.TryAcquire(R(1, "x"));
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(lm.SetStripeCount(8));
  EXPECT_EQ(lm.stripe_count(), 4u);
  lm.Release(*h);
  EXPECT_TRUE(lm.SetStripeCount(8));
}

TEST(LockStripingTest, ConflictsDetectedAtEveryStripeCount) {
  // Same-item conflicts must be found whatever the partitioning; items
  // spread across buckets must not conflict.
  for (size_t stripes : {1u, 2u, 16u, 48u}) {
    LockManager lm(stripes);
    std::vector<LockHandle> held;
    for (int k = 0; k < 64; ++k) {
      auto h = lm.TryAcquire(W(1, "item" + std::to_string(k)));
      ASSERT_TRUE(h.ok()) << "stripes=" << stripes << " k=" << k;
      held.push_back(*h);
    }
    EXPECT_EQ(lm.HeldCountBy(1), 64u);
    for (int k = 0; k < 64; ++k) {
      EXPECT_TRUE(lm.TryAcquire(W(2, "item" + std::to_string(k)))
                      .status()
                      .IsWouldBlock())
          << "stripes=" << stripes << " k=" << k;
    }
    lm.ReleaseAll(1);
    EXPECT_EQ(lm.HeldCount(), 0u);
    for (int k = 0; k < 64; ++k) {
      EXPECT_TRUE(lm.TryAcquire(W(2, "item" + std::to_string(k))).ok());
    }
  }
}

TEST(LockStripingTest, PredicateLockCoversItemsInAllBuckets) {
  LockManager lm(16);
  Predicate actives = Predicate::Cmp("active", CompareOp::kEq, true);
  ASSERT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(1, actives)).ok());
  // Covered writes conflict wherever their item hashes.
  Row covered = Row().Set("active", true);
  Row uncovered = Row().Set("active", false);
  for (int k = 0; k < 32; ++k) {
    ItemId id = "emp" + std::to_string(k);
    EXPECT_TRUE(lm.TryAcquire(LockSpec::WriteItem(2, id, covered, covered))
                    .status()
                    .IsWouldBlock())
        << id;
    EXPECT_TRUE(
        lm.TryAcquire(LockSpec::WriteItem(2, id, uncovered, uncovered)).ok())
        << id;
  }
}

TEST(LockStripingTest, ItemLocksInAllBucketsBlockPredicate) {
  LockManager lm(16);
  Row covered = Row().Set("active", true);
  std::vector<LockHandle> held;
  for (int k = 0; k < 8; ++k) {
    auto h = lm.TryAcquire(
        LockSpec::WriteItem(1, "emp" + std::to_string(k), covered, covered));
    ASSERT_TRUE(h.ok());
    held.push_back(*h);
  }
  Predicate actives = Predicate::Cmp("active", CompareOp::kEq, true);
  // The predicate read must see the conflicting X lock whatever bucket it
  // lives in: release one at a time and re-probe.
  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(2, actives))
                    .status()
                    .IsWouldBlock())
        << "after " << i << " releases";
    lm.Release(held[i]);
  }
  EXPECT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(2, actives)).ok());
}

TEST(LockStripingTest, CooperativeDeadlockAcrossBuckets) {
  // The classic 2-cycle with items that (at 16 stripes) land in distinct
  // buckets: detection must walk the global graph, not one bucket's view.
  LockManager lm(16);
  ASSERT_TRUE(lm.TryAcquire(W(1, "alpha")).ok());
  ASSERT_TRUE(lm.TryAcquire(W(2, "omega")).ok());
  EXPECT_TRUE(lm.TryAcquire(W(1, "omega")).status().IsWouldBlock());
  EXPECT_TRUE(lm.TryAcquire(W(2, "alpha")).status().IsDeadlock());
  EXPECT_EQ(lm.stats().deadlocks, 1u);
}

TEST(LockStripingTest, BlockingDeadlockAcrossBucketsDetectedWhileParked) {
  // T1 parks waiting for T2's lock; T2 then closes the cycle from another
  // thread.  One of the two must be named victim (the parked waiter's
  // recheck or the second requester's probe), and both threads terminate.
  LockManager lm(16);
  ASSERT_TRUE(lm.TryAcquire(W(1, "alpha")).ok());
  ASSERT_TRUE(lm.TryAcquire(W(2, "omega")).ok());

  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    auto r = lm.Acquire(W(1, "omega"), milliseconds(2000), milliseconds(10));
    if (!r.ok() && r.status().IsDeadlock()) deadlocks.fetch_add(1);
    lm.ReleaseAll(1);
  });
  // Give T1 time to park, then close the cycle.
  std::this_thread::sleep_for(milliseconds(50));
  std::thread t2([&] {
    auto r = lm.Acquire(W(2, "alpha"), milliseconds(2000), milliseconds(10));
    if (!r.ok() && r.status().IsDeadlock()) deadlocks.fetch_add(1);
    lm.ReleaseAll(2);
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_GE(lm.stats().deadlocks, 1u);
  EXPECT_EQ(lm.HeldCount(), 0u);
}

TEST(LockStripingTest, BlockingHandoffAcrossReleaseAll) {
  // A waiter parked on a bucket must be woken by ReleaseAll from another
  // thread (no lost wakeup), well before its timeout.
  LockManager lm(16);
  ASSERT_TRUE(lm.TryAcquire(W(1, "hot")).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    auto r = lm.Acquire(W(2, "hot"), milliseconds(5000), milliseconds(1000));
    granted.store(r.ok());
  });
  std::this_thread::sleep_for(milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  lm.ReleaseAll(1);
  waiter.join();
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(granted.load());
  // Notification, not the 1000ms recheck slice, must have woken it.
  EXPECT_LT(waited, milliseconds(900));
  lm.ReleaseAll(2);
}

// Stress: threads hammer overlapping hot keys through the blocking
// protocol with two-lock transactions in *descending-then-ascending*
// mixed order, so real deadlocks occur.  Every acquire must terminate
// (grant, deadlock, or timeout), all locks drain, and the counters add
// up — the "no lost wakeups, no missed deadlocks" certificate.
TEST(LockStripingStressTest, NoLostWakeupsNoStrandedLocks) {
  LockManager lm(16);
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 120;
  constexpr int kHot = 6;
  std::atomic<uint64_t> granted_pairs{0}, deadlock_aborts{0}, timeouts{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t rng = 0x243f6a8885a308d3ull * (t + 1);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const TxnId txn =
            static_cast<TxnId>(t + 1 + (i + 1) * kThreads);
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        int a = static_cast<int>((rng >> 33) % kHot);
        int b = static_cast<int>((rng >> 17) % kHot);
        if (a == b) b = (b + 1) % kHot;
        // Mixed order on purpose: half the threads go high->low.
        if ((t % 2 == 0) == (a < b)) std::swap(a, b);
        auto h1 = lm.Acquire(W(txn, "hot" + std::to_string(a)),
                             milliseconds(500), milliseconds(5));
        if (!h1.ok()) {
          if (h1.status().IsDeadlock()) deadlock_aborts.fetch_add(1);
          if (h1.status().IsWouldBlock()) timeouts.fetch_add(1);
          lm.ReleaseAll(txn);
          continue;
        }
        auto h2 = lm.Acquire(W(txn, "hot" + std::to_string(b)),
                             milliseconds(500), milliseconds(5));
        if (h2.ok()) {
          granted_pairs.fetch_add(1);
        } else {
          if (h2.status().IsDeadlock()) deadlock_aborts.fetch_add(1);
          if (h2.status().IsWouldBlock()) timeouts.fetch_add(1);
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Everyone terminated (join returned) and nothing is stranded.
  EXPECT_EQ(lm.HeldCount(), 0u);
  const LockStats st = lm.stats();
  EXPECT_EQ(st.acquired, st.released);
  EXPECT_EQ(st.deadlocks, deadlock_aborts.load());
  EXPECT_EQ(st.timeouts, timeouts.load());
  // The mixed acquisition order over a tiny hot set makes real cycles all
  // but certain; "no missed deadlocks" here means the run neither hung
  // nor leaked — and most transactions still succeeded.
  EXPECT_GT(granted_pairs.load(),
            static_cast<uint64_t>(kThreads * kTxnsPerThread / 2));
}

// End-to-end: the stripes knob reaches the engines through DbOptions, and
// a striped engine run behaves identically (same invariant) to stripes=1.
TEST(LockStripingTest, DbOptionsStripesPlumbedThroughEngines) {
  for (size_t stripes : {1u, 32u}) {
    DbOptions opts(IsolationLevel::kSerializable);
    opts.mode = ConcurrencyMode::kBlocking;
    opts.lock_stripes = stripes;
    Database db(opts);
    for (int k = 0; k < 4; ++k) {
      (void)db.Load("acct" + std::to_string(k), Value(int64_t{100}));
    }
    constexpr int kThreads = 3;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&db, t] {
        for (int i = 0; i < 30; ++i) {
          (void)db.Execute([&](Transaction& txn) {
            const std::string from = "acct" + std::to_string((t + i) % 4);
            const std::string to = "acct" + std::to_string((t + i + 1) % 4);
            auto a = txn.GetScalar(from);
            if (!a.ok()) return a.status();
            auto b = txn.GetScalar(to);
            if (!b.ok()) return b.status();
            auto s = txn.Put(from, Value(*a->AsNumeric() - 1));
            if (!s.ok()) return s;
            return txn.Put(to, Value(*b->AsNumeric() + 1));
          });
        }
      });
    }
    for (auto& w : workers) w.join();
    // Transfers preserve the sum at Serializable whatever the striping.
    int64_t sum = 0;
    auto t = db.Begin();
    for (int k = 0; k < 4; ++k) {
      auto v = t.GetScalar("acct" + std::to_string(k));
      ASSERT_TRUE(v.ok());
      sum += static_cast<int64_t>(*v->AsNumeric());
    }
    EXPECT_EQ(sum, 400) << "stripes=" << stripes;
  }
}

}  // namespace
}  // namespace critique
