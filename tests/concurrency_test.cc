// Multi-threaded stress tests of the blocking session API: the engines
// must produce consistent stats and anomaly-free histories under genuine
// concurrency, not just under cooperative interleaving.  Run these under
// `./scripts/check.sh --tsan` to certify the thread-safety contract.

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/mv_analysis.h"
#include "critique/db/database.h"
#include "critique/lock/lock_manager.h"
#include "critique/workload/parallel_driver.h"
#include "critique/workload/workload.h"

namespace critique {
namespace {

using std::chrono::milliseconds;

// --- LockManager blocking protocol -----------------------------------------

TEST(LockManagerBlockingTest, AcquireWaitsUntilRelease) {
  LockManager lm;
  auto h1 = lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt,
                                              std::nullopt));
  ASSERT_TRUE(h1.ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    auto h2 = lm.Acquire(LockSpec::WriteItem(2, "x", std::nullopt,
                                             std::nullopt),
                         milliseconds(5000));
    EXPECT_TRUE(h2.ok()) << h2.status().ToString();
    granted.store(true);
  });

  // Handshake: wait until the waiter has really parked (its wait episode
  // shows up in stats) before releasing — a bare sleep is flaky on slow
  // single-core CI.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (lm.stats().blocked < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_FALSE(granted.load());

  lm.Release(*h1);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(lm.stats().blocked, 1u);
  EXPECT_EQ(lm.stats().deadlocks, 0u);
}

TEST(LockManagerBlockingTest, TimeoutAnswersWouldBlock) {
  LockManager lm;
  auto h1 = lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt,
                                              std::nullopt));
  ASSERT_TRUE(h1.ok());

  auto h2 = lm.Acquire(LockSpec::WriteItem(2, "x", std::nullopt,
                                           std::nullopt),
                       milliseconds(40));
  ASSERT_FALSE(h2.ok());
  EXPECT_TRUE(h2.status().IsWouldBlock()) << h2.status().ToString();
  EXPECT_EQ(lm.stats().timeouts, 1u);

  // The timed-out waiter left no stale wait edges: T1 can still release
  // and a retry succeeds.
  lm.Release(*h1);
  auto h3 = lm.Acquire(LockSpec::WriteItem(2, "x", std::nullopt,
                                           std::nullopt),
                       milliseconds(40));
  EXPECT_TRUE(h3.ok());
}

TEST(LockManagerBlockingTest, CustomDbOptionsTimeoutAndCheckInterval) {
  // The knobs ride DbOptions end to end: a short custom lock-wait timeout
  // must answer kWouldBlock in roughly that time (not the 250ms default),
  // and the custom deadlock-check interval must reach the engine.
  DbOptions opts(IsolationLevel::kSerializable);
  opts.mode = ConcurrencyMode::kBlocking;
  opts.lock_wait_timeout = milliseconds(120);
  opts.deadlock_check_interval = milliseconds(10);
  Database db(opts);
  EXPECT_EQ(db.engine().concurrency().lock_wait_timeout, milliseconds(120));
  EXPECT_EQ(db.engine().concurrency().deadlock_check_interval,
            milliseconds(10));
  ASSERT_TRUE(db.Load("x", Value(1)).ok());

  Transaction holder = db.Begin();
  ASSERT_TRUE(holder.Put("x", Value(2)).ok());  // long X lock until commit

  Transaction contender = db.Begin();
  const auto t0 = std::chrono::steady_clock::now();
  Status s = contender.Put("x", Value(3));
  const auto waited = std::chrono::duration_cast<milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_TRUE(s.IsWouldBlock()) << s.ToString();
  // The wait honored the configured budget: at least ~the timeout (minus
  // scheduler slop), and nowhere near unbounded.  1-core CI: generous cap.
  EXPECT_GE(waited, milliseconds(80)) << waited.count() << "ms";
  EXPECT_LT(waited, milliseconds(5000)) << waited.count() << "ms";

  ASSERT_TRUE(holder.Commit().ok());
  EXPECT_TRUE(contender.Put("x", Value(3)).ok());  // lock free again
  EXPECT_TRUE(contender.Commit().ok());
}

TEST(LockManagerBlockingTest, DeadlockAcrossSleepingWaitersIsDetected) {
  LockManager lm;
  auto hx = lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt,
                                              std::nullopt));
  auto hy = lm.TryAcquire(LockSpec::WriteItem(2, "y", std::nullopt,
                                              std::nullopt));
  ASSERT_TRUE(hx.ok());
  ASSERT_TRUE(hy.ok());

  // T1 (holds x) wants y; T2 (holds y) wants x.  Whichever request closes
  // the cycle — possibly while the other thread is already asleep — must
  // be answered Deadlock; the survivor is granted once the victim's locks
  // go away.
  std::atomic<int> deadlocks{0};
  std::atomic<int> grants{0};
  auto contend = [&](TxnId me, const ItemId& want) {
    auto r = lm.Acquire(LockSpec::WriteItem(me, want, std::nullopt,
                                            std::nullopt),
                        milliseconds(5000));
    if (r.ok()) {
      ++grants;
    } else if (r.status().IsDeadlock()) {
      ++deadlocks;
      lm.ReleaseAll(me);  // what an engine's rollback would do
    } else {
      ADD_FAILURE() << "unexpected status: " << r.status().ToString();
    }
  };
  std::thread t1(contend, 1, "y");
  std::thread t2(contend, 2, "x");
  t1.join();
  t2.join();

  EXPECT_EQ(deadlocks.load(), 1);
  EXPECT_EQ(grants.load(), 1);
  EXPECT_EQ(lm.stats().deadlocks, 1u);
}

// --- engine stress under the blocking Database ------------------------------

DbOptions BlockingOptions(IsolationLevel level, uint64_t seed = 7) {
  DbOptions opts(level);
  opts.mode = ConcurrencyMode::kBlocking;
  opts.lock_wait_timeout = milliseconds(2000);  // 1-core CI: be generous
  opts.seed = seed;
  return opts;
}

struct StressOutcome {
  ParallelRunStats run;
  EngineStats stats;
};

StressOutcome StressMixed(Database& db, int threads, uint64_t per_thread) {
  WorkloadOptions wopts;
  wopts.num_items = 16;
  wopts.zipf_theta = 0.8;
  wopts.ops_per_txn = 4;
  wopts.write_fraction = 0.5;
  WorkloadGenerator gen(wopts);
  EXPECT_TRUE(gen.LoadInitial(db).ok());

  ParallelDriverOptions dopts;
  dopts.threads = threads;
  dopts.txns_per_thread = per_thread;
  ParallelDriver driver(db, dopts);
  StressOutcome out;
  out.run = driver.Run([&gen](Transaction& txn, Rng& rng) {
    return gen.ApplyMixedTxn(txn, rng);
  });
  out.stats = db.StatsSnapshot();
  return out;
}

class EngineStressTest : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(EngineStressTest, StatsStayConsistentUnderConcurrentSessions) {
  Database db(BlockingOptions(GetParam()));
  StressOutcome out = StressMixed(db, /*threads=*/4, /*per_thread=*/25);

  // Client and engine views of the run must agree exactly:
  // every successful Execute is one engine commit ...
  EXPECT_EQ(out.run.committed, out.run.engine_commits);
  // ... every attempt or policy retry began exactly one engine
  // transaction, and every one of them reached a terminal state.
  EXPECT_EQ(out.run.attempts + out.run.retries,
            out.stats.finished_txns());
  EXPECT_EQ(out.stats.finished_txns(),
            out.run.engine_commits + out.run.engine_aborts);
  EXPECT_EQ(db.open_transactions(), 0);

  // The recorded history agrees with the counters action-for-action.
  const History& h = db.history();
  EXPECT_TRUE(h.Validate().ok());
  EXPECT_EQ(h.Committed().size(), out.stats.commits);
  EXPECT_EQ(h.Aborted().size(), out.stats.total_aborts());
  EXPECT_TRUE(h.ActiveAtEnd().empty());

  // Under 4 threads the run must make real progress, whatever the level.
  EXPECT_GT(out.run.committed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineStressTest,
    ::testing::Values(IsolationLevel::kSerializable,
                      IsolationLevel::kSnapshotIsolation,
                      IsolationLevel::kSerializableSI,
                      IsolationLevel::kOracleReadConsistency,
                      IsolationLevel::kReadCommitted),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      switch (info.param) {
        case IsolationLevel::kSerializable: return "LockingSerializable";
        case IsolationLevel::kSnapshotIsolation: return "SnapshotIsolation";
        case IsolationLevel::kSerializableSI: return "SSI";
        case IsolationLevel::kOracleReadConsistency: return "OracleRC";
        case IsolationLevel::kReadCommitted: return "LockingReadCommitted";
        default: return "Other";
      }
    });

// --- lost updates -----------------------------------------------------------

class NoLostUpdateTest : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(NoLostUpdateTest, HotCounterNeverLosesIncrements) {
  Database db(BlockingOptions(GetParam(), /*seed=*/11));
  const uint64_t kItems = 4;
  WorkloadOptions wopts;
  wopts.num_items = kItems;
  wopts.zipf_theta = 0.99;  // hammer the hot keys
  WorkloadGenerator gen(wopts);
  ASSERT_TRUE(gen.LoadInitial(db).ok());
  const int64_t initial = WorkloadGenerator::TotalBalance(db, kItems);

  ParallelDriverOptions dopts;
  dopts.threads = 4;
  dopts.txns_per_thread = 25;
  ParallelDriver driver(db, dopts);
  // Each transaction increments exactly one item, so the committed count
  // is the exact expected gain — a lost update shows as a shortfall.
  ParallelRunStats run = driver.Run([&gen](Transaction& txn, Rng& rng) {
    const ItemId item = WorkloadGenerator::ItemName(
        rng.Uniform(gen.options().num_items));
    auto v = txn.GetScalar(item);
    if (!v.ok()) return v.status();
    auto n = v->AsNumeric();
    return txn.Put(item, Value(static_cast<int64_t>(n.value_or(0)) + 1));
  });

  const int64_t final_sum = WorkloadGenerator::TotalBalance(db, kItems);
  EXPECT_EQ(final_sum, initial + static_cast<int64_t>(run.committed));
  EXPECT_GT(run.committed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    StrongLevels, NoLostUpdateTest,
    ::testing::Values(IsolationLevel::kSerializable,
                      IsolationLevel::kSnapshotIsolation,
                      IsolationLevel::kSerializableSI),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      switch (info.param) {
        case IsolationLevel::kSerializable: return "LockingSerializable";
        case IsolationLevel::kSnapshotIsolation: return "SnapshotIsolation";
        case IsolationLevel::kSerializableSI: return "SSI";
        default: return "Other";
      }
    });

TEST(ConcurrencyTest, TransferSumInvariantHolds) {
  for (IsolationLevel level : {IsolationLevel::kSerializable,
                               IsolationLevel::kSnapshotIsolation}) {
    Database db(BlockingOptions(level, /*seed=*/13));
    const uint64_t kItems = 8;
    WorkloadOptions wopts;
    wopts.num_items = kItems;
    wopts.zipf_theta = 0.7;
    WorkloadGenerator gen(wopts);
    ASSERT_TRUE(gen.LoadInitial(db).ok());
    const int64_t initial = WorkloadGenerator::TotalBalance(db, kItems);

    ParallelDriverOptions dopts;
    dopts.threads = 4;
    dopts.txns_per_thread = 20;
    ParallelDriver driver(db, dopts);
    (void)driver.Run([&gen](Transaction& txn, Rng& rng) {
      return gen.ApplyTransferTxn(txn, rng, /*amount=*/3);
    });

    EXPECT_EQ(WorkloadGenerator::TotalBalance(db, kItems), initial)
        << db.name();
  }
}

// --- serializability of concurrent histories --------------------------------

TEST(ConcurrencyTest, CommittedSerializableHistoriesStaySerializable) {
  // The property the whole suite leans on — engines produce, detectors
  // judge — extended to true parallelism: whatever interleaving the OS
  // produced, the committed projection of a Serializable run must be
  // serializable *by the criterion that matches the engine's history
  // kind*.
  //
  //  * The locking engine executes in place: its recorded order is the
  //    lock-serialized single-version execution, so the single-version
  //    dependency-graph acyclicity check applies directly.
  //  * The SSI engine records a *multiversion* history, judged by MVSG
  //    acyclicity ([BHG] Ch. 5 — one-copy serializability, the Section
  //    4.2 touchstone).  The raw single-version reading this test once
  //    applied was wrong in both directions there: an old-snapshot read
  //    recorded after a newer commit is legal SI behavior but parses as a
  //    backward wr edge (the source of this test's historical ~1/15 TSan
  //    flake), while a genuine dangerous-structure escape can parse as
  //    forward edges and hide (tests/ssi_escape_test.cc pins that case
  //    deterministically).  `scripts/check.sh --stress` loops this test
  //    30x under TSan to keep it pinned.
  for (IsolationLevel level : {IsolationLevel::kSerializable,
                               IsolationLevel::kSerializableSI}) {
    Database db(BlockingOptions(level, /*seed=*/17));
    StressOutcome out = StressMixed(db, /*threads=*/3, /*per_thread=*/12);
    EXPECT_GT(out.run.committed, 0u) << db.name();
    if (level == IsolationLevel::kSerializable) {
      EXPECT_TRUE(IsSerializable(db.history())) << db.name();
    } else {
      EXPECT_TRUE(IsMVSerializable(db.history()))
          << db.name() << "\n"
          << MVSerializationGraph::Build(db.history()).ToString();
    }
  }
}

TEST(ConcurrencyTest, InsertPreconditionRecheckedAfterBlockingWait) {
  // A duplicate Insert whose precondition passed before parking on the
  // first inserter's X lock must still fail once the first insert
  // commits — the re-check runs after the wait, under the granted lock.
  for (IsolationLevel level : {IsolationLevel::kSerializable,
                               IsolationLevel::kOracleReadConsistency}) {
    Database db(BlockingOptions(level));
    Transaction t1 = db.Begin();
    ASSERT_TRUE(t1.Insert("x", Row::Scalar(Value(int64_t{1}))).ok())
        << db.name();

    Status t2_status;
    std::thread worker([&] {
      Transaction t2 = db.Begin();
      t2_status = t2.Insert("x", Row::Scalar(Value(int64_t{2})));
      (void)t2.Rollback();
    });
    std::this_thread::sleep_for(milliseconds(50));  // let T2 park
    ASSERT_TRUE(t1.Commit().ok()) << db.name();
    worker.join();

    // Whether T2 parked or arrived after the commit, the answer is the
    // same: the item exists.
    EXPECT_TRUE(t2_status.IsFailedPrecondition())
        << db.name() << ": " << t2_status.ToString();
  }
}

// --- facade-level thread-safety pieces --------------------------------------

TEST(ConcurrencyTest, ForkRngGivesDeterministicIndependentStreams) {
  Database a(BlockingOptions(IsolationLevel::kSnapshotIsolation, 42));
  Database b(BlockingOptions(IsolationLevel::kSnapshotIsolation, 42));
  Rng a1 = a.ForkRng(), a2 = a.ForkRng();
  Rng b1 = b.ForkRng(), b2 = b.ForkRng();
  // Same facade seed => same forks, in order (reproducible runs) ...
  EXPECT_EQ(a1.Next(), b1.Next());
  EXPECT_EQ(a2.Next(), b2.Next());
  // ... and sibling forks are distinct streams.
  Rng c1 = a.ForkRng();
  EXPECT_NE(a1.Next(), c1.Next());
}

TEST(ConcurrencyTest, ConcurrentBeginsAssignUniqueIds) {
  Database db(BlockingOptions(IsolationLevel::kSnapshotIsolation));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::vector<TxnId>> ids(kThreads);
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&db, &ids, t] {
        for (int i = 0; i < kPerThread; ++i) {
          Transaction txn = db.Begin();
          ids[static_cast<size_t>(t)].push_back(txn.id());
          (void)txn.Rollback();
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  std::set<TxnId> unique;
  for (const auto& v : ids) unique.insert(v.begin(), v.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(db.open_transactions(), 0);
}

}  // namespace
}  // namespace critique
