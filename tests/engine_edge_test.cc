// Cross-engine edge behaviour: the semantics contract corners every
// implementation must honour — failed operations mutate nothing, stats
// track faithfully, atomic Update statements behave per engine, and
// transaction lifecycle errors are uniform.

#include <gtest/gtest.h>

#include "critique/engine/engine_factory.h"
#include "critique/engine/locking_engine.h"
#include "critique/engine/si_engine.h"

namespace critique {
namespace {

class EveryEngine : public ::testing::TestWithParam<IsolationLevel> {
 protected:
  std::unique_ptr<Engine> Make() { return CreateEngine(GetParam()); }
};

TEST_P(EveryEngine, LifecycleErrorsUniform) {
  auto e = Make();
  EXPECT_FALSE(e->Begin(0).ok());
  EXPECT_FALSE(e->Begin(-3).ok());
  ASSERT_TRUE(e->Begin(1).ok());
  EXPECT_FALSE(e->Begin(1).ok());  // reuse

  EXPECT_TRUE(e->Read(99, "x").status().IsTransactionAborted());
  EXPECT_TRUE(e->Write(99, "x", Row::Scalar(Value(1)))
                  .IsTransactionAborted());
  EXPECT_TRUE(e->Commit(99).IsTransactionAborted());
  EXPECT_TRUE(e->Abort(99).IsTransactionAborted());

  ASSERT_TRUE(e->Commit(1).ok());
  EXPECT_TRUE(e->Commit(1).IsTransactionAborted());  // double commit
  EXPECT_TRUE(e->Read(1, "x").status().IsTransactionAborted());
}

TEST_P(EveryEngine, ReadingAbsentItemsYieldsNullopt) {
  auto e = Make();
  ASSERT_TRUE(e->Begin(1).ok());
  auto r = e->Read(1, "ghost");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
  auto scan = e->ReadPredicate(1, "All", Predicate::All());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->empty());
}

TEST_P(EveryEngine, StatsCountCommitsAndAborts) {
  auto e = Make();
  ASSERT_TRUE(e->Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e->Begin(1).ok());
  ASSERT_TRUE(e->Read(1, "x").ok());
  ASSERT_TRUE(e->Commit(1).ok());
  ASSERT_TRUE(e->Begin(2).ok());
  ASSERT_TRUE(e->Write(2, "x", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e->Abort(2).ok());
  EXPECT_EQ(e->stats().commits, 1u);
  EXPECT_EQ(e->stats().aborts, 1u);
  EXPECT_GE(e->stats().reads, 1u);
  EXPECT_EQ(e->stats().writes, 1u);
}

TEST_P(EveryEngine, AbortedWritesInvisibleAfterwards) {
  auto e = Make();
  ASSERT_TRUE(e->Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e->Begin(1).ok());
  ASSERT_TRUE(e->Write(1, "x", Row::Scalar(Value(99))).ok());
  ASSERT_TRUE(e->Abort(1).ok());
  ASSERT_TRUE(e->Begin(2).ok());
  auto r = e->Read(2, "x");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->scalar().Equals(Value(1)));
  ASSERT_TRUE(e->Commit(2).ok());
}

TEST_P(EveryEngine, UpdateStatementIncrementsSerially) {
  auto e = Make();
  ASSERT_TRUE(e->Load("x", Row::Scalar(Value(10))).ok());
  for (TxnId t = 1; t <= 3; ++t) {
    ASSERT_TRUE(e->Begin(t).ok());
    ASSERT_TRUE(e->Update(t, "x", [](const std::optional<Row>& row) {
      int64_t cur = row ? static_cast<int64_t>(*row->scalar().AsNumeric())
                        : 0;
      return Row::Scalar(Value(cur + 5));
    }).ok());
    ASSERT_TRUE(e->Commit(t).ok());
  }
  ASSERT_TRUE(e->Begin(9).ok());
  auto r = e->Read(9, "x");
  EXPECT_TRUE((*r)->scalar().Equals(Value(25)));
}

TEST_P(EveryEngine, HistoryValidatesAfterAnyRun) {
  auto e = Make();
  ASSERT_TRUE(e->Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e->Begin(1).ok());
  ASSERT_TRUE(e->Read(1, "x").ok());
  ASSERT_TRUE(e->Write(1, "x", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e->Commit(1).ok());
  ASSERT_TRUE(e->Begin(2).ok());
  ASSERT_TRUE(e->Read(2, "x").ok());
  ASSERT_TRUE(e->Abort(2).ok());
  EXPECT_TRUE(e->history().Validate().ok());
  EXPECT_EQ(e->history().Committed(), std::set<TxnId>{1});
  EXPECT_EQ(e->history().Aborted(), std::set<TxnId>{2});
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, EveryEngine, ::testing::ValuesIn(AllEngineLevels()),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      std::string name = IsolationLevelName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- Engine-specific corners -------------------------------------------------

TEST(EngineEdgeTest, WouldBlockLeavesNoTrace) {
  // A blocked write must not appear in the history nor change the store.
  LockingEngine e(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  size_t before = e.history().size();
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(3))).IsWouldBlock());
  EXPECT_EQ(e.history().size(), before);
  EXPECT_EQ(e.stats().blocked_ops, 1u);
}

TEST(EngineEdgeTest, DeadlockVictimHistoryShowsAbort) {
  LockingEngine e(IsolationLevel::kSerializable);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Read(1, "x").ok());
  ASSERT_TRUE(e.Read(2, "y").ok());
  EXPECT_TRUE(e.Write(1, "y", Row::Scalar(Value(2))).IsWouldBlock());
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(2))).IsDeadlock());
  EXPECT_TRUE(e.history().IsAborted(2));
  EXPECT_EQ(e.stats().deadlock_aborts, 1u);
  // T1 can finish now.
  EXPECT_TRUE(e.Write(1, "y", Row::Scalar(Value(2))).ok());
  EXPECT_TRUE(e.Commit(1).ok());
}

TEST(EngineEdgeTest, SIInsertInsertConflict) {
  // Two concurrent inserts of the same key: FCW aborts the second
  // committer even though neither saw the other.
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Insert(1, "k", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Insert(2, "k", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e.Commit(1).ok());
  EXPECT_TRUE(e.Commit(2).IsSerializationFailure());
  ASSERT_TRUE(e.Begin(9).ok());
  EXPECT_TRUE((*e.Read(9, "k"))->scalar().Equals(Value(1)));
}

TEST(EngineEdgeTest, SIReadOnlyNeverAborts) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Read(1, "x").ok());
  // Heavy concurrent write traffic.
  for (TxnId t = 2; t <= 6; ++t) {
    ASSERT_TRUE(e.Begin(t).ok());
    ASSERT_TRUE(e.Write(t, "x", Row::Scalar(Value(t))).ok());
    ASSERT_TRUE(e.Commit(t).ok());
  }
  EXPECT_TRUE(e.Commit(1).ok());  // read-only: always commits
}

TEST(EngineEdgeTest, LockingLoadDoesNotLock) {
  LockingEngine e(IsolationLevel::kSerializable);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  EXPECT_EQ(e.lock_stats().acquired, 0u);
  EXPECT_TRUE(e.history().empty());
}

TEST(EngineEdgeTest, CursorWriteWithoutFetchStillLocksLong) {
  // WriteCursor is a write: a long X lock regardless of cursor state.
  LockingEngine e(IsolationLevel::kCursorStability);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.WriteCursor(1, "x", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  EXPECT_TRUE(e.Read(2, "x").status().IsWouldBlock());
}

}  // namespace
}  // namespace critique
