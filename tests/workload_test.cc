// Workload generator tests: Zipf distribution shape, program construction,
// and the invariant helpers used by the benchmark harness.

#include <gtest/gtest.h>

#include <map>

#include "critique/db/database.h"
#include "critique/exec/runner.h"
#include "critique/workload/workload.h"
#include "critique/workload/zipf.h"

namespace critique {
namespace {

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(7);
  std::map<uint64_t, int> counts;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Next(rng)]++;
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_GT(counts[k], kDraws / 10 / 2) << "key " << k;
    EXPECT_LT(counts[k], kDraws / 10 * 2) << "key " << k;
  }
}

TEST(ZipfTest, SkewFavorsLowKeys) {
  ZipfGenerator zipf(100, 0.99);
  Rng rng(7);
  std::map<uint64_t, int> counts;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Next(rng)]++;
  // Key 0 must dominate key 50 heavily under theta=0.99.
  EXPECT_GT(counts[0], 10 * std::max(counts[50], 1));
}

TEST(ZipfTest, BoundsRespected) {
  ZipfGenerator zipf(5, 0.5);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Next(rng), 5u);
}

TEST(WorkloadTest, LoadInitialPopulatesItems) {
  WorkloadOptions opts;
  opts.num_items = 8;
  opts.initial_balance = 25;
  WorkloadGenerator gen(opts);
  Database db(IsolationLevel::kSerializable);
  ASSERT_TRUE(gen.LoadInitial(db).ok());
  EXPECT_EQ(WorkloadGenerator::TotalBalance(db, 8), 8 * 25);
}

TEST(WorkloadTest, TransferPreservesTotalWhenSerial) {
  WorkloadOptions opts;
  opts.num_items = 4;
  WorkloadGenerator gen(opts);
  Database db(IsolationLevel::kSerializable);
  ASSERT_TRUE(gen.LoadInitial(db).ok());
  Rng rng(11);
  Runner runner(db);
  runner.AddProgram(1, gen.MakeTransferTxn(rng, 10));
  runner.AddProgram(2, gen.MakeTransferTxn(rng, 5));
  auto result = runner.Run(runner.RoundRobinSchedule());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(WorkloadGenerator::TotalBalance(db, 4), 4 * 100);
}

TEST(WorkloadTest, AuditComputesSum) {
  WorkloadOptions opts;
  opts.num_items = 3;
  opts.initial_balance = 7;
  WorkloadGenerator gen(opts);
  Database db(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(gen.LoadInitial(db).ok());
  Runner runner(db);
  runner.AddProgram(1, gen.MakeAuditTxn());
  auto result = runner.Run(runner.RoundRobinSchedule());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->locals.at(1).GetInt("sum"), 21);
}

TEST(WorkloadTest, MixedTxnDeterministicInSeed) {
  WorkloadOptions opts;
  opts.num_items = 16;
  WorkloadGenerator gen(opts);
  Rng a(99), b(99);
  Program pa = gen.MakeMixedTxn(a);
  Program pb = gen.MakeMixedTxn(b);
  EXPECT_EQ(pa.size(), pb.size());
}

TEST(WorkloadTest, UpdateTxnTouchesDistinctItems) {
  WorkloadOptions opts;
  opts.num_items = 32;
  WorkloadGenerator gen(opts);
  Rng rng(5);
  // ops reads + ops writes + commit.
  Program p = gen.MakeUpdateTxn(rng, 6);
  EXPECT_EQ(p.size(), 6 * 2 + 1);
}

TEST(WorkloadTest, ReadOnlyTxnHasNoWrites) {
  WorkloadOptions opts;
  opts.num_items = 8;
  WorkloadGenerator gen(opts);
  Database db(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(gen.LoadInitial(db).ok());
  Rng rng(5);
  Runner runner(db);
  runner.AddProgram(1, gen.MakeReadOnlyTxn(rng, 5));
  auto result = runner.Run(runner.RoundRobinSchedule());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(db.stats().writes, 0u);
  EXPECT_EQ(db.stats().reads, 5u);
}

}  // namespace
}  // namespace critique
