// Online incremental MVSG checker tests: hand-fed multiversion histories
// judged per declared level (Table 4 contracts), online/offline parity on
// engine-recorded histories, and watermark-pruning boundedness.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "critique/analysis/mv_analysis.h"
#include "critique/check/online_checker.h"
#include "critique/db/database.h"
#include "critique/history/history.h"

namespace critique {
namespace check {
namespace {

History MustParse(std::string_view text) {
  auto r = History::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// Registers every transaction up front (all mutually concurrent), then
// streams the parsed history through a fresh checker.
CheckerReport FeedHistory(const std::string& text,
                          const std::map<TxnId, IsolationLevel>& levels,
                          CheckerOptions opts = {}) {
  OnlineChecker checker(opts);
  for (const auto& [txn, level] : levels) checker.BeginTxn(txn, level);
  History h = MustParse(text);
  for (const Action& a : h.actions()) checker.Ingest(a);
  return checker.Report();
}

// Classic write skew: disjoint writes, crossed reads, a pure-rw cycle.
const char kWriteSkew[] = "r1[x0] r1[y0] r2[x0] r2[y0] w1[x1] w2[y2] c1 c2";

TEST(CheckerCycleTest, WriteSkewViolatesSerializable) {
  CheckerReport r =
      FeedHistory(kWriteSkew, {{1, IsolationLevel::kSerializable},
                               {2, IsolationLevel::kSerializable}});
  EXPECT_EQ(r.violations, 1u) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 0u);
  EXPECT_EQ(r.commits_certified, 2u);
  ASSERT_FALSE(r.first_violations.empty());
  EXPECT_EQ(r.first_violations[0].kind, "cycle");
}

TEST(CheckerCycleTest, WriteSkewIsSnapshotIsolationsDueAnomaly) {
  CheckerReport r =
      FeedHistory(kWriteSkew, {{1, IsolationLevel::kSnapshotIsolation},
                               {2, IsolationLevel::kSnapshotIsolation}});
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 1u);
  EXPECT_TRUE(r.ok());
}

TEST(CheckerCycleTest, OneSnapshotIsolationParticipantExcusesTheCycle) {
  // T1 declared SI is a pivot with pure-rw edges both ways: its level
  // permits the role, so the Serializable neighbour's guarantee is judged
  // kept (the cycle needs T1's permitted anomaly to close).
  CheckerReport r =
      FeedHistory(kWriteSkew, {{1, IsolationLevel::kSnapshotIsolation},
                               {2, IsolationLevel::kSerializable}});
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 1u);
}

// Lost update: T1's write clobbers T2's committed write of the version T1
// read — rw T1->T2 plus ww T2->T1.
const char kLostUpdate[] = "r1[x0] r2[x0] w2[x2] c2 w1[x1] c1";

TEST(CheckerCycleTest, LostUpdateAllowedAtReadCommitted) {
  CheckerReport r =
      FeedHistory(kLostUpdate, {{1, IsolationLevel::kReadCommitted},
                                {2, IsolationLevel::kSerializable}});
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 1u);
}

TEST(CheckerCycleTest, LostUpdateViolatesSnapshotIsolation) {
  // SI prevents P4 (First-Committer-Wins); a ww in-edge at the pivot means
  // the snapshot discipline failed, so SI's excuse does not apply.
  CheckerReport r =
      FeedHistory(kLostUpdate, {{1, IsolationLevel::kSnapshotIsolation},
                                {2, IsolationLevel::kSnapshotIsolation}});
  EXPECT_EQ(r.violations, 1u) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 0u);
}

// Fuzzy read: T1 observes two versions of x across T2's commit.
const char kFuzzyRead[] = "r1[x0] w2[x2] c2 r1[x2] c1";

TEST(CheckerCycleTest, FuzzyReadAllowedAtReadCommitted) {
  CheckerReport r =
      FeedHistory(kFuzzyRead, {{1, IsolationLevel::kReadCommitted},
                               {2, IsolationLevel::kSerializable}});
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 1u);
}

TEST(CheckerCycleTest, FuzzyReadViolatesRepeatableRead) {
  CheckerReport r =
      FeedHistory(kFuzzyRead, {{1, IsolationLevel::kRepeatableRead},
                               {2, IsolationLevel::kSerializable}});
  EXPECT_EQ(r.violations, 1u) << r.ToString();
}

TEST(CheckerDirtyReadTest, DirtyReadViolatesReadCommitted) {
  // T2 reads T1's still-uncommitted version, then commits first.
  CheckerReport r =
      FeedHistory("w1[x1] r2[x1] c2 c1",
                  {{1, IsolationLevel::kReadCommitted},
                   {2, IsolationLevel::kReadCommitted}});
  EXPECT_EQ(r.violations, 1u) << r.ToString();
  ASSERT_FALSE(r.first_violations.empty());
  EXPECT_EQ(r.first_violations[0].kind, "dirty-read");
  EXPECT_EQ(r.first_violations[0].txn, 2);
}

TEST(CheckerDirtyReadTest, DirtyReadIsReadUncommittedsDue) {
  CheckerReport r =
      FeedHistory("w1[x1] r2[x1] c2 c1",
                  {{1, IsolationLevel::kReadCommitted},
                   {2, IsolationLevel::kReadUncommitted}});
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(r.dirty_reads_allowed, 1u);
}

TEST(CheckerDirtyReadTest, ReadFromAbortedCreatorCharged) {
  // The creator aborts after the read: still a dirty read for the
  // committed reader's contract.
  CheckerReport r = FeedHistory(
      "w1[x1] r2[x1] a1 c2", {{1, IsolationLevel::kReadUncommitted},
                              {2, IsolationLevel::kSerializable}});
  EXPECT_EQ(r.violations, 1u) << r.ToString();
  EXPECT_EQ(r.aborts_observed, 1u);
}

TEST(CheckerSerialTest, SerialHistoryCertifiesClean) {
  CheckerReport r = FeedHistory(
      "w1[x1] c1 r2[x1] w2[y2] c2 r3[y2] c3",
      {{1, IsolationLevel::kSerializable},
       {2, IsolationLevel::kSerializable},
       {3, IsolationLevel::kSerializable}});
  EXPECT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(r.commits_certified, 3u);
  EXPECT_EQ(r.allowed_anomalies, 0u);
}

// --- online/offline parity on engine-recorded histories --------------------

TEST(CheckerParityTest, SiEngineWriteSkewMatchesOfflineGraph) {
  DbOptions opts(IsolationLevel::kSnapshotIsolation);
  opts.online_check = true;
  opts.online_check_prune_interval = 0;  // keep the whole graph
  Database db(opts);
  ASSERT_TRUE(db.Load("x", Value(1)).ok());
  ASSERT_TRUE(db.Load("y", Value(1)).ok());

  auto t1 = db.Begin(BeginOptions{});
  auto t2 = db.Begin(BeginOptions{});
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(t1->Get("x").ok());
  ASSERT_TRUE(t1->Get("y").ok());
  ASSERT_TRUE(t2->Get("x").ok());
  ASSERT_TRUE(t2->Get("y").ok());
  ASSERT_TRUE(t1->Put("x", Value(0)).ok());
  ASSERT_TRUE(t2->Put("y", Value(0)).ok());
  ASSERT_TRUE(t1->Commit().ok());
  ASSERT_TRUE(t2->Commit().ok());

  // Stock SI at its truthful level: the write skew is its due anomaly.
  CheckerReport r = db.checker()->Report();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 1u);

  // The offline builder agrees there is a cycle.
  EXPECT_TRUE(MVSerializationGraph::Build(db.HistorySnapshot()).HasCycle());
}

TEST(CheckerParityTest, SsiEngineRefusalKeepsBothGraphsAcyclic) {
  DbOptions opts(IsolationLevel::kSerializableSI);
  opts.online_check = true;
  opts.online_check_prune_interval = 0;
  Database db(opts);
  ASSERT_TRUE(db.Load("x", Value(1)).ok());
  ASSERT_TRUE(db.Load("y", Value(1)).ok());

  auto t1 = db.Begin(BeginOptions{});
  auto t2 = db.Begin(BeginOptions{});
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(t1->Get("x").ok());
  ASSERT_TRUE(t1->Get("y").ok());
  ASSERT_TRUE(t2->Get("x").ok());
  ASSERT_TRUE(t2->Get("y").ok());
  ASSERT_TRUE(t1->Put("x", Value(0)).ok());
  ASSERT_TRUE(t2->Put("y", Value(0)).ok());
  Status s1 = t1->Commit();
  Status s2 = t2->Commit();
  // SSI refuses at least one side of the dangerous structure.
  EXPECT_TRUE(!s1.ok() || !s2.ok());

  CheckerReport r = db.checker()->Report();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 0u);
  EXPECT_FALSE(MVSerializationGraph::Build(db.HistorySnapshot()).HasCycle());
}

// --- pruning ---------------------------------------------------------------

TEST(CheckerPruneTest, SequentialCommitsStayBounded) {
  CheckerOptions copts;
  copts.prune_interval = 64;
  OnlineChecker checker(copts);
  checker.SetDefaultLevel(IsolationLevel::kSerializable);
  const TxnId kTxns = 20000;
  for (TxnId t = 1; t <= kTxns; ++t) {
    checker.BeginTxn(t, IsolationLevel::kSerializable);
    checker.Ingest(Action::ReadVersion(t, "x" + std::to_string(t % 7),
                                       kInitialTxn));
    checker.Ingest(Action::WriteVersion(t, "y" + std::to_string(t % 11), t));
    checker.Ingest(Action::Commit(t));
  }
  CheckerReport r = checker.Report();
  EXPECT_EQ(r.commits_certified, static_cast<uint64_t>(kTxns));
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_GT(r.nodes_pruned, kTxns / 2);
  // Memory bound: live graph stays near the prune cadence, nowhere near
  // history length.
  EXPECT_LT(r.live_nodes, 1000u);
  EXPECT_LT(r.peak_live_nodes, 1000u);
}

TEST(CheckerPruneTest, OpenTransactionPinsTheWatermark) {
  OnlineChecker checker(CheckerOptions{/*prune_interval=*/16});
  checker.BeginTxn(1, IsolationLevel::kSerializable);  // stays open
  for (TxnId t = 2; t <= 500; ++t) {
    checker.BeginTxn(t, IsolationLevel::kSerializable);
    checker.Ingest(Action::WriteVersion(t, "k" + std::to_string(t), t));
    checker.Ingest(Action::Commit(t));
  }
  // The open registration pins everything.
  EXPECT_GE(checker.live_nodes(), 499u);
  // Releasing it lets the cascade retire the frozen prefix.
  checker.Ingest(Action::Commit(1));
  checker.Prune();
  EXPECT_LT(checker.live_nodes(), 50u);
}

TEST(CheckerPruneTest, PruningDoesNotChangeVerdicts) {
  // The write-skew cycle closes within the live window even under an
  // aggressive prune cadence.
  CheckerReport r =
      FeedHistory(kWriteSkew,
                  {{1, IsolationLevel::kSerializable},
                   {2, IsolationLevel::kSerializable}},
                  CheckerOptions{/*prune_interval=*/1});
  EXPECT_EQ(r.violations, 1u) << r.ToString();
}

}  // namespace
}  // namespace check
}  // namespace critique
