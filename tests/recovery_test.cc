// Restart-recovery tests for the durability subsystem, over every stock
// engine family: committed effects survive a crash, unsynced/uncommitted
// work never comes back, torn tails are chopped, prepared-but-undecided
// participants are restored in doubt and resolved by presumed abort —
// and the sharded crash matrix: a "kill -9" injected at every WAL stage
// of the 2PC decision pipeline, with zero lost committed transactions
// and nothing leaked after recovery at every point.
//
// The crash model: a crash image is a byte-for-byte copy of the WAL file
// taken while the instance is still running.  Everything a committer was
// acked on is synced (and thus in the copy); buffered-but-unsynced bytes
// and the crashed instance's clean-shutdown flush are not — exactly what
// a kill -9 at that instant would leave on disk.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "critique/analysis/dependency_graph.h"
#include "critique/db/database.h"
#include "critique/shard/sharded_database.h"
#include "critique/wal/wal_writer.h"

namespace critique {
namespace {

namespace fs = std::filesystem;

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "critique_recovery_" + name;
}

// The crash: snapshot the durable bytes while the victim still runs.
std::string CrashImage(const std::string& wal_path, const std::string& tag) {
  const std::string image = wal_path + "." + tag;
  fs::copy_file(wal_path, image, fs::copy_options::overwrite_existing);
  return image;
}

std::string LevelTag(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kSerializable:
      return "Locking";
    case IsolationLevel::kReadCommitted:
      return "ReadCommitted";
    case IsolationLevel::kSnapshotIsolation:
      return "SI";
    case IsolationLevel::kSerializableSI:
      return "SSI";
    case IsolationLevel::kOracleReadConsistency:
      return "OracleRC";
    default:
      return "Other";
  }
}

int64_t ReadInt(Database& db, const ItemId& id) {
  int64_t v = -1;
  EXPECT_TRUE(db.Execute([&](Transaction& t) -> Status {
                  auto r = t.GetScalar(id);
                  if (!r.ok()) return r.status();
                  v = r.value().is_null() ? -1 : r.value().AsInt();
                  return Status::OK();
                }).ok());
  return v;
}

bool Exists(Database& db, const ItemId& id) {
  bool present = false;
  EXPECT_TRUE(db.Execute([&](Transaction& t) -> Status {
                  auto r = t.Get(id);
                  if (!r.ok()) return r.status();
                  present = r.value().has_value();
                  return Status::OK();
                }).ok());
  return present;
}

Status PutCommit(Database& db, const ItemId& id, int64_t v) {
  return db.Execute(
      [&](Transaction& t) -> Status { return t.Put(id, Value(v)); });
}

// ---------------------------------------------------------------------------
// Single-site recovery, parameterized over the stock engine families
// ---------------------------------------------------------------------------

class RecoveryTest : public testing::TestWithParam<IsolationLevel> {
 protected:
  DbOptions Options(const std::string& test) {
    DbOptions o(GetParam());
    o.wal_path = TmpPath(test + "_" + LevelTag(GetParam()) + ".wal");
    return o;
  }
};

TEST_P(RecoveryTest, CommittedEffectsSurviveACrash) {
  const DbOptions opt = Options("committed");
  Database db(opt);
  ASSERT_TRUE(db.Load("a", Value(10)).ok());
  ASSERT_TRUE(db.Load("b", Value(20)).ok());

  // Three committed transactions: overwrite, insert, delete, and a
  // read-modify-write — every redo shape.
  ASSERT_TRUE(db.Execute([](Transaction& t) -> Status {
                  CRITIQUE_RETURN_NOT_OK(t.Put("a", Value(11)));
                  return t.Insert("c", Row::Scalar(Value(1)));
                }).ok());
  ASSERT_TRUE(
      db.Execute([](Transaction& t) -> Status { return t.Erase("b"); }).ok());

  // An uncommitted transaction in flight at the crash: its effects must
  // never come back (its redo is engine-buffered, only kBegin is logged —
  // and made durable by the next committed transaction's sync).
  Transaction in_flight = db.Begin();
  ASSERT_TRUE(in_flight.Put("a", Value(99)).ok());

  ASSERT_TRUE(db.Execute([](Transaction& t) -> Status {
                  return t.Update("c", [](const std::optional<Row>& r) {
                    return Row::Scalar(Value(r->scalar().AsInt() + 5));
                  });
                }).ok());

  const std::string image = CrashImage(opt.wal_path, "img");
  DbOptions ropt = opt;
  ropt.wal_path = image;
  Result<Database> r = Database::Recover(ropt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Database rec = std::move(r).value();

  EXPECT_TRUE(rec.recovered());
  EXPECT_FALSE(rec.wal_recovery().torn_tail);
  EXPECT_EQ(rec.wal_recovery().loads_replayed, 2u);
  EXPECT_EQ(rec.wal_recovery().committed_replayed, 3u);
  EXPECT_GE(rec.wal_recovery().begun_discarded, 1u) << "the in-flight txn";

  EXPECT_EQ(ReadInt(rec, "a"), 11);
  EXPECT_EQ(ReadInt(rec, "c"), 6);
  EXPECT_FALSE(Exists(rec, "b")) << "the committed delete must replay";

  // The recovered history (pure replay so far) is a serial history.
  EXPECT_TRUE(IsSerializable(rec.history()));

  // The recovered instance is live: new commits append behind the replay.
  ASSERT_TRUE(PutCommit(rec, "d", 7).ok());
  EXPECT_EQ(ReadInt(rec, "d"), 7);
}

TEST_P(RecoveryTest, TornTailIsChoppedAndTheLogStaysAppendable) {
  const DbOptions opt = Options("torn");
  Database db(opt);
  ASSERT_TRUE(db.Load("a", Value(1)).ok());
  ASSERT_TRUE(PutCommit(db, "a", 2).ok());

  std::string image = CrashImage(opt.wal_path, "img");
  {  // the crash landed mid-write: garbage half-record at the tail
    std::FILE* f = std::fopen(image.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = {0x40, 0x00, 0x00, 0x00, 0x07, 0x01};
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }

  DbOptions ropt = opt;
  ropt.wal_path = image;
  Result<Database> r = Database::Recover(ropt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Database rec = std::move(r).value();
  EXPECT_TRUE(rec.wal_recovery().torn_tail);
  EXPECT_GT(rec.wal_recovery().dropped_bytes, 0u);
  EXPECT_EQ(ReadInt(rec, "a"), 2) << "the durable prefix is authoritative";

  // Crash/recover cycle 2: the chopped log took new appends coherently.
  ASSERT_TRUE(PutCommit(rec, "a", 3).ok());
  const std::string image2 = CrashImage(image, "img2");
  DbOptions ropt2 = opt;
  ropt2.wal_path = image2;
  Result<Database> r2 = Database::Recover(ropt2);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  Database rec2 = std::move(r2).value();
  EXPECT_FALSE(rec2.wal_recovery().torn_tail);
  EXPECT_EQ(ReadInt(rec2, "a"), 3);
}

TEST_P(RecoveryTest, PreparedParticipantIsRestoredAndPresumedAbortFreesIt) {
  const DbOptions opt = Options("prepared_abort");
  Database db(opt);
  ASSERT_TRUE(db.Load("a", Value(1)).ok());

  Transaction part = db.Begin();
  const TxnId gid = part.id();
  ASSERT_TRUE(part.Put("a", Value(2)).ok());
  ASSERT_TRUE(part.Prepare().ok()) << "the vote must be durable when acked";

  const std::string image = CrashImage(opt.wal_path, "img");
  DbOptions ropt = opt;
  ropt.wal_path = image;
  Result<Database> r = Database::Recover(ropt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Database rec = std::move(r).value();

  EXPECT_EQ(rec.wal_recovery().prepared_restored, 1u);
  const std::vector<TxnId> in_doubt = rec.engine().InDoubtTransactions();
  ASSERT_EQ(in_doubt.size(), 1u);
  EXPECT_EQ(in_doubt[0], gid);

  // No decision was ever logged: presumed abort.  The rollback releases
  // the re-taken locks/reservations — a new writer gets through.
  ASSERT_TRUE(rec.engine().AbortPrepared(gid).ok());
  EXPECT_TRUE(rec.engine().InDoubtTransactions().empty());
  EXPECT_EQ(ReadInt(rec, "a"), 1) << "the undecided write must not apply";
  ASSERT_TRUE(PutCommit(rec, "a", 5).ok()) << "no leaked locks";
  EXPECT_EQ(ReadInt(rec, "a"), 5);
}

TEST_P(RecoveryTest, PreparedParticipantRollsForwardOnALoggedCommit) {
  const DbOptions opt = Options("prepared_commit");
  Database db(opt);
  ASSERT_TRUE(db.Load("a", Value(1)).ok());

  Transaction part = db.Begin();
  const TxnId gid = part.id();
  ASSERT_TRUE(part.Put("a", Value(2)).ok());
  ASSERT_TRUE(part.Prepare().ok());

  const std::string image = CrashImage(opt.wal_path, "img");
  DbOptions ropt = opt;
  ropt.wal_path = image;
  Result<Database> r = Database::Recover(ropt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Database rec = std::move(r).value();
  ASSERT_EQ(rec.engine().InDoubtTransactions().size(), 1u);

  // The coordinator's decision arrives (it was logged elsewhere): roll
  // forward.  The slim commit record this writes must survive ANOTHER
  // crash — cycle 2 replays prepare + commit and the effect stands.
  ASSERT_TRUE(rec.engine().CommitPrepared(gid).ok());
  EXPECT_EQ(ReadInt(rec, "a"), 2);

  const std::string image2 = CrashImage(image, "img2");
  DbOptions ropt2 = opt;
  ropt2.wal_path = image2;
  Result<Database> r2 = Database::Recover(ropt2);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  Database rec2 = std::move(r2).value();
  EXPECT_TRUE(rec2.engine().InDoubtTransactions().empty());
  EXPECT_EQ(ReadInt(rec2, "a"), 2);
  EXPECT_TRUE(IsSerializable(rec2.history()));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, RecoveryTest,
    testing::Values(IsolationLevel::kSerializable,
                    IsolationLevel::kReadCommitted,
                    IsolationLevel::kSnapshotIsolation,
                    IsolationLevel::kSerializableSI,
                    IsolationLevel::kOracleReadConsistency),
    [](const testing::TestParamInfo<IsolationLevel>& info) {
      return LevelTag(info.param);
    });

// ---------------------------------------------------------------------------
// Group commit end to end: many concurrent committers, then a crash
// ---------------------------------------------------------------------------

TEST(RecoveryGroupCommitTest, AckedCommitsFromEveryThreadSurvive) {
  DbOptions opt(IsolationLevel::kSnapshotIsolation);
  opt.wal_path = TmpPath("group_commit_mt.wal");
  opt.group_commit = true;
  opt.fsync_mode = FsyncMode::kSimulated;
  opt.fsync_latency = std::chrono::microseconds(100);
  opt.mode = ConcurrencyMode::kBlocking;
  Database db(opt);

  constexpr int kThreads = 8;
  constexpr int kRounds = 10;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(db.Load("k" + std::to_string(t), Value(0)).ok());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      const ItemId id = "k" + std::to_string(t);
      for (int i = 1; i <= kRounds; ++i) {
        EXPECT_TRUE(db.Execute([&](Transaction& txn) -> Status {
                        return txn.Put(id, Value(int64_t{i}));
                      }).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_NE(db.wal(), nullptr);
  const GroupCommitStats stats = db.wal()->stats();
  EXPECT_LE(stats.syncs, stats.appends);

  const std::string image = CrashImage(opt.wal_path, "img");
  DbOptions ropt = opt;
  ropt.wal_path = image;
  Result<Database> r = Database::Recover(ropt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Database rec = std::move(r).value();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ReadInt(rec, "k" + std::to_string(t)), kRounds)
        << "every acked commit must be in the recovered state";
  }
}

// ---------------------------------------------------------------------------
// The sharded crash matrix: kill the coordinator at every WAL stage
// ---------------------------------------------------------------------------

struct CrashCase {
  const char* name;
  WalFailpoint wal_fp;          // on the coordinator's decision log
  CoordinatorFailpoint coord_fp;
  bool decision_survives;       // does recovery find a durable commit?
};

const CrashCase kCrashMatrix[] = {
    // The decision append dies before buffering: no decision ever existed.
    {"pre_append", WalFailpoint::kPreAppend, CoordinatorFailpoint::kNone,
     false},
    // Appended but the sync dies before the device write: the buffered
    // decision never reaches the file — still no durable decision.
    {"pre_sync", WalFailpoint::kPreSync, CoordinatorFailpoint::kNone, false},
    // Crash after prepare, before the decision reaches the log at all.
    {"before_decision", WalFailpoint::kNone,
     CoordinatorFailpoint::kBeforeDecision, false},
    // The decision is durable; the crash hits before any participant
    // hears it.  Recovery must roll the whole transaction forward.
    {"after_decision", WalFailpoint::kNone,
     CoordinatorFailpoint::kAfterDecision, true},
};

class ShardedCrashMatrixTest
    : public testing::TestWithParam<std::tuple<int, IsolationLevel>> {};

TEST_P(ShardedCrashMatrixTest, NoLostCommitsNothingLeaked) {
  const CrashCase& cc = kCrashMatrix[std::get<0>(GetParam())];
  const IsolationLevel level = std::get<1>(GetParam());

  const std::string dir = TmpPath(std::string("matrix_") + cc.name + "_" +
                                  LevelTag(level));
  fs::remove_all(dir);
  ShardedDbOptions opt(2, level);
  opt.wal_dir = dir;
  ShardedDatabase db(opt);
  ASSERT_NE(db.coordinator_log(), nullptr);

  // One account on each shard.
  ItemId x, y;
  for (int i = 0; x.empty() || y.empty(); ++i) {
    const ItemId id = "acct" + std::to_string(i);
    if (db.ShardOf(id) == 0 && x.empty()) x = id;
    if (db.ShardOf(id) == 1 && y.empty()) y = id;
  }
  ASSERT_TRUE(db.Load(x, Value(100)).ok());
  ASSERT_TRUE(db.Load(y, Value(100)).ok());

  // A committed cross-shard transfer before the crash — it must survive
  // recovery no matter where the next one dies.
  ASSERT_TRUE(db.Execute([&](ShardedTransaction& t) -> Status {
                  CRITIQUE_RETURN_NOT_OK(t.Put(x, Value(90)));
                  return t.Put(y, Value(110));
                }).ok());

  // Arm the crash and run the doomed transfer (raw handle, no retries).
  db.coordinator_log()->set_failpoint(cc.wal_fp);
  db.coordinator().set_failpoint(cc.coord_fp);
  {
    ShardedTransaction t = db.Begin();
    ASSERT_TRUE(t.Put(x, Value(65)).ok());
    ASSERT_TRUE(t.Put(y, Value(135)).ok());
    const Status s = t.Commit();
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(s.IsInternal()) << s.ToString();
  }
  EXPECT_EQ(db.coordinator().stats().crashes, 1u);

  // The kill: copy the durable files; the crashed instance's buffered
  // state and shutdown flush never reach the recovering one.
  const std::string rec_dir = dir + ".rec";
  fs::remove_all(rec_dir);
  fs::create_directories(rec_dir);
  for (const char* f : {"shard-0.wal", "shard-1.wal", "coordinator.wal"}) {
    fs::copy_file(dir + "/" + f, rec_dir + "/" + f);
  }

  ShardedDbOptions ropt = opt;
  ropt.wal_dir = rec_dir;
  Result<std::unique_ptr<ShardedDatabase>> r = ShardedDatabase::Recover(ropt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::unique_ptr<ShardedDatabase> rec = std::move(r).value();
  EXPECT_TRUE(rec->recovered());

  const ShardedDatabase::RecoveryReport rep = rec->RecoverInDoubt();
  if (cc.decision_survives) {
    EXPECT_EQ(rep.committed, 2u) << "both participants roll forward";
    EXPECT_EQ(rep.aborted, 0u);
  } else {
    EXPECT_EQ(rep.committed, 0u);
    EXPECT_EQ(rep.aborted, 2u) << "presumed abort on both participants";
  }

  // Zero lost committed transactions; the undecided transfer applied
  // exactly-or-not-at-all; money conserved either way.
  int64_t vx = -1, vy = -1;
  ASSERT_TRUE(rec->Execute([&](ShardedTransaction& t) -> Status {
                  auto rx = t.GetScalar(x);
                  if (!rx.ok()) return rx.status();
                  auto ry = t.GetScalar(y);
                  if (!ry.ok()) return ry.status();
                  vx = rx.value().AsInt();
                  vy = ry.value().AsInt();
                  return Status::OK();
                }).ok());
  if (cc.decision_survives) {
    EXPECT_EQ(vx, 65);
    EXPECT_EQ(vy, 135);
  } else {
    EXPECT_EQ(vx, 90);
    EXPECT_EQ(vy, 110);
  }
  EXPECT_EQ(vx + vy, 200) << "atomicity: conservation must hold";

  // Nothing leaked: no participant still in doubt, no lock or pending
  // version blocks a new writer, every shard's history stays clean.
  for (int s = 0; s < rec->num_shards(); ++s) {
    EXPECT_TRUE(rec->shard(s).engine().InDoubtTransactions().empty())
        << "shard " << s;
  }
  ASSERT_TRUE(rec->Execute([&](ShardedTransaction& t) -> Status {
                  CRITIQUE_RETURN_NOT_OK(t.Put(x, Value(1)));
                  return t.Put(y, Value(2));
                }).ok())
      << "recovered shards must be fully writable (no leaked locks)";
  for (int s = 0; s < rec->num_shards(); ++s) {
    EXPECT_TRUE(IsSerializable(rec->shard(s).history())) << "shard " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CrashMatrix, ShardedCrashMatrixTest,
    testing::Combine(testing::Range(0, 4),
                     testing::Values(IsolationLevel::kSerializable,
                                     IsolationLevel::kSnapshotIsolation)),
    [](const testing::TestParamInfo<std::tuple<int, IsolationLevel>>& info) {
      return std::string(kCrashMatrix[std::get<0>(info.param)].name) + "_" +
             LevelTag(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Coordinator decision-log lifecycle and API guards
// ---------------------------------------------------------------------------

TEST(ShardedRecoveryTest, DecidedEntriesAreClosedInTheDecisionLog) {
  const std::string dir = TmpPath("decision_lifecycle");
  fs::remove_all(dir);
  ShardedDbOptions opt(2, IsolationLevel::kSerializable);
  opt.wal_dir = dir;
  ShardedDatabase db(opt);

  ItemId x, y;
  for (int i = 0; x.empty() || y.empty(); ++i) {
    const ItemId id = "it" + std::to_string(i);
    if (db.ShardOf(id) == 0 && x.empty()) x = id;
    if (db.ShardOf(id) == 1 && y.empty()) y = id;
  }
  ASSERT_TRUE(db.Load(x, Value(1)).ok());
  ASSERT_TRUE(db.Load(y, Value(1)).ok());
  ASSERT_TRUE(db.Execute([&](ShardedTransaction& t) -> Status {
                  CRITIQUE_RETURN_NOT_OK(t.Put(x, Value(2)));
                  return t.Put(y, Value(2));
                }).ok());

  ASSERT_NE(db.coordinator_log(), nullptr);
  ASSERT_TRUE(db.coordinator_log()->SyncAll().ok());
  Result<WalReadResult> log =
      WalReader::ReadFile(db.coordinator_log()->path());
  ASSERT_TRUE(log.ok());
  uint64_t decisions = 0, ends = 0;
  for (const WalRecord& rec : log.value().records) {
    if (rec.type == WalRecordType::kDecision) ++decisions;
    if (rec.type == WalRecordType::kDecisionEnd) ++ends;
  }
  EXPECT_EQ(decisions, 1u);
  EXPECT_EQ(ends, 1u) << "a fully acknowledged decision is closed";
}

TEST(ShardedRecoveryTest, RecoverRequiresAWalLocation) {
  Result<Database> r = Database::Recover(DbOptions());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());

  Result<std::unique_ptr<ShardedDatabase>> rs =
      ShardedDatabase::Recover(ShardedDbOptions());
  EXPECT_FALSE(rs.ok());
  EXPECT_TRUE(rs.status().IsInvalidArgument());
}

}  // namespace
}  // namespace critique
