// Soak test for Table 4's "Not Possible" cells: the crafted schedules in
// the scenario library demonstrate the *possible* cells constructively,
// but a "Not Possible" claim quantifies over all histories.  Here every
// forbidden (level, anomaly) cell is attacked with many random schedules
// of the same transaction programs; the anomaly must never manifest.

#include <gtest/gtest.h>

#include <tuple>

#include "critique/harness/matrix.h"

namespace critique {
namespace {

// Runs `variant`'s programs under a random schedule derived from `seed`.
Result<VariantOutcome> RunVariantRandomized(IsolationLevel level,
                                            const ScenarioVariant& variant,
                                            uint64_t seed) {
  ScenarioVariant shuffled = variant;
  // Build a runner once to learn program sizes, then shuffle a schedule.
  Database db(level);
  CRITIQUE_RETURN_NOT_OK(variant.load(db));
  Runner probe(db);
  variant.add_programs(probe);
  Rng rng(seed);
  shuffled.schedule = probe.RandomSchedule(rng);
  return RunVariant(level, shuffled);
}

class ForbiddenCellSoak
    : public ::testing::TestWithParam<std::tuple<IsolationLevel, size_t>> {};

TEST_P(ForbiddenCellSoak, AnomalyNeverManifestsUnderRandomSchedules) {
  const auto [level, scenario_index] = GetParam();
  const AnomalyScenario& scenario = Table4Scenarios()[scenario_index];

  // Only attack cells the paper marks Not Possible.
  const AnomalyMatrix& expected =
      IsLockingLevel(level) || level == IsolationLevel::kSnapshotIsolation
          ? PaperTable4()
          : ExtendedExpectations();
  if (!expected.HasCell(level, scenario.phenomenon)) GTEST_SKIP();
  if (expected.Cell(level, scenario.phenomenon) != CellValue::kNotPossible) {
    GTEST_SKIP() << "cell is (sometimes) possible; nothing to soak";
  }

  for (uint64_t seed = 1; seed <= 25; ++seed) {
    for (const ScenarioVariant& variant : scenario.variants) {
      auto out = RunVariantRandomized(level, variant, seed);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      EXPECT_FALSE(out->anomaly)
          << scenario.title << " (" << variant.name << ") manifested at "
          << IsolationLevelName(level) << " under random seed " << seed
          << "\n"
          << out->analyzed.ToString();
    }
  }
}

std::string SoakName(
    const ::testing::TestParamInfo<std::tuple<IsolationLevel, size_t>>&
        info) {
  std::string name =
      IsolationLevelName(std::get<0>(info.param)) + "_" +
      std::string(
          PhenomenonName(Table4Scenarios()[std::get<1>(info.param)]
                             .phenomenon));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllForbiddenCells, ForbiddenCellSoak,
    ::testing::Combine(
        ::testing::ValuesIn(AllEngineLevels()),
        ::testing::Range(size_t{0}, Table4Scenarios().size())),
    SoakName);

}  // namespace
}  // namespace critique
