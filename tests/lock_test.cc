// Lock manager tests: S/X compatibility, item vs predicate conflicts with
// phantom-precise images, short/long release, waits-for deadlock detection.

#include <gtest/gtest.h>

#include "critique/lock/lock_manager.h"

namespace critique {
namespace {

Row ActiveRow(bool active) { return Row().Set("active", active); }

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  auto a = lm.TryAcquire(LockSpec::ReadItem(1, "x", std::nullopt));
  auto b = lm.TryAcquire(LockSpec::ReadItem(2, "x", std::nullopt));
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(lm.HeldCount(), 2u);
}

TEST(LockManagerTest, ExclusiveConflictsWithShared) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(LockSpec::ReadItem(1, "x", std::nullopt)).ok());
  auto b = lm.TryAcquire(
      LockSpec::WriteItem(2, "x", std::nullopt, Row::Scalar(Value(1))));
  EXPECT_TRUE(b.status().IsWouldBlock());
  EXPECT_EQ(lm.stats().blocked, 1u);
}

TEST(LockManagerTest, ExclusiveConflictsWithExclusive) {
  LockManager lm;
  ASSERT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt, std::nullopt))
          .ok());
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "x", std::nullopt, std::nullopt))
          .status()
          .IsWouldBlock());
}

TEST(LockManagerTest, DifferentItemsNoConflict) {
  LockManager lm;
  ASSERT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt, std::nullopt))
          .ok());
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "y", std::nullopt, std::nullopt))
          .ok());
}

TEST(LockManagerTest, SelfLocksNeverConflict) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(LockSpec::ReadItem(1, "x", std::nullopt)).ok());
  // Upgrade S -> X by the same transaction.
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt, std::nullopt))
          .ok());
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(LockSpec::ReadItem(1, "x", std::nullopt)).ok());
  ASSERT_TRUE(lm.TryAcquire(LockSpec::ReadItem(2, "x", std::nullopt)).ok());
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt, std::nullopt))
          .status()
          .IsWouldBlock());
}

TEST(LockManagerTest, ReleaseUnblocks) {
  LockManager lm;
  auto a = lm.TryAcquire(
      LockSpec::WriteItem(1, "x", std::nullopt, std::nullopt));
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::ReadItem(2, "x", std::nullopt)).status()
          .IsWouldBlock());
  lm.Release(*a);
  EXPECT_TRUE(lm.TryAcquire(LockSpec::ReadItem(2, "x", std::nullopt)).ok());
}

TEST(LockManagerTest, ReleaseAllDropsEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(LockSpec::ReadItem(1, "x", std::nullopt)).ok());
  ASSERT_TRUE(lm.TryAcquire(LockSpec::ReadItem(1, "y", std::nullopt)).ok());
  EXPECT_EQ(lm.HeldCountBy(1), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCountBy(1), 0u);
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "x", std::nullopt, std::nullopt))
          .ok());
}

// --- Predicate locks ---------------------------------------------------------

TEST(PredicateLockTest, WriteIntoPredicateConflicts) {
  LockManager lm;
  Predicate actives = Predicate::Cmp("active", CompareOp::kEq, true);
  ASSERT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(1, actives)).ok());

  // Insert of a row entering the predicate: conflicts (phantom).
  auto blocked = lm.TryAcquire(
      LockSpec::WriteItem(2, "e9", std::nullopt, ActiveRow(true)));
  EXPECT_TRUE(blocked.status().IsWouldBlock());

  // Update moving a row OUT of the predicate also conflicts (before-image
  // covered).
  auto blocked2 = lm.TryAcquire(
      LockSpec::WriteItem(2, "e1", ActiveRow(true), ActiveRow(false)));
  EXPECT_TRUE(blocked2.status().IsWouldBlock());

  // A write never touching the predicate's coverage is fine.
  EXPECT_TRUE(lm.TryAcquire(LockSpec::WriteItem(2, "e2", ActiveRow(false),
                                                ActiveRow(false)))
                  .ok());
}

TEST(PredicateLockTest, HeldItemWriteBlocksPredicateRead) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(LockSpec::WriteItem(1, "e1", ActiveRow(false),
                                                ActiveRow(true)))
                  .ok());
  Predicate actives = Predicate::Cmp("active", CompareOp::kEq, true);
  // The write's after-image satisfies the predicate: the predicate read
  // must wait.
  EXPECT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(2, actives))
                  .status()
                  .IsWouldBlock());
}

TEST(PredicateLockTest, SharedPredicatesCompatible) {
  LockManager lm;
  Predicate p = Predicate::Cmp("active", CompareOp::kEq, true);
  EXPECT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(1, p)).ok());
  EXPECT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(2, p)).ok());
}

TEST(PredicateLockTest, WritePredicateVsReadPredicateUsesOverlap) {
  LockManager lm;
  Predicate lo = Predicate::Cmp("v", CompareOp::kLt, Value(10));
  Predicate hi = Predicate::Cmp("v", CompareOp::kGt, Value(20));
  ASSERT_TRUE(lm.TryAcquire(LockSpec::WritePredicate(1, lo)).ok());
  // Provably disjoint: no conflict.
  EXPECT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(2, hi)).ok());
  // Overlapping: conflict.
  Predicate mid = Predicate::Cmp("v", CompareOp::kLe, Value(5));
  EXPECT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(2, mid))
                  .status()
                  .IsWouldBlock());
}

TEST(PredicateLockTest, ImagelessItemLockConservative) {
  LockManager lm;
  Predicate p = Predicate::Cmp("active", CompareOp::kEq, true);
  ASSERT_TRUE(lm.TryAcquire(LockSpec::ReadPredicate(1, p)).ok());
  // No images: the manager cannot prove disjointness, so it blocks.
  LockSpec imageless = LockSpec::WriteItem(2, "e1", std::nullopt, std::nullopt);
  EXPECT_TRUE(lm.TryAcquire(imageless).status().IsWouldBlock());
}

// --- Deadlock detection ------------------------------------------------------

TEST(DeadlockTest, TwoTransactionCycle) {
  LockManager lm;
  ASSERT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt, std::nullopt))
          .ok());
  ASSERT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "y", std::nullopt, std::nullopt))
          .ok());
  // T1 waits for y (held by T2).
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "y", std::nullopt, std::nullopt))
          .status()
          .IsWouldBlock());
  // T2 then waits for x (held by T1): cycle -> T2 is the victim.
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "x", std::nullopt, std::nullopt))
          .status()
          .IsDeadlock());
  EXPECT_EQ(lm.stats().deadlocks, 1u);
}

TEST(DeadlockTest, ThreeTransactionCycle) {
  LockManager lm;
  for (TxnId t = 1; t <= 3; ++t) {
    ASSERT_TRUE(lm.TryAcquire(LockSpec::WriteItem(t, "i" + std::to_string(t),
                                                  std::nullopt, std::nullopt))
                    .ok());
  }
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "i2", std::nullopt, std::nullopt))
          .status()
          .IsWouldBlock());
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "i3", std::nullopt, std::nullopt))
          .status()
          .IsWouldBlock());
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(3, "i1", std::nullopt, std::nullopt))
          .status()
          .IsDeadlock());
}

TEST(DeadlockTest, VictimReleaseBreaksCycle) {
  LockManager lm;
  ASSERT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt, std::nullopt))
          .ok());
  ASSERT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "y", std::nullopt, std::nullopt))
          .ok());
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "y", std::nullopt, std::nullopt))
          .status()
          .IsWouldBlock());
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "x", std::nullopt, std::nullopt))
          .status()
          .IsDeadlock());
  // The engine aborts T2 and releases its locks; T1 can now proceed.
  lm.ReleaseAll(2);
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "y", std::nullopt, std::nullopt))
          .ok());
}

TEST(DeadlockTest, RetryAfterUnblockClearsStaleEdges) {
  LockManager lm;
  ASSERT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt, std::nullopt))
          .ok());
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "x", std::nullopt, std::nullopt))
          .status()
          .IsWouldBlock());
  lm.ReleaseAll(1);
  // T2 retries and succeeds; its stale wait edge must not linger.
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(2, "x", std::nullopt, std::nullopt))
          .ok());
  // And T1 waiting on T2 now is a plain block, not a phantom deadlock.
  EXPECT_TRUE(
      lm.TryAcquire(LockSpec::WriteItem(1, "x", std::nullopt, std::nullopt))
          .status()
          .IsWouldBlock());
}

TEST(LockStatsTest, CountersTrack) {
  LockManager lm;
  auto a = lm.TryAcquire(LockSpec::ReadItem(1, "x", std::nullopt));
  ASSERT_TRUE(a.ok());
  lm.Release(*a);
  auto st = lm.stats();
  EXPECT_EQ(st.acquired, 1u);
  EXPECT_EQ(st.released, 1u);
}

}  // namespace
}  // namespace critique
