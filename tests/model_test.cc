// Unit tests for the value / row / predicate model.

#include <gtest/gtest.h>

#include "critique/model/predicate.h"
#include "critique/model/row.h"
#include "critique/model/value.h"

namespace critique {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(5).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(5).is_numeric());
  EXPECT_TRUE(Value(2.5).is_numeric());
}

TEST(ValueTest, NumericCoercionInEquals) {
  EXPECT_TRUE(Value(5).Equals(Value(5.0)));
  EXPECT_FALSE(Value(5).Equals(Value(6)));
  EXPECT_FALSE(Value(5).Equals(Value("5")));
}

TEST(ValueTest, NullNeverEquals) {
  EXPECT_FALSE(Value().Equals(Value()));
  EXPECT_FALSE(Value().Equals(Value(0)));
}

TEST(ValueTest, CompareOrders) {
  EXPECT_EQ(*Value(1).Compare(Value(2)), -1);
  EXPECT_EQ(*Value(2).Compare(Value(1)), 1);
  EXPECT_EQ(*Value(2).Compare(Value(2)), 0);
  EXPECT_EQ(*Value("a").Compare(Value("b")), -1);
  EXPECT_FALSE(Value().Compare(Value(1)).has_value());
  EXPECT_FALSE(Value("a").Compare(Value(1)).has_value());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(true).ToString(), "TRUE");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(2.0).ToString(), "2.0");
}

TEST(ValueTest, KeyOrderingIsTotal) {
  // NULL < numerics < bool < string by type rank.
  EXPECT_TRUE(Value() < Value(0));
  EXPECT_TRUE(Value(1) < Value(2));
  EXPECT_TRUE(Value(5) < Value(false));
  EXPECT_TRUE(Value(true) < Value(""));
  EXPECT_FALSE(Value() < Value());
  EXPECT_TRUE(Value() == Value());  // as container keys NULL==NULL
}

TEST(RowTest, ScalarConvenience) {
  Row r = Row::Scalar(Value(50));
  EXPECT_TRUE(r.scalar().Equals(Value(50)));
  EXPECT_TRUE(r.Has("val"));
  EXPECT_FALSE(r.Has("other"));
  EXPECT_TRUE(r.Get("other").is_null());
}

TEST(RowTest, SetChainsAndToString) {
  Row r;
  r.Set("a", 1).Set("b", "x");
  EXPECT_EQ(r.ToString(), "{a: 1, b: 'x'}");
  EXPECT_TRUE(r.Get("a").Equals(Value(1)));
}

TEST(RowTest, Equality) {
  Row a = Row::Scalar(Value(1));
  Row b = Row::Scalar(Value(1));
  Row c = Row::Scalar(Value(2));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(PredicateTest, AllCoversEverything) {
  Predicate p = Predicate::All();
  EXPECT_TRUE(p.Covers("x", Row::Scalar(Value(1))));
  EXPECT_TRUE(p.Covers("anything", Row()));
}

TEST(PredicateTest, CmpEvaluates) {
  Predicate p = Predicate::Cmp("hours", CompareOp::kGt, Value(4));
  EXPECT_TRUE(p.Covers("t1", Row().Set("hours", 5)));
  EXPECT_FALSE(p.Covers("t1", Row().Set("hours", 4)));
  EXPECT_FALSE(p.Covers("t1", Row()));  // NULL -> unknown -> false
}

TEST(PredicateTest, KeyIsNamesOneRecord) {
  // "An item lock is a predicate lock where the predicate names the
  // specific record" (Section 2.3).
  Predicate p = Predicate::KeyIs("x");
  EXPECT_TRUE(p.Covers("x", Row()));
  EXPECT_FALSE(p.Covers("y", Row()));
}

TEST(PredicateTest, BooleanConnectives) {
  Predicate active = Predicate::Cmp("active", CompareOp::kEq, Value(true));
  Predicate senior = Predicate::Cmp("age", CompareOp::kGe, Value(65));
  Predicate both = Predicate::And(active, senior);
  Predicate either = Predicate::Or(active, senior);
  Predicate inactive = Predicate::Not(active);

  Row young_active = Row().Set("active", true).Set("age", 30);
  Row old_inactive = Row().Set("active", false).Set("age", 70);

  EXPECT_FALSE(both.Covers("e1", young_active));
  EXPECT_TRUE(either.Covers("e1", young_active));
  EXPECT_TRUE(either.Covers("e2", old_inactive));
  EXPECT_FALSE(inactive.Covers("e1", young_active));
  EXPECT_TRUE(inactive.Covers("e2", old_inactive));
}

TEST(PredicateTest, PhantomCoverage) {
  // A predicate covers items "not currently in the database but that would
  // satisfy the predicate if they were inserted" — coverage is a pure
  // function of the row image, independent of any store.
  Predicate p = Predicate::Cmp("dept", CompareOp::kEq, Value("sales"));
  Row phantom = Row().Set("dept", "sales");
  EXPECT_TRUE(p.Covers("new_row_not_in_db", phantom));
}

TEST(PredicateOverlapTest, DisjointIntervals) {
  Predicate lo = Predicate::Cmp("x", CompareOp::kLt, Value(10));
  Predicate hi = Predicate::Cmp("x", CompareOp::kGt, Value(20));
  EXPECT_FALSE(lo.MayOverlap(hi));
  EXPECT_FALSE(hi.MayOverlap(lo));
}

TEST(PredicateOverlapTest, TouchingIntervalsOverlap) {
  Predicate le = Predicate::Cmp("x", CompareOp::kLe, Value(10));
  Predicate ge = Predicate::Cmp("x", CompareOp::kGe, Value(10));
  EXPECT_TRUE(le.MayOverlap(ge));
}

TEST(PredicateOverlapTest, OpenEndpointsDoNotTouch) {
  Predicate lt = Predicate::Cmp("x", CompareOp::kLt, Value(10));
  Predicate ge = Predicate::Cmp("x", CompareOp::kGe, Value(10));
  EXPECT_FALSE(lt.MayOverlap(ge));
}

TEST(PredicateOverlapTest, DifferentColumnsOverlap) {
  Predicate a = Predicate::Cmp("x", CompareOp::kLt, Value(10));
  Predicate b = Predicate::Cmp("y", CompareOp::kGt, Value(20));
  EXPECT_TRUE(a.MayOverlap(b));
}

TEST(PredicateOverlapTest, DistinctKeysDisjoint) {
  EXPECT_FALSE(Predicate::KeyIs("x").MayOverlap(Predicate::KeyIs("y")));
  EXPECT_TRUE(Predicate::KeyIs("x").MayOverlap(Predicate::KeyIs("x")));
}

TEST(PredicateOverlapTest, ExactStringConstraints) {
  Predicate sales = Predicate::Cmp("dept", CompareOp::kEq, Value("sales"));
  Predicate eng = Predicate::Cmp("dept", CompareOp::kEq, Value("eng"));
  EXPECT_FALSE(sales.MayOverlap(eng));
  EXPECT_TRUE(sales.MayOverlap(sales));
}

TEST(PredicateOverlapTest, ConjunctionNarrowing) {
  Predicate band1 = Predicate::And(Predicate::Cmp("x", CompareOp::kGe, Value(0)),
                                   Predicate::Cmp("x", CompareOp::kLe, Value(5)));
  Predicate band2 = Predicate::And(Predicate::Cmp("x", CompareOp::kGe, Value(6)),
                                   Predicate::Cmp("x", CompareOp::kLe, Value(9)));
  EXPECT_FALSE(band1.MayOverlap(band2));
}

TEST(PredicateOverlapTest, UnanalyzableIsConservative) {
  Predicate odd = Predicate::Not(Predicate::Cmp("x", CompareOp::kEq, Value(1)));
  Predicate one = Predicate::Cmp("x", CompareOp::kEq, Value(1));
  // NOT nodes are not summarized; must answer true (conservative).
  EXPECT_TRUE(odd.MayOverlap(one));
}

TEST(PredicateOverlapTest, AllOverlapsAnything) {
  EXPECT_TRUE(Predicate::All().MayOverlap(Predicate::KeyIs("x")));
  EXPECT_TRUE(Predicate::KeyIs("x").MayOverlap(Predicate::All()));
}

TEST(PredicateTest, ToStringRendering) {
  Predicate p = Predicate::And(
      Predicate::Cmp("active", CompareOp::kEq, Value(true)),
      Predicate::Cmp("hours", CompareOp::kGt, Value(4)));
  EXPECT_EQ(p.ToString(), "(active = TRUE AND hours > 4)");
  EXPECT_EQ(Predicate::KeyIs("x").ToString(), "key = 'x'");
  EXPECT_EQ(Predicate::All().ToString(), "TRUE");
}

TEST(PredicateTest, StructuralEquality) {
  Predicate a = Predicate::Cmp("x", CompareOp::kLt, Value(10));
  Predicate b = Predicate::Cmp("x", CompareOp::kLt, Value(10));
  Predicate c = Predicate::Cmp("x", CompareOp::kLe, Value(10));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace critique
