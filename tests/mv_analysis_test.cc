// Multiversion analysis tests: the H1.SI -> H1.SI.SV mapping, snapshot
// visibility validation, first-committer-wins validation, and the MV
// serialization graph (write skew's rw-only cycle).

#include <gtest/gtest.h>

#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/mv_analysis.h"
#include "critique/history/history.h"

namespace critique {
namespace {

History MustParse(std::string_view text) {
  auto r = History::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

const char kH1SI[] =
    "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1";
// H5 with the version subscripts it would carry under Snapshot Isolation.
const char kH5SI[] =
    "r1[x0=50] r1[y0=50] r2[x0=50] r2[y0=50] w1[y1=-40] w2[x2=-40] c1 c2";

TEST(MVMappingTest, H1SIMapsToPaperSVForm) {
  History mapped = MapSnapshotHistoryToSingleVersion(MustParse(kH1SI));
  // The paper's H1.SI.SV, Section 4.2.
  EXPECT_EQ(mapped.ToString(),
            "r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1");
}

TEST(MVMappingTest, MappedH1SIIsSerializable) {
  // "H1.SI has the dataflows of a serializable execution."
  History mapped = MapSnapshotHistoryToSingleVersion(MustParse(kH1SI));
  EXPECT_TRUE(IsSerializable(mapped));
}

TEST(MVMappingTest, MappedH5SIStaysWriteSkewed) {
  History mapped = MapSnapshotHistoryToSingleVersion(MustParse(kH5SI));
  EXPECT_FALSE(IsSerializable(mapped));
}

TEST(MVMappingTest, MappingIsIdentityOnSerialSV) {
  History serial = MustParse("r1[x] w1[x] c1 r2[x] c2");
  History mapped = MapSnapshotHistoryToSingleVersion(serial);
  EXPECT_EQ(mapped.ToString(), serial.ToString());
}

TEST(SnapshotVisibilityTest, H1SIIsValid) {
  EXPECT_TRUE(ValidateSnapshotVisibility(MustParse(kH1SI)).ok());
}

TEST(SnapshotVisibilityTest, H5SIIsValid) {
  EXPECT_TRUE(ValidateSnapshotVisibility(MustParse(kH5SI)).ok());
}

TEST(SnapshotVisibilityTest, ReadingConcurrentWriteRejected) {
  // T2 starts before T1 commits but reads T1's version: not a snapshot read.
  History bad = MustParse("r2[x0=1] w1[x1=5] r2[x1=5] c1 c2");
  EXPECT_FALSE(ValidateSnapshotVisibility(bad).ok());
}

TEST(SnapshotVisibilityTest, OwnWritesVisible) {
  History own = MustParse("w1[x1=5] r1[x1=5] c1");
  EXPECT_TRUE(ValidateSnapshotVisibility(own).ok());
  History stale = MustParse("w1[x1=5] r1[x0=1] c1");
  EXPECT_FALSE(ValidateSnapshotVisibility(stale).ok());
}

TEST(SnapshotVisibilityTest, CommittedBeforeStartVisible) {
  // T1 commits x1, then T2 starts and must read x1.
  History good = MustParse("w1[x1=5] c1 r2[x1=5] c2");
  EXPECT_TRUE(ValidateSnapshotVisibility(good).ok());
  History bad = MustParse("w1[x1=5] c1 r2[x0=1] c2");
  EXPECT_FALSE(ValidateSnapshotVisibility(bad).ok());
}

TEST(SnapshotVisibilityTest, WriteMustCreateOwnVersion) {
  History bad = MustParse("w1[x2=5] c1");
  EXPECT_FALSE(ValidateSnapshotVisibility(bad).ok());
}

TEST(FirstCommitterWinsTest, DisjointWriteSetsPass) {
  EXPECT_TRUE(ValidateFirstCommitterWins(MustParse(kH5SI)).ok());
  EXPECT_TRUE(ValidateFirstCommitterWins(MustParse(kH1SI)).ok());
}

TEST(FirstCommitterWinsTest, OverlappingWritersRejected) {
  // Both write x and both commit with overlapping intervals.
  History bad = MustParse("w1[x1=1] w2[x2=2] c1 c2");
  EXPECT_FALSE(ValidateFirstCommitterWins(bad).ok());
}

TEST(FirstCommitterWinsTest, SequentialWritersPass) {
  History ok = MustParse("w1[x1=1] c1 w2[x2=2] c2");
  EXPECT_TRUE(ValidateFirstCommitterWins(ok).ok());
}

TEST(FirstCommitterWinsTest, AbortedWriterDoesNotConflict) {
  // First-committer-wins only constrains committed transactions.
  History ok = MustParse("w1[x1=1] w2[x2=2] a1 c2");
  EXPECT_TRUE(ValidateFirstCommitterWins(ok).ok());
}

TEST(MVSGTest, H5SIHasRwOnlyCycle) {
  auto g = MVSerializationGraph::Build(MustParse(kH5SI));
  EXPECT_TRUE(g.HasCycle());
  EXPECT_TRUE(g.HasRwOnlyCycle());
  EXPECT_FALSE(IsMVSerializable(MustParse(kH5SI)));
}

TEST(MVSGTest, H1SIIsMVSerializable) {
  auto g = MVSerializationGraph::Build(MustParse(kH1SI));
  EXPECT_FALSE(g.HasCycle());
  EXPECT_TRUE(IsMVSerializable(MustParse(kH1SI)));
}

TEST(MVSGTest, WrEdgesFollowVersionReads) {
  History h = MustParse("w1[x1=5] c1 r2[x1=5] w2[y2=1] c2");
  auto g = MVSerializationGraph::Build(h);
  bool found_wr = false;
  for (const auto& e : g.edges()) {
    if (e.from == 1 && e.to == 2 && e.kind == ConflictKind::kWriteRead) {
      found_wr = true;
    }
  }
  EXPECT_TRUE(found_wr) << g.ToString();
}

TEST(MVSGTest, RwEdgeWhenLaterVersionExists) {
  // T2 reads x0 while T1 installs x1: anti-dependency T2 -rw-> T1.
  History h = MustParse("r2[x0=0] w1[x1=5] c1 c2");
  auto g = MVSerializationGraph::Build(h);
  bool found_rw = false;
  for (const auto& e : g.edges()) {
    if (e.from == 2 && e.to == 1 && e.kind == ConflictKind::kReadWrite) {
      found_rw = true;
    }
  }
  EXPECT_TRUE(found_rw) << g.ToString();
}

}  // namespace
}  // namespace critique
