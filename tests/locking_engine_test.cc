// LockingEngine tests: each Table 2 level's behaviour on the paper's
// scenarios, driven deterministically through the Runner.

#include <gtest/gtest.h>

#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/phenomena.h"
#include "critique/engine/locking_engine.h"
#include "critique/exec/runner.h"

namespace critique {
namespace {

Value FinalScalar(Engine& engine, const ItemId& id, TxnId reader = 77) {
  EXPECT_TRUE(engine.Begin(reader).ok());
  auto r = engine.Read(reader, id);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(engine.Commit(reader).ok());
  return r->has_value() ? (*r)->scalar() : Value();
}


// Wraps a locking engine in a session facade; the tests reach the raw
// engine through db.engine() for level-specific assertions.
Database MakeDb(IsolationLevel level) {
  DbOptions options;
  options.engine_factory = [level] {
    return std::make_unique<LockingEngine>(level);
  };
  return Database(options);
}

// T1 transfers 40 from x to y; T2 reads both and records the sum (H1's
// inconsistent analysis shape).
void AddTransferAndAudit(Runner& runner) {
  Program t1;
  t1.Read("x")
      .WriteComputed("x", [](const TxnLocals& l) {
        return Value(l.GetInt("x") - 40);
      })
      .Read("y")
      .WriteComputed("y", [](const TxnLocals& l) {
        return Value(l.GetInt("y") + 40);
      })
      .Commit();
  Program t2;
  t2.Read("x", "x2").Read("y", "y2").Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
}

// H1's interleaving: T1 debits x, T2 audits, T1 credits y.
const char kH1Schedule[] = "1 1 2 2 2 1 1 1";

TEST(LockingEngineTest, BeginValidation) {
  LockingEngine e(IsolationLevel::kSerializable);
  EXPECT_FALSE(e.Begin(0).ok());
  EXPECT_TRUE(e.Begin(1).ok());
  EXPECT_FALSE(e.Begin(1).ok());  // reuse
}

TEST(LockingEngineTest, OpsOnInactiveTxnRejected) {
  LockingEngine e(IsolationLevel::kSerializable);
  EXPECT_TRUE(e.Read(9, "x").status().IsTransactionAborted());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Commit(1).ok());
  EXPECT_TRUE(e.Write(1, "x", Row::Scalar(Value(1)))
                  .IsTransactionAborted());
}

TEST(LockingEngineTest, AbortRestoresBeforeImages) {
  LockingEngine e(IsolationLevel::kSerializable);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(10))).ok());
  ASSERT_TRUE(e.Insert(1, "z", Row::Scalar(Value(7))).ok());
  ASSERT_TRUE(e.Delete(1, "x").ok());
  ASSERT_TRUE(e.Abort(1).ok());
  EXPECT_TRUE(FinalScalar(e, "x").Equals(Value(50)));
  EXPECT_TRUE(FinalScalar(e, "z", 78).is_null());
}

TEST(LockingEngineTest, InsertExistingAndDeleteMissingRejected) {
  LockingEngine e(IsolationLevel::kSerializable);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  EXPECT_TRUE(e.Insert(1, "x", Row::Scalar(Value(2))).IsFailedPrecondition());
  EXPECT_TRUE(e.Delete(1, "nope").IsNotFound());
}

TEST(LockingEngineTest, HistoryRecordsImagesAndValues) {
  LockingEngine e(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Read(1, "x").ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(10))).ok());
  ASSERT_TRUE(e.Commit(1).ok());
  const History& h = e.history();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0].ToString(), "r1[x=50]");
  EXPECT_EQ(h[1].ToString(), "w1[x=10]");
  ASSERT_TRUE(h[1].before_image.has_value());
  EXPECT_TRUE(h[1].before_image->scalar().Equals(Value(50)));
  EXPECT_EQ(h[2].ToString(), "c1");
}

// --- Inconsistent analysis (H1) across levels -------------------------------

TEST(LockingEngineTest, ReadUncommittedAllowsDirtyReadOfTransfer) {
  Database db = MakeDb(IsolationLevel::kReadUncommitted);
  auto& e = static_cast<LockingEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(50))).ok());
  Runner runner(db);
  AddTransferAndAudit(runner);
  auto result = runner.Run(ParseSchedule(kH1Schedule));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(1));
  EXPECT_TRUE(result->Committed(2));
  // T2 saw the in-flight transfer: sum is 60, not 100.
  EXPECT_EQ(result->locals.at(2).GetInt("x2") +
                result->locals.at(2).GetInt("y2"),
            60);
  // The engine-recorded history exhibits P1, matching Table 3.
  EXPECT_TRUE(Exhibits(result->history, Phenomenon::kP1));
  EXPECT_FALSE(IsSerializable(result->history));
}

TEST(LockingEngineTest, ReadCommittedBlocksDirtyRead) {
  Database db = MakeDb(IsolationLevel::kReadCommitted);
  auto& e = static_cast<LockingEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(50))).ok());
  Runner runner(db);
  AddTransferAndAudit(runner);
  auto result = runner.Run(ParseSchedule(kH1Schedule));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(1));
  EXPECT_TRUE(result->Committed(2));
  EXPECT_GT(result->blocked_retries, 0u);  // T2 waited on T1's write lock
  EXPECT_EQ(result->locals.at(2).GetInt("x2") +
                result->locals.at(2).GetInt("y2"),
            100);
  EXPECT_FALSE(Exhibits(result->history, Phenomenon::kP1));
}

TEST(LockingEngineTest, SerializableRunIsSerializable) {
  Database db = MakeDb(IsolationLevel::kSerializable);
  auto& e = static_cast<LockingEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(50))).ok());
  Runner runner(db);
  AddTransferAndAudit(runner);
  auto result = runner.Run(ParseSchedule(kH1Schedule));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsSerializable(result->history));
  EXPECT_EQ(result->locals.at(2).GetInt("x2") +
                result->locals.at(2).GetInt("y2"),
            100);
}

// --- Dirty write (P0) --------------------------------------------------------

TEST(LockingEngineTest, Degree0AllowsDirtyWrite) {
  Database db = MakeDb(IsolationLevel::kDegree0);
  auto& e = static_cast<LockingEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(0))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(0))).ok());
  Runner runner(db);
  Program t1;
  t1.Write("x", Value(1)).Write("y", Value(1)).Commit();
  Program t2;
  t2.Write("x", Value(2)).Write("y", Value(2)).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  // w1[x] w2[x] w2[y] c2 w1[y] c1: the paper's x=y constraint violation.
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Exhibits(result->history, Phenomenon::kP0));
  Value x = FinalScalar(e, "x"), y = FinalScalar(e, "y", 78);
  EXPECT_FALSE(x.Equals(y));  // x=2, y=1: both transactions' writes survive
}

TEST(LockingEngineTest, Degree1PreventsDirtyWrite) {
  // Even Locking READ UNCOMMITTED holds long write locks (Remark 3).
  Database db = MakeDb(IsolationLevel::kReadUncommitted);
  auto& e = static_cast<LockingEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(0))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(0))).ok());
  Runner runner(db);
  Program t1;
  t1.Write("x", Value(1)).Write("y", Value(1)).Commit();
  Program t2;
  t2.Write("x", Value(2)).Write("y", Value(2)).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(Exhibits(result->history, Phenomenon::kP0));
  Value x = FinalScalar(e, "x"), y = FinalScalar(e, "y", 78);
  EXPECT_TRUE(x.Equals(y));  // whichever order, x == y holds
}

// --- Lost update (P4) --------------------------------------------------------

TEST(LockingEngineTest, ReadCommittedAllowsLostUpdate) {
  Database db = MakeDb(IsolationLevel::kReadCommitted);
  auto& e = static_cast<LockingEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(100))).ok());
  Runner runner(db);
  Program t1;
  t1.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 30);
    }).Commit();
  Program t2;
  t2.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 20);
    }).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  // H4: r1[x] r2[x] w2[x] c2 w1[x] c1.
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(1));
  EXPECT_TRUE(result->Committed(2));
  EXPECT_TRUE(Exhibits(result->history, Phenomenon::kP4));
  EXPECT_TRUE(FinalScalar(e, "x").Equals(Value(130)));  // T2's +20 lost
}

TEST(LockingEngineTest, RepeatableReadPreventsLostUpdateViaDeadlock) {
  Database db = MakeDb(IsolationLevel::kRepeatableRead);
  auto& e = static_cast<LockingEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(100))).ok());
  Runner runner(db);
  Program t1;
  t1.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 30);
    }).Commit();
  Program t2;
  t2.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 20);
    }).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Long read locks force a write-write deadlock; exactly one survives.
  int committed = result->Committed(1) + result->Committed(2);
  EXPECT_EQ(committed, 1);
  EXPECT_FALSE(Exhibits(result->history, Phenomenon::kP4));
  // The survivor's increment is intact.
  Value final = FinalScalar(e, "x");
  EXPECT_TRUE(final.Equals(Value(120)) || final.Equals(Value(130)));
}

// --- Cursor Stability (P4C) --------------------------------------------------

TEST(LockingEngineTest, CursorStabilityPreventsCursorLostUpdate) {
  Database db = MakeDb(IsolationLevel::kCursorStability);
  auto& e = static_cast<LockingEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(100))).ok());
  Runner runner(db);
  Program t1;
  t1.Fetch("x").WriteCursorComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 30);
    }).Commit();
  Program t2;
  t2.Fetch("x").WriteCursorComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 20);
    }).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int committed = result->Committed(1) + result->Committed(2);
  EXPECT_EQ(committed, 1);  // cursor locks force a deadlock; one survives
  EXPECT_FALSE(Exhibits(result->history, Phenomenon::kP4C));
}

TEST(LockingEngineTest, ReadCommittedAllowsCursorLostUpdate) {
  Database db = MakeDb(IsolationLevel::kReadCommitted);
  auto& e = static_cast<LockingEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(100))).ok());
  Runner runner(db);
  Program t1;
  t1.Fetch("x").WriteCursorComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 30);
    }).Commit();
  Program t2;
  t2.Fetch("x").WriteCursorComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 20);
    }).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(1));
  EXPECT_TRUE(result->Committed(2));
  EXPECT_TRUE(Exhibits(result->history, Phenomenon::kP4C));
  EXPECT_TRUE(FinalScalar(e, "x").Equals(Value(130)));
}

TEST(LockingEngineTest, CursorLockReleasedWhenCursorMoves) {
  LockingEngine e(IsolationLevel::kCursorStability);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.FetchCursor(1, "x").ok());
  ASSERT_TRUE(e.Begin(2).ok());
  // x is cursor-locked: T2 cannot write it.
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(9))).IsWouldBlock());
  // Cursor moves to y: x's lock is released.
  ASSERT_TRUE(e.FetchCursor(1, "y").ok());
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(9))).ok());
  // y is now protected instead.
  EXPECT_TRUE(e.Write(2, "y", Row::Scalar(Value(9))).IsWouldBlock());
  ASSERT_TRUE(e.CloseCursor(1).ok());
  EXPECT_TRUE(e.Write(2, "y", Row::Scalar(Value(9))).ok());
}

// --- Phantoms (P3) -----------------------------------------------------------

TEST(LockingEngineTest, RepeatableReadAllowsPhantoms) {
  LockingEngine e(IsolationLevel::kRepeatableRead);
  ASSERT_TRUE(e.Load("e1", Row().Set("active", true)).ok());
  Predicate actives = Predicate::Cmp("active", CompareOp::kEq, true);

  ASSERT_TRUE(e.Begin(1).ok());
  auto first = e.ReadPredicate(1, "Active", actives);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 1u);

  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Insert(2, "e2", Row().Set("active", true)).ok());
  ASSERT_TRUE(e.Commit(2).ok());

  auto second = e.ReadPredicate(1, "Active", actives);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 2u);  // the phantom appeared
  ASSERT_TRUE(e.Commit(1).ok());
  EXPECT_TRUE(Exhibits(e.history(), Phenomenon::kA3));
}

TEST(LockingEngineTest, SerializablePreventsPhantoms) {
  LockingEngine e(IsolationLevel::kSerializable);
  ASSERT_TRUE(e.Load("e1", Row().Set("active", true)).ok());
  Predicate actives = Predicate::Cmp("active", CompareOp::kEq, true);

  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.ReadPredicate(1, "Active", actives).ok());

  ASSERT_TRUE(e.Begin(2).ok());
  // Long predicate lock: the insert into the predicate blocks.
  EXPECT_TRUE(e.Insert(2, "e2", Row().Set("active", true)).IsWouldBlock());
  // An insert outside the predicate is fine.
  EXPECT_TRUE(e.Insert(2, "e3", Row().Set("active", false)).ok());

  auto second = e.ReadPredicate(1, "Active", actives);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 1u);
  ASSERT_TRUE(e.Commit(1).ok());
  ASSERT_TRUE(e.Commit(2).ok());
  EXPECT_FALSE(Exhibits(e.history(), Phenomenon::kA3));
}

}  // namespace
}  // namespace critique
