// Tests for the mechanical layer of the durability subsystem: the WAL
// record codec (every record type round-trips; corruption and torn tails
// shorten the readable prefix, never misparse), the file writer (buffered
// until sync — the crash model), and the `CommitLog` pipeline
// (single-commit vs group-commit sync accounting, and the failpoints the
// crash matrix is built from).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "critique/db/database.h"
#include "critique/wal/commit_log.h"
#include "critique/wal/wal_record.h"
#include "critique/wal/wal_writer.h"

namespace critique {
namespace {

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "critique_wal_" + name;
}

// A record of every type, with images covering every Value type, a
// tombstone, and a multi-column row.
std::vector<WalRecord> SampleRecords() {
  Row multi;
  multi.Set("balance", Value(int64_t{42}))
      .Set("rate", Value(2.5))
      .Set("active", Value(true))
      .Set("name", Value("ada"))
      .Set("note", Value());
  std::vector<WalWriteImage> images;
  images.push_back({"x", Row::Scalar(Value(7))});
  images.push_back({"y", std::nullopt});  // tombstone
  images.push_back({"z", multi});

  std::vector<WalRecord> recs;
  recs.push_back(WalRecord::Begin(3));
  recs.push_back(WalRecord::WriteSet(3, images));
  recs.push_back(WalRecord::Prepare(3));
  recs.push_back(WalRecord::Commit(3, 17));
  recs.push_back(WalRecord::Abort(4));
  recs.push_back(WalRecord::Decision(9, true));
  recs.push_back(WalRecord::DecisionEnd(9));
  recs.push_back(WalRecord::LoadRow("w", Row::Scalar(Value("boot"))));
  return recs;
}

void ExpectRecordEq(const WalRecord& want, const WalRecord& got,
                    const std::string& where) {
  EXPECT_EQ(want.type, got.type) << where;
  EXPECT_EQ(want.txn, got.txn) << where;
  EXPECT_EQ(want.commit_ts, got.commit_ts) << where;
  EXPECT_EQ(want.commit_decision, got.commit_decision) << where;
  ASSERT_EQ(want.images.size(), got.images.size()) << where;
  for (size_t i = 0; i < want.images.size(); ++i) {
    EXPECT_EQ(want.images[i].id, got.images[i].id) << where;
    ASSERT_EQ(want.images[i].row.has_value(), got.images[i].row.has_value())
        << where << " image " << i;
    if (want.images[i].row.has_value()) {
      EXPECT_EQ(*want.images[i].row, *got.images[i].row)
          << where << " image " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(WalTest, CodecRoundTripsEveryRecordType) {
  for (const WalRecord& rec : SampleRecords()) {
    const std::string payload = EncodeWalRecord(rec);
    Result<WalRecord> back = DecodeWalRecord(payload);
    ASSERT_TRUE(back.ok()) << WalRecordTypeName(rec.type) << ": "
                           << back.status().ToString();
    ExpectRecordEq(rec, back.value(), WalRecordTypeName(rec.type));
  }
}

TEST(WalTest, DecodeRejectsStructuralDefects) {
  const std::string payload = EncodeWalRecord(SampleRecords()[1]);  // writeset
  // Truncated payload.
  EXPECT_FALSE(DecodeWalRecord(payload.substr(0, payload.size() - 1)).ok());
  // Trailing garbage.
  EXPECT_FALSE(DecodeWalRecord(payload + "!").ok());
  // Unknown record type.
  std::string bad = payload;
  bad[0] = static_cast<char>(0x7f);
  EXPECT_FALSE(DecodeWalRecord(bad).ok());
  // Empty payload.
  EXPECT_FALSE(DecodeWalRecord("").ok());
}

// The format property test of the issue: a framed record sequence
// truncated at EVERY byte yields some intact prefix of the original
// records plus a detected torn tail — never a misparse, never a crash.
TEST(WalTest, TruncationAtEveryByteIsAPrefixNeverAMisparse) {
  const std::vector<WalRecord> recs = SampleRecords();
  std::string buf;
  std::vector<size_t> boundaries;  // buf size after each whole record
  for (const WalRecord& rec : recs) {
    FrameWalRecord(rec, &buf);
    boundaries.push_back(buf.size());
  }

  for (size_t cut = 0; cut <= buf.size(); ++cut) {
    const WalReadResult res = ReadWalBytes(buf.substr(0, cut));
    // The parsed records are exactly the whole records below the cut.
    size_t whole = 0;
    while (whole < boundaries.size() && boundaries[whole] <= cut) ++whole;
    ASSERT_EQ(res.records.size(), whole) << "cut at byte " << cut;
    for (size_t i = 0; i < whole; ++i) {
      ExpectRecordEq(recs[i], res.records[i],
                     "cut " + std::to_string(cut) + " record " +
                         std::to_string(i));
    }
    const size_t prefix_bytes = whole == 0 ? 0 : boundaries[whole - 1];
    EXPECT_EQ(res.valid_bytes, prefix_bytes) << "cut at byte " << cut;
    EXPECT_EQ(res.total_bytes, cut);
    // Torn tail iff the cut landed strictly inside a record.
    EXPECT_EQ(res.torn_tail, cut != prefix_bytes) << "cut at byte " << cut;
  }
}

// Corruption (a flipped byte, not truncation) also just shortens the
// prefix: the CRC refuses the damaged record and everything behind it.
TEST(WalTest, CorruptByteStopsTheReadablePrefix) {
  const std::vector<WalRecord> recs = SampleRecords();
  std::string buf;
  std::vector<size_t> boundaries;
  for (const WalRecord& rec : recs) {
    FrameWalRecord(rec, &buf);
    boundaries.push_back(buf.size());
  }
  // Flip a byte inside the third record's payload.
  std::string dam = buf;
  dam[boundaries[1] + 9] = static_cast<char>(dam[boundaries[1] + 9] ^ 0x40);
  const WalReadResult res = ReadWalBytes(dam);
  ASSERT_EQ(res.records.size(), 2u);
  ExpectRecordEq(recs[0], res.records[0], "after corruption");
  ExpectRecordEq(recs[1], res.records[1], "after corruption");
  EXPECT_TRUE(res.torn_tail);
  EXPECT_EQ(res.valid_bytes, boundaries[1]);
}

// ---------------------------------------------------------------------------
// File writer: buffered-until-sync is the crash model
// ---------------------------------------------------------------------------

TEST(WalTest, WriterRoundTripsThroughAFile) {
  const std::string path = TmpPath("writer_roundtrip.wal");
  const std::vector<WalRecord> recs = SampleRecords();
  {
    Result<WalWriter> w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    WalWriter writer = std::move(w).value();
    uint64_t lsn = 0;
    for (const WalRecord& rec : recs) lsn = writer.Append(rec);
    EXPECT_EQ(lsn, recs.size());
    EXPECT_EQ(writer.durable_lsn(), 0u);  // nothing synced yet
    ASSERT_TRUE(writer.Sync().ok());
    EXPECT_EQ(writer.durable_lsn(), recs.size());

    // One more append, never synced: it must die with the writer.
    writer.Append(WalRecord::Begin(99));
  }
  Result<WalReadResult> back = WalReader::ReadFile(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().records.size(), recs.size())
      << "the unsynced suffix must not reach the file";
  EXPECT_FALSE(back.value().torn_tail);
  for (size_t i = 0; i < recs.size(); ++i) {
    ExpectRecordEq(recs[i], back.value().records[i], "file round-trip");
  }
}

TEST(WalTest, ReaderTreatsAMissingFileAsAnEmptyLog) {
  Result<WalReadResult> r = WalReader::ReadFile(TmpPath("never_created.wal"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().records.empty());
  EXPECT_FALSE(r.value().torn_tail);
}

TEST(WalTest, OpenForAppendChopsTheTornTailAndAppendsBehindIt) {
  const std::string path = TmpPath("open_for_append.wal");
  const std::vector<WalRecord> recs = SampleRecords();
  {
    Result<WalWriter> w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok());
    WalWriter writer = std::move(w).value();
    for (const WalRecord& rec : recs) writer.Append(rec);
    ASSERT_TRUE(writer.Sync().ok());
  }
  {  // a torn half-record at the tail, as a crash mid-write would leave
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = {0x10, 0x00, 0x00, 0x00, 0x01};
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  Result<WalReadResult> torn = WalReader::ReadFile(path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn.value().torn_tail);
  ASSERT_EQ(torn.value().records.size(), recs.size());

  {
    Result<WalWriter> w = WalWriter::OpenForAppend(path, torn.value().valid_bytes);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    WalWriter writer = std::move(w).value();
    writer.Append(WalRecord::Commit(42, 5));
    ASSERT_TRUE(writer.Sync().ok());
  }
  Result<WalReadResult> fixed = WalReader::ReadFile(path);
  ASSERT_TRUE(fixed.ok());
  EXPECT_FALSE(fixed.value().torn_tail);
  ASSERT_EQ(fixed.value().records.size(), recs.size() + 1);
  EXPECT_EQ(fixed.value().records.back().txn, 42);
}

// ---------------------------------------------------------------------------
// CommitLog: sync accounting
// ---------------------------------------------------------------------------

TEST(WalTest, SingleCommitModePaysOneSyncPerWait) {
  const std::string path = TmpPath("single_commit.wal");
  Result<WalWriter> w = WalWriter::Create(path);
  ASSERT_TRUE(w.ok());
  CommitLog log(std::move(w).value(), CommitLog::Options{});
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(log.AppendDurable(WalRecord::Commit(i, 0)).ok());
  }
  const GroupCommitStats s = log.stats();
  EXPECT_EQ(s.appends, 3u);
  EXPECT_EQ(s.syncs, 3u) << "no piggybacking in single-commit mode";
  EXPECT_EQ(s.batched, 0u);

  Result<WalReadResult> back = WalReader::ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().records.size(), 3u);
}

TEST(WalTest, GroupCommitOneSyncCoversEverythingAppendedBefore) {
  const std::string path = TmpPath("group_commit.wal");
  Result<WalWriter> w = WalWriter::Create(path);
  ASSERT_TRUE(w.ok());
  CommitLog::Options opt;
  opt.group_commit = true;
  CommitLog log(std::move(w).value(), opt);

  const uint64_t lsn1 = log.Append(WalRecord::Commit(1, 0));
  const uint64_t lsn2 = log.Append(WalRecord::Commit(2, 0));
  ASSERT_TRUE(log.WaitDurable(lsn2).ok());
  EXPECT_EQ(log.stats().syncs, 1u) << "one round covers both records";
  ASSERT_TRUE(log.WaitDurable(lsn1).ok());
  EXPECT_EQ(log.stats().syncs, 1u) << "already covered: no new sync";

  Result<WalReadResult> back = WalReader::ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().records.size(), 2u);
}

TEST(WalTest, GroupCommitManyThreadsAllDurableFewerSyncsThanAppends) {
  const std::string path = TmpPath("group_commit_mt.wal");
  Result<WalWriter> w = WalWriter::Create(path);
  ASSERT_TRUE(w.ok());
  CommitLog::Options opt;
  opt.group_commit = true;
  opt.fsync_mode = FsyncMode::kSimulated;  // make batching worth winning
  opt.fsync_latency = std::chrono::microseconds(200);
  CommitLog log(std::move(w).value(), opt);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(
            log.AppendDurable(WalRecord::Commit(t * 1000 + i, 0)).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const GroupCommitStats s = log.stats();
  EXPECT_EQ(s.appends, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_LE(s.syncs, s.appends);
  Result<WalReadResult> back = WalReader::ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().records.size(),
            static_cast<size_t>(kThreads * kPerThread))
      << "every acked commit is in the file";
}

// ---------------------------------------------------------------------------
// Failpoints: a tripped log is dead and the file keeps the synced prefix
// ---------------------------------------------------------------------------

TEST(WalTest, PreAppendFailpointLosesTheRecordAndKillsTheLog) {
  const std::string path = TmpPath("fp_pre_append.wal");
  Result<WalWriter> w = WalWriter::Create(path);
  ASSERT_TRUE(w.ok());
  {
    CommitLog log(std::move(w).value(), CommitLog::Options{});
    ASSERT_TRUE(log.AppendDurable(WalRecord::Commit(1, 0)).ok());

    log.set_failpoint(WalFailpoint::kPreAppend);
    EXPECT_EQ(log.Append(WalRecord::Commit(2, 0)), 0u);
    EXPECT_FALSE(log.WaitDurable(0).ok()) << "dead log must report failure";
    EXPECT_EQ(log.Append(WalRecord::Commit(3, 0)), 0u) << "dead is terminal";
  }  // destruction of a dead log must NOT flush anything
  Result<WalReadResult> back = WalReader::ReadFile(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().records.size(), 1u);
  EXPECT_EQ(back.value().records[0].txn, 1);
}

TEST(WalTest, PreSyncFailpointLosesTheUnsyncedSuffix) {
  const std::string path = TmpPath("fp_pre_sync.wal");
  Result<WalWriter> w = WalWriter::Create(path);
  ASSERT_TRUE(w.ok());
  {
    CommitLog log(std::move(w).value(), CommitLog::Options{});
    ASSERT_TRUE(log.AppendDurable(WalRecord::Commit(1, 0)).ok());

    log.set_failpoint(WalFailpoint::kPreSync);
    const uint64_t lsn = log.Append(WalRecord::Commit(2, 0));
    EXPECT_NE(lsn, 0u) << "the append itself buffers fine";
    EXPECT_FALSE(log.WaitDurable(lsn).ok())
        << "the sync dies before the device write";
  }
  Result<WalReadResult> back = WalReader::ReadFile(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().records.size(), 1u)
      << "the buffered-but-never-synced record must not be in the file";
  EXPECT_EQ(back.value().records[0].txn, 1);
}

// ---------------------------------------------------------------------------
// Real fsync mode
// ---------------------------------------------------------------------------

TEST(WalTest, RealFsyncModeRoundTripsThroughAFile) {
  // kFsync adds a real fdatasync(2) behind the flush.  The observable
  // contract is the same as kFlush (durable_lsn advances, records read
  // back) plus the syscall succeeding against a real file — which is
  // what this exercises; power-loss behavior is the device's problem.
  const std::string path = TmpPath("real_fsync.wal");
  const std::vector<WalRecord> recs = SampleRecords();
  {
    Result<WalWriter> w = WalWriter::Create(path);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    WalWriter writer = std::move(w).value();
    for (const WalRecord& rec : recs) writer.Append(rec);
    Status s = writer.Sync(FsyncMode::kFsync);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(writer.durable_lsn(), recs.size());
    // A second sync with nothing staged is a legal no-op barrier.
    ASSERT_TRUE(writer.Sync(FsyncMode::kFsync).ok());
  }
  Result<WalReadResult> back = WalReader::ReadFile(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().records.size(), recs.size());
  EXPECT_FALSE(back.value().torn_tail);
}

TEST(WalTest, RealFsyncModeSyncsTheDirectoryEntryToo) {
  // Power-loss honesty needs more than fdatasync of the file: a freshly
  // created log is only durable once its directory entry is.  Create and
  // OpenForAppend take the deployment's mode and fsync the parent
  // directory under kFsync; observable here is that both paths succeed
  // against a real directory and the log round-trips.
  const std::string path = TmpPath("dir_fsync.wal");
  const std::vector<WalRecord> recs = SampleRecords();
  {
    Result<WalWriter> w = WalWriter::Create(path, FsyncMode::kFsync);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    WalWriter writer = std::move(w).value();
    for (const WalRecord& rec : recs) writer.Append(rec);
    ASSERT_TRUE(writer.Sync(FsyncMode::kFsync).ok());
  }
  Result<WalReadResult> first = WalReader::ReadFile(path);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().records.size(), recs.size());

  // Reopen-for-append in kFsync mode pins the recovery truncation (the
  // whole intact file here) before anything lands behind it.
  {
    Result<WalWriter> w = WalWriter::OpenForAppend(
        path, first.value().valid_bytes, FsyncMode::kFsync);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    WalWriter writer = std::move(w).value();
    writer.Append(recs[0]);
    ASSERT_TRUE(writer.Sync(FsyncMode::kFsync).ok());
  }
  Result<WalReadResult> back = WalReader::ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().records.size(), recs.size() + 1);
  EXPECT_FALSE(back.value().torn_tail);
}

TEST(WalTest, DatabaseWithRealFsyncCommitsAndRecovers) {
  DbOptions opt(IsolationLevel::kSerializable);
  opt.wal_path = TmpPath("db_real_fsync.wal");
  opt.fsync_mode = FsyncMode::kFsync;
  {
    Database db(opt);
    ASSERT_TRUE(db.Load("a", Value(1)).ok());
    ASSERT_TRUE(db.Execute([](Transaction& t) -> Status {
                    return t.Put("a", Value(2));
                  }).ok());
    ASSERT_TRUE(db.Execute([](Transaction& t) -> Status {
                    return t.Insert("b", Row::Scalar(Value(3)));
                  }).ok());
  }
  Result<Database> r = Database::Recover(opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Database rec = std::move(r).value();
  EXPECT_TRUE(rec.recovered());
  EXPECT_EQ(rec.wal_recovery().committed_replayed, 2u);
  Transaction t = rec.Begin();
  Result<Value> a = t.GetScalar("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->AsInt(), 2);
  Result<Value> b = t.GetScalar("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->AsInt(), 3);
  ASSERT_TRUE(t.Commit().ok());
}

}  // namespace
}  // namespace critique
