// Tests for the sharded database: hash routing, the single-shard fast
// path, 2PC atomicity, the cross-shard anomaly scenarios the subsystem
// exists to demonstrate, and presumed-abort recovery of in-doubt
// participants.
//
// The acceptance triangle:
//  (a) per-shard Snapshot Isolation admits cross-shard write skew —
//      while every shard's local history validates as impeccable SI;
//  (b) per-shard Locking SERIALIZABLE + 2PC prevents it;
//  (c) a coordinator crash between prepare and decision leaves
//      participants in doubt, and recovery resolves them with nothing
//      leaked (locks released, pending versions gone, values correct).

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/mv_analysis.h"
#include "critique/engine/locking_engine.h"
#include "critique/engine/si_engine.h"
#include "critique/shard/shard_scenarios.h"
#include "critique/shard/sharded_database.h"
#include "critique/workload/parallel_driver.h"
#include "critique/workload/workload.h"

namespace critique {
namespace {

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, DeterministicInRangeAndBothShardsUsed) {
  ShardRouter router(4);
  std::set<int> used;
  for (int k = 0; k < 64; ++k) {
    const ItemId id = "i" + std::to_string(k);
    const int s = router.ShardOf(id);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(s, router.ShardOf(id));  // pure function of the id
    used.insert(s);
  }
  EXPECT_EQ(used.size(), 4u) << "64 keys should reach all 4 shards";

  // Placement is a function of (id, num_shards), not of router identity.
  ShardRouter again(4);
  for (int k = 0; k < 64; ++k) {
    const ItemId id = "i" + std::to_string(k);
    EXPECT_EQ(router.ShardOf(id), again.ShardOf(id));
  }
}

// ---------------------------------------------------------------------------
// Fast path and 2PC atomicity
// ---------------------------------------------------------------------------

TEST(ShardedDatabaseTest, SingleShardTransactionSkipsCoordinator) {
  ShardedDatabase db(2, IsolationLevel::kSerializable);
  ASSERT_TRUE(db.Load("a", Value(1)).ok());

  ShardedTransaction txn = db.Begin();
  ASSERT_TRUE(txn.Put("a", Value(2)).ok());
  EXPECT_FALSE(txn.cross_shard());
  ASSERT_TRUE(txn.Commit().ok());

  EXPECT_EQ(db.single_shard_commits(), 1u);
  EXPECT_EQ(db.coordinator().stats().started, 0u);
}

TEST(ShardedDatabaseTest, CrossShardCommitIsAtomicAndCoordinated) {
  ShardedDatabase db(2, IsolationLevel::kSerializable);
  auto pair = PickCrossShardPair(db.router());
  ASSERT_TRUE(pair.ok());
  const ItemId x = pair->first, y = pair->second;
  ASSERT_TRUE(db.Load(x, Value(100)).ok());
  ASSERT_TRUE(db.Load(y, Value(100)).ok());

  ShardedTransaction txn = db.Begin();
  ASSERT_TRUE(txn.Update(x, [](const std::optional<Row>& r) {
                    return Row::Scalar(Value(r->scalar().AsInt() - 30));
                  }).ok());
  ASSERT_TRUE(txn.Update(y, [](const std::optional<Row>& r) {
                    return Row::Scalar(Value(r->scalar().AsInt() + 30));
                  }).ok());
  EXPECT_TRUE(txn.cross_shard());
  ASSERT_TRUE(txn.Commit().ok());

  EXPECT_EQ(db.coordinator().stats().started, 1u);
  EXPECT_EQ(db.coordinator().stats().committed, 1u);

  ShardedTransaction audit = db.Begin();
  auto vx = audit.GetScalar(x);
  auto vy = audit.GetScalar(y);
  ASSERT_TRUE(vx.ok());
  ASSERT_TRUE(vy.ok());
  EXPECT_EQ(vx->AsInt(), 70);
  EXPECT_EQ(vy->AsInt(), 130);
  EXPECT_TRUE(audit.Commit().ok());
}

TEST(ShardedDatabaseTest, RollbackAbortsEveryParticipant) {
  ShardedDatabase db(2, IsolationLevel::kSerializable);
  auto pair = PickCrossShardPair(db.router());
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(db.Load(pair->first, Value(1)).ok());
  ASSERT_TRUE(db.Load(pair->second, Value(2)).ok());

  {
    ShardedTransaction txn = db.Begin();
    ASSERT_TRUE(txn.Put(pair->first, Value(10)).ok());
    ASSERT_TRUE(txn.Put(pair->second, Value(20)).ok());
    // RAII rollback on scope exit.
  }

  ShardedTransaction audit = db.Begin();
  EXPECT_EQ(audit.GetScalar(pair->first)->AsInt(), 1);
  EXPECT_EQ(audit.GetScalar(pair->second)->AsInt(), 2);
  EXPECT_TRUE(audit.Commit().ok());

  // Nothing held: both locking shards granted and released symmetrically.
  for (int s = 0; s < db.num_shards(); ++s) {
    auto& eng = dynamic_cast<LockingEngine&>(db.shard(s).engine());
    EXPECT_EQ(eng.lock_stats().acquired, eng.lock_stats().released);
  }
}

TEST(ShardedDatabaseTest, ScatterGatherPredicateReadSeesEveryShard) {
  ShardedDatabase db(4, IsolationLevel::kSerializable);
  for (int k = 0; k < 16; ++k) {
    ASSERT_TRUE(db.Load("i" + std::to_string(k), Value(k)).ok());
  }
  ShardedTransaction txn = db.Begin();
  auto rows = txn.GetWhere("P", Predicate::Cmp("val", CompareOp::kGe, 0));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 16u);
  EXPECT_EQ(txn.shards_touched(), 4);
  EXPECT_TRUE(txn.Commit().ok());
}

TEST(ShardedDatabaseTest, ParticipantAbortDoomsTheGlobalTransaction) {
  // Two SI sharded transactions race on one item; the First-Committer-Wins
  // loser must take its *other* participant down with it.
  ShardedDatabase db(2, IsolationLevel::kSnapshotIsolation);
  auto pair = PickCrossShardPair(db.router());
  ASSERT_TRUE(pair.ok());
  const ItemId x = pair->first, y = pair->second;
  ASSERT_TRUE(db.Load(x, Value(0)).ok());
  ASSERT_TRUE(db.Load(y, Value(0)).ok());

  ShardedTransaction t1 = db.Begin();
  ShardedTransaction t2 = db.Begin();
  ASSERT_TRUE(t1.Put(x, Value(1)).ok());
  ASSERT_TRUE(t1.Put(y, Value(1)).ok());
  ASSERT_TRUE(t2.Put(x, Value(2)).ok());
  ASSERT_TRUE(t2.Put(y, Value(2)).ok());
  ASSERT_TRUE(t1.Commit().ok());

  Status s = t2.Commit();
  EXPECT_TRUE(s.IsSerializationFailure()) << s.ToString();
  EXPECT_FALSE(t2.active());

  ShardedTransaction audit = db.Begin();
  EXPECT_EQ(audit.GetScalar(x)->AsInt(), 1);
  EXPECT_EQ(audit.GetScalar(y)->AsInt(), 1);
  EXPECT_TRUE(audit.Commit().ok());
}

TEST(ShardedDatabaseTest, ExecuteRetriesRetryableFailures) {
  ShardedDatabase db(2, IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(db.Load("a", Value(0)).ok());

  int calls = 0;
  Status s = db.Execute([&](ShardedTransaction& txn) {
    ++calls;
    CRITIQUE_RETURN_NOT_OK(txn.Put("a", Value(calls)));
    if (calls == 1) {
      (void)txn.Rollback();
      return Status::SerializationFailure("injected retryable failure");
    }
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(db.execute_retries(), 1u);

  ShardedTransaction audit = db.Begin();
  EXPECT_EQ(audit.GetScalar("a")->AsInt(), 2);
  EXPECT_TRUE(audit.Commit().ok());
}

// ---------------------------------------------------------------------------
// (a) + (b): the cross-shard anomaly family
// ---------------------------------------------------------------------------

TEST(CrossShardAnomalyTest, WriteSkewOccursWithPerShardSnapshotIsolation) {
  ShardedDatabase db(2, IsolationLevel::kSnapshotIsolation);
  auto out = RunCrossShardWriteSkew(db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->anomaly) << out->detail;
  EXPECT_FALSE(out->blocked);  // "SI reads are never blocked" — nor writes here

  // The damning part: every shard's local history is impeccable Snapshot
  // Isolation, and its single-version mapping is even serializable.  The
  // anomaly exists only globally — no per-shard detector can see it.
  for (int s = 0; s < db.num_shards(); ++s) {
    const History h = db.shard(s).history();
    EXPECT_TRUE(ValidateSnapshotVisibility(h).ok());
    EXPECT_TRUE(IsSerializable(MapSnapshotHistoryToSingleVersion(h)));
  }
}

TEST(CrossShardAnomalyTest, WriteSkewPreventedByPerShardSerializable2PC) {
  ShardedDatabase db(2, IsolationLevel::kSerializable);
  auto out = RunCrossShardWriteSkew(db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->anomaly) << out->detail;
  EXPECT_TRUE(out->blocked);  // the long read locks engaged...
  EXPECT_TRUE(out->aborted);  // ...and the cross-shard deadlock cost a victim

  // Global serializability witness: the union judgment per shard — each
  // local history must be serializable, and the surviving transaction
  // committed on every shard it touched (2PC atomicity).
  for (int s = 0; s < db.num_shards(); ++s) {
    EXPECT_TRUE(IsSerializable(db.shard(s).history()));
  }
}

TEST(CrossShardAnomalyTest, WriteSkewSurvivesPerShardSsi) {
  // Even SSI shards cannot see a dangerous structure whose rw edges live
  // on different shards: one edge per shard, no local pivot.  Global
  // serializability needs coordinator-level certification — or locks.
  ShardedDatabase db(2, IsolationLevel::kSerializableSI);
  auto out = RunCrossShardWriteSkew(db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->anomaly) << out->detail;
}

TEST(CrossShardAnomalyTest, FracturedReadOccursWithPerShardSnapshotIsolation) {
  ShardedDatabase db(2, IsolationLevel::kSnapshotIsolation);
  auto out = RunFracturedRead(db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // The transfer committed atomically through 2PC, yet the reader saw the
  // pre-transfer x and the post-transfer y: there is no global snapshot.
  // A single SI site forbids exactly this (one snapshot covers all items).
  EXPECT_TRUE(out->anomaly) << out->detail;

  for (int s = 0; s < db.num_shards(); ++s) {
    EXPECT_TRUE(ValidateSnapshotVisibility(db.shard(s).history()).ok());
  }
}

TEST(CrossShardAnomalyTest, FracturedReadPreventedByPerShardSerializable2PC) {
  ShardedDatabase db(2, IsolationLevel::kSerializable);
  auto out = RunFracturedRead(db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->anomaly) << out->detail;
  EXPECT_TRUE(out->blocked);  // the transfer waited behind the audit
}

TEST(CrossShardAnomalyTest, SingleSiteSnapshotIsolationForbidsTheFracture) {
  // The control experiment: the same interleaving on ONE SI site reads a
  // consistent snapshot — the anomaly is a child of partitioning, not of
  // SI itself.
  Database db(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(db.Load("x", Value(100)).ok());
  ASSERT_TRUE(db.Load("y", Value(100)).ok());

  Transaction reader = db.Begin();
  ASSERT_TRUE(reader.GetScalar("x").ok());  // snapshot pinned here

  Status s = db.Execute([](Transaction& w) {
    CRITIQUE_ASSIGN_OR_RETURN(Value x, w.GetScalar("x"));
    CRITIQUE_RETURN_NOT_OK(w.Put("x", Value(x.AsInt() - 50)));
    CRITIQUE_ASSIGN_OR_RETURN(Value y, w.GetScalar("y"));
    return w.Put("y", Value(y.AsInt() + 50));
  });
  ASSERT_TRUE(s.ok());

  auto rx = reader.GetScalar("x");
  auto ry = reader.GetScalar("y");
  ASSERT_TRUE(rx.ok());
  ASSERT_TRUE(ry.ok());
  EXPECT_EQ(rx->AsInt() + ry->AsInt(), 200);  // one snapshot, no fracture
  EXPECT_TRUE(reader.Commit().ok());
}

// ---------------------------------------------------------------------------
// (c): in-doubt participants and presumed-abort recovery
// ---------------------------------------------------------------------------

TEST(InDoubtRecoveryTest, CoordinatorCrashBeforeDecisionPresumesAbort) {
  ShardedDatabase db(2, IsolationLevel::kSerializable);
  auto pair = PickCrossShardPair(db.router());
  ASSERT_TRUE(pair.ok());
  const ItemId x = pair->first, y = pair->second;
  ASSERT_TRUE(db.Load(x, Value(10)).ok());
  ASSERT_TRUE(db.Load(y, Value(20)).ok());

  TxnId gid = 0;
  {
    ShardedTransaction txn = db.Begin();
    gid = txn.id();
    ASSERT_TRUE(txn.Put(x, Value(11)).ok());
    ASSERT_TRUE(txn.Put(y, Value(21)).ok());
    db.coordinator().set_failpoint(CoordinatorFailpoint::kBeforeDecision);
    Status s = txn.Commit();
    EXPECT_TRUE(s.IsInternal()) << s.ToString();
    db.coordinator().set_failpoint(CoordinatorFailpoint::kNone);
  }  // the session handle is gone; the participants must not be

  // Both shards hold an in-doubt participant with the global id...
  for (int s = 0; s < db.num_shards(); ++s) {
    EXPECT_EQ(db.shard(s).engine().InDoubtTransactions(),
              std::vector<TxnId>{gid});
  }
  // ...whose write locks are still held: a probing writer is refused.
  {
    ShardedTransaction probe = db.Begin();
    EXPECT_TRUE(probe.Put(x, Value(99)).IsWouldBlock());
    (void)probe.Rollback();
  }
  // The engine refuses to let a plain abort disturb an in-doubt txn.
  EXPECT_TRUE(db.shard(db.ShardOf(x)).engine().Abort(gid).IsFailedPrecondition());

  // Presumed abort: no logged decision, so recovery rolls both back.
  auto rep = db.RecoverInDoubt();
  EXPECT_EQ(rep.aborted, 2u);
  EXPECT_EQ(rep.committed, 0u);
  EXPECT_EQ(db.coordinator().stats().recovered_aborts, 2u);

  // Nothing leaked: in-doubt lists empty, every lock released, values
  // restored, and the item is writable again.
  for (int s = 0; s < db.num_shards(); ++s) {
    EXPECT_TRUE(db.shard(s).engine().InDoubtTransactions().empty());
    auto& eng = dynamic_cast<LockingEngine&>(db.shard(s).engine());
    EXPECT_EQ(eng.lock_stats().acquired, eng.lock_stats().released);
  }
  ShardedTransaction after = db.Begin();
  EXPECT_EQ(after.GetScalar(x)->AsInt(), 10);
  EXPECT_EQ(after.GetScalar(y)->AsInt(), 20);
  ASSERT_TRUE(after.Put(x, Value(12)).ok());
  EXPECT_TRUE(after.Commit().ok());

  // Recovery is idempotent.
  auto again = db.RecoverInDoubt();
  EXPECT_EQ(again.aborted + again.committed, 0u);
}

TEST(InDoubtRecoveryTest, CoordinatorCrashAfterDecisionRecoversForward) {
  ShardedDatabase db(2, IsolationLevel::kSnapshotIsolation);
  auto pair = PickCrossShardPair(db.router());
  ASSERT_TRUE(pair.ok());
  const ItemId x = pair->first, y = pair->second;
  ASSERT_TRUE(db.Load(x, Value(10)).ok());
  ASSERT_TRUE(db.Load(y, Value(20)).ok());

  TxnId gid = 0;
  {
    ShardedTransaction txn = db.Begin();
    gid = txn.id();
    ASSERT_TRUE(txn.Put(x, Value(11)).ok());
    ASSERT_TRUE(txn.Put(y, Value(21)).ok());
    db.coordinator().set_failpoint(CoordinatorFailpoint::kAfterDecision);
    Status s = txn.Commit();
    EXPECT_TRUE(s.IsInternal()) << s.ToString();
    db.coordinator().set_failpoint(CoordinatorFailpoint::kNone);
  }

  // The prepared write set is reserved: a conflicting committer is
  // refused (First-Committer-Wins extended across the in-doubt window).
  {
    ShardedTransaction probe = db.Begin();
    ASSERT_TRUE(probe.Put(x, Value(99)).ok());  // pending, not yet validated
    Status s = probe.Commit();
    EXPECT_TRUE(s.IsSerializationFailure()) << s.ToString();
  }

  // The decision was logged as commit, so recovery rolls both forward.
  ASSERT_TRUE(db.coordinator().DecisionFor(gid).value_or(false));
  auto rep = db.RecoverInDoubt();
  EXPECT_EQ(rep.committed, 2u);
  EXPECT_EQ(rep.aborted, 0u);
  EXPECT_EQ(db.coordinator().stats().recovered_commits, 2u);
  // All participants acknowledged; presumed abort forgets the decision.
  EXPECT_FALSE(db.coordinator().DecisionFor(gid).has_value());

  ShardedTransaction after = db.Begin();
  EXPECT_EQ(after.GetScalar(x)->AsInt(), 11);
  EXPECT_EQ(after.GetScalar(y)->AsInt(), 21);
  EXPECT_TRUE(after.Commit().ok());
  for (int s = 0; s < db.num_shards(); ++s) {
    EXPECT_TRUE(db.shard(s).engine().InDoubtTransactions().empty());
  }
}

TEST(InDoubtRecoveryTest, PrepareRefusalGloballyAbortsAndIsRetryable) {
  // T1 and T2 both transfer across shards touching one common item; the
  // later committer fails *prepare* on that shard, and the coordinator
  // must abort its other, perfectly healthy participant too.
  ShardedDatabase db(2, IsolationLevel::kSnapshotIsolation);
  auto pair = PickCrossShardPair(db.router());
  ASSERT_TRUE(pair.ok());
  const ItemId x = pair->first, y = pair->second;
  ASSERT_TRUE(db.Load(x, Value(0)).ok());
  ASSERT_TRUE(db.Load(y, Value(0)).ok());

  ShardedTransaction t1 = db.Begin();
  ShardedTransaction t2 = db.Begin();
  ASSERT_TRUE(t1.Put(x, Value(1)).ok());
  ASSERT_TRUE(t1.Put(y, Value(1)).ok());
  ASSERT_TRUE(t2.Put(x, Value(2)).ok());
  ASSERT_TRUE(t2.Put(y, Value(2)).ok());

  ASSERT_TRUE(t1.Commit().ok());
  Status s = t2.Commit();
  EXPECT_TRUE(s.IsSerializationFailure()) << s.ToString();
  EXPECT_TRUE(IsRetryableStatus(s));
  EXPECT_EQ(db.coordinator().stats().prepare_failures, 1u);
  EXPECT_EQ(db.coordinator().stats().aborted, 1u);

  // No participant of the aborted global txn survives anywhere.
  for (int sh = 0; sh < db.num_shards(); ++sh) {
    EXPECT_TRUE(db.shard(sh).engine().InDoubtTransactions().empty());
  }
  ShardedTransaction audit = db.Begin();
  EXPECT_EQ(audit.GetScalar(x)->AsInt(), 1);
  EXPECT_EQ(audit.GetScalar(y)->AsInt(), 1);
  EXPECT_TRUE(audit.Commit().ok());
}

TEST(InDoubtRecoveryTest, HeterogeneousShardsSurviveACrashAfterDecision) {
  // Every stock engine implements a real prepared state — including
  // Oracle Read Consistency, whose trivial-participant default would
  // otherwise be rolled back by the dying session while its SI peer
  // recovers forward (atomicity torn down the middle).
  ShardedDbOptions opts;
  opts.num_shards = 2;
  opts.per_shard = {DbOptions(IsolationLevel::kSnapshotIsolation),
                    DbOptions(IsolationLevel::kOracleReadConsistency)};
  ShardedDatabase db(opts);
  auto pair = PickCrossShardPair(db.router());
  ASSERT_TRUE(pair.ok());
  const ItemId x = pair->first, y = pair->second;
  ASSERT_TRUE(db.Load(x, Value(1)).ok());
  ASSERT_TRUE(db.Load(y, Value(1)).ok());

  {
    ShardedTransaction txn = db.Begin();
    ASSERT_TRUE(txn.Put(x, Value(2)).ok());
    ASSERT_TRUE(txn.Put(y, Value(2)).ok());
    db.coordinator().set_failpoint(CoordinatorFailpoint::kAfterDecision);
    EXPECT_TRUE(txn.Commit().IsInternal());
    db.coordinator().set_failpoint(CoordinatorFailpoint::kNone);
  }
  // BOTH participants survived the session's death in doubt.
  for (int s = 0; s < db.num_shards(); ++s) {
    EXPECT_EQ(db.shard(s).engine().InDoubtTransactions().size(), 1u);
  }

  auto rep = db.RecoverInDoubt();
  EXPECT_EQ(rep.committed, 2u);
  ShardedTransaction after = db.Begin();
  EXPECT_EQ(after.GetScalar(x)->AsInt(), 2);
  EXPECT_EQ(after.GetScalar(y)->AsInt(), 2);  // no torn commit
  EXPECT_TRUE(after.Commit().ok());
}

// ---------------------------------------------------------------------------
// The SSI prepare window (commit-pipeline stage 2 at the decision phase)
// ---------------------------------------------------------------------------
//
// An SSI participant validates at Prepare; rw-antidependencies that close
// a dangerous structure (Cahill et al. 2008) around it *while it is in
// doubt* — the Ports & Grittner prepared-transaction hazard — can only be
// seen by the re-validation CommitPrepared runs.  These tests pin the
// whole contract: the completer of a structure whose pivot is merely
// *prepared* is admitted (the prepared side absorbs the abort at its
// decision), the refusal is a terminal abort acknowledgement (nothing
// leaks, retryable status), and both the coordinator's inline phase 2 and
// crash recovery plumb it as a decision abort.

// Builds the dangerous structure around an in-doubt participant P on one
// SSI database: P reads `xr` and writes `xw`; T3 overwrites `xr` and
// commits first (P -rw-> T3); then T1 reads the old `xw` (T1 -rw-> P) and
// commits.  On return P is a completed pivot that must abort at its
// decision.
void CompleteStructureAroundPrepared(Database& db, const ItemId& xr,
                                     const ItemId& xw) {
  Transaction t3 = db.Begin();
  ASSERT_TRUE(t3.Put(xr, Value(int64_t{1})).ok());
  ASSERT_TRUE(t3.Commit().ok()) << "T3 (out-neighbour) must commit first";
  Transaction t1 = db.Begin();
  auto r = t1.GetScalar(xw);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt(), 0) << "P's pending write must stay invisible";
  ASSERT_TRUE(t1.Commit().ok())
      << "the completer is admitted: the merely-prepared pivot absorbs "
         "the abort at its decision phase";
}

TEST(SsiPreparedWindowTest, StructureCompletedInDoubtAbortsAtCommitPrepared) {
  Database db{DbOptions(IsolationLevel::kSerializableSI)};
  ASSERT_TRUE(db.Load("xr", Value(int64_t{0})).ok());
  ASSERT_TRUE(db.Load("xw", Value(int64_t{0})).ok());

  Transaction p = db.Begin();
  ASSERT_TRUE(p.Get("xr").ok());
  ASSERT_TRUE(p.Put("xw", Value(int64_t{1})).ok());
  ASSERT_TRUE(p.Prepare().ok()) << "not a pivot yet: prepare must admit";

  CompleteStructureAroundPrepared(db, "xr", "xw");

  Status decision = p.CommitPrepared();
  EXPECT_TRUE(decision.IsSerializationFailure()) << decision.ToString();
  EXPECT_FALSE(p.active()) << "the refusal is an abort acknowledgement";
  EXPECT_TRUE(db.engine().InDoubtTransactions().empty()) << "nothing leaks";

  auto* si = dynamic_cast<SnapshotIsolationEngine*>(&db.engine());
  ASSERT_NE(si, nullptr);
  EXPECT_EQ(si->commit_pipeline_stats().decision_aborts, 1u);

  // P's write rolled back; the committed projection stays one-copy
  // serializable — the point of refusing the decision.
  Transaction audit = db.Begin();
  EXPECT_EQ(audit.GetScalar("xw")->AsInt(), 0);
  EXPECT_EQ(audit.GetScalar("xr")->AsInt(), 1);
  EXPECT_TRUE(audit.Commit().ok());
  EXPECT_TRUE(IsMVSerializable(db.history()))
      << MVSerializationGraph::Build(db.history()).ToString();
}

TEST(SsiPreparedWindowTest, CoordinatorPlumbsInlineDecisionAbort) {
  // The same hazard through TxnCoordinator::Commit itself: the structure
  // completes inside the in-doubt window (deterministic via the
  // coordinator's failpoint hook), phase 2's CommitPrepared refuses, and
  // the coordinator turns it into a retryable global abort.
  Database db{DbOptions(IsolationLevel::kSerializableSI)};
  ASSERT_TRUE(db.Load("xr", Value(int64_t{0})).ok());
  ASSERT_TRUE(db.Load("xw", Value(int64_t{0})).ok());

  Transaction p = db.Begin();
  ASSERT_TRUE(p.Get("xr").ok());
  ASSERT_TRUE(p.Put("xw", Value(int64_t{1})).ok());

  TxnCoordinator coordinator;
  coordinator.set_in_doubt_hook([&](TxnId gid) {
    (void)gid;
    CompleteStructureAroundPrepared(db, "xr", "xw");
  });
  const TxnId gid = p.id();
  Status s = coordinator.Commit(gid, {&p});
  coordinator.set_in_doubt_hook(nullptr);

  EXPECT_TRUE(s.IsSerializationFailure()) << s.ToString();
  EXPECT_FALSE(p.active());
  EXPECT_EQ(coordinator.stats().decision_aborts, 1u);
  EXPECT_EQ(coordinator.stats().aborted, 1u);
  EXPECT_EQ(coordinator.stats().committed, 0u);
  EXPECT_FALSE(coordinator.DecisionFor(gid).has_value())
      << "the refused decision must not linger in the log";
  EXPECT_TRUE(db.engine().InDoubtTransactions().empty());
  EXPECT_TRUE(IsMVSerializable(db.history()));
}

TEST(SsiPreparedWindowTest, PartiallyAppliedDecisionIsNotRetryable) {
  // Two participants, one of which completes a dangerous structure while
  // in doubt: the clean one commits at the decision, the doomed one
  // refuses.  The decision is now *partially applied*, so the
  // coordinator must answer non-retryable kInternal — a retryable status
  // would let the session layer silently re-apply the committed
  // participant's effects.
  Database clean{DbOptions(IsolationLevel::kSerializableSI)};
  Database doomed{DbOptions(IsolationLevel::kSerializableSI)};
  ASSERT_TRUE(clean.Load("c", Value(int64_t{0})).ok());
  ASSERT_TRUE(doomed.Load("xr", Value(int64_t{0})).ok());
  ASSERT_TRUE(doomed.Load("xw", Value(int64_t{0})).ok());

  Transaction pc = clean.Begin();
  ASSERT_TRUE(pc.Put("c", Value(int64_t{1})).ok());
  Transaction pd = doomed.Begin();
  ASSERT_TRUE(pd.Get("xr").ok());
  ASSERT_TRUE(pd.Put("xw", Value(int64_t{1})).ok());

  TxnCoordinator coordinator;
  coordinator.set_in_doubt_hook([&](TxnId gid) {
    (void)gid;
    CompleteStructureAroundPrepared(doomed, "xr", "xw");
  });
  Status s = coordinator.Commit(/*gid=*/1, {&pc, &pd});
  coordinator.set_in_doubt_hook(nullptr);

  EXPECT_TRUE(s.IsInternal()) << s.ToString();
  EXPECT_EQ(coordinator.stats().decision_aborts, 1u);
  EXPECT_EQ(coordinator.stats().committed, 0u);
  EXPECT_EQ(coordinator.stats().aborted, 1u);
  // The clean participant's effect is durable, the doomed one rolled
  // back — the documented (counted, non-silent) atomicity cost.
  Transaction a1 = clean.Begin();
  EXPECT_EQ(a1.GetScalar("c")->AsInt(), 1);
  EXPECT_TRUE(a1.Commit().ok());
  Transaction a2 = doomed.Begin();
  EXPECT_EQ(a2.GetScalar("xw")->AsInt(), 0);
  EXPECT_TRUE(a2.Commit().ok());
}

TEST(SsiPreparedWindowTest, RecoveryCountsDecisionAbortAcrossShards) {
  // Cross-shard flavor: a two-shard SSI transaction crashes after the
  // commit decision is logged; while in doubt, the dangerous structure
  // completes on one participant's shard.  Recovery rolls the clean
  // participant forward and records the refused one as a decision abort —
  // each shard's own history stays serializable, which is exactly what
  // the refusing engine enforces (the cross-shard atomicity cost is the
  // documented coordinator caveat).
  ShardedDatabase db(2, IsolationLevel::kSerializableSI);
  auto pair = PickCrossShardPair(db.router());
  ASSERT_TRUE(pair.ok());
  const ItemId xr = pair->first;   // structure shard
  const ItemId w = pair->second;   // clean shard
  // A second key on the structure shard for P's write.
  ItemId xw;
  for (int k = 0;; ++k) {
    ItemId candidate = "xw" + std::to_string(k);
    if (db.ShardOf(candidate) == db.ShardOf(xr) && candidate != xr) {
      xw = candidate;
      break;
    }
  }
  ASSERT_TRUE(db.Load(xr, Value(int64_t{0})).ok());
  ASSERT_TRUE(db.Load(xw, Value(int64_t{0})).ok());
  ASSERT_TRUE(db.Load(w, Value(int64_t{0})).ok());

  {
    ShardedTransaction g = db.Begin();
    ASSERT_TRUE(g.Get(xr).ok());
    ASSERT_TRUE(g.Put(xw, Value(int64_t{1})).ok());
    ASSERT_TRUE(g.Put(w, Value(int64_t{1})).ok());
    EXPECT_TRUE(g.cross_shard());
    db.coordinator().set_failpoint(CoordinatorFailpoint::kAfterDecision);
    EXPECT_TRUE(g.Commit().IsInternal());
    db.coordinator().set_failpoint(CoordinatorFailpoint::kNone);
  }

  // While G is in doubt, complete the structure on its xr/xw shard with
  // two single-shard (fast-path) transactions — through the facade, so
  // global ids stay in sync with the shard sessions.
  {
    ShardedTransaction t3 = db.Begin();
    ASSERT_TRUE(t3.Put(xr, Value(int64_t{1})).ok());
    ASSERT_TRUE(t3.Commit().ok()) << "T3 (out-neighbour) commits first";
    ShardedTransaction t1 = db.Begin();
    auto r = t1.GetScalar(xw);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->AsInt(), 0) << "G's pending write must stay invisible";
    ASSERT_TRUE(t1.Commit().ok());
  }

  auto rep = db.RecoverInDoubt();
  EXPECT_EQ(rep.decision_aborts, 1u);  // the completed-pivot participant
  EXPECT_EQ(rep.committed, 1u);        // the clean shard rolled forward
  EXPECT_EQ(rep.aborted, 0u);
  EXPECT_EQ(db.coordinator().stats().decision_aborts, 1u);
  for (int s = 0; s < db.num_shards(); ++s) {
    EXPECT_TRUE(db.shard(s).engine().InDoubtTransactions().empty());
    EXPECT_TRUE(IsMVSerializable(db.shard(s).history())) << "shard " << s;
  }
  // Recovery converged; a second pass finds nothing.
  auto again = db.RecoverInDoubt();
  EXPECT_EQ(again.committed + again.aborted + again.decision_aborts, 0u);

  ShardedTransaction audit = db.Begin();
  EXPECT_EQ(audit.GetScalar(xw)->AsInt(), 0);  // refused participant undone
  EXPECT_EQ(audit.GetScalar(w)->AsInt(), 1);   // clean participant forward
  EXPECT_TRUE(audit.Commit().ok());
}

// ---------------------------------------------------------------------------
// Heterogeneous shards and the concurrent driver
// ---------------------------------------------------------------------------

TEST(ShardedDatabaseTest, HeterogeneousShardsRunMixedIsolationLevels) {
  ShardedDbOptions opts;
  opts.num_shards = 2;
  opts.per_shard = {DbOptions(IsolationLevel::kSnapshotIsolation),
                    DbOptions(IsolationLevel::kSerializable)};
  ShardedDatabase db(opts);
  EXPECT_EQ(db.shard(0).level(), IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(db.shard(1).level(), IsolationLevel::kSerializable);

  // The mixed facade still runs cross-shard transactions end to end.
  auto pair = PickCrossShardPair(db.router());
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(db.Load(pair->first, Value(5)).ok());
  ASSERT_TRUE(db.Load(pair->second, Value(5)).ok());
  ShardedTransaction txn = db.Begin();
  ASSERT_TRUE(txn.Put(pair->first, Value(6)).ok());
  ASSERT_TRUE(txn.Put(pair->second, Value(7)).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(db.coordinator().stats().committed, 1u);
}

TEST(ShardedDatabaseTest, ConcurrentTransfersPreserveTheGlobalInvariant) {
  ShardedDbOptions opts(4, IsolationLevel::kSnapshotIsolation);
  opts.shard_options.mode = ConcurrencyMode::kBlocking;
  opts.seed = 42;
  ShardedDatabase db(opts);

  WorkloadOptions wopts;
  wopts.num_items = 32;
  WorkloadGenerator gen(wopts);
  ASSERT_TRUE(gen.LoadInitial(db).ok());

  ParallelDriverOptions dopts;
  dopts.threads = 4;
  dopts.txns_per_thread = 40;
  ShardedParallelDriver driver(db, dopts);
  ParallelRunStats stats =
      driver.Run([&gen](ShardedTransaction& txn, Rng& rng) {
        return gen.ApplyShardedTransferTxn(txn, rng, /*amount=*/1,
                                           /*cross_shard_prob=*/0.5);
      });

  EXPECT_EQ(stats.attempts, 160u);
  EXPECT_GT(stats.committed, 0u);
  // Transfers preserve the global sum at SI whatever mix of single-shard
  // and 2PC commits the run produced.
  EXPECT_EQ(WorkloadGenerator::TotalBalance(db, wopts.num_items),
            static_cast<int64_t>(wopts.num_items) * wopts.initial_balance);
  // Both commit paths were exercised.
  EXPECT_GT(db.single_shard_commits(), 0u);
  EXPECT_GT(db.coordinator().stats().committed, 0u);
  // Client-side commits never exceed engine-side commits (each cross-shard
  // commit records one engine commit per participant).
  EXPECT_GE(stats.engine_commits, stats.committed);
}

}  // namespace
}  // namespace critique
