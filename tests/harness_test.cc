// The headline reproduction test: the measured anomaly matrix must equal
// the paper's Table 4 cell-for-cell, the derived hierarchy must match
// Figure 2, and Remarks 1/7/8/9/10 must hold mechanically.

#include <gtest/gtest.h>

#include "critique/harness/hierarchy.h"
#include "critique/harness/matrix.h"

namespace critique {
namespace {

// Computing the full matrix runs 6-9 engines x 8 scenarios x up to 2
// variants; share one computation across tests.
const AnomalyMatrix& MeasuredMatrix() {
  static const AnomalyMatrix* kMatrix = [] {
    auto result = ComputeAnomalyMatrix(AllEngineLevels());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return new AnomalyMatrix(*result);
  }();
  return *kMatrix;
}

TEST(Table4Test, MeasuredMatrixMatchesPaper) {
  const AnomalyMatrix& measured = MeasuredMatrix();
  const AnomalyMatrix& paper = PaperTable4();
  for (IsolationLevel level : paper.levels()) {
    for (Phenomenon column : paper.columns()) {
      EXPECT_EQ(CellName(measured.Cell(level, column)),
                CellName(paper.Cell(level, column)))
          << IsolationLevelName(level) << " / " << PhenomenonName(column);
    }
  }
}

TEST(Table4Test, ExtendedLevelsMatchExpectations) {
  const AnomalyMatrix& measured = MeasuredMatrix();
  const AnomalyMatrix& expected = ExtendedExpectations();
  for (IsolationLevel level : expected.levels()) {
    for (Phenomenon column : expected.columns()) {
      EXPECT_EQ(CellName(measured.Cell(level, column)),
                CellName(expected.Cell(level, column)))
          << IsolationLevelName(level) << " / " << PhenomenonName(column);
    }
  }
}

TEST(Table4Test, RenderedTableMentionsEveryLevel) {
  std::string table = MeasuredMatrix().ToTable();
  for (IsolationLevel level : AllEngineLevels()) {
    EXPECT_NE(table.find(IsolationLevelName(level)), std::string::npos);
  }
}

// --- Scenario-level assertions ----------------------------------------------

// For each Table 4 column, the detector that *witnesses* a manifest anomaly
// (positive direction) and the strict detector that must stay silent when
// the engine prevents it (negative direction).  The split mirrors the
// paper: broad phenomena (P1/P2/P3) forbid whole overlap patterns and can
// be present in histories with no observable anomaly, while the strict A
// forms fire only when the anomaly actually happened — which is exactly
// what Table 4's "Possible" cells assert (the paper reasons about SI's row
// with A2/A3, Section 4.2).
struct WitnessPair {
  Phenomenon positive;
  Phenomenon negative;
};

WitnessPair WitnessesFor(Phenomenon column) {
  switch (column) {
    case Phenomenon::kP1:
      return {Phenomenon::kA1, Phenomenon::kA1};
    case Phenomenon::kP2:
      return {Phenomenon::kA2, Phenomenon::kA2};
    case Phenomenon::kP3:
      // The constraint variant has no re-read, so the positive witness is
      // broad P3; strict A3 is the negative witness.
      return {Phenomenon::kP3, Phenomenon::kA3};
    default:
      return {column, column};
  }
}

TEST(ScenarioTest, DetectorsAgreeWithSemanticJudgments) {
  for (const AnomalyScenario& scenario : Table4Scenarios()) {
    for (IsolationLevel level : AllEngineLevels()) {
      for (const ScenarioVariant& variant : scenario.variants) {
        auto out = RunVariant(level, variant);
        ASSERT_TRUE(out.ok()) << scenario.title << " @ "
                              << IsolationLevelName(level) << ": "
                              << out.status().ToString();
        WitnessPair w = WitnessesFor(scenario.phenomenon);
        auto fired = [&](Phenomenon p) {
          return std::find(out->detected.begin(), out->detected.end(), p) !=
                 out->detected.end();
        };
        if (out->anomaly) {
          EXPECT_TRUE(fired(w.positive))
              << scenario.title << " (" << variant.name << ") @ "
              << IsolationLevelName(level)
              << ": semantic anomaly without detector witness in\n"
              << out->analyzed.ToString();
        } else {
          EXPECT_FALSE(fired(w.negative))
              << scenario.title << " (" << variant.name << ") @ "
              << IsolationLevelName(level)
              << ": strict detector fired without semantic anomaly in\n"
              << out->analyzed.ToString();
        }
      }
    }
  }
}

TEST(ScenarioTest, PreventionIsBlockingOrAborting) {
  // A "Not Possible" outcome must be explainable: either some operation
  // waited or some transaction was refused, or the level is multiversion
  // (reads simply see the snapshot).
  for (const AnomalyScenario& scenario : Table4Scenarios()) {
    for (const ScenarioVariant& variant : scenario.variants) {
      auto out = RunVariant(IsolationLevel::kSerializable, variant);
      ASSERT_TRUE(out.ok());
      if (!out->anomaly) {
        EXPECT_TRUE(out->any_block || out->any_abort)
            << scenario.title << " (" << variant.name
            << "): prevented without blocking or aborting?";
      }
    }
  }
}

TEST(ScenarioTest, SerializableShowsNoPhenomenaAtAll) {
  for (const AnomalyScenario& scenario : Table4Scenarios()) {
    for (const ScenarioVariant& variant : scenario.variants) {
      auto out = RunVariant(IsolationLevel::kSerializable, variant);
      ASSERT_TRUE(out.ok());
      EXPECT_TRUE(out->detected.empty())
          << scenario.title << " @ SERIALIZABLE detected "
          << PhenomenonName(out->detected.front());
    }
  }
}

// --- Hierarchy (Figure 2) ----------------------------------------------------

TEST(HierarchyTest, RemarksHold) {
  for (const RemarkCheck& r : CheckRemarks(MeasuredMatrix())) {
    EXPECT_TRUE(r.holds) << "Remark " << r.number << ": " << r.statement;
  }
}

TEST(HierarchyTest, LockingLevelsTotallyOrdered) {
  const AnomalyMatrix& m = MeasuredMatrix();
  const std::vector<IsolationLevel> chain = {
      IsolationLevel::kDegree0,        IsolationLevel::kReadUncommitted,
      IsolationLevel::kReadCommitted,  IsolationLevel::kCursorStability,
      IsolationLevel::kRepeatableRead, IsolationLevel::kSerializable,
  };
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    EXPECT_EQ(CompareLevels(m, chain[i], chain[i + 1]),
              LevelRelation::kWeaker)
        << IsolationLevelName(chain[i]) << " vs "
        << IsolationLevelName(chain[i + 1]);
  }
}

TEST(HierarchyTest, SnapshotIncomparabilities) {
  const AnomalyMatrix& m = MeasuredMatrix();
  // Remark 9 plus the Figure 2 branch structure.
  EXPECT_EQ(CompareLevels(m, IsolationLevel::kRepeatableRead,
                          IsolationLevel::kSnapshotIsolation),
            LevelRelation::kIncomparable);
  EXPECT_EQ(CompareLevels(m, IsolationLevel::kCursorStability,
                          IsolationLevel::kSnapshotIsolation),
            LevelRelation::kIncomparable);
  // But SI is strictly below SERIALIZABLE and above READ COMMITTED.
  EXPECT_EQ(CompareLevels(m, IsolationLevel::kSnapshotIsolation,
                          IsolationLevel::kSerializable),
            LevelRelation::kWeaker);
  EXPECT_EQ(CompareLevels(m, IsolationLevel::kReadCommitted,
                          IsolationLevel::kSnapshotIsolation),
            LevelRelation::kWeaker);
}

TEST(HierarchyTest, SsiEquivalentToSerializable) {
  EXPECT_EQ(CompareLevels(MeasuredMatrix(), IsolationLevel::kSerializableSI,
                          IsolationLevel::kSerializable),
            LevelRelation::kEquivalent);
}

TEST(HierarchyTest, CoverEdgesAnnotated) {
  auto edges = CoverEdges(MeasuredMatrix());
  ASSERT_FALSE(edges.empty());
  for (const auto& e : edges) {
    EXPECT_FALSE(e.differentiating.empty()) << e.ToString();
  }
  // The RC -> CS edge must be annotated with P4C (Figure 2).
  bool found = false;
  for (const auto& e : edges) {
    if (e.weaker == IsolationLevel::kReadCommitted &&
        e.stronger == IsolationLevel::kCursorStability) {
      found = true;
      EXPECT_NE(std::find(e.differentiating.begin(), e.differentiating.end(),
                          Phenomenon::kP4C),
                e.differentiating.end());
    }
  }
  EXPECT_TRUE(found) << RenderHierarchy(MeasuredMatrix());
}

TEST(HierarchyTest, RenderedHierarchyMentionsIncomparability) {
  std::string rendered = RenderHierarchy(MeasuredMatrix());
  EXPECT_NE(rendered.find("Snapshot Isolation"), std::string::npos);
  EXPECT_NE(rendered.find(">< "), std::string::npos);
}

}  // namespace
}  // namespace critique
