// SnapshotIsolationEngine tests: snapshot reads, First-Committer-Wins,
// write skew admission (and its SSI-extension refusal), time travel, GC.

#include <gtest/gtest.h>

#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/mv_analysis.h"
#include "critique/analysis/phenomena.h"
#include "critique/engine/si_engine.h"
#include "critique/exec/runner.h"

namespace critique {
namespace {

Value FinalScalar(Engine& engine, const ItemId& id, TxnId reader) {
  EXPECT_TRUE(engine.Begin(reader).ok());
  auto r = engine.Read(reader, id);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(engine.Commit(reader).ok());
  return r->has_value() ? (*r)->scalar() : Value();
}


// Wraps an SI engine in a session facade; tests reach the raw engine
// through db.engine() for snapshot/GC-specific assertions.
Database MakeDb(SnapshotIsolationOptions opts = {}) {
  DbOptions options;
  options.engine_factory = [opts] {
    return std::make_unique<SnapshotIsolationEngine>(opts);
  };
  return Database(options);
}

TEST(SIEngineTest, SnapshotReadsAreStable) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Read(1, "x").ok());

  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Write(2, "x", Row::Scalar(Value(99))).ok());
  ASSERT_TRUE(e.Commit(2).ok());

  // T1 still sees its snapshot.
  auto again = e.Read(1, "x");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)->scalar().Equals(Value(50)));
  ASSERT_TRUE(e.Commit(1).ok());
  // No A2 in the (mapped) history.
  History mapped = MapSnapshotHistoryToSingleVersion(e.history());
  EXPECT_FALSE(Exhibits(mapped, Phenomenon::kA2));
}

TEST(SIEngineTest, OwnWritesVisible) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(2))).ok());
  auto r = e.Read(1, "x");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->scalar().Equals(Value(2)));
}

TEST(SIEngineTest, ReadsNeverBlock) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(10))).ok());
  // A reader is neither blocked nor dirty.
  ASSERT_TRUE(e.Begin(2).ok());
  auto r = e.Read(2, "x");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->scalar().Equals(Value(50)));
  EXPECT_EQ(e.stats().blocked_ops, 0u);
}

TEST(SIEngineTest, FirstCommitterWins) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(100))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(130))).ok());
  ASSERT_TRUE(e.Write(2, "x", Row::Scalar(Value(120))).ok());
  ASSERT_TRUE(e.Commit(2).ok());  // first committer
  EXPECT_TRUE(e.Commit(1).IsSerializationFailure());
  EXPECT_EQ(e.stats().serialization_aborts, 1u);
  EXPECT_TRUE(FinalScalar(e, "x", 9).Equals(Value(120)));
  // The recorded history passes the FCW validator.
  EXPECT_TRUE(ValidateFirstCommitterWins(e.history()).ok());
}

TEST(SIEngineTest, LostUpdatePrevented) {
  Database db = MakeDb();
  auto& e = static_cast<SnapshotIsolationEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(100))).ok());
  Runner runner(db);
  Program t1;
  t1.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 30);
    }).Commit();
  Program t2;
  t2.Read("x").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") + 20);
    }).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 2 2 2 1 1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(2));
  EXPECT_EQ(result->outcomes.at(1), TxnOutcome::kAbortedSerialization);
  EXPECT_TRUE(FinalScalar(e, "x", 9).Equals(Value(120)));
}

TEST(SIEngineTest, H1SITranscriptMatchesPaper) {
  // Replaying H1's interleaving under SI yields exactly H1.SI (Section 4.2).
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Read(1, "x").ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(10))).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Read(2, "x").ok());
  ASSERT_TRUE(e.Read(2, "y").ok());
  ASSERT_TRUE(e.Commit(2).ok());
  ASSERT_TRUE(e.Read(1, "y").ok());
  ASSERT_TRUE(e.Write(1, "y", Row::Scalar(Value(90))).ok());
  ASSERT_TRUE(e.Commit(1).ok());

  EXPECT_EQ(e.history().ToString(),
            "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 "
            "r1[y0=50] w1[y1=90] c1");
  EXPECT_TRUE(ValidateSnapshotVisibility(e.history()).ok());
  // "H1.SI has the dataflows of a serializable execution."
  EXPECT_TRUE(IsSerializable(MapSnapshotHistoryToSingleVersion(e.history())));
}

TEST(SIEngineTest, WriteSkewAdmitted) {
  // H5: disjoint write sets pass First-Committer-Wins; the x+y > 0
  // constraint breaks — A5B is the price of SI (Remark 9).
  Database db = MakeDb();
  auto& e = static_cast<SnapshotIsolationEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(50))).ok());
  Runner runner(db);
  Program t1;  // withdraw 90 against the joint balance, debiting y
  t1.Read("x").Read("y").WriteComputed("y", [](const TxnLocals& l) {
      return Value(l.GetInt("y") - 90);
    }).Commit();
  Program t2;  // same, debiting x
  t2.Read("x").Read("y").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") - 90);
    }).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 1 2 2 2 1 1 2"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Committed(1));
  EXPECT_TRUE(result->Committed(2));
  int64_t x = 0, y = 0;
  {
    ASSERT_TRUE(e.Begin(9).ok());
    x = static_cast<int64_t>(*(*e.Read(9, "x"))->scalar().AsNumeric());
    y = static_cast<int64_t>(*(*e.Read(9, "y"))->scalar().AsNumeric());
    ASSERT_TRUE(e.Commit(9).ok());
  }
  EXPECT_LT(x + y, 0);  // constraint violated: -40 + -40
  // The mapped history exhibits write skew and an rw-only MVSG cycle.
  EXPECT_TRUE(
      Exhibits(MapSnapshotHistoryToSingleVersion(result->history),
               Phenomenon::kA5B));
  EXPECT_TRUE(MVSerializationGraph::Build(result->history).HasRwOnlyCycle());
}

TEST(SIEngineTest, SsiRefusesWriteSkew) {
  SnapshotIsolationOptions opts;
  opts.ssi = true;
  Database db = MakeDb(opts);
  auto& e = static_cast<SnapshotIsolationEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(50))).ok());
  Runner runner(db);
  Program t1;
  t1.Read("x").Read("y").WriteComputed("y", [](const TxnLocals& l) {
      return Value(l.GetInt("y") - 90);
    }).Commit();
  Program t2;
  t2.Read("x").Read("y").WriteComputed("x", [](const TxnLocals& l) {
      return Value(l.GetInt("x") - 90);
    }).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  auto result = runner.Run(ParseSchedule("1 1 2 2 2 1 1 2"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Exactly one survives; the constraint holds.
  EXPECT_EQ(result->Committed(1) + result->Committed(2), 1);
  int64_t x = static_cast<int64_t>(*FinalScalar(e, "x", 8).AsNumeric());
  int64_t y = static_cast<int64_t>(*FinalScalar(e, "y", 9).AsNumeric());
  EXPECT_GT(x + y, 0);
}

TEST(SIEngineTest, SsiAllowsSerialExecutions) {
  SnapshotIsolationOptions opts;
  opts.ssi = true;
  SnapshotIsolationEngine e(opts);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Read(1, "x").ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e.Commit(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Read(2, "x").ok());
  ASSERT_TRUE(e.Write(2, "x", Row::Scalar(Value(3))).ok());
  EXPECT_TRUE(e.Commit(2).ok());
}

TEST(SIEngineTest, SsiCatchesPredicateWriteSkew) {
  // The paper's 8-hour job-tasks scenario: two concurrent inserts under
  // the same predicate; plain SI admits it, SSI's predicate SIREADs don't.
  SnapshotIsolationOptions opts;
  opts.ssi = true;
  SnapshotIsolationEngine e(opts);
  ASSERT_TRUE(e.Load("t1", Row().Set("task", true).Set("hours", 7)).ok());
  Predicate tasks = Predicate::Cmp("task", CompareOp::kEq, true);

  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.ReadPredicate(1, "Tasks", tasks).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.ReadPredicate(2, "Tasks", tasks).ok());
  ASSERT_TRUE(e.Insert(1, "t7", Row().Set("task", true).Set("hours", 1)).ok());
  ASSERT_TRUE(e.Insert(2, "t8", Row().Set("task", true).Set("hours", 1)).ok());
  Status c1 = e.Commit(1);
  Status c2 = e.Commit(2);
  // At least one must be refused (both form a pivot; the first commit
  // aborts, freeing the second).
  EXPECT_TRUE(c1.IsSerializationFailure() || c2.IsSerializationFailure());
  EXPECT_FALSE(c1.IsSerializationFailure() && c2.ok() &&
               c2.IsSerializationFailure());
}

TEST(SIEngineTest, TimeTravelReadsOldSnapshot) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  Timestamp then = e.Now();
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(2))).ok());
  ASSERT_TRUE(e.Commit(1).ok());

  // A historical transaction pinned before T1's commit.
  ASSERT_TRUE(e.BeginAt(2, then).ok());
  auto r = e.Read(2, "x");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->scalar().Equals(Value(1)));
  // "Update transactions with very old timestamps would abort if they
  // tried to update any data item updated by more recent transactions."
  ASSERT_TRUE(e.Write(2, "x", Row::Scalar(Value(9))).ok());
  EXPECT_TRUE(e.Commit(2).IsSerializationFailure());
}

TEST(SIEngineTest, InsertDeleteVisibility) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  EXPECT_TRUE(e.Insert(1, "x", Row::Scalar(Value(2))).IsFailedPrecondition());
  ASSERT_TRUE(e.Delete(1, "x").ok());
  EXPECT_FALSE(e.Read(1, "x")->has_value());
  // Fresh snapshot after commit no longer sees x.
  ASSERT_TRUE(e.Commit(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  EXPECT_FALSE(e.Read(2, "x")->has_value());
  EXPECT_TRUE(e.Delete(2, "x").IsNotFound());
  EXPECT_TRUE(e.Insert(2, "x", Row::Scalar(Value(3))).ok());
  ASSERT_TRUE(e.Commit(2).ok());
}

TEST(SIEngineTest, EagerWriteConflictOption) {
  SnapshotIsolationOptions opts;
  opts.eager_write_conflicts = true;
  SnapshotIsolationEngine e(opts);
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(1))).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Write(1, "x", Row::Scalar(Value(2))).ok());
  // First-updater-wins: T2's overlapping write aborts immediately.
  EXPECT_TRUE(e.Write(2, "x", Row::Scalar(Value(3)))
                  .IsSerializationFailure());
  EXPECT_TRUE(e.Commit(1).ok());
}

TEST(SIEngineTest, GarbageCollectionRespectsActiveSnapshots) {
  SnapshotIsolationEngine e;
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(0))).ok());
  ASSERT_TRUE(e.Begin(1).ok());  // holds an old snapshot
  for (TxnId t = 2; t <= 4; ++t) {
    ASSERT_TRUE(e.Begin(t).ok());
    ASSERT_TRUE(e.Write(t, "x", Row::Scalar(Value(t))).ok());
    ASSERT_TRUE(e.Commit(t).ok());
  }
  size_t before = e.VersionCount();
  e.GarbageCollect();
  // T1's snapshot pins the initial version: at most the two intermediate
  // committed versions are collectable.
  EXPECT_GE(e.VersionCount(), 2u);
  EXPECT_LE(e.VersionCount(), before);
  auto r = e.Read(1, "x");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->scalar().Equals(Value(0)));  // still readable
  ASSERT_TRUE(e.Commit(1).ok());
  e.GarbageCollect();
  EXPECT_EQ(e.VersionCount(), 1u);  // only the newest survives
}

TEST(SIEngineTest, HistoriesValidateAsSnapshotHistories) {
  Database db = MakeDb();
  auto& e = static_cast<SnapshotIsolationEngine&>(db.engine());
  ASSERT_TRUE(e.Load("x", Row::Scalar(Value(50))).ok());
  ASSERT_TRUE(e.Load("y", Row::Scalar(Value(50))).ok());
  Runner runner(db);
  Program t1;
  t1.Read("x").Write("y", Value(1)).Commit();
  Program t2;
  t2.Read("y").Write("x", Value(2)).Commit();
  runner.AddProgram(1, std::move(t1));
  runner.AddProgram(2, std::move(t2));
  Rng rng(42);
  auto result = runner.Run(runner.RandomSchedule(rng));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidateSnapshotVisibility(result->history).ok())
      << result->history.ToString();
  EXPECT_TRUE(ValidateFirstCommitterWins(result->history).ok());
}

}  // namespace
}  // namespace critique
