// RetryPolicy edge cases: zero retry budgets, backoff monotonicity and
// saturation, and the guarantee that non-retryable statuses are never
// retried — neither by the policy predicate nor by `Database::Execute`.

#include <chrono>

#include <gtest/gtest.h>

#include "critique/db/database.h"
#include "critique/db/retry_policy.h"
#include "critique/shard/sharded_database.h"

namespace critique {
namespace {

TEST(RetryPolicyTest, ZeroMaxAttemptsNeverRetries) {
  LimitedRetryPolicy policy(/*max_txn_retries=*/0,
                            /*max_blocked_op_retries=*/0);
  EXPECT_FALSE(policy.RetryTransaction(Status::SerializationFailure("x"), 1));
  EXPECT_FALSE(policy.RetryTransaction(Status::Deadlock("x"), 1));
  EXPECT_FALSE(policy.RetryTransaction(Status::WouldBlock("x"), 1));
  EXPECT_FALSE(policy.RetryBlockedOp(1));
}

TEST(RetryPolicyTest, NonRetryableStatusesAreNeverRetried) {
  // Whatever the budget, a semantic answer is final.
  LimitedRetryPolicy generous(/*max_txn_retries=*/1000,
                              /*max_blocked_op_retries=*/1000);
  const Status semantic[] = {
      Status::OK(),           Status::NotFound("x"),
      Status::InvalidArgument("x"), Status::FailedPrecondition("x"),
      Status::TransactionAborted("x"), Status::Internal("x"),
  };
  for (const Status& s : semantic) {
    EXPECT_FALSE(IsRetryableStatus(s)) << s.ToString();
    EXPECT_FALSE(generous.RetryTransaction(s, 1)) << s.ToString();
  }
}

TEST(RetryPolicyTest, ExecuteDoesNotRerunANonRetryableBody) {
  Database db(IsolationLevel::kSerializable);
  int calls = 0;
  Status s = db.Execute([&](Transaction&) {
    ++calls;
    return Status::InvalidArgument("semantic failure");
  });
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(db.execute_retries(), 0u);
}

TEST(RetryPolicyTest, ExecuteHonorsZeroBudget) {
  DbOptions opts(IsolationLevel::kSerializable);
  opts.retry_policy = std::make_shared<LimitedRetryPolicy>(0, 0);
  Database db(opts);
  int calls = 0;
  Status s = db.Execute([&](Transaction& txn) {
    ++calls;
    (void)txn.Rollback();
    return Status::SerializationFailure("always");
  });
  EXPECT_TRUE(s.IsSerializationFailure());
  EXPECT_EQ(calls, 1);  // retryable, but the budget says no
  EXPECT_EQ(db.execute_retries(), 0u);
}

TEST(RetryPolicyTest, BackoffDelayIsMonotoneAndSaturates) {
  ExponentialBackoffRetryPolicy policy(
      /*max_txn_retries=*/16, std::chrono::microseconds(100),
      std::chrono::microseconds(5000));
  auto prev = std::chrono::microseconds::zero();
  for (int attempt = 1; attempt <= 80; ++attempt) {
    const auto d = policy.RetryDelay(attempt);
    EXPECT_GE(d, prev) << "attempt " << attempt;
    EXPECT_LE(d, policy.cap()) << "attempt " << attempt;
    prev = d;
  }
  EXPECT_EQ(policy.RetryDelay(1), std::chrono::microseconds(100));
  EXPECT_EQ(policy.RetryDelay(2), std::chrono::microseconds(200));
  // Far past the doubling horizon the delay pins to the cap — no overflow.
  EXPECT_EQ(policy.RetryDelay(64), policy.cap());
  EXPECT_EQ(policy.RetryDelay(1000), policy.cap());
}

TEST(RetryPolicyTest, BackoffDegenerateBasesStayOrdered) {
  // Zero base: never sleep, whatever the attempt.
  ExponentialBackoffRetryPolicy zero(8, std::chrono::microseconds(0),
                                     std::chrono::microseconds(1000));
  EXPECT_EQ(zero.RetryDelay(5), std::chrono::microseconds::zero());
  // Cap below base is lifted to the base (the ctor refuses an inverted
  // range rather than producing a non-monotone sequence).
  ExponentialBackoffRetryPolicy inverted(8, std::chrono::microseconds(500),
                                         std::chrono::microseconds(10));
  EXPECT_EQ(inverted.cap(), std::chrono::microseconds(500));
  EXPECT_EQ(inverted.RetryDelay(1), std::chrono::microseconds(500));
  EXPECT_EQ(inverted.RetryDelay(9), std::chrono::microseconds(500));
}

TEST(RetryPolicyTest, BackoffPolicyDrivesExecuteToSuccess) {
  DbOptions opts(IsolationLevel::kSnapshotIsolation);
  opts.retry_policy = std::make_shared<ExponentialBackoffRetryPolicy>(
      /*max_txn_retries=*/4, std::chrono::microseconds(1),
      std::chrono::microseconds(8));
  Database db(opts);
  ASSERT_TRUE(db.Load("a", Value(0)).ok());
  int calls = 0;
  Status s = db.Execute([&](Transaction& txn) {
    ++calls;
    CRITIQUE_RETURN_NOT_OK(txn.Put("a", Value(calls)));
    if (calls < 3) {
      (void)txn.Rollback();
      return Status::SerializationFailure("warming up");
    }
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(db.execute_retries(), 2u);
}

TEST(RetryPolicyTest, ShardedExecuteSharesTheRetryProtocol) {
  // The sharded facade surfaces retryable outcomes through the same
  // policy type; exhausting the budget returns the last failure.
  ShardedDbOptions opts(2, IsolationLevel::kSnapshotIsolation);
  opts.retry_policy = std::make_shared<LimitedRetryPolicy>(2, 0);
  ShardedDatabase db(opts);
  int calls = 0;
  Status s = db.Execute([&](ShardedTransaction& txn) {
    ++calls;
    (void)txn.Rollback();
    return Status::SerializationFailure("always");
  });
  EXPECT_TRUE(s.IsSerializationFailure());
  EXPECT_EQ(calls, 3);  // 1 try + 2 retries
  EXPECT_EQ(db.execute_retries(), 2u);
}

}  // namespace
}  // namespace critique
