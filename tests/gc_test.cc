// Version garbage collection: watermark semantics, RetainAll time-travel
// exactness, the kWatermark floor refusal, Database/ShardedDatabase
// low-watermark tracking, bounded chains under churn, and GC under
// concurrent writers (run under --tsan for the data-race certificate).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "critique/db/database.h"
#include "critique/engine/si_engine.h"
#include "critique/shard/sharded_database.h"
#include "critique/storage/mv_store.h"

namespace critique {
namespace {

DbOptions WatermarkOptions(uint32_t interval) {
  DbOptions opts(IsolationLevel::kSnapshotIsolation);
  opts.version_gc = VersionGcMode::kWatermark;
  opts.version_gc_interval = interval;
  return opts;
}

// --- store-level watermark semantics ----------------------------------------

TEST(MVStoreGcTest, PrunesOnlyBelowWatermark) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(int64_t{0})), 1);
  for (TxnId t = 2; t <= 6; ++t) {
    store.Write("x", Row::Scalar(Value(int64_t(t))), t);
    store.CommitTxn(t, t * 10, std::set<ItemId>{"x"});
  }
  // Chain commit timestamps: 1, 20, 30, 40, 50, 60.  Watermark 45 keeps
  // the newest at/below it (40) and everything newer.
  EXPECT_EQ(store.GarbageCollect(45), 3u);
  EXPECT_TRUE(store.Read("x", 45, 99)->scalar().Equals(Value(int64_t{4})));
  EXPECT_TRUE(store.Read("x", 65, 99)->scalar().Equals(Value(int64_t{6})));
  EXPECT_EQ(store.MaxChainLength(), 3u);
}

TEST(MVStoreGcTest, DropsTombstoneOnlyChains) {
  MultiVersionStore store;
  store.Bootstrap("x", Row::Scalar(Value(int64_t{1})), 1);
  store.Delete("x", 2);
  store.CommitTxn(2, 10, std::set<ItemId>{"x"});
  ASSERT_EQ(store.ItemCount(), 1u);
  // Watermark above the tombstone: the whole chain folds away — an
  // absent item and a tombstone read identically at surviving snapshots.
  EXPECT_EQ(store.GarbageCollect(20), 2u);
  EXPECT_EQ(store.ItemCount(), 0u);
  EXPECT_FALSE(store.Read("x", 30, 99).has_value());
}

TEST(MVStoreGcTest, HintedCommitMatchesFullScan) {
  MultiVersionStore a, b;
  a.Bootstrap("x", Row::Scalar(Value(int64_t{0})), 1);
  b.Bootstrap("x", Row::Scalar(Value(int64_t{0})), 1);
  a.Write("x", Row::Scalar(Value(int64_t{7})), 2);
  b.Write("x", Row::Scalar(Value(int64_t{7})), 2);
  a.CommitTxn(2, 5);
  b.CommitTxn(2, 5, std::set<ItemId>{"x"});
  EXPECT_TRUE(a.Read("x", 9, 99)->scalar().Equals(
      b.Read("x", 9, 99)->scalar()));
  EXPECT_EQ(a.VersionCount(), b.VersionCount());
}

// --- engine-level watermark + floor -----------------------------------------

TEST(SiGcTest, OpenSnapshotPinsWatermark) {
  SnapshotIsolationEngine e;
  (void)e.Load("x", Row::Scalar(Value(int64_t{0})));
  ASSERT_TRUE(e.Begin(1).ok());  // old snapshot stays open
  for (TxnId t = 2; t <= 5; ++t) {
    ASSERT_TRUE(e.Begin(t).ok());
    ASSERT_TRUE(e.Write(t, "x", Row::Scalar(Value(int64_t(t)))).ok());
    ASSERT_TRUE(e.Commit(t).ok());
  }
  const size_t before = e.VersionCount();
  (void)e.GarbageCollectVersions();
  // T1's snapshot predates every later commit: its visible version and
  // everything newer must survive (nothing below T1's snapshot exists but
  // the bootstrap version, which is exactly what it reads).
  auto seen = e.Read(1, "x");
  ASSERT_TRUE(seen.ok());
  EXPECT_TRUE((*seen)->scalar().Equals(Value(int64_t{0})));
  EXPECT_LE(e.VersionCount(), before);
  ASSERT_TRUE(e.Commit(1).ok());
  (void)e.GarbageCollectVersions();
  EXPECT_EQ(e.VersionCount(), 1u);  // only the newest survives now
}

TEST(SiGcTest, BeginAtBelowFloorRefusedAfterGc) {
  SnapshotIsolationEngine e;
  (void)e.Load("x", Row::Scalar(Value(int64_t{0})));
  Timestamp old_ts = e.Now();
  for (TxnId t = 1; t <= 4; ++t) {
    ASSERT_TRUE(e.Begin(t).ok());
    ASSERT_TRUE(e.Write(t, "x", Row::Scalar(Value(int64_t(t)))).ok());
    ASSERT_TRUE(e.Commit(t).ok());
  }
  (void)e.GarbageCollectVersions();
  ASSERT_GT(e.gc_floor(), old_ts);
  // Below the floor: refused, never answered from a pruned chain.
  Status s = e.BeginAt(100, old_ts);
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
  // At or above the floor: fine.
  EXPECT_TRUE(e.BeginAt(101, e.gc_floor()).ok());
}

TEST(SiGcTest, RetainAllKeepsTimeTravelExact) {
  // Default options: RetainAll — many updates, then historical reads see
  // every intermediate state exactly.
  Database db(IsolationLevel::kSnapshotIsolation);
  (void)db.Load("x", Value(int64_t{0}));
  std::vector<Timestamp> after;
  for (int64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(db.Execute([&](Transaction& txn) {
      return txn.Put("x", Value(i));
    }).ok());
    after.push_back(*db.CurrentTimestamp());
  }
  EXPECT_GE(db.VersionCount(), 21u);  // nothing pruned
  for (size_t i = 0; i < after.size(); i += 5) {
    auto t = db.BeginAtTimestamp(after[i]);
    ASSERT_TRUE(t.ok());
    auto v = t->GetScalar("x");
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->Equals(Value(static_cast<int64_t>(i + 1))));
    (void)t->Commit();
  }
}

TEST(SiGcTest, WatermarkModeBoundsChainsAutomatically) {
  Database db(WatermarkOptions(/*interval=*/8));
  (void)db.Load("x", Value(int64_t{0}));
  (void)db.Load("y", Value(int64_t{0}));
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Execute([&](Transaction& txn) {
      return txn.Put(i % 2 == 0 ? "x" : "y", Value(i));
    }).ok());
  }
  // 200 committed writes, but the periodic GC keeps each chain at most
  // one epoch long.
  EXPECT_LE(db.engine().MaxVersionChainLength(), 9u);
  EXPECT_LE(db.VersionCount(), 18u);
  EXPECT_GT(db.engine().version_gc_stats().runs, 0u);
  EXPECT_GT(db.engine().version_gc_stats().collected, 100u);
  // The data is still right.
  auto t = db.Begin();
  auto x = t.GetScalar("x");
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(x->Equals(Value(int64_t{198})));
}

TEST(SiGcTest, WatermarkModeRetiresSsiBookkeeping) {
  DbOptions opts = WatermarkOptions(/*interval=*/4);
  opts.isolation = IsolationLevel::kSerializableSI;
  Database db(opts);
  (void)db.Load("x", Value(int64_t{0}));
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(db.Execute([&](Transaction& txn) {
      auto v = txn.GetScalar("x");
      if (!v.ok()) return v.status();
      return txn.Put("x", Value(i));
    }).ok());
  }
  // Chains bounded even with SIREAD tracking on; and the engine still
  // detects fresh write skew afterwards (bookkeeping retirement must not
  // lobotomize SSI).
  EXPECT_LE(db.engine().MaxVersionChainLength(), 5u);
  (void)db.Load("a", Value(int64_t{50}));
  (void)db.Load("b", Value(int64_t{50}));
  Transaction t1 = db.Begin();
  Transaction t2 = db.Begin();
  ASSERT_TRUE(t1.GetScalar("a").ok());
  ASSERT_TRUE(t1.GetScalar("b").ok());
  ASSERT_TRUE(t2.GetScalar("a").ok());
  ASSERT_TRUE(t2.GetScalar("b").ok());
  ASSERT_TRUE(t1.Put("a", Value(int64_t{-10})).ok());
  ASSERT_TRUE(t2.Put("b", Value(int64_t{-10})).ok());
  Status s1 = t1.Commit();
  Status s2 = t2.Commit();
  EXPECT_TRUE(s1.ok() != s2.ok())
      << "SSI must abort exactly one of the write-skew pair: " << s1.ToString()
      << " / " << s2.ToString();
}

TEST(SiGcTest, LowIdBeginStillWorksAfterStateRetirement) {
  // A sharded global transaction can first touch a shard long after
  // higher-id single-shard transactions committed there and GC retired
  // their states.  Its (lower) id must still be accepted — retirement
  // must never refuse an id the engine has simply never seen.
  Database db(WatermarkOptions(/*interval=*/2));
  (void)db.Load("x", Value(int64_t{0}));
  // Reserve a low id for the "late-arriving cross-shard participant".
  const TxnId late_id = 500;
  for (TxnId t = late_id + 1; t <= late_id + 10; ++t) {
    auto txn = db.BeginWithId(t);
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->Put("x", Value(int64_t(t))).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_GT(db.engine().version_gc_stats().runs, 0u);  // retirement ran
  auto late = db.BeginWithId(late_id);
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_TRUE(late->Put("x", Value(int64_t{-1})).ok());
  EXPECT_TRUE(late->Commit().ok());
}

TEST(RcGcTest, WatermarkModeBoundsReadConsistencyChains) {
  DbOptions opts(IsolationLevel::kOracleReadConsistency);
  opts.version_gc = VersionGcMode::kWatermark;
  opts.version_gc_interval = 8;
  Database db(opts);
  (void)db.Load("x", Value(int64_t{0}));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Execute([&](Transaction& txn) {
      return txn.Put("x", Value(i));
    }).ok());
  }
  EXPECT_LE(db.engine().MaxVersionChainLength(), 9u);
  EXPECT_GT(db.engine().version_gc_stats().collected, 0u);
  auto t = db.Begin();
  auto v = t.GetScalar("x");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->Equals(Value(int64_t{99})));
}

// --- facade-level low-watermark tracking ------------------------------------

TEST(DatabaseGcTest, OldestOpenSnapshotTracksSessions) {
  Database db(IsolationLevel::kSnapshotIsolation);
  (void)db.Load("x", Value(int64_t{0}));
  ASSERT_TRUE(db.OldestOpenSnapshot().has_value());

  Transaction t1 = db.Begin();
  Timestamp pinned = *db.OldestOpenSnapshot();
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Execute([&](Transaction& txn) {
      return txn.Put("x", Value(i));
    }).ok());
  }
  // t1 still open: the low-watermark must not have advanced past its
  // begin bound.
  EXPECT_EQ(*db.OldestOpenSnapshot(), pinned);
  ASSERT_TRUE(t1.Commit().ok());
  EXPECT_GT(*db.OldestOpenSnapshot(), pinned);
}

TEST(DatabaseGcTest, LockingEngineHasNoSnapshotsOrVersions) {
  Database db(IsolationLevel::kSerializable);
  (void)db.Load("x", Value(int64_t{0}));
  EXPECT_FALSE(db.OldestOpenSnapshot().has_value());
  EXPECT_EQ(db.VersionCount(), 0u);
  EXPECT_EQ(db.GarbageCollectVersions(), 0u);
}

TEST(ShardedGcTest, PerShardGcBoundsAggregateVersions) {
  ShardedDbOptions opts(/*shards=*/3, IsolationLevel::kSnapshotIsolation);
  opts.shard_options.version_gc = VersionGcMode::kWatermark;
  opts.shard_options.version_gc_interval = 8;
  ShardedDatabase db(opts);
  for (int64_t k = 0; k < 12; ++k) {
    (void)db.Load("acct" + std::to_string(k), Value(int64_t{100}));
  }
  for (int64_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(db.Execute([&](ShardedTransaction& txn) {
      return txn.Update("acct" + std::to_string(i % 12),
                        [](const std::optional<Row>& row) {
                          int64_t v = row.has_value()
                                          ? static_cast<int64_t>(
                                                *row->scalar().AsNumeric())
                                          : 0;
                          return Row::Scalar(Value(v + 1));
                        });
    }).ok());
  }
  EXPECT_TRUE(db.OldestOpenSnapshot().has_value());
  const size_t resident = db.VersionCountAggregate();
  // 150 committed updates across 12 items; per-shard epoch GC must keep
  // the aggregate near the item count, not the txn count.
  EXPECT_LE(resident, 12u + 3u * 8u);
  (void)db.GarbageCollectVersions();
  EXPECT_LE(db.VersionCountAggregate(), resident);
}

// --- concurrency: GC under live writers (TSan certifies) --------------------

TEST(GcConcurrencyTest, GcUnderConcurrentWritersIsSafe) {
  DbOptions opts = WatermarkOptions(/*interval=*/4);
  opts.mode = ConcurrencyMode::kBlocking;
  Database db(opts);
  const int64_t kItems = 8;
  for (int64_t k = 0; k < kItems; ++k) {
    (void)db.Load("k" + std::to_string(k), Value(int64_t{0}));
  }
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 50;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&db, &committed, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        Status s = db.Execute([&](Transaction& txn) {
          return txn.Put("k" + std::to_string((t * 3 + i) % kItems),
                         Value(int64_t{i}));
        });
        if (s.ok()) committed.fetch_add(1);
      }
    });
  }
  // A maintenance thread running explicit GC passes against the writers.
  std::thread gc([&db] {
    for (int i = 0; i < 50; ++i) {
      (void)db.GarbageCollectVersions();
      (void)db.OldestOpenSnapshot();
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) w.join();
  gc.join();

  // Client-side successes and engine-side commits must agree exactly
  // (a retry budget may legitimately exhaust under contention, so the
  // absolute count is ">= most", not "== all").
  const EngineStats stats = db.stats();
  EXPECT_EQ(stats.commits, committed.load());
  EXPECT_GE(committed.load(),
            static_cast<uint64_t>(kThreads * kTxnsPerThread * 3 / 4));
  EXPECT_LE(db.engine().MaxVersionChainLength(), 16u);
  // Every item still readable and scalar-valued.
  auto t = db.Begin();
  for (int64_t k = 0; k < kItems; ++k) {
    auto v = t.Get("k" + std::to_string(k));
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->has_value());
  }
}

}  // namespace
}  // namespace critique
