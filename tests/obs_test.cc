// The observability layer, held to its own standard: exact numbers.
//
//  * Counter / Histogram: sharded relaxed-atomic recording from N threads
//    must reconcile *exactly* after join — sum, count, max, and bucket
//    totals, not approximately.  (Run under `check.sh --tsan` like the
//    rest of the suite: the sharding discipline must also be race-free.)
//  * MetricsRegistry: export round-trip (JSON + text), prefix unregister.
//  * TxnTracer: the ring keeps the newest `capacity` events, counts what
//    it dropped, and tags aborts with the paper-taxonomy reason — the SSI
//    dangerous-structure test drives a real Cahill pivot through the SSI
//    engine and reads the reason back off the completer's trace.
//  * EngineStats: the serialization-abort split (fcw / ssi / in-doubt)
//    must sum back to the aggregate it breaks down.
//  * Database::DebugDump: a session wedged on a lock conflict must name
//    its blocker and the waits-for edge, deterministically.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "critique/db/database.h"
#include "critique/obs/metrics.h"
#include "critique/obs/txn_trace.h"

namespace critique {
namespace {

using obs::AbortReason;
using obs::TraceEventType;

// ---------------------------------------------------------------------------
// Counter / Histogram exact reconciliation
// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, CounterReconcilesExactlyAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  obs::Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add(1);
      c.Add(5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * (kPerThread + 5));
}

TEST(ObsMetricsTest, HistogramReconcilesExactlyAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  obs::Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t v = 0; v < kPerThread; ++v) h.Record(v);
    });
  }
  for (auto& t : threads) t.join();

  const obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.sum, kThreads * (kPerThread * (kPerThread - 1) / 2));
  EXPECT_EQ(s.max, kPerThread - 1);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  // Percentiles are conservative: never below the true rank value, at
  // most one power of two above it, and clamped to the recorded max.
  EXPECT_LE(s.Percentile(50), s.Percentile(99));
  EXPECT_LE(s.Percentile(100), s.max);
  EXPECT_GE(s.Percentile(50), kPerThread / 2 - 1);
}

TEST(ObsMetricsTest, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(3), 7u);
  // Clamp: values beyond the last bucket's range land in the last bucket.
  EXPECT_EQ(obs::Histogram::BucketOf(~uint64_t{0}),
            obs::Histogram::kBuckets - 1);
}

TEST(ObsMetricsTest, DisabledMetricsRecordNothing) {
  obs::Counter c;
  obs::Histogram h;
  obs::SetMetricsEnabled(false);
  c.Add(7);
  h.Record(7);
  { obs::ScopedTimer t(h); }
  obs::SetMetricsEnabled(true);  // restore the shipping state first
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Snapshot().count, 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);  // re-enabling re-arms the same instrument
}

// ---------------------------------------------------------------------------
// MetricsRegistry export
// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, RegistryExportsAndUnregistersByPrefix) {
  obs::MetricsRegistry reg;
  obs::Counter c;
  obs::Histogram h;
  c.Add(3);
  h.Record(9);
  reg.RegisterCounter("a.count", &c);
  reg.RegisterHistogram("a.lat_us", &h);
  reg.RegisterGauge("b.gauge", [] { return uint64_t{42}; });

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.gauge\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.lat_us\""), std::string::npos) << json;
  const std::string text = reg.ToText();
  EXPECT_NE(text.find("a.count: 3"), std::string::npos) << text;

  // Collect() is sorted by name, so exports are diffable run to run.
  const auto samples = reg.Collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.count");
  EXPECT_EQ(samples[1].name, "a.lat_us");
  EXPECT_EQ(samples[2].name, "b.gauge");

  reg.Unregister("a.");
  const auto rest = reg.Collect();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].name, "b.gauge");
}

// ---------------------------------------------------------------------------
// TxnTracer ring semantics
// ---------------------------------------------------------------------------

TEST(ObsTraceTest, RingKeepsNewestEventsAndCountsDropped) {
  obs::TxnTracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    tracer.Record(1, TraceEventType::kOp, AbortReason::kNone,
                  "op" + std::to_string(i));
  }
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.Dump(1);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().detail, "op2");  // the two oldest fell out
  EXPECT_EQ(events.back().detail, "op5");
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_EQ(tracer.Dump(2).size(), 0u);  // other transactions unaffected
  EXPECT_NE(tracer.Format(2).find("no events"), std::string::npos);
}

TEST(ObsTraceTest, AbortReasonsRenderInThePaperTaxonomy) {
  EXPECT_EQ(obs::AbortReasonName(AbortReason::kFirstCommitterWins),
            "first-committer-wins");
  EXPECT_EQ(obs::AbortReasonName(AbortReason::kSsiDangerousStructure),
            "ssi-dangerous-structure");
  EXPECT_EQ(obs::AbortReasonName(AbortReason::kDeadlockVictim),
            "deadlock-victim");
  EXPECT_EQ(obs::AbortReasonName(AbortReason::kInDoubtDecision),
            "in-doubt-decision");
}

// ---------------------------------------------------------------------------
// Database wiring: registry, tracer tagging, the abort split
// ---------------------------------------------------------------------------

TEST(ObsDatabaseTest, EngineMetricsRegisteredUnderEnginePrefix) {
  Database db{DbOptions(IsolationLevel::kSnapshotIsolation)};
  ASSERT_TRUE(db.Load("x", Row::Scalar(Value(int64_t{1}))).ok());
  Transaction t = db.Begin();
  ASSERT_TRUE(t.Put("x", Value(int64_t{2})).ok());
  ASSERT_TRUE(t.Commit().ok());
  const std::string json = db.metrics().ToJson();
  EXPECT_NE(json.find("\"engine.commits\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("engine.pipeline.validate_us"), std::string::npos)
      << json;
  EXPECT_EQ(db.tracer(), nullptr);  // tracing is opt-in, off by default
}

TEST(ObsDatabaseTest, FirstCommitterWinsAbortIsTaggedAndSplit) {
  DbOptions opts(IsolationLevel::kSnapshotIsolation);
  opts.trace_events = 256;
  Database db(opts);
  ASSERT_TRUE(db.Load("x", Row::Scalar(Value(int64_t{0}))).ok());

  auto t1 = db.BeginWithId(1);
  auto t2 = db.BeginWithId(2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE(t1->Put("x", Value(int64_t{1})).ok());
  ASSERT_TRUE(t1->Commit().ok());
  // T2's snapshot predates T1's commit, so the overlapping write is
  // accepted optimistically and First-Committer-Wins refuses T2 at its
  // own commit, where the timestamp probe sees T1 inside T2's interval.
  ASSERT_TRUE(t2->Put("x", Value(int64_t{2})).ok());
  Status s = t2->Commit();
  ASSERT_TRUE(s.IsSerializationFailure()) << s.ToString();

  const EngineStats stats = db.stats();
  EXPECT_EQ(stats.serialization_aborts, 1u);
  EXPECT_EQ(stats.fcw_aborts, 1u);
  EXPECT_EQ(stats.ssi_aborts, 0u);
  EXPECT_EQ(stats.in_doubt_aborts, 0u);

  ASSERT_NE(db.tracer(), nullptr);
  const auto events = db.tracer()->Dump(2);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, TraceEventType::kAbort);
  EXPECT_EQ(events.back().reason, AbortReason::kFirstCommitterWins);
}

TEST(ObsDatabaseTest, SsiDangerousStructureAbortIsTaggedAndSplit) {
  // The Cahill dangerous structure T1 -rw-> T2 -rw-> T3 with T3 committed
  // first and T2 the pivot (the ssi_escape_test shape, driven through the
  // facade): the in-edge forms after the pivot committed, so the
  // completer T1 must abort at its own commit — and the trace must say
  // *why* in the paper's vocabulary.
  DbOptions opts(IsolationLevel::kSerializableSI);
  opts.trace_events = 256;
  Database db(opts);
  ASSERT_TRUE(db.Load("x", Row::Scalar(Value(int64_t{0}))).ok());
  ASSERT_TRUE(db.Load("y", Row::Scalar(Value(int64_t{0}))).ok());

  auto t3 = db.BeginWithId(3);
  auto t2 = db.BeginWithId(2);
  ASSERT_TRUE(t3.ok() && t2.ok());
  ASSERT_TRUE(t2->Get("x").ok());                       // T2 -rw-> T3 source
  ASSERT_TRUE(t3->Put("x", Value(int64_t{1})).ok());
  ASSERT_TRUE(t3->Commit().ok());                       // T3 commits first
  ASSERT_TRUE(t2->Put("y", Value(int64_t{1})).ok());
  auto t1 = db.BeginWithId(1);                          // snapshot < T2 commit
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2->Commit().ok());                       // the pivot commits

  auto y = t1->Get("y");                                // forms T1 -rw-> T2
  ASSERT_TRUE(y.ok());
  ASSERT_TRUE(t1->Get("x").ok());                       // closes the cycle
  Status c1 = t1->Commit();
  ASSERT_TRUE(c1.IsSerializationFailure()) << c1.ToString();

  const EngineStats stats = db.stats();
  EXPECT_EQ(stats.serialization_aborts, 1u);
  EXPECT_EQ(stats.ssi_aborts, 1u);
  EXPECT_EQ(stats.fcw_aborts, 0u);
  EXPECT_EQ(stats.in_doubt_aborts, 0u);
  // The split is a breakdown, never a second ledger.
  EXPECT_EQ(stats.fcw_aborts + stats.ssi_aborts + stats.in_doubt_aborts,
            stats.serialization_aborts);

  ASSERT_NE(db.tracer(), nullptr);
  const auto events = db.tracer()->Dump(1);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, TraceEventType::kAbort);
  EXPECT_EQ(events.back().reason, AbortReason::kSsiDangerousStructure);
  EXPECT_NE(db.tracer()->Format(1).find("ssi-dangerous-structure"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Stall introspection
// ---------------------------------------------------------------------------

TEST(ObsDatabaseTest, DebugDumpNamesBlockerAndWaitsForEdge) {
  // Deterministic wedge: T1 holds the X lock on "k"; T2's write answers
  // kWouldBlock (cooperative mode, manual sessions — nothing retries or
  // parks a thread).  The dump must name the holder, the waiter, and the
  // T2 -> T1 edge while both sessions are still open.
  DbOptions opts(IsolationLevel::kSerializable);
  opts.mode = ConcurrencyMode::kCooperative;
  Database db(opts);
  ASSERT_TRUE(db.Load("k", Row::Scalar(Value(int64_t{0}))).ok());

  auto t1 = db.BeginWithId(1);
  auto t2 = db.BeginWithId(2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE(t1->Put("k", Value(int64_t{1})).ok());
  Status s = t2->Put("k", Value(int64_t{2}));
  ASSERT_TRUE(s.IsWouldBlock()) << s.ToString();

  const std::string dump = db.DebugDump();
  EXPECT_NE(dump.find("open transactions: 2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("T1 holds X on item 'k'"), std::string::npos) << dump;
  EXPECT_NE(dump.find("T2 -> T1"), std::string::npos) << dump;

  ASSERT_TRUE(t2->Rollback().ok());
  ASSERT_TRUE(t1->Commit().ok());
  // Quiescent again: the wedge must leave nothing behind in the dump.
  const std::string after = db.DebugDump();
  EXPECT_NE(after.find("open transactions: 0"), std::string::npos) << after;
  EXPECT_NE(after.find("waits-for edges (0)"), std::string::npos) << after;
}

}  // namespace
}  // namespace critique
