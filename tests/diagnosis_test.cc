// Black-box isolation diagnosis: probing each engine must identify its own
// published row (Hermitage applied to ourselves), and a deliberately
// broken engine must be flagged as matching nothing.

#include <gtest/gtest.h>

#include "critique/engine/engine_factory.h"
#include "critique/engine/locking_engine.h"
#include "critique/engine/si_engine.h"
#include "critique/harness/diagnosis.h"

namespace critique {
namespace {

class DiagnoseEveryEngine
    : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(DiagnoseEveryEngine, IdentifiesItself) {
  const IsolationLevel level = GetParam();
  auto d = DiagnoseEngine([level] { return CreateEngine(level); });
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_FALSE(d->exact_matches.empty())
      << IsolationLevelName(level) << "\n"
      << d->ToString();
  bool found = false;
  for (IsolationLevel match : d->exact_matches) {
    found |= match == level;
  }
  EXPECT_TRUE(found) << IsolationLevelName(level) << "\n" << d->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, DiagnoseEveryEngine, ::testing::ValuesIn(AllEngineLevels()),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      std::string name = IsolationLevelName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DiagnosisTest, NullFactoryProductIsAGracefulError) {
  // A factory that yields no engine must surface InvalidArgument from the
  // probe machinery, never a crash.
  auto out = RunVariantOn([] { return std::unique_ptr<Engine>(); },
                          Table4Scenarios()[0].variants[0]);
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST(DiagnosisTest, KnownAliases) {
  // Cursor Stability and Oracle Read Consistency share an anomaly row:
  // the probe cannot (and should not) separate them.
  auto d = DiagnoseEngine(
      [] { return CreateEngine(IsolationLevel::kCursorStability); });
  ASSERT_TRUE(d.ok());
  std::set<IsolationLevel> matches(d->exact_matches.begin(),
                                   d->exact_matches.end());
  EXPECT_TRUE(matches.count(IsolationLevel::kCursorStability));
  EXPECT_TRUE(matches.count(IsolationLevel::kOracleReadConsistency));

  // Likewise SERIALIZABLE and the SSI extension.
  auto d2 = DiagnoseEngine(
      [] { return CreateEngine(IsolationLevel::kSerializable); });
  ASSERT_TRUE(d2.ok());
  std::set<IsolationLevel> matches2(d2->exact_matches.begin(),
                                    d2->exact_matches.end());
  EXPECT_TRUE(matches2.count(IsolationLevel::kSerializable));
  EXPECT_TRUE(matches2.count(IsolationLevel::kSerializableSI));
}

TEST(DiagnosisTest, ReportMentionsMeasuredCells) {
  auto d = DiagnoseEngine(
      [] { return CreateEngine(IsolationLevel::kSnapshotIsolation); });
  ASSERT_TRUE(d.ok());
  std::string report = d->ToString();
  EXPECT_NE(report.find("A5B: Possible"), std::string::npos);
  EXPECT_NE(report.find("Snapshot Isolation"), std::string::npos);
}

TEST(DiagnosisTest, EagerSIStillDiagnosesAsSI) {
  // The first-updater-wins ablation changes the mechanism, not the row.
  auto d = DiagnoseEngine([] {
    SnapshotIsolationOptions opts;
    opts.eager_write_conflicts = true;
    return std::make_unique<SnapshotIsolationEngine>(opts);
  });
  ASSERT_TRUE(d.ok());
  bool si = false;
  for (IsolationLevel l : d->exact_matches) {
    si |= l == IsolationLevel::kSnapshotIsolation;
  }
  EXPECT_TRUE(si) << d->ToString();
}

}  // namespace
}  // namespace critique
