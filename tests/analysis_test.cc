// Analysis-layer tests pinned to the paper's own examples:
//  - H1 (inconsistent analysis) violates P1 but none of A1/A2/A3 (Section 3);
//  - H2 violates P2 (and A5A) but not P1/A2;
//  - H3 violates P3 but not A3;
//  - H4 is the lost update P4; H5 is write skew A5B;
//  - the dirty-write constraint example of Section 3 is P0;
//  - all of H1..H5 are non-serializable.

#include <gtest/gtest.h>

#include "critique/analysis/ansi_levels.h"
#include "critique/analysis/conflict.h"
#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/phenomena.h"
#include "critique/history/history.h"

namespace critique {
namespace {

History MustParse(std::string_view text) {
  auto r = History::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// The paper's named histories.
const char kH1[] =
    "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1";
const char kH2[] =
    "r1[x=50]r2[x=50]w2[x=10]r2[y=50]w2[y=90]c2r1[y=90]c1";
const char kH3[] = "r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1";
const char kH4[] = "r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1";
const char kH5[] =
    "r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2";
// Section 3's dirty-write example: w1[x] w2[x] w2[y] c2 w1[y] c1.
const char kP0Example[] = "w1[x] w2[x] w2[y] c2 w1[y] c1";

TEST(ConflictTest, ItemConflicts) {
  Action w1 = Action::Write(1, "x");
  Action r2 = Action::Read(2, "x");
  Action w2 = Action::Write(2, "x");
  Action r2y = Action::Read(2, "y");

  ConflictKind kind;
  EXPECT_TRUE(Conflicts(w1, r2, &kind));
  EXPECT_EQ(kind, ConflictKind::kWriteRead);
  EXPECT_TRUE(Conflicts(r2, w1, &kind));
  EXPECT_EQ(kind, ConflictKind::kReadWrite);
  EXPECT_TRUE(Conflicts(w1, w2, &kind));
  EXPECT_EQ(kind, ConflictKind::kWriteWrite);
  EXPECT_FALSE(Conflicts(w1, r2y, &kind));  // different items
  EXPECT_FALSE(Conflicts(w1, Action::Write(1, "x")));  // same txn
  EXPECT_FALSE(Conflicts(Action::Read(1, "x"), Action::Read(2, "x")));
}

TEST(ConflictTest, PredicateConflictViaAnnotation) {
  Action pread = Action::PredicateRead(1, "P");
  Action w = Action::Write(2, "y");
  w.affects_predicates.insert("P");
  ConflictKind kind;
  EXPECT_TRUE(Conflicts(pread, w, &kind));
  EXPECT_EQ(kind, ConflictKind::kReadWrite);
  EXPECT_TRUE(Conflicts(w, pread, &kind));
  EXPECT_EQ(kind, ConflictKind::kWriteRead);
}

TEST(ConflictTest, PredicateConflictViaImages) {
  Action pread = Action::PredicateRead(
      1, "Active", Predicate::Cmp("active", CompareOp::kEq, Value(true)));
  Action hire = Action::Write(2, "e9");
  hire.after_image = Row().Set("active", true);
  EXPECT_TRUE(Conflicts(pread, hire));

  Action fire = Action::Write(2, "e9");
  fire.before_image = Row().Set("active", true);
  fire.after_image = Row().Set("active", false);
  EXPECT_TRUE(Conflicts(pread, fire));  // leaves the predicate: still covered

  Action unrelated = Action::Write(2, "e9");
  unrelated.before_image = Row().Set("active", false);
  unrelated.after_image = Row().Set("active", false);
  EXPECT_FALSE(Conflicts(pread, unrelated));
}

TEST(DependencyGraphTest, H1GraphHasCycle) {
  auto g = DependencyGraph::Build(MustParse(kH1));
  EXPECT_EQ(g.nodes(), (std::set<TxnId>{1, 2}));
  EXPECT_TRUE(g.HasCycle());
  auto cycle = g.FindCycle();
  ASSERT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(DependencyGraphTest, SerialHistoryAcyclic) {
  auto h = MustParse("r1[x] w1[x] c1 r2[x] w2[x] c2");
  auto g = DependencyGraph::Build(h);
  EXPECT_FALSE(g.HasCycle());
  EXPECT_EQ(g.TopologicalOrder(), (std::vector<TxnId>{1, 2}));
  EXPECT_TRUE(IsSerializable(h));
}

TEST(DependencyGraphTest, AbortedTransactionsExcluded) {
  // T2 aborts: its actions create no dependency edges.
  auto h = MustParse("w1[x] w2[x] a2 c1");
  auto g = DependencyGraph::Build(h);
  EXPECT_EQ(g.nodes(), (std::set<TxnId>{1}));
  EXPECT_TRUE(g.edges().empty());
  EXPECT_TRUE(IsSerializable(h));
}

TEST(DependencyGraphTest, AllPaperHistoriesNonSerializable) {
  EXPECT_FALSE(IsSerializable(MustParse(kH1)));
  EXPECT_FALSE(IsSerializable(MustParse(kH2)));
  EXPECT_FALSE(IsSerializable(MustParse(kH3)));
  EXPECT_FALSE(IsSerializable(MustParse(kH4)));
  EXPECT_FALSE(IsSerializable(MustParse(kH5)));
}

TEST(DependencyGraphTest, EquivalenceDefinition) {
  // Same committed transactions, same dataflow: the interleaving below is
  // equivalent to the serial execution T1; T2.
  auto serial = MustParse("r1[x] w1[x] c1 r2[y] w2[y] c2");
  auto interleaved = MustParse("r1[x] r2[y] w1[x] w2[y] c1 c2");
  EXPECT_TRUE(EquivalentHistories(serial, interleaved));

  auto different = MustParse("r1[x] w1[x] c1 r2[x] w2[x] c2");
  EXPECT_FALSE(EquivalentHistories(serial, different));
}

// --- Phenomena on the paper's histories ------------------------------------

TEST(PhenomenaTest, H1ViolatesP1ButNoStrictAnomaly) {
  History h1 = MustParse(kH1);
  EXPECT_TRUE(Exhibits(h1, Phenomenon::kP1));
  EXPECT_FALSE(Exhibits(h1, Phenomenon::kA1));
  EXPECT_FALSE(Exhibits(h1, Phenomenon::kA2));
  EXPECT_FALSE(Exhibits(h1, Phenomenon::kA3));
  EXPECT_FALSE(Exhibits(h1, Phenomenon::kP0));
}

TEST(PhenomenaTest, H2ViolatesP2ButNotP1) {
  History h2 = MustParse(kH2);
  EXPECT_TRUE(Exhibits(h2, Phenomenon::kP2));
  EXPECT_FALSE(Exhibits(h2, Phenomenon::kP1));
  EXPECT_FALSE(Exhibits(h2, Phenomenon::kA1));
  EXPECT_FALSE(Exhibits(h2, Phenomenon::kA2));
  EXPECT_FALSE(Exhibits(h2, Phenomenon::kA3));
  // H2 is exactly the read-skew shape.
  EXPECT_TRUE(Exhibits(h2, Phenomenon::kA5A));
}

TEST(PhenomenaTest, H3ViolatesP3ButNotA3) {
  History h3 = MustParse(kH3);
  EXPECT_TRUE(Exhibits(h3, Phenomenon::kP3));
  EXPECT_FALSE(Exhibits(h3, Phenomenon::kA3));
  EXPECT_FALSE(Exhibits(h3, Phenomenon::kP1));
  EXPECT_FALSE(Exhibits(h3, Phenomenon::kP2));
}

TEST(PhenomenaTest, H4IsLostUpdate) {
  History h4 = MustParse(kH4);
  EXPECT_TRUE(Exhibits(h4, Phenomenon::kP4));
  // "H4 is allowed when forbidding P0 or P1" — it shows neither.
  EXPECT_FALSE(Exhibits(h4, Phenomenon::kP0));
  EXPECT_FALSE(Exhibits(h4, Phenomenon::kP1));
  // "forbidding P2 also precludes P4": H4 must exhibit P2.
  EXPECT_TRUE(Exhibits(h4, Phenomenon::kP2));
}

TEST(PhenomenaTest, H5IsWriteSkew) {
  History h5 = MustParse(kH5);
  EXPECT_TRUE(Exhibits(h5, Phenomenon::kA5B));
  EXPECT_FALSE(Exhibits(h5, Phenomenon::kP0));
  EXPECT_FALSE(Exhibits(h5, Phenomenon::kP1));
  EXPECT_FALSE(Exhibits(h5, Phenomenon::kA5A));
  // In the single-valued interpretation, forbidding P2 precludes A5B.
  EXPECT_TRUE(Exhibits(h5, Phenomenon::kP2));
}

TEST(PhenomenaTest, P0DirtyWriteExample) {
  History h = MustParse(kP0Example);
  EXPECT_TRUE(Exhibits(h, Phenomenon::kP0));
  auto witnesses = FindPhenomenon(h, Phenomenon::kP0);
  ASSERT_FALSE(witnesses.empty());
  EXPECT_EQ(witnesses[0].indices, (std::vector<size_t>{0, 1}));
}

TEST(PhenomenaTest, A1RequiresAbortAndCommit) {
  // w1[x] r2[x] a1 c2: the strict dirty read.
  History a1 = MustParse("w1[x] r2[x] a1 c2");
  EXPECT_TRUE(Exhibits(a1, Phenomenon::kA1));
  EXPECT_TRUE(Exhibits(a1, Phenomenon::kP1));

  // Same prefix, but T1 commits: P1 only.
  History p1 = MustParse("w1[x] r2[x] c1 c2");
  EXPECT_FALSE(Exhibits(p1, Phenomenon::kA1));
  EXPECT_TRUE(Exhibits(p1, Phenomenon::kP1));

  // Read after T1 finished: neither.
  History clean = MustParse("w1[x] c1 r2[x] c2");
  EXPECT_FALSE(Exhibits(clean, Phenomenon::kA1));
  EXPECT_FALSE(Exhibits(clean, Phenomenon::kP1));
}

TEST(PhenomenaTest, A2RequiresReread) {
  History a2 = MustParse("r1[x=50] w2[x=60] c2 r1[x=60] c1");
  EXPECT_TRUE(Exhibits(a2, Phenomenon::kA2));
  EXPECT_TRUE(Exhibits(a2, Phenomenon::kP2));

  History no_reread = MustParse("r1[x=50] w2[x=60] c2 r1[y=1] c1");
  EXPECT_FALSE(Exhibits(no_reread, Phenomenon::kA2));
  EXPECT_TRUE(Exhibits(no_reread, Phenomenon::kP2));
}

TEST(PhenomenaTest, A3RequiresPredicateReread) {
  History a3 = MustParse("r1[P] w2[insert y to P] c2 r1[P] c1");
  EXPECT_TRUE(Exhibits(a3, Phenomenon::kA3));
  EXPECT_TRUE(Exhibits(a3, Phenomenon::kP3));
}

TEST(PhenomenaTest, P4CRequiresCursorRead) {
  History p4c = MustParse("rc1[x=100] w2[x=120] c2 wc1[x=130] c1");
  EXPECT_TRUE(Exhibits(p4c, Phenomenon::kP4C));
  History p4 = MustParse("r1[x=100] w2[x=120] c2 w1[x=130] c1");
  EXPECT_FALSE(Exhibits(p4, Phenomenon::kP4C));
  EXPECT_TRUE(Exhibits(p4, Phenomenon::kP4));
}

TEST(PhenomenaTest, A5ARequiresTwoItems) {
  History a5a = MustParse("r1[x=50] w2[x=10] w2[y=90] c2 r1[y=90] c1");
  EXPECT_TRUE(Exhibits(a5a, Phenomenon::kA5A));
  // Degenerate x == y form is P2/A2 territory, not A5A.
  History same_item = MustParse("r1[x=50] w2[x=10] c2 r1[x=10] c1");
  EXPECT_FALSE(Exhibits(same_item, Phenomenon::kA5A));
}

TEST(PhenomenaTest, SerialHistoryExhibitsNothing) {
  History serial =
      MustParse("r1[x] w1[x] r1[y] w1[y] c1 r2[x] r2[y] w2[x] c2");
  EXPECT_TRUE(ExhibitedPhenomena(serial).empty());
  EXPECT_TRUE(IsSerializable(serial));
}

TEST(PhenomenaTest, PendingTransactionsDoNotFire) {
  // T1 never finishes: the "(c1 or a1)" clause is unmet.
  History pending = MustParse("w1[x] r2[x] c2");
  EXPECT_FALSE(Exhibits(pending, Phenomenon::kP1));
}

TEST(PhenomenaTest, WitnessDescribeMentionsActions) {
  History h = MustParse(kH4);
  auto w = FindPhenomenon(h, Phenomenon::kP4);
  ASSERT_FALSE(w.empty());
  std::string d = w[0].Describe(h);
  EXPECT_NE(d.find("P4"), std::string::npos);
  EXPECT_NE(d.find("r1[x=100]"), std::string::npos);
}

// --- ANSI level classification (Tables 1 and 3) -----------------------------

TEST(AnsiLevelsTest, ForbiddenSetsMatchTable1) {
  auto forbidden = ForbiddenPhenomena(AnsiLevel::kRepeatableRead,
                                      AnsiInterpretation::kStrict,
                                      AnsiTable::kTable1);
  EXPECT_EQ(forbidden,
            (std::vector<Phenomenon>{Phenomenon::kA1, Phenomenon::kA2}));
  auto broad = ForbiddenPhenomena(AnsiLevel::kSerializable,
                                  AnsiInterpretation::kBroad,
                                  AnsiTable::kTable1);
  EXPECT_EQ(broad, (std::vector<Phenomenon>{Phenomenon::kP1, Phenomenon::kP2,
                                            Phenomenon::kP3}));
}

TEST(AnsiLevelsTest, Table3AddsP0Everywhere) {
  for (AnsiLevel level : AllAnsiLevels()) {
    auto forbidden = ForbiddenPhenomena(level, AnsiInterpretation::kBroad,
                                        AnsiTable::kTable3);
    ASSERT_FALSE(forbidden.empty());
    EXPECT_EQ(forbidden.front(), Phenomenon::kP0)
        << AnsiLevelName(level, AnsiTable::kTable3);
  }
}

TEST(AnsiLevelsTest, H1PassesStrictAnomalySerializable) {
  // The paper's central criticism: under the strict (A1/A2/A3) reading,
  // non-serializable H1 satisfies ANOMALY SERIALIZABLE...
  History h1 = MustParse(kH1);
  EXPECT_EQ(StrongestAnsiLevel(h1, AnsiInterpretation::kStrict,
                               AnsiTable::kTable1),
            AnsiLevel::kSerializable);
  // ...while the broad (P1/P2/P3) reading demotes it below READ COMMITTED.
  EXPECT_EQ(StrongestAnsiLevel(h1, AnsiInterpretation::kBroad,
                               AnsiTable::kTable1),
            AnsiLevel::kReadUncommitted);
}

TEST(AnsiLevelsTest, H2NeedsBroadP2) {
  History h2 = MustParse(kH2);
  // Strict: no A1/A2/A3 -> passes ANOMALY SERIALIZABLE (the flaw).
  EXPECT_EQ(StrongestAnsiLevel(h2, AnsiInterpretation::kStrict,
                               AnsiTable::kTable1),
            AnsiLevel::kSerializable);
  // Broad: P2 fires -> capped at READ COMMITTED.
  EXPECT_EQ(StrongestAnsiLevel(h2, AnsiInterpretation::kBroad,
                               AnsiTable::kTable1),
            AnsiLevel::kReadCommitted);
}

TEST(AnsiLevelsTest, H3NeedsBroadP3) {
  History h3 = MustParse(kH3);
  EXPECT_EQ(StrongestAnsiLevel(h3, AnsiInterpretation::kStrict,
                               AnsiTable::kTable1),
            AnsiLevel::kSerializable);
  EXPECT_EQ(StrongestAnsiLevel(h3, AnsiInterpretation::kBroad,
                               AnsiTable::kTable1),
            AnsiLevel::kRepeatableRead);
}

TEST(AnsiLevelsTest, DirtyWriteRejectedOnlyByTable3) {
  History p0 = MustParse(kP0Example);
  // Table 1 (no P0 anywhere): READ UNCOMMITTED admits it; in fact no
  // phenomenon of Table 1 catches it at any level.
  EXPECT_TRUE(SatisfiesAnsiLevel(p0, AnsiLevel::kReadUncommitted,
                                 AnsiInterpretation::kBroad,
                                 AnsiTable::kTable1));
  // Table 3: forbidden at every level (Remark 3).
  EXPECT_EQ(StrongestAnsiLevel(p0, AnsiInterpretation::kBroad,
                               AnsiTable::kTable3),
            std::nullopt);
}

TEST(AnsiLevelsTest, NamesFollowTables) {
  EXPECT_EQ(AnsiLevelName(AnsiLevel::kSerializable, AnsiTable::kTable1),
            "ANOMALY SERIALIZABLE");
  EXPECT_EQ(AnsiLevelName(AnsiLevel::kSerializable, AnsiTable::kTable3),
            "SERIALIZABLE");
  EXPECT_EQ(AnsiLevelName(AnsiLevel::kReadCommitted, AnsiTable::kTable1),
            "READ COMMITTED");
}

}  // namespace
}  // namespace critique
