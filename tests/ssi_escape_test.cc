// Deterministic minimizations of the SSI commit-window escape this repo's
// ROADMAP tracked as "SSI under true concurrency: rare non-serializable
// escape", closed by the commit pipeline (validate + reserve → re-validate
// → publish) in engine/si_engine.{h,cc}.
//
// The escape, in one sentence: the pivot check used to run once, at
// validation, so an rw-antidependency that reached the pivot *after* that
// point — after its commit published, or between a 2PC prepare and the
// decision — was never re-examined, and a dangerous structure
// (Cahill et al. 2008) slipped through fully committed.
//
// Three deterministic flavors, no threads required:
//  (1) committed pivot: the in-edge forms after the pivot committed; the
//      edge's source must now abort at its own commit (it would complete
//      the structure; the pivot can no longer be aborted);
//  (2) commit window: the in-edge forms between `Commit`'s first
//      validation and version publication — forced by the engine's
//      commit-window failpoint — and the stage-2 re-validation must abort
//      the pivot;
//  (3) GC retirement: the structure's "committed first" witness is
//      version-GC-retired before the completing commit; the sticky
//      summary bit must keep the completion check sound.
//
// Every admission assertion is judged by the multiversion serialization
// graph (MVSG, [BHG] Ch. 5) — the one-copy-serializability criterion that
// multiversion histories are actually held to (a raw single-version
// reading of an SI history mislabels legal old-snapshot reads; see
// tests/concurrency_test.cc).

#include <gtest/gtest.h>

#include "critique/analysis/mv_analysis.h"
#include "critique/engine/si_engine.h"

namespace critique {
namespace {

SnapshotIsolationEngine MakeSsi() {
  SnapshotIsolationOptions opts;
  opts.ssi = true;
  return SnapshotIsolationEngine(opts);
}

Row Scalar(int64_t v) { return Row::Scalar(Value(v)); }

// ---------------------------------------------------------------------------
// (1) Committed pivot: the edge that forms after the pivot's commit
// ---------------------------------------------------------------------------

TEST(SsiEscapeTest, InEdgeFormedAfterPivotCommitAbortsTheCompleter) {
  // Dangerous structure T1 -rw-> T2 -rw-> T3 with T3 committed first and
  // T2 the pivot.  The in-edge T1 -rw-> T2 forms only *after* T2
  // committed (T1 reads the old y from its older snapshot), so the
  // pivot's own validation could never see it: T1, the completer, must
  // abort instead.
  SnapshotIsolationEngine e = MakeSsi();
  ASSERT_TRUE(e.Load("x", Scalar(0)).ok());
  ASSERT_TRUE(e.Load("y", Scalar(0)).ok());

  ASSERT_TRUE(e.Begin(3).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Read(2, "x").ok());          // T2 will be overwritten by T3
  ASSERT_TRUE(e.Write(3, "x", Scalar(1)).ok());  // T2 -rw-> T3
  ASSERT_TRUE(e.Commit(3).ok());             // T3 commits first
  ASSERT_TRUE(e.Write(2, "y", Scalar(1)).ok());
  ASSERT_TRUE(e.Begin(1).ok());              // snapshot predates T2's commit
  ASSERT_TRUE(e.Commit(2).ok());             // pivot commits; no in-edge yet

  auto r = e.Read(1, "y");                   // forms T1 -rw-> T2, post-commit
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->scalar().Equals(Value(int64_t{0})))
      << "T1's snapshot must still see the old y";
  ASSERT_TRUE(e.Read(1, "x").ok());          // T3 -wr-> T1 closes the cycle

  Status c1 = e.Commit(1);
  EXPECT_TRUE(c1.IsSerializationFailure()) << c1.ToString();
  EXPECT_TRUE(IsMVSerializable(e.history()))
      << MVSerializationGraph::Build(e.history()).ToString();
  EXPECT_EQ(e.stats().serialization_aborts, 1u);
}

TEST(SsiEscapeTest, ForwardWitnessOrderStillAdmits) {
  // Negative control for the completion rule: same shape, but the pivot's
  // rw-successor commits *after* the pivot, so no dangerous structure
  // with a committed-first T3 exists and everybody commits.
  SnapshotIsolationEngine e = MakeSsi();
  ASSERT_TRUE(e.Load("x", Scalar(0)).ok());
  ASSERT_TRUE(e.Load("y", Scalar(0)).ok());

  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Write(2, "y", Scalar(1)).ok());
  ASSERT_TRUE(e.Begin(3).ok());
  ASSERT_TRUE(e.Read(2, "x").ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Commit(2).ok());                 // pivot-to-be commits first
  ASSERT_TRUE(e.Write(3, "x", Scalar(1)).ok());  // T2 -rw-> T3 (T3 later)
  ASSERT_TRUE(e.Commit(3).ok());
  ASSERT_TRUE(e.Read(1, "y").ok());              // T1 -rw-> T2

  EXPECT_TRUE(e.Commit(1).ok())
      << "without a committed-first witness this is serializable";
  EXPECT_TRUE(IsMVSerializable(e.history()));
}

// ---------------------------------------------------------------------------
// (2) The commit window: edge forms between validation and publication
// ---------------------------------------------------------------------------

TEST(SsiEscapeTest, EdgeInCommitWindowAbortsPivotAtRevalidation) {
  // T2 is the pivot with its out-edge (to the already-committed T3)
  // formed before it commits.  The failpoint fires between `Commit(2)`'s
  // first validation and its publication and lets T1 read the old y —
  // the in-edge now exists, only the stage-2 re-validation can see it.
  SnapshotIsolationEngine e = MakeSsi();
  ASSERT_TRUE(e.Load("x", Scalar(0)).ok());
  ASSERT_TRUE(e.Load("y", Scalar(0)).ok());

  ASSERT_TRUE(e.Begin(3).ok());
  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Read(2, "x").ok());
  ASSERT_TRUE(e.Write(3, "x", Scalar(1)).ok());  // T2 -rw-> T3
  ASSERT_TRUE(e.Commit(3).ok());                 // T3 commits first
  ASSERT_TRUE(e.Write(2, "y", Scalar(1)).ok());
  ASSERT_TRUE(e.Begin(1).ok());

  bool hook_ran = false;
  e.SetCommitWindowHook([&](TxnId committing) {
    if (committing != 2) return;
    hook_ran = true;
    // Inside T2's commit window: its pending y is still unpublished, so
    // T1 reads the old version and hangs the rw in-edge on the pivot.
    auto r = e.Read(1, "y");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE((*r)->scalar().Equals(Value(int64_t{0})));
  });

  Status c2 = e.Commit(2);
  e.SetCommitWindowHook(nullptr);
  ASSERT_TRUE(hook_ran);
  EXPECT_TRUE(c2.IsSerializationFailure()) << c2.ToString();
  EXPECT_EQ(e.commit_pipeline_stats().revalidation_aborts, 1u);

  // The pivot aborted, so T1 is free to commit; the committed projection
  // stays one-copy serializable.
  ASSERT_TRUE(e.Read(1, "x").ok());
  EXPECT_TRUE(e.Commit(1).ok());
  EXPECT_TRUE(IsMVSerializable(e.history()))
      << MVSerializationGraph::Build(e.history()).ToString();
}

TEST(SsiEscapeTest, CommitWindowOverlapIsRefusedByReservation) {
  // First-Committer-Wins across the window: while T2 sits between
  // validation and publication, a competing committer overlapping its
  // write set must be refused by the write-set reservation (the timestamp
  // probe alone cannot see an unpublished commit).
  SnapshotIsolationEngine e = MakeSsi();
  ASSERT_TRUE(e.Load("y", Scalar(0)).ok());

  ASSERT_TRUE(e.Begin(2).ok());
  ASSERT_TRUE(e.Write(2, "y", Scalar(1)).ok());
  ASSERT_TRUE(e.Begin(1).ok());
  ASSERT_TRUE(e.Write(1, "y", Scalar(2)).ok());

  Status competitor = Status::OK();
  e.SetCommitWindowHook([&](TxnId committing) {
    if (committing != 2) return;
    competitor = e.Commit(1);
  });
  EXPECT_TRUE(e.Commit(2).ok());
  e.SetCommitWindowHook(nullptr);
  EXPECT_TRUE(competitor.IsSerializationFailure()) << competitor.ToString();
  EXPECT_TRUE(IsMVSerializable(e.history()));
}

// ---------------------------------------------------------------------------
// (3) GC retirement of the committed-first witness
// ---------------------------------------------------------------------------

TEST(SsiEscapeTest, RetiredWitnessStillAbortsTheCompleter) {
  // Same dangerous structure as the first test (pivot P=10, witness
  // W=11, completer T=12), but the witness is version-GC-retired before
  // the completer commits: the pivot's sticky `committed_first_out`
  // summary must keep the refusal in force.
  SnapshotIsolationOptions opts;
  opts.ssi = true;
  SnapshotIsolationEngine e(opts);
  VersionGcPolicy gc;
  gc.mode = VersionGcMode::kWatermark;
  gc.commit_interval = 1u << 30;  // explicit passes only
  e.SetVersionGc(gc);
  ASSERT_TRUE(e.Load("a", Scalar(0)).ok());
  ASSERT_TRUE(e.Load("c", Scalar(0)).ok());

  ASSERT_TRUE(e.Begin(10).ok());                  // P, the pivot
  ASSERT_TRUE(e.Read(10, "c").ok());
  ASSERT_TRUE(e.Begin(11).ok());                  // W, the witness
  ASSERT_TRUE(e.Write(11, "c", Scalar(1)).ok());  // P -rw-> W
  ASSERT_TRUE(e.Commit(11).ok());                 // W commits first
  ASSERT_TRUE(e.Write(10, "a", Scalar(1)).ok());
  ASSERT_TRUE(e.Begin(12).ok());                  // T, the completer
  ASSERT_TRUE(e.Commit(10).ok());                 // P commits, not yet pivot

  // Retire W: the only open snapshot (T=12) began after W committed, so
  // the watermark passes W's commit and its state is gone.
  (void)e.GarbageCollectVersions();

  ASSERT_TRUE(e.Read(12, "a").ok());              // T -rw-> P, post-commit
  Status ct = e.Commit(12);
  EXPECT_TRUE(ct.IsSerializationFailure())
      << "retiring the witness must not reopen the escape: "
      << ct.ToString();
  EXPECT_TRUE(IsMVSerializable(e.history()));
}

}  // namespace
}  // namespace critique
