// Session-facade tests: RAII rollback of Transaction handles, move-only
// handle semantics, id assignment, the pluggable engine SPI, blocked-op
// retry under RetryPolicy, and Database::Execute's serialization-failure
// restart loop (the contract the acceptance criteria name).

#include <gtest/gtest.h>

#include <memory>

#include "critique/db/database.h"
#include "critique/engine/locking_engine.h"
#include "critique/engine/si_engine.h"

namespace critique {
namespace {

// --- construction / options -------------------------------------------------

TEST(DatabaseTest, DefaultIsSerializable) {
  Database db;
  EXPECT_EQ(db.level(), IsolationLevel::kSerializable);
}

TEST(DatabaseTest, LevelConstructorBuildsStockEngine) {
  Database db(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(db.level(), IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(db.name(), "Snapshot Isolation");
}

TEST(DatabaseTest, EngineFactorySpiPlugsInCustomEngine) {
  DbOptions options;
  // The isolation field is ignored once a factory is supplied.
  options.isolation = IsolationLevel::kReadUncommitted;
  options.engine_factory = [] {
    SnapshotIsolationOptions si;
    si.ssi = true;
    return std::make_unique<SnapshotIsolationEngine>(si);
  };
  Database db(options);
  EXPECT_EQ(db.level(), IsolationLevel::kSerializableSI);
}

TEST(DatabaseTest, DefaultRetryPolicyIsLimited) {
  Database db;
  EXPECT_EQ(db.retry_policy().name(), "limited(8,0)");
}

TEST(DatabaseTest, OpenTransactionCountTracksHandles) {
  Database db;
  EXPECT_EQ(db.open_transactions(), 0);
  {
    Transaction a = db.Begin();
    Transaction b = db.Begin();
    EXPECT_EQ(db.open_transactions(), 2);
    Transaction c = std::move(a);  // transfer, not a new open txn
    EXPECT_EQ(db.open_transactions(), 2);
    ASSERT_TRUE(b.Commit().ok());
    EXPECT_EQ(db.open_transactions(), 1);
  }  // c rolls back on destruction
  EXPECT_EQ(db.open_transactions(), 0);
}

// --- transaction basics -----------------------------------------------------

TEST(TransactionTest, AutoIdsAreUniqueAndIncreasing) {
  Database db;
  Transaction a = db.Begin();
  Transaction b = db.Begin();
  EXPECT_NE(a.id(), b.id());
  EXPECT_GT(b.id(), a.id());
  (void)a.Commit();
  (void)b.Commit();
}

TEST(TransactionTest, BeginWithIdRejectsReuse) {
  Database db;
  auto t1 = db.BeginWithId(1);
  ASSERT_TRUE(t1.ok());
  auto dup = db.BeginWithId(1);
  EXPECT_FALSE(dup.ok());
  // Auto ids skip past explicitly used ones.
  Transaction t2 = db.Begin();
  EXPECT_GT(t2.id(), 1);
  (void)t1->Commit();
  (void)t2.Commit();
}

TEST(TransactionTest, ReadYourOwnWrites) {
  Database db;
  (void)db.Load("x", Value(1));
  Transaction txn = db.Begin();
  ASSERT_TRUE(txn.Put("x", Value(5)).ok());
  auto v = txn.GetScalar("x");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->Equals(Value(5)));
  EXPECT_TRUE(txn.Commit().ok());
}

TEST(TransactionTest, OperationsAfterCommitAnswerTransactionAborted) {
  Database db;
  (void)db.Load("x", Value(1));
  Transaction txn = db.Begin();
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.active());
  EXPECT_TRUE(txn.Get("x").status().IsTransactionAborted());
  EXPECT_TRUE(txn.Commit().IsTransactionAborted());
  EXPECT_TRUE(txn.Rollback().ok());  // idempotent no-op
}

// --- RAII rollback ----------------------------------------------------------

TEST(TransactionTest, DroppedHandleRollsBack) {
  Database db;
  (void)db.Load("x", Value(7));
  {
    Transaction txn = db.Begin();
    ASSERT_TRUE(txn.Put("x", Value(999)).ok());
    // no Commit: destructor must roll back and release the write lock
  }
  EXPECT_EQ(db.stats().aborts, 1u);
  Transaction check = db.Begin();
  auto v = check.GetScalar("x");  // would block if the lock leaked
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v->Equals(Value(7)));
  (void)check.Commit();
}

TEST(TransactionTest, DroppedHandleAfterEngineAbortStaysQuiet) {
  // When the engine already aborted the transaction (deadlock /
  // serialization), the destructor must not double-abort.
  Database db(IsolationLevel::kSnapshotIsolation);
  (void)db.Load("x", Value(1));
  {
    Transaction t1 = db.Begin();
    Transaction t2 = db.Begin();
    ASSERT_TRUE(t1.Put("x", Value(2)).ok());
    ASSERT_TRUE(t1.Commit().ok());
    ASSERT_TRUE(t2.Put("x", Value(3)).ok());
    EXPECT_TRUE(t2.Commit().IsSerializationFailure());  // FCW
    EXPECT_FALSE(t2.active());
    // t2's handle dies here; stats must show exactly one serialization
    // abort and no application abort.
  }
  EXPECT_EQ(db.stats().serialization_aborts, 1u);
  EXPECT_EQ(db.stats().aborts, 0u);
}

TEST(TransactionTest, MoveTransfersOwnership) {
  Database db;
  (void)db.Load("x", Value(7));
  Transaction a = db.Begin();
  ASSERT_TRUE(a.Put("x", Value(8)).ok());
  Transaction b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): husk check
  EXPECT_TRUE(b.active());
  EXPECT_TRUE(a.Get("x").status().IsTransactionAborted());
  EXPECT_TRUE(b.Commit().ok());
  Transaction check = db.Begin();
  EXPECT_TRUE(check.GetScalar("x")->Equals(Value(8)));
  (void)check.Commit();
}

TEST(TransactionTest, MoveAssignmentRollsBackTheOverwrittenTxn) {
  Database db;
  (void)db.Load("x", Value(1));
  Transaction a = db.Begin();
  ASSERT_TRUE(a.Put("x", Value(2)).ok());
  a = db.Begin();  // the original transaction must be rolled back
  EXPECT_EQ(db.stats().aborts, 1u);
  auto v = a.GetScalar("x");  // not blocked by the dead txn's lock
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->Equals(Value(1)));
  (void)a.Commit();
}

// --- blocked-op retry under RetryPolicy ------------------------------------

TEST(RetryPolicyTest, RetryableStatusClassification) {
  EXPECT_TRUE(IsRetryableStatus(Status::WouldBlock()));
  EXPECT_TRUE(IsRetryableStatus(Status::Deadlock()));
  EXPECT_TRUE(IsRetryableStatus(Status::SerializationFailure()));
  EXPECT_FALSE(IsRetryableStatus(Status::NotFound()));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
}

TEST(RetryPolicyTest, BlockedOpsAreReissuedUpToTheBudget) {
  DbOptions options;
  options.isolation = IsolationLevel::kSerializable;
  options.retry_policy =
      std::make_shared<LimitedRetryPolicy>(/*max_txn_retries=*/0,
                                           /*max_blocked_op_retries=*/3);
  Database db(options);
  (void)db.Load("x", Value(1));

  Transaction holder = db.Begin();
  ASSERT_TRUE(holder.Put("x", Value(2)).ok());

  Transaction blocked = db.Begin();
  Status s = blocked.Get("x").status();
  EXPECT_TRUE(s.IsWouldBlock());
  // 1 initial attempt + 3 policy retries, all answered kWouldBlock.
  EXPECT_EQ(db.stats().blocked_ops, 4u);
  EXPECT_TRUE(blocked.active());  // blocked ops leave the txn usable

  // After the holder commits, the same op goes through.
  ASSERT_TRUE(holder.Commit().ok());
  auto v = blocked.GetScalar("x");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->Equals(Value(2)));
  (void)blocked.Commit();
}

TEST(RetryPolicyTest, ManualSessionsBypassBlockedOpRetry) {
  // BeginWithId sessions are the step-wise interleaving path: even with an
  // op-retry budget configured, kWouldBlock must surface immediately so
  // the schedule (e.g. the Runner) decides when to retry.
  DbOptions options;
  options.retry_policy = std::make_shared<LimitedRetryPolicy>(8, 3);
  Database db(options);
  (void)db.Load("x", Value(1));
  Transaction holder = db.Begin();
  ASSERT_TRUE(holder.Put("x", Value(2)).ok());
  auto manual = db.BeginWithId(42);
  ASSERT_TRUE(manual.ok());
  EXPECT_TRUE(manual->Get("x").status().IsWouldBlock());
  EXPECT_EQ(db.stats().blocked_ops, 1u);  // no in-call spin
  (void)holder.Rollback();
  (void)manual->Rollback();
}

TEST(RetryPolicyTest, NoRetryPolicySurfacesTheFirstBlock) {
  DbOptions options;
  options.retry_policy = std::make_shared<NoRetryPolicy>();
  Database db(options);
  (void)db.Load("x", Value(1));
  Transaction holder = db.Begin();
  ASSERT_TRUE(holder.Put("x", Value(2)).ok());
  Transaction blocked = db.Begin();
  EXPECT_TRUE(blocked.Get("x").status().IsWouldBlock());
  EXPECT_EQ(db.stats().blocked_ops, 1u);
  (void)holder.Rollback();
  (void)blocked.Rollback();
}

// --- Database::Execute ------------------------------------------------------

TEST(ExecuteTest, CommitsTheBodyOnce) {
  Database db;
  (void)db.Load("x", Value(1));
  int calls = 0;
  Status s = db.Execute([&](Transaction& txn) {
    ++calls;
    auto v = txn.GetScalar("x");
    if (!v.ok()) return v.status();
    return txn.Put("x", Value(static_cast<int64_t>(*v->AsNumeric()) + 1));
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(db.execute_retries(), 0u);
  Transaction check = db.Begin();
  EXPECT_TRUE(check.GetScalar("x")->Equals(Value(2)));
  (void)check.Commit();
}

TEST(ExecuteTest, RespectsABodyThatFinishesItsOwnTransaction) {
  Database db;
  (void)db.Load("x", Value(1));
  Status s = db.Execute([](Transaction& txn) {
    (void)txn.Put("x", Value(2));
    return txn.Rollback();  // the body decides: no commit
  });
  EXPECT_TRUE(s.ok());
  Transaction check = db.Begin();
  EXPECT_TRUE(check.GetScalar("x")->Equals(Value(1)));
  (void)check.Commit();
}

TEST(ExecuteTest, RetriesSerializationFailureUntilSuccess) {
  // The real First-Committer-Wins restart: the body's first attempt loses
  // the commit race against a hoarding session that commits after the
  // body's snapshot was taken; the retry runs on a fresh snapshot and
  // succeeds.
  DbOptions options(IsolationLevel::kSnapshotIsolation);
  options.retry_policy = std::make_shared<LimitedRetryPolicy>(4);
  Database db(options);
  (void)db.Load("balance", Value(0));

  Transaction hoarder = db.Begin();
  ASSERT_TRUE(hoarder.Put("balance", Value(100)).ok());

  int attempts = 0;
  Status s = db.Execute([&](Transaction& txn) {
    ++attempts;
    if (attempts == 1) {
      // Fix the snapshot first, then let the hoarder win the commit race.
      auto snap = txn.GetScalar("balance");
      EXPECT_TRUE(snap.ok());
      EXPECT_TRUE(snap->Equals(Value(0)));
      EXPECT_TRUE(hoarder.Commit().ok());
    }
    auto v = txn.GetScalar("balance");
    if (!v.ok()) return v.status();
    return txn.Put("balance",
                   Value(static_cast<int64_t>(*v->AsNumeric()) + 1));
  });

  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(db.execute_retries(), 1u);
  EXPECT_EQ(db.stats().serialization_aborts, 1u);
  Transaction check = db.Begin();
  EXPECT_TRUE(check.GetScalar("balance")->Equals(Value(101)));
  (void)check.Commit();
}

TEST(ExecuteTest, ExhaustsRetriesAndSurfacesTheFailure) {
  DbOptions options(IsolationLevel::kSerializable);
  options.retry_policy = std::make_shared<LimitedRetryPolicy>(2);
  Database db(options);
  (void)db.Load("x", Value(1));

  Transaction holder = db.Begin();
  ASSERT_TRUE(holder.Put("x", Value(2)).ok());  // never released

  int attempts = 0;
  Status s = db.Execute([&](Transaction& txn) {
    ++attempts;
    return txn.Get("x").status();
  });
  EXPECT_TRUE(s.IsWouldBlock());
  EXPECT_EQ(attempts, 3);  // 1 + 2 retries
  EXPECT_EQ(db.execute_retries(), 2u);
  (void)holder.Rollback();
}

TEST(ExecuteTest, NonRetryableErrorsAreNotRetried) {
  Database db;
  int attempts = 0;
  Status s = db.Execute([&](Transaction& txn) {
    ++attempts;
    return txn.Erase("no_such_item");
  });
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(db.execute_retries(), 0u);
}

TEST(ExecuteTest, DeadlockVictimIsRetried) {
  // A deadlock-victim restart: the holder owns x and waits for y; the
  // Execute body owns y and then requests x, closing the cycle.  The lock
  // manager's requester-as-victim policy aborts the body, and Execute
  // re-runs it.
  DbOptions options;
  options.engine_factory = [] {
    return std::make_unique<LockingEngine>(IsolationLevel::kSerializable);
  };
  options.retry_policy = std::make_shared<LimitedRetryPolicy>(4);
  Database db(options);
  (void)db.Load("x", Value(1));
  (void)db.Load("y", Value(1));

  Transaction holder = db.Begin();
  ASSERT_TRUE(holder.Put("x", Value(2)).ok());

  int attempts = 0;
  Status s = db.Execute([&](Transaction& txn) {
    ++attempts;
    if (attempts == 1) {
      CRITIQUE_RETURN_NOT_OK(txn.Put("y", Value(3)));  // body holds y
      EXPECT_TRUE(holder.Put("y", Value(4)).IsWouldBlock());  // holder waits
      Status dead = txn.Put("x", Value(3));  // closes the cycle: victim
      EXPECT_TRUE(dead.IsDeadlock()) << dead.ToString();
      EXPECT_FALSE(txn.active());  // the engine already rolled us back
      return dead;  // Execute restarts the body
    }
    // Retry path: release the holder so the body can finish.
    (void)holder.Rollback();
    CRITIQUE_RETURN_NOT_OK(txn.Put("y", Value(5)));
    return txn.Put("x", Value(5));
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(db.execute_retries(), 1u);
  EXPECT_EQ(db.stats().deadlock_aborts, 1u);
}

// --- time travel through the facade ----------------------------------------

TEST(TimeTravelTest, HistoricalSnapshotsReadThePast) {
  Database db(IsolationLevel::kSnapshotIsolation);
  (void)db.Load("x", Value(1));
  ASSERT_TRUE(db.CurrentTimestamp().has_value());
  Timestamp before = *db.CurrentTimestamp();

  ASSERT_TRUE(db.Execute([](Transaction& txn) {
    return txn.Put("x", Value(2));
  }).ok());

  auto historical = db.BeginAtTimestamp(before);
  ASSERT_TRUE(historical.ok()) << historical.status().ToString();
  EXPECT_TRUE(historical->GetScalar("x")->Equals(Value(1)));
  (void)historical->Commit();

  Transaction now = db.Begin();
  EXPECT_TRUE(now.GetScalar("x")->Equals(Value(2)));
  (void)now.Commit();
}

TEST(TimeTravelTest, LockingEnginesRefuse) {
  Database db(IsolationLevel::kSerializable);
  EXPECT_FALSE(db.CurrentTimestamp().has_value());
  auto t = db.BeginAtTimestamp(1);
  EXPECT_TRUE(t.status().IsFailedPrecondition());
}

}  // namespace
}  // namespace critique
