// Per-transaction isolation levels: transactions at different declared
// contracts sharing one engine, judged individually by the online
// checker (each gets its own row of the paper's Table 4).

#include <gtest/gtest.h>

#include "critique/db/database.h"
#include "critique/shard/sharded_database.h"

namespace critique {
namespace {

DbOptions CheckedOptions(IsolationLevel engine) {
  DbOptions opts(engine);
  opts.online_check = true;
  return opts;
}

Result<Transaction> BeginAt(Database& db, IsolationLevel level) {
  BeginOptions bo;
  bo.level = level;
  return db.Begin(bo);
}

TEST(MixedLevelTest, DeclaredLevelIsVisibleOnTheHandle) {
  Database db(CheckedOptions(IsolationLevel::kSerializable));
  auto weak = BeginAt(db, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(weak.ok());
  EXPECT_EQ(weak->level(), IsolationLevel::kReadCommitted);
  auto plain = db.Begin(BeginOptions{});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->level(), IsolationLevel::kSerializable);
  EXPECT_TRUE(weak->Rollback().ok());
  EXPECT_TRUE(plain->Rollback().ok());
}

TEST(MixedLevelTest, EnginesRefuseContractsTheyCannotHonor) {
  Database locking(CheckedOptions(IsolationLevel::kSerializable));
  auto si = BeginAt(locking, IsolationLevel::kSnapshotIsolation);
  EXPECT_TRUE(si.status().IsFailedPrecondition()) << si.status().ToString();

  Database snapshot(CheckedOptions(IsolationLevel::kSnapshotIsolation));
  auto rr = BeginAt(snapshot, IsolationLevel::kRepeatableRead);
  EXPECT_TRUE(rr.status().IsFailedPrecondition()) << rr.status().ToString();
  // Serializable-SI needs the SSI certifier, absent from the plain SI
  // engine.
  auto ssi = BeginAt(snapshot, IsolationLevel::kSerializableSI);
  EXPECT_TRUE(ssi.status().IsFailedPrecondition()) << ssi.status().ToString();

  // A refusal leaves no residue: the next begin works and the checker
  // holds no stuck registration (nothing pins the watermark).
  auto fine = snapshot.Begin(BeginOptions{});
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(fine->Commit().ok());
  EXPECT_TRUE(snapshot.checker()->Report().ok());
}

// An RC reader walking item-by-item beside a Serializable writer sees a
// fractured view — its own permitted anomaly, not the writer's problem.
TEST(MixedLevelTest, ReadCommittedReaderBesideSerializableWritersInSI) {
  Database db(CheckedOptions(IsolationLevel::kSnapshotIsolation));
  ASSERT_TRUE(db.Load("x", Value(50)).ok());
  ASSERT_TRUE(db.Load("y", Value(50)).ok());

  auto reader = BeginAt(db, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(reader.ok());
  auto rx = reader->GetScalar("x");
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ(rx->AsInt(), 50);

  // A transfer commits between the reader's two statements.
  auto writer = BeginAt(db, IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Put("x", Value(10)).ok());
  ASSERT_TRUE(writer->Put("y", Value(90)).ok());
  ASSERT_TRUE(writer->Commit().ok());

  // RC reads per statement: the new y is visible — the 140 total is the
  // inconsistent-analysis anomaly RC permits.
  auto ry = reader->GetScalar("y");
  ASSERT_TRUE(ry.ok());
  EXPECT_EQ(ry->AsInt(), 90);
  ASSERT_TRUE(reader->Commit().ok());

  check::CheckerReport r = db.checker()->Report();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 1u);
}

// The same interleaving with the reader declared at the engine's own SI
// level reads from the snapshot — no anomaly exists to excuse.
TEST(MixedLevelTest, SnapshotReaderSeesNoFracture) {
  Database db(CheckedOptions(IsolationLevel::kSnapshotIsolation));
  ASSERT_TRUE(db.Load("x", Value(50)).ok());
  ASSERT_TRUE(db.Load("y", Value(50)).ok());

  auto reader = BeginAt(db, IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->Get("x").ok());

  auto writer = BeginAt(db, IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Put("x", Value(10)).ok());
  ASSERT_TRUE(writer->Put("y", Value(90)).ok());
  ASSERT_TRUE(writer->Commit().ok());

  auto ry = reader->GetScalar("y");
  ASSERT_TRUE(ry.ok());
  EXPECT_EQ(ry->AsInt(), 50);
  ASSERT_TRUE(reader->Commit().ok());

  check::CheckerReport r = db.checker()->Report();
  EXPECT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(r.allowed_anomalies, 0u);
}

// An SI-declared pivot inside an SSI engine population: the engine does
// not refuse the dangerous structure on the weak transaction's account,
// and the checker excuses the resulting write skew as SI's due.
TEST(MixedLevelTest, SnapshotIsolationTxnInsideSsiPopulation) {
  Database db(CheckedOptions(IsolationLevel::kSerializableSI));
  ASSERT_TRUE(db.Load("x", Value(1)).ok());
  ASSERT_TRUE(db.Load("y", Value(1)).ok());

  auto weak = BeginAt(db, IsolationLevel::kSnapshotIsolation);
  auto strong = BeginAt(db, IsolationLevel::kSerializableSI);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(weak->Get("x").ok());
  ASSERT_TRUE(weak->Get("y").ok());
  ASSERT_TRUE(strong->Get("x").ok());
  ASSERT_TRUE(strong->Get("y").ok());
  ASSERT_TRUE(weak->Put("x", Value(0)).ok());
  ASSERT_TRUE(strong->Put("y", Value(0)).ok());

  Status sw = weak->Commit();
  Status ss = strong->Commit();

  check::CheckerReport r = db.checker()->Report();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  if (sw.ok() && ss.ok()) {
    // The engine let the skew through on the SI transaction's account;
    // the checker charges it to the level that permits it.
    EXPECT_EQ(r.allowed_anomalies, 1u);
  }

  // The same structure among two SSI-declared transactions is refused by
  // the engine outright.
  ASSERT_TRUE(db.Load("a", Value(1)).ok());
  ASSERT_TRUE(db.Load("b", Value(1)).ok());
  auto t1 = BeginAt(db, IsolationLevel::kSerializableSI);
  auto t2 = BeginAt(db, IsolationLevel::kSerializableSI);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(t1->Get("a").ok());
  ASSERT_TRUE(t1->Get("b").ok());
  ASSERT_TRUE(t2->Get("a").ok());
  ASSERT_TRUE(t2->Get("b").ok());
  ASSERT_TRUE(t1->Put("a", Value(0)).ok());
  ASSERT_TRUE(t2->Put("b", Value(0)).ok());
  Status s1 = t1->Commit();
  Status s2 = t2->Commit();
  EXPECT_TRUE(!s1.ok() || !s2.ok());
  EXPECT_EQ(db.checker()->Report().violations, 0u);
}

// The lock scheduler honors any Table 2 protocol per transaction: an RC
// reader takes short read locks and slips between a Serializable
// writer's operations instead of blocking behind it.
TEST(MixedLevelTest, LockingMixesReadCommittedWithSerializable) {
  Database db(CheckedOptions(IsolationLevel::kSerializable));
  ASSERT_TRUE(db.Load("x", Value(7)).ok());

  auto strong = db.Begin(BeginOptions{});
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(strong->Get("x").ok());  // long S lock at Serializable

  // An RC writer would block behind the S lock; an RC *reader* shares it.
  auto weak = BeginAt(db, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(weak.ok());
  auto rx = weak->GetScalar("x");
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ(rx->AsInt(), 7);
  ASSERT_TRUE(weak->Commit().ok());
  ASSERT_TRUE(strong->Commit().ok());

  check::CheckerReport r = db.checker()->Report();
  EXPECT_TRUE(r.ok()) << r.ToString();
}

TEST(MixedLevelTest, AbortSplitCountersSumUnderMixedLevels) {
  // Drive SI + RC + SSI transactions into first-committer-wins and SSI
  // conflicts; the serialization-abort breakdown must stay exhaustive.
  Database db(CheckedOptions(IsolationLevel::kSerializableSI));
  ASSERT_TRUE(db.Load("k", Value(0)).ok());
  for (int round = 0; round < 20; ++round) {
    auto a = BeginAt(db, round % 2 == 0 ? IsolationLevel::kSnapshotIsolation
                                        : IsolationLevel::kSerializableSI);
    auto b = BeginAt(db, round % 3 == 0 ? IsolationLevel::kReadCommitted
                                        : IsolationLevel::kSerializableSI);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    (void)a->Get("k");
    (void)b->Get("k");
    (void)a->Put("k", Value(round));
    (void)b->Put("k", Value(-round));
    (void)a->Commit();
    (void)b->Commit();
  }
  EngineStats s = db.StatsSnapshot();
  EXPECT_GT(s.serialization_aborts, 0u);
  EXPECT_EQ(s.fcw_aborts + s.ssi_aborts + s.in_doubt_aborts,
            s.serialization_aborts);
  EXPECT_EQ(db.checker()->Report().violations, 0u)
      << db.checker()->Report().ToString();
}

TEST(MixedLevelTest, ShardedFacadeCarriesTheDeclaredLevel) {
  ShardedDbOptions sopts(3, IsolationLevel::kSnapshotIsolation);
  sopts.shard_options.online_check = true;
  ShardedDatabase db(sopts);
  ASSERT_TRUE(db.Load("p", Value(1)).ok());
  ASSERT_TRUE(db.Load("q", Value(2)).ok());

  BeginOptions bo;
  bo.level = IsolationLevel::kReadCommitted;
  ShardedTransaction t = db.Begin(bo);
  ASSERT_TRUE(t.declared_level().has_value());
  EXPECT_EQ(*t.declared_level(), IsolationLevel::kReadCommitted);
  EXPECT_TRUE(t.Get("p").ok());
  EXPECT_TRUE(t.Get("q").ok());
  EXPECT_TRUE(t.Put("p", Value(10)).ok());
  EXPECT_TRUE(t.Commit().ok());

  // A contract no shard engine honors surfaces as a refusal at first
  // touch and is terminal under Execute (never retried).
  BeginOptions bad;
  bad.level = IsolationLevel::kRepeatableRead;
  Status s = db.Execute(bad, [](ShardedTransaction& txn) {
    Status ps = txn.Put("p", Value(99));
    if (!ps.ok()) return ps;
    return txn.Commit();
  });
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();

  check::CheckerReport r = db.CheckerReportAggregate();
  EXPECT_EQ(r.violations, 0u) << r.ToString();
  EXPECT_GE(r.commits_certified, 1u);
}

}  // namespace
}  // namespace critique
