// View equivalence and view serializability: the [OOBBGM] touchstone —
// SI histories are view-equivalent to their single-version mappings — and
// the classical blind-write separation from conflict serializability.

#include <gtest/gtest.h>

#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/mv_analysis.h"
#include "critique/analysis/view.h"
#include "critique/harness/paper_histories.h"

namespace critique {
namespace {

History MustParse(std::string_view text) {
  auto r = History::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(ReadsFromTest, SingleVersionLastWriterWins) {
  auto h = MustParse("w1[x] c1 r2[x] w2[x] r2[x] c2");
  auto rel = ReadsFromRelation(h);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel[0].writer, 1);  // first read: from T1
  EXPECT_EQ(rel[0].ordinal, 0u);
  EXPECT_EQ(rel[1].writer, 2);  // re-read after own write: from T2
  EXPECT_EQ(rel[1].ordinal, 1u);
}

TEST(ReadsFromTest, InitialStateIsTxnZero) {
  auto rel = ReadsFromRelation(MustParse("r1[x] c1"));
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel[0].writer, kInitialTxn);
}

TEST(ReadsFromTest, MultiversionUsesSubscripts) {
  auto rel =
      ReadsFromRelation(MustParse("w1[x1=5] r2[x0=1] c1 c2"));
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel[0].writer, kInitialTxn);  // explicit x0, despite w1 earlier
}

TEST(ReadsFromTest, AbortedTransactionsExcluded) {
  auto rel = ReadsFromRelation(MustParse("w1[x] r2[x] a2 c1"));
  EXPECT_TRUE(rel.empty());
}

TEST(FinalWritersTest, LastCommittedWrite) {
  auto fw = FinalWriters(MustParse("w1[x] w1[y] c1 w2[x] c2 w3[z] a3"));
  EXPECT_EQ(fw.at("x"), 2);
  EXPECT_EQ(fw.at("y"), 1);
  EXPECT_EQ(fw.count("z"), 0u);  // writer aborted
}

TEST(FinalWritersTest, MultiversionByCommitOrder) {
  // T2 writes "later" in the action sequence but commits first.
  auto fw = FinalWriters(MustParse("w1[x1=1] w2[x2=2] c2 c1"));
  EXPECT_EQ(fw.at("x"), 1);
}

TEST(ViewEquivalenceTest, OobbgmTouchstone) {
  // "All Snapshot Isolation histories can be mapped to single-valued
  // histories while preserving dataflow dependencies (View Equivalent)."
  History h1si = GetPaperHistory("H1.SI").Parse();
  History mapped = MapSnapshotHistoryToSingleVersion(h1si);
  EXPECT_TRUE(ViewEquivalent(h1si, mapped));

  // The same holds for the write-skew history's SI form.
  History h5si = MustParse(
      "r1[x0=50] r1[y0=50] r2[x0=50] r2[y0=50] w1[y1=-40] w2[x2=-40] c1 c2");
  EXPECT_TRUE(ViewEquivalent(h5si, MapSnapshotHistoryToSingleVersion(h5si)));
}

TEST(ViewEquivalenceTest, DifferentReadsFromNotEquivalent) {
  auto a = MustParse("w1[x] c1 r2[x] c2");   // T2 reads from T1
  auto b = MustParse("r2[x] w1[x] c1 c2");   // T2 reads the initial state
  EXPECT_FALSE(ViewEquivalent(a, b));
}

TEST(ViewEquivalenceTest, DifferentFinalWritersNotEquivalent) {
  auto a = MustParse("w1[x] c1 w2[x] c2");
  auto b = MustParse("w2[x] c2 w1[x] c1");
  EXPECT_FALSE(ViewEquivalent(a, b));
}

TEST(ViewSerializabilityTest, PaperHistoriesNotViewSerializable) {
  for (const char* name : {"H1", "H2", "H4", "H5"}) {
    auto vsr = IsViewSerializable(GetPaperHistory(name).Parse());
    ASSERT_TRUE(vsr.ok());
    EXPECT_FALSE(*vsr) << name;
  }
}

TEST(ViewSerializabilityTest, MappedH1SIIsViewSerializable) {
  History mapped = MapSnapshotHistoryToSingleVersion(
      GetPaperHistory("H1.SI").Parse());
  auto vsr = IsViewSerializable(mapped);
  ASSERT_TRUE(vsr.ok());
  EXPECT_TRUE(*vsr);
}

TEST(ViewSerializabilityTest, BlindWritesSeparateViewFromConflict) {
  // Classical example: conflict-cyclic but view-serializable thanks to
  // blind writes — T3's final write masks the T1/T2 tangle.
  auto h = MustParse("r1[x] w2[x] w1[x] w3[x] c1 c2 c3");
  EXPECT_FALSE(IsSerializable(h));  // conflict-cyclic
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok());
  EXPECT_TRUE(*vsr);  // view-equivalent to T1; T2; T3
}

TEST(ViewSerializabilityTest, ConflictSerializableImpliesViewSerializable) {
  auto h = MustParse("r1[x] w1[x] c1 r2[x] w2[x] c2");
  EXPECT_TRUE(IsSerializable(h));
  auto vsr = IsViewSerializable(h);
  ASSERT_TRUE(vsr.ok());
  EXPECT_TRUE(*vsr);
}

TEST(ViewSerializabilityTest, EnumerationCapEnforced) {
  History big;
  for (TxnId t = 1; t <= 10; ++t) {
    big.Append(Action::Write(t, "x"));
    big.Append(Action::Commit(t));
  }
  EXPECT_FALSE(IsViewSerializable(big, /*max_transactions=*/4).ok());
  EXPECT_TRUE(IsViewSerializable(big, /*max_transactions=*/10).ok());
}

}  // namespace
}  // namespace critique
