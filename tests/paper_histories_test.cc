// Verifies the whole paper-history corpus: every entry parses verbatim,
// exhibits exactly the phenomena the paper claims, avoids the ones it
// rules out, and has the claimed (non-)serializability.

#include <gtest/gtest.h>

#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/mv_analysis.h"
#include "critique/harness/paper_histories.h"

namespace critique {
namespace {

class PaperCorpusTest : public ::testing::TestWithParam<PaperHistory> {};

TEST_P(PaperCorpusTest, ParsesVerbatim) {
  const PaperHistory& ph = GetParam();
  auto parsed = History::Parse(ph.shorthand);
  ASSERT_TRUE(parsed.ok()) << ph.name << ": " << parsed.status().ToString();
  EXPECT_TRUE(parsed->Validate().ok()) << ph.name;
  EXPECT_EQ(parsed->IsMultiversion(), ph.multiversion) << ph.name;
}

TEST_P(PaperCorpusTest, ExhibitsClaimedPhenomena) {
  const PaperHistory& ph = GetParam();
  History h = ph.Parse();
  for (Phenomenon p : ph.exhibits) {
    EXPECT_TRUE(Exhibits(h, p))
        << ph.name << " should exhibit " << PhenomenonName(p);
  }
  for (Phenomenon p : ph.avoids) {
    EXPECT_FALSE(Exhibits(h, p))
        << ph.name << " should avoid " << PhenomenonName(p);
  }
}

TEST_P(PaperCorpusTest, SerializabilityAsClaimed) {
  const PaperHistory& ph = GetParam();
  History h = ph.Parse();
  History analyzed =
      ph.multiversion ? MapSnapshotHistoryToSingleVersion(h) : h;
  EXPECT_EQ(IsSerializable(analyzed), ph.serializable) << ph.name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PaperCorpusTest, ::testing::ValuesIn(PaperHistories()),
    [](const ::testing::TestParamInfo<PaperHistory>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(PaperCorpusLookupTest, GetByName) {
  const PaperHistory& h1 = GetPaperHistory("H1");
  EXPECT_EQ(h1.name, "H1");
  EXPECT_NE(h1.about.find("inconsistent analysis"), std::string::npos);
}

TEST(PaperCorpusLookupTest, MVHistoryMapsToItsSVForm) {
  History mapped = MapSnapshotHistoryToSingleVersion(
      GetPaperHistory("H1.SI").Parse());
  EXPECT_EQ(mapped.ToString(), GetPaperHistory("H1.SI.SV").shorthand);
}

TEST(PaperCorpusLookupTest, CorpusCoversAllNamedHistories) {
  std::set<std::string> names;
  for (const PaperHistory& h : PaperHistories()) names.insert(h.name);
  for (const char* required :
       {"H1", "H2", "H3", "H4", "H5", "H1.SI", "H1.SI.SV", "P0-example"}) {
    EXPECT_EQ(names.count(required), 1u) << required;
  }
}

}  // namespace
}  // namespace critique
