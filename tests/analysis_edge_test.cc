// Edge cases of the analysis layer: witness structure, dependency edge
// labels, topological determinism, cursor actions in detectors, and the
// less-travelled corners of conflicts and equivalence.

#include <gtest/gtest.h>

#include "critique/analysis/ansi_levels.h"
#include "critique/analysis/dependency_graph.h"
#include "critique/analysis/mv_analysis.h"
#include "critique/analysis/phenomena.h"
#include "critique/history/history.h"

namespace critique {
namespace {

History MustParse(std::string_view text) {
  auto r = History::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(DependencyEdgeTest, ToStringShowsKindAndItem) {
  auto g = DependencyGraph::Build(MustParse("w1[x] c1 r2[x] c2"));
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].ToString(), "T1 -wr[x]-> T2");
  EXPECT_EQ(g.edges()[0].from_index, 0u);
  EXPECT_EQ(g.edges()[0].to_index, 2u);
}

TEST(DependencyGraphTest, TopologicalOrderDeterministic) {
  // Independent transactions: order by id (ties broken deterministically).
  auto h = MustParse("w3[c] c3 w1[a] c1 w2[b] c2");
  auto g = DependencyGraph::Build(h);
  EXPECT_EQ(g.TopologicalOrder(), (std::vector<TxnId>{1, 2, 3}));
}

TEST(DependencyGraphTest, TopologicalOrderEmptyOnCycle) {
  auto g = DependencyGraph::Build(
      MustParse("r1[x] r2[y] w1[y] w2[x] c1 c2"));
  EXPECT_TRUE(g.HasCycle());
  EXPECT_TRUE(g.TopologicalOrder().empty());
}

TEST(DependencyGraphTest, PredicateEdgeLabels) {
  auto h = MustParse("r1[P] w2[y in P] c2 c1");
  auto g = DependencyGraph::Build(h);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].item, "<P>");
}

TEST(DependencyGraphTest, SameDataflowIgnoresEdgeMultiplicity) {
  // Two reads of the same item produce two edges to the writer; the
  // deduplicated dataflow is the same as with one.
  auto a = MustParse("w1[x] c1 r2[x] r2[x] c2");
  auto b = MustParse("w1[x] c1 r2[x] c2");
  EXPECT_TRUE(DependencyGraph::Build(a).SameDataflowAs(
      DependencyGraph::Build(b)));
}

TEST(EquivalenceTest, DifferentCommittedSetsNeverEquivalent) {
  auto a = MustParse("w1[x] c1");
  auto b = MustParse("w1[x] c1 w2[y] c2");
  EXPECT_FALSE(EquivalentHistories(a, b));
}

TEST(PhenomenaEdgeTest, CursorReadsCountAsReads) {
  // P2 with a cursor read on the r1 side.
  auto h = MustParse("rc1[x] w2[x] c2 c1");
  EXPECT_TRUE(Exhibits(h, Phenomenon::kP2));
  // A1 with a cursor read on the r2 side.
  auto a1 = MustParse("w1[x] rc2[x] a1 c2");
  EXPECT_TRUE(Exhibits(a1, Phenomenon::kA1));
}

TEST(PhenomenaEdgeTest, CursorWritesCountAsWrites) {
  auto h = MustParse("wc1[x] wc2[x] c2 c1");
  EXPECT_TRUE(Exhibits(h, Phenomenon::kP0));
}

TEST(PhenomenaEdgeTest, P4CAllowsPlainSecondWrite) {
  // The paper's P4C pattern is rc1[x]...w2[x]...w1[x]...c1 — the second
  // T1 write need not be a cursor write.
  auto h = MustParse("rc1[x] w2[x] c2 w1[x] c1");
  EXPECT_TRUE(Exhibits(h, Phenomenon::kP4C));
}

TEST(PhenomenaEdgeTest, P0NeedsDistinctTransactions) {
  auto h = MustParse("w1[x] w1[x] c1");
  EXPECT_FALSE(Exhibits(h, Phenomenon::kP0));
}

TEST(PhenomenaEdgeTest, A5BRolesSwapDetected) {
  // The mirror assignment of H5's roles must also be caught.
  auto h = MustParse("r2[x] r1[y] w2[y] w1[x] c1 c2");
  EXPECT_TRUE(Exhibits(h, Phenomenon::kA5B));
}

TEST(PhenomenaEdgeTest, A5ANeedsCommittedWriter) {
  auto h = MustParse("r1[x] w2[x] w2[y] a2 r1[y] c1");
  EXPECT_FALSE(Exhibits(h, Phenomenon::kA5A));
}

TEST(PhenomenaEdgeTest, MultipleWitnessesEnumerated) {
  // Two separate dirty reads of the same write.
  auto h = MustParse("w1[x] r2[x] r3[x] c2 c3 c1");
  auto witnesses = FindPhenomenon(h, Phenomenon::kP1);
  EXPECT_EQ(witnesses.size(), 2u);
}

TEST(PhenomenaEdgeTest, WitnessIndicesInPatternOrder) {
  auto h = MustParse("r1[x=50] w2[x=60] c2 r1[x=60] c1");
  auto witnesses = FindPhenomenon(h, Phenomenon::kA2);
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_EQ(witnesses[0].indices, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(AnsiLevelsEdgeTest, NestingOfForbiddenSets) {
  // Each level's forbidden set contains the previous level's.
  for (AnsiTable table : {AnsiTable::kTable1, AnsiTable::kTable3}) {
    for (AnsiInterpretation interp :
         {AnsiInterpretation::kStrict, AnsiInterpretation::kBroad}) {
      std::vector<Phenomenon> prev;
      for (AnsiLevel level : AllAnsiLevels()) {
        auto cur = ForbiddenPhenomena(level, interp, table);
        for (Phenomenon p : prev) {
          EXPECT_NE(std::find(cur.begin(), cur.end(), p), cur.end());
        }
        prev = cur;
      }
    }
  }
}

TEST(MVEdgeTest, ToStringShowsDirection) {
  MVEdge e;
  e.from = 2;
  e.to = 1;
  e.kind = ConflictKind::kReadWrite;
  e.item = "x";
  EXPECT_EQ(e.ToString(), "T2 -rw[x]-> T1");
}

TEST(MVMappingEdgeTest, StatementMappingKeepsReadPositions) {
  // Oracle-style: reads stay in place, the pending write migrates to c2.
  auto h = MustParse("w2[x2=9] r1[x0=1] c2 r1[x2=9] c1");
  History mapped = MapStatementSnapshotHistoryToSingleVersion(h);
  EXPECT_EQ(mapped.ToString(), "r1[x=1] w2[x=9] c2 r1[x=9] c1");
}

TEST(MVMappingEdgeTest, UnfinishedTransactionsProjectedAway) {
  auto h = MustParse("w1[x1=1] r2[x0=0] c2");
  History mapped = MapSnapshotHistoryToSingleVersion(h);
  EXPECT_EQ(mapped.ToString(), "r2[x=0] c2");
}

TEST(HistoryEdgeTest, EmptyHistory) {
  History h;
  EXPECT_TRUE(h.Validate().ok());
  EXPECT_TRUE(h.Transactions().empty());
  EXPECT_TRUE(IsSerializable(h));
  EXPECT_TRUE(ExhibitedPhenomena(h).empty());
  EXPECT_EQ(h.ToString(), "");
}

TEST(HistoryEdgeTest, SingleCommit) {
  auto h = MustParse("c1");
  EXPECT_TRUE(h.IsCommitted(1));
  EXPECT_TRUE(IsSerializable(h));
}

}  // namespace
}  // namespace critique
