// Tests for the history container and the paper-shorthand parser.
// Every named history from the paper (H1, H2, H3, H4, H5, H1.SI,
// H1.SI.SV and the P0 example) must parse verbatim.

#include <gtest/gtest.h>

#include "critique/history/history.h"
#include "critique/history/parser.h"

namespace critique {
namespace {

TEST(ActionTest, FactoryRoundTrip) {
  EXPECT_EQ(Action::Read(1, "x").ToString(), "r1[x]");
  EXPECT_EQ(Action::Read(1, "x", Value(50)).ToString(), "r1[x=50]");
  EXPECT_EQ(Action::Write(2, "y", Value(90)).ToString(), "w2[y=90]");
  EXPECT_EQ(Action::ReadVersion(1, "x", 0, Value(50)).ToString(),
            "r1[x0=50]");
  EXPECT_EQ(Action::WriteVersion(1, "x", 1, Value(10)).ToString(),
            "w1[x1=10]");
  EXPECT_EQ(Action::PredicateRead(1, "P").ToString(), "r1[P]");
  EXPECT_EQ(Action::CursorRead(1, "x").ToString(), "rc1[x]");
  EXPECT_EQ(Action::CursorWrite(1, "x").ToString(), "wc1[x]");
  EXPECT_EQ(Action::Commit(1).ToString(), "c1");
  EXPECT_EQ(Action::Abort(2).ToString(), "a2");
}

TEST(ParserTest, SimpleHistory) {
  auto r = History::Parse("w1[x] r2[x] c1 c2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const History& h = *r;
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0].type, Action::Type::kWrite);
  EXPECT_EQ(h[0].txn, 1);
  EXPECT_EQ(h[0].item, "x");
  EXPECT_EQ(h[1].type, Action::Type::kRead);
  EXPECT_EQ(h[2].type, Action::Type::kCommit);
  EXPECT_EQ(h[3].txn, 2);
}

TEST(ParserTest, NoWhitespaceBetweenActions) {
  // H1 appears in the paper without separating spaces.
  auto r = History::Parse(
      "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 8u);
  EXPECT_TRUE(r->IsCommitted(1));
  EXPECT_TRUE(r->IsCommitted(2));
  EXPECT_TRUE((*r)[0].value->Equals(Value(50)));
  EXPECT_TRUE((*r)[1].value->Equals(Value(10)));
}

TEST(ParserTest, H2FuzzyRead) {
  auto r = History::Parse(
      "r1[x=50]r2[x=50]w2[x=10]r2[y=50]w2[y=90]c2r1[y=90]c1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 8u);
}

TEST(ParserTest, H3PredicateAndInsert) {
  auto r = History::Parse("r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const History& h = *r;
  ASSERT_EQ(h.size(), 7u);
  EXPECT_EQ(h[0].type, Action::Type::kPredicateRead);
  EXPECT_EQ(h[0].predicate_name, "P");
  EXPECT_EQ(h[1].type, Action::Type::kWrite);
  EXPECT_EQ(h[1].item, "y");
  EXPECT_TRUE(h[1].is_insert);
  EXPECT_EQ(h[1].affects_predicates.count("P"), 1u);
}

TEST(ParserTest, WriteInPredicateAnnotation) {
  auto r = History::Parse("r1[P] w2[y in P] c2 c1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)[1].affects_predicates.count("P"), 1u);
  EXPECT_FALSE((*r)[1].is_insert);
}

TEST(ParserTest, H4LostUpdate) {
  auto r = History::Parse("r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 6u);
}

TEST(ParserTest, H5NegativeValues) {
  auto r = History::Parse(
      "r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)[4].value->Equals(Value(-40)));
}

TEST(ParserTest, MultiversionSubscripts) {
  // H1.SI from Section 4.2.
  auto r = History::Parse(
      "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const History& h = *r;
  EXPECT_TRUE(h.IsMultiversion());
  EXPECT_EQ(*h[0].version, 0);
  EXPECT_EQ(*h[1].version, 1);
  EXPECT_EQ(h[1].item, "x");
  EXPECT_TRUE(h[1].value->Equals(Value(10)));
}

TEST(ParserTest, CursorActions) {
  auto r = History::Parse("rc1[x] w2[x] wc1[x] c1 c2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)[0].type, Action::Type::kCursorRead);
  EXPECT_EQ((*r)[2].type, Action::Type::kCursorWrite);
}

TEST(ParserTest, StringAndBoolValues) {
  auto r = History::Parse("w1[x='hello'] w1[y=TRUE] w1[z=FALSE] c1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)[0].value->Equals(Value("hello")));
  EXPECT_TRUE((*r)[1].value->Equals(Value(true)));
  EXPECT_TRUE((*r)[2].value->Equals(Value(false)));
}

TEST(ParserTest, DoubleValues) {
  auto r = History::Parse("w1[x=2.5] c1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)[0].value->Equals(Value(2.5)));
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(History::Parse("q1[x]").ok());
  EXPECT_FALSE(History::Parse("r[x]").ok());
  EXPECT_FALSE(History::Parse("r1[x").ok());
  EXPECT_FALSE(History::Parse("r1[]").ok());
  EXPECT_FALSE(History::Parse("rc1[P]").ok());  // no predicate cursors
}

TEST(ParserTest, PredicateWrite) {
  // The paper's w1[P]: "writing a set of records satisfying predicate P".
  auto r = History::Parse("r1[P] w2[P] c2 c1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)[1].type, Action::Type::kPredicateWrite);
  EXPECT_EQ((*r)[1].predicate_name, "P");
  EXPECT_EQ((*r)[1].ToString(), "w2[P]");
  EXPECT_EQ(r->ToString(), "r1[P] w2[P] c2 c1");
}

TEST(ParserTest, RejectsActionsAfterCommit) {
  EXPECT_FALSE(History::Parse("c1 r1[x]").ok());
  EXPECT_FALSE(History::Parse("a1 w1[x]").ok());
  EXPECT_FALSE(History::Parse("c1 c1").ok());
}

TEST(ParserTest, RejectsReservedTxnZero) {
  EXPECT_FALSE(History::Parse("r0[x] c0").ok());
}

TEST(HistoryTest, TransactionsAndTerminals) {
  auto h = *History::Parse("w1[x] r2[x] r3[y] c1 a2");
  EXPECT_EQ(h.Transactions(), (std::set<TxnId>{1, 2, 3}));
  EXPECT_EQ(h.Committed(), (std::set<TxnId>{1}));
  EXPECT_EQ(h.Aborted(), (std::set<TxnId>{2}));
  EXPECT_EQ(h.ActiveAtEnd(), (std::set<TxnId>{3}));
  EXPECT_TRUE(h.IsCommitted(1));
  EXPECT_FALSE(h.IsCommitted(2));
  EXPECT_TRUE(h.IsAborted(2));
  EXPECT_EQ(*h.TerminalIndex(1), 3u);
  EXPECT_EQ(*h.TerminalIndex(2), 4u);
  EXPECT_FALSE(h.TerminalIndex(3).has_value());
}

TEST(HistoryTest, IndicesOf) {
  auto h = *History::Parse("w1[x] r2[x] w1[y] c1 c2");
  EXPECT_EQ(h.IndicesOf(1), (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(h.IndicesOf(2), (std::vector<size_t>{1, 4}));
}

TEST(HistoryTest, RoundTripToString) {
  const std::string text = "r1[x=50] w1[x=10] r2[P] c2 a1";
  auto h = *History::Parse(text);
  EXPECT_EQ(h.ToString(), text);
}

TEST(HistoryTest, RoundTripPreservesAnnotations) {
  const std::string text = "r1[P] w2[insert y to P] c2 c1";
  auto h = *History::Parse(text);
  EXPECT_EQ(h.ToString(), text);
  auto reparsed = History::Parse(h.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), text);
}

}  // namespace
}  // namespace critique
