#include "critique/wal/recovery.h"

#include <utility>

namespace critique {
namespace {

enum class ReplayPhase { kBegun, kPrepared, kCommitted, kAborted };

Status ApplyImages(Engine& engine, TxnId txn,
                   const std::vector<WalWriteImage>& images) {
  for (const WalWriteImage& img : images) {
    if (img.row.has_value()) {
      CRITIQUE_RETURN_NOT_OK(engine.Write(txn, img.id, *img.row));
    } else {
      Status s = engine.Delete(txn, img.id);
      // A tombstone over an item the snapshot can't see (insert + delete
      // inside one transaction): the net effect is already "absent".
      if (!s.ok() && !s.IsNotFound()) return s;
    }
  }
  return Status::OK();
}

Status ReplayError(const WalRecord& rec, const Status& s) {
  return Status::Internal(
      "wal replay: engine refused " + std::string(WalRecordTypeName(rec.type)) +
      " for txn " + std::to_string(rec.txn) + ": " + s.ToString() +
      " (a refusal during sequential replay means the log is inconsistent)");
}

}  // namespace

std::string WalRecoveryStats::ToString() const {
  return "records=" + std::to_string(records) +
         " loads_replayed=" + std::to_string(loads_replayed) +
         " committed_replayed=" + std::to_string(committed_replayed) +
         " prepared_restored=" + std::to_string(prepared_restored) +
         " aborted_discarded=" + std::to_string(aborted_discarded) +
         " begun_discarded=" + std::to_string(begun_discarded) +
         " torn_tail=" + std::string(torn_tail ? "true" : "false") +
         " valid_bytes=" + std::to_string(valid_bytes) +
         " dropped_bytes=" + std::to_string(dropped_bytes) +
         " max_txn=" + std::to_string(max_txn);
}

Result<WalRecoveryStats> ReplayWal(Engine& engine, const WalReadResult& wal) {
  WalRecoveryStats stats;
  stats.records = wal.records.size();
  stats.torn_tail = wal.torn_tail;
  stats.valid_bytes = wal.valid_bytes;
  stats.dropped_bytes = wal.total_bytes - wal.valid_bytes;

  // Redo images accumulate per transaction until its terminal record; a
  // later kWriteSet supersedes an earlier one (the slim-commit protocol
  // only ever writes one, but the format allows re-logging).
  std::map<TxnId, std::vector<WalWriteImage>> images;
  std::map<TxnId, ReplayPhase> phase;

  for (const WalRecord& rec : wal.records) {
    if (rec.txn > stats.max_txn) stats.max_txn = rec.txn;
    switch (rec.type) {
      case WalRecordType::kBegin:
        phase.emplace(rec.txn, ReplayPhase::kBegun);
        break;
      case WalRecordType::kWriteSet:
        images[rec.txn] = rec.images;
        phase.emplace(rec.txn, ReplayPhase::kBegun);
        break;
      case WalRecordType::kPrepare: {
        CRITIQUE_RETURN_NOT_OK(engine.Begin(rec.txn));
        auto it = images.find(rec.txn);
        if (it != images.end()) {
          CRITIQUE_RETURN_NOT_OK(ApplyImages(engine, rec.txn, it->second));
          images.erase(it);
        }
        Status s = engine.Prepare(rec.txn);
        if (!s.ok()) return ReplayError(rec, s);
        phase[rec.txn] = ReplayPhase::kPrepared;
        ++stats.prepared_restored;
        break;
      }
      case WalRecordType::kCommit: {
        auto ph = phase.find(rec.txn);
        if (ph != phase.end() && ph->second == ReplayPhase::kPrepared) {
          // The decision arrived (from the coordinator, or a previous
          // recovery's RecoverInDoubt appended it): roll forward.
          Status s = engine.CommitPrepared(rec.txn);
          if (!s.ok()) return ReplayError(rec, s);
          --stats.prepared_restored;
        } else {
          CRITIQUE_RETURN_NOT_OK(engine.Begin(rec.txn));
          auto it = images.find(rec.txn);
          if (it != images.end()) {
            CRITIQUE_RETURN_NOT_OK(ApplyImages(engine, rec.txn, it->second));
            images.erase(it);
          }
          Status s = engine.Commit(rec.txn);
          if (!s.ok()) return ReplayError(rec, s);
        }
        phase[rec.txn] = ReplayPhase::kCommitted;
        ++stats.committed_replayed;
        break;
      }
      case WalRecordType::kAbort: {
        auto ph = phase.find(rec.txn);
        if (ph != phase.end() && ph->second == ReplayPhase::kPrepared) {
          Status s = engine.AbortPrepared(rec.txn);
          if (!s.ok()) return ReplayError(rec, s);
          --stats.prepared_restored;
          ++stats.aborted_discarded;
        }
        // Not prepared: presumed abort already covers it — the images
        // are simply dropped.
        images.erase(rec.txn);
        phase[rec.txn] = ReplayPhase::kAborted;
        break;
      }
      case WalRecordType::kLoad:
        // Bootstrap rows go straight back through the bootstrap path —
        // no transaction, no history entry, exactly like the original
        // Load calls.
        for (const WalWriteImage& img : rec.images) {
          if (!img.row.has_value()) continue;  // loads never delete
          Status s = engine.Load(img.id, *img.row);
          if (!s.ok()) return ReplayError(rec, s);
          ++stats.loads_replayed;
        }
        break;
      case WalRecordType::kDecision:
      case WalRecordType::kDecisionEnd:
        // Coordinator-log records; inert in an engine replay.
        break;
    }
  }

  for (const auto& [txn, ph] : phase) {
    (void)txn;
    if (ph == ReplayPhase::kBegun) ++stats.begun_discarded;
  }
  return stats;
}

std::map<TxnId, bool> ExtractCoordinatorDecisions(
    const std::vector<WalRecord>& records) {
  std::map<TxnId, bool> decisions;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecordType::kDecision) {
      decisions[rec.txn] = rec.commit_decision;
    } else if (rec.type == WalRecordType::kDecisionEnd) {
      decisions.erase(rec.txn);
    }
  }
  return decisions;
}

}  // namespace critique
