#ifndef CRITIQUE_WAL_WAL_WRITER_H_
#define CRITIQUE_WAL_WAL_WRITER_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "critique/common/result.h"
#include "critique/common/status.h"
#include "critique/wal/wal_record.h"

namespace critique {

/// What "make it durable" means for a sync of the log device.
enum class FsyncMode {
  /// No durability barrier: buffered records reach the file only at
  /// `SyncTo`-less shutdown (`Close`).  Ack-before-durable — benches
  /// measuring pure engine cost with the log off the critical path.
  kNone,
  /// Write + flush the stdio stream per sync.  Honest ordering (a crash
  /// of *this process* loses nothing synced) without modeling device
  /// latency; the default.
  kFlush,
  /// kFlush plus a simulated device latency slept per physical sync —
  /// the knob that makes group-commit batching measurable and
  /// deterministic without real fsync(2) noise in CI.
  kSimulated,
  /// kFlush plus a real fdatasync(2) (fsync(2) where unavailable) of the
  /// descriptor per physical sync: power-loss durability, not just
  /// process-crash durability.  The honest production mode — and the one
  /// that makes group commit pay off on a real device.
  kFsync,
};

/// \brief Appends framed records to one log file.
///
/// Records are buffered in user space by `Append` and reach the file only
/// at `SyncTo` — deliberately, because that is the crash model: a "crash"
/// (abandoning the writer, or a failpoint killing it) loses exactly the
/// unsynced suffix, so tests that reopen the file observe precisely what
/// a kill -9 after the last sync would leave.  LSNs are 1-based record
/// sequence numbers, not byte offsets.
///
/// Not thread-safe: `CommitLog` (the group-commit pipeline) serializes
/// access; single-threaded tests and recovery use it directly.
class WalWriter {
 public:
  /// Creates/truncates `path` — a fresh log.  Pass the deployment's
  /// `mode`: under `kFsync` the parent directory is fsynced once so the
  /// new file's directory entry is as durable as the records later
  /// fdatasync'd into it (without this, power loss can drop the unsynced
  /// entry and the whole log with it); other modes don't model power
  /// loss and skip the barrier.
  static Result<WalWriter> Create(const std::string& path,
                                  FsyncMode mode = FsyncMode::kFlush);

  /// Opens `path` for appending after truncating it to `keep_bytes`
  /// (recovery chops the torn tail it measured with `WalReader` before
  /// new records are appended behind it).  Under `kFsync` the truncation
  /// and the directory entry are fsynced before any append, so a crash
  /// cannot resurrect the discarded tail or lose the file.
  static Result<WalWriter> OpenForAppend(const std::string& path,
                                         uint64_t keep_bytes,
                                         FsyncMode mode = FsyncMode::kFlush);

  WalWriter(WalWriter&&) noexcept = default;
  WalWriter& operator=(WalWriter&&) noexcept = default;

  /// Flushes nothing: unsynced buffered records are *meant* to die with
  /// the writer (crash semantics).  Call `Sync` first for a clean
  /// shutdown.
  ~WalWriter() = default;

  /// Buffers `rec`; returns its LSN.  No durability implied.
  uint64_t Append(const WalRecord& rec);

  /// Highest LSN appended (durable or not).
  uint64_t appended_lsn() const { return appended_lsn_; }

  /// Highest LSN the file covers.
  uint64_t durable_lsn() const { return durable_lsn_; }

  /// Moves the whole buffered suffix out for an exclusive syncer to
  /// write; returns {covered lsn, bytes}.  `CommitLog` stages under its
  /// mutex and writes outside it, so appenders keep buffering while the
  /// "device" is busy.
  std::pair<uint64_t, std::string> StagePending();

  /// Writes staged bytes + flushes per `mode` (and sleeps `latency` in
  /// kSimulated mode), then advances `durable_lsn` to `staged_lsn`.
  /// Only one thread may be inside at a time.
  Status WriteStaged(const std::string& bytes, uint64_t staged_lsn,
                     FsyncMode mode, std::chrono::microseconds latency);

  /// Stage + write in one call (single-threaded use).
  Status Sync(FsyncMode mode = FsyncMode::kFlush,
              std::chrono::microseconds latency = {});

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, std::FILE* f)
      : path_(std::move(path)), file_(f) {}

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  std::string path_;
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string buffer_;          ///< appended-but-unsynced framed records
  uint64_t appended_lsn_ = 0;
  uint64_t durable_lsn_ = 0;
};

/// \brief Reads a whole log file, tolerating a torn tail.
struct WalReader {
  /// Parses `path`.  A missing file reads as an empty log (first boot);
  /// real I/O errors surface as a Status.  Corruption never fails: it
  /// marks `torn_tail` and shortens the prefix (see `ReadWalBytes`).
  static Result<WalReadResult> ReadFile(const std::string& path);
};

}  // namespace critique

#endif  // CRITIQUE_WAL_WAL_WRITER_H_
