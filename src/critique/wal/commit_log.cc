#include "critique/wal/commit_log.h"

#include <algorithm>
#include <ostream>

namespace critique {

std::string GroupCommitStats::ToString() const {
  return "appends=" + std::to_string(appends) +
         " syncs=" + std::to_string(syncs) +
         " sync_waits=" + std::to_string(sync_waits) +
         " batched=" + std::to_string(batched) +
         " max_batch=" + std::to_string(max_batch);
}

std::ostream& operator<<(std::ostream& os, const GroupCommitStats& stats) {
  return os << stats.ToString();
}

CommitLog::~CommitLog() {
  // A live log going away is a clean shutdown; a dead one already holds
  // exactly the crash-durable prefix and must stay that way.
  (void)SyncAll();
}

uint64_t CommitLog::Append(const WalRecord& rec) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!dead_.ok()) return 0;
  if (failpoint_ == WalFailpoint::kPreAppend) {
    dead_ = Status::Internal(
        "wal: crashed before append (failpoint); record was never logged");
    return 0;
  }
  ++stats_.appends;
  return writer_.Append(rec);
}

Status CommitLog::SyncRoundLocked(std::unique_lock<std::mutex>& lk) {
  if (failpoint_ == WalFailpoint::kPreSync) {
    dead_ = Status::Internal(
        "wal: crashed before sync (failpoint); unsynced records lost");
    return dead_;
  }
  auto [staged_lsn, bytes] = writer_.StagePending();
  // The device write runs with `mu_` released: while this thread sleeps
  // on the (simulated) fsync, other sessions keep appending — the window
  // group commit batches.  `syncing_` (held by the caller) keeps the
  // writer's file exclusive.
  lk.unlock();
  Status s;
  {
    // Times the device write + (simulated) fsync, i.e. exactly the window
    // other sessions batch behind.
    obs::ScopedTimer t(fsync_hist_);
    s = writer_.WriteStaged(bytes, staged_lsn, options_.fsync_mode,
                            options_.fsync_latency);
  }
  lk.lock();
  ++stats_.syncs;
  if (!s.ok()) {
    dead_ = s;
    return s;
  }
  if (staged_lsn > durable_lsn_) durable_lsn_ = staged_lsn;
  return Status::OK();
}

Status CommitLog::WaitDurable(uint64_t lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!dead_.ok()) return dead_;
  if (lsn == 0) {
    return Status::Internal("wal: WaitDurable on a failed append");
  }
  if (options_.fsync_mode == FsyncMode::kNone) {
    return Status::OK();  // ack-before-durable by configuration
  }

  if (!options_.group_commit) {
    // Single-commit discipline: every committer performs its own
    // physical sync, serialized at the device — one fsync per commit,
    // the throughput ceiling group commit exists to break.  (No
    // piggybacking: a record another committer's flush already covered
    // still pays a full device round here, which is the cost model the
    // --group-commit bench contrasts.)
    ++stats_.sync_waits;
    sync_cv_.wait(lk, [&] { return !syncing_ || !dead_.ok(); });
    if (!dead_.ok()) return dead_;
    syncing_ = true;
    Status s = SyncRoundLocked(lk);
    syncing_ = false;
    batch_hist_.Record(1);  // one committer per sync, by definition
    sync_cv_.notify_all();
    return s;
  }

  // Group commit.
  if (durable_lsn_ >= lsn) return Status::OK();
  if (syncing_) {
    // Follower: park on a future; some leader's round covers this LSN
    // (the record was appended before this call, so the next stage
    // includes it).  No device work on this thread.
    auto waiter = std::make_unique<Waiter>();
    waiter->lsn = lsn;
    std::future<Status> done = waiter->done.get_future();
    waiters_.push_back(std::move(waiter));
    ++stats_.sync_waits;
    lk.unlock();
    return done.get();
  }

  // Leader: batch everything appended so far into one write + one sync,
  // retire covered waiters, repeat until this LSN and every parked
  // follower are durable.
  syncing_ = true;
  ++stats_.sync_waits;
  Status s = Status::OK();
  while (true) {
    s = SyncRoundLocked(lk);
    uint64_t retired = 0;
    auto it = waiters_.begin();
    while (it != waiters_.end()) {
      if (!s.ok() || (*it)->lsn <= durable_lsn_) {
        (*it)->done.set_value(s);
        it = waiters_.erase(it);
        ++retired;
      } else {
        ++it;
      }
    }
    stats_.batched += retired;
    stats_.max_batch = std::max(stats_.max_batch, retired + 1);
    batch_hist_.Record(retired + 1);  // followers retired + the leader
    if (!s.ok()) break;
    if (waiters_.empty() && durable_lsn_ >= lsn) break;
  }
  syncing_ = false;
  sync_cv_.notify_all();
  return s;
}

Status CommitLog::SyncAll() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!dead_.ok()) return dead_;
  sync_cv_.wait(lk, [&] { return !syncing_ || !dead_.ok(); });
  if (!dead_.ok()) return dead_;
  syncing_ = true;
  Status s = SyncRoundLocked(lk);
  syncing_ = false;
  sync_cv_.notify_all();
  return s;
}

void CommitLog::set_failpoint(WalFailpoint f) {
  std::lock_guard<std::mutex> lk(mu_);
  failpoint_ = f;
}

GroupCommitStats CommitLog::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void CommitLog::RegisterMetrics(obs::MetricsRegistry& reg,
                                const std::string& prefix) {
  reg.RegisterGauge(prefix + "appends", [this] { return stats().appends; });
  reg.RegisterGauge(prefix + "syncs", [this] { return stats().syncs; });
  reg.RegisterGauge(prefix + "sync_waits",
                    [this] { return stats().sync_waits; });
  reg.RegisterGauge(prefix + "batched", [this] { return stats().batched; });
  reg.RegisterGauge(prefix + "max_batch",
                    [this] { return stats().max_batch; });
  reg.RegisterHistogram(prefix + "fsync_us", &fsync_hist_);
  reg.RegisterHistogram(prefix + "batch_size", &batch_hist_);
}

}  // namespace critique
