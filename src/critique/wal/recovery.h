#ifndef CRITIQUE_WAL_RECOVERY_H_
#define CRITIQUE_WAL_RECOVERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "critique/common/result.h"
#include "critique/common/status.h"
#include "critique/engine/engine.h"
#include "critique/wal/wal_record.h"

namespace critique {

/// What one WAL replay did (exposed through `Database::wal_recovery`).
struct WalRecoveryStats {
  uint64_t records = 0;             ///< intact records replayed over
  uint64_t loads_replayed = 0;      ///< bootstrap rows restored (kLoad)
  uint64_t committed_replayed = 0;  ///< transactions rolled forward
  /// Prepared-but-undecided transactions re-frozen in doubt, for
  /// `RecoverInDoubt` / presumed abort to resolve.
  uint64_t prepared_restored = 0;
  uint64_t aborted_discarded = 0;   ///< prepared txns with a logged abort
  /// Transactions with redo records but no terminal record: they died
  /// with the crash and presumed abort discards them.
  uint64_t begun_discarded = 0;
  bool torn_tail = false;           ///< the log ended mid-record
  uint64_t valid_bytes = 0;         ///< durable log prefix (kept)
  uint64_t dropped_bytes = 0;       ///< torn tail chopped before append
  TxnId max_txn = 0;                ///< highest id seen (id-allocator floor)

  std::string ToString() const;
};

/// Replays the intact prefix of a WAL into `engine` (fresh, quiescent, no
/// sink attached — replay must not re-log itself).
///
/// Single-threaded, in log order, through the normal engine API with the
/// original transaction ids: `kCommit` re-runs the transaction's redo
/// images and commits; `kPrepare` re-runs them and freezes the
/// participant in doubt (its locks / write-set reservations are re-taken,
/// so the in-doubt window keeps excluding conflicting writers exactly as
/// before the crash); a later `kCommit`/`kAbort` for a prepared
/// transaction resolves it through `CommitPrepared`/`AbortPrepared`.
/// Because the engines append `kCommit` inside the latched section that
/// orders publication, log order IS commit order, so sequential replay
/// can never hit a lock conflict or a First-Committer-Wins refusal — any
/// engine refusal during replay is log corruption and fails loudly.
Result<WalRecoveryStats> ReplayWal(Engine& engine, const WalReadResult& wal);

/// Rebuilds a coordinator's decision map from its decision log:
/// `kDecision` opens an entry, `kDecisionEnd` closes it (all
/// participants acknowledged — nothing left to recover).  Other record
/// types are ignored.
std::map<TxnId, bool> ExtractCoordinatorDecisions(
    const std::vector<WalRecord>& records);

}  // namespace critique

#endif  // CRITIQUE_WAL_RECOVERY_H_
