#include "critique/wal/wal_record.h"

#include <cstring>

namespace critique {
namespace {

// --- little-endian fixed-width primitives ----------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Sequential reader over a payload; every Take checks bounds and flips
/// `ok` sticky-false on underrun, so decode loops stay linear.
struct Cursor {
  const std::string& buf;
  size_t pos = 0;
  bool ok = true;

  explicit Cursor(const std::string& b) : buf(b) {}

  const char* Take(size_t n) {
    if (!ok || buf.size() - pos < n) {
      ok = false;
      return nullptr;
    }
    const char* p = buf.data() + pos;
    pos += n;
    return p;
  }
  uint8_t U8() {
    const char* p = Take(1);
    return p ? static_cast<uint8_t>(*p) : 0;
  }
  uint32_t U32() {
    const char* p = Take(4);
    if (!p) return 0;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
    return v;
  }
  uint64_t U64() {
    const char* p = Take(8);
    if (!p) return 0;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
    return v;
  }
  std::string String() {
    uint32_t n = U32();
    const char* p = Take(n);
    return p ? std::string(p, n) : std::string();
  }
};

// --- Value / Row -----------------------------------------------------------

enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagInt = 1,
  kTagDouble = 2,
  kTagBool = 3,
  kTagString = 4,
};

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, kTagNull);
  } else if (v.is_int()) {
    PutU8(out, kTagInt);
    PutU64(out, static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_double()) {
    PutU8(out, kTagDouble);
    uint64_t bits;
    double d = v.AsDoubleExact();
    std::memcpy(&bits, &d, sizeof(bits));
    PutU64(out, bits);
  } else if (v.is_bool()) {
    PutU8(out, kTagBool);
    PutU8(out, v.AsBool() ? 1 : 0);
  } else {
    PutU8(out, kTagString);
    PutString(out, v.AsString());
  }
}

Value TakeValue(Cursor* c) {
  switch (c->U8()) {
    case kTagNull:
      return Value();
    case kTagInt:
      return Value(static_cast<int64_t>(c->U64()));
    case kTagDouble: {
      uint64_t bits = c->U64();
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kTagBool:
      return Value(c->U8() != 0);
    case kTagString:
      return Value(c->String());
    default:
      c->ok = false;
      return Value();
  }
}

void PutRow(std::string* out, const Row& row) {
  const auto& cols = row.columns();
  PutU32(out, static_cast<uint32_t>(cols.size()));
  for (const auto& [name, value] : cols) {
    PutString(out, name);
    PutValue(out, value);
  }
}

Row TakeRow(Cursor* c) {
  Row row;
  uint32_t n = c->U32();
  for (uint32_t i = 0; i < n && c->ok; ++i) {
    std::string name = c->String();
    row.Set(name, TakeValue(c));
  }
  return row;
}

}  // namespace

const char* WalRecordTypeName(WalRecordType t) {
  switch (t) {
    case WalRecordType::kBegin:
      return "begin";
    case WalRecordType::kWriteSet:
      return "write-set";
    case WalRecordType::kPrepare:
      return "prepare";
    case WalRecordType::kCommit:
      return "commit";
    case WalRecordType::kAbort:
      return "abort";
    case WalRecordType::kDecision:
      return "decision";
    case WalRecordType::kDecisionEnd:
      return "decision-end";
    case WalRecordType::kLoad:
      return "load";
  }
  return "unknown";
}

uint32_t WalCrc32(const void* data, size_t len) {
  // Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) —
  // the torn-tail / corruption guard of the record framing.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<WalWriteImage> WalImagesFromMap(
    const std::map<ItemId, std::optional<Row>>& redo) {
  std::vector<WalWriteImage> images;
  images.reserve(redo.size());
  for (const auto& [id, row] : redo) images.push_back({id, row});
  return images;
}

std::string EncodeWalRecord(const WalRecord& rec) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(rec.type));
  PutU64(&out, rec.txn);
  switch (rec.type) {
    case WalRecordType::kBegin:
    case WalRecordType::kPrepare:
    case WalRecordType::kAbort:
    case WalRecordType::kDecisionEnd:
      break;
    case WalRecordType::kWriteSet:
    case WalRecordType::kLoad:
      PutU32(&out, static_cast<uint32_t>(rec.images.size()));
      for (const WalWriteImage& img : rec.images) {
        PutString(&out, img.id);
        PutU8(&out, img.row.has_value() ? 1 : 0);
        if (img.row.has_value()) PutRow(&out, *img.row);
      }
      break;
    case WalRecordType::kCommit:
      PutU64(&out, rec.commit_ts);
      break;
    case WalRecordType::kDecision:
      PutU8(&out, rec.commit_decision ? 1 : 0);
      break;
  }
  return out;
}

Result<WalRecord> DecodeWalRecord(const std::string& payload) {
  Cursor c(payload);
  WalRecord rec;
  const uint8_t type = c.U8();
  if (type < static_cast<uint8_t>(WalRecordType::kBegin) ||
      type > static_cast<uint8_t>(WalRecordType::kLoad)) {
    return Status::InvalidArgument("wal: unknown record type " +
                                   std::to_string(type));
  }
  rec.type = static_cast<WalRecordType>(type);
  rec.txn = c.U64();
  switch (rec.type) {
    case WalRecordType::kBegin:
    case WalRecordType::kPrepare:
    case WalRecordType::kAbort:
    case WalRecordType::kDecisionEnd:
      break;
    case WalRecordType::kWriteSet:
    case WalRecordType::kLoad: {
      uint32_t n = c.U32();
      for (uint32_t i = 0; i < n && c.ok; ++i) {
        WalWriteImage img;
        img.id = c.String();
        if (c.U8() != 0) img.row = TakeRow(&c);
        rec.images.push_back(std::move(img));
      }
      break;
    }
    case WalRecordType::kCommit:
      rec.commit_ts = c.U64();
      break;
    case WalRecordType::kDecision:
      rec.commit_decision = c.U8() != 0;
      break;
  }
  if (!c.ok) return Status::InvalidArgument("wal: truncated record payload");
  if (c.pos != payload.size()) {
    return Status::InvalidArgument("wal: trailing bytes in record payload");
  }
  return rec;
}

void FrameWalRecord(const WalRecord& rec, std::string* out) {
  const std::string payload = EncodeWalRecord(rec);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, WalCrc32(payload.data(), payload.size()));
  out->append(payload);
}

WalReadResult ReadWalBytes(const std::string& bytes) {
  WalReadResult out;
  out.total_bytes = bytes.size();
  size_t pos = 0;
  while (pos < bytes.size()) {
    // Framing header: [u32 len][u32 crc].  Anything that doesn't parse
    // cleanly from here to the end of the record is a torn tail: the
    // prefix before it is the durable log, the rest never finished
    // reaching the disk.
    if (bytes.size() - pos < 8) break;
    Cursor h(bytes);
    h.pos = pos;
    const uint32_t len = h.U32();
    const uint32_t crc = h.U32();
    if (bytes.size() - h.pos < len) break;
    const std::string payload = bytes.substr(h.pos, len);
    if (WalCrc32(payload.data(), payload.size()) != crc) break;
    Result<WalRecord> rec = DecodeWalRecord(payload);
    if (!rec.ok()) break;
    out.records.push_back(std::move(rec).value());
    pos = h.pos + len;
    out.valid_bytes = pos;
  }
  out.torn_tail = out.valid_bytes != out.total_bytes;
  return out;
}

}  // namespace critique
