#ifndef CRITIQUE_WAL_WAL_SINK_H_
#define CRITIQUE_WAL_WAL_SINK_H_

#include <cstdint>

#include "critique/common/status.h"
#include "critique/wal/wal_record.h"

namespace critique {

/// \brief The durability sink engines (and the 2PC coordinator) emit redo
/// records into.
///
/// Two-step protocol, so latched engine sections stay cheap:
///
///  1. `Append` buffers the record and returns its LSN — called *inside*
///     the engine section that publishes the commit, so log order agrees
///     with commit order;
///  2. `WaitDurable(lsn)` blocks until the record is on the log device —
///     called *after* every engine latch is released, so the fsync wait
///     never serializes other sessions' commits.
///
/// `Append` returning 0 means the log has died (a crash failpoint); the
/// matching `WaitDurable(0)` reports the failure.  Thread-safe.
class WalSink {
 public:
  virtual ~WalSink() = default;

  /// Buffers `rec`; returns its LSN (1-based), or 0 when the log is dead.
  virtual uint64_t Append(const WalRecord& rec) = 0;

  /// Blocks until every record at or below `lsn` is durable.  `lsn` 0
  /// (a dead-log append) answers the log's terminal status.
  virtual Status WaitDurable(uint64_t lsn) = 0;

  /// Append + WaitDurable in one call (coordinator decisions, prepares).
  Status AppendDurable(const WalRecord& rec) {
    return WaitDurable(Append(rec));
  }
};

}  // namespace critique

#endif  // CRITIQUE_WAL_WAL_SINK_H_
