#include "critique/wal/wal_writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

namespace critique {
namespace {

// fsyncs the directory holding `path`: a freshly created log file is only
// durable once its *directory entry* is — fdatasync of the file covers its
// bytes and size, not the name that finds it, and a power loss with the
// entry unsynced makes the whole log vanish.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : path.substr(0, std::max<size_t>(slash, 1));
  int flags = O_RDONLY;
#ifdef O_DIRECTORY
  flags |= O_DIRECTORY;
#endif
  const int fd = ::open(dir.c_str(), flags);
  if (fd < 0) {
    return Status::Internal("wal: cannot open directory '" + dir + "'");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("wal: fsync failed on directory '" + dir + "'");
  }
  return Status::OK();
}

}  // namespace

Result<WalWriter> WalWriter::Create(const std::string& path, FsyncMode mode) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("wal: cannot create '" + path + "'");
  }
  if (mode == FsyncMode::kFsync) {
    Status s = SyncParentDir(path);
    if (!s.ok()) {
      std::fclose(f);
      return s;
    }
  }
  return WalWriter(path, f);
}

Result<WalWriter> WalWriter::OpenForAppend(const std::string& path,
                                           uint64_t keep_bytes,
                                           FsyncMode mode) {
  // Chop the torn tail before anything is appended behind it: a half
  // record left in place would corrupt every record written after it.  A
  // missing file is fine (first boot recovers an empty log and appends
  // from byte 0).
  struct stat st;
  const bool exists = ::stat(path.c_str(), &st) == 0;
  if (exists &&
      ::truncate(path.c_str(), static_cast<off_t>(keep_bytes)) != 0) {
    return Status::Internal("wal: cannot truncate '" + path + "' to " +
                            std::to_string(keep_bytes) + " bytes");
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("wal: cannot open '" + path + "' for append");
  }
  if (mode == FsyncMode::kFsync) {
    // Pin the truncation (an inode change) and the entry itself before
    // records are appended behind them — recovery already decided the
    // torn tail is gone, and a power loss must not resurrect it.
    if (exists && ::fsync(::fileno(f)) != 0) {
      std::fclose(f);
      return Status::Internal("wal: fsync failed on '" + path + "'");
    }
    Status s = SyncParentDir(path);
    if (!s.ok()) {
      std::fclose(f);
      return s;
    }
  }
  return WalWriter(path, f);
}

uint64_t WalWriter::Append(const WalRecord& rec) {
  FrameWalRecord(rec, &buffer_);
  return ++appended_lsn_;
}

std::pair<uint64_t, std::string> WalWriter::StagePending() {
  std::string staged = std::move(buffer_);
  buffer_.clear();
  return {appended_lsn_, std::move(staged)};
}

Status WalWriter::WriteStaged(const std::string& bytes, uint64_t staged_lsn,
                              FsyncMode mode,
                              std::chrono::microseconds latency) {
  if (!bytes.empty()) {
    if (std::fwrite(bytes.data(), 1, bytes.size(), file_.get()) !=
        bytes.size()) {
      return Status::Internal("wal: short write to '" + path_ + "'");
    }
  }
  if (mode != FsyncMode::kNone) {
    if (std::fflush(file_.get()) != 0) {
      return Status::Internal("wal: flush failed on '" + path_ + "'");
    }
    if (mode == FsyncMode::kSimulated &&
        latency > std::chrono::microseconds::zero()) {
      std::this_thread::sleep_for(latency);
    }
    if (mode == FsyncMode::kFsync) {
      // fdatasync suffices: recovery reads only file bytes the data sync
      // covers, and the steadily-growing size reaches the inode with it.
#if defined(__linux__)
      if (::fdatasync(::fileno(file_.get())) != 0) {
#else
      if (::fsync(::fileno(file_.get())) != 0) {
#endif
        return Status::Internal("wal: fsync failed on '" + path_ + "'");
      }
    }
  }
  if (staged_lsn > durable_lsn_) durable_lsn_ = staged_lsn;
  return Status::OK();
}

Status WalWriter::Sync(FsyncMode mode, std::chrono::microseconds latency) {
  auto [lsn, bytes] = StagePending();
  return WriteStaged(bytes, lsn, mode, latency);
}

Result<WalReadResult> WalReader::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // First boot: no log yet is a legitimately empty history, not an
    // error — `Database::Recover` on a fresh path starts empty.
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return WalReadResult{};
    return Status::Internal("wal: cannot open '" + path + "' for read");
  }
  std::string bytes;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("wal: read error on '" + path + "'");
  }
  return ReadWalBytes(bytes);
}

}  // namespace critique
