#ifndef CRITIQUE_WAL_WAL_RECORD_H_
#define CRITIQUE_WAL_WAL_RECORD_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "critique/common/clock.h"
#include "critique/common/result.h"
#include "critique/common/status.h"
#include "critique/history/action.h"
#include "critique/model/row.h"

namespace critique {

/// The redo-record catalog of the write-ahead log (docs/architecture.md,
/// "Durability").  The log is redo-only: engines keep their undo in
/// memory, so recovery replays committed effects forward and never needs
/// before-images.  Presumed abort makes explicit abort records optional —
/// a transaction whose terminal record is missing simply never happened.
enum class WalRecordType : uint8_t {
  /// A transaction began.  Informational (recovery derives liveness from
  /// terminal records), kept because it makes the log self-describing and
  /// lets recovery advance the id allocator past ids that never reached a
  /// terminal.
  kBegin = 1,
  /// The transaction's redo images: one after-image per written item
  /// (nullopt = tombstone).  Written at `Prepare` (so the vote is durable
  /// with its effects) or immediately before `kCommit`.  A later
  /// `kWriteSet` for the same transaction supersedes an earlier one.
  kWriteSet = 2,
  /// 2PC phase 1: the participant validated and froze in doubt.  Always
  /// preceded by its `kWriteSet` and made durable before the engine
  /// answers the coordinator OK — the vote must survive a crash.
  kPrepare = 3,
  /// The transaction committed at `commit_ts` (kInvalidTimestamp for
  /// single-version engines, which have no commit clock; replay order is
  /// log order either way).  Appended inside the engine section that
  /// publishes the versions, so log order agrees with commit order.
  kCommit = 4,
  /// A *prepared* participant took the abort decision.  Never written for
  /// plain aborts: presumed abort already covers every transaction
  /// without a terminal record.
  kAbort = 5,
  /// Coordinator log only: the commit decision for global transaction
  /// `txn` was made durable before phase 2 began.
  kDecision = 6,
  /// Coordinator log only: every participant of `txn` acknowledged the
  /// decision; the entry is closed and recovery may ignore it.
  kDecisionEnd = 7,
  /// A bootstrap `Load` (outside any transaction; `txn` is 0 and
  /// meaningless).  A redo-only log must carry the loaded base rows too,
  /// or recovery would rebuild a database missing every row no
  /// transaction ever rewrote; replay feeds these straight back through
  /// `Engine::Load`.
  kLoad = 8,
};

const char* WalRecordTypeName(WalRecordType t);

/// One redo image: the committed after-state of `id` (nullopt = deleted).
struct WalWriteImage {
  ItemId id;
  std::optional<Row> row;
};

/// Flattens the per-transaction redo map the engines collect (last write
/// per item wins, which the map already enforces) into kWriteSet images.
std::vector<WalWriteImage> WalImagesFromMap(
    const std::map<ItemId, std::optional<Row>>& redo);

/// One log record.  Which fields are meaningful depends on `type`; the
/// rest stay at their defaults and are not serialized.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  TxnId txn = 0;
  Timestamp commit_ts = kInvalidTimestamp;  ///< kCommit only
  std::vector<WalWriteImage> images;        ///< kWriteSet only
  bool commit_decision = false;             ///< kDecision only

  static WalRecord Begin(TxnId txn) {
    return Make(WalRecordType::kBegin, txn);
  }
  static WalRecord WriteSet(TxnId txn, std::vector<WalWriteImage> images) {
    WalRecord r = Make(WalRecordType::kWriteSet, txn);
    r.images = std::move(images);
    return r;
  }
  static WalRecord Prepare(TxnId txn) {
    return Make(WalRecordType::kPrepare, txn);
  }
  static WalRecord Commit(TxnId txn, Timestamp ts) {
    WalRecord r = Make(WalRecordType::kCommit, txn);
    r.commit_ts = ts;
    return r;
  }
  static WalRecord Abort(TxnId txn) {
    return Make(WalRecordType::kAbort, txn);
  }
  static WalRecord Decision(TxnId gid, bool commit) {
    WalRecord r = Make(WalRecordType::kDecision, gid);
    r.commit_decision = commit;
    return r;
  }
  static WalRecord DecisionEnd(TxnId gid) {
    return Make(WalRecordType::kDecisionEnd, gid);
  }
  static WalRecord LoadRow(ItemId id, Row row) {
    WalRecord r = Make(WalRecordType::kLoad, 0);
    r.images.push_back({std::move(id), std::move(row)});
    return r;
  }

 private:
  static WalRecord Make(WalRecordType type, TxnId txn) {
    WalRecord r;
    r.type = type;
    r.txn = txn;
    return r;
  }
};

/// CRC-32 (IEEE 802.3, reflected) over `data` — the per-record checksum
/// of the on-disk framing.
uint32_t WalCrc32(const void* data, size_t len);

/// Serializes one record payload (no framing).
std::string EncodeWalRecord(const WalRecord& rec);

/// Parses one record payload.  InvalidArgument on any structural defect
/// (unknown type, short payload, trailing bytes) — readers treat that as
/// log corruption.
Result<WalRecord> DecodeWalRecord(const std::string& payload);

/// Appends `rec` to `out` with the on-disk framing:
/// [u32 payload length][u32 CRC-32 of payload][payload].
void FrameWalRecord(const WalRecord& rec, std::string* out);

/// What `ReadWalBytes` / `WalReader` found.
struct WalReadResult {
  std::vector<WalRecord> records;  ///< the valid prefix, in log order
  /// True when the log ends mid-record (torn tail: a crash landed between
  /// a buffered append and its sync, or truncated the final sync).  The
  /// valid prefix is still authoritative — exactly the durable state.
  bool torn_tail = false;
  uint64_t valid_bytes = 0;    ///< bytes of intact framed records
  uint64_t total_bytes = 0;    ///< bytes examined (file size)
};

/// Parses a byte buffer of framed records, stopping at the first torn or
/// corrupt record.  Never fails: corruption only shortens the prefix.
WalReadResult ReadWalBytes(const std::string& bytes);

}  // namespace critique

#endif  // CRITIQUE_WAL_WAL_RECORD_H_
