#ifndef CRITIQUE_WAL_COMMIT_LOG_H_
#define CRITIQUE_WAL_COMMIT_LOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "critique/obs/metrics.h"
#include "critique/wal/wal_sink.h"
#include "critique/wal/wal_writer.h"

namespace critique {

/// Injectable crash points for the WAL crash matrix (tests only).  Once a
/// failpoint trips, the log is *dead*: every further call answers
/// kInternal and the file keeps exactly the bytes synced before the trip
/// — the same prefix a kill -9 at that instant would leave.
enum class WalFailpoint {
  kNone,
  /// The next Append dies before buffering: the record never existed.
  kPreAppend,
  /// The next physical sync dies before writing: appended-but-unsynced
  /// records are lost (the post-append / pre-fsync window).
  kPreSync,
};

/// Group-commit observability.
struct GroupCommitStats {
  uint64_t appends = 0;     ///< records appended
  uint64_t syncs = 0;       ///< physical sync operations on the device
  uint64_t sync_waits = 0;  ///< WaitDurable calls that were not already covered
  /// Records made durable by a sync another session led — the batching
  /// win (0 in single-commit mode, where every committer pays its own
  /// sync).
  uint64_t batched = 0;
  uint64_t max_batch = 0;   ///< most waiters one leader round retired

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const GroupCommitStats& stats);

/// \brief The thread-safe durability pipeline over one `WalWriter` —
/// plain per-commit syncs, or leader/follower group commit.
///
/// **Single-commit mode** (`group_commit = false`): every `WaitDurable`
/// performs its own physical sync, serialized on the device mutex — one
/// fsync per commit, the classic pre-group-commit discipline whose
/// throughput ceiling is 1/latency however many sessions commit
/// concurrently.  This is the honest baseline `bench_throughput
/// --group-commit` compares against.
///
/// **Group-commit mode**: the first waiter becomes the *leader*; it
/// stages everything appended so far (one batch = one buffer write + one
/// simulated fsync) and retires it while followers park on futures.
/// Sessions that appended during the leader's device wait are picked up
/// by its next round (or the next leader), so the batch boundary is the
/// group-fsync boundary and N concurrent committers cost ~N/batch
/// syncs.  Futures mean a follower never does device work: it blocks
/// only until some leader's round covers its LSN.
///
/// The writer's buffered-until-sync behavior is what makes the crash
/// matrix honest: records a failpoint or abandoned process never synced
/// are not in the file, so recovery sees exactly the durable prefix.
class CommitLog : public WalSink {
 public:
  struct Options {
    bool group_commit = false;
    FsyncMode fsync_mode = FsyncMode::kFlush;
    /// kSimulated only: device latency slept per physical sync.
    std::chrono::microseconds fsync_latency{25};
  };

  CommitLog(WalWriter writer, Options options)
      : writer_(std::move(writer)), options_(options) {}

  /// Flushes cleanly on destruction (a *live* log going away is a clean
  /// shutdown; crashes are modeled by failpoints or file truncation, not
  /// by destructors).
  ~CommitLog() override;

  uint64_t Append(const WalRecord& rec) override;
  Status WaitDurable(uint64_t lsn) override;

  /// Stages and syncs everything buffered (clean shutdown, tests).
  Status SyncAll();

  /// Installs (or clears, with kNone) a crash point.  A tripped
  /// failpoint is terminal — see `WalFailpoint`.
  void set_failpoint(WalFailpoint f);

  GroupCommitStats stats() const;

  /// Physical-sync (device write + fsync) latency, microseconds.
  const obs::Histogram& fsync_histogram() const { return fsync_hist_; }

  /// Records retired per leader round (the group-commit batch size; every
  /// round records leader + followers, so single-commit mode reads 1s).
  const obs::Histogram& batch_histogram() const { return batch_hist_; }

  /// Registers fsync/batch histograms plus `GroupCommitStats` gauges with
  /// `reg` under `prefix` ("wal." by convention).  The log must outlive
  /// the registry entries.
  void RegisterMetrics(obs::MetricsRegistry& reg, const std::string& prefix);

  const std::string& path() const {
    return writer_.path();  // set at construction; immutable thereafter
  }

 private:
  /// Performs one staged write outside `mu_` (caller holds the leader /
  /// single-committer role via `syncing_`).  Requires `lk` held on
  /// entry; returns with it re-held.
  Status SyncRoundLocked(std::unique_lock<std::mutex>& lk);

  struct Waiter {
    uint64_t lsn = 0;
    std::promise<Status> done;
  };

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;  ///< single-commit sync token queue
  WalWriter writer_;                 ///< mu_, except staged writes (syncing_)
  Options options_;
  bool syncing_ = false;             ///< a thread is at the device
  uint64_t durable_lsn_ = 0;
  Status dead_;                      ///< !ok once a failpoint tripped
  WalFailpoint failpoint_ = WalFailpoint::kNone;
  std::vector<std::unique_ptr<Waiter>> waiters_;  ///< group mode followers
  GroupCommitStats stats_;
  // Internally synchronized (sharded atomics) — recorded outside mu_.
  obs::Histogram fsync_hist_;
  obs::Histogram batch_hist_;
};

}  // namespace critique

#endif  // CRITIQUE_WAL_COMMIT_LOG_H_
