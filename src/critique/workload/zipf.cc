#include "critique/workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace critique {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  cdf_.resize(n_);
  double sum = 0;
  for (uint64_t i = 0; i < n_; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n_; ++i) cdf_[i] /= sum;
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace critique
