#ifndef CRITIQUE_WORKLOAD_PARALLEL_DRIVER_H_
#define CRITIQUE_WORKLOAD_PARALLEL_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "critique/common/random.h"
#include "critique/db/database.h"

namespace critique {

// Referenced only; the shard layer's headers stay out of this one.
class ShardedDatabase;
class ShardedTransaction;

/// Configuration of one `ParallelDriver::Run`.
struct ParallelDriverOptions {
  int threads = 8;                 ///< OS threads driving sessions
  uint64_t txns_per_thread = 100;  ///< `Execute` calls per thread
};

/// Latency percentiles over the `Execute` calls of a run, microseconds.
/// Each sample is one whole `Execute` — body runs, lock waits, and policy
/// retries included — which is the latency an application would see.
struct LatencySummary {
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

/// What one `ParallelDriver::Run` did and how fast.
///
/// Client-side counters (`attempts`/`committed`/`failed`/`retries`) come
/// from the driver's own bookkeeping; `engine_commits`/`engine_aborts` are
/// the engine's stats deltas over the run.  The two views must agree:
/// every attempt plus every retry begins exactly one engine transaction,
/// so `engine_commits + engine_aborts == attempts + retries` — the
/// consistency property the concurrency stress tests assert.
struct ParallelRunStats {
  int threads = 0;
  uint64_t attempts = 0;   ///< Execute calls (all threads)
  uint64_t committed = 0;  ///< Execute calls that returned OK
  uint64_t failed = 0;     ///< Execute calls that gave up
  uint64_t retries = 0;    ///< extra body runs forced by retryable failures
  uint64_t engine_commits = 0;
  uint64_t engine_aborts = 0;  ///< all abort kinds (app/deadlock/serialization)
  double elapsed_seconds = 0;
  LatencySummary latency;

  /// Committed transactions per wall-clock second.
  double txns_per_second() const {
    return elapsed_seconds > 0 ? static_cast<double>(committed) /
                                     elapsed_seconds
                               : 0.0;
  }

  /// Fraction of engine transactions that aborted (any cause).
  double abort_rate() const {
    const uint64_t finished = engine_commits + engine_aborts;
    return finished > 0 ? static_cast<double>(engine_aborts) / finished : 0.0;
  }

  /// One line: "8 thr 1600/1600 ok aborts=12.5% 35k txn/s p50=180us ...".
  std::string ToString() const;
};

/// A transaction body runnable by any worker: operations against `txn`
/// drawing randomness from the worker's own deterministic `rng`.
using TxnBody = std::function<Status(Transaction&, Rng&)>;

/// The thread-aware body form: additionally receives the worker's index
/// in [0, threads), so a workload can partition the keyspace per thread —
/// the disjoint-session mode `bench_throughput --disjoint` uses to
/// measure engine-latch scaling without any data contention.
using TxnBodyIndexed = std::function<Status(Transaction&, Rng&, int)>;

/// \brief Drives N OS threads of closure-style `Execute` bodies against
/// one `Database` — the blocking-mode counterpart of the step-wise
/// cooperative `Runner`.
///
/// Each thread gets an independent deterministic RNG stream (forked from
/// the database RNG before the threads start, so a run is as reproducible
/// as scheduling allows) and calls `Database::Execute(body)`
/// `txns_per_thread` times, timing every call.  The database should be in
/// `ConcurrencyMode::kBlocking`; cooperative databases work only at
/// `threads == 1`.
class ParallelDriver {
 public:
  ParallelDriver(Database& db, ParallelDriverOptions options);

  /// Runs the workload to completion and reports what happened.
  ParallelRunStats Run(const TxnBody& body);

  /// Thread-aware form: the body also receives the worker index.
  ParallelRunStats RunIndexed(const TxnBodyIndexed& body);

  const ParallelDriverOptions& options() const { return options_; }

 private:
  Database& db_;
  ParallelDriverOptions options_;
};

/// A transaction body against a sharded facade; the body decides (through
/// its key choices) whether the transaction stays on one shard or commits
/// through the 2PC coordinator.
using ShardedTxnBody = std::function<Status(ShardedTransaction&, Rng&)>;

/// \brief The sharded counterpart of `ParallelDriver`: N OS threads of
/// `ShardedDatabase::Execute` bodies against one sharded facade (shards in
/// blocking mode), with the same latency/throughput accounting.
///
/// `engine_commits`/`engine_aborts` aggregate across every shard, so the
/// reconciliation invariant becomes: each cross-shard commit records one
/// engine commit *per participant shard* — the sharding tests assert the
/// weaker, always-true direction that client commits never exceed engine
/// commits.
class ShardedParallelDriver {
 public:
  ShardedParallelDriver(ShardedDatabase& db, ParallelDriverOptions options);

  /// Runs the workload to completion and reports what happened.
  ParallelRunStats Run(const ShardedTxnBody& body);

  const ParallelDriverOptions& options() const { return options_; }

 private:
  ShardedDatabase& db_;
  ParallelDriverOptions options_;
};

}  // namespace critique

#endif  // CRITIQUE_WORKLOAD_PARALLEL_DRIVER_H_
