#ifndef CRITIQUE_WORKLOAD_ZIPF_H_
#define CRITIQUE_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "critique/common/random.h"

namespace critique {

/// \brief Zipfian key-choice distribution over [0, n) with skew `theta`
/// (0 = uniform, 0.99 = the YCSB default hot-spot skew).
///
/// Uses the cumulative-probability inversion method with a precomputed
/// table — exact, O(log n) per draw, deterministic in the caller's Rng.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Next key in [0, n); deterministic given the Rng state.
  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(key <= i)
};

}  // namespace critique

#endif  // CRITIQUE_WORKLOAD_ZIPF_H_
