#include "critique/workload/workload.h"

#include "critique/shard/sharded_database.h"

#include <set>

namespace critique {

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(options), zipf_(options.num_items, options.zipf_theta) {}

ItemId WorkloadGenerator::ItemName(uint64_t k) {
  return "i" + std::to_string(k);
}

Status WorkloadGenerator::LoadInitial(Database& db) const {
  for (uint64_t k = 0; k < options_.num_items; ++k) {
    CRITIQUE_RETURN_NOT_OK(
        db.Load(ItemName(k), Value(options_.initial_balance)));
  }
  return Status::OK();
}

Program WorkloadGenerator::MakeMixedTxn(Rng& rng) const {
  Program p;
  for (size_t op = 0; op < options_.ops_per_txn; ++op) {
    ItemId item = ItemName(zipf_.Next(rng));
    if (rng.Chance(options_.write_fraction)) {
      const std::string var = item + "#" + std::to_string(op);
      p.Read(item, var);
      p.WriteComputed(item, [var](const TxnLocals& l) {
        return Value(l.GetInt(var) + 1);
      });
    } else {
      p.Read(item);
    }
  }
  p.Commit();
  return p;
}

Program WorkloadGenerator::MakeReadOnlyTxn(Rng& rng, size_t ops) const {
  Program p;
  for (size_t op = 0; op < ops; ++op) {
    p.Read(ItemName(zipf_.Next(rng)));
  }
  p.Commit();
  return p;
}

Program WorkloadGenerator::MakeUpdateTxn(Rng& rng, size_t ops) const {
  Program p;
  std::set<uint64_t> keys;
  while (keys.size() < ops && keys.size() < options_.num_items) {
    keys.insert(zipf_.Next(rng));
  }
  size_t op = 0;
  for (uint64_t k : keys) {
    ItemId item = ItemName(k);
    const std::string var = item + "#" + std::to_string(op++);
    p.Read(item, var);
    p.WriteComputed(item, [var](const TxnLocals& l) {
      return Value(l.GetInt(var) + 1);
    });
  }
  p.Commit();
  return p;
}

Program WorkloadGenerator::MakeTransferTxn(Rng& rng, int64_t amount) const {
  uint64_t from = zipf_.Next(rng);
  uint64_t to = zipf_.Next(rng);
  if (options_.num_items > 1) {
    while (to == from) to = zipf_.Next(rng);
  }
  ItemId src = ItemName(from), dst = ItemName(to);
  Program p;
  p.Read(src, "src");
  p.WriteComputed(src, [amount](const TxnLocals& l) {
    return Value(l.GetInt("src") - amount);
  });
  p.Read(dst, "dst");
  p.WriteComputed(dst, [amount](const TxnLocals& l) {
    return Value(l.GetInt("dst") + amount);
  });
  p.Commit();
  return p;
}

namespace {

// Scalar payload of an item read, defaulting absent rows to 0.
Result<int64_t> ReadBalance(Transaction& txn, const ItemId& item) {
  CRITIQUE_ASSIGN_OR_RETURN(Value v, txn.GetScalar(item));
  auto n = v.AsNumeric();
  return n.has_value() ? static_cast<int64_t>(*n) : int64_t{0};
}

}  // namespace

Status WorkloadGenerator::ApplyMixedTxn(Transaction& txn, Rng& rng) const {
  for (size_t op = 0; op < options_.ops_per_txn; ++op) {
    ItemId item = ItemName(zipf_.Next(rng));
    if (rng.Chance(options_.write_fraction)) {
      CRITIQUE_ASSIGN_OR_RETURN(int64_t cur, ReadBalance(txn, item));
      CRITIQUE_RETURN_NOT_OK(txn.Put(item, Value(cur + 1)));
    } else {
      CRITIQUE_RETURN_NOT_OK(txn.Get(item).status());
    }
  }
  return Status::OK();
}

Status WorkloadGenerator::ApplyTransferTxn(Transaction& txn, Rng& rng,
                                           int64_t amount) const {
  uint64_t from = zipf_.Next(rng);
  uint64_t to = zipf_.Next(rng);
  if (options_.num_items > 1) {
    while (to == from) to = zipf_.Next(rng);
  }
  ItemId src = ItemName(from), dst = ItemName(to);
  CRITIQUE_ASSIGN_OR_RETURN(int64_t src_bal, ReadBalance(txn, src));
  CRITIQUE_RETURN_NOT_OK(txn.Put(src, Value(src_bal - amount)));
  CRITIQUE_ASSIGN_OR_RETURN(int64_t dst_bal, ReadBalance(txn, dst));
  CRITIQUE_RETURN_NOT_OK(txn.Put(dst, Value(dst_bal + amount)));
  return Status::OK();
}

Program WorkloadGenerator::MakeAuditTxn() const {
  Program p;
  const uint64_t n = options_.num_items;
  for (uint64_t k = 0; k < n; ++k) {
    p.Read(ItemName(k), "b" + std::to_string(k));
  }
  p.Custom(StepKind::kOperation, [n](StepContext& ctx) {
    int64_t sum = 0;
    for (uint64_t k = 0; k < n; ++k) {
      sum += ctx.locals.GetInt("b" + std::to_string(k));
    }
    ctx.locals.Set("sum", sum);
    return Status::OK();
  });
  p.Commit();
  return p;
}

Status WorkloadGenerator::LoadInitial(ShardedDatabase& db) const {
  for (uint64_t k = 0; k < options_.num_items; ++k) {
    CRITIQUE_RETURN_NOT_OK(
        db.Load(ItemName(k), Value(options_.initial_balance)));
  }
  return Status::OK();
}

Status WorkloadGenerator::ApplyShardedTransferTxn(ShardedTransaction& txn,
                                                  Rng& rng, int64_t amount,
                                                  double cross_shard_prob) const {
  const ShardRouter& router = txn.database().router();
  uint64_t from = zipf_.Next(rng);
  const int src_shard = router.ShardOf(ItemName(from));
  const bool want_cross =
      router.num_shards() > 1 && rng.Chance(cross_shard_prob);

  // Draw the destination until it lands on the wanted side of the shard
  // boundary.  Bounded redraws: hash placement may be lopsided for tiny
  // tables, and a transfer with an imperfect placement is still a valid
  // transfer — determinism and forward progress beat exact mix ratios.
  uint64_t to = zipf_.Next(rng);
  for (int draws = 0; draws < 64; ++draws) {
    const bool distinct = to != from || options_.num_items == 1;
    const bool is_cross = router.ShardOf(ItemName(to)) != src_shard;
    if (distinct && is_cross == want_cross) break;
    to = zipf_.Next(rng);
  }
  if (to == from && options_.num_items > 1) {
    to = (from + 1) % options_.num_items;
  }

  ItemId src = ItemName(from), dst = ItemName(to);
  CRITIQUE_ASSIGN_OR_RETURN(Value src_val, txn.GetScalar(src));
  const int64_t src_bal = src_val.is_null() ? 0 : src_val.AsInt();
  CRITIQUE_RETURN_NOT_OK(txn.Put(src, Value(src_bal - amount)));
  CRITIQUE_ASSIGN_OR_RETURN(Value dst_val, txn.GetScalar(dst));
  const int64_t dst_bal = dst_val.is_null() ? 0 : dst_val.AsInt();
  CRITIQUE_RETURN_NOT_OK(txn.Put(dst, Value(dst_bal + amount)));
  return Status::OK();
}

int64_t WorkloadGenerator::TotalBalance(ShardedDatabase& db,
                                        uint64_t num_items) {
  ShardedTransaction txn = db.Begin();
  int64_t sum = 0;
  for (uint64_t k = 0; k < num_items; ++k) {
    auto r = txn.Get(ItemName(k));
    if (!r.ok()) return -1;  // RAII rollback
    if (r->has_value()) {
      auto v = (*r)->scalar().AsNumeric();
      if (v.has_value()) sum += static_cast<int64_t>(*v);
    }
  }
  if (!txn.Commit().ok()) return -1;
  return sum;
}

int64_t WorkloadGenerator::TotalBalance(Database& db, uint64_t num_items) {
  Transaction txn = db.Begin();
  if (!txn.active()) return -1;
  int64_t sum = 0;
  for (uint64_t k = 0; k < num_items; ++k) {
    auto r = txn.Get(ItemName(k));
    if (!r.ok()) return -1;  // RAII rollback
    if (r->has_value()) {
      auto v = (*r)->scalar().AsNumeric();
      if (v.has_value()) sum += static_cast<int64_t>(*v);
    }
  }
  (void)txn.Commit();
  return sum;
}

}  // namespace critique
