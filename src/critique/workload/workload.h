#ifndef CRITIQUE_WORKLOAD_WORKLOAD_H_
#define CRITIQUE_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "critique/common/random.h"
#include "critique/db/database.h"
#include "critique/exec/program.h"
#include "critique/workload/zipf.h"

namespace critique {

// The sharded bodies only take references; keep workload.h free of the
// shard layer's headers (workload.cc includes them).
class ShardedDatabase;
class ShardedTransaction;

/// Parameters of the synthetic transaction mixes used by the benchmark
/// harness for the Section 4.2 performance claims (readers never block /
/// are never blocked under SI; long update transactions starve under
/// First-Committer-Wins).
struct WorkloadOptions {
  uint64_t num_items = 64;        ///< database size (items i0..i{n-1})
  double zipf_theta = 0.0;        ///< key skew; 0 = uniform
  size_t ops_per_txn = 4;         ///< reads+writes per transaction
  double write_fraction = 0.5;    ///< probability an op is a write
  int64_t initial_balance = 100;  ///< initial scalar per item
};

/// \brief Deterministic generator of transaction `Program`s over a scalar
/// item table.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options);

  const WorkloadOptions& options() const { return options_; }

  /// Item id for index `k` ("i0", "i1", ...).
  static ItemId ItemName(uint64_t k);

  /// Loads the initial table into `db`.
  Status LoadInitial(Database& db) const;

  /// A read-write transaction: `ops_per_txn` operations over
  /// Zipf-distributed keys; writes are read-modify-write increments.
  Program MakeMixedTxn(Rng& rng) const;

  /// A read-only transaction touching `ops` random items.
  Program MakeReadOnlyTxn(Rng& rng, size_t ops) const;

  /// An update transaction that touches `ops` distinct items, used for the
  /// long-vs-short contention experiments.
  Program MakeUpdateTxn(Rng& rng, size_t ops) const;

  /// A bank-transfer transaction (H1's shape): moves `amount` between two
  /// distinct random items, preserving the global sum invariant.
  Program MakeTransferTxn(Rng& rng, int64_t amount) const;

  // --- closure-style bodies (Database::Execute / ParallelDriver) ------------
  //
  // The same transaction shapes as the Program builders above, expressed
  // as `Execute` bodies so threaded drivers can run them: same Zipf key
  // choice, same read / read-modify-write mix, deterministic in the
  // caller's Rng.

  /// Runs one mixed transaction's operations inside `txn` (no commit; the
  /// caller — typically `Database::Execute` — owns the terminal).
  Status ApplyMixedTxn(Transaction& txn, Rng& rng) const;

  /// Runs one balance-preserving transfer of `amount` between two distinct
  /// random items inside `txn` (no commit).
  Status ApplyTransferTxn(Transaction& txn, Rng& rng, int64_t amount) const;

  // --- sharded counterparts -------------------------------------------------

  /// Loads the initial table into every shard (routed by the facade).
  Status LoadInitial(ShardedDatabase& db) const;

  /// Runs one balance-preserving transfer inside a sharded transaction:
  /// with probability `cross_shard_prob` the two accounts are *forced*
  /// onto different shards (the transaction commits through 2PC),
  /// otherwise onto the same shard (single-shard fast path) — the knob
  /// the sharding benches sweep.  Falls back gracefully when the facade
  /// has a single shard.
  Status ApplyShardedTransferTxn(ShardedTransaction& txn, Rng& rng,
                                 int64_t amount,
                                 double cross_shard_prob) const;

  /// Sum of all committed balances via a fresh global transaction; -1 on
  /// failure.
  static int64_t TotalBalance(ShardedDatabase& db, uint64_t num_items);

  /// An audit transaction reading every item (the invariant check of the
  /// inconsistent-analysis experiments); stores the sum under "sum".
  Program MakeAuditTxn() const;

  /// Sum of all committed balances via a fresh (auto-id) transaction;
  /// -1 on failure.
  static int64_t TotalBalance(Database& db, uint64_t num_items);

 private:
  WorkloadOptions options_;
  ZipfGenerator zipf_;
};

}  // namespace critique

#endif  // CRITIQUE_WORKLOAD_WORKLOAD_H_
