#include "critique/workload/parallel_driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "critique/shard/sharded_database.h"

namespace critique {
namespace {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// The thread/timing/percentile core both drivers share: `per_thread`
/// calls of `one_txn(rng)` on each of `threads` workers, each worker
/// owning the pre-forked RNG stream of matching index.  Fills every field
/// of the stats except the engine-side deltas and `retries`, which only
/// the caller can take.
ParallelRunStats RunWorkers(int threads, uint64_t per_thread,
                            std::vector<Rng>& rngs,
                            const std::function<Status(Rng&, int)>& one_txn) {
  struct WorkerResult {
    uint64_t committed = 0;
    uint64_t failed = 0;
    std::vector<double> latencies_us;
  };

  std::vector<WorkerResult> results(static_cast<size_t>(threads));
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        WorkerResult& out = results[static_cast<size_t>(t)];
        out.latencies_us.reserve(per_thread);
        Rng& rng = rngs[static_cast<size_t>(t)];
        for (uint64_t i = 0; i < per_thread; ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          Status s = one_txn(rng, t);
          const auto t1 = std::chrono::steady_clock::now();
          out.latencies_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          if (s.ok()) {
            ++out.committed;
          } else {
            ++out.failed;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  const auto end = std::chrono::steady_clock::now();

  ParallelRunStats stats;
  stats.threads = threads;
  stats.elapsed_seconds = std::chrono::duration<double>(end - start).count();
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(threads) * per_thread);
  for (const WorkerResult& r : results) {
    stats.committed += r.committed;
    stats.failed += r.failed;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  stats.attempts = stats.committed + stats.failed;

  std::sort(latencies.begin(), latencies.end());
  stats.latency.p50_us = PercentileSorted(latencies, 0.50);
  stats.latency.p90_us = PercentileSorted(latencies, 0.90);
  stats.latency.p99_us = PercentileSorted(latencies, 0.99);
  stats.latency.max_us = latencies.empty() ? 0 : latencies.back();
  return stats;
}

}  // namespace

std::string ParallelRunStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%d thr %llu/%llu ok aborts=%.1f%% %.0f txn/s "
                "p50=%.0fus p90=%.0fus p99=%.0fus",
                threads, static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(attempts), 100 * abort_rate(),
                txns_per_second(), latency.p50_us, latency.p90_us,
                latency.p99_us);
  return buf;
}

ParallelDriver::ParallelDriver(Database& db, ParallelDriverOptions options)
    : db_(db), options_(options) {
  if (options_.threads < 1) options_.threads = 1;
}

ParallelRunStats ParallelDriver::Run(const TxnBody& body) {
  return RunIndexed(
      [&body](Transaction& txn, Rng& rng, int thread) {
        (void)thread;
        return body(txn, rng);
      });
}

ParallelRunStats ParallelDriver::RunIndexed(const TxnBodyIndexed& body) {
  // Fork the per-thread RNG streams up front: deterministic whatever order
  // the threads later interleave in.
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) rngs.push_back(db_.ForkRng());

  const EngineStats before = db_.StatsSnapshot();
  const uint64_t retries_before = db_.execute_retries();

  ParallelRunStats stats =
      RunWorkers(options_.threads, options_.txns_per_thread, rngs,
                 [&](Rng& rng, int thread) {
                   return db_.Execute([&](Transaction& txn) {
                     return body(txn, rng, thread);
                   });
                 });
  stats.retries = db_.execute_retries() - retries_before;

  const EngineStats after = db_.StatsSnapshot();
  stats.engine_commits = after.commits - before.commits;
  stats.engine_aborts = after.total_aborts() - before.total_aborts();
  return stats;
}

ShardedParallelDriver::ShardedParallelDriver(ShardedDatabase& db,
                                             ParallelDriverOptions options)
    : db_(db), options_(options) {
  if (options_.threads < 1) options_.threads = 1;
}

ParallelRunStats ShardedParallelDriver::Run(const ShardedTxnBody& body) {
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) rngs.push_back(db_.ForkRng());

  const EngineStats before = db_.StatsAggregate();
  const uint64_t retries_before = db_.execute_retries();

  ParallelRunStats stats =
      RunWorkers(options_.threads, options_.txns_per_thread, rngs,
                 [&](Rng& rng, int thread) {
                   (void)thread;
                   return db_.Execute([&](ShardedTransaction& txn) {
                     return body(txn, rng);
                   });
                 });
  stats.retries = db_.execute_retries() - retries_before;

  const EngineStats after = db_.StatsAggregate();
  stats.engine_commits = after.commits - before.commits;
  stats.engine_aborts = after.total_aborts() - before.total_aborts();
  return stats;
}

}  // namespace critique
