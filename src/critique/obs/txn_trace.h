#ifndef CRITIQUE_OBS_TXN_TRACE_H_
#define CRITIQUE_OBS_TXN_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "critique/history/action.h"

namespace critique {
namespace obs {

/// Lifecycle points a transaction passes through.
enum class TraceEventType {
  kBegin,
  kOp,       ///< one engine operation (read/write/predicate/cursor)
  kPark,     ///< session parked on kWouldBlock
  kWakeup,   ///< lock-release wakeup delivered
  kPrepare,  ///< 2PC phase 1 completed (in doubt)
  kCommit,
  kAbort,
};

/// Why a transaction aborted, in the paper's taxonomy (Berenson et al.,
/// Section 4): deadlock victim under locking, First-Committer/Updater-Wins
/// under Snapshot Isolation, dangerous-structure refusal under SSI, and the
/// 2PC decision-time revalidation abort of a certifying participant.
enum class AbortReason {
  kNone,                  ///< not an abort event
  kExplicit,              ///< application ROLLBACK
  kDeadlockVictim,        ///< lock manager chose this txn as victim
  kFirstCommitterWins,    ///< FCW / first-updater-wins conflict (SI)
  kSsiDangerousStructure, ///< rw-antidependency pivot refusal (SSI)
  kInDoubtDecision,       ///< CommitPrepared revalidation refusal (2PC)
  kLockTimeout,           ///< blocking lock wait exhausted its budget
};

std::string_view TraceEventTypeName(TraceEventType t);
std::string_view AbortReasonName(AbortReason r);

/// One recorded event.
struct TraceEvent {
  uint64_t seq = 0;     ///< global record order (dense, 1-based)
  uint64_t micros = 0;  ///< steady-clock microseconds since tracer creation
  TxnId txn = 0;
  TraceEventType type = TraceEventType::kOp;
  AbortReason reason = AbortReason::kNone;
  std::string detail;  ///< free-form ("item 'x'", a refusal message, ...)

  std::string ToString() const;
};

/// \brief Opt-in fixed-capacity ring buffer of transaction lifecycle
/// events.
///
/// The tracer exists to answer "what happened to txn 17?" after the fact:
/// engines, the lock wakeup path, and the session executor append events;
/// `Dump(txn)` returns that transaction's surviving events in order.  The
/// ring overwrites oldest-first — `dropped()` says how many events are
/// gone — so recent history is always intact and memory is bounded no
/// matter how long the run.  A mutex serializes appends: tracing is a
/// diagnosis tool enabled per `Database` (`DbOptions::trace_events`), not
/// an always-on hot-path instrument like `obs::Counter`.
class TxnTracer {
 public:
  explicit TxnTracer(size_t capacity = 4096);

  void Record(TxnId txn, TraceEventType type,
              AbortReason reason = AbortReason::kNone,
              std::string detail = std::string());

  /// Events still in the ring for `txn`, in record order.
  std::vector<TraceEvent> Dump(TxnId txn) const;

  /// Human-readable dump of `txn`'s events, one per line.
  std::string Format(TxnId txn) const;

  size_t capacity() const { return capacity_; }
  /// Events overwritten so far (ring wrapped).
  uint64_t dropped() const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  ///< grows to capacity_, then wraps
  size_t next_ = 0;               ///< ring_[next_] is overwritten next
  uint64_t seq_ = 0;
};

}  // namespace obs
}  // namespace critique

#endif  // CRITIQUE_OBS_TXN_TRACE_H_
