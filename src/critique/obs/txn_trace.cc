#include "critique/obs/txn_trace.h"

#include <algorithm>
#include <cstdio>

namespace critique {
namespace obs {

std::string_view TraceEventTypeName(TraceEventType t) {
  switch (t) {
    case TraceEventType::kBegin:
      return "begin";
    case TraceEventType::kOp:
      return "op";
    case TraceEventType::kPark:
      return "park";
    case TraceEventType::kWakeup:
      return "wakeup";
    case TraceEventType::kPrepare:
      return "prepare";
    case TraceEventType::kCommit:
      return "commit";
    case TraceEventType::kAbort:
      return "abort";
  }
  return "?";
}

std::string_view AbortReasonName(AbortReason r) {
  switch (r) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kExplicit:
      return "explicit-rollback";
    case AbortReason::kDeadlockVictim:
      return "deadlock-victim";
    case AbortReason::kFirstCommitterWins:
      return "first-committer-wins";
    case AbortReason::kSsiDangerousStructure:
      return "ssi-dangerous-structure";
    case AbortReason::kInDoubtDecision:
      return "in-doubt-decision";
    case AbortReason::kLockTimeout:
      return "lock-wait-timeout";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%8llu us] t%d %s",
                (unsigned long long)micros, txn,
                std::string(TraceEventTypeName(type)).c_str());
  std::string out(buf);
  if (reason != AbortReason::kNone) {
    out += " reason=";
    out += AbortReasonName(reason);
  }
  if (!detail.empty()) {
    out += " ";
    out += detail;
  }
  return out;
}

TxnTracer::TxnTracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      start_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

void TxnTracer::Record(TxnId txn, TraceEventType type, AbortReason reason,
                       std::string detail) {
  TraceEvent e;
  e.micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  e.txn = txn;
  e.type = type;
  e.reason = reason;
  e.detail = std::move(detail);
  std::lock_guard<std::mutex> lk(mu_);
  e.seq = ++seq_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<TraceEvent> TxnTracer::Dump(TxnId txn) const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const TraceEvent& e : ring_) {
      if (e.txn == txn) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string TxnTracer::Format(TxnId txn) const {
  std::string out;
  for (const TraceEvent& e : Dump(txn)) {
    out += e.ToString();
    out += "\n";
  }
  if (out.empty()) out = "(no events recorded for this transaction)\n";
  return out;
}

uint64_t TxnTracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return seq_ > ring_.size() ? seq_ - ring_.size() : 0;
}

}  // namespace obs
}  // namespace critique
