#include "critique/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace critique {
namespace obs {

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

namespace internal {
size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace internal

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the requested percentile, 1-based; ceil so p=100 -> count.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * double(count) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      uint64_t bound = Histogram::BucketUpperBound(b);
      // The recorded max is exact; never report a bound past it.
      return std::min(bound, max);
    }
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const auto& s : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
      snap.buckets[b] += n;
      snap.count += n;
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void MetricsRegistry::RegisterCounter(std::string name, const Counter* c) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.push_back(
      Entry{std::move(name), MetricSample::Kind::kCounter, c, nullptr, {}});
}

void MetricsRegistry::RegisterHistogram(std::string name, const Histogram* h) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.push_back(
      Entry{std::move(name), MetricSample::Kind::kHistogram, nullptr, h, {}});
}

void MetricsRegistry::RegisterGauge(std::string name,
                                    std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.push_back(Entry{std::move(name), MetricSample::Kind::kGauge,
                           nullptr, nullptr, std::move(fn)});
}

void MetricsRegistry::Unregister(const std::string& prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return e.name.compare(0, prefix.size(),
                                                        prefix) == 0;
                                }),
                 entries_.end());
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  std::vector<MetricSample> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.reserve(entries_.size());
    for (const Entry& e : entries_) {
      MetricSample s;
      s.name = e.name;
      s.kind = e.kind;
      switch (e.kind) {
        case MetricSample::Kind::kCounter:
          s.value = e.counter->Value();
          break;
        case MetricSample::Kind::kGauge:
          s.value = e.gauge();
          break;
        case MetricSample::Kind::kHistogram:
          s.histogram = e.histogram->Snapshot();
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const MetricSample& s : Collect()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << s.name << "\":";
    if (s.kind == MetricSample::Kind::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
         << ",\"p50\":" << h.Percentile(50) << ",\"p95\":" << h.Percentile(95)
         << ",\"p99\":" << h.Percentile(99) << ",\"max\":" << h.max << "}";
    } else {
      os << s.value;
    }
  }
  os << "}";
  return os.str();
}

std::string MetricsRegistry::ToText() const {
  std::ostringstream os;
  for (const MetricSample& s : Collect()) {
    if (s.kind == MetricSample::Kind::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                    (unsigned long long)h.count, h.Mean(),
                    (unsigned long long)h.Percentile(50),
                    (unsigned long long)h.Percentile(95),
                    (unsigned long long)h.Percentile(99),
                    (unsigned long long)h.max);
      os << s.name << ": " << buf << "\n";
    } else {
      os << s.name << ": " << s.value << "\n";
    }
  }
  return os.str();
}

}  // namespace obs
}  // namespace critique
