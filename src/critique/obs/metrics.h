#ifndef CRITIQUE_OBS_METRICS_H_
#define CRITIQUE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace critique {
namespace obs {

/// \brief Always-on measurement substrate: sharded counters, log2 latency
/// histograms, and a registry that exports them as JSON or text.
///
/// Everything here is built for the hot path: `Counter::Add` and
/// `Histogram::Record` are one relaxed atomic RMW on a per-thread shard
/// (plus a relaxed max probe for histograms), no locks, no allocation.
/// Reads (`Value`, `Snapshot`) sum the shards; they are monotonic but not
/// a consistent cut — exactly the right trade for monitoring counters.
///
/// The global enable switch exists so the overhead of the instrumentation
/// itself can be measured A/B on one binary (`bench_obs`): recording
/// checks it with one relaxed load and becomes a no-op when off.  It is
/// process-global and meant to be flipped only between runs, not
/// concurrently with them.

/// Flips the process-global recording switch (default: on).
void SetMetricsEnabled(bool enabled);

/// Current state of the recording switch (one relaxed load).
bool MetricsEnabled();

namespace internal {
/// Round-robin thread shard index, assigned on first use per thread.
/// Two threads may share a shard past `kShards` — correctness never
/// depends on exclusivity, only contention does.
size_t ThreadShardIndex();
constexpr size_t kShards = 16;
}  // namespace internal

/// A monotonic counter sharded across cache lines so concurrent writers
/// from different threads do not bounce one hot line.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[internal::ThreadShardIndex() % internal::kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards (relaxed; monotonic, not a consistent cut).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, internal::kShards> shards_{};
};

/// Point-in-time view of a `Histogram`; percentiles are computed from the
/// bucket counts (each answer is the inclusive upper bound of the bucket
/// the requested rank falls into, so reported percentiles are
/// conservative: never below the true value, at most one power of two
/// above it).
struct HistogramSnapshot {
  /// Bucket b counts values v with 2^(b-1) <= v < 2^b (bucket 0: v == 0).
  static constexpr size_t kBuckets = 48;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kBuckets> buckets{};

  /// Value at percentile `p` in [0, 100]; 0 when empty.
  uint64_t Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
};

/// Fixed-bucket log2 histogram for latencies (microseconds by convention).
/// 48 buckets cover [0, 2^47) — two-plus days in microseconds, with no
/// branch on range in the record path (values are clamped into the last
/// bucket).
class Histogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  void Record(uint64_t value) {
    if (!MetricsEnabled()) return;
    Shard& s = shards_[internal::ThreadShardIndex() % internal::kShards];
    s.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value && !max_.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

  /// log2 bucket index: 0 for 0, else floor(log2(v)) + 1, clamped.
  static size_t BucketOf(uint64_t v) {
    if (v == 0) return 0;
    size_t b = 64 - static_cast<size_t>(__builtin_clzll(v));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `b` (what `Percentile` reports).
  static uint64_t BucketUpperBound(size_t b) {
    return b == 0 ? 0 : (uint64_t{1} << b) - 1;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, internal::kShards> shards_{};
  std::atomic<uint64_t> max_{0};
};

/// Records elapsed wall time (microseconds, steady clock) into a histogram
/// when destroyed.  The clock is only read when metrics are enabled, so a
/// disabled build point costs two relaxed loads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : hist_(&h), armed_(MetricsEnabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!armed_) return;
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// One exported metric in a `MetricsRegistry::Collect` snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t value = 0;           ///< counters and gauges
  HistogramSnapshot histogram;  ///< histograms only
};

/// \brief Name -> instrument catalog with JSON and text export.
///
/// The registry stores *pointers* to instruments owned elsewhere (the
/// lock manager owns its wait histogram, the WAL its fsync histogram, and
/// so on); registration is cold-path and mutex-guarded, recording never
/// touches the registry at all.  Owners whose lifetime is shorter than
/// the registry's (e.g. a `SessionExecutor`) must `Unregister` their
/// prefix before dying.
class MetricsRegistry {
 public:
  void RegisterCounter(std::string name, const Counter* c);
  void RegisterHistogram(std::string name, const Histogram* h);
  /// A gauge is sampled through `fn` at collect time (e.g. a queue depth
  /// read from an atomic, or a field of a stats snapshot).
  void RegisterGauge(std::string name, std::function<uint64_t()> fn);

  /// Removes every entry whose name starts with `prefix`.
  void Unregister(const std::string& prefix);

  /// Samples every registered instrument, sorted by name.
  std::vector<MetricSample> Collect() const;

  /// {"name": value, ..., "hist": {"count":..,"p50":..,...}, ...}
  std::string ToJson() const;

  /// One metric per line, histograms with count/mean/p50/p95/p99/max.
  std::string ToText() const;

 private:
  struct Entry {
    std::string name;
    MetricSample::Kind kind;
    const Counter* counter = nullptr;
    const Histogram* histogram = nullptr;
    std::function<uint64_t()> gauge;
  };
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace obs
}  // namespace critique

#endif  // CRITIQUE_OBS_METRICS_H_
