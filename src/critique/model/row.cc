#include "critique/model/row.h"

namespace critique {

std::string Row::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : columns_) {
    if (!first) out += ", ";
    first = false;
    out += name;
    out += ": ";
    out += value.ToString();
  }
  out += "}";
  return out;
}

}  // namespace critique
