#include "critique/model/predicate.h"

#include <cmath>
#include <limits>
#include <map>
#include <optional>

namespace critique {

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace internal {

struct PredicateNode {
  enum class Kind { kAll, kCmp, kKeyIs, kAnd, kOr, kNot } kind;
  // kCmp
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value constant;
  // kKeyIs
  ItemId key;
  // kAnd/kOr/kNot (kNot uses only `left`)
  std::shared_ptr<const PredicateNode> left, right;
};

}  // namespace internal

using internal::PredicateNode;

namespace {

std::shared_ptr<PredicateNode> NewNode(PredicateNode::Kind kind) {
  auto n = std::make_shared<PredicateNode>();
  n->kind = kind;
  return n;
}

bool EvalCmp(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs.Equals(rhs);
    case CompareOp::kNe:
      // SQL-ish: NULL <> x is unknown -> false.
      if (lhs.is_null() || rhs.is_null()) return false;
      return !lhs.Equals(rhs);
    default: {
      auto c = lhs.Compare(rhs);
      if (!c) return false;
      switch (op) {
        case CompareOp::kLt:
          return *c < 0;
        case CompareOp::kLe:
          return *c <= 0;
        case CompareOp::kGt:
          return *c > 0;
        case CompareOp::kGe:
          return *c >= 0;
        default:
          return false;
      }
    }
  }
}

bool EvalNode(const PredicateNode* n, const ItemId& id, const Row& row) {
  switch (n->kind) {
    case PredicateNode::Kind::kAll:
      return true;
    case PredicateNode::Kind::kCmp:
      return EvalCmp(row.Get(n->column), n->op, n->constant);
    case PredicateNode::Kind::kKeyIs:
      return id == n->key;
    case PredicateNode::Kind::kAnd:
      return EvalNode(n->left.get(), id, row) &&
             EvalNode(n->right.get(), id, row);
    case PredicateNode::Kind::kOr:
      return EvalNode(n->left.get(), id, row) ||
             EvalNode(n->right.get(), id, row);
    case PredicateNode::Kind::kNot:
      return !EvalNode(n->left.get(), id, row);
  }
  return false;
}

// --- Disjointness analysis -------------------------------------------------
//
// A predicate is summarized, when possible, as a per-column numeric interval
// plus optional exact constraints (for conjunctions only).  Two summaries
// with a common column whose intervals do not intersect — or with distinct
// exact keys — prove disjointness.  Anything not summarizable makes
// MayOverlap answer the conservative true.

struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_open = false;
  bool hi_open = false;

  bool Empty() const {
    if (lo > hi) return true;
    if (lo == hi && (lo_open || hi_open)) return true;
    return false;
  }

  static Interval Intersect(const Interval& a, const Interval& b) {
    Interval out;
    if (a.lo > b.lo || (a.lo == b.lo && a.lo_open)) {
      out.lo = a.lo;
      out.lo_open = a.lo_open;
    } else {
      out.lo = b.lo;
      out.lo_open = b.lo_open;
    }
    if (a.hi < b.hi || (a.hi == b.hi && a.hi_open)) {
      out.hi = a.hi;
      out.hi_open = a.hi_open;
    } else {
      out.hi = b.hi;
      out.hi_open = b.hi_open;
    }
    return out;
  }

  static bool Disjoint(const Interval& a, const Interval& b) {
    return Intersect(a, b).Empty();
  }
};

struct Summary {
  std::map<std::string, Interval> columns;
  std::optional<ItemId> exact_key;
  std::map<std::string, Value> exact_values;  // string/bool equality
  bool empty = false;  // conjunction proven unsatisfiable
};

std::optional<Summary> Summarize(const PredicateNode* n) {
  switch (n->kind) {
    case PredicateNode::Kind::kAll:
      return Summary{};
    case PredicateNode::Kind::kKeyIs: {
      Summary s;
      s.exact_key = n->key;
      return s;
    }
    case PredicateNode::Kind::kCmp: {
      Summary s;
      auto num = n->constant.AsNumeric();
      if (num) {
        Interval iv;
        switch (n->op) {
          case CompareOp::kEq:
            iv.lo = iv.hi = *num;
            break;
          case CompareOp::kLt:
            iv.hi = *num;
            iv.hi_open = true;
            break;
          case CompareOp::kLe:
            iv.hi = *num;
            break;
          case CompareOp::kGt:
            iv.lo = *num;
            iv.lo_open = true;
            break;
          case CompareOp::kGe:
            iv.lo = *num;
            break;
          case CompareOp::kNe:
            return std::nullopt;  // not an interval
        }
        s.columns[n->column] = iv;
        return s;
      }
      if (n->op == CompareOp::kEq &&
          (n->constant.is_string() || n->constant.is_bool())) {
        s.exact_values[n->column] = n->constant;
        return s;
      }
      return std::nullopt;
    }
    case PredicateNode::Kind::kAnd: {
      auto l = Summarize(n->left.get());
      auto r = Summarize(n->right.get());
      if (!l || !r) return std::nullopt;
      Summary s = *l;
      s.empty = l->empty || r->empty;
      for (const auto& [col, iv] : r->columns) {
        auto it = s.columns.find(col);
        if (it == s.columns.end()) {
          s.columns[col] = iv;
        } else {
          it->second = Interval::Intersect(it->second, iv);
        }
        if (s.columns[col].Empty()) s.empty = true;
      }
      if (r->exact_key) {
        if (s.exact_key && *s.exact_key != *r->exact_key) s.empty = true;
        s.exact_key = r->exact_key;
      }
      for (const auto& [col, v] : r->exact_values) {
        auto it = s.exact_values.find(col);
        if (it != s.exact_values.end() && !(it->second == v)) s.empty = true;
        s.exact_values[col] = v;
      }
      return s;
    }
    default:
      return std::nullopt;
  }
}

bool ProvablyDisjoint(const Summary& a, const Summary& b) {
  if (a.empty || b.empty) return true;
  if (a.exact_key && b.exact_key && *a.exact_key != *b.exact_key) return true;
  for (const auto& [col, iva] : a.columns) {
    auto it = b.columns.find(col);
    if (it != b.columns.end() && Interval::Disjoint(iva, it->second)) {
      return true;
    }
  }
  for (const auto& [col, va] : a.exact_values) {
    auto it = b.exact_values.find(col);
    if (it != b.exact_values.end() && !(va == it->second)) return true;
  }
  return false;
}

std::string NodeToString(const PredicateNode* n) {
  switch (n->kind) {
    case PredicateNode::Kind::kAll:
      return "TRUE";
    case PredicateNode::Kind::kCmp:
      return n->column + " " + CompareOpName(n->op) + " " +
             n->constant.ToString();
    case PredicateNode::Kind::kKeyIs:
      return "key = '" + n->key + "'";
    case PredicateNode::Kind::kAnd:
      return "(" + NodeToString(n->left.get()) + " AND " +
             NodeToString(n->right.get()) + ")";
    case PredicateNode::Kind::kOr:
      return "(" + NodeToString(n->left.get()) + " OR " +
             NodeToString(n->right.get()) + ")";
    case PredicateNode::Kind::kNot:
      return "NOT (" + NodeToString(n->left.get()) + ")";
  }
  return "?";
}

bool NodeEquals(const PredicateNode* a, const PredicateNode* b) {
  if (a == b) return true;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case PredicateNode::Kind::kAll:
      return true;
    case PredicateNode::Kind::kCmp:
      return a->column == b->column && a->op == b->op &&
             a->constant == b->constant;
    case PredicateNode::Kind::kKeyIs:
      return a->key == b->key;
    case PredicateNode::Kind::kNot:
      return NodeEquals(a->left.get(), b->left.get());
    case PredicateNode::Kind::kAnd:
    case PredicateNode::Kind::kOr:
      return NodeEquals(a->left.get(), b->left.get()) &&
             NodeEquals(a->right.get(), b->right.get());
  }
  return false;
}

}  // namespace

Predicate Predicate::All() {
  return Predicate(NewNode(PredicateNode::Kind::kAll));
}

Predicate Predicate::Cmp(std::string column, CompareOp op, Value constant) {
  auto n = NewNode(PredicateNode::Kind::kCmp);
  n->column = std::move(column);
  n->op = op;
  n->constant = std::move(constant);
  return Predicate(std::move(n));
}

Predicate Predicate::KeyIs(ItemId id) {
  auto n = NewNode(PredicateNode::Kind::kKeyIs);
  n->key = std::move(id);
  return Predicate(std::move(n));
}

Predicate Predicate::And(Predicate a, Predicate b) {
  auto n = NewNode(PredicateNode::Kind::kAnd);
  n->left = std::move(a.node_);
  n->right = std::move(b.node_);
  return Predicate(std::move(n));
}

Predicate Predicate::Or(Predicate a, Predicate b) {
  auto n = NewNode(PredicateNode::Kind::kOr);
  n->left = std::move(a.node_);
  n->right = std::move(b.node_);
  return Predicate(std::move(n));
}

Predicate Predicate::Not(Predicate a) {
  auto n = NewNode(PredicateNode::Kind::kNot);
  n->left = std::move(a.node_);
  return Predicate(std::move(n));
}

bool Predicate::Covers(const ItemId& id, const Row& row) const {
  return EvalNode(node_.get(), id, row);
}

bool Predicate::MayOverlap(const Predicate& other) const {
  auto a = Summarize(node_.get());
  auto b = Summarize(other.node_.get());
  if (!a || !b) return true;  // not analyzable -> conservative
  return !ProvablyDisjoint(*a, *b);
}

std::string Predicate::ToString() const { return NodeToString(node_.get()); }

bool Predicate::operator==(const Predicate& other) const {
  return NodeEquals(node_.get(), other.node_.get());
}

}  // namespace critique
