#ifndef CRITIQUE_MODEL_VALUE_H_
#define CRITIQUE_MODEL_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace critique {

/// \brief A dynamically typed SQL-ish scalar: NULL, INTEGER, DOUBLE,
/// TEXT, or BOOLEAN.
///
/// Values are the cell type of `Row` and the constant type of `Predicate`
/// comparisons.  Comparisons across INTEGER and DOUBLE coerce numerically;
/// any comparison involving NULL is "unknown" and evaluates to false
/// (a deliberately simplified two-valued reading of SQL's three-valued
/// logic — the paper's histories never rely on NULL semantics).
class Value {
 public:
  /// Constructs NULL.
  Value() : repr_(std::monostate{}) {}
  Value(int64_t v) : repr_(v) {}             // NOLINT(runtime/explicit)
  Value(int v) : repr_(int64_t{v}) {}        // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}              // NOLINT(runtime/explicit)
  Value(bool v) : repr_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Integer payload; asserts when not an INTEGER.
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  /// Double payload; asserts when not a DOUBLE.
  double AsDoubleExact() const { return std::get<double>(repr_); }
  /// Boolean payload; asserts when not a BOOLEAN.
  bool AsBool() const { return std::get<bool>(repr_); }
  /// String payload; asserts when not TEXT.
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric value widened to double; NULL/TEXT/BOOLEAN yield nullopt.
  std::optional<double> AsNumeric() const;

  /// Strict equality: same type (modulo numeric widening) and same value.
  /// NULL == NULL is false, matching SQL comparison semantics.
  bool Equals(const Value& other) const;

  /// Three-way comparison for orderable pairs; nullopt when incomparable
  /// (NULL involved, or mismatched non-numeric types).
  std::optional<int> Compare(const Value& other) const;

  /// SQL-literal-ish rendering ("NULL", "42", "3.5", "'abc'", "TRUE").
  std::string ToString() const;

  /// Total order usable as a container key (type tag first, then value;
  /// distinct from SQL comparison — NULLs are equal here).
  bool operator<(const Value& other) const;
  bool operator==(const Value& other) const { return KeyEquals(other); }

 private:
  /// Container-key equality (NULL equals NULL).
  bool KeyEquals(const Value& other) const;

  std::variant<std::monostate, int64_t, double, bool, std::string> repr_;
};

}  // namespace critique

#endif  // CRITIQUE_MODEL_VALUE_H_
