#ifndef CRITIQUE_MODEL_PREDICATE_H_
#define CRITIQUE_MODEL_PREDICATE_H_

#include <memory>
#include <string>

#include "critique/model/row.h"
#include "critique/model/value.h"

namespace critique {

namespace internal {
struct PredicateNode;  // implementation detail, defined in predicate.cc
}  // namespace internal

/// Comparison operators usable in a <search condition> leaf.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief An immutable <search condition> over rows: the predicate of
/// predicate reads (`r1[P]`) and predicate locks.
///
/// A predicate covers the (possibly infinite) set of data items that satisfy
/// it — including *phantom* items not currently in the database (Section 2.3
/// of the paper).  Coverage is therefore evaluated against row images
/// (before- or after-images of writes), never against "current" storage
/// state alone.
///
/// `Predicate` has cheap value semantics (shared immutable tree).
class Predicate {
 public:
  /// The predicate TRUE: covers every data item (a whole-table read).
  static Predicate All();

  /// Leaf comparison `column <op> constant`, e.g. Cmp("hours", kGt, 4).
  static Predicate Cmp(std::string column, CompareOp op, Value constant);

  /// The item-lock predicate: "key = <id>".  Per the paper, "an item lock
  /// (record lock) is a predicate lock where the predicate names the
  /// specific record".
  static Predicate KeyIs(ItemId id);

  /// Conjunction / disjunction / negation.
  static Predicate And(Predicate a, Predicate b);
  static Predicate Or(Predicate a, Predicate b);
  static Predicate Not(Predicate a);

  /// True when the item (`id`, `row`) satisfies this predicate.
  bool Covers(const ItemId& id, const Row& row) const;

  /// Conservative test: can some item satisfy both predicates?
  ///
  /// Returns false only when the two predicates are *provably* disjoint
  /// (per-column interval reasoning over conjunctions, or distinct item
  /// keys); returns true otherwise.  A conservative `true` only makes
  /// predicate locking stricter, never unsound.
  bool MayOverlap(const Predicate& other) const;

  /// SQL-flavoured rendering, e.g. "(active = TRUE AND hours > 4)".
  std::string ToString() const;

  /// Structural equality (same tree shape and constants).
  bool operator==(const Predicate& other) const;

 private:
  explicit Predicate(std::shared_ptr<const internal::PredicateNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const internal::PredicateNode> node_;
};

/// Rendering of a comparison operator ("=", "<>", "<", "<=", ">", ">=").
std::string CompareOpName(CompareOp op);

}  // namespace critique

#endif  // CRITIQUE_MODEL_PREDICATE_H_
