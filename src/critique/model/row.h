#ifndef CRITIQUE_MODEL_ROW_H_
#define CRITIQUE_MODEL_ROW_H_

#include <map>
#include <string>

#include "critique/model/value.h"

namespace critique {

/// Name of a data item / row key.  The paper's data items "x", "y", "z"
/// are rows keyed by these names.
using ItemId = std::string;

/// \brief A named tuple: the broad-interpretation "data item" of [EGLT].
///
/// A `Row` is a bag of named columns.  The degenerate single-column form
/// (column "val") models the paper's scalar items; multi-column rows carry
/// the attributes that predicates (<search condition>) range over, e.g.
/// `active`, `hours`, `balance`.
class Row {
 public:
  Row() = default;

  /// Convenience: a scalar item holding `v` in column "val".
  static Row Scalar(Value v) {
    Row r;
    r.Set("val", std::move(v));
    return r;
  }

  /// Sets (or overwrites) a column.  Returns *this for chaining.
  Row& Set(const std::string& column, Value v) {
    columns_[column] = std::move(v);
    return *this;
  }

  /// Column value; NULL when the column is absent.
  Value Get(const std::string& column) const {
    auto it = columns_.find(column);
    return it == columns_.end() ? Value() : it->second;
  }

  /// True when the column is present (even if NULL).
  bool Has(const std::string& column) const {
    return columns_.find(column) != columns_.end();
  }

  /// The scalar payload (column "val"); NULL if absent.
  Value scalar() const { return Get("val"); }

  const std::map<std::string, Value>& columns() const { return columns_; }

  /// "{a: 1, b: 'x'}" rendering for logs and test failure messages.
  std::string ToString() const;

  bool operator==(const Row& other) const { return columns_ == other.columns_; }

 private:
  std::map<std::string, Value> columns_;
};

}  // namespace critique

#endif  // CRITIQUE_MODEL_ROW_H_
