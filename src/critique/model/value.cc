#include "critique/model/value.h"

#include <cmath>

namespace critique {

std::optional<double> Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDoubleExact();
  return std::nullopt;
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) {
    return *AsNumeric() == *other.AsNumeric();
  }
  if (is_bool() && other.is_bool()) return AsBool() == other.AsBool();
  if (is_string() && other.is_string()) return AsString() == other.AsString();
  return false;
}

std::optional<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) return std::nullopt;
  if (is_numeric() && other.is_numeric()) {
    double a = *AsNumeric(), b = *other.AsNumeric();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  return std::nullopt;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    double d = AsDoubleExact();
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      return std::to_string(static_cast<int64_t>(d)) + ".0";
    }
    return std::to_string(d);
  }
  if (is_bool()) return AsBool() ? "TRUE" : "FALSE";
  return "'" + AsString() + "'";
}

namespace {
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_numeric()) return 1;
  if (v.is_bool()) return 2;
  return 3;
}
}  // namespace

bool Value::operator<(const Value& other) const {
  int ra = TypeRank(*this), rb = TypeRank(other);
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0:
      return false;  // NULL == NULL as keys
    case 1:
      return *AsNumeric() < *other.AsNumeric();
    case 2:
      return AsBool() < other.AsBool();
    default:
      return AsString() < other.AsString();
  }
}

bool Value::KeyEquals(const Value& other) const {
  return !(*this < other) && !(other < *this);
}

}  // namespace critique
