#ifndef CRITIQUE_CHECK_ONLINE_CHECKER_H_
#define CRITIQUE_CHECK_ONLINE_CHECKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "critique/engine/isolation.h"
#include "critique/history/action.h"

namespace critique {
namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace check {

/// \brief Tuning knobs for the online checker.
struct CheckerOptions {
  /// Automatic pruning cadence: a watermark prune pass runs every this
  /// many ingested commits (0 disables automatic pruning; `Prune()` can
  /// still be called explicitly, e.g. from the version-GC path).
  uint32_t prune_interval = 256;

  /// Cap on retained violation records (counters keep counting past it).
  size_t max_recorded_violations = 32;
};

/// \brief One certification failure: a committed transaction whose
/// declared isolation level forbids the structure it participated in.
struct CheckerViolation {
  TxnId txn = 0;            ///< the transaction the verdict is charged to
  std::string kind;         ///< "dirty-read" or "cycle"
  std::string detail;       ///< human-readable account (cycle path, levels)
};

/// \brief Snapshot of the checker's verdicts and bookkeeping.
///
/// `violations` counts anomalies some participant's declared level
/// forbids; `allowed_anomalies` counts MVSG cycles that are excused
/// because every guarantee on the cycle is kept (some transaction's
/// declared level permits its role in the structure — e.g. write skew
/// among Snapshot Isolation transactions, lost updates among Read
/// Committed ones).  A run of stock engines at truthfully-declared
/// levels must report `violations == 0`.
struct CheckerReport {
  uint64_t commits_certified = 0;   ///< committed txns fully ingested
  uint64_t aborts_observed = 0;     ///< aborted txns ingested (not judged)
  uint64_t violations = 0;          ///< contract-breaking anomalies
  uint64_t allowed_anomalies = 0;   ///< cycles excused by a weak level
  uint64_t dirty_reads_allowed = 0; ///< dirty reads at Degree0/ReadUncommitted
  uint64_t edges_added = 0;         ///< distinct MVSG edges inserted
  uint64_t cycle_checks = 0;        ///< backward insertions that ran a DFS
  uint64_t nodes_pruned = 0;        ///< committed nodes retired by watermark
  uint64_t live_nodes = 0;          ///< graph nodes currently retained
  uint64_t peak_live_nodes = 0;     ///< high-water mark of live_nodes
  std::vector<CheckerViolation> first_violations;  ///< capped sample

  bool ok() const { return violations == 0; }
  std::string ToString() const;
};

/// \brief Incremental online multiversion serialization-graph checker.
///
/// Maintains the MVSG of [BHG] Chapter 5 as commits stream in, instead
/// of rebuilding it per history (`MVSerializationGraph::Build`).  Edge
/// rules mirror the offline builder exactly — version order per item is
/// commit order, `ww` between adjacent versions, `wr` creator→reader,
/// `rw` reader→creator of the *immediate next* version — so on a fully
/// committed multiversion history the two agree on acyclicity.
///
/// Three extensions over the offline builder:
///
///  * **Incremental cycle detection.**  Nodes enter the graph at commit,
///    so node order is commit order and `ww`/`wr` edges always point
///    forward; only `rw` anti-dependencies can point backward.  A
///    Pearce–Kelly style bounded DFS runs only on backward insertions
///    (the write-skew shapes), keeping per-commit cost near-constant on
///    conflict-free workloads.
///
///  * **Pruning watermark.**  The checker counts ingested commits
///    ("epochs") and records each transaction's first-seen epoch at
///    registration (`BeginTxn`, called *before* the engine begin, so a
///    transaction's snapshot can never predate its registration epoch).
///    The watermark is the minimum first-seen epoch over open
///    transactions: a committed node older than the watermark can gain
///    no new in-edge, and once its in-degree reaches zero it can sit on
///    no future cycle and is retired (Kahn-style cascade).  Superseded
///    versions older than the watermark are dropped the same way, so
///    memory is bounded by the concurrency window, not history length.
///    (`BeginAtTimestamp` reads below the pruned horizon are the one
///    exception: their edges are silently skipped, never misjudged.)
///
///  * **Per-transaction levels.**  Each transaction is judged against
///    its *declared* isolation level (the paper's Table 4 contract): a
///    detected cycle is an allowed anomaly iff some participant's level
///    permits its role in it — Degree 0 / Read Uncommitted permit any
///    role; Read Committed–class levels permit an outgoing
///    anti-dependency (fuzzy reads, lost updates); Snapshot Isolation
///    permits being the pivot of consecutive anti-dependencies (write
///    skew, per Fekete et al.'s cycle-structure theorem); Repeatable
///    Read and the serializable levels permit nothing.  Excused cycles
///    are broken by excising the excusing edge so certification
///    continues.  Predicate reads are not tracked online (item-level
///    graph only), which is what keeps Repeatable Read free of false
///    positives — phantom analysis stays with the offline analyzers.
///
/// Reads in single-version histories (the locking engines record no
/// version subscripts) have their observed creator inferred from the
/// in-place store discipline: the last uncommitted writer if one is
/// live, else the last committed version.
///
/// Thread safety: all entry points lock one internal mutex.  `Ingest` is
/// designed to be called from `EngineRecorder`'s action observer (i.e.
/// under the recorder mutex), which gives the checker exactly the
/// recorded total order; the checker never calls back into the engine.
class OnlineChecker {
 public:
  explicit OnlineChecker(CheckerOptions options = {});

  /// Level assumed for transactions never declared via `BeginTxn`.
  void SetDefaultLevel(IsolationLevel level);

  /// Registers an open transaction and its declared level.  Must be
  /// called before the engine's Begin so the registration epoch lower-
  /// bounds the snapshot (Database does this).  Idempotent per id.
  void BeginTxn(TxnId txn, IsolationLevel level);

  /// Withdraws a registration that never produced actions (an engine
  /// Begin that was refused).  No-op if the transaction has activity.
  void CancelTxn(TxnId txn);

  /// Feeds one recorded action, in history order.
  void Ingest(const Action& a);

  /// Runs a watermark prune pass; returns the number of nodes retired.
  /// Also invoked automatically every `prune_interval` commits.
  size_t Prune();

  CheckerReport Report() const;
  uint64_t live_nodes() const;

  /// Exposes verdict counters and graph-size gauges as `<prefix>*`.
  void RegisterMetrics(obs::MetricsRegistry& reg, const std::string& prefix);

  // Edge kinds between one ordered node pair, as a bitmask: a pair may
  // carry several conflict kinds, and excusability requires the pair to
  // be a *pure* anti-dependency.
  enum EdgeBits : uint8_t { kWw = 1, kWr = 2, kRw = 4 };

 private:
  enum class TxnStatus : uint8_t { kOpen, kCommitted, kAborted };

  struct Node {
    IsolationLevel level = IsolationLevel::kSerializable;
    TxnStatus status = TxnStatus::kOpen;
    uint64_t first_seen_epoch = 0;
    uint64_t commit_epoch = 0;
    uint64_t ord = 0;        // topological position (assigned at commit)
    bool dirty_read = false; // observed another txn's uncommitted write
    std::string dirty_detail;  // first dirty observation: item + creator
    // Observed reads: (item, creator) -> true.  One entry per distinct
    // observed version (statement-snapshot levels may observe several
    // versions of one item).
    std::map<std::pair<ItemId, TxnId>, bool> reads;
    std::vector<ItemId> writes;  // distinct items written, insertion order
    std::map<TxnId, uint8_t> out;  // committed-graph adjacency (edge mask)
    std::map<TxnId, uint8_t> in;   // reverse adjacency
  };

  struct VersionEntry {
    TxnId creator = kInitialTxn;
    uint64_t commit_epoch = 0;
    // Readers registered on this version (edges materialize lazily when
    // both endpoints commit).
    std::map<TxnId, bool> readers;
  };

  struct ItemState {
    // Committed versions in commit order; pruned from the front.  The
    // initial version (kInitialTxn) is versions[0] conceptually — it is
    // represented by `initial_readers` instead of an entry.
    std::vector<VersionEntry> versions;
    std::map<TxnId, bool> initial_readers;
    bool initial_pruned = false;  // initial version below the watermark
    // Single-version inference: last writer whose write is not yet
    // terminal (kInitialTxn = none).
    TxnId live_writer = kInitialTxn;
  };

  Node& Touch(TxnId txn);
  void IngestLocked(const Action& a);
  void IngestRead(const Action& a);
  void IngestWrite(const Action& a, const std::vector<ItemId>& items);
  void IngestCommit(TxnId txn);
  void IngestAbort(TxnId txn);
  void AddEdge(TxnId from, TxnId to, uint8_t kind);
  void RemoveEdge(TxnId from, TxnId to);
  // Finds a path `from` -> ... -> `to` through nodes with ord <= max_ord;
  // returns the node sequence (empty when unreachable).
  std::vector<TxnId> FindPath(TxnId from, TxnId to, uint64_t max_ord);
  void ResolveCycle(TxnId from, TxnId to);
  void JudgeDirtyRead(Node& n, TxnId txn);
  size_t PruneLocked();
  uint64_t WatermarkLocked() const;
  void RecordViolation(TxnId txn, const std::string& kind,
                       const std::string& detail);

  CheckerOptions options_;
  IsolationLevel default_level_ = IsolationLevel::kSerializable;

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;       // commits ingested so far
  uint64_t next_ord_ = 1;    // topological-order allocator
  uint64_t commits_since_prune_ = 0;
  std::unordered_map<TxnId, Node> nodes_;
  std::unordered_map<ItemId, ItemState> items_;
  // Reads of still-uncommitted creators, keyed by creator: merged into
  // the creator's version entry at its commit, dropped at its abort.
  std::map<std::pair<ItemId, TxnId>, std::map<TxnId, bool>> pending_reads_;
  // Aborted txn ids still referenced by open readers: id -> abort epoch.
  std::unordered_map<TxnId, uint64_t> aborted_;
  CheckerReport report_;
};

/// True when `level` forbids reading another transaction's uncommitted
/// writes (every level at or above Read Committed in Figure 2).
bool LevelForbidsDirtyRead(IsolationLevel level);

}  // namespace check
}  // namespace critique

#endif  // CRITIQUE_CHECK_ONLINE_CHECKER_H_
