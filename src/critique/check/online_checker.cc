#include "critique/check/online_checker.h"

#include <algorithm>
#include <sstream>

#include "critique/obs/metrics.h"

namespace critique {
namespace check {

namespace {

const char* EdgeName(uint8_t mask) {
  switch (mask) {
    case OnlineChecker::kWw:
      return "ww";
    case OnlineChecker::kWr:
      return "wr";
    case OnlineChecker::kRw:
      return "rw";
    default:
      return "mixed";
  }
}

}  // namespace

bool LevelForbidsDirtyRead(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kDegree0:
    case IsolationLevel::kReadUncommitted:
      return false;
    default:
      return true;
  }
}

std::string CheckerReport::ToString() const {
  std::ostringstream os;
  os << "certified=" << commits_certified << " violations=" << violations
     << " allowed_anomalies=" << allowed_anomalies
     << " dirty_reads_allowed=" << dirty_reads_allowed
     << " edges=" << edges_added << " cycle_checks=" << cycle_checks
     << " live_nodes=" << live_nodes << " peak_live_nodes=" << peak_live_nodes
     << " pruned=" << nodes_pruned;
  for (const auto& v : first_violations) {
    os << "\n  T" << v.txn << " " << v.kind << ": " << v.detail;
  }
  return os.str();
}

OnlineChecker::OnlineChecker(CheckerOptions options)
    : options_(options) {}

void OnlineChecker::SetDefaultLevel(IsolationLevel level) {
  std::lock_guard<std::mutex> lk(mu_);
  default_level_ = level;
}

void OnlineChecker::BeginTxn(TxnId txn, IsolationLevel level) {
  if (txn == kInitialTxn) return;
  std::lock_guard<std::mutex> lk(mu_);
  Node& n = Touch(txn);
  if (n.status == TxnStatus::kOpen) n.level = level;
}

void OnlineChecker::CancelTxn(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = nodes_.find(txn);
  if (it == nodes_.end()) return;
  const Node& n = it->second;
  if (n.status == TxnStatus::kOpen && n.reads.empty() && n.writes.empty()) {
    nodes_.erase(it);
  }
}

void OnlineChecker::Ingest(const Action& a) {
  if (a.txn == kInitialTxn) return;
  std::lock_guard<std::mutex> lk(mu_);
  IngestLocked(a);
}

void OnlineChecker::IngestLocked(const Action& a) {
  switch (a.type) {
    case Action::Type::kRead:
    case Action::Type::kCursorRead:
      IngestRead(a);
      break;
    case Action::Type::kWrite:
    case Action::Type::kCursorWrite:
    case Action::Type::kPredicateWrite:
      IngestWrite(a, WrittenItems(a));
      break;
    case Action::Type::kPredicateRead:
      // Predicate reads are deliberately not tracked online: the graph is
      // item-level, so phantom-only anomalies stay with the offline
      // analyzers and Repeatable Read is never falsely accused.
      Touch(a.txn);
      break;
    case Action::Type::kCommit:
      IngestCommit(a.txn);
      break;
    case Action::Type::kAbort:
      IngestAbort(a.txn);
      break;
  }
}

OnlineChecker::Node& OnlineChecker::Touch(TxnId txn) {
  auto [it, inserted] = nodes_.try_emplace(txn);
  if (inserted) {
    it->second.level = default_level_;
    it->second.first_seen_epoch = epoch_;
  }
  return it->second;
}

void OnlineChecker::IngestRead(const Action& a) {
  Node& n = Touch(a.txn);
  if (n.status != TxnStatus::kOpen) return;
  ItemState& item = items_[a.item];
  TxnId creator;
  if (a.version.has_value()) {
    creator = *a.version;
  } else {
    // Single-version history: the in-place store exposes the last
    // uncommitted writer when one is live, else the last committed write.
    creator = item.live_writer != kInitialTxn
                  ? item.live_writer
                  : (item.versions.empty() ? kInitialTxn
                                           : item.versions.back().creator);
  }
  if (creator == a.txn) return;  // reading one's own write
  n.reads[{a.item, creator}] = true;
  if (creator == kInitialTxn) {
    if (!item.initial_pruned) item.initial_readers[a.txn] = true;
    return;
  }
  auto cit = nodes_.find(creator);
  if (cit != nodes_.end() && cit->second.status == TxnStatus::kOpen) {
    // Dirty read: the wr edge (and any successor) materializes if and
    // when the creator commits; judged against the reader's level at the
    // reader's commit.
    if (!n.dirty_read) {
      n.dirty_detail = "read " + a.item + " from open T" +
                       std::to_string(creator);
    }
    n.dirty_read = true;
    pending_reads_[{a.item, creator}][a.txn] = true;
    return;
  }
  if (aborted_.count(creator) != 0) {
    if (!n.dirty_read) {
      n.dirty_detail = "read " + a.item + " from aborted T" +
                       std::to_string(creator);
    }
    n.dirty_read = true;  // observed data that never committed
    return;
  }
  // Committed creator (its node may already be pruned; the version entry
  // is what matters for future anti-dependencies).
  for (auto vit = item.versions.rbegin(); vit != item.versions.rend(); ++vit) {
    if (vit->creator == creator) {
      vit->readers[a.txn] = true;
      break;
    }
  }
}

void OnlineChecker::IngestWrite(const Action& a,
                                const std::vector<ItemId>& written) {
  Node& n = Touch(a.txn);
  if (n.status != TxnStatus::kOpen) return;
  for (const ItemId& id : written) {
    if (std::find(n.writes.begin(), n.writes.end(), id) == n.writes.end()) {
      n.writes.push_back(id);
    }
    items_[id].live_writer = a.txn;
  }
}

void OnlineChecker::IngestCommit(TxnId txn) {
  Node& n = Touch(txn);
  if (n.status != TxnStatus::kOpen) return;
  const uint64_t e = ++epoch_;
  n.status = TxnStatus::kCommitted;
  n.commit_epoch = e;
  n.ord = next_ord_++;
  ++report_.commits_certified;
  JudgeDirtyRead(n, txn);

  // Reads: wr edge from each committed creator, rw edge to the creator of
  // the immediate next version when it already exists (mirrors the
  // offline builder; readers of a still-latest version get their rw edge
  // from the superseding writer's commit below).
  for (const auto& [key, unused] : n.reads) {
    (void)unused;
    const auto& [item_id, creator] = key;
    auto iit = items_.find(item_id);
    if (iit == items_.end()) continue;
    ItemState& item = iit->second;
    if (creator == kInitialTxn) {
      if (item.initial_pruned) continue;
      if (!item.versions.empty() && item.versions.front().creator != txn) {
        AddEdge(txn, item.versions.front().creator, kRw);
      }
      continue;
    }
    auto cit = nodes_.find(creator);
    if (cit != nodes_.end() && cit->second.status == TxnStatus::kOpen) {
      continue;  // still pending; the creator's commit flushes the edges
    }
    if (aborted_.count(creator) != 0) continue;
    AddEdge(creator, txn, kWr);
    for (size_t i = item.versions.size(); i-- > 0;) {
      if (item.versions[i].creator != creator) continue;
      if (i + 1 < item.versions.size() &&
          item.versions[i + 1].creator != txn) {
        AddEdge(txn, item.versions[i + 1].creator, kRw);
      }
      break;
    }
  }

  // Writes: this commit appends one version per written item (version
  // order is commit order), drawing ww from the previous version's
  // creator and rw from its committed readers, and flushing wr edges to
  // any committed transaction that read this one's formerly-dirty data.
  for (const ItemId& item_id : n.writes) {
    ItemState& item = items_[item_id];
    if (item.live_writer == txn) item.live_writer = kInitialTxn;
    VersionEntry entry;
    entry.creator = txn;
    entry.commit_epoch = e;
    auto pit = pending_reads_.find({item_id, txn});
    if (pit != pending_reads_.end()) {
      entry.readers = std::move(pit->second);
      pending_reads_.erase(pit);
    }
    if (item.versions.empty()) {
      if (!item.initial_pruned) {
        for (const auto& [r, unused] : item.initial_readers) {
          (void)unused;
          if (r != txn) AddEdge(r, txn, kRw);
        }
      }
    } else {
      const VersionEntry& prev = item.versions.back();
      if (prev.creator != txn) AddEdge(prev.creator, txn, kWw);
      for (const auto& [r, unused] : prev.readers) {
        (void)unused;
        if (r != txn) AddEdge(r, txn, kRw);
      }
    }
    for (const auto& [r, unused] : entry.readers) {
      (void)unused;
      if (r != txn) AddEdge(txn, r, kWr);
    }
    item.versions.push_back(std::move(entry));
  }

  report_.peak_live_nodes =
      std::max<uint64_t>(report_.peak_live_nodes, nodes_.size());
  if (options_.prune_interval != 0 &&
      ++commits_since_prune_ >= options_.prune_interval) {
    PruneLocked();
  }
}

void OnlineChecker::IngestAbort(TxnId txn) {
  Node& n = Touch(txn);
  if (n.status != TxnStatus::kOpen) return;
  ++report_.aborts_observed;
  for (const ItemId& item_id : n.writes) {
    ItemState& item = items_[item_id];
    if (item.live_writer == txn) item.live_writer = kInitialTxn;
    pending_reads_.erase({item_id, txn});
  }
  nodes_.erase(txn);
  aborted_[txn] = epoch_;
}

void OnlineChecker::JudgeDirtyRead(Node& n, TxnId txn) {
  if (!n.dirty_read) return;
  if (LevelForbidsDirtyRead(n.level)) {
    RecordViolation(txn, "dirty-read",
                    n.dirty_detail + " while declared " +
                        IsolationLevelName(n.level));
  } else {
    ++report_.dirty_reads_allowed;
  }
}

void OnlineChecker::AddEdge(TxnId from, TxnId to, uint8_t kind) {
  if (from == to || from == kInitialTxn || to == kInitialTxn) return;
  auto fit = nodes_.find(from);
  auto tit = nodes_.find(to);
  if (fit == nodes_.end() || tit == nodes_.end()) return;  // pruned/aborted
  Node& f = fit->second;
  Node& t = tit->second;
  if (f.status != TxnStatus::kCommitted || t.status != TxnStatus::kCommitted) {
    return;
  }
  uint8_t& mask = f.out[to];
  const bool new_pair = (mask == 0);
  if ((mask & kind) != 0 && !new_pair) return;
  mask |= kind;
  t.in[from] = mask;
  if (!new_pair) return;
  ++report_.edges_added;
  if (f.ord < t.ord) return;  // forward edge keeps the order valid
  ++report_.cycle_checks;
  ResolveCycle(from, to);
}

void OnlineChecker::RemoveEdge(TxnId from, TxnId to) {
  auto fit = nodes_.find(from);
  if (fit != nodes_.end()) fit->second.out.erase(to);
  auto tit = nodes_.find(to);
  if (tit != nodes_.end()) tit->second.in.erase(from);
}

std::vector<TxnId> OnlineChecker::FindPath(TxnId from, TxnId to,
                                           uint64_t max_ord) {
  std::map<TxnId, TxnId> parent;
  std::vector<TxnId> stack{from};
  parent[from] = from;
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (cur == to) {
      std::vector<TxnId> path;
      for (TxnId x = to;; x = parent[x]) {
        path.push_back(x);
        if (x == from) break;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    const Node& n = nodes_.at(cur);
    for (const auto& [next, unused] : n.out) {
      (void)unused;
      if (parent.count(next) != 0) continue;
      auto nit = nodes_.find(next);
      if (nit == nodes_.end() || nit->second.ord > max_ord) continue;
      parent[next] = cur;
      stack.push_back(next);
    }
  }
  return {};
}

void OnlineChecker::ResolveCycle(TxnId from, TxnId to) {
  // The new edge from->to points backward in the maintained topological
  // order.  Repeatedly look for a closing path to->...->from; each cycle
  // found is judged against its participants' declared levels and then
  // broken (by excising the excusing edge, or the new edge on a
  // violation) so certification continues on an acyclic graph.
  while (true) {
    auto fit = nodes_.find(from);
    auto tit = nodes_.find(to);
    if (fit == nodes_.end() || tit == nodes_.end()) return;
    if (fit->second.out.count(to) == 0) return;  // the new edge was excised
    const uint64_t max_ord = fit->second.ord;
    std::vector<TxnId> path = FindPath(to, from, max_ord);
    if (path.empty()) break;  // acyclic again; restore the order below

    // The cycle is path[0]=to -> ... -> path[k]=from plus from->to.
    const size_t k = path.size();
    auto out_mask = [&](size_t i) {
      TxnId u = path[i];
      TxnId v = (i + 1 < k) ? path[i + 1] : to;
      return nodes_.at(u).out.at(v);
    };
    auto in_mask = [&](size_t i) {
      return out_mask((i + k - 1) % k);
    };
    std::optional<size_t> excuser;
    for (size_t i = 0; i < k && !excuser.has_value(); ++i) {
      switch (nodes_.at(path[i]).level) {
        case IsolationLevel::kDegree0:
        case IsolationLevel::kReadUncommitted:
          excuser = i;
          break;
        case IsolationLevel::kReadCommitted:
        case IsolationLevel::kCursorStability:
        case IsolationLevel::kOracleReadConsistency:
          // A pure outgoing anti-dependency: the level never promised
          // repeatable reads, so fuzzy reads / lost updates are its due.
          if (out_mask(i) == kRw) excuser = i;
          break;
        case IsolationLevel::kSnapshotIsolation:
          // The pivot of consecutive anti-dependencies (write skew): the
          // one cycle shape plain SI admits (Fekete et al.).  A ww or wr
          // edge at the pivot would mean first-committer-wins or the
          // snapshot discipline failed — never excused.
          if (out_mask(i) == kRw && in_mask(i) == kRw) excuser = i;
          break;
        default:
          break;  // RR and the serializable levels excuse nothing
      }
    }

    std::ostringstream cyc;
    for (size_t i = 0; i < k; ++i) {
      cyc << "T" << path[i] << "("
          << IsolationLevelName(nodes_.at(path[i]).level) << ") -"
          << EdgeName(out_mask(i)) << "-> ";
    }
    cyc << "T" << path[0];

    if (excuser.has_value()) {
      ++report_.allowed_anomalies;
      const size_t i = *excuser;
      TxnId u = path[i];
      TxnId v = (i + 1 < k) ? path[i + 1] : to;
      RemoveEdge(u, v);
      if (u == from && v == to) return;  // removed the inserted edge itself
      continue;  // the inserted edge may close another cycle
    }
    RecordViolation(path[k - 1], "cycle", cyc.str());
    RemoveEdge(from, to);
    return;
  }

  // No cycle: restore topological order Pearce-Kelly style by permuting
  // the affected region [ord(to), ord(from)].
  Node& f = nodes_.at(from);
  Node& t = nodes_.at(to);
  const uint64_t lo = t.ord;
  const uint64_t hi = f.ord;
  // Forward closure of `to` within the region.
  std::vector<TxnId> fwd;
  {
    std::map<TxnId, bool> seen;
    std::vector<TxnId> stack{to};
    seen[to] = true;
    while (!stack.empty()) {
      TxnId cur = stack.back();
      stack.pop_back();
      fwd.push_back(cur);
      for (const auto& [next, unused] : nodes_.at(cur).out) {
        (void)unused;
        auto nit = nodes_.find(next);
        if (nit == nodes_.end() || nit->second.ord > hi || seen[next]) {
          continue;
        }
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  // Backward closure of `from` within the region.
  std::vector<TxnId> bwd;
  {
    std::map<TxnId, bool> seen;
    std::vector<TxnId> stack{from};
    seen[from] = true;
    while (!stack.empty()) {
      TxnId cur = stack.back();
      stack.pop_back();
      bwd.push_back(cur);
      for (const auto& [prev, unused] : nodes_.at(cur).in) {
        (void)unused;
        auto nit = nodes_.find(prev);
        if (nit == nodes_.end() || nit->second.ord < lo || seen[prev]) {
          continue;
        }
        seen[prev] = true;
        stack.push_back(prev);
      }
    }
  }
  auto by_ord = [this](TxnId a, TxnId b) {
    return nodes_.at(a).ord < nodes_.at(b).ord;
  };
  std::sort(fwd.begin(), fwd.end(), by_ord);
  std::sort(bwd.begin(), bwd.end(), by_ord);
  std::vector<uint64_t> slots;
  slots.reserve(fwd.size() + bwd.size());
  for (TxnId x : bwd) slots.push_back(nodes_.at(x).ord);
  for (TxnId x : fwd) slots.push_back(nodes_.at(x).ord);
  std::sort(slots.begin(), slots.end());
  size_t si = 0;
  for (TxnId x : bwd) nodes_.at(x).ord = slots[si++];
  for (TxnId x : fwd) nodes_.at(x).ord = slots[si++];
}

uint64_t OnlineChecker::WatermarkLocked() const {
  uint64_t w = epoch_;
  for (const auto& [id, n] : nodes_) {
    (void)id;
    if (n.status == TxnStatus::kOpen) w = std::min(w, n.first_seen_epoch);
  }
  return w;
}

size_t OnlineChecker::Prune() {
  std::lock_guard<std::mutex> lk(mu_);
  return PruneLocked();
}

size_t OnlineChecker::PruneLocked() {
  commits_since_prune_ = 0;
  const uint64_t w = WatermarkLocked();
  // Retire committed sources older than the watermark: no new in-edge can
  // ever reach them, and a node without in-edges sits on no cycle.
  std::vector<TxnId> queue;
  for (const auto& [id, n] : nodes_) {
    if (n.status == TxnStatus::kCommitted && n.commit_epoch < w &&
        n.in.empty()) {
      queue.push_back(id);
    }
  }
  size_t pruned = 0;
  while (!queue.empty()) {
    TxnId id = queue.back();
    queue.pop_back();
    auto it = nodes_.find(id);
    if (it == nodes_.end()) continue;
    for (const auto& [succ, unused] : it->second.out) {
      (void)unused;
      auto sit = nodes_.find(succ);
      if (sit == nodes_.end()) continue;
      Node& s = sit->second;
      s.in.erase(id);
      if (s.status == TxnStatus::kCommitted && s.commit_epoch < w &&
          s.in.empty()) {
        queue.push_back(succ);
      }
    }
    nodes_.erase(it);
    ++pruned;
  }
  report_.nodes_pruned += pruned;
  // Superseded versions older than the watermark can gain no new reader.
  for (auto& [item_id, item] : items_) {
    (void)item_id;
    while (item.versions.size() > 1 && item.versions[1].commit_epoch < w) {
      item.versions.erase(item.versions.begin());
    }
    if (!item.initial_pruned && !item.versions.empty() &&
        item.versions.front().commit_epoch < w) {
      item.initial_pruned = true;
      item.initial_readers.clear();
    }
  }
  for (auto it = aborted_.begin(); it != aborted_.end();) {
    if (it->second < w) {
      it = aborted_.erase(it);
    } else {
      ++it;
    }
  }
  return pruned;
}

void OnlineChecker::RecordViolation(TxnId txn, const std::string& kind,
                                    const std::string& detail) {
  ++report_.violations;
  if (report_.first_violations.size() < options_.max_recorded_violations) {
    report_.first_violations.push_back(CheckerViolation{txn, kind, detail});
  }
}

CheckerReport OnlineChecker::Report() const {
  std::lock_guard<std::mutex> lk(mu_);
  CheckerReport r = report_;
  r.live_nodes = nodes_.size();
  r.peak_live_nodes = std::max(r.peak_live_nodes, r.live_nodes);
  return r;
}

uint64_t OnlineChecker::live_nodes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return nodes_.size();
}

void OnlineChecker::RegisterMetrics(obs::MetricsRegistry& reg,
                                    const std::string& prefix) {
  reg.RegisterGauge(prefix + "commits_certified",
                    [this] { return Report().commits_certified; });
  reg.RegisterGauge(prefix + "violations",
                    [this] { return Report().violations; });
  reg.RegisterGauge(prefix + "allowed_anomalies",
                    [this] { return Report().allowed_anomalies; });
  reg.RegisterGauge(prefix + "edges_added",
                    [this] { return Report().edges_added; });
  reg.RegisterGauge(prefix + "live_nodes", [this] { return live_nodes(); });
  reg.RegisterGauge(prefix + "nodes_pruned",
                    [this] { return Report().nodes_pruned; });
}

}  // namespace check
}  // namespace critique
