#include "critique/common/status.h"

namespace critique {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kWouldBlock:
      return "WouldBlock";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kSerializationFailure:
      return "SerializationFailure";
    case StatusCode::kTransactionAborted:
      return "TransactionAborted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace critique
