#ifndef CRITIQUE_COMMON_STATUS_H_
#define CRITIQUE_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace critique {

/// \brief Outcome codes used across the library.
///
/// The library never throws on the data path (RocksDB/Arrow convention);
/// every fallible operation returns a `Status` or a `Result<T>`.  A few codes
/// carry concurrency-control semantics of their own:
///
///  * `kWouldBlock` — a lock request conflicts and the caller runs in
///    cooperative (non-blocking) mode; the step may be retried later.
///  * `kDeadlock` — the waits-for graph found a cycle and this transaction
///    was chosen as the victim; it has been aborted.
///  * `kSerializationFailure` — a multiversion engine refused a write or a
///    commit (first-committer-wins, first-writer-wins, or SSI dangerous
///    structure); the transaction has been aborted and may be retried.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kFailedPrecondition,
  kWouldBlock,
  kDeadlock,
  kSerializationFailure,
  kTransactionAborted,
  kInternal,
};

/// \brief Human-readable name of a status code (e.g. "SerializationFailure").
std::string_view StatusCodeName(StatusCode code);

/// \brief A cheap, copyable success-or-error value.
///
/// Mirrors the `rocksdb::Status` / `arrow::Status` idiom: default constructed
/// is OK, factory functions build errors, `ok()` gates the happy path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and optional message.
  explicit Status(StatusCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status WouldBlock(std::string msg = "") {
    return Status(StatusCode::kWouldBlock, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status SerializationFailure(std::string msg = "") {
    return Status(StatusCode::kSerializationFailure, std::move(msg));
  }
  static Status TransactionAborted(std::string msg = "") {
    return Status(StatusCode::kTransactionAborted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsWouldBlock() const { return code_ == StatusCode::kWouldBlock; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsSerializationFailure() const {
    return code_ == StatusCode::kSerializationFailure;
  }
  bool IsTransactionAborted() const {
    return code_ == StatusCode::kTransactionAborted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace critique

#endif  // CRITIQUE_COMMON_STATUS_H_
