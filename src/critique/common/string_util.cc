#include "critique/common/string_util.h"

namespace critique {

std::vector<std::string> SplitNonEmpty(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= input.size()) {
    size_t end = input.find(sep, start);
    if (end == std::string_view::npos) end = input.size();
    if (end > start) out.emplace_back(input.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  const char* ws = " \t\r\n";
  size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string PadTo(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

}  // namespace critique
