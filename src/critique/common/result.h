#ifndef CRITIQUE_COMMON_RESULT_H_
#define CRITIQUE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "critique/common/status.h"

namespace critique {

/// \brief A value-or-status, in the style of `arrow::Result<T>`.
///
/// Either holds a `T` (and `ok()` is true) or a non-OK `Status`.  Accessing
/// the value of a failed result is a programming error and asserts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result<T> must not be built from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the held value or `fallback` when failed.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK `Status` from an expression, RocksDB-macro style.
#define CRITIQUE_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::critique::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define CRITIQUE_INTERNAL_CONCAT_IMPL(a, b) a##b
#define CRITIQUE_INTERNAL_CONCAT(a, b) CRITIQUE_INTERNAL_CONCAT_IMPL(a, b)
#define CRITIQUE_INTERNAL_ASSIGN_OR_RETURN(var, lhs, expr) \
  auto var = (expr);                                       \
  if (!var.ok()) return var.status();                      \
  lhs = std::move(var).value();

/// Assigns the value of a `Result<T>` expression or propagates its status.
#define CRITIQUE_ASSIGN_OR_RETURN(lhs, expr)     \
  CRITIQUE_INTERNAL_ASSIGN_OR_RETURN(            \
      CRITIQUE_INTERNAL_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace critique

#endif  // CRITIQUE_COMMON_RESULT_H_
