#ifndef CRITIQUE_COMMON_CLOCK_H_
#define CRITIQUE_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace critique {

/// A discrete logical timestamp.  The paper's Start-Timestamp and
/// Commit-Timestamp are draws from one monotone counter, so every
/// Commit-Timestamp is "larger than any existing Start-Timestamp or
/// Commit-Timestamp" (Section 4.2) by construction.
using Timestamp = uint64_t;

/// Timestamp value used for "not yet assigned".
inline constexpr Timestamp kInvalidTimestamp = 0;

/// \brief Monotone logical clock shared by a transaction engine.
///
/// Thread-safe; `Tick()` returns a strictly increasing sequence starting
/// at 1 (0 is reserved as `kInvalidTimestamp`).
class LogicalClock {
 public:
  LogicalClock() : now_(0) {}

  /// Returns the next timestamp (strictly greater than all prior ones).
  Timestamp Tick() { return now_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Latest timestamp handed out (0 if none yet).
  Timestamp Now() const { return now_.load(std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace critique

#endif  // CRITIQUE_COMMON_CLOCK_H_
