#ifndef CRITIQUE_COMMON_STRING_UTIL_H_
#define CRITIQUE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace critique {

/// Splits `input` on `sep`, dropping empty pieces.
std::vector<std::string> SplitNonEmpty(std::string_view input, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Pads or truncates `s` to exactly `width` columns (left-aligned).
std::string PadTo(std::string_view s, size_t width);

}  // namespace critique

#endif  // CRITIQUE_COMMON_STRING_UTIL_H_
