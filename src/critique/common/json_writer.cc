#include "critique/common/json_writer.h"

#include <cmath>
#include <cstdio>

namespace critique {

std::string JsonWriter::Escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::NextValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

void JsonWriter::Open(char c) {
  NextValue();
  out_ += c;
  has_value_.push_back(false);
}

void JsonWriter::Close(char c) {
  if (!has_value_.empty()) has_value_.pop_back();
  out_ += c;
}

void JsonWriter::Key(std::string_view k) {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
  out_ += '"';
  out_ += Escape(k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view v) {
  NextValue();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
}

void JsonWriter::Int(int64_t v) {
  NextValue();
  out_ += std::to_string(v);
}

void JsonWriter::UInt(uint64_t v) {
  NextValue();
  out_ += std::to_string(v);
}

void JsonWriter::Double(double v) {
  NextValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
}

void JsonWriter::Bool(bool v) {
  NextValue();
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  NextValue();
  out_ += "null";
}

}  // namespace critique
