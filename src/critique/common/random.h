#ifndef CRITIQUE_COMMON_RANDOM_H_
#define CRITIQUE_COMMON_RANDOM_H_

#include <cstdint>

namespace critique {

/// \brief Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every randomized component in the library (schedule generation, workload
/// key choice) takes an explicit `Rng` so runs replay bit-for-bit from a
/// seed; nothing reads global entropy.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x5DEECE66DULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability `p` of returning true.
  bool Chance(double p);

 private:
  uint64_t s_[4];
};

}  // namespace critique

#endif  // CRITIQUE_COMMON_RANDOM_H_
