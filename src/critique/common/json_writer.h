#ifndef CRITIQUE_COMMON_JSON_WRITER_H_
#define CRITIQUE_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace critique {

/// \brief A minimal streaming JSON emitter for machine-readable bench and
/// report output (`bench_* --json <path>`).
///
/// Produces standards-compliant JSON: strings are escaped, commas are
/// managed by nesting state, non-finite doubles degrade to `null` (JSON
/// has no NaN/Inf).  Usage is push-style:
///
/// ```cpp
/// JsonWriter w;
/// w.BeginObject();
/// w.Key("threads"); w.Int(8);
/// w.Key("engines"); w.BeginArray();
///   w.BeginObject(); w.Key("name"); w.String("SI"); w.EndObject();
/// w.EndArray();
/// w.EndObject();
/// w.str();  // the document
/// ```
///
/// No validation beyond comma/nesting management: emitting a syntactically
/// ill-formed sequence (e.g. two keys in a row) is a caller bug.
class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  /// Emits `"k":` inside an object.
  void Key(std::string_view k);

  void String(std::string_view v);
  void Int(int64_t v);
  void UInt(uint64_t v);
  /// Finite doubles render with up to 6 significant digits of fraction;
  /// NaN / Inf render as null.
  void Double(double v);
  void Bool(bool v);
  void Null();

  /// The document built so far.
  const std::string& str() const { return out_; }

  /// JSON string-escapes `v` (no surrounding quotes).
  static std::string Escape(std::string_view v);

 private:
  void Open(char c);
  void Close(char c);
  void NextValue();  ///< comma management before a value/key

  std::string out_;
  /// One frame per open object/array: whether a value was emitted at this
  /// nesting depth (drives comma placement).
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace critique

#endif  // CRITIQUE_COMMON_JSON_WRITER_H_
