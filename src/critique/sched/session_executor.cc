#include "critique/sched/session_executor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace critique {
namespace {

// Executor contract violations are programming errors; fail fast with a
// diagnostic in every build type (assert() vanishes under NDEBUG).
void CheckOrDie(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr,
                 "critique::SessionExecutor contract violation: %s\n", what);
    std::abort();
  }
}

}  // namespace

std::string SessionExecutorStats::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "submitted=%llu completed=%llu committed=%llu failed=%llu "
                "steps=%llu parks=%llu wakeups=%llu retries=%llu "
                "steals=%llu peak_open_sessions=%llu",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(steps),
                static_cast<unsigned long long>(parks),
                static_cast<unsigned long long>(wakeups),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(steals),
                static_cast<unsigned long long>(peak_open_sessions));
  return buf;
}

std::ostream& operator<<(std::ostream& os, const SessionExecutorStats& stats) {
  return os << stats.ToString();
}

SessionExecutor::SessionExecutor(Database& db, SessionExecutorOptions options)
    : db_(db), options_(options) {
  CheckOrDie(db_.mode() == ConcurrencyMode::kCooperative,
             "the executor multiplexes cooperative sessions; a kBlocking "
             "database parks OS threads instead");
  CheckOrDie(db_.open_transactions() == 0,
             "executor attached to a database with open transactions");
  // A policy that re-issues blocked operations would spin inside the
  // step instead of surfacing kWouldBlock for the park/wakeup path.
  CheckOrDie(!db_.retry_policy().RetryBlockedOp(1),
             "the retry policy must not retry blocked operations "
             "(kWouldBlock is the executor's park signal)");
  options_.workers = std::max(1, options_.workers);
  paused_.store(options_.start_paused, std::memory_order_release);
  db_.SetLockWakeupHook([this](TxnId txn) { Wake(txn); });
  {
    obs::MetricsRegistry& reg = db_.metrics();
    reg.RegisterGauge("executor.submitted",
                      [this] { return stats().submitted; });
    reg.RegisterGauge("executor.completed",
                      [this] { return stats().completed; });
    reg.RegisterGauge("executor.committed",
                      [this] { return stats().committed; });
    reg.RegisterGauge("executor.parks", [this] { return stats().parks; });
    reg.RegisterGauge("executor.wakeups", [this] { return stats().wakeups; });
    reg.RegisterGauge("executor.retries", [this] { return stats().retries; });
    reg.RegisterGauge("executor.steals", [this] { return stats().steals; });
    reg.RegisterGauge("executor.peak_open_sessions",
                      [this] { return stats().peak_open_sessions; });
    reg.RegisterGauge("executor.ready_queue_depth",
                      [this] { return ready_queue_depth(); });
    reg.RegisterHistogram("executor.step_us", &step_hist_);
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < options_.workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

SessionExecutor::~SessionExecutor() {
  stop_.store(true, std::memory_order_release);
  NotifySleepers(/*all=*/true);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Unfinished sessions: forget their wakeup targets first, then let the
  // Transaction destructors roll everything back.  Rollbacks fire the
  // wakeup hook (lock releases), which now finds an empty index — safe,
  // because `this` still exists and `Wake` on an unknown id is a no-op.
  {
    std::lock_guard<std::mutex> il(index_mu_);
    txn_index_.clear();
  }
  {
    std::lock_guard<std::mutex> lk(tasks_mu_);
    tasks_.clear();
  }
  // Every session is closed now, so the facade accepts the reset.
  db_.SetLockWakeupHook(nullptr);
  // The registry outlives the executor; its entries must not.
  db_.metrics().Unregister("executor.");
}

uint64_t SessionExecutor::Submit(uint64_t num_steps, StepFn step, DoneFn done) {
  auto owned = std::make_unique<SessionTask>();
  owned->num_steps = num_steps;
  owned->step = std::move(step);
  owned->done = std::move(done);
  SessionTask* task = owned.get();
  {
    std::lock_guard<std::mutex> lk(tasks_mu_);
    task->id = next_task_id_++;
    tasks_.emplace(task->id, std::move(owned));
  }
  // `Push` hands the task to the workers: one may run, finish, and free
  // it before this function returns, so nothing may touch `task` after
  // the push — snapshot the id first.
  const uint64_t id = task->id;
  submitted_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> tl(task->mu);  // state is kReady already
    Push(task, static_cast<size_t>(id));
  }
  return id;
}

void SessionExecutor::Pause() {
  paused_.store(true, std::memory_order_release);
}

void SessionExecutor::Resume() {
  paused_.store(false, std::memory_order_release);
  NotifySleepers(/*all=*/true);
}

void SessionExecutor::Drain() {
  std::unique_lock<std::mutex> lk(drain_mu_);
  drain_cv_.wait(lk, [&] {
    return completed_.load(std::memory_order_acquire) >=
           submitted_.load(std::memory_order_acquire);
  });
}

bool SessionExecutor::DrainFor(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(drain_mu_);
  return drain_cv_.wait_for(lk, timeout, [&] {
    return completed_.load(std::memory_order_acquire) >=
           submitted_.load(std::memory_order_acquire);
  });
}

SessionExecutorStats SessionExecutor::stats() const {
  SessionExecutorStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.committed = committed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.steps = steps_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.peak_open_sessions = peak_open_.load(std::memory_order_relaxed);
  return s;
}

void SessionExecutor::WorkerLoop(size_t wi) {
  while (!stop_.load(std::memory_order_acquire)) {
    SessionTask* task =
        paused_.load(std::memory_order_acquire) ? nullptr : PopTask(wi);
    if (task != nullptr) {
      RunTask(task, wi);
      continue;
    }
    // Nothing runnable: sleep until a push/timer/resume/stop.  The
    // re-checks under sleep_mu_ pair with the producers' empty critical
    // sections, so a notification can never slip between a check and the
    // wait — this loop has no fallback poll.
    std::unique_lock<std::mutex> sl(sleep_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    if (!paused_.load(std::memory_order_acquire)) {
      if (ready_count_.load(std::memory_order_acquire) > 0) continue;
      std::optional<std::chrono::steady_clock::time_point> deadline =
          NextTimerDeadline();
      if (deadline.has_value()) {
        sleep_cv_.wait_until(sl, *deadline);
        continue;
      }
    }
    sleep_cv_.wait(sl);
  }
}

SessionExecutor::SessionTask* SessionExecutor::PopTask(size_t wi) {
  Worker& mine = *workers_[wi];
  {
    std::lock_guard<std::mutex> wl(mine.mu);
    if (!mine.queue.empty()) {
      SessionTask* t = mine.queue.front();
      mine.queue.pop_front();
      ready_count_.fetch_sub(1, std::memory_order_relaxed);
      return t;
    }
  }
  // Work stealing: scan the other queues, taking from the back (the
  // "coldest" end — the owner drains the front).
  for (size_t i = 1; i < workers_.size(); ++i) {
    Worker& victim = *workers_[(wi + i) % workers_.size()];
    std::lock_guard<std::mutex> wl(victim.mu);
    if (!victim.queue.empty()) {
      SessionTask* t = victim.queue.back();
      victim.queue.pop_back();
      ready_count_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return PopDueTimer();
}

SessionExecutor::SessionTask* SessionExecutor::PopDueTimer() {
  std::lock_guard<std::mutex> tl(timer_mu_);
  if (timers_.empty() ||
      timers_.top().when > std::chrono::steady_clock::now()) {
    return nullptr;
  }
  SessionTask* t = timers_.top().task;
  timers_.pop();
  return t;
}

std::optional<std::chrono::steady_clock::time_point>
SessionExecutor::NextTimerDeadline() {
  std::lock_guard<std::mutex> tl(timer_mu_);
  if (timers_.empty()) return std::nullopt;
  return timers_.top().when;
}

void SessionExecutor::RunTask(SessionTask* task, size_t wi) {
  {
    std::lock_guard<std::mutex> tl(task->mu);
    task->state = TaskState::kRunning;
    task->wake_pending = false;  // re-run in progress: fold it in
  }
  if (!task->txn.has_value()) {
    task->txn.emplace(db_.Begin());
    task->txn_id = task->txn->id();
    {
      // Registered before the first step runs, so a park inside the step
      // always has a wakeup target.
      std::lock_guard<std::mutex> il(index_mu_);
      txn_index_[task->txn_id] = task;
    }
    if (!task->counted_begin) {
      task->counted_begin = true;
      first_begins_.fetch_add(1, std::memory_order_relaxed);
    }
    const uint64_t open = static_cast<uint64_t>(
        open_sessions_.fetch_add(1, std::memory_order_relaxed) + 1);
    uint64_t prev = peak_open_.load(std::memory_order_relaxed);
    while (open > prev && !peak_open_.compare_exchange_weak(
                              prev, open, std::memory_order_relaxed)) {
    }
  }
  Status s = Status::OK();
  for (;;) {
    if (task->next_step >= task->num_steps) {
      // Commit pass.  The barrier (clamped so it can never exceed what
      // was actually submitted) re-queues instead of committing until
      // enough sessions are open — at most one extra queue cycle per
      // unbegun session, since every dispatch of a fresh task opens it.
      const uint64_t barrier = std::min<uint64_t>(
          options_.commit_barrier, submitted_.load(std::memory_order_acquire));
      if (first_begins_.load(std::memory_order_acquire) < barrier) {
        std::lock_guard<std::mutex> tl(task->mu);
        task->state = TaskState::kReady;
        Push(task, wi);
        return;
      }
      s = task->txn->Commit();
      if (s.ok()) {
        FinishTask(task, s, /*committed=*/true);
        return;
      }
      break;
    }
    {
      obs::ScopedTimer t(step_hist_);
      s = task->step(*task->txn, task->next_step);
    }
    if (!s.ok()) break;
    steps_.fetch_add(1, std::memory_order_relaxed);
    ++task->next_step;
    if (options_.yield_every_step) {
      std::lock_guard<std::mutex> tl(task->mu);
      task->state = TaskState::kReady;
      Push(task, wi);
      return;
    }
  }
  if (s.IsWouldBlock()) {
    Park(task);
    return;
  }
  if (s.IsDeadlock() || s.IsSerializationFailure()) {
    HandleRetryableAbort(task, s, wi);
    return;
  }
  FinishTask(task, s, /*committed=*/false);
}

void SessionExecutor::Park(SessionTask* task) {
  parks_.fetch_add(1, std::memory_order_relaxed);
  if (obs::TxnTracer* tracer = db_.tracer()) {
    tracer->Record(task->txn_id, obs::TraceEventType::kPark);
  }
  // The park decision and any concurrent wakeup serialize on the task
  // mutex: a wakeup that raced the tail of the step is sitting in
  // wake_pending and converts the park into an immediate re-queue, so it
  // cannot be lost; one that arrives after we set kParked re-queues the
  // task itself (see Wake).
  std::lock_guard<std::mutex> tl(task->mu);
  if (task->wake_pending) {
    task->wake_pending = false;
    task->state = TaskState::kReady;
    Push(task, static_cast<size_t>(task->id));
  } else {
    task->state = TaskState::kParked;
  }
}

void SessionExecutor::Wake(TxnId txn) {
  // Runs on whichever thread released the conflicting lock — possibly a
  // worker mid-RunTask, possibly the destructor's rollback sweep.  The
  // whole body stays under index_mu_: FinishTask deregisters under it
  // before destroying a task, so a found pointer cannot dangle.
  std::lock_guard<std::mutex> il(index_mu_);
  auto it = txn_index_.find(txn);
  if (it == txn_index_.end()) return;
  SessionTask* task = it->second;
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  if (obs::TxnTracer* tracer = db_.tracer()) {
    tracer->Record(txn, obs::TraceEventType::kWakeup);
  }
  std::lock_guard<std::mutex> tl(task->mu);
  if (task->state == TaskState::kParked) {
    task->state = TaskState::kReady;
    Push(task, static_cast<size_t>(task->id));
  } else {
    // Still running (or already re-queued): remember the wakeup so a
    // park decision in flight consumes it instead of sleeping through it.
    task->wake_pending = true;
  }
}

void SessionExecutor::HandleRetryableAbort(SessionTask* task, const Status& s,
                                           size_t wi) {
  {
    std::lock_guard<std::mutex> il(index_mu_);
    txn_index_.erase(task->txn_id);
  }
  task->txn_id = 0;
  if (task->txn->active()) (void)task->txn->Rollback();
  task->txn.reset();  // ReleaseAll inside wakes whoever we blocked
  open_sessions_.fetch_sub(1, std::memory_order_relaxed);
  ++task->attempt;
  const RetryPolicy& policy = db_.retry_policy();
  if (!policy.RetryTransaction(s, task->attempt)) {
    FinishTask(task, s, /*committed=*/false);
    return;
  }
  retries_.fetch_add(1, std::memory_order_relaxed);
  task->next_step = 0;
  const std::chrono::microseconds delay = policy.RetryDelay(task->attempt);
  if (delay > std::chrono::microseconds::zero()) {
    {
      std::lock_guard<std::mutex> tl(task->mu);
      task->state = TaskState::kReady;
    }
    // Only the timer heap holds the task now (its transaction is gone, so
    // no wakeup can target it); a worker re-runs it when the delay ends.
    ScheduleRetry(task, delay);
  } else {
    std::lock_guard<std::mutex> tl(task->mu);
    task->state = TaskState::kReady;
    Push(task, wi);
  }
}

void SessionExecutor::FinishTask(SessionTask* task, const Status& s,
                                 bool committed) {
  if (task->txn_id != 0) {
    std::lock_guard<std::mutex> il(index_mu_);
    txn_index_.erase(task->txn_id);
    task->txn_id = 0;
  }
  if (task->txn.has_value()) {
    if (task->txn->active()) (void)task->txn->Rollback();
    task->txn.reset();
    open_sessions_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (committed) {
    committed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t id = task->id;
  DoneFn done = std::move(task->done);
  {
    std::lock_guard<std::mutex> lk(tasks_mu_);
    tasks_.erase(id);  // destroys the task; `task` is dead past here
  }
  // The done callback runs before the completion count ticks, so `Drain`
  // returning guarantees every callback has finished — callers may tear
  // down whatever the callbacks touch as soon as Drain returns.
  if (done) done(id, s);
  completed_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: pairs with the Drain predicate check so the
    // increment above cannot slip between a check and the wait.
    std::lock_guard<std::mutex> dl(drain_mu_);
  }
  drain_cv_.notify_all();
}

void SessionExecutor::Push(SessionTask* task, size_t wi) {
  // Caller holds task->mu with state already kReady — the task becomes
  // claimable the instant the queue mutex drops, and the claimant's first
  // action (locking task->mu in RunTask) serializes after us.
  wi %= workers_.size();
  {
    std::lock_guard<std::mutex> wl(workers_[wi]->mu);
    workers_[wi]->queue.push_back(task);
  }
  ready_count_.fetch_add(1, std::memory_order_release);
  NotifySleepers(/*all=*/false);
}

void SessionExecutor::ScheduleRetry(SessionTask* task,
                                    std::chrono::microseconds delay) {
  {
    std::lock_guard<std::mutex> tl(timer_mu_);
    timers_.push(TimerEntry{std::chrono::steady_clock::now() + delay, task});
  }
  // All sleepers: the earliest deadline may have moved, and which worker
  // computed its wait against the old one is unknowable.
  NotifySleepers(/*all=*/true);
}

void SessionExecutor::NotifySleepers(bool all) {
  // The empty critical section makes the producer's state change visible
  // to any sleeper between its predicate check and its wait.
  { std::lock_guard<std::mutex> sl(sleep_mu_); }
  if (all) {
    sleep_cv_.notify_all();
  } else {
    sleep_cv_.notify_one();
  }
}

}  // namespace critique
