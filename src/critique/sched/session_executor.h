#ifndef CRITIQUE_SCHED_SESSION_EXECUTOR_H_
#define CRITIQUE_SCHED_SESSION_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "critique/common/status.h"
#include "critique/db/database.h"
#include "critique/obs/metrics.h"

namespace critique {

/// \brief Configuration of a `SessionExecutor`.
struct SessionExecutorOptions {
  /// Worker threads the open sessions are multiplexed onto.  The whole
  /// point of the executor is that this stays small (the C10K shape: 100k
  /// open sessions over <= 8 workers); clamped to >= 1.
  int workers = 4;

  /// When true (the default), a session yields back to its run queue
  /// after every successful step, so long transaction bodies cannot
  /// monopolize a worker.  False runs a session's remaining steps (and
  /// its commit) to completion in one dispatch — fewer queue round trips,
  /// coarser fairness.
  bool yield_every_step = true;

  /// Start with dispatch paused (`Resume` releases the workers): lets a
  /// caller submit a large batch and measure from a common starting gun.
  bool start_paused = false;

  /// When nonzero, a session that has finished its steps is re-queued
  /// instead of committed until that many sessions have begun (clamped to
  /// the number submitted so far, so it can never wedge the executor).
  /// This is the "hold the doors" knob benchmarks use to guarantee the
  /// advertised number of sessions is genuinely open *simultaneously*
  /// before the first commit; leave at 0 for normal operation.
  uint64_t commit_barrier = 0;
};

/// Monotonic counters describing what an executor has done so far.
struct SessionExecutorStats {
  uint64_t submitted = 0;   ///< sessions handed to `Submit`
  uint64_t completed = 0;   ///< sessions finished (committed or failed)
  uint64_t committed = 0;   ///< sessions that committed
  uint64_t failed = 0;      ///< sessions that ended in a non-retryable error
  uint64_t steps = 0;       ///< successful step executions
  uint64_t parks = 0;       ///< sessions parked on `kWouldBlock`
  uint64_t wakeups = 0;     ///< lock-release wakeups delivered to sessions
  uint64_t retries = 0;     ///< whole-session restarts after retryable aborts
  uint64_t steals = 0;      ///< tasks taken from another worker's queue
  uint64_t peak_open_sessions = 0;  ///< max simultaneously open transactions

  /// One line: "submitted=100000 completed=100000 ...".
  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const SessionExecutorStats& stats);

/// \brief Multiplexes many open transactions onto a few worker threads.
///
/// Every open session used to cost an OS thread (the `kBlocking` model),
/// which caps "heavy traffic" experiments at a few dozen transactions.
/// The executor instead drives `ConcurrencyMode::kCooperative` sessions as
/// resumable tasks: a session's body is a step function invoked with its
/// `Transaction` and a step index, and after each step the task yields
/// back to a per-worker run queue (work stealing keeps the workers busy).
/// A step answered `kWouldBlock` *parks* the session — no thread waits on
/// it — and the lock manager's release-notification hook
/// (`Database::SetLockWakeupHook`) re-enqueues it the moment a conflicting
/// lock is released; there is no polling anywhere on the lock-wait path.
/// Wait order is FIFO per contended item (the lock manager wakes the
/// oldest registered waiter first), so a hot key cannot starve parked
/// sessions.  Retryable aborts — deadlock victim, First-Committer-Wins /
/// SSI refusal — roll the session back and re-submit it through the
/// database's `RetryPolicy` (honoring `RetryDelay` via a timer, not a
/// sleeping worker).  Commits compose with group commit naturally: the
/// workers that reach `Commit` together share one physical sync at the
/// `CommitLog` batch boundary.
///
/// Contracts:
///  * the database must be `kCooperative` with no open transactions, and
///    its retry policy must not spin on blocked operations
///    (`RetryBlockedOp(1)` false — the default policy qualifies); the
///    constructor aborts otherwise and installs the wakeup hook, which the
///    destructor removes;
///  * the executor owns the database's lock-wakeup hook and should be the
///    only thing driving sessions while it lives (external cooperative
///    sessions are safe but wake nobody when they block);
///  * step functions must be *resumable*: a step that failed with
///    `kWouldBlock` is re-invoked with the same index after the wakeup,
///    so each step must tolerate re-execution from its start (re-reading
///    is naturally idempotent; re-acquiring a lock the session already
///    holds is a no-op).  Steps run on whichever worker dequeued the task
///    — one thread at a time, never two, which is exactly the
///    `Transaction` thread contract;
///  * `done` callbacks and step functions run on worker threads and must
///    not call back into the executor's blocking APIs (`Drain`, the
///    destructor), though `Submit` from inside a step is allowed.
class SessionExecutor {
 public:
  /// A session body: invoked once per step with the session's transaction
  /// and the 0-based step index; `num_steps` successful steps are
  /// followed by an executor-driven `Commit`.  Return `kWouldBlock` to
  /// park (engines do this for you), any other error to finish the
  /// session (retryable errors restart it per the `RetryPolicy`).
  using StepFn = std::function<Status(Transaction&, uint64_t step)>;

  /// Completion callback: session id + final status (OK iff committed).
  using DoneFn = std::function<void(uint64_t id, const Status&)>;

  /// Installs the wakeup hook and starts the workers.  `db` must outlive
  /// the executor.
  explicit SessionExecutor(Database& db, SessionExecutorOptions options = {});

  /// Rolls back every unfinished session, joins the workers, and removes
  /// the wakeup hook.  Prefer draining first; destruction mid-flight is
  /// safe but abandons unfinished sessions without their `done` calls.
  ~SessionExecutor();

  SessionExecutor(const SessionExecutor&) = delete;
  SessionExecutor& operator=(const SessionExecutor&) = delete;

  /// Enqueues a session of `num_steps` steps; returns its id (ids are
  /// 1-based and dense).  Safe from any thread, including worker threads.
  uint64_t Submit(uint64_t num_steps, StepFn step, DoneFn done = nullptr);

  /// Stop/resume dispatching (already-running steps finish).  `Resume`
  /// is the starting gun for `start_paused` executors.
  void Pause();
  void Resume();

  /// Blocks until every submitted session has completed — `done`
  /// callbacks included, so state they touch may be torn down on return.
  ///
  /// Sessions only complete while the executor is dispatching: `Drain`
  /// on a paused executor (including `start_paused` without `Resume`)
  /// blocks until some other thread resumes it — it never runs sessions
  /// itself.  Call `Resume` first, or use `DrainFor` when another thread
  /// owns the pause/resume schedule.
  void Drain();

  /// `Drain` with a deadline; true when everything completed in time.
  /// Same caveat as `Drain`: a paused executor makes no progress, so
  /// this returns false at the deadline unless someone resumes it.
  bool DrainFor(std::chrono::milliseconds timeout);

  /// Counter snapshot (cheap; safe any time).
  SessionExecutorStats stats() const;

  /// Per-step dispatch latency (one `StepFn` invocation), microseconds.
  const obs::Histogram& step_histogram() const { return step_hist_; }

  /// Tasks sitting in run queues right now (the C10K backlog gauge).
  uint64_t ready_queue_depth() const {
    const int n = ready_count_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<uint64_t>(n) : 0;
  }

  int workers() const { return static_cast<int>(workers_.size()); }

 private:
  enum class TaskState { kReady, kRunning, kParked };

  /// A resumable session: the coroutine-style state machine the workers
  /// drive.  `mu` guards `state` + `wake_pending`; everything else is
  /// only touched by the (single) thread currently running the task.
  struct SessionTask {
    uint64_t id = 0;
    uint64_t num_steps = 0;
    StepFn step;
    DoneFn done;
    std::optional<Transaction> txn;
    TxnId txn_id = 0;       ///< nonzero while registered in txn_index_
    uint64_t next_step = 0;
    int attempt = 0;        ///< body runs so far (for the RetryPolicy)
    bool counted_begin = false;  ///< contributed to first_begins_ already

    std::mutex mu;
    TaskState state = TaskState::kReady;
    /// A wakeup that arrived while the task was running; consumed by the
    /// park decision so the wakeup cannot be lost.
    bool wake_pending = false;
  };

  struct Worker {
    std::mutex mu;
    std::deque<SessionTask*> queue;  ///< push_back / pop_front FIFO
    std::thread thread;
  };

  struct TimerEntry {
    std::chrono::steady_clock::time_point when;
    SessionTask* task;
    bool operator>(const TimerEntry& o) const { return when > o.when; }
  };

  void WorkerLoop(size_t wi);
  SessionTask* PopTask(size_t wi);
  SessionTask* PopDueTimer();
  std::optional<std::chrono::steady_clock::time_point> NextTimerDeadline();
  void RunTask(SessionTask* task, size_t wi);
  void Park(SessionTask* task);
  void Wake(TxnId txn);
  void HandleRetryableAbort(SessionTask* task, const Status& s, size_t wi);
  void FinishTask(SessionTask* task, const Status& s, bool committed);
  void Push(SessionTask* task, size_t wi);
  void ScheduleRetry(SessionTask* task, std::chrono::microseconds delay);
  void NotifySleepers(bool all);

  Database& db_;
  SessionExecutorOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex tasks_mu_;  ///< guards tasks_ + next_task_id_
  std::unordered_map<uint64_t, std::unique_ptr<SessionTask>> tasks_;
  uint64_t next_task_id_ = 1;

  /// TxnId -> parked/running task, for the wakeup hook.  `Wake` runs
  /// entirely under this mutex and `FinishTask` deregisters under it
  /// before destroying a task, which is the use-after-free guard.
  std::mutex index_mu_;
  std::unordered_map<TxnId, SessionTask*> txn_index_;

  /// Idle-worker parking lot: `Push` increments `ready_count_`, enters an
  /// empty `sleep_mu_` critical section, and notifies — the classic
  /// lost-notify-free handoff.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<int> ready_count_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};

  std::mutex timer_mu_;  ///< guards timers_ (RetryDelay re-submissions)
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> parks_{0};
  std::atomic<uint64_t> wakeups_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> first_begins_{0};  ///< distinct sessions ever begun
  std::atomic<int> open_sessions_{0};
  std::atomic<uint64_t> peak_open_{0};

  obs::Histogram step_hist_;  ///< internally synchronized
};

}  // namespace critique

#endif  // CRITIQUE_SCHED_SESSION_EXECUTOR_H_
