#ifndef CRITIQUE_ANALYSIS_MV_ANALYSIS_H_
#define CRITIQUE_ANALYSIS_MV_ANALYSIS_H_

#include <string>
#include <vector>

#include "critique/analysis/conflict.h"
#include "critique/common/result.h"
#include "critique/history/history.h"

namespace critique {

/// \brief Maps a Snapshot Isolation multiversion history to a single-valued
/// history preserving dataflow dependencies — the paper's "only rigorous
/// touchstone needed to place Snapshot Isolation in the Isolation
/// Hierarchy" (Section 4.2, after [OOBBGM]).
///
/// Every read of a committed transaction is relocated to the transaction's
/// start point (its first action) and every write to its commit point,
/// preserving relative order within each group; version subscripts are
/// dropped.  Aborted and unfinished transactions are projected away —
/// equivalence is defined over committed transactions, and an aborted SI
/// transaction's pending versions were never visible to anyone.
/// Applied to H1.SI this produces exactly the paper's H1.SI.SV:
///
///   H1.SI:    r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2
///             r1[y0=50] w1[y1=90] c1
///   mapped:   r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2
///             w1[x=10] w1[y=90] c1
History MapSnapshotHistoryToSingleVersion(const History& h);

/// \brief The statement-snapshot variant of the mapping, for Oracle Read
/// Consistency histories (Section 4.3).
///
/// Reads stay at their own positions — each statement saw the latest
/// committed value at its own instant, which is exactly what a
/// single-version read at that position sees once writes are relocated to
/// their transactions' commit points.  Writes anchor at commit; aborted and
/// unfinished transactions are projected away as in the SI mapping.
History MapStatementSnapshotHistoryToSingleVersion(const History& h);

/// \brief Validates that a multiversion history obeys Snapshot Isolation
/// read visibility (Section 4.2):
///
///  * every write by T creates a version subscripted by T;
///  * a read by T of an item T has already written returns T's version
///    ("the transaction's writes will be reflected in this snapshot");
///  * any other read by T returns the version committed by the latest
///    transaction whose commit precedes T's start (its first action), or
///    the initial version 0.
///
/// Returns OK or an InvalidArgument status naming the offending action.
Status ValidateSnapshotVisibility(const History& h);

/// \brief Checks First-Committer-Wins (Section 4.2): no two *committed*
/// transactions with overlapping [start, commit] execution intervals wrote
/// the same data item.  Returns OK or an InvalidArgument status naming the
/// violating pair.
Status ValidateFirstCommitterWins(const History& h);

/// One edge of a multiversion serialization graph.
struct MVEdge {
  TxnId from = 0;
  TxnId to = 0;
  ConflictKind kind = ConflictKind::kWriteWrite;  // ww / wr / rw
  ItemId item;

  std::string ToString() const;
};

/// \brief The multiversion serialization graph (MVSG, [BHG] Ch. 5) of a
/// history with version subscripts, over committed transactions.
///
/// Version order of each item follows commit order.  Edges:
///  * ww: Ti's version of x precedes Tj's;
///  * wr: Tj read the version Ti created;
///  * rw: Tj read a version of x and Tk created a later version
///        (anti-dependency — the edge kind SSI instruments).
///
/// Acyclicity of the MVSG certifies (one-copy) serializability; the
/// write-skew history H5 yields the 2-cycle T1 -rw-> T2 -rw-> T1.
class MVSerializationGraph {
 public:
  static MVSerializationGraph Build(const History& h);

  const std::vector<MVEdge>& edges() const { return edges_; }
  const std::set<TxnId>& nodes() const { return nodes_; }

  bool HasCycle() const;

  /// True when some cycle consists purely of rw (anti-dependency) edges —
  /// the SI-specific hazard signature (write skew is the 2-edge case).
  bool HasRwOnlyCycle() const;

  std::string ToString() const;

 private:
  std::set<TxnId> nodes_;
  std::vector<MVEdge> edges_;
};

/// True when the committed projection of the MV history `h` is
/// one-copy serializable (acyclic MVSG).
bool IsMVSerializable(const History& h);

}  // namespace critique

#endif  // CRITIQUE_ANALYSIS_MV_ANALYSIS_H_
