#include "critique/analysis/ansi_levels.h"

namespace critique {

std::string AnsiLevelName(AnsiLevel level, AnsiTable table) {
  switch (level) {
    case AnsiLevel::kReadUncommitted:
      return "READ UNCOMMITTED";
    case AnsiLevel::kReadCommitted:
      return "READ COMMITTED";
    case AnsiLevel::kRepeatableRead:
      return "REPEATABLE READ";
    case AnsiLevel::kSerializable:
      return table == AnsiTable::kTable1 ? "ANOMALY SERIALIZABLE"
                                         : "SERIALIZABLE";
  }
  return "?";
}

const std::vector<AnsiLevel>& AllAnsiLevels() {
  static const std::vector<AnsiLevel> kAll = {
      AnsiLevel::kReadUncommitted,
      AnsiLevel::kReadCommitted,
      AnsiLevel::kRepeatableRead,
      AnsiLevel::kSerializable,
  };
  return kAll;
}

std::vector<Phenomenon> ForbiddenPhenomena(AnsiLevel level,
                                           AnsiInterpretation interp,
                                           AnsiTable table) {
  const bool broad = interp == AnsiInterpretation::kBroad;
  const Phenomenon dirty = broad ? Phenomenon::kP1 : Phenomenon::kA1;
  const Phenomenon fuzzy = broad ? Phenomenon::kP2 : Phenomenon::kA2;
  const Phenomenon phantom = broad ? Phenomenon::kP3 : Phenomenon::kA3;

  std::vector<Phenomenon> out;
  if (table == AnsiTable::kTable3) out.push_back(Phenomenon::kP0);
  switch (level) {
    case AnsiLevel::kReadUncommitted:
      break;
    case AnsiLevel::kReadCommitted:
      out.push_back(dirty);
      break;
    case AnsiLevel::kRepeatableRead:
      out.push_back(dirty);
      out.push_back(fuzzy);
      break;
    case AnsiLevel::kSerializable:
      out.push_back(dirty);
      out.push_back(fuzzy);
      out.push_back(phantom);
      break;
  }
  return out;
}

bool SatisfiesAnsiLevel(const History& h, AnsiLevel level,
                        AnsiInterpretation interp, AnsiTable table) {
  for (Phenomenon p : ForbiddenPhenomena(level, interp, table)) {
    if (Exhibits(h, p)) return false;
  }
  return true;
}

std::optional<AnsiLevel> StrongestAnsiLevel(const History& h,
                                            AnsiInterpretation interp,
                                            AnsiTable table) {
  std::optional<AnsiLevel> best;
  for (AnsiLevel level : AllAnsiLevels()) {
    if (SatisfiesAnsiLevel(h, level, interp, table)) best = level;
  }
  return best;
}

}  // namespace critique
