#include "critique/analysis/conflict.h"

namespace critique {

std::string_view ConflictKindName(ConflictKind k) {
  switch (k) {
    case ConflictKind::kWriteWrite:
      return "ww";
    case ConflictKind::kWriteRead:
      return "wr";
    case ConflictKind::kReadWrite:
      return "rw";
  }
  return "?";
}

namespace {

bool SetsIntersect(const std::vector<ItemId>& a,
                   const std::vector<ItemId>& b) {
  for (const ItemId& x : a) {
    for (const ItemId& y : b) {
      if (x == y) return true;
    }
  }
  return false;
}

}  // namespace

bool WriteAffectsPredicate(const Action& write, const Action& pred_read) {
  if (!pred_read.IsPredicateRead()) return false;
  if (write.IsPredicateWrite()) {
    if (!pred_read.predicate_name.empty() &&
        write.predicate_name == pred_read.predicate_name) {
      return true;
    }
    if (write.predicate.has_value() && pred_read.predicate.has_value() &&
        write.predicate->MayOverlap(*pred_read.predicate)) {
      return true;
    }
    return SetsIntersect(write.read_set, pred_read.read_set);
  }
  if (!write.IsWrite()) return false;
  if (!pred_read.predicate_name.empty() &&
      write.affects_predicates.count(pred_read.predicate_name)) {
    return true;
  }
  if (pred_read.predicate.has_value()) {
    const Predicate& p = *pred_read.predicate;
    if (write.before_image && p.Covers(write.item, *write.before_image)) {
      return true;
    }
    if (write.after_image && p.Covers(write.item, *write.after_image)) {
      return true;
    }
    if (!write.before_image && !write.after_image && write.value) {
      if (p.Covers(write.item, Row::Scalar(*write.value))) return true;
    }
  }
  return false;
}

namespace {

// Does a predicate write touch the given item action?  Precise when the
// predicate write recorded its affected-item set; otherwise falls back to
// AST coverage of the item action's images.
bool PredicateWriteTouchesItem(const Action& pw, const Action& item_action) {
  for (const ItemId& id : pw.read_set) {
    if (id == item_action.item) return true;
  }
  if (pw.predicate.has_value()) {
    const Predicate& p = *pw.predicate;
    if (item_action.before_image &&
        p.Covers(item_action.item, *item_action.before_image)) {
      return true;
    }
    if (item_action.after_image &&
        p.Covers(item_action.item, *item_action.after_image)) {
      return true;
    }
    if (!item_action.before_image && !item_action.after_image) {
      if (item_action.value &&
          p.Covers(item_action.item, Row::Scalar(*item_action.value))) {
        return true;
      }
    }
  }
  return false;
}

// Overlap of two predicate-scoped actions (pw vs pw, or pw vs pr).
bool PredicateActionsOverlap(const Action& a, const Action& b) {
  if (!a.predicate_name.empty() && a.predicate_name == b.predicate_name) {
    return true;
  }
  if (a.predicate.has_value() && b.predicate.has_value() &&
      a.predicate->MayOverlap(*b.predicate)) {
    return true;
  }
  return SetsIntersect(a.read_set, b.read_set);
}

}  // namespace

bool Conflicts(const Action& first, const Action& second, ConflictKind* kind) {
  if (first.txn == second.txn) return false;

  // Predicate-write combinations.
  if (first.IsPredicateWrite() || second.IsPredicateWrite()) {
    const Action& pw = first.IsPredicateWrite() ? first : second;
    const Action& other = first.IsPredicateWrite() ? second : first;
    bool overlap = false;
    if (other.IsPredicateWrite() || other.IsPredicateRead()) {
      overlap = PredicateActionsOverlap(pw, other);
    } else if (other.IsRead() || other.IsWrite()) {
      overlap = PredicateWriteTouchesItem(pw, other);
    }
    if (!overlap) return false;
    if (kind) {
      const bool first_writes = first.IsWrite() || first.IsPredicateWrite();
      const bool second_writes =
          second.IsWrite() || second.IsPredicateWrite();
      if (first_writes && second_writes) {
        *kind = ConflictKind::kWriteWrite;
      } else if (first_writes) {
        *kind = ConflictKind::kWriteRead;
      } else {
        *kind = ConflictKind::kReadWrite;
      }
    }
    return true;
  }

  // Predicate read vs write (either order).
  if (first.IsPredicateRead() && second.IsWrite()) {
    if (WriteAffectsPredicate(second, first)) {
      if (kind) *kind = ConflictKind::kReadWrite;
      return true;
    }
    return false;
  }
  if (first.IsWrite() && second.IsPredicateRead()) {
    if (WriteAffectsPredicate(first, second)) {
      if (kind) *kind = ConflictKind::kWriteRead;
      return true;
    }
    return false;
  }

  // Item-level conflicts.
  const bool both_items = (first.IsRead() || first.IsWrite()) &&
                          (second.IsRead() || second.IsWrite());
  if (!both_items || first.item != second.item) return false;

  if (first.IsWrite() && second.IsWrite()) {
    if (kind) *kind = ConflictKind::kWriteWrite;
    return true;
  }
  if (first.IsWrite() && second.IsRead()) {
    if (kind) *kind = ConflictKind::kWriteRead;
    return true;
  }
  if (first.IsRead() && second.IsWrite()) {
    if (kind) *kind = ConflictKind::kReadWrite;
    return true;
  }
  return false;
}

}  // namespace critique
