#ifndef CRITIQUE_ANALYSIS_PHENOMENA_H_
#define CRITIQUE_ANALYSIS_PHENOMENA_H_

#include <string>
#include <vector>

#include "critique/history/history.h"

namespace critique {

/// \brief Every phenomenon and anomaly named in the paper.
///
/// Broad interpretations (phenomena, "P") forbid an execution sequence if
/// something anomalous *might* happen later; strict interpretations
/// (anomalies, "A") require the anomaly to have actually happened
/// (Section 2.2).  The final forms used here are those of Remark 5 (with
/// non-restricting `(c2 or a2)` clauses dropped):
///
///   P0  w1[x]...w2[x]...(c1 or a1)                       Dirty Write
///   P1  w1[x]...r2[x]...(c1 or a1)                       Dirty Read
///   A1  w1[x]...r2[x]...(a1 and c2 in either order)      strict Dirty Read
///   P2  r1[x]...w2[x]...(c1 or a1)                       Fuzzy Read
///   A2  r1[x]...w2[x]...c2...r1[x]...c1                  strict Fuzzy Read
///   P3  r1[P]...w2[y in P]...(c1 or a1)                  Phantom
///   A3  r1[P]...w2[y in P]...c2...r1[P]...c1             strict Phantom
///   P4  r1[x]...w2[x]...w1[x]...c1                       Lost Update
///   P4C rc1[x]...w2[x]...w1[x]...c1                      Cursor Lost Update
///   A5A r1[x]...w2[x]...w2[y]...c2...r1[y]...(c1 or a1)  Read Skew
///   A5B r1[x]...r2[y]...w1[y]...w2[x]...(c1 and c2)      Write Skew
enum class Phenomenon {
  kP0,
  kP1,
  kA1,
  kP2,
  kA2,
  kP3,
  kA3,
  kP4,
  kP4C,
  kA5A,
  kA5B,
};

/// All phenomena in display order (the column order of Table 4, plus the
/// strict anomalies).
const std::vector<Phenomenon>& AllPhenomena();

/// Short name ("P0", "A5B", ...).
std::string_view PhenomenonName(Phenomenon p);

/// Long name from the paper ("Dirty Write", "Write Skew", ...).
std::string_view PhenomenonTitle(Phenomenon p);

/// \brief One occurrence of a phenomenon in a history.
struct Witness {
  Phenomenon phenomenon;
  /// History indices of the actions matching the pattern, in pattern order.
  std::vector<size_t> indices;

  /// "P1 at [0, 2]: w1[x] ... r2[x]" rendering against `h`.
  std::string Describe(const History& h) const;
};

/// Finds every occurrence of `p` in `h` (single-version interpretation;
/// run multiversion histories through `MapSnapshotHistoryToSingleVersion`
/// first — the English phenomena "imply single-version histories",
/// Section 2.2).
std::vector<Witness> FindPhenomenon(const History& h, Phenomenon p);

/// True when at least one occurrence of `p` exists in `h`.
bool Exhibits(const History& h, Phenomenon p);

/// All phenomena with at least one occurrence in `h`.
std::vector<Phenomenon> ExhibitedPhenomena(const History& h);

}  // namespace critique

#endif  // CRITIQUE_ANALYSIS_PHENOMENA_H_
