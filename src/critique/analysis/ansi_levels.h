#ifndef CRITIQUE_ANALYSIS_ANSI_LEVELS_H_
#define CRITIQUE_ANALYSIS_ANSI_LEVELS_H_

#include <optional>
#include <string>
#include <vector>

#include "critique/analysis/phenomena.h"
#include "critique/history/history.h"

namespace critique {

/// The four ANSI SQL isolation levels of Tables 1 and 3.
enum class AnsiLevel {
  kReadUncommitted,
  kReadCommitted,
  kRepeatableRead,
  kSerializable,  // "ANOMALY SERIALIZABLE" under Table 1 semantics
};

/// Which reading of the English phenomena the classifier applies
/// (Section 2.2): strict anomalies A1/A2/A3 or broad phenomena P1/P2/P3.
enum class AnsiInterpretation { kStrict, kBroad };

/// Which defining table is in force: Table 1 (the original ANSI matrix,
/// no P0) or Table 3 (Remark 5's correction, P0 forbidden everywhere).
enum class AnsiTable { kTable1, kTable3 };

/// Display name ("READ COMMITTED", "ANOMALY SERIALIZABLE" for Table 1's
/// top level, "SERIALIZABLE" for Table 3's).
std::string AnsiLevelName(AnsiLevel level, AnsiTable table);

/// All four levels, weakest first.
const std::vector<AnsiLevel>& AllAnsiLevels();

/// The phenomena a history must not exhibit to satisfy `level` under the
/// given interpretation and table.  Reproduces the "Not Possible" cells of
/// Table 1 / Table 3.
std::vector<Phenomenon> ForbiddenPhenomena(AnsiLevel level,
                                           AnsiInterpretation interp,
                                           AnsiTable table);

/// True when `h` exhibits none of the phenomena forbidden at `level`.
bool SatisfiesAnsiLevel(const History& h, AnsiLevel level,
                        AnsiInterpretation interp, AnsiTable table);

/// The strongest level whose forbidden set `h` avoids; nullopt when even
/// READ UNCOMMITTED rejects it (possible only under Table 3, where P0 is
/// forbidden at every level).
std::optional<AnsiLevel> StrongestAnsiLevel(const History& h,
                                            AnsiInterpretation interp,
                                            AnsiTable table);

}  // namespace critique

#endif  // CRITIQUE_ANALYSIS_ANSI_LEVELS_H_
