#include "critique/analysis/view.h"

#include <algorithm>

namespace critique {
namespace {

// Committed-projection action list (terminals dropped).
std::vector<const Action*> CommittedOps(const History& h) {
  const auto committed = h.Committed();
  std::vector<const Action*> out;
  for (size_t i = 0; i < h.size(); ++i) {
    const Action& a = h[i];
    if (!committed.count(a.txn) || a.IsTerminal()) continue;
    out.push_back(&a);
  }
  return out;
}

std::vector<ReadsFrom> RelationOf(const std::vector<const Action*>& ops) {
  std::vector<ReadsFrom> rel;
  std::map<ItemId, TxnId> last_writer;
  std::map<std::pair<TxnId, ItemId>, size_t> ordinals;

  for (const Action* a : ops) {
    if (a->IsRead()) {
      ReadsFrom rf;
      rf.reader = a->txn;
      rf.item = a->item;
      rf.ordinal = ordinals[{a->txn, a->item}]++;
      if (a->version.has_value()) {
        rf.writer = *a->version;  // explicit in MV histories
      } else {
        auto it = last_writer.find(a->item);
        rf.writer = it == last_writer.end() ? kInitialTxn : it->second;
      }
      rel.push_back(std::move(rf));
    }
    for (const ItemId& wid : WrittenItems(*a)) last_writer[wid] = a->txn;
  }
  std::sort(rel.begin(), rel.end());
  return rel;
}

}  // namespace

std::vector<ReadsFrom> ReadsFromRelation(const History& h) {
  return RelationOf(CommittedOps(h));
}

std::map<ItemId, TxnId> FinalWriters(const History& h) {
  std::map<ItemId, TxnId> out;
  if (h.IsMultiversion()) {
    // Final version = the committed writer with the latest terminal.
    std::map<ItemId, size_t> best;
    for (TxnId t : h.Committed()) {
      size_t term = *h.TerminalIndex(t);
      for (size_t i : h.IndicesOf(t)) {
        for (const ItemId& wid : WrittenItems(h[i])) {
          auto it = best.find(wid);
          if (it == best.end() || term > it->second) {
            best[wid] = term;
            out[wid] = t;
          }
        }
      }
    }
    return out;
  }
  for (const Action* a : CommittedOps(h)) {
    for (const ItemId& wid : WrittenItems(*a)) out[wid] = a->txn;
  }
  return out;
}

bool ViewEquivalent(const History& a, const History& b) {
  if (a.Committed() != b.Committed()) return false;
  if (ReadsFromRelation(a) != ReadsFromRelation(b)) return false;
  return FinalWriters(a) == FinalWriters(b);
}

Result<bool> IsViewSerializable(const History& h, size_t max_transactions) {
  const auto committed = h.Committed();
  if (committed.size() > max_transactions) {
    return Status::InvalidArgument(
        "view-serializability enumeration capped at " +
        std::to_string(max_transactions) + " transactions");
  }

  const auto target_reads = ReadsFromRelation(h);
  const auto target_finals = FinalWriters(h);

  // Per-transaction op lists in program order, version subscripts dropped
  // (the serial candidate is a single-version execution).
  std::map<TxnId, std::vector<Action>> per_txn;
  for (TxnId t : committed) per_txn[t];
  for (size_t i = 0; i < h.size(); ++i) {
    const Action& a = h[i];
    if (!committed.count(a.txn) || a.IsTerminal()) continue;
    Action copy = a;
    copy.version.reset();
    per_txn[a.txn].push_back(std::move(copy));
  }

  std::vector<TxnId> order(committed.begin(), committed.end());
  std::sort(order.begin(), order.end());
  do {
    History serial;
    for (TxnId t : order) {
      for (const Action& a : per_txn[t]) serial.Append(a);
      serial.Append(Action::Commit(t));
    }
    if (ReadsFromRelation(serial) == target_reads &&
        FinalWriters(serial) == target_finals) {
      return true;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return false;
}

}  // namespace critique
