#include "critique/analysis/dependency_graph.h"

#include <algorithm>
#include <functional>

namespace critique {

std::string DependencyEdge::ToString() const {
  std::string out = "T" + std::to_string(from) + " -";
  out += ConflictKindName(kind);
  out += "[" + item + "]-> T" + std::to_string(to);
  return out;
}

DependencyGraph DependencyGraph::Build(const History& h) {
  DependencyGraph g;
  const std::set<TxnId> committed = h.Committed();
  g.nodes_ = committed;

  const auto& actions = h.actions();
  for (size_t i = 0; i < actions.size(); ++i) {
    const Action& a = actions[i];
    if (!committed.count(a.txn) || a.IsTerminal()) continue;
    for (size_t j = i + 1; j < actions.size(); ++j) {
      const Action& b = actions[j];
      if (!committed.count(b.txn) || b.IsTerminal()) continue;
      ConflictKind kind;
      if (Conflicts(a, b, &kind)) {
        auto label = [](const Action& x) -> std::optional<ItemId> {
          if (x.IsPredicateRead() || x.IsPredicateWrite()) {
            return "<" + x.predicate_name + ">";
          }
          return std::nullopt;
        };
        DependencyEdge e;
        e.from = a.txn;
        e.to = b.txn;
        e.kind = kind;
        e.item = label(a).value_or(label(b).value_or(a.item));
        e.from_index = i;
        e.to_index = j;
        g.edges_.push_back(std::move(e));
      }
    }
  }
  return g;
}

std::map<TxnId, std::set<TxnId>> DependencyGraph::Adjacency() const {
  std::map<TxnId, std::set<TxnId>> adj;
  for (TxnId n : nodes_) adj[n];  // ensure isolated nodes appear
  for (const auto& e : edges_) adj[e.from].insert(e.to);
  return adj;
}

bool DependencyGraph::HasCycle() const { return !FindCycle().empty(); }

std::vector<TxnId> DependencyGraph::FindCycle() const {
  auto adj = Adjacency();
  enum class Color { kWhite, kGray, kBlack };
  std::map<TxnId, Color> color;
  for (TxnId n : nodes_) color[n] = Color::kWhite;
  std::vector<TxnId> stack;
  std::vector<TxnId> cycle;

  std::function<bool(TxnId)> dfs = [&](TxnId u) -> bool {
    color[u] = Color::kGray;
    stack.push_back(u);
    for (TxnId v : adj[u]) {
      if (color[v] == Color::kGray) {
        // Extract the cycle u -> ... -> v -> u from the stack.
        auto it = std::find(stack.begin(), stack.end(), v);
        cycle.assign(it, stack.end());
        cycle.push_back(v);
        return true;
      }
      if (color[v] == Color::kWhite && dfs(v)) return true;
    }
    color[u] = Color::kBlack;
    stack.pop_back();
    return false;
  };

  for (TxnId n : nodes_) {
    if (color[n] == Color::kWhite && dfs(n)) return cycle;
  }
  return {};
}

std::vector<TxnId> DependencyGraph::TopologicalOrder() const {
  auto adj = Adjacency();
  std::map<TxnId, int> indegree;
  for (TxnId n : nodes_) indegree[n] = 0;
  for (const auto& [u, succs] : adj) {
    (void)u;
    for (TxnId v : succs) ++indegree[v];
  }
  // Kahn's algorithm; ties broken by txn id for determinism.
  std::set<TxnId> ready;
  for (const auto& [n, d] : indegree) {
    if (d == 0) ready.insert(n);
  }
  std::vector<TxnId> order;
  while (!ready.empty()) {
    TxnId u = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(u);
    for (TxnId v : adj[u]) {
      if (--indegree[v] == 0) ready.insert(v);
    }
  }
  if (order.size() != nodes_.size()) return {};
  return order;
}

bool DependencyGraph::SameDataflowAs(const DependencyGraph& other) const {
  if (nodes_ != other.nodes_) return false;
  auto key = [](const DependencyGraph& g) {
    std::set<std::tuple<TxnId, TxnId, ConflictKind, ItemId>> s;
    for (const auto& e : g.edges_) s.insert({e.from, e.to, e.kind, e.item});
    return s;
  };
  return key(*this) == key(other);
}

std::string DependencyGraph::ToString() const {
  std::string out = "nodes: {";
  bool first = true;
  for (TxnId n : nodes_) {
    if (!first) out += ", ";
    first = false;
    out += "T" + std::to_string(n);
  }
  out += "}\n";
  for (const auto& e : edges_) {
    out += "  " + e.ToString() + "\n";
  }
  return out;
}

bool IsSerializable(const History& h) {
  return !DependencyGraph::Build(h).HasCycle();
}

bool EquivalentHistories(const History& a, const History& b) {
  if (a.Committed() != b.Committed()) return false;
  return DependencyGraph::Build(a).SameDataflowAs(DependencyGraph::Build(b));
}

}  // namespace critique
