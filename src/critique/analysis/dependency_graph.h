#ifndef CRITIQUE_ANALYSIS_DEPENDENCY_GRAPH_H_
#define CRITIQUE_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "critique/analysis/conflict.h"
#include "critique/history/history.h"

namespace critique {

/// One edge of a dependency graph: committed transaction `from` performed an
/// action that conflicts with and precedes an action of committed
/// transaction `to` (Section 2.1).
struct DependencyEdge {
  TxnId from = 0;
  TxnId to = 0;
  ConflictKind kind = ConflictKind::kWriteWrite;
  ItemId item;                // item, or "<predicate_name>" for rP conflicts
  size_t from_index = 0;      // history index of the earlier action
  size_t to_index = 0;        // history index of the later action

  /// "T1 -ww[x]-> T2" rendering.
  std::string ToString() const;
};

/// \brief The dependency graph ("temporal data flow") of a history's
/// committed transactions.
///
/// Two histories are *equivalent* when they have the same committed
/// transactions and the same dependency graph; a history is *serializable*
/// when its graph is acyclic (equivalently: same graph as some serial
/// history).
class DependencyGraph {
 public:
  /// Builds the graph over committed transactions of `h`.  Actions of
  /// aborted or still-active transactions contribute no nodes or edges
  /// (the paper's graphs contain only committed transactions).
  static DependencyGraph Build(const History& h);

  const std::set<TxnId>& nodes() const { return nodes_; }
  const std::vector<DependencyEdge>& edges() const { return edges_; }

  /// Deduplicated adjacency: for each node, the set of successor nodes.
  std::map<TxnId, std::set<TxnId>> Adjacency() const;

  /// True when the graph contains a cycle.
  bool HasCycle() const;

  /// A cycle as a node sequence (first == last), empty when acyclic.
  std::vector<TxnId> FindCycle() const;

  /// Topological order of nodes; empty when cyclic and the graph is
  /// nonempty.  Any such order is a witness equivalent serial execution.
  std::vector<TxnId> TopologicalOrder() const;

  /// Graph equality on (nodes, deduplicated typed edges).
  bool SameDataflowAs(const DependencyGraph& other) const;

  /// Multi-line rendering for diagnostics.
  std::string ToString() const;

 private:
  std::set<TxnId> nodes_;
  std::vector<DependencyEdge> edges_;
};

/// True when `h`'s committed projection is (conflict-)serializable: its
/// dependency graph is acyclic [EGLT; BHG Theorem 3.6].
bool IsSerializable(const History& h);

/// True when the two histories have the same committed transactions and the
/// same dependency graph (the paper's definition of equivalence).
bool EquivalentHistories(const History& a, const History& b);

}  // namespace critique

#endif  // CRITIQUE_ANALYSIS_DEPENDENCY_GRAPH_H_
