#include "critique/analysis/glpt.h"

namespace critique {

std::string ConsistencyDegreeName(ConsistencyDegree degree) {
  return "Degree " + std::to_string(static_cast<int>(degree));
}

IsolationLevel LevelForDegree(ConsistencyDegree degree) {
  switch (degree) {
    case ConsistencyDegree::kDegree0:
      return IsolationLevel::kDegree0;
    case ConsistencyDegree::kDegree1:
      return IsolationLevel::kReadUncommitted;
    case ConsistencyDegree::kDegree2:
      return IsolationLevel::kReadCommitted;
    case ConsistencyDegree::kDegree3:
      return IsolationLevel::kSerializable;
  }
  return IsolationLevel::kSerializable;
}

std::optional<ConsistencyDegree> DegreeForLevel(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kDegree0:
      return ConsistencyDegree::kDegree0;
    case IsolationLevel::kReadUncommitted:
      return ConsistencyDegree::kDegree1;
    case IsolationLevel::kReadCommitted:
      return ConsistencyDegree::kDegree2;
    case IsolationLevel::kSerializable:
      return ConsistencyDegree::kDegree3;
    default:
      // "No isolation degree matches the Locking REPEATABLE READ
      // isolation level" (Section 2.3) — nor Cursor Stability, nor the
      // multiversion levels.
      return std::nullopt;
  }
}

IsolationLevel RepeatableReadMeaning(RepeatableReadTradition tradition) {
  switch (tradition) {
    case RepeatableReadTradition::kDateIBM:
      return IsolationLevel::kSerializable;
    case RepeatableReadTradition::kAnsiSql:
      return IsolationLevel::kRepeatableRead;
  }
  return IsolationLevel::kRepeatableRead;
}

std::string RenderTerminologyCrosswalk() {
  return
      "Terminology crosswalk (Section 2.3, Table 2, Section 5):\n"
      "  Degree 0                 == short write locks only (action "
      "atomicity)\n"
      "  Degree 1                 == Locking READ UNCOMMITTED\n"
      "  Degree 2                 == Locking READ COMMITTED\n"
      "  Degree 2 + cursor locks  == Cursor Stability (Date)\n"
      "  (no degree)              == Locking REPEATABLE READ (ANSI's "
      "misnomer:\n"
      "                              reads are NOT repeatable — P3 remains "
      "possible)\n"
      "  Degree 3                 == Locking SERIALIZABLE\n"
      "                           == 'Repeatable Read' in Date / IBM DB2 / "
      "Tandem usage\n";
}

}  // namespace critique
