#include "critique/analysis/mv_analysis.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <tuple>

namespace critique {
namespace {

// First-action index per transaction (the paper allows any time before the
// first read as Start-Timestamp; the first action is the canonical choice).
std::map<TxnId, size_t> StartIndices(const History& h) {
  std::map<TxnId, size_t> start;
  for (size_t i = 0; i < h.size(); ++i) {
    start.emplace(h[i].txn, i);  // emplace keeps the first
  }
  return start;
}

}  // namespace

namespace {

// Shared mapping machinery.  Sort key: (anchor index, phase, original
// index).  Reads anchor either at their transaction's start or in place;
// writes anchor at the terminal with phase 0; the terminal itself gets
// phase 1 so writes precede it.  Only committed transactions are mapped:
// equivalence of histories is defined over committed transactions, and an
// aborted MV transaction's pending versions were never visible to anyone.
History MapToSingleVersion(const History& h, bool reads_at_start) {
  auto start = StartIndices(h);
  const std::set<TxnId> committed = h.Committed();
  std::vector<std::tuple<size_t, int, size_t>> keyed;
  keyed.reserve(h.size());
  for (size_t i = 0; i < h.size(); ++i) {
    const Action& a = h[i];
    if (!committed.count(a.txn)) continue;
    size_t anchor = i;
    int phase = 0;
    if (a.IsTerminal()) {
      phase = 1;
    } else if (a.IsRead() || a.IsPredicateRead()) {
      if (reads_at_start) anchor = start.at(a.txn);
    } else if (a.IsWrite() || a.IsPredicateWrite()) {
      auto term = h.TerminalIndex(a.txn);
      anchor = term.value_or(h.size());
    }
    keyed.emplace_back(anchor, phase, i);
  }
  std::sort(keyed.begin(), keyed.end());

  History out;
  for (const auto& [anchor, phase, i] : keyed) {
    (void)anchor;
    (void)phase;
    Action a = h[i];
    a.version.reset();  // single-valued rendering
    out.Append(std::move(a));
  }
  return out;
}

}  // namespace

History MapSnapshotHistoryToSingleVersion(const History& h) {
  return MapToSingleVersion(h, /*reads_at_start=*/true);
}

History MapStatementSnapshotHistoryToSingleVersion(const History& h) {
  return MapToSingleVersion(h, /*reads_at_start=*/false);
}

Status ValidateSnapshotVisibility(const History& h) {
  auto start = StartIndices(h);
  for (size_t i = 0; i < h.size(); ++i) {
    const Action& a = h[i];
    if (a.IsWrite() && a.version.has_value() && *a.version != a.txn) {
      return Status::InvalidArgument(
          a.ToString() + ": write must create its own version (" +
          std::to_string(a.txn) + ")");
    }
    if (!a.IsRead() || !a.version.has_value()) continue;

    // Own write first ("writes will be reflected in this snapshot").
    bool own_write = false;
    for (size_t j = start.at(a.txn); j < i && !own_write; ++j) {
      if (h[j].txn != a.txn) continue;
      for (const ItemId& wid : WrittenItems(h[j])) {
        if (wid == a.item) {
          own_write = true;
          break;
        }
      }
    }
    TxnId expected = kInitialTxn;
    if (own_write) {
      expected = a.txn;
    } else {
      // Latest writer of the item committed before this txn's start.
      size_t my_start = start.at(a.txn);
      std::optional<size_t> best_commit;
      for (TxnId u : h.Committed()) {
        if (u == a.txn) continue;
        auto term = h.TerminalIndex(u);
        if (!term || *term >= my_start) continue;
        bool wrote_item = false;
        for (size_t j : h.IndicesOf(u)) {
          for (const ItemId& wid : WrittenItems(h[j])) {
            if (wid == a.item) {
              wrote_item = true;
              break;
            }
          }
          if (wrote_item) break;
        }
        if (!wrote_item) continue;
        if (!best_commit || *term > *best_commit) {
          best_commit = *term;
          expected = u;
        }
      }
    }
    if (*a.version != expected) {
      return Status::InvalidArgument(
          a.ToString() + ": snapshot visibility expects version " +
          std::to_string(expected));
    }
  }
  return Status::OK();
}

Status ValidateFirstCommitterWins(const History& h) {
  auto start = StartIndices(h);
  const auto committed = h.Committed();
  std::vector<TxnId> txns(committed.begin(), committed.end());
  for (size_t ai = 0; ai < txns.size(); ++ai) {
    for (size_t bi = ai + 1; bi < txns.size(); ++bi) {
      TxnId a = txns[ai], b = txns[bi];
      size_t sa = start.at(a), ca = *h.TerminalIndex(a);
      size_t sb = start.at(b), cb = *h.TerminalIndex(b);
      const bool overlap = sa < cb && sb < ca;
      if (!overlap) continue;
      // Common written item?
      for (size_t i : h.IndicesOf(a)) {
        for (const ItemId& wa : WrittenItems(h[i])) {
          for (size_t j : h.IndicesOf(b)) {
            for (const ItemId& wb : WrittenItems(h[j])) {
              if (wa == wb) {
                return Status::InvalidArgument(
                    "first-committer-wins violated: T" + std::to_string(a) +
                    " and T" + std::to_string(b) +
                    " overlap and both wrote item '" + wa + "'");
              }
            }
          }
        }
      }
    }
  }
  return Status::OK();
}

std::string MVEdge::ToString() const {
  std::string out = "T" + std::to_string(from) + " -";
  out += ConflictKindName(kind);
  out += "[" + item + "]-> T" + std::to_string(to);
  return out;
}

MVSerializationGraph MVSerializationGraph::Build(const History& h) {
  MVSerializationGraph g;
  const auto committed = h.Committed();
  g.nodes_ = committed;

  // Version order per item: initial version (txn 0), then committed
  // creators in commit order.
  std::map<ItemId, std::vector<TxnId>> version_order;
  {
    std::vector<std::pair<size_t, TxnId>> commits;
    for (TxnId t : committed) commits.emplace_back(*h.TerminalIndex(t), t);
    std::sort(commits.begin(), commits.end());
    std::map<ItemId, bool> seen_item;
    // Collect all items first (reads may reference the initial version).
    for (size_t i = 0; i < h.size(); ++i) {
      if (h[i].IsRead() || h[i].IsWrite()) {
        if (!seen_item[h[i].item]) {
          version_order[h[i].item].push_back(kInitialTxn);
          seen_item[h[i].item] = true;
        }
      }
    }
    for (const auto& [ci, t] : commits) {
      (void)ci;
      std::set<ItemId> written;
      for (size_t j : h.IndicesOf(t)) {
        for (const ItemId& wid : WrittenItems(h[j])) written.insert(wid);
      }
      for (const auto& item : written) version_order[item].push_back(t);
    }
  }

  auto position = [&](const ItemId& item, TxnId v) -> std::optional<size_t> {
    const auto& order = version_order[item];
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == v) return i;
    }
    return std::nullopt;
  };

  auto add_edge = [&](TxnId from, TxnId to, ConflictKind kind,
                      const ItemId& item) {
    if (from == to) return;
    if (from != kInitialTxn && !committed.count(from)) return;
    if (!committed.count(to)) return;
    if (from == kInitialTxn) return;  // initial state is not a node
    for (const auto& e : g.edges_) {
      if (e.from == from && e.to == to && e.kind == kind && e.item == item) {
        return;
      }
    }
    g.edges_.push_back(MVEdge{from, to, kind, item});
  };

  // ww edges along each item's version order.
  for (const auto& [item, order] : version_order) {
    for (size_t i = 1; i + 1 < order.size(); ++i) {
      add_edge(order[i], order[i + 1], ConflictKind::kWriteWrite, item);
    }
  }

  // wr and rw edges from reads.
  for (size_t i = 0; i < h.size(); ++i) {
    const Action& a = h[i];
    if (!a.IsRead() || !a.version.has_value()) continue;
    if (!committed.count(a.txn)) continue;
    const TxnId creator = *a.version;
    add_edge(creator, a.txn, ConflictKind::kWriteRead, a.item);
    auto pos = position(a.item, creator);
    if (pos) {
      const auto& order = version_order[a.item];
      if (*pos + 1 < order.size()) {
        add_edge(a.txn, order[*pos + 1], ConflictKind::kReadWrite, a.item);
      }
    }
  }
  return g;
}

namespace {

bool FindCycleFiltered(const std::set<TxnId>& nodes,
                       const std::vector<MVEdge>& edges, bool rw_only) {
  std::map<TxnId, std::set<TxnId>> adj;
  for (TxnId n : nodes) adj[n];
  for (const auto& e : edges) {
    if (rw_only && e.kind != ConflictKind::kReadWrite) continue;
    adj[e.from].insert(e.to);
  }
  enum class Color { kWhite, kGray, kBlack };
  std::map<TxnId, Color> color;
  for (TxnId n : nodes) color[n] = Color::kWhite;
  std::function<bool(TxnId)> dfs = [&](TxnId u) -> bool {
    color[u] = Color::kGray;
    for (TxnId v : adj[u]) {
      if (color[v] == Color::kGray) return true;
      if (color[v] == Color::kWhite && dfs(v)) return true;
    }
    color[u] = Color::kBlack;
    return false;
  };
  for (TxnId n : nodes) {
    if (color[n] == Color::kWhite && dfs(n)) return true;
  }
  return false;
}

}  // namespace

bool MVSerializationGraph::HasCycle() const {
  return FindCycleFiltered(nodes_, edges_, /*rw_only=*/false);
}

bool MVSerializationGraph::HasRwOnlyCycle() const {
  return FindCycleFiltered(nodes_, edges_, /*rw_only=*/true);
}

std::string MVSerializationGraph::ToString() const {
  std::string out = "nodes: {";
  bool first = true;
  for (TxnId n : nodes_) {
    if (!first) out += ", ";
    first = false;
    out += "T" + std::to_string(n);
  }
  out += "}\n";
  for (const auto& e : edges_) out += "  " + e.ToString() + "\n";
  return out;
}

bool IsMVSerializable(const History& h) {
  return !MVSerializationGraph::Build(h).HasCycle();
}

}  // namespace critique
