#ifndef CRITIQUE_ANALYSIS_GLPT_H_
#define CRITIQUE_ANALYSIS_GLPT_H_

#include <optional>
#include <string>

#include "critique/engine/isolation.h"

namespace critique {

/// \brief The [GLPT 1977] "Degrees of Consistency" and the terminology
/// crosswalk of Section 2.3 / Table 2.
///
/// The paper spends considerable effort untangling names: Degree 0 is mere
/// action atomicity; Degrees 1, 2, 3 correspond to Locking READ
/// UNCOMMITTED, READ COMMITTED and SERIALIZABLE; *no* degree matches
/// Locking REPEATABLE READ; and Date/IBM historically used "Repeatable
/// Read" to mean Degree 3 (serializable), which ANSI then redefined
/// downward — "doubly unfortunate" (Section 5).
enum class ConsistencyDegree { kDegree0 = 0, kDegree1, kDegree2, kDegree3 };

/// "Degree 0" ... "Degree 3".
std::string ConsistencyDegreeName(ConsistencyDegree degree);

/// The locking isolation level a degree corresponds to (Table 2).
IsolationLevel LevelForDegree(ConsistencyDegree degree);

/// The degree a locking level corresponds to; nullopt for the levels that
/// match no degree (Cursor Stability, Locking REPEATABLE READ) and for
/// multiversion levels.
std::optional<ConsistencyDegree> DegreeForLevel(IsolationLevel level);

/// What "Repeatable Read" denotes in each tradition — the terminological
/// trap the paper calls out.
enum class RepeatableReadTradition {
  kDateIBM,   ///< Date/DB2/Tandem: serializable (Degree 3)
  kAnsiSql,   ///< ANSI SQL: phantoms still possible
};

/// The isolation level "Repeatable Read" actually denotes under each
/// tradition: Locking SERIALIZABLE for Date/IBM, Locking REPEATABLE READ
/// for ANSI SQL.
IsolationLevel RepeatableReadMeaning(RepeatableReadTradition tradition);

/// Multi-line rendering of the crosswalk (degrees, ANSI names, Date's
/// names), suitable for reports.
std::string RenderTerminologyCrosswalk();

}  // namespace critique

#endif  // CRITIQUE_ANALYSIS_GLPT_H_
