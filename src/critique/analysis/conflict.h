#ifndef CRITIQUE_ANALYSIS_CONFLICT_H_
#define CRITIQUE_ANALYSIS_CONFLICT_H_

#include "critique/history/action.h"

namespace critique {

/// Kinds of conflicting action pairs (first action's kind → second's).
enum class ConflictKind {
  kWriteWrite,  // ww: both write the same item
  kWriteRead,   // wr: read after write (dataflow)
  kReadWrite,   // rw: write after read (anti-dependency)
};

/// Rendering: "ww", "wr", "rw".
std::string_view ConflictKindName(ConflictKind k);

/// \brief True when a write action affects the data item set covered by a
/// predicate read.
///
/// Per Section 2.3 a predicate covers present items *and phantoms*, so a
/// write affects the predicate when its before- OR after-image satisfies it.
/// Resolution order for item writes:
///   1. explicit annotation (`w2[y in P]` names `pred_read.predicate_name`);
///   2. bound predicate AST applied to recorded row images;
///   3. bound predicate AST applied to the written scalar value, for
///      histories that record plain `w[x=v]` values.
/// For predicate writes (`w2[P']`): same predicate name, structural
/// overlap of the two <search condition>s, or a recorded affected-item set
/// intersecting the read's result set.
/// With no usable information the answer is false (the history simply does
/// not relate the write to the predicate).
bool WriteAffectsPredicate(const Action& write, const Action& pred_read);

/// \brief True when `first` (earlier) conflicts with `second` (later):
/// distinct transactions, same data item — or a write into a read
/// predicate — and at least one of the pair is a write (Section 2.1).
///
/// When true and `kind` is non-null, the conflict kind is stored.
bool Conflicts(const Action& first, const Action& second,
               ConflictKind* kind = nullptr);

}  // namespace critique

#endif  // CRITIQUE_ANALYSIS_CONFLICT_H_
