#ifndef CRITIQUE_ANALYSIS_VIEW_H_
#define CRITIQUE_ANALYSIS_VIEW_H_

#include <map>
#include <string>
#include <vector>

#include "critique/history/history.h"

namespace critique {

/// One element of a history's reads-from relation: the `ordinal`-th read
/// of `item` by `reader` observed the version written by `writer`
/// (kInitialTxn for the initial state).
struct ReadsFrom {
  TxnId reader = 0;
  ItemId item;
  size_t ordinal = 0;
  TxnId writer = kInitialTxn;

  bool operator==(const ReadsFrom& o) const {
    return reader == o.reader && item == o.item && ordinal == o.ordinal &&
           writer == o.writer;
  }
  bool operator<(const ReadsFrom& o) const {
    return std::tie(reader, item, ordinal, writer) <
           std::tie(o.reader, o.item, o.ordinal, o.writer);
  }
};

/// \brief The reads-from relation of a history's committed projection.
///
/// For multiversion histories the relation is explicit in the version
/// subscripts ("any read must be explicit about which version is being
/// read", Section 2.2); for single-version histories each read observes
/// the latest preceding committed-transaction write of the item (own
/// uncommitted writes included), or the initial state.
std::vector<ReadsFrom> ReadsFromRelation(const History& h);

/// The last committed writer of each item (kInitialTxn entries omitted).
std::map<ItemId, TxnId> FinalWriters(const History& h);

/// \brief View equivalence ([BHG] Ch. 5): same committed transactions,
/// same reads-from relation, same final writers.  This is the
/// [OOBBGM] touchstone the paper cites for placing Snapshot Isolation in
/// the hierarchy: "all Snapshot Isolation histories can be mapped to
/// single-valued histories while preserving dataflow dependencies (the MV
/// histories are said to be View Equivalent with the SV histories)".
bool ViewEquivalent(const History& a, const History& b);

/// \brief View serializability: some serial ordering of the committed
/// transactions is view-equivalent to `h`.
///
/// Decided by enumeration over serial orders (view serializability is
/// NP-complete in general); refuses histories with more than
/// `max_transactions` committed transactions via the returned
/// InvalidArgument.  Strictly weaker than conflict serializability only on
/// blind-write histories.
Result<bool> IsViewSerializable(const History& h,
                                size_t max_transactions = 8);

}  // namespace critique

#endif  // CRITIQUE_ANALYSIS_VIEW_H_
