#include "critique/analysis/phenomena.h"

#include "critique/analysis/conflict.h"

namespace critique {

const std::vector<Phenomenon>& AllPhenomena() {
  static const std::vector<Phenomenon> kAll = {
      Phenomenon::kP0,  Phenomenon::kP1, Phenomenon::kA1, Phenomenon::kP4C,
      Phenomenon::kP4,  Phenomenon::kP2, Phenomenon::kA2, Phenomenon::kP3,
      Phenomenon::kA3,  Phenomenon::kA5A, Phenomenon::kA5B,
  };
  return kAll;
}

std::string_view PhenomenonName(Phenomenon p) {
  switch (p) {
    case Phenomenon::kP0:
      return "P0";
    case Phenomenon::kP1:
      return "P1";
    case Phenomenon::kA1:
      return "A1";
    case Phenomenon::kP2:
      return "P2";
    case Phenomenon::kA2:
      return "A2";
    case Phenomenon::kP3:
      return "P3";
    case Phenomenon::kA3:
      return "A3";
    case Phenomenon::kP4:
      return "P4";
    case Phenomenon::kP4C:
      return "P4C";
    case Phenomenon::kA5A:
      return "A5A";
    case Phenomenon::kA5B:
      return "A5B";
  }
  return "?";
}

std::string_view PhenomenonTitle(Phenomenon p) {
  switch (p) {
    case Phenomenon::kP0:
      return "Dirty Write";
    case Phenomenon::kP1:
      return "Dirty Read";
    case Phenomenon::kA1:
      return "Dirty Read (strict)";
    case Phenomenon::kP2:
      return "Fuzzy Read";
    case Phenomenon::kA2:
      return "Fuzzy Read (strict)";
    case Phenomenon::kP3:
      return "Phantom";
    case Phenomenon::kA3:
      return "Phantom (strict)";
    case Phenomenon::kP4:
      return "Lost Update";
    case Phenomenon::kP4C:
      return "Cursor Lost Update";
    case Phenomenon::kA5A:
      return "Read Skew";
    case Phenomenon::kA5B:
      return "Write Skew";
  }
  return "?";
}

std::string Witness::Describe(const History& h) const {
  std::string out(PhenomenonName(phenomenon));
  out += " at [";
  for (size_t k = 0; k < indices.size(); ++k) {
    if (k) out += ", ";
    out += std::to_string(indices[k]);
  }
  out += "]: ";
  for (size_t k = 0; k < indices.size(); ++k) {
    if (k) out += " ... ";
    out += h[indices[k]].ToString();
  }
  return out;
}

namespace {

// True when transaction `t` has no commit/abort at index <= `i`
// (i.e. t is still uncommitted when the action at `i` executes).
bool ActiveAt(const History& h, TxnId t, size_t i) {
  auto term = h.TerminalIndex(t);
  return !term.has_value() || *term > i;
}

// The pattern suffix "(c1 or a1)" requires T1 to eventually finish; a
// transaction still active at history end leaves the phenomenon merely
// *pending*, and the paper's patterns do not fire.  (Engine-recorded
// histories always finish every transaction.)
bool EventuallyFinishes(const History& h, TxnId t) {
  return h.TerminalIndex(t).has_value();
}

// --- The two-action overlap phenomena P0, P1, P2 ---------------------------
//
// Shared shape: act1 by T1 at i, conflicting act2 by T2 at j > i while T1 is
// still active at j, and T1 eventually commits or aborts.
template <typename First, typename Second>
std::vector<Witness> FindOverlap(const History& h, Phenomenon p, First first_ok,
                                 Second second_ok) {
  std::vector<Witness> out;
  const auto& a = h.actions();
  for (size_t i = 0; i < a.size(); ++i) {
    if (!first_ok(a[i])) continue;
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a[j].txn == a[i].txn) continue;
      if (!second_ok(a[j])) continue;
      if (a[i].item != a[j].item) continue;
      if (!ActiveAt(h, a[i].txn, j)) continue;
      if (!EventuallyFinishes(h, a[i].txn)) continue;
      out.push_back(Witness{p, {i, j}});
    }
  }
  return out;
}

std::vector<Witness> FindP0(const History& h) {
  return FindOverlap(
      h, Phenomenon::kP0, [](const Action& x) { return x.IsWrite(); },
      [](const Action& x) { return x.IsWrite(); });
}

std::vector<Witness> FindP1(const History& h) {
  return FindOverlap(
      h, Phenomenon::kP1, [](const Action& x) { return x.IsWrite(); },
      [](const Action& x) { return x.IsRead(); });
}

std::vector<Witness> FindP2(const History& h) {
  return FindOverlap(
      h, Phenomenon::kP2, [](const Action& x) { return x.IsRead(); },
      [](const Action& x) { return x.IsWrite(); });
}

// P3: r1[P] at i, w2 affecting P at j > i, T1 active at j.  The write may
// be an item write or a predicate write (the paper's P3 prohibits "any
// write ... affecting a tuple satisfying the predicate").
std::vector<Witness> FindP3(const History& h) {
  std::vector<Witness> out;
  const auto& a = h.actions();
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].IsPredicateRead()) continue;
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a[j].txn == a[i].txn) continue;
      if (!a[j].IsWrite() && !a[j].IsPredicateWrite()) continue;
      if (!WriteAffectsPredicate(a[j], a[i])) continue;
      if (!ActiveAt(h, a[i].txn, j)) continue;
      if (!EventuallyFinishes(h, a[i].txn)) continue;
      out.push_back(Witness{Phenomenon::kP3, {i, j}});
    }
  }
  return out;
}

// A1: w1[x] at i, r2[x] at j>i while T1 active, T1 aborts and T2 commits.
std::vector<Witness> FindA1(const History& h) {
  std::vector<Witness> out;
  const auto& a = h.actions();
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].IsWrite()) continue;
    if (!h.IsAborted(a[i].txn)) continue;
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a[j].txn == a[i].txn || !a[j].IsRead()) continue;
      if (a[j].item != a[i].item) continue;
      if (!ActiveAt(h, a[i].txn, j)) continue;  // read the dirty version
      if (!h.IsCommitted(a[j].txn)) continue;
      out.push_back(Witness{Phenomenon::kA1, {i, j}});
    }
  }
  return out;
}

// A2: r1[x]...w2[x]...c2...r1[x]...c1.
std::vector<Witness> FindA2(const History& h) {
  std::vector<Witness> out;
  const auto& a = h.actions();
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].IsRead()) continue;
    const TxnId t1 = a[i].txn;
    if (!h.IsCommitted(t1)) continue;
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a[j].txn == t1 || !a[j].IsWrite() || a[j].item != a[i].item) {
        continue;
      }
      const TxnId t2 = a[j].txn;
      auto c2 = h.TerminalIndex(t2);
      if (!c2 || !h.IsCommitted(t2) || *c2 < j) continue;
      // Re-read of the same item by T1 after c2.
      for (size_t k = *c2 + 1; k < a.size(); ++k) {
        if (a[k].txn == t1 && a[k].IsRead() && a[k].item == a[i].item) {
          out.push_back(Witness{Phenomenon::kA2, {i, j, *c2, k}});
          break;
        }
      }
    }
  }
  return out;
}

// A3: r1[P]...w2[y in P]...c2...r1[P]...c1.
std::vector<Witness> FindA3(const History& h) {
  std::vector<Witness> out;
  const auto& a = h.actions();
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].IsPredicateRead()) continue;
    const TxnId t1 = a[i].txn;
    if (!h.IsCommitted(t1)) continue;
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a[j].txn == t1 ||
          (!a[j].IsWrite() && !a[j].IsPredicateWrite())) {
        continue;
      }
      if (!WriteAffectsPredicate(a[j], a[i])) continue;
      const TxnId t2 = a[j].txn;
      auto c2 = h.TerminalIndex(t2);
      if (!c2 || !h.IsCommitted(t2) || *c2 < j) continue;
      for (size_t k = *c2 + 1; k < a.size(); ++k) {
        if (a[k].txn == t1 && a[k].IsPredicateRead() &&
            a[k].predicate_name == a[i].predicate_name) {
          out.push_back(Witness{Phenomenon::kA3, {i, j, *c2, k}});
          break;
        }
      }
    }
  }
  return out;
}

// P4: r1[x]...w2[x]...w1[x]...c1.  P4C: the same with a cursor read.
std::vector<Witness> FindLostUpdate(const History& h, bool cursor) {
  std::vector<Witness> out;
  const auto& a = h.actions();
  const Phenomenon p = cursor ? Phenomenon::kP4C : Phenomenon::kP4;
  for (size_t i = 0; i < a.size(); ++i) {
    const bool read_ok = cursor ? (a[i].type == Action::Type::kCursorRead)
                                : a[i].IsRead();
    if (!read_ok) continue;
    const TxnId t1 = a[i].txn;
    if (!h.IsCommitted(t1)) continue;
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a[j].txn == t1 || !a[j].IsWrite() || a[j].item != a[i].item) {
        continue;
      }
      for (size_t k = j + 1; k < a.size(); ++k) {
        if (a[k].txn != t1 || !a[k].IsWrite() || a[k].item != a[i].item) {
          continue;
        }
        out.push_back(Witness{p, {i, j, k}});
      }
    }
  }
  return out;
}

// A5A: r1[x]...w2[x]...w2[y]...c2...r1[y]...(c1 or a1), x != y.
std::vector<Witness> FindA5A(const History& h) {
  std::vector<Witness> out;
  const auto& a = h.actions();
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].IsRead()) continue;
    const TxnId t1 = a[i].txn;
    if (!EventuallyFinishes(h, t1)) continue;
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a[j].txn == t1 || !a[j].IsWrite() || a[j].item != a[i].item) {
        continue;
      }
      const TxnId t2 = a[j].txn;
      if (!h.IsCommitted(t2)) continue;
      auto c2 = h.TerminalIndex(t2);
      for (size_t k = j + 1; k < *c2; ++k) {
        if (a[k].txn != t2 || !a[k].IsWrite() || a[k].item == a[i].item) {
          continue;
        }
        // T1 reads y after c2 (it sees T2's y but T2's x was read earlier).
        for (size_t m = *c2 + 1; m < a.size(); ++m) {
          if (a[m].txn == t1 && a[m].IsRead() && a[m].item == a[k].item) {
            out.push_back(Witness{Phenomenon::kA5A, {i, j, k, *c2, m}});
          }
        }
      }
    }
  }
  return out;
}

// A5B: r1[x]...r2[y]...w1[y]...w2[x]...(c1 and c2), x != y.
// Checked over both role assignments of the two transactions.
std::vector<Witness> FindA5B(const History& h) {
  std::vector<Witness> out;
  const auto& a = h.actions();
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].IsRead()) continue;
    const TxnId t1 = a[i].txn;
    if (!h.IsCommitted(t1)) continue;
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a[j].txn == t1 || !a[j].IsRead()) continue;
      if (a[j].item == a[i].item) continue;
      const TxnId t2 = a[j].txn;
      if (!h.IsCommitted(t2)) continue;
      for (size_t k = j + 1; k < a.size(); ++k) {
        if (a[k].txn != t1 || !a[k].IsWrite() || a[k].item != a[j].item) {
          continue;
        }
        for (size_t m = k + 1; m < a.size(); ++m) {
          if (a[m].txn != t2 || !a[m].IsWrite() || a[m].item != a[i].item) {
            continue;
          }
          out.push_back(Witness{Phenomenon::kA5B, {i, j, k, m}});
        }
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Witness> FindPhenomenon(const History& h, Phenomenon p) {
  switch (p) {
    case Phenomenon::kP0:
      return FindP0(h);
    case Phenomenon::kP1:
      return FindP1(h);
    case Phenomenon::kA1:
      return FindA1(h);
    case Phenomenon::kP2:
      return FindP2(h);
    case Phenomenon::kA2:
      return FindA2(h);
    case Phenomenon::kP3:
      return FindP3(h);
    case Phenomenon::kA3:
      return FindA3(h);
    case Phenomenon::kP4:
      return FindLostUpdate(h, /*cursor=*/false);
    case Phenomenon::kP4C:
      return FindLostUpdate(h, /*cursor=*/true);
    case Phenomenon::kA5A:
      return FindA5A(h);
    case Phenomenon::kA5B:
      return FindA5B(h);
  }
  return {};
}

bool Exhibits(const History& h, Phenomenon p) {
  return !FindPhenomenon(h, p).empty();
}

std::vector<Phenomenon> ExhibitedPhenomena(const History& h) {
  std::vector<Phenomenon> out;
  for (Phenomenon p : AllPhenomena()) {
    if (Exhibits(h, p)) out.push_back(p);
  }
  return out;
}

}  // namespace critique
