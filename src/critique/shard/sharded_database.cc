#include "critique/shard/sharded_database.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "critique/wal/recovery.h"
#include "critique/wal/wal_writer.h"

namespace critique {
namespace {

// Contract violations on the facade are programming errors; fail fast with
// a diagnostic in every build type (same policy as `Database`).
void CheckOrDie(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "critique::ShardedDatabase contract violation: %s\n",
                 what);
    std::abort();
  }
}

std::string ShardWalPath(const std::string& dir, int shard) {
  return dir + "/shard-" + std::to_string(shard) + ".wal";
}

std::string CoordinatorWalPath(const std::string& dir) {
  return dir + "/coordinator.wal";
}

// mkdir -p (one level): the WAL directory must exist before any log file
// is opened inside it.  EEXIST is fine — crash/recover cycles reuse it.
bool EnsureWalDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) return true;
  return errno == EEXIST;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedDatabase
// ---------------------------------------------------------------------------

ShardedDatabase::ShardedDatabase(const ShardedDbOptions& options, DeferShards)
    : router_(options.num_shards),
      retry_(options.retry_policy ? options.retry_policy
                                  : DefaultRetryPolicy()),
      rng_(options.seed) {
  CheckOrDie(options.num_shards >= 1, "num_shards must be >= 1");
  CheckOrDie(options.per_shard.empty() ||
                 options.per_shard.size() ==
                     static_cast<size_t>(options.num_shards),
             "per_shard options must match num_shards");
  if (!options.wal_dir.empty()) {
    CheckOrDie(EnsureWalDir(options.wal_dir),
               "could not create the WAL directory");
  }
}

DbOptions ShardedDatabase::ShardOptionsFor(const ShardedDbOptions& options,
                                           int i) {
  DbOptions o = options.per_shard.empty()
                    ? options.shard_options
                    : options.per_shard[static_cast<size_t>(i)];
  // Independent deterministic stream per shard, whatever the template's
  // seed was.
  o.seed = options.seed * 1000003u + static_cast<uint64_t>(i) + 1;
  if (!options.wal_dir.empty()) {
    o.wal_path = ShardWalPath(options.wal_dir, i);
  }
  return o;
}

void ShardedDatabase::AttachCoordinatorLog(WalWriter writer,
                                           const ShardedDbOptions& options) {
  CommitLog::Options lo;
  lo.group_commit = options.shard_options.group_commit;
  lo.fsync_mode = options.shard_options.fsync_mode;
  lo.fsync_latency = options.shard_options.fsync_latency;
  coord_log_ = std::make_unique<CommitLog>(std::move(writer), lo);
  coordinator_.AttachLog(coord_log_.get());
}

ShardedDatabase::ShardedDatabase(ShardedDbOptions options)
    : ShardedDatabase(options, DeferShards{}) {
  shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int i = 0; i < options.num_shards; ++i) {
    shards_.push_back(std::make_unique<Database>(ShardOptionsFor(options, i)));
  }
  if (!options.wal_dir.empty()) {
    Result<WalWriter> w =
        WalWriter::Create(CoordinatorWalPath(options.wal_dir),
                          options.shard_options.fsync_mode);
    CheckOrDie(w.ok(), "could not create the coordinator decision log");
    AttachCoordinatorLog(std::move(w).value(), options);
  }
}

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Recover(
    ShardedDbOptions options) {
  if (options.wal_dir.empty()) {
    return Status::InvalidArgument(
        "ShardedDatabase::Recover requires ShardedDbOptions::wal_dir");
  }
  auto db = std::unique_ptr<ShardedDatabase>(
      new ShardedDatabase(options, DeferShards{}));

  // Every shard replays its own redo log; committed effects come back,
  // prepared participants come back in doubt with their locks re-taken.
  TxnId id_floor = 1;
  db->shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int i = 0; i < options.num_shards; ++i) {
    CRITIQUE_ASSIGN_OR_RETURN(Database shard,
                              Database::Recover(ShardOptionsFor(options, i)));
    if (shard.wal_recovery().max_txn + 1 > id_floor) {
      id_floor = shard.wal_recovery().max_txn + 1;
    }
    db->shards_.push_back(std::make_unique<Database>(std::move(shard)));
  }

  // The coordinator's decision table is rebuilt from the still-open
  // entries of its persistent log — a durable kDecision without a closing
  // kDecisionEnd is a commit some participant may not have heard about.
  const std::string coord_path = CoordinatorWalPath(options.wal_dir);
  CRITIQUE_ASSIGN_OR_RETURN(WalReadResult coord_wal,
                            WalReader::ReadFile(coord_path));
  std::map<TxnId, bool> decisions =
      ExtractCoordinatorDecisions(coord_wal.records);
  for (const auto& [gid, commit] : decisions) {
    (void)commit;
    if (gid + 1 > id_floor) id_floor = gid + 1;
  }
  db->coordinator_.RestoreDecisions(std::move(decisions));
  CRITIQUE_ASSIGN_OR_RETURN(
      WalWriter coord_writer,
      WalWriter::OpenForAppend(coord_path, coord_wal.valid_bytes,
                               options.shard_options.fsync_mode));
  db->AttachCoordinatorLog(std::move(coord_writer), options);

  db->next_gid_.store(id_floor, std::memory_order_relaxed);
  db->recovered_ = true;
  return db;
}

ShardedTransaction ShardedDatabase::Begin() {
  TxnId gid = next_gid_.fetch_add(1, std::memory_order_relaxed);
  return ShardedTransaction(this, gid);
}

ShardedTransaction ShardedDatabase::Begin(const BeginOptions& opts) {
  TxnId gid = next_gid_.fetch_add(1, std::memory_order_relaxed);
  return ShardedTransaction(this, gid, opts.level);
}

Status ShardedDatabase::Execute(
    const std::function<Status(ShardedTransaction&)>& body) {
  return Execute(BeginOptions{}, body);
}

Status ShardedDatabase::Execute(
    const BeginOptions& opts,
    const std::function<Status(ShardedTransaction&)>& body) {
  for (int attempt = 1;; ++attempt) {
    ShardedTransaction txn = Begin(opts);
    Status s = body(txn);
    // A shard that refused the declared contract at first touch
    // (FailedPrecondition) can never honor it on a re-run: terminal.
    if (s.IsFailedPrecondition()) return s;
    if (s.ok() && txn.active()) s = txn.Commit();
    if (txn.active()) (void)txn.Rollback();
    if (s.ok()) return s;
    if (!retry_->RetryTransaction(s, attempt)) return s;
    execute_retries_.fetch_add(1, std::memory_order_relaxed);
    const auto delay = retry_->RetryDelay(attempt);
    if (delay > std::chrono::microseconds::zero()) {
      std::this_thread::sleep_for(delay);
    }
  }
}

ShardedDatabase::RecoveryReport ShardedDatabase::RecoverInDoubt() {
  RecoveryReport rep;
  // gid -> (decision, participants resolved) so the coordinator's log can
  // be cleaned up and its recovery counters updated per global txn.
  std::map<TxnId, std::pair<bool, uint64_t>> resolved;
  for (auto& shard : shards_) {
    Engine& engine = shard->engine();
    for (TxnId gid : engine.InDoubtTransactions()) {
      // Presumed abort: only an explicitly logged commit decision rolls an
      // in-doubt participant forward.
      const bool commit = coordinator_.DecisionFor(gid).value_or(false);
      Status s = commit ? engine.CommitPrepared(gid)
                        : engine.AbortPrepared(gid);
      if (commit && s.IsSerializationFailure()) {
        // A certifying participant re-validated at the decision and found
        // its dangerous structure completed while in doubt: it aborted
        // itself (terminal, nothing leaked).  The gid still resolves —
        // recovery must not spin on it — but the participant is an abort,
        // not a forward roll.
        ++rep.decision_aborts;
        coordinator_.CountDecisionAbort();
        resolved[gid].first = true;
        continue;
      }
      if (!s.ok()) continue;  // raced with another resolver; nothing leaked
      if (commit) {
        ++rep.committed;
      } else {
        ++rep.aborted;
      }
      auto& entry = resolved[gid];
      entry.first = commit;
      ++entry.second;
    }
  }
  for (const auto& [gid, outcome] : resolved) {
    coordinator_.CountRecovery(outcome.first, outcome.second);
    if (outcome.first) coordinator_.ForgetDecision(gid);
  }
  return rep;
}

EngineStats ShardedDatabase::StatsAggregate() const {
  EngineStats total;
  for (const auto& shard : shards_) {
    const EngineStats s = shard->StatsSnapshot();
    total.reads += s.reads;
    total.predicate_reads += s.predicate_reads;
    total.writes += s.writes;
    total.commits += s.commits;
    total.aborts += s.aborts;
    total.deadlock_aborts += s.deadlock_aborts;
    total.serialization_aborts += s.serialization_aborts;
    total.blocked_ops += s.blocked_ops;
    // The taxonomy breakdown sums like its aggregate — dropping it here
    // silently broke `fcw + ssi + in_doubt == serialization_aborts` at the
    // facade level.
    total.fcw_aborts += s.fcw_aborts;
    total.ssi_aborts += s.ssi_aborts;
    total.in_doubt_aborts += s.in_doubt_aborts;
  }
  return total;
}

check::CheckerReport ShardedDatabase::CheckerReportAggregate() const {
  check::CheckerReport total;
  for (const auto& shard : shards_) {
    const check::OnlineChecker* c = shard->checker();
    if (c == nullptr) continue;
    const check::CheckerReport r = c->Report();
    total.commits_certified += r.commits_certified;
    total.aborts_observed += r.aborts_observed;
    total.violations += r.violations;
    total.allowed_anomalies += r.allowed_anomalies;
    total.dirty_reads_allowed += r.dirty_reads_allowed;
    total.edges_added += r.edges_added;
    total.cycle_checks += r.cycle_checks;
    total.nodes_pruned += r.nodes_pruned;
    total.live_nodes += r.live_nodes;
    total.peak_live_nodes += r.peak_live_nodes;
    total.first_violations.insert(total.first_violations.end(),
                                  r.first_violations.begin(),
                                  r.first_violations.end());
  }
  return total;
}

size_t ShardedDatabase::GarbageCollectVersions() {
  size_t dropped = 0;
  for (const auto& shard : shards_) dropped += shard->GarbageCollectVersions();
  return dropped;
}

size_t ShardedDatabase::VersionCountAggregate() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->VersionCount();
  return n;
}

std::optional<Timestamp> ShardedDatabase::OldestOpenSnapshot() const {
  std::optional<Timestamp> oldest;
  for (const auto& shard : shards_) {
    std::optional<Timestamp> s = shard->OldestOpenSnapshot();
    if (s.has_value() && (!oldest.has_value() || *s < *oldest)) oldest = s;
  }
  return oldest;
}

Rng ShardedDatabase::ForkRng() {
  std::lock_guard<std::mutex> lk(rng_mu_);
  return Rng(rng_.Next());
}

// ---------------------------------------------------------------------------
// ShardedTransaction
// ---------------------------------------------------------------------------

ShardedTransaction::ShardedTransaction(ShardedDatabase* db, TxnId gid,
                                       std::optional<IsolationLevel> level)
    : db_(db), gid_(gid), active_(true), level_(level) {
  parts_.resize(static_cast<size_t>(db->num_shards()));
}

ShardedTransaction::ShardedTransaction(ShardedTransaction&& other) noexcept
    : db_(other.db_),
      gid_(other.gid_),
      active_(other.active_),
      level_(other.level_),
      parts_(std::move(other.parts_)) {
  other.db_ = nullptr;
  other.active_ = false;
  other.parts_.clear();
}

ShardedTransaction& ShardedTransaction::operator=(
    ShardedTransaction&& other) noexcept {
  if (this != &other) {
    AbortParts();
    db_ = other.db_;
    gid_ = other.gid_;
    active_ = other.active_;
    level_ = other.level_;
    parts_ = std::move(other.parts_);
    other.db_ = nullptr;
    other.active_ = false;
    other.parts_.clear();
  }
  return *this;
}

ShardedTransaction::~ShardedTransaction() { AbortParts(); }

void ShardedTransaction::AbortParts() {
  for (auto& part : parts_) {
    if (part.has_value() && part->active()) (void)part->Rollback();
  }
  active_ = false;
}

int ShardedTransaction::shards_touched() const {
  int n = 0;
  for (const auto& part : parts_) {
    if (part.has_value()) ++n;
  }
  return n;
}

Result<Transaction*> ShardedTransaction::Part(int shard) {
  auto& slot = parts_[static_cast<size_t>(shard)];
  if (!slot.has_value()) {
    // The same global id on every shard: each shard's history subscripts
    // the same global transaction identically, and in-doubt participants
    // are resolvable against the coordinator log by id alone.
    CRITIQUE_ASSIGN_OR_RETURN(
        Transaction t,
        db_->shard(shard).BeginWithId(gid_, BeginOptions{level_}));
    slot.emplace(std::move(t));
  }
  return &*slot;
}

Status ShardedTransaction::ObservePartStatus(Status s) {
  // A participant the engine already finished (deadlock victim,
  // serialization refusal, dead handle) dooms the global transaction:
  // abort everyone now so no half of it lingers.  `kWouldBlock` is not
  // terminal — the operation did nothing and may be retried.
  if (s.IsDeadlock() || s.IsSerializationFailure() ||
      s.IsTransactionAborted()) {
    AbortParts();
  }
  return s;
}

Result<std::optional<Row>> ShardedTransaction::Get(const ItemId& id) {
  if (!active_) {
    return Status::TransactionAborted("sharded transaction finished");
  }
  CRITIQUE_ASSIGN_OR_RETURN(Transaction * part, Part(db_->ShardOf(id)));
  auto r = part->Get(id);
  if (!r.ok()) return ObservePartStatus(r.status());
  return r;
}

Result<Value> ShardedTransaction::GetScalar(const ItemId& id) {
  CRITIQUE_ASSIGN_OR_RETURN(std::optional<Row> row, Get(id));
  if (!row.has_value()) return Value();
  return row->scalar();
}

Result<std::vector<std::pair<ItemId, Row>>> ShardedTransaction::GetWhere(
    const std::string& name, const Predicate& pred) {
  if (!active_) {
    return Status::TransactionAborted("sharded transaction finished");
  }
  std::vector<std::pair<ItemId, Row>> out;
  for (int s = 0; s < db_->num_shards(); ++s) {
    CRITIQUE_ASSIGN_OR_RETURN(Transaction * part, Part(s));
    auto r = part->GetWhere(name, pred);
    if (!r.ok()) return ObservePartStatus(r.status());
    auto rows = std::move(r).value();
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  return out;
}

Status ShardedTransaction::Put(const ItemId& id, Row row) {
  if (!active_) {
    return Status::TransactionAborted("sharded transaction finished");
  }
  CRITIQUE_ASSIGN_OR_RETURN(Transaction * part, Part(db_->ShardOf(id)));
  return ObservePartStatus(part->Put(id, std::move(row)));
}

Status ShardedTransaction::Put(const ItemId& id, Value v) {
  return Put(id, Row::Scalar(std::move(v)));
}

Status ShardedTransaction::Insert(const ItemId& id, Row row) {
  if (!active_) {
    return Status::TransactionAborted("sharded transaction finished");
  }
  CRITIQUE_ASSIGN_OR_RETURN(Transaction * part, Part(db_->ShardOf(id)));
  return ObservePartStatus(part->Insert(id, std::move(row)));
}

Status ShardedTransaction::Erase(const ItemId& id) {
  if (!active_) {
    return Status::TransactionAborted("sharded transaction finished");
  }
  CRITIQUE_ASSIGN_OR_RETURN(Transaction * part, Part(db_->ShardOf(id)));
  return ObservePartStatus(part->Erase(id));
}

Status ShardedTransaction::Update(
    const ItemId& id,
    const std::function<Row(const std::optional<Row>&)>& transform) {
  if (!active_) {
    return Status::TransactionAborted("sharded transaction finished");
  }
  CRITIQUE_ASSIGN_OR_RETURN(Transaction * part, Part(db_->ShardOf(id)));
  return ObservePartStatus(part->Update(id, transform));
}

Status ShardedTransaction::Commit() {
  if (!active_) {
    return Status::TransactionAborted("sharded transaction finished");
  }

  std::vector<Transaction*> open;
  for (auto& part : parts_) {
    if (part.has_value() && part->active()) open.push_back(&*part);
  }

  if (open.empty()) {  // read-nothing transaction: trivially committed
    active_ = false;
    return Status::OK();
  }

  if (open.size() == 1) {
    // Single-shard fast path: the shard's own commit is the whole
    // protocol.  A cooperative `kWouldBlock` leaves the handle usable for
    // the schedule to retry, exactly like `Transaction::Commit`.
    Status s = open.front()->Commit();
    if (s.IsWouldBlock()) return s;
    active_ = false;
    if (s.ok()) {
      db_->single_shard_commits_.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }

  Status s = db_->coordinator_.Commit(gid_, open);
  // On success or global abort every participant handle is finished.  On a
  // failpoint "crash" (`kInternal`) prepared participants survive their
  // handles: the rollback below is refused engine-side and they stay in
  // doubt for RecoverInDoubt.
  AbortParts();
  return s;
}

Status ShardedTransaction::Rollback() {
  if (db_ == nullptr) {
    return Status::TransactionAborted("moved-from sharded transaction");
  }
  if (!active_) return Status::OK();
  AbortParts();
  return Status::OK();
}

}  // namespace critique
