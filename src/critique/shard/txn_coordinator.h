#ifndef CRITIQUE_SHARD_TXN_COORDINATOR_H_
#define CRITIQUE_SHARD_TXN_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "critique/common/status.h"
#include "critique/db/transaction.h"
#include "critique/obs/metrics.h"
#include "critique/wal/wal_record.h"
#include "critique/wal/wal_sink.h"

namespace critique {

/// Injectable coordinator "crash" points for the in-doubt recovery tests:
/// the coordinator stops mid-protocol, returns `kInternal`, and leaves its
/// prepared participants in doubt for `ShardedDatabase::RecoverInDoubt` to
/// resolve.
enum class CoordinatorFailpoint {
  kNone,
  /// Crash after every participant prepared but before the commit decision
  /// is logged.  Presumed abort: recovery finds no decision and aborts.
  kBeforeDecision,
  /// Crash after the commit decision is logged but before any participant
  /// learned it.  Recovery finds the decision and commits.
  kAfterDecision,
};

/// Counters exposed for benches and tests.
struct CoordinatorStats {
  uint64_t started = 0;           ///< cross-shard commits attempted
  uint64_t committed = 0;         ///< full 2PC rounds that committed
  uint64_t aborted = 0;           ///< global aborts (a participant refused)
  uint64_t prepare_failures = 0;  ///< participants that refused prepare
  /// Participants refused at the *decision* phase: a certifying (SSI)
  /// engine re-validates at CommitPrepared, and an in-doubt participant
  /// whose dangerous structure completed while prepared aborts there.
  uint64_t decision_aborts = 0;
  uint64_t crashes = 0;           ///< failpoint-injected crashes
  uint64_t recovered_commits = 0; ///< in-doubt participants recovered forward
  uint64_t recovered_aborts = 0;  ///< in-doubt participants presumed-aborted

  /// One line: "started=12 committed=10 aborted=2 ...".
  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const CoordinatorStats& stats);

/// \brief The two-phase-commit coordinator for cross-shard transactions.
///
/// Phase 1 prepares every participant in shard order; any refusal turns
/// into a *global abort* — already-prepared participants get
/// `AbortPrepared`, unprepared ones roll back, and the refusing status
/// (typically `kSerializationFailure`, retryable) is returned so the
/// session layer's `RetryPolicy` restarts the whole transaction.  Phase 2
/// logs the commit decision, then delivers `CommitPrepared` to every
/// participant; after all acknowledge, the decision is forgotten.
///
/// A certifying participant (SSI) re-validates at `CommitPrepared` and
/// may refuse with `kSerializationFailure` when a dangerous structure
/// completed while it was in doubt (engine.h, 2PC protocol notes).  The
/// refusal is an abort acknowledgement — the participant has already
/// rolled back — and the *logged* decision is still commit, so the
/// coordinator keeps delivering `CommitPrepared` to every other
/// participant (identical to what `RecoverInDoubt` would do from the
/// same log after a crash: every participant that can commit commits,
/// refusers abort), and counts each refusal as a `decision_abort`.  The
/// returned status depends on what was published: if *no* participant
/// committed, the global transaction is a clean abort and the retryable
/// `kSerializationFailure` surfaces (the session layer may safely
/// re-run the body); if some participants committed and others refused,
/// the decision was partially applied and the coordinator answers
/// `kInternal` — deliberately non-retryable, because an automatic
/// re-run would silently re-apply the committed shards' effects.
/// Serializability of each shard's own history is preserved either way
/// (that is exactly what the refusing engine enforced); the partial
/// case costs global atomicity — the same exposure a coordinator crash
/// between decision deliveries leaves, surfaced the same way (an
/// `kInternal` answer the application must reconcile).  Per-shard
/// Locking SERIALIZABLE participants never refuse a decision; see
/// docs/architecture.md.
///
/// The decision log implements **presumed abort**: an in-doubt participant
/// whose global transaction has no logged decision must abort.  Only the
/// window between logging and the last acknowledgement keeps an entry, so
/// the log stays O(in-flight cross-shard transactions).
///
/// With `AttachLog` the decision log is *persistent*: the commit decision
/// is appended to a WAL (`kDecision`) and made durable **before** the
/// in-memory entry is set and phase 2 begins — the write-ahead rule.  If
/// the append fails (a WAL failpoint "crashed" the log device), the
/// decision was never made: the coordinator counts a crash and answers
/// `kInternal` with every participant still in doubt, and restart
/// recovery presumes abort — exactly what a real coordinator losing its
/// log volume mid-decision must do.  `kDecisionEnd` closes an entry once
/// every participant acknowledged; it is buffered, not synced — losing it
/// merely leaves a stale (harmless, idempotently re-ignorable) decision
/// in the recovered log.
///
/// Thread-safe: the decision log and counters are mutex-guarded; the
/// participant calls themselves run on the caller's thread (one global
/// transaction is one session driven by one thread, the same contract as
/// everywhere else).
class TxnCoordinator {
 public:
  /// Runs 2PC over `parts` (the per-shard sessions of global transaction
  /// `gid`).  All participant handles are finished on return except when a
  /// failpoint "crash" leaves prepared ones in doubt.
  Status Commit(TxnId gid, const std::vector<Transaction*>& parts);

  /// The logged decision for `gid`: true = commit; nullopt = no decision,
  /// which presumed abort reads as "abort".
  std::optional<bool> DecisionFor(TxnId gid) const;

  /// Drops `gid`'s log entry once every in-doubt participant is resolved.
  void ForgetDecision(TxnId gid);

  /// Attaches the persistent decision log (not owned; must outlive the
  /// coordinator).  Install before any commit starts; nullptr detaches.
  void AttachLog(WalSink* log);

  /// Seeds the in-memory decision table from a recovered log — called by
  /// `ShardedDatabase::Recover` with the still-open (`kDecision` without
  /// `kDecisionEnd`) entries, before any new traffic.
  void RestoreDecisions(std::map<TxnId, bool> decisions);

  /// Record recovery outcomes (called by `ShardedDatabase::RecoverInDoubt`).
  void CountRecovery(bool committed, uint64_t participants);

  /// Record a participant that refused its logged commit decision at
  /// `CommitPrepared` (certifying-engine re-validation; see class notes).
  void CountDecisionAbort();

  /// Installs (or clears, with kNone) a crash point.  Sticky until reset.
  void set_failpoint(CoordinatorFailpoint f);

  /// Test failpoint: runs after every participant prepared, before the
  /// decision is logged — the in-doubt window, made deterministic (the
  /// callback counterpart of the crash failpoints).  Runs on the
  /// committing thread with no coordinator lock held; pass nullptr to
  /// clear.  Install before any commit starts.
  void set_in_doubt_hook(std::function<void(TxnId)> hook) {
    in_doubt_hook_ = std::move(hook);
  }

  CoordinatorStats stats() const;

  /// Phase-1 (prepare-all) wall time per 2PC round, microseconds.
  const obs::Histogram& prepare_histogram() const { return prepare_hist_; }

  /// Phase-2 (decision delivery) wall time per 2PC round, microseconds.
  const obs::Histogram& decision_histogram() const { return decision_hist_; }

  /// Registers phase histograms plus `CoordinatorStats` gauges with `reg`
  /// under `prefix` ("coord." by convention).  The coordinator must
  /// outlive the registry entries.
  void RegisterMetrics(obs::MetricsRegistry& reg, const std::string& prefix);

 private:
  mutable std::mutex mu_;
  std::map<TxnId, bool> decisions_;
  WalSink* log_ = nullptr;  ///< persistent decision log; not owned
  CoordinatorFailpoint failpoint_ = CoordinatorFailpoint::kNone;
  std::function<void(TxnId)> in_doubt_hook_;  ///< test failpoint
  CoordinatorStats stats_;
  // Internally synchronized — recorded outside mu_.
  obs::Histogram prepare_hist_;
  obs::Histogram decision_hist_;
};

}  // namespace critique

#endif  // CRITIQUE_SHARD_TXN_COORDINATOR_H_
