#include "critique/shard/txn_coordinator.h"

namespace critique {

std::string CoordinatorStats::ToString() const {
  return "started=" + std::to_string(started) +
         " committed=" + std::to_string(committed) +
         " aborted=" + std::to_string(aborted) +
         " prepare_failures=" + std::to_string(prepare_failures) +
         " crashes=" + std::to_string(crashes) +
         " recovered_commits=" + std::to_string(recovered_commits) +
         " recovered_aborts=" + std::to_string(recovered_aborts);
}

Status TxnCoordinator::Commit(TxnId gid,
                              const std::vector<Transaction*>& parts) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.started;
  }

  // Phase 1: prepare in shard order.  A refusal means the refusing engine
  // already rolled its participant back (or the participant was already
  // dead); everyone else must now abort too.
  for (size_t i = 0; i < parts.size(); ++i) {
    Status s = parts[i]->Prepare();
    if (s.ok()) continue;
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.prepare_failures;
    ++stats_.aborted;
    // Global abort.  Prepared predecessors take the abort decision;
    // unprepared successors (and the refuser, if its handle survived) roll
    // back plainly.  Presumed abort: nothing to log.
    for (size_t j = 0; j < i; ++j) (void)parts[j]->AbortPrepared();
    for (size_t j = i; j < parts.size(); ++j) {
      if (parts[j]->active()) (void)parts[j]->Rollback();
    }
    return s;
  }

  CoordinatorFailpoint fp;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fp = failpoint_;
    if (fp == CoordinatorFailpoint::kBeforeDecision) {
      ++stats_.crashes;
    } else {
      decisions_[gid] = true;
      if (fp == CoordinatorFailpoint::kAfterDecision) ++stats_.crashes;
    }
  }
  if (fp == CoordinatorFailpoint::kBeforeDecision) {
    return Status::Internal(
        "coordinator crashed before logging a decision for gid " +
        std::to_string(gid) + "; participants left in doubt");
  }
  if (fp == CoordinatorFailpoint::kAfterDecision) {
    return Status::Internal(
        "coordinator crashed after logging commit for gid " +
        std::to_string(gid) + "; participants left in doubt");
  }

  // Phase 2: deliver the decision.  Prepare promised this cannot fail; a
  // participant disagreeing is a protocol bug worth surfacing loudly.
  for (Transaction* p : parts) {
    Status s = p->CommitPrepared();
    if (!s.ok()) {
      return Status::Internal("participant refused CommitPrepared for gid " +
                              std::to_string(gid) + ": " + s.ToString());
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  decisions_.erase(gid);  // all acknowledged; presumed abort forgets
  ++stats_.committed;
  return Status::OK();
}

std::optional<bool> TxnCoordinator::DecisionFor(TxnId gid) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = decisions_.find(gid);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

void TxnCoordinator::ForgetDecision(TxnId gid) {
  std::lock_guard<std::mutex> lk(mu_);
  decisions_.erase(gid);
}

void TxnCoordinator::CountRecovery(bool committed, uint64_t participants) {
  std::lock_guard<std::mutex> lk(mu_);
  if (committed) {
    stats_.recovered_commits += participants;
  } else {
    stats_.recovered_aborts += participants;
  }
}

void TxnCoordinator::set_failpoint(CoordinatorFailpoint f) {
  std::lock_guard<std::mutex> lk(mu_);
  failpoint_ = f;
}

CoordinatorStats TxnCoordinator::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace critique
