#include "critique/shard/txn_coordinator.h"

#include <ostream>

namespace critique {

std::string CoordinatorStats::ToString() const {
  return "started=" + std::to_string(started) +
         " committed=" + std::to_string(committed) +
         " aborted=" + std::to_string(aborted) +
         " prepare_failures=" + std::to_string(prepare_failures) +
         " decision_aborts=" + std::to_string(decision_aborts) +
         " crashes=" + std::to_string(crashes) +
         " recovered_commits=" + std::to_string(recovered_commits) +
         " recovered_aborts=" + std::to_string(recovered_aborts);
}

std::ostream& operator<<(std::ostream& os, const CoordinatorStats& stats) {
  return os << stats.ToString();
}

Status TxnCoordinator::Commit(TxnId gid,
                              const std::vector<Transaction*>& parts) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.started;
  }

  // Phase 1: prepare in shard order.  A refusal means the refusing engine
  // already rolled its participant back (or the participant was already
  // dead); everyone else must now abort too.
  {
    obs::ScopedTimer t(prepare_hist_);
    for (size_t i = 0; i < parts.size(); ++i) {
      Status s = parts[i]->Prepare();
      if (s.ok()) continue;
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.prepare_failures;
      ++stats_.aborted;
      // Global abort.  Prepared predecessors take the abort decision;
      // unprepared successors (and the refuser, if its handle survived)
      // roll back plainly.  Presumed abort: nothing to log.
      for (size_t j = 0; j < i; ++j) (void)parts[j]->AbortPrepared();
      for (size_t j = i; j < parts.size(); ++j) {
        if (parts[j]->active()) (void)parts[j]->Rollback();
      }
      return s;
    }
  }

  // All participants are prepared (in doubt) and no decision exists yet —
  // the window the deterministic failpoint exposes to tests.
  if (in_doubt_hook_) in_doubt_hook_(gid);

  CoordinatorFailpoint fp;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fp = failpoint_;
    if (fp == CoordinatorFailpoint::kBeforeDecision) ++stats_.crashes;
  }
  if (fp == CoordinatorFailpoint::kBeforeDecision) {
    return Status::Internal(
        "coordinator crashed before logging a decision for gid " +
        std::to_string(gid) + "; participants left in doubt");
  }

  // Write-ahead: the commit decision becomes durable before the in-memory
  // table (which phase 2 and recovery readers consult) ever shows it.  A
  // failed append means the decision was never made — the log device died
  // first — so the coordinator "crashes" and presumed abort governs.
  if (log_ != nullptr) {
    Status ls = log_->AppendDurable(WalRecord::Decision(gid, true));
    if (!ls.ok()) {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.crashes;
      return Status::Internal(
          "coordinator log died before the commit decision for gid " +
          std::to_string(gid) + " became durable (" + ls.ToString() +
          "); participants left in doubt");
    }
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    decisions_[gid] = true;
    if (fp == CoordinatorFailpoint::kAfterDecision) ++stats_.crashes;
  }
  if (fp == CoordinatorFailpoint::kAfterDecision) {
    return Status::Internal(
        "coordinator crashed after logging commit for gid " +
        std::to_string(gid) + "; participants left in doubt");
  }

  // Phase 2: deliver the decision.  A lock-scheduler participant can
  // never refuse here; a certifying (SSI) participant may answer
  // kSerializationFailure when its dangerous structure completed while in
  // doubt — it has already rolled itself back (an abort acknowledgement).
  // The *logged* decision is still commit, so every other participant
  // still receives CommitPrepared — exactly what crash recovery would do
  // with the same log — and the retryable refusal surfaces to the session
  // layer afterwards.  Anything but a serialization refusal is a protocol
  // bug worth surfacing loudly.
  Status refusal = Status::OK();
  uint64_t refused = 0;
  uint64_t committed_parts = 0;
  {
    obs::ScopedTimer t(decision_hist_);
    for (Transaction* p : parts) {
      Status s = p->CommitPrepared();
      if (s.ok()) {
        ++committed_parts;
        continue;
      }
      if (!s.IsSerializationFailure()) {
        return Status::Internal("participant refused CommitPrepared for gid " +
                                std::to_string(gid) + ": " + s.ToString());
      }
      if (refusal.ok()) refusal = s;
      ++refused;
    }
  }

  // All participants are terminal: close the durable entry (buffered — a
  // lost kDecisionEnd only leaves a stale decision recovery ignores).
  if (log_ != nullptr) (void)log_->Append(WalRecord::DecisionEnd(gid));
  std::lock_guard<std::mutex> lk(mu_);
  decisions_.erase(gid);  // all participants terminal; nothing left to recover
  if (!refusal.ok()) {
    stats_.decision_aborts += refused;
    ++stats_.aborted;
    if (committed_parts == 0) {
      // Nothing published anywhere: the global transaction is a clean
      // abort and the serialization refusal is safe to retry.
      return refusal;
    }
    // Some participants durably committed, the refusers aborted: the
    // decision was *partially applied*.  This must NOT surface as a
    // retryable status — the session layer's automatic retry would
    // silently re-apply the committed shards' effects.  Like a
    // coordinator crash, it surfaces as kInternal for the application to
    // reconcile (every participant is terminal; nothing is in doubt).
    return Status::Internal(
        "commit decision for gid " + std::to_string(gid) +
        " partially applied: " + std::to_string(committed_parts) +
        " participant(s) committed, " + std::to_string(refused) +
        " refused at the decision phase (" + refusal.ToString() +
        "); cross-shard atomicity was lost — do not blindly retry");
  }
  ++stats_.committed;
  return Status::OK();
}

std::optional<bool> TxnCoordinator::DecisionFor(TxnId gid) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = decisions_.find(gid);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

void TxnCoordinator::ForgetDecision(TxnId gid) {
  if (log_ != nullptr) (void)log_->Append(WalRecord::DecisionEnd(gid));
  std::lock_guard<std::mutex> lk(mu_);
  decisions_.erase(gid);
}

void TxnCoordinator::AttachLog(WalSink* log) {
  std::lock_guard<std::mutex> lk(mu_);
  log_ = log;
}

void TxnCoordinator::RestoreDecisions(std::map<TxnId, bool> decisions) {
  std::lock_guard<std::mutex> lk(mu_);
  decisions_ = std::move(decisions);
}

void TxnCoordinator::CountRecovery(bool committed, uint64_t participants) {
  std::lock_guard<std::mutex> lk(mu_);
  if (committed) {
    stats_.recovered_commits += participants;
  } else {
    stats_.recovered_aborts += participants;
  }
}

void TxnCoordinator::CountDecisionAbort() {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.decision_aborts;
}

void TxnCoordinator::set_failpoint(CoordinatorFailpoint f) {
  std::lock_guard<std::mutex> lk(mu_);
  failpoint_ = f;
}

CoordinatorStats TxnCoordinator::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void TxnCoordinator::RegisterMetrics(obs::MetricsRegistry& reg,
                                     const std::string& prefix) {
  reg.RegisterGauge(prefix + "started", [this] { return stats().started; });
  reg.RegisterGauge(prefix + "committed",
                    [this] { return stats().committed; });
  reg.RegisterGauge(prefix + "aborted", [this] { return stats().aborted; });
  reg.RegisterGauge(prefix + "prepare_failures",
                    [this] { return stats().prepare_failures; });
  reg.RegisterGauge(prefix + "decision_aborts",
                    [this] { return stats().decision_aborts; });
  reg.RegisterHistogram(prefix + "prepare_us", &prepare_hist_);
  reg.RegisterHistogram(prefix + "decision_us", &decision_hist_);
}

}  // namespace critique
