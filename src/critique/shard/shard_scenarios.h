#ifndef CRITIQUE_SHARD_SHARD_SCENARIOS_H_
#define CRITIQUE_SHARD_SHARD_SCENARIOS_H_

#include <string>
#include <utility>

#include "critique/shard/sharded_database.h"

namespace critique {

/// \brief Outcome of one cross-shard anomaly probe.
///
/// The probes generalize the paper's single-site anomaly scenarios
/// (harness/scenarios.cc) across coordinator boundaries: a fixed pair of
/// items on *different* shards, a fixed interleaving, and a semantic
/// judgment over observed values and final state.  What they demonstrate:
///
///  * per-shard Snapshot Isolation does NOT compose — each shard's local
///    history is impeccable SI, yet the global run exhibits write skew
///    (A5B across shards) and fractured reads of an atomically-committed
///    transfer (a non-atomic "global snapshot", impossible on one SI
///    site);
///  * per-shard Locking SERIALIZABLE + 2PC DOES compose — locks held
///    through the in-doubt window make the global history serializable,
///    at the price of blocking and cross-shard deadlocks that only the
///    lock-wait machinery (not any single shard's waits-for graph) can
///    break.
struct ShardScenarioOutcome {
  bool anomaly = false;  ///< the global invariant was violated
  bool blocked = false;  ///< some step answered kWouldBlock (locks engaged)
  bool aborted = false;  ///< some transaction was sacrificed to proceed
  std::string detail;    ///< human-readable account of what happened
};

/// First pair of generated account names living on different shards
/// (InvalidArgument when the router has a single shard).
Result<std::pair<ItemId, ItemId>> PickCrossShardPair(const ShardRouter& router);

/// Cross-shard write skew (the paper's A5B, split across shards): items x
/// and y on different shards, constraint x + y >= 0, two transactions
/// each checking the joint balance and withdrawing from *their own* item.
/// Loads its own data — call on a freshly constructed facade.
Result<ShardScenarioOutcome> RunCrossShardWriteSkew(ShardedDatabase& db);

/// Non-atomic global snapshot: a reader overlaps an atomically-committed
/// (2PC) cross-shard transfer and may observe the debit without the
/// credit — per-shard snapshots are taken at first touch, not at one
/// global instant.  Loads its own data — call on a fresh facade.
Result<ShardScenarioOutcome> RunFracturedRead(ShardedDatabase& db);

/// Step-IAT across shards (Li et al., arXiv:2110.14230): a pure
/// anti-dependency cycle of length three with the items spread over the
/// shards — T1 reads x and writes y, T2 reads y and writes z, T3 reads z
/// and writes x.  Write sets are pairwise disjoint, so per-shard
/// First-Committer-Wins never fires; per-shard SI commits all three on
/// untouched snapshots and the *global* history is unserializable even
/// though no single shard sees more than two of the edges.  Loads its own
/// data — call on a fresh facade.
Result<ShardScenarioOutcome> RunCrossShardStepIat(ShardedDatabase& db);

/// Sawtooth across shards: two writers commit x=y=1 then y=2,z=2 (each
/// atomically, via 2PC when the pair spans shards) while a reader's three
/// statements interleave the commits — its observed triple can fit no
/// prefix of the global history.  Per-shard snapshots taken at first
/// touch make the fracture possible even with every shard at SI.  Loads
/// its own data — call on a fresh facade.
Result<ShardScenarioOutcome> RunCrossShardSawtooth(ShardedDatabase& db);

}  // namespace critique

#endif  // CRITIQUE_SHARD_SHARD_SCENARIOS_H_
