#ifndef CRITIQUE_SHARD_SHARD_ROUTER_H_
#define CRITIQUE_SHARD_SHARD_ROUTER_H_

#include <cstdint>

#include "critique/model/row.h"

namespace critique {

/// \brief Deterministic hash partitioning of the keyspace across N shards.
///
/// FNV-1a over the item id, reduced modulo the shard count.  The mapping
/// is a pure function of (id, num_shards): every layer — facade, workload
/// generator, benches, tests — computes the same placement without
/// coordination, which is what lets the workload generator *construct*
/// same-shard and cross-shard key pairs on purpose.
class ShardRouter {
 public:
  explicit ShardRouter(int num_shards)
      : num_shards_(num_shards < 1 ? 1 : num_shards) {}

  int num_shards() const { return num_shards_; }

  /// The shard owning `id`, in [0, num_shards).
  int ShardOf(const ItemId& id) const {
    return static_cast<int>(Fnv1a(id) % static_cast<uint64_t>(num_shards_));
  }

  /// 64-bit FNV-1a — stable across platforms and runs.
  static uint64_t Fnv1a(const ItemId& id) {
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : id) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    return h;
  }

 private:
  int num_shards_;
};

}  // namespace critique

#endif  // CRITIQUE_SHARD_SHARD_ROUTER_H_
