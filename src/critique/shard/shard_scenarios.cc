#include "critique/shard/shard_scenarios.h"

#include <cstdint>
#include <functional>

namespace critique {

Result<std::pair<ItemId, ItemId>> PickCrossShardPair(
    const ShardRouter& router) {
  if (router.num_shards() < 2) {
    return Status::InvalidArgument(
        "cross-shard scenarios need at least 2 shards");
  }
  const ItemId first = "acct0";
  const int first_shard = router.ShardOf(first);
  for (int k = 1; k < 256; ++k) {
    ItemId candidate = "acct" + std::to_string(k);
    if (router.ShardOf(candidate) != first_shard) {
      return std::make_pair(first, candidate);
    }
  }
  return Status::Internal("no cross-shard pair among 256 candidate names");
}

Result<ShardScenarioOutcome> RunCrossShardWriteSkew(ShardedDatabase& db) {
  CRITIQUE_ASSIGN_OR_RETURN(auto pair, PickCrossShardPair(db.router()));
  const ItemId x = pair.first;
  const ItemId y = pair.second;
  CRITIQUE_RETURN_NOT_OK(db.Load(x, Value(50)));
  CRITIQUE_RETURN_NOT_OK(db.Load(y, Value(50)));

  ShardScenarioOutcome out;
  ShardedTransaction t1 = db.Begin();
  ShardedTransaction t2 = db.Begin();

  // Both transactions audit the joint constraint x + y >= 0 and, seeing
  // total 100, each withdraws 100 from its own item — the A5B shape, with
  // the two items on different shards.
  CRITIQUE_ASSIGN_OR_RETURN(Value v1x, t1.GetScalar(x));
  CRITIQUE_ASSIGN_OR_RETURN(Value v1y, t1.GetScalar(y));
  CRITIQUE_ASSIGN_OR_RETURN(Value v2x, t2.GetScalar(x));
  CRITIQUE_ASSIGN_OR_RETURN(Value v2y, t2.GetScalar(y));
  if (v1x.AsInt() + v1y.AsInt() < 100 || v2x.AsInt() + v2y.AsInt() < 100) {
    return Status::Internal("scenario setup: unexpected initial balances");
  }

  Status w1 = t1.Put(x, Value(v1x.AsInt() - 100));
  Status w2 = t2.Put(y, Value(v2y.AsInt() - 100));

  if (w1.IsWouldBlock() && w2.IsWouldBlock()) {
    // Cross-shard deadlock: shard(x) has T1 waiting on T2's read lock,
    // shard(y) has T2 waiting on T1's — neither local waits-for graph
    // sees the cycle.  Play the distributed resolver: sacrifice T2.
    out.blocked = true;
    out.aborted = true;
    CRITIQUE_RETURN_NOT_OK(t2.Rollback());
    w1 = t1.Put(x, Value(v1x.AsInt() - 100));
  } else if (w1.IsWouldBlock() || w2.IsWouldBlock()) {
    out.blocked = true;
  }

  // Resolve T1 then T2.  A write still parked on the other transaction's
  // locks gets one retry once that transaction finished; a write that
  // stays blocked means its transaction is sacrificed (the lock-wait
  // timeout answer).  A transaction that never wrote cannot produce the
  // anomaly.
  auto resolve = [&out](ShardedTransaction& txn, Status& w,
                        const std::function<Status()>& retry) {
    if (w.IsWouldBlock() && txn.active()) w = retry();
    if (w.ok()) {
      if (!txn.Commit().ok()) out.aborted = true;
    } else if (txn.active()) {
      (void)txn.Rollback();
      out.aborted = true;
    }
  };
  resolve(t1, w1, [&] { return t1.Put(x, Value(v1x.AsInt() - 100)); });
  resolve(t2, w2, [&] { return t2.Put(y, Value(v2y.AsInt() - 100)); });

  // Judge the final state with a fresh global read.
  ShardedTransaction audit = db.Begin();
  CRITIQUE_ASSIGN_OR_RETURN(Value fx, audit.GetScalar(x));
  CRITIQUE_ASSIGN_OR_RETURN(Value fy, audit.GetScalar(y));
  CRITIQUE_RETURN_NOT_OK(audit.Commit());
  const int64_t total = fx.AsInt() + fy.AsInt();
  out.anomaly = total < 0;
  out.detail = "final " + x + "=" + fx.ToString() + " " + y + "=" +
               fy.ToString() + " (sum " + std::to_string(total) +
               ", constraint sum >= 0)";
  return out;
}

Result<ShardScenarioOutcome> RunFracturedRead(ShardedDatabase& db) {
  CRITIQUE_ASSIGN_OR_RETURN(auto pair, PickCrossShardPair(db.router()));
  const ItemId x = pair.first;
  const ItemId y = pair.second;
  CRITIQUE_RETURN_NOT_OK(db.Load(x, Value(100)));
  CRITIQUE_RETURN_NOT_OK(db.Load(y, Value(100)));

  ShardScenarioOutcome out;
  ShardedTransaction reader = db.Begin();
  ShardedTransaction writer = db.Begin();

  // The reader audits the invariant x + y == 200, touching shard(x) first;
  // its shard(y) snapshot is only taken later — after the writer's
  // atomically-committed transfer, if the engines allow the overlap.
  CRITIQUE_ASSIGN_OR_RETURN(Value rx, reader.GetScalar(x));

  // Writer: move 50 from x to y, committed atomically through 2PC.
  CRITIQUE_ASSIGN_OR_RETURN(Value wx, writer.GetScalar(x));
  Status wput = writer.Put(x, Value(wx.AsInt() - 50));

  if (wput.IsWouldBlock()) {
    // Locking shards: the reader's long read lock on x holds the transfer
    // off until the audit is done — that blocking is exactly what buys
    // the consistent global read.
    out.blocked = true;
    CRITIQUE_ASSIGN_OR_RETURN(Value ry, reader.GetScalar(y));
    CRITIQUE_RETURN_NOT_OK(reader.Commit());
    out.anomaly = rx.AsInt() + ry.AsInt() != 200;
    out.detail = "reader saw " + std::to_string(rx.AsInt()) + " + " +
                 std::to_string(ry.AsInt()) + " (transfer blocked behind it)";
    // Let the transfer finish so the scenario leaves a clean final state.
    CRITIQUE_RETURN_NOT_OK(writer.Put(x, Value(wx.AsInt() - 50)));
    CRITIQUE_ASSIGN_OR_RETURN(Value wy, writer.GetScalar(y));
    CRITIQUE_RETURN_NOT_OK(writer.Put(y, Value(wy.AsInt() + 50)));
    CRITIQUE_RETURN_NOT_OK(writer.Commit());
    return out;
  }
  CRITIQUE_RETURN_NOT_OK(wput);
  CRITIQUE_ASSIGN_OR_RETURN(Value wy, writer.GetScalar(y));
  CRITIQUE_RETURN_NOT_OK(writer.Put(y, Value(wy.AsInt() + 50)));
  CRITIQUE_RETURN_NOT_OK(writer.Commit());  // 2PC: debit+credit atomic

  // Only now does the reader touch shard(y): its snapshot there postdates
  // the commit the shard(x) snapshot predates.
  CRITIQUE_ASSIGN_OR_RETURN(Value ry, reader.GetScalar(y));
  CRITIQUE_RETURN_NOT_OK(reader.Commit());
  out.anomaly = rx.AsInt() + ry.AsInt() != 200;
  out.detail = "reader saw " + std::to_string(rx.AsInt()) + " + " +
               std::to_string(ry.AsInt()) + " = " +
               std::to_string(rx.AsInt() + ry.AsInt()) +
               " across an atomic transfer preserving 200";
  return out;
}

}  // namespace critique
