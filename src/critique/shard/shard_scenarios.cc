#include "critique/shard/shard_scenarios.h"

#include <array>
#include <cstdint>
#include <functional>

namespace critique {

Result<std::pair<ItemId, ItemId>> PickCrossShardPair(
    const ShardRouter& router) {
  if (router.num_shards() < 2) {
    return Status::InvalidArgument(
        "cross-shard scenarios need at least 2 shards");
  }
  const ItemId first = "acct0";
  const int first_shard = router.ShardOf(first);
  for (int k = 1; k < 256; ++k) {
    ItemId candidate = "acct" + std::to_string(k);
    if (router.ShardOf(candidate) != first_shard) {
      return std::make_pair(first, candidate);
    }
  }
  return Status::Internal("no cross-shard pair among 256 candidate names");
}

Result<ShardScenarioOutcome> RunCrossShardWriteSkew(ShardedDatabase& db) {
  CRITIQUE_ASSIGN_OR_RETURN(auto pair, PickCrossShardPair(db.router()));
  const ItemId x = pair.first;
  const ItemId y = pair.second;
  CRITIQUE_RETURN_NOT_OK(db.Load(x, Value(50)));
  CRITIQUE_RETURN_NOT_OK(db.Load(y, Value(50)));

  ShardScenarioOutcome out;
  ShardedTransaction t1 = db.Begin();
  ShardedTransaction t2 = db.Begin();

  // Both transactions audit the joint constraint x + y >= 0 and, seeing
  // total 100, each withdraws 100 from its own item — the A5B shape, with
  // the two items on different shards.
  CRITIQUE_ASSIGN_OR_RETURN(Value v1x, t1.GetScalar(x));
  CRITIQUE_ASSIGN_OR_RETURN(Value v1y, t1.GetScalar(y));
  CRITIQUE_ASSIGN_OR_RETURN(Value v2x, t2.GetScalar(x));
  CRITIQUE_ASSIGN_OR_RETURN(Value v2y, t2.GetScalar(y));
  if (v1x.AsInt() + v1y.AsInt() < 100 || v2x.AsInt() + v2y.AsInt() < 100) {
    return Status::Internal("scenario setup: unexpected initial balances");
  }

  Status w1 = t1.Put(x, Value(v1x.AsInt() - 100));
  Status w2 = t2.Put(y, Value(v2y.AsInt() - 100));

  if (w1.IsWouldBlock() && w2.IsWouldBlock()) {
    // Cross-shard deadlock: shard(x) has T1 waiting on T2's read lock,
    // shard(y) has T2 waiting on T1's — neither local waits-for graph
    // sees the cycle.  Play the distributed resolver: sacrifice T2.
    out.blocked = true;
    out.aborted = true;
    CRITIQUE_RETURN_NOT_OK(t2.Rollback());
    w1 = t1.Put(x, Value(v1x.AsInt() - 100));
  } else if (w1.IsWouldBlock() || w2.IsWouldBlock()) {
    out.blocked = true;
  }

  // Resolve T1 then T2.  A write still parked on the other transaction's
  // locks gets one retry once that transaction finished; a write that
  // stays blocked means its transaction is sacrificed (the lock-wait
  // timeout answer).  A transaction that never wrote cannot produce the
  // anomaly.
  auto resolve = [&out](ShardedTransaction& txn, Status& w,
                        const std::function<Status()>& retry) {
    if (w.IsWouldBlock() && txn.active()) w = retry();
    if (w.ok()) {
      if (!txn.Commit().ok()) out.aborted = true;
    } else if (txn.active()) {
      (void)txn.Rollback();
      out.aborted = true;
    }
  };
  resolve(t1, w1, [&] { return t1.Put(x, Value(v1x.AsInt() - 100)); });
  resolve(t2, w2, [&] { return t2.Put(y, Value(v2y.AsInt() - 100)); });

  // Judge the final state with a fresh global read.
  ShardedTransaction audit = db.Begin();
  CRITIQUE_ASSIGN_OR_RETURN(Value fx, audit.GetScalar(x));
  CRITIQUE_ASSIGN_OR_RETURN(Value fy, audit.GetScalar(y));
  CRITIQUE_RETURN_NOT_OK(audit.Commit());
  const int64_t total = fx.AsInt() + fy.AsInt();
  out.anomaly = total < 0;
  out.detail = "final " + x + "=" + fx.ToString() + " " + y + "=" +
               fy.ToString() + " (sum " + std::to_string(total) +
               ", constraint sum >= 0)";
  return out;
}

Result<ShardScenarioOutcome> RunFracturedRead(ShardedDatabase& db) {
  CRITIQUE_ASSIGN_OR_RETURN(auto pair, PickCrossShardPair(db.router()));
  const ItemId x = pair.first;
  const ItemId y = pair.second;
  CRITIQUE_RETURN_NOT_OK(db.Load(x, Value(100)));
  CRITIQUE_RETURN_NOT_OK(db.Load(y, Value(100)));

  ShardScenarioOutcome out;
  ShardedTransaction reader = db.Begin();
  ShardedTransaction writer = db.Begin();

  // The reader audits the invariant x + y == 200, touching shard(x) first;
  // its shard(y) snapshot is only taken later — after the writer's
  // atomically-committed transfer, if the engines allow the overlap.
  CRITIQUE_ASSIGN_OR_RETURN(Value rx, reader.GetScalar(x));

  // Writer: move 50 from x to y, committed atomically through 2PC.
  CRITIQUE_ASSIGN_OR_RETURN(Value wx, writer.GetScalar(x));
  Status wput = writer.Put(x, Value(wx.AsInt() - 50));

  if (wput.IsWouldBlock()) {
    // Locking shards: the reader's long read lock on x holds the transfer
    // off until the audit is done — that blocking is exactly what buys
    // the consistent global read.
    out.blocked = true;
    CRITIQUE_ASSIGN_OR_RETURN(Value ry, reader.GetScalar(y));
    CRITIQUE_RETURN_NOT_OK(reader.Commit());
    out.anomaly = rx.AsInt() + ry.AsInt() != 200;
    out.detail = "reader saw " + std::to_string(rx.AsInt()) + " + " +
                 std::to_string(ry.AsInt()) + " (transfer blocked behind it)";
    // Let the transfer finish so the scenario leaves a clean final state.
    CRITIQUE_RETURN_NOT_OK(writer.Put(x, Value(wx.AsInt() - 50)));
    CRITIQUE_ASSIGN_OR_RETURN(Value wy, writer.GetScalar(y));
    CRITIQUE_RETURN_NOT_OK(writer.Put(y, Value(wy.AsInt() + 50)));
    CRITIQUE_RETURN_NOT_OK(writer.Commit());
    return out;
  }
  CRITIQUE_RETURN_NOT_OK(wput);
  CRITIQUE_ASSIGN_OR_RETURN(Value wy, writer.GetScalar(y));
  CRITIQUE_RETURN_NOT_OK(writer.Put(y, Value(wy.AsInt() + 50)));
  CRITIQUE_RETURN_NOT_OK(writer.Commit());  // 2PC: debit+credit atomic

  // Only now does the reader touch shard(y): its snapshot there postdates
  // the commit the shard(x) snapshot predates.
  CRITIQUE_ASSIGN_OR_RETURN(Value ry, reader.GetScalar(y));
  CRITIQUE_RETURN_NOT_OK(reader.Commit());
  out.anomaly = rx.AsInt() + ry.AsInt() != 200;
  out.detail = "reader saw " + std::to_string(rx.AsInt()) + " + " +
               std::to_string(ry.AsInt()) + " = " +
               std::to_string(rx.AsInt() + ry.AsInt()) +
               " across an atomic transfer preserving 200";
  return out;
}

namespace {

// Three item names spanning at least two shards (all three distinct when
// the facade has three or more).
Result<std::array<ItemId, 3>> PickSpreadTriple(const ShardRouter& router) {
  if (router.num_shards() < 2) {
    return Status::InvalidArgument(
        "cross-shard scenarios need at least 2 shards");
  }
  std::array<ItemId, 3> items;
  std::vector<int> used;
  size_t have = 0;
  for (int k = 0; k < 1024 && have < 3; ++k) {
    ItemId candidate = "acct" + std::to_string(k);
    const int shard = router.ShardOf(candidate);
    bool fresh = true;
    for (int s : used) fresh = fresh && s != shard;
    // Accept a repeat shard only once we ran out of fresh ones to find.
    if (fresh || (have == 2 && k > 512)) {
      items[have++] = candidate;
      used.push_back(shard);
    }
  }
  if (have < 3) {
    // Two shards: reuse the first shard for the third item.
    for (int k = 0; k < 1024 && have < 3; ++k) {
      ItemId candidate = "acct" + std::to_string(k);
      if (candidate != items[0] && candidate != items[1]) {
        items[have++] = candidate;
      }
    }
  }
  if (have < 3) return Status::Internal("no item triple among candidates");
  return items;
}

}  // namespace

Result<ShardScenarioOutcome> RunCrossShardStepIat(ShardedDatabase& db) {
  CRITIQUE_ASSIGN_OR_RETURN(auto items, PickSpreadTriple(db.router()));
  const ItemId& x = items[0];
  const ItemId& y = items[1];
  const ItemId& z = items[2];
  for (const ItemId& id : items) CRITIQUE_RETURN_NOT_OK(db.Load(id, Value(0)));

  ShardScenarioOutcome out;
  ShardedTransaction t1 = db.Begin();
  ShardedTransaction t2 = db.Begin();
  ShardedTransaction t3 = db.Begin();

  // Reads first: each transaction snapshots (or read-locks) its source.
  CRITIQUE_ASSIGN_OR_RETURN(Value r1, t1.GetScalar(x));
  CRITIQUE_ASSIGN_OR_RETURN(Value r2, t2.GetScalar(y));
  CRITIQUE_ASSIGN_OR_RETURN(Value r3, t3.GetScalar(z));

  // Then the cycle-closing writes: T1->y, T2->z, T3->x.
  Status w1 = t1.Put(y, Value(r1.AsInt() + 10));
  Status w2 = t2.Put(z, Value(r2.AsInt() + 10));
  Status w3 = t3.Put(x, Value(r3.AsInt() + 10));

  // Locking shards park every write behind the next transaction's read
  // lock — a three-party deadlock no single shard's waits-for graph can
  // see.  Play the distributed resolver: sacrifice blocked writers until
  // someone proceeds.
  auto settle = [&out](ShardedTransaction& txn, Status& w,
                       const std::function<Status()>& retry) {
    if (w.IsWouldBlock() && txn.active()) {
      out.blocked = true;
      w = retry();
    }
    if (w.ok()) {
      if (!txn.Commit().ok()) out.aborted = true;
    } else if (txn.active()) {
      (void)txn.Rollback();
      out.aborted = true;
    }
  };
  if (w1.IsWouldBlock() && w2.IsWouldBlock() && w3.IsWouldBlock()) {
    out.blocked = true;
    out.aborted = true;
    CRITIQUE_RETURN_NOT_OK(t3.Rollback());
    w3 = Status::TransactionAborted("sacrificed to break the global cycle");
    w1 = t1.Put(y, Value(r1.AsInt() + 10));
  }
  settle(t1, w1, [&] { return t1.Put(y, Value(r1.AsInt() + 10)); });
  settle(t2, w2, [&] { return t2.Put(z, Value(r2.AsInt() + 10)); });
  settle(t3, w3, [&] { return t3.Put(x, Value(r3.AsInt() + 10)); });

  // The cycle closed iff all three committed on untouched snapshots.
  out.anomaly = !out.aborted && r1.AsInt() == 0 && r2.AsInt() == 0 &&
                r3.AsInt() == 0;
  out.detail = "observed " + x + "=" + std::to_string(r1.AsInt()) + " " + y +
               "=" + std::to_string(r2.AsInt()) + " " + z + "=" +
               std::to_string(r3.AsInt()) +
               (out.anomaly ? " (3-cycle committed: unserializable)"
                            : " (cycle broken)");
  return out;
}

Result<ShardScenarioOutcome> RunCrossShardSawtooth(ShardedDatabase& db) {
  CRITIQUE_ASSIGN_OR_RETURN(auto items, PickSpreadTriple(db.router()));
  const ItemId& x = items[0];
  const ItemId& y = items[1];
  const ItemId& z = items[2];
  for (const ItemId& id : items) CRITIQUE_RETURN_NOT_OK(db.Load(id, Value(0)));

  ShardScenarioOutcome out;
  ShardedTransaction reader = db.Begin();
  CRITIQUE_ASSIGN_OR_RETURN(Value rx, reader.GetScalar(x));

  // Writer A: x=1, y=1 committed atomically (2PC when x and y span
  // shards).  On locking shards the write parks behind the reader's long
  // read lock on x; the consistent cut is then bought by blocking.
  ShardedTransaction wa = db.Begin();
  Status put_a = wa.Put(x, Value(1));
  if (put_a.IsWouldBlock()) {
    out.blocked = true;
    CRITIQUE_ASSIGN_OR_RETURN(Value by, reader.GetScalar(y));
    CRITIQUE_ASSIGN_OR_RETURN(Value bz, reader.GetScalar(z));
    CRITIQUE_RETURN_NOT_OK(reader.Commit());
    out.anomaly = !(rx.AsInt() == 0 && by.AsInt() == 0 && bz.AsInt() == 0);
    out.detail = "reader saw (" + std::to_string(rx.AsInt()) + "," +
                 std::to_string(by.AsInt()) + "," +
                 std::to_string(bz.AsInt()) + ") with writers blocked";
    CRITIQUE_RETURN_NOT_OK(wa.Put(x, Value(1)));
    CRITIQUE_RETURN_NOT_OK(wa.Put(y, Value(1)));
    CRITIQUE_RETURN_NOT_OK(wa.Commit());
    return out;
  }
  CRITIQUE_RETURN_NOT_OK(put_a);
  CRITIQUE_RETURN_NOT_OK(wa.Put(y, Value(1)));
  CRITIQUE_RETURN_NOT_OK(wa.Commit());

  CRITIQUE_ASSIGN_OR_RETURN(Value ry, reader.GetScalar(y));

  // Writer B: y=2, z=2, again atomic.
  ShardedTransaction wb = db.Begin();
  Status put_b = wb.Put(y, Value(2));
  if (put_b.IsWouldBlock()) {
    out.blocked = true;
    CRITIQUE_ASSIGN_OR_RETURN(Value bz, reader.GetScalar(z));
    CRITIQUE_RETURN_NOT_OK(reader.Commit());
    const bool consistent =
        (rx.AsInt() == 0 && ry.AsInt() == 0 && bz.AsInt() == 0) ||
        (rx.AsInt() == 1 && ry.AsInt() == 1 && bz.AsInt() == 0);
    out.anomaly = !consistent;
    out.detail = "reader saw (" + std::to_string(rx.AsInt()) + "," +
                 std::to_string(ry.AsInt()) + "," +
                 std::to_string(bz.AsInt()) + ") with writer B blocked";
    CRITIQUE_RETURN_NOT_OK(wb.Put(y, Value(2)));
    CRITIQUE_RETURN_NOT_OK(wb.Put(z, Value(2)));
    CRITIQUE_RETURN_NOT_OK(wb.Commit());
    return out;
  }
  CRITIQUE_RETURN_NOT_OK(put_b);
  CRITIQUE_RETURN_NOT_OK(wb.Put(z, Value(2)));
  CRITIQUE_RETURN_NOT_OK(wb.Commit());

  CRITIQUE_ASSIGN_OR_RETURN(Value rz, reader.GetScalar(z));
  CRITIQUE_RETURN_NOT_OK(reader.Commit());

  const int64_t ox = rx.AsInt(), oy = ry.AsInt(), oz = rz.AsInt();
  const bool consistent = (ox == 0 && oy == 0 && oz == 0) ||
                          (ox == 1 && oy == 1 && oz == 0) ||
                          (ox == 1 && oy == 2 && oz == 2);
  out.anomaly = !consistent;
  out.detail = "reader saw (" + std::to_string(ox) + "," +
               std::to_string(oy) + "," + std::to_string(oz) +
               ") across two atomic writers";
  return out;
}

}  // namespace critique
