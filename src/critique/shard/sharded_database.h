#ifndef CRITIQUE_SHARD_SHARDED_DATABASE_H_
#define CRITIQUE_SHARD_SHARDED_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "critique/db/database.h"
#include "critique/shard/shard_router.h"
#include "critique/shard/txn_coordinator.h"
#include "critique/wal/commit_log.h"

namespace critique {

class ShardedTransaction;

/// \brief Construction-time configuration of a `ShardedDatabase`.
struct ShardedDbOptions {
  ShardedDbOptions() = default;
  ShardedDbOptions(int shards, IsolationLevel level)
      : num_shards(shards), shard_options(level) {}

  /// How many hash partitions the keyspace splits into.
  int num_shards = 4;

  /// The per-shard engine configuration every shard is built from
  /// (isolation level or engine factory, concurrency mode, lock-wait
  /// timeout, deadlock-check interval, version-store backend).
  DbOptions shard_options;

  /// Heterogeneous shards: when non-empty (size must equal `num_shards`),
  /// shard `i` is built from `per_shard[i]` instead of `shard_options` —
  /// the mixed-isolation setting of Bouajjani et al., where different
  /// partitions of one logical database honor different levels.  The
  /// same mechanism mixes `storage_backend`s: each shard's multiversion
  /// engine runs on the backend its own DbOptions selects.
  std::vector<DbOptions> per_shard;

  /// Facade-level `Execute` retry protocol; null selects
  /// `DefaultRetryPolicy()`.
  std::shared_ptr<const RetryPolicy> retry_policy;

  /// Seed of the facade RNG; shard RNGs derive deterministically from it.
  uint64_t seed = 1;

  /// When non-empty, durability is on: shard `i` writes its WAL to
  /// `<wal_dir>/shard-<i>.wal` and the coordinator's decision log becomes
  /// persistent at `<wal_dir>/coordinator.wal` (the directory is created
  /// if missing; construction truncates, `Recover` replays).  Group-commit
  /// and fsync settings come from the per-shard `DbOptions` as usual; the
  /// decision log reuses `shard_options`' fsync configuration.  Any
  /// `wal_path` set on the per-shard options directly is overridden.
  std::string wal_dir;
};

/// \brief A hash-partitioned database: N independent per-shard engines
/// behind one session facade, with a two-phase-commit coordinator for
/// transactions that touch more than one shard.
///
/// The paper's phenomena are defined on single-site histories; this layer
/// is where they stop composing.  Each shard is a full `Database` (any
/// engine the SPI can produce, so shards may run heterogeneous isolation
/// levels); a `ShardedTransaction` lazily opens one per-shard session per
/// shard it touches, all under a single global transaction id, so every
/// shard's recorded history carries the same subscript for the same
/// global transaction.  Commit routes by footprint:
///
///  * single-shard transactions commit directly on their shard — no
///    coordinator, no extra latency (the fast path benches measure);
///  * cross-shard transactions run 2PC through the `TxnCoordinator`:
///    prepare everywhere, log the decision, commit everywhere, with
///    presumed-abort recovery (`RecoverInDoubt`) for participants a
///    crashed coordinator left in doubt.
///
/// What 2PC does and does not give you (the cross-shard scenario family):
/// atomicity of the commit itself — yes; a global *snapshot* — no.  Two
/// shards running Snapshot Isolation still admit cross-shard write skew
/// and fractured (non-atomic) reads of an atomically-committed transfer,
/// both impossible on one SI site; per-shard Locking SERIALIZABLE + 2PC
/// keeps global histories serializable because every lock is held through
/// the in-doubt window (see shard_scenarios.h).
///
/// Thread-safety mirrors `Database`: with blocking-mode shards, drive the
/// facade from as many threads as you like, one `ShardedTransaction` per
/// thread.  Global ids, counters, and the coordinator log are atomic or
/// mutex-guarded.  Note the per-shard deadlock detectors cannot see
/// cross-shard waits-for cycles — a distributed deadlock is broken by the
/// lock-wait timeout surfacing as a retryable failure, not by victim
/// selection.
class ShardedDatabase {
 public:
  explicit ShardedDatabase(ShardedDbOptions options);
  ShardedDatabase(int num_shards, IsolationLevel level)
      : ShardedDatabase(ShardedDbOptions(num_shards, level)) {}

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  /// Rebuilds the facade from the WALs under `options.wal_dir` after a
  /// crash: every shard replays its redo log (`Database::Recover`), the
  /// coordinator's decision table is reseeded from the still-open entries
  /// of its persistent log, and the global-id allocator advances past
  /// every recovered id.  Participants a crashed coordinator left
  /// prepared come back *in doubt*; call `RecoverInDoubt()` on the
  /// returned facade to resolve them against the restored decisions
  /// (logged commit → roll forward, no decision → presumed abort).
  /// The same `options` used to build the crashed instance must be passed
  /// (engine configuration is not persisted).
  static Result<std::unique_ptr<ShardedDatabase>> Recover(
      ShardedDbOptions options);

  /// True when this facade was built by `Recover`.
  bool recovered() const { return recovered_; }

  /// The coordinator's persistent decision log; null when `wal_dir` was
  /// empty (in-memory decisions, the historical default).
  CommitLog* coordinator_log() { return coord_log_.get(); }

  int num_shards() const { return router_.num_shards(); }

  /// The shard owning `id` (pure hash of the item id).
  int ShardOf(const ItemId& id) const { return router_.ShardOf(id); }

  const ShardRouter& router() const { return router_; }

  /// Shard `i`'s session facade (engine escape hatches included).
  Database& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const Database& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }

  /// Routed bootstrap load (before any transaction begins).
  Status Load(const ItemId& id, Row row) {
    return shard(ShardOf(id)).Load(id, std::move(row));
  }
  Status Load(const ItemId& id, Value v) {
    return shard(ShardOf(id)).Load(id, Row::Scalar(std::move(v)));
  }

  /// Starts a global transaction with the next free global id.
  ShardedTransaction Begin();

  /// Starts a global transaction under a declared per-transaction
  /// isolation contract: every per-shard session it opens is begun with
  /// `opts.level`, so the contract spans the whole footprint.  A shard
  /// whose engine cannot honor the level refuses at first touch (the
  /// heterogeneous-shard setting makes this reachable), which dooms the
  /// global transaction like any participant refusal.
  ShardedTransaction Begin(const BeginOptions& opts);

  /// Runs `body` in a fresh global transaction and commits it (2PC when it
  /// touched multiple shards).  Retryable failures — per-shard
  /// serialization refusals, deadlock victims, lock-wait timeouts, 2PC
  /// prepare refusals — roll back every participant and re-run the body
  /// while the `RetryPolicy` allows, exactly like `Database::Execute`.
  Status Execute(const std::function<Status(ShardedTransaction&)>& body);

  /// `Execute` under a declared per-transaction isolation contract.  An
  /// engine-refused contract (FailedPrecondition at first touch) is
  /// terminal, never retried.
  Status Execute(const BeginOptions& opts,
                 const std::function<Status(ShardedTransaction&)>& body);

  /// Sum of every shard's online-certification report (empty when
  /// `online_check` was off).  Violation samples concatenate in shard
  /// order; `peak_live_nodes` sums — the facade-level memory bound.
  check::CheckerReport CheckerReportAggregate() const;

  /// How many times `Execute` re-ran a body (across all threads).
  uint64_t execute_retries() const {
    return execute_retries_.load(std::memory_order_relaxed);
  }

  /// Committed transactions that never needed the coordinator.
  uint64_t single_shard_commits() const {
    return single_shard_commits_.load(std::memory_order_relaxed);
  }

  /// The cross-shard commit protocol (stats, failpoints, decision log).
  TxnCoordinator& coordinator() { return coordinator_; }
  const TxnCoordinator& coordinator() const { return coordinator_; }

  /// What presumed-abort recovery did.
  struct RecoveryReport {
    uint64_t committed = 0;  ///< in-doubt participants rolled forward
    uint64_t aborted = 0;    ///< in-doubt participants presumed aborted
    /// Participants whose logged *commit* decision was refused by the
    /// engine's decision-phase re-validation (a certifying SSI
    /// participant whose dangerous structure completed while in doubt);
    /// the engine rolled them back — nothing leaks, the refusal is the
    /// abort acknowledgement.
    uint64_t decision_aborts = 0;
  };

  /// Resolves every in-doubt participant on every shard against the
  /// coordinator's decision log: a logged commit rolls the participant
  /// forward; no logged decision means the coordinator never decided, and
  /// presumed abort rolls it back — releasing its locks and pending
  /// versions.  Idempotent; safe on a quiescent facade.
  RecoveryReport RecoverInDoubt();

  /// Sum of every shard's engine counters (consistent per shard; the sum
  /// is exact when quiescent).
  EngineStats StatsAggregate() const;

  // --- version garbage collection ------------------------------------------
  //
  // Per-shard GC is globally safe without coordination: a cross-shard
  // transaction pins each shard's low-watermark through the engine
  // session it holds open *on that shard*, and a shard it has not touched
  // yet will give it a fresh snapshot at first touch — never one below
  // that shard's own watermark.  (In `kWatermark` mode there is no global
  // snapshot to preserve in the first place; `kRetainAll` shards keep
  // everything.)

  /// Runs one version-GC pass on every shard; returns total versions
  /// dropped.
  size_t GarbageCollectVersions();

  /// Total stored versions across all shards (exact when quiescent).
  size_t VersionCountAggregate() const;

  /// The oldest open snapshot across shards that track one (nullopt when
  /// no shard does) — the facade-level GC low-watermark.
  std::optional<Timestamp> OldestOpenSnapshot() const;

  /// The facade-level retry protocol in force.
  const RetryPolicy& retry_policy() const { return *retry_; }

  /// Derives an independent deterministic RNG stream (safe from any
  /// thread); one fork per worker thread.
  Rng ForkRng();

 private:
  friend class ShardedTransaction;

  /// Tag ctor that builds everything but the shards (and the logs) —
  /// `Recover` fills those from the WALs instead of fresh.
  struct DeferShards {};
  ShardedDatabase(const ShardedDbOptions& options, DeferShards);

  /// The effective `DbOptions` for shard `i`: per-shard template, derived
  /// seed, and (when `wal_dir` is set) the shard's WAL path.
  static DbOptions ShardOptionsFor(const ShardedDbOptions& options, int i);

  /// Wraps `writer` in a `CommitLog` and attaches it to the coordinator.
  void AttachCoordinatorLog(WalWriter writer, const ShardedDbOptions& options);

  ShardRouter router_;
  std::vector<std::unique_ptr<Database>> shards_;
  TxnCoordinator coordinator_;
  /// The coordinator's persistent decision log (heap-allocated so the raw
  /// pointer the coordinator holds stays stable); null when durability is
  /// off.
  std::unique_ptr<CommitLog> coord_log_;
  bool recovered_ = false;
  std::shared_ptr<const RetryPolicy> retry_;
  std::mutex rng_mu_;
  Rng rng_;
  std::atomic<TxnId> next_gid_{1};
  std::atomic<uint64_t> execute_retries_{0};
  std::atomic<uint64_t> single_shard_commits_{0};
};

/// \brief A move-only session handle over one global (possibly
/// cross-shard) transaction.
///
/// Mirrors the single-site `Transaction` surface for keyed operations,
/// routing each by the item's shard and lazily beginning the per-shard
/// session on first touch (so the per-shard snapshots of a multiversion
/// engine are taken at first touch, not at global begin — the lack of a
/// global snapshot point is precisely the anomaly source the scenarios
/// probe).  Predicate reads scatter to every shard and merge in shard
/// order.  Cursor operations are not routed (FailedPrecondition): cursor
/// semantics are a single-site Section 4.1 concern.
///
/// Any participant dying engine-side (deadlock victim, serialization
/// refusal) aborts the global transaction: remaining participants roll
/// back immediately and the handle finishes, so the retry layer restarts
/// the whole body — a participant abort can never strand half a global
/// transaction.
class ShardedTransaction {
 public:
  ShardedTransaction(ShardedTransaction&& other) noexcept;
  ShardedTransaction& operator=(ShardedTransaction&& other) noexcept;
  ShardedTransaction(const ShardedTransaction&) = delete;
  ShardedTransaction& operator=(const ShardedTransaction&) = delete;

  /// Rolls back every still-active participant.
  ~ShardedTransaction();

  /// The global transaction id — the history subscript on every shard.
  TxnId id() const { return gid_; }

  /// The declared per-transaction level (nullopt: each shard's default).
  std::optional<IsolationLevel> declared_level() const { return level_; }

  /// True until Commit / Rollback / a participant-side abort.
  bool active() const { return active_; }

  /// The owning facade.
  ShardedDatabase& database() const { return *db_; }

  /// Shards this transaction has opened a session on so far.
  int shards_touched() const;

  /// True when more than one shard is involved (commit will run 2PC).
  bool cross_shard() const { return shards_touched() > 1; }

  // --- reads ---------------------------------------------------------------

  Result<std::optional<Row>> Get(const ItemId& id);
  Result<Value> GetScalar(const ItemId& id);

  /// Scatter-gather SELECT ... WHERE: evaluated on every shard, results
  /// merged in shard order.  Opens a session on all shards.
  Result<std::vector<std::pair<ItemId, Row>>> GetWhere(const std::string& name,
                                                       const Predicate& pred);

  // --- writes --------------------------------------------------------------

  Status Put(const ItemId& id, Row row);
  Status Put(const ItemId& id, Value v);
  Status Insert(const ItemId& id, Row row);
  Status Erase(const ItemId& id);
  Status Update(const ItemId& id,
                const std::function<Row(const std::optional<Row>&)>& transform);

  // --- terminals -----------------------------------------------------------

  /// Commits: directly on the single touched shard, or through the 2PC
  /// coordinator when cross-shard.  Retryable refusals mean every
  /// participant has been rolled back.  `kInternal` means a coordinator
  /// failpoint "crashed" mid-protocol and prepared participants are in
  /// doubt — resolve with `ShardedDatabase::RecoverInDoubt`.
  Status Commit();

  /// Rolls back every still-active participant; OK when already finished.
  /// Participants a crashed coordinator left prepared are NOT disturbed
  /// (the engine refuses; they stay in doubt for recovery).
  Status Rollback();

 private:
  friend class ShardedDatabase;
  ShardedTransaction(ShardedDatabase* db, TxnId gid,
                     std::optional<IsolationLevel> level = std::nullopt);

  /// The session on `shard`, begun on first use.
  Result<Transaction*> Part(int shard);

  /// Propagates a participant's terminal failure to the global level: on
  /// deadlock / serialization refusal / dead-handle answers, every other
  /// participant rolls back and the handle finishes.
  Status ObservePartStatus(Status s);

  /// Rolls back every still-active participant (engine-refused rollbacks
  /// of in-doubt participants are ignored by design).
  void AbortParts();

  ShardedDatabase* db_ = nullptr;  ///< null only for moved-from husks
  TxnId gid_ = 0;
  bool active_ = false;
  std::optional<IsolationLevel> level_;  ///< declared contract, if any
  std::vector<std::optional<Transaction>> parts_;  ///< one slot per shard
};

}  // namespace critique

#endif  // CRITIQUE_SHARD_SHARDED_DATABASE_H_
