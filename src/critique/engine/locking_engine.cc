#include "critique/engine/locking_engine.h"

#include <cassert>

namespace critique {
namespace {

// History value for a row: its scalar payload when it has one.
std::optional<Value> HistoryValue(const std::optional<Row>& row) {
  if (row.has_value() && row->Has("val")) return row->scalar();
  return std::nullopt;
}

}  // namespace

LockingEngine::LockingEngine(IsolationLevel level)
    : level_(level), policy_(PolicyFor(level)) {
  assert(IsLockingLevel(level));
}

Status LockingEngine::Load(const ItemId& id, Row row) {
  std::unique_lock<std::shared_mutex> sl(store_mu_);
  store_.Put(id, std::move(row));
  return Status::OK();
}

Status LockingEngine::Begin(TxnId txn) {
  std::unique_lock<std::shared_mutex> tl(table_mu_);
  return BeginLocked(txn, policy_);
}

Status LockingEngine::BeginWithLevel(TxnId txn, IsolationLevel level) {
  if (!IsLockingLevel(level)) {
    return Status::FailedPrecondition(
        name() + " cannot honor a per-transaction " +
        IsolationLevelName(level) +
        " contract: only the Table 2 locking levels map onto this lock "
        "scheduler");
  }
  std::unique_lock<std::shared_mutex> tl(table_mu_);
  return BeginLocked(txn, PolicyFor(level));
}

Status LockingEngine::BeginLocked(TxnId txn, LockingPolicy policy) {
  if (txn < 1) return Status::InvalidArgument("txn ids start at 1");
  if (txns_.count(txn)) {
    return Status::InvalidArgument("txn " + std::to_string(txn) +
                                   " already used");
  }
  TxnState& st = txns_[txn];
  st.active = true;
  st.policy = policy;
  // Informational, buffered with the next sync (see the SI engine).
  if (wal_ != nullptr) wal_->Append(WalRecord::Begin(txn));
  Trace(txn, obs::TraceEventType::kBegin);
  return Status::OK();
}

void LockingEngine::RegisterMetrics(obs::MetricsRegistry& reg,
                                    const std::string& prefix) {
  Engine::RegisterMetrics(reg, prefix);
  reg.RegisterGauge(prefix + "lock.acquired",
                    [this] { return lock_manager_.stats().acquired; });
  reg.RegisterGauge(prefix + "lock.blocked",
                    [this] { return lock_manager_.stats().blocked; });
  reg.RegisterGauge(prefix + "lock.deadlocks",
                    [this] { return lock_manager_.stats().deadlocks; });
  reg.RegisterGauge(prefix + "lock.timeouts",
                    [this] { return lock_manager_.stats().timeouts; });
  reg.RegisterGauge(prefix + "lock.coop_parks",
                    [this] { return lock_manager_.stats().coop_parks; });
  reg.RegisterGauge(prefix + "lock.wakeups",
                    [this] { return lock_manager_.stats().wakeups; });
  reg.RegisterHistogram(prefix + "lock.wait_us",
                        &lock_manager_.wait_histogram());
  reg.RegisterHistogram(prefix + "lock.park_wakeup_us",
                        &lock_manager_.park_wakeup_histogram());
}

std::string LockingEngine::DebugDump() const {
  return lock_manager_.DebugSnapshot().ToString();
}

Status LockingEngine::CheckActive(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active) {
    return Status::TransactionAborted("txn " + std::to_string(txn) +
                                      " is not active");
  }
  if (it->second.prepared) {
    return Status::FailedPrecondition(
        "txn " + std::to_string(txn) +
        " is prepared (in doubt); only CommitPrepared/AbortPrepared may end "
        "it");
  }
  return Status::OK();
}

Status LockingEngine::CheckPrepared(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active || !it->second.prepared) {
    return Status::FailedPrecondition("txn " + std::to_string(txn) +
                                      " is not prepared");
  }
  return Status::OK();
}

std::optional<Row> LockingEngine::StoreGet(const ItemId& id) const {
  std::shared_lock<std::shared_mutex> sl(store_mu_);
  return store_.Get(id);
}

void LockingEngine::Rollback(TxnId txn) {
  TxnState& st = txns_.find(txn)->second;
  {
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    for (auto it = st.undo.rbegin(); it != st.undo.rend(); ++it) {
      store_.ApplyUndo(*it);
    }
    // Appended under the store latch: a lock-free reader of the restored
    // values observes them only after the `a<t>` record exists.
    recorder_.Record(Action::Abort(txn));
  }
  st.undo.clear();
  st.redo.clear();
  st.active = false;
  st.cursors.clear();
  lock_manager_.ReleaseAll(txn);
}

Result<LockHandle> LockingEngine::Acquire(TableLock& lk, TxnId txn,
                                          const LockSpec& spec) {
  // One wait budget for the whole operation, shared across image-redo
  // iterations: an operation may never wait longer than the configured
  // lock-wait timeout in total.
  const auto deadline =
      std::chrono::steady_clock::now() + concurrency_.lock_wait_timeout;
  LockSpec cur = spec;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    Result<LockHandle> r = AcquireLockWithProtocol(
        lock_manager_, lk, cur, remaining, [&] { Rollback(txn); });
    if (!r.ok() || !concurrency_.blocking_locks || !cur.is_item) return r;
    // Blocking mode: the wait (and the conflict decisions that granted
    // the lock) ran with the latch dropped, so the item's before-image in
    // the spec may predate the grant.  Image precision is what makes
    // predicate-vs-item conflicts phantom-exact (Section 2.3), both for
    // this request and for later requests checked against the now-held
    // lock — so on staleness, drop the grant and redo the acquire with
    // the fresh image.
    std::optional<Row> now = StoreGet(cur.item);
    if (now == cur.before_image) return r;
    lock_manager_.Release(*r);
    cur.before_image = std::move(now);
  }
}

Result<std::optional<Row>> LockingEngine::DoRead(TableLock& lk, TxnId txn,
                                                 const ItemId& id,
                                                 Action::Type type,
                                                 const std::string& cursor) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  // Copied, not referenced: a blocking Acquire drops the table latch.
  const LockingPolicy pol = txns_.find(txn)->second.policy;

  LockHandle handle = 0;
  if (pol.read_locks) {
    LockSpec spec = LockSpec::ReadItem(txn, id, StoreGet(id));
    CRITIQUE_ASSIGN_OR_RETURN(handle, Acquire(lk, txn, spec));
  }

  // Post-lock read: in blocking mode the wait released the latch, so the
  // image attached to the lock request may predate the grant.  The record
  // is appended while the store latch is still held, so the history order
  // of a read and the write whose value it observed can never invert
  // (levels without read locks can observe uncommitted writes — the
  // append must then already have happened).
  std::optional<Row> row;
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    row = store_.Get(id);
    Action a = type == Action::Type::kCursorRead
                   ? Action::CursorRead(txn, id, HistoryValue(row))
                   : Action::Read(txn, id, HistoryValue(row));
    recorder_.Record(std::move(a), &EngineStats::reads);
  }

  if (type == Action::Type::kCursorRead && pol.cursor_stability) {
    // The cursor moved: drop the previous position's lock, hold this one.
    CursorState& cs = txns_.find(txn)->second.cursors[cursor];
    if (cs.lock != 0) lock_manager_.Release(cs.lock);
    cs.item = id;
    cs.lock = handle;  // held until the cursor moves or closes
  } else if (handle != 0 && pol.item_read == LockDuration::kShort) {
    lock_manager_.Release(handle);
  }
  return row;
}

Result<std::optional<Row>> LockingEngine::Read(TxnId txn, const ItemId& id) {
  TableLock lk(table_mu_);
  return DoRead(lk, txn, id, Action::Type::kRead);
}

Result<std::optional<Row>> LockingEngine::FetchCursor(TxnId txn,
                                                      const ItemId& id) {
  TableLock lk(table_mu_);
  return DoRead(lk, txn, id, Action::Type::kCursorRead, "");
}

Result<std::optional<Row>> LockingEngine::FetchCursorNamed(
    TxnId txn, const std::string& cursor, const ItemId& id) {
  TableLock lk(table_mu_);
  return DoRead(lk, txn, id, Action::Type::kCursorRead, cursor);
}

Result<std::vector<std::pair<ItemId, Row>>> LockingEngine::ReadPredicate(
    TxnId txn, const std::string& name, const Predicate& pred) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  const LockingPolicy pol = txns_.find(txn)->second.policy;

  LockHandle handle = 0;
  if (pol.read_locks) {
    CRITIQUE_ASSIGN_OR_RETURN(
        handle, Acquire(lk, txn, LockSpec::ReadPredicate(txn, pred)));
  }

  std::vector<std::pair<ItemId, Row>> rows;
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    rows = store_.Scan(pred);
    Action a = Action::PredicateRead(txn, name, pred);
    for (const auto& [id, row] : rows) {
      (void)row;
      a.read_set.push_back(id);
    }
    // Appended under the store latch: scan and record stay ordered
    // against every write record (see DoRead).
    recorder_.Record(std::move(a), &EngineStats::predicate_reads);
  }

  if (handle != 0 && pol.pred_read == LockDuration::kShort) {
    lock_manager_.Release(handle);
  }
  return rows;
}

Status LockingEngine::DoWrite(TableLock& lk, TxnId txn, const ItemId& id,
                              std::optional<Row> new_row, Action::Type type,
                              bool is_insert) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));

  std::optional<Row> before = StoreGet(id);
  LockSpec spec = LockSpec::WriteItem(txn, id, before, new_row);
  CRITIQUE_ASSIGN_OR_RETURN(LockHandle handle, Acquire(lk, txn, spec));

  // The X lock now serializes writers of `id`: this is the first point
  // where existence can be decided from committed (or own) state, and
  // where the before-image for undo/history is stable.
  const bool is_delete = !new_row.has_value();
  Status precondition = Status::OK();
  {
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    before = store_.Get(id);
    if (is_insert && before.has_value()) {
      precondition =
          Status::FailedPrecondition("insert: item '" + id + "' exists");
    } else if (is_delete && !before.has_value()) {
      precondition = Status::NotFound("delete: item '" + id + "' absent");
    } else {
      if (new_row.has_value()) {
        store_.Put(id, *new_row);
      } else {
        store_.Erase(id);
      }
      // Recorded before the store latch drops: no reader of this value
      // (levels without read locks see it immediately) can append its
      // read ahead of this write in the history.
      Action a = type == Action::Type::kCursorWrite
                     ? Action::CursorWrite(txn, id, HistoryValue(new_row))
                     : Action::Write(txn, id, HistoryValue(new_row));
      a.before_image = before;
      a.after_image = new_row;
      a.is_insert = is_insert;
      recorder_.Record(std::move(a), &EngineStats::writes);
    }
  }
  if (!precondition.ok()) {
    lock_manager_.Release(handle);
    return precondition;
  }

  TxnState& st = txns_.find(txn)->second;
  st.undo.push_back(UndoRecord{id, std::move(before)});
  if (wal_ != nullptr) st.redo[id] = std::move(new_row);

  if (st.policy.write == LockDuration::kShort) {
    lock_manager_.Release(handle);  // Degree 0: action atomicity only
  }
  return Status::OK();
}

Status LockingEngine::Write(TxnId txn, const ItemId& id, Row row) {
  TableLock lk(table_mu_);
  return DoWrite(lk, txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/false);
}

Status LockingEngine::Insert(TxnId txn, const ItemId& id, Row row) {
  // No pre-lock existence check: the store is single-version and
  // in-place, so pre-lock state may be another transaction's uncommitted
  // write — only DoWrite's post-X-lock re-check can decide the
  // precondition without reading dirty data.
  TableLock lk(table_mu_);
  return DoWrite(lk, txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/true);
}

Status LockingEngine::Delete(TxnId txn, const ItemId& id) {
  TableLock lk(table_mu_);
  return DoWrite(lk, txn, id, std::nullopt, Action::Type::kWrite,
                 /*is_insert=*/false);
}

Result<size_t> LockingEngine::DoPredicateWrite(
    TableLock& lk, TxnId txn, const std::string& name, const Predicate& pred,
    const std::function<std::optional<Row>(const Row&)>& transform) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));

  // "Write locks on data items and predicates (always the same)": the
  // bulk write takes a Write predicate lock covering current rows and
  // phantoms alike.
  CRITIQUE_ASSIGN_OR_RETURN(
      LockHandle handle, Acquire(lk, txn, LockSpec::WritePredicate(txn, pred)));

  TxnState& st = txns_.find(txn)->second;
  size_t rows_touched = 0;
  {
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    Action a = Action::PredicateWrite(txn, name, pred);
    auto rows = store_.Scan(pred);  // post-lock scan
    rows_touched = rows.size();
    for (const auto& [id, row] : rows) {
      st.undo.push_back(UndoRecord{id, row});
      std::optional<Row> next = transform(row);
      if (next.has_value()) {
        store_.Put(id, *next);
      } else {
        store_.Erase(id);
      }
      if (wal_ != nullptr) st.redo[id] = std::move(next);
      a.read_set.push_back(id);
    }
    // Appended under the store latch (see DoWrite).
    recorder_.Count(&EngineStats::writes, rows_touched);
    recorder_.Record(std::move(a));
  }

  if (st.policy.write == LockDuration::kShort) lock_manager_.Release(handle);
  return rows_touched;
}

Result<size_t> LockingEngine::UpdateWhere(
    TxnId txn, const std::string& name, const Predicate& pred,
    const std::function<Row(const Row&)>& transform) {
  TableLock lk(table_mu_);
  return DoPredicateWrite(
      lk, txn, name, pred,
      [&transform](const Row& row) -> std::optional<Row> {
        return transform(row);
      });
}

Result<size_t> LockingEngine::DeleteWhere(TxnId txn, const std::string& name,
                                          const Predicate& pred) {
  TableLock lk(table_mu_);
  return DoPredicateWrite(
      lk, txn, name, pred,
      [](const Row&) -> std::optional<Row> { return std::nullopt; });
}

Status LockingEngine::WriteCursor(TxnId txn, const ItemId& id, Row row) {
  // "The Fetching transaction can update the row, and in that case a write
  // lock will be held on the row until the transaction commits" — DoWrite
  // takes the long X lock; the cursor's S lock is subsumed.
  TableLock lk(table_mu_);
  return DoWrite(lk, txn, id, std::move(row), Action::Type::kCursorWrite,
                 /*is_insert=*/false);
}

Status LockingEngine::CloseCursor(TxnId txn) {
  return CloseCursorNamed(txn, "");
}

Status LockingEngine::CloseCursorNamed(TxnId txn, const std::string& cursor) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_.find(txn)->second;
  auto it = st.cursors.find(cursor);
  if (it != st.cursors.end()) {
    if (it->second.lock != 0) lock_manager_.Release(it->second.lock);
    st.cursors.erase(it);
  }
  return Status::OK();
}

Status LockingEngine::Commit(TxnId txn) {
  std::optional<uint64_t> wal_lsn;
  {
    TableLock lk(table_mu_);
    CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
    TxnState& st = txns_.find(txn)->second;
    st.active = false;
    st.undo.clear();
    st.cursors.clear();
    // Appended before ReleaseAll: a conflicting transaction can only
    // acquire these locks — and so append its own commit — after this
    // one's records are in the log, so log order agrees with the lock
    // schedule (long write locks; Degree 0's short write locks make no
    // durability-ordering promise, matching its atomicity-only contract).
    // A single-version store has no commit clock: kInvalidTimestamp.
    if (wal_ != nullptr && !st.redo.empty()) {
      wal_->Append(WalRecord::WriteSet(txn, WalImagesFromMap(st.redo)));
      wal_lsn = wal_->Append(WalRecord::Commit(txn, kInvalidTimestamp));
      st.redo.clear();
    }
    recorder_.Record(Action::Commit(txn), &EngineStats::commits);
    lock_manager_.ReleaseAll(txn);
  }
  Trace(txn, obs::TraceEventType::kCommit);
  if (wal_lsn.has_value()) return wal_->WaitDurable(*wal_lsn);
  return Status::OK();
}

Status LockingEngine::Abort(TxnId txn) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  Rollback(txn);
  recorder_.Count(&EngineStats::aborts);
  Trace(txn, obs::TraceEventType::kAbort, obs::AbortReason::kExplicit);
  return Status::OK();
}

Status LockingEngine::Prepare(TxnId txn) {
  std::optional<uint64_t> wal_lsn;
  {
    TableLock lk(table_mu_);
    CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
    // A lock scheduler's commit cannot fail: every conflict was already
    // resolved when the lock was granted.  Prepare therefore only pins the
    // transaction — locks stay held, undo stays applicable — until the
    // coordinator's decision.
    TxnState& st = txns_.find(txn)->second;
    st.prepared = true;
    if (wal_ != nullptr) {
      if (!st.redo.empty()) {
        wal_->Append(WalRecord::WriteSet(txn, WalImagesFromMap(st.redo)));
        st.redo.clear();
      }
      wal_lsn = wal_->Append(WalRecord::Prepare(txn));
    }
  }
  Trace(txn, obs::TraceEventType::kPrepare);
  // Durable-vote rule: the coordinator only hears "prepared" once the
  // vote and its redo would survive a crash.
  if (wal_lsn.has_value()) return wal_->WaitDurable(*wal_lsn);
  return Status::OK();
}

Status LockingEngine::CommitPrepared(TxnId txn) {
  std::optional<uint64_t> wal_lsn;
  {
    TableLock lk(table_mu_);
    CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
    TxnState& st = txns_.find(txn)->second;
    st.prepared = false;
    st.active = false;
    st.undo.clear();
    st.cursors.clear();
    // Slim commit: the write set is already durable from Prepare.
    if (wal_ != nullptr) {
      wal_lsn = wal_->Append(WalRecord::Commit(txn, kInvalidTimestamp));
    }
    recorder_.Record(Action::Commit(txn), &EngineStats::commits);
    lock_manager_.ReleaseAll(txn);
  }
  Trace(txn, obs::TraceEventType::kCommit);
  if (wal_lsn.has_value()) return wal_->WaitDurable(*wal_lsn);
  return Status::OK();
}

Status LockingEngine::AbortPrepared(TxnId txn) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
  // Buffered only (presumed abort): a lost abort record re-restores the
  // participant in doubt and the next recovery aborts it again.
  if (wal_ != nullptr) wal_->Append(WalRecord::Abort(txn));
  txns_.find(txn)->second.prepared = false;
  Rollback(txn);
  recorder_.Count(&EngineStats::aborts);
  Trace(txn, obs::TraceEventType::kAbort, obs::AbortReason::kInDoubtDecision);
  return Status::OK();
}

std::vector<TxnId> LockingEngine::InDoubtTransactions() const {
  // Exclusive: this is the one cross-session scan of the registry, so it
  // must not race the owners' own-state flag writes.
  std::unique_lock<std::shared_mutex> tl(table_mu_);
  std::vector<TxnId> out;
  for (const auto& [t, st] : txns_) {
    if (st.active && st.prepared) out.push_back(t);
  }
  return out;
}

}  // namespace critique
