#include "critique/engine/locking_engine.h"

#include <cassert>

namespace critique {
namespace {

// History value for a row: its scalar payload when it has one.
std::optional<Value> HistoryValue(const std::optional<Row>& row) {
  if (row.has_value() && row->Has("val")) return row->scalar();
  return std::nullopt;
}

}  // namespace

LockingEngine::LockingEngine(IsolationLevel level)
    : level_(level), policy_(PolicyFor(level)) {
  assert(IsLockingLevel(level));
}

Status LockingEngine::Load(const ItemId& id, Row row) {
  store_.Put(id, std::move(row));
  return Status::OK();
}

Status LockingEngine::Begin(TxnId txn) {
  if (txn < 1) return Status::InvalidArgument("txn ids start at 1");
  if (txns_.count(txn)) {
    return Status::InvalidArgument("txn " + std::to_string(txn) +
                                   " already used");
  }
  txns_[txn].active = true;
  return Status::OK();
}

Status LockingEngine::CheckActive(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active) {
    return Status::TransactionAborted("txn " + std::to_string(txn) +
                                      " is not active");
  }
  return Status::OK();
}

void LockingEngine::Rollback(TxnId txn) {
  TxnState& st = txns_[txn];
  for (auto it = st.undo.rbegin(); it != st.undo.rend(); ++it) {
    store_.ApplyUndo(*it);
  }
  st.undo.clear();
  st.active = false;
  st.cursors.clear();
  lock_manager_.ReleaseAll(txn);
  history_.Append(Action::Abort(txn));
}

Result<LockHandle> LockingEngine::Acquire(TxnId txn, const LockSpec& spec) {
  Result<LockHandle> r = lock_manager_.TryAcquire(spec);
  if (r.ok()) return r;
  if (r.status().IsWouldBlock()) {
    ++stats_.blocked_ops;
    return r;
  }
  if (r.status().IsDeadlock()) {
    ++stats_.deadlock_aborts;
    Rollback(txn);
  }
  return r;
}

Result<std::optional<Row>> LockingEngine::DoRead(TxnId txn, const ItemId& id,
                                                 Action::Type type,
                                                 const std::string& cursor) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];

  LockHandle handle = 0;
  if (policy_.read_locks) {
    LockSpec spec = LockSpec::ReadItem(txn, id, store_.Get(id));
    CRITIQUE_ASSIGN_OR_RETURN(handle, Acquire(txn, spec));
  }

  std::optional<Row> row = store_.Get(id);
  Action a = type == Action::Type::kCursorRead
                 ? Action::CursorRead(txn, id, HistoryValue(row))
                 : Action::Read(txn, id, HistoryValue(row));
  history_.Append(std::move(a));
  ++stats_.reads;

  if (type == Action::Type::kCursorRead && policy_.cursor_stability) {
    // The cursor moved: drop the previous position's lock, hold this one.
    CursorState& cs = st.cursors[cursor];
    if (cs.lock != 0) lock_manager_.Release(cs.lock);
    cs.item = id;
    cs.lock = handle;  // held until the cursor moves or closes
  } else if (handle != 0 && policy_.item_read == LockDuration::kShort) {
    lock_manager_.Release(handle);
  }
  return row;
}

Result<std::optional<Row>> LockingEngine::Read(TxnId txn, const ItemId& id) {
  return DoRead(txn, id, Action::Type::kRead);
}

Result<std::optional<Row>> LockingEngine::FetchCursor(TxnId txn,
                                                      const ItemId& id) {
  return DoRead(txn, id, Action::Type::kCursorRead, "");
}

Result<std::optional<Row>> LockingEngine::FetchCursorNamed(
    TxnId txn, const std::string& cursor, const ItemId& id) {
  return DoRead(txn, id, Action::Type::kCursorRead, cursor);
}

Result<std::vector<std::pair<ItemId, Row>>> LockingEngine::ReadPredicate(
    TxnId txn, const std::string& name, const Predicate& pred) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));

  LockHandle handle = 0;
  if (policy_.read_locks) {
    CRITIQUE_ASSIGN_OR_RETURN(
        handle, Acquire(txn, LockSpec::ReadPredicate(txn, pred)));
  }

  auto rows = store_.Scan(pred);
  Action a = Action::PredicateRead(txn, name, pred);
  for (const auto& [id, row] : rows) {
    (void)row;
    a.read_set.push_back(id);
  }
  history_.Append(std::move(a));
  ++stats_.predicate_reads;

  if (handle != 0 && policy_.pred_read == LockDuration::kShort) {
    lock_manager_.Release(handle);
  }
  return rows;
}

Status LockingEngine::DoWrite(TxnId txn, const ItemId& id,
                              std::optional<Row> new_row, Action::Type type,
                              bool is_insert) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];

  std::optional<Row> before = store_.Get(id);
  LockSpec spec = LockSpec::WriteItem(txn, id, before, new_row);
  CRITIQUE_ASSIGN_OR_RETURN(LockHandle handle, Acquire(txn, spec));

  st.undo.push_back(UndoRecord{id, before});
  if (new_row.has_value()) {
    store_.Put(id, *new_row);
  } else {
    store_.Erase(id);
  }

  Action a = type == Action::Type::kCursorWrite
                 ? Action::CursorWrite(txn, id, HistoryValue(new_row))
                 : Action::Write(txn, id, HistoryValue(new_row));
  a.before_image = std::move(before);
  a.after_image = std::move(new_row);
  a.is_insert = is_insert;
  history_.Append(std::move(a));
  ++stats_.writes;

  if (policy_.write == LockDuration::kShort) {
    lock_manager_.Release(handle);  // Degree 0: action atomicity only
  }
  return Status::OK();
}

Status LockingEngine::Write(TxnId txn, const ItemId& id, Row row) {
  return DoWrite(txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/false);
}

Status LockingEngine::Insert(TxnId txn, const ItemId& id, Row row) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  if (store_.Contains(id)) {
    return Status::FailedPrecondition("insert: item '" + id + "' exists");
  }
  return DoWrite(txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/true);
}

Status LockingEngine::Delete(TxnId txn, const ItemId& id) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  if (!store_.Contains(id)) {
    return Status::NotFound("delete: item '" + id + "' absent");
  }
  return DoWrite(txn, id, std::nullopt, Action::Type::kWrite,
                 /*is_insert=*/false);
}

Result<size_t> LockingEngine::DoPredicateWrite(
    TxnId txn, const std::string& name, const Predicate& pred,
    const std::function<std::optional<Row>(const Row&)>& transform) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];

  // "Write locks on data items and predicates (always the same)": the
  // bulk write takes a Write predicate lock covering current rows and
  // phantoms alike.
  CRITIQUE_ASSIGN_OR_RETURN(LockHandle handle,
                            Acquire(txn, LockSpec::WritePredicate(txn, pred)));

  auto rows = store_.Scan(pred);
  Action a = Action::PredicateWrite(txn, name, pred);
  for (const auto& [id, row] : rows) {
    st.undo.push_back(UndoRecord{id, row});
    std::optional<Row> next = transform(row);
    if (next.has_value()) {
      store_.Put(id, *next);
    } else {
      store_.Erase(id);
    }
    a.read_set.push_back(id);
    ++stats_.writes;
  }
  history_.Append(std::move(a));

  if (policy_.write == LockDuration::kShort) lock_manager_.Release(handle);
  return rows.size();
}

Result<size_t> LockingEngine::UpdateWhere(
    TxnId txn, const std::string& name, const Predicate& pred,
    const std::function<Row(const Row&)>& transform) {
  return DoPredicateWrite(
      txn, name, pred,
      [&transform](const Row& row) -> std::optional<Row> {
        return transform(row);
      });
}

Result<size_t> LockingEngine::DeleteWhere(TxnId txn, const std::string& name,
                                          const Predicate& pred) {
  return DoPredicateWrite(
      txn, name, pred,
      [](const Row&) -> std::optional<Row> { return std::nullopt; });
}

Status LockingEngine::WriteCursor(TxnId txn, const ItemId& id, Row row) {
  // "The Fetching transaction can update the row, and in that case a write
  // lock will be held on the row until the transaction commits" — DoWrite
  // takes the long X lock; the cursor's S lock is subsumed.
  return DoWrite(txn, id, std::move(row), Action::Type::kCursorWrite,
                 /*is_insert=*/false);
}

Status LockingEngine::CloseCursor(TxnId txn) {
  return CloseCursorNamed(txn, "");
}

Status LockingEngine::CloseCursorNamed(TxnId txn, const std::string& cursor) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];
  auto it = st.cursors.find(cursor);
  if (it != st.cursors.end()) {
    if (it->second.lock != 0) lock_manager_.Release(it->second.lock);
    st.cursors.erase(it);
  }
  return Status::OK();
}

Status LockingEngine::Commit(TxnId txn) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];
  st.active = false;
  st.undo.clear();
  st.cursors.clear();
  history_.Append(Action::Commit(txn));
  lock_manager_.ReleaseAll(txn);
  ++stats_.commits;
  return Status::OK();
}

Status LockingEngine::Abort(TxnId txn) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  Rollback(txn);
  ++stats_.aborts;
  return Status::OK();
}

}  // namespace critique
