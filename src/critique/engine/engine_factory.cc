#include "critique/engine/engine_factory.h"

#include "critique/engine/locking_engine.h"
#include "critique/engine/read_consistency_engine.h"
#include "critique/engine/si_engine.h"

namespace critique {

std::unique_ptr<Engine> CreateEngine(IsolationLevel level) {
  if (IsLockingLevel(level)) {
    return std::make_unique<LockingEngine>(level);
  }
  switch (level) {
    case IsolationLevel::kSnapshotIsolation:
      return std::make_unique<SnapshotIsolationEngine>();
    case IsolationLevel::kSerializableSI: {
      SnapshotIsolationOptions opts;
      opts.ssi = true;
      return std::make_unique<SnapshotIsolationEngine>(opts);
    }
    case IsolationLevel::kOracleReadConsistency:
      return std::make_unique<ReadConsistencyEngine>();
    default:
      return nullptr;
  }
}

}  // namespace critique
