#ifndef CRITIQUE_ENGINE_READ_CONSISTENCY_ENGINE_H_
#define CRITIQUE_ENGINE_READ_CONSISTENCY_ENGINE_H_

#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "critique/common/clock.h"
#include "critique/engine/engine.h"
#include "critique/lock/lock_manager.h"
#include "critique/storage/version_store.h"

namespace critique {

/// \brief Oracle Read Consistency (Section 4.3): "each SQL statement
/// [sees] the most recent committed database value at the time the
/// statement began" — as if the start-timestamp advances at each
/// statement.  Writes take long Write locks, giving First-*Writer*-Wins
/// rather than First-Committer-Wins.
///
/// Consequences the paper lists, all reproduced by this engine:
///  * stronger than READ COMMITTED — P4C (cursor lost update) is
///    disallowed because `FetchCursor` locks the row at fetch
///    (SELECT ... FOR UPDATE), and `Update` applies statement-level write
///    consistency to the latest committed value;
///  * still allows non-repeatable reads (P2/P3), *general* lost updates
///    (P4, via application-level read-then-write across statements) and
///    read skew (A5A).
///
/// Thread-safe per the `Engine` contract, without an engine-wide latch:
/// the same split the other stock engines use — a reader-writer latch
/// over the transaction table (shared by operation bodies, exclusive by
/// `Begin`/admin scans/GC), a store latch whose exclusive section draws
/// the commit timestamp atomically with version stamping, and the striped
/// lock table.  In blocking mode write-lock waits run with the table
/// latch dropped so concurrent sessions keep progressing.
class ReadConsistencyEngine : public Engine {
 public:
  ReadConsistencyEngine();

  IsolationLevel level() const override {
    return IsolationLevel::kOracleReadConsistency;
  }

  /// Also applies `c.lock_stripes` to the engine's lock table and
  /// `c.storage_backend` to the version store (legal here: SetConcurrency
  /// runs before any session starts, so both are idle).  Re-announcing
  /// the backend already in force is a no-op on the store, so hooks that
  /// re-run SetConcurrency never clobber loaded data.
  void SetConcurrency(EngineConcurrency c) override {
    Engine::SetConcurrency(c);
    (void)lock_manager_.SetStripeCount(c.lock_stripes);
    lock_manager_.SetWakeupHook(concurrency().lock_wakeup);
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    if (store_->backend() != c.storage_backend) {
      store_ = MakeVersionStore(c.storage_backend);
      store_->DiscourageUnhinted();
    }
  }

  Status Load(const ItemId& id, Row row) override;
  Status Begin(TxnId txn) override;
  Result<std::optional<Row>> Read(TxnId txn, const ItemId& id) override;
  Result<std::vector<std::pair<ItemId, Row>>> ReadPredicate(
      TxnId txn, const std::string& name, const Predicate& pred) override;
  Status Write(TxnId txn, const ItemId& id, Row row) override;
  Status Insert(TxnId txn, const ItemId& id, Row row) override;
  Status Delete(TxnId txn, const ItemId& id) override;
  Result<std::optional<Row>> FetchCursor(TxnId txn, const ItemId& id) override;
  Status WriteCursor(TxnId txn, const ItemId& id, Row row) override;
  Status CloseCursor(TxnId txn) override;
  Status Update(TxnId txn, const ItemId& id,
                const std::function<Row(const std::optional<Row>&)>& transform)
      override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;

  // 2PC participant protocol: like the locking engine, commit cannot fail
  // (conflicts were resolved at write-lock grant), so `Prepare` only pins
  // the transaction in doubt with its write locks held until the
  // coordinator's decision.
  Status Prepare(TxnId txn) override;
  Status CommitPrepared(TxnId txn) override;
  Status AbortPrepared(TxnId txn) override;
  std::vector<TxnId> InDoubtTransactions() const override;

  LockStats lock_stats() const { return lock_manager_.stats(); }

  /// Base gauges plus lock-table counters and wait/park histograms.
  void RegisterMetrics(obs::MetricsRegistry& reg,
                       const std::string& prefix) override;

  /// Lock holders, waiters, and waits-for edges (stall introspection).
  std::string DebugDump() const override;

  // Version GC.  Read Consistency reads are statement-level (each
  // statement sees the most recent committed value), so the engine's
  // low-watermark is simply "now": every committed version below the
  // newest is invisible to all future statements.  `kWatermark` mode
  // prunes automatically every `commit_interval` commits and also retires
  // finished transaction states.
  size_t GarbageCollectVersions() override;
  size_t VersionCount() const override;
  size_t MaxVersionChainLength() const override;
  VersionGcStats version_gc_stats() const override;

 private:
  struct TxnState {
    bool active = false;
    /// Prepared (in doubt) by a 2PC coordinator: locks held, every
    /// operation but CommitPrepared/AbortPrepared refused.
    bool prepared = false;
    /// Items with pending versions, so commit/abort stamps O(|write set|)
    /// chains instead of scanning the whole store.  Cleared as soon as
    /// the terminal consumes it — finished states must not pin per-write
    /// memory.
    std::set<ItemId> write_set;
    /// Redo after-images (nullopt = tombstone), collected only while a WAL
    /// sink is attached; drained at Prepare or Commit, cleared with
    /// `write_set`.  Owner-thread-only.
    std::map<ItemId, std::optional<Row>> redo;
  };

  /// The table-latch guard every operation body holds (shared).
  using TableLock = std::shared_lock<std::shared_mutex>;

  // Private helpers require `table_mu_` (shared unless stated otherwise);
  // AcquireWriteLock and DoWrite may drop and re-take `lk` around a
  // blocking lock wait.
  Status CheckActive(TxnId txn) const;
  Status CheckPrepared(TxnId txn) const;
  /// Takes `store_mu_` internally.
  void Rollback(TxnId txn);
  Result<LockHandle> AcquireWriteLock(TableLock& lk, TxnId txn,
                                      const ItemId& id,
                                      std::optional<Row> after);
  Status DoWrite(TableLock& lk, TxnId txn, const ItemId& id,
                 std::optional<Row> new_row, Action::Type type, bool is_insert,
                 bool already_locked);
  Result<std::optional<Row>> DoRead(TxnId txn, const ItemId& id,
                                    Action::Type type);

  /// Counts a finished transaction toward the GC epoch; true when a
  /// periodic pass is due (kWatermark mode).  Takes `gc_mu_`.
  bool GcTick();

  /// One GC pass: prune chains below "now" and retire finished txn
  /// states.  Takes `table_mu_` exclusive (and `store_mu_` inside); call
  /// with no engine latch held.  Returns versions dropped.
  size_t RunGcPass();

  /// Reader-writer latch over the transaction-table registry (shared by
  /// operation bodies; exclusive: Begin, InDoubtTransactions, GC).
  mutable std::shared_mutex table_mu_;
  /// Latch over the version store.  The commit timestamp is drawn inside
  /// the exclusive publication section, so a statement snapshot that can
  /// see the timestamp sees the stamped versions too.
  mutable std::shared_mutex store_mu_;
  /// GC epoch counter + stats (leaf latch).
  mutable std::mutex gc_mu_;
  LogicalClock clock_;
  std::unique_ptr<VersionStore> store_;  ///< store_mu_
  LockManager lock_manager_;
  std::map<TxnId, TxnState> txns_;
  uint32_t commits_since_gc_ = 0;  ///< gc_mu_
  VersionGcStats gc_stats_;        ///< gc_mu_
};

}  // namespace critique

#endif  // CRITIQUE_ENGINE_READ_CONSISTENCY_ENGINE_H_
