#ifndef CRITIQUE_ENGINE_SI_ENGINE_H_
#define CRITIQUE_ENGINE_SI_ENGINE_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "critique/common/clock.h"
#include "critique/engine/engine.h"
#include "critique/storage/mv_store.h"

namespace critique {

/// Options for `SnapshotIsolationEngine`.
struct SnapshotIsolationOptions {
  /// First-Updater-Wins ablation: abort a write immediately when another
  /// active transaction holds a pending version of the item (instead of
  /// waiting for the paper's commit-time First-Committer-Wins check).
  bool eager_write_conflicts = false;

  /// Serializable Snapshot Isolation extension: track rw anti-dependencies
  /// (the hazard this paper's write-skew analysis exposed; made precise by
  /// Cahill et al. 2008) and abort pivot transactions at commit.  May
  /// abort false positives; never admits an rw-only cycle.
  bool ssi = false;
};

/// \brief Snapshot Isolation (Section 4.2): every transaction reads from
/// the committed snapshot at its Start-Timestamp, sees its own writes, and
/// commits only if no concurrent committed transaction wrote the same data
/// (First-Committer-Wins).
///
/// "A transaction running in Snapshot Isolation is never blocked attempting
/// a read": no operation of this engine ever returns kWouldBlock; conflicts
/// surface only as kSerializationFailure aborts.
///
/// Thread-safe per the `Engine` contract: one internal latch serializes
/// operation bodies (nothing ever waits inside it — SI has no lock waits),
/// which also makes the First-Committer-Wins validate-then-commit step
/// atomic under concurrent sessions.
class SnapshotIsolationEngine : public Engine {
 public:
  explicit SnapshotIsolationEngine(SnapshotIsolationOptions options = {});

  IsolationLevel level() const override {
    return options_.ssi ? IsolationLevel::kSerializableSI
                        : IsolationLevel::kSnapshotIsolation;
  }

  Status Load(const ItemId& id, Row row) override;
  Status Begin(TxnId txn) override;

  /// Time travel (Section 4.2): begin a transaction whose snapshot is the
  /// historical timestamp `ts` ("taking a historical perspective of the
  /// database — while never blocking or being blocked by writes").
  Status BeginAt(TxnId txn, Timestamp ts) override;

  std::optional<Timestamp> SnapshotTimestamp() const override {
    return clock_.Now();
  }

  Result<std::optional<Row>> Read(TxnId txn, const ItemId& id) override;
  Result<std::vector<std::pair<ItemId, Row>>> ReadPredicate(
      TxnId txn, const std::string& name, const Predicate& pred) override;
  Status Write(TxnId txn, const ItemId& id, Row row) override;
  Status Insert(TxnId txn, const ItemId& id, Row row) override;
  Status Delete(TxnId txn, const ItemId& id) override;
  Result<size_t> UpdateWhere(
      TxnId txn, const std::string& name, const Predicate& pred,
      const std::function<Row(const Row&)>& transform) override;
  Result<size_t> DeleteWhere(TxnId txn, const std::string& name,
                             const Predicate& pred) override;
  Result<std::optional<Row>> FetchCursor(TxnId txn, const ItemId& id) override;
  Status WriteCursor(TxnId txn, const ItemId& id, Row row) override;
  Status CloseCursor(TxnId txn) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;

  // 2PC participant protocol.  `Prepare` runs the First-Committer-Wins
  // check (and the SSI pivot check) *now* and freezes the transaction in
  // doubt; `CommitPrepared` then only assigns the commit timestamp and
  // installs versions, so it cannot fail.  Because a prepared transaction
  // has validated but not yet published, any other transaction whose
  // write set overlaps a prepared write set is refused at its own
  // prepare/commit (kSerializationFailure): the in-doubt window acts as a
  // commit-order reservation on the prepared write set, preserving
  // First-Committer-Wins across the coordinator boundary.  Reads are
  // untouched — pending versions stay invisible and "a transaction
  // running in Snapshot Isolation is never blocked attempting a read".
  //
  // SSI caveat: the pivot check runs at prepare; an rw-antidependency
  // closing a dangerous structure *during* the in-doubt window is only
  // caught if the other participant's own validation sees it.  Full
  // closure needs global certification — exactly why per-shard SSI does
  // not compose into global serializability without a coordinator-level
  // check (see shard/README notes); per-shard Locking SERIALIZABLE does,
  // because its locks are held across the window.
  Status Prepare(TxnId txn) override;
  Status CommitPrepared(TxnId txn) override;
  Status AbortPrepared(TxnId txn) override;
  std::vector<TxnId> InDoubtTransactions() const override;

  /// Latest committed timestamp (the "now" a new snapshot would see).
  Timestamp Now() const { return clock_.Now(); }

  // Version GC.  The low-watermark is the smallest begin timestamp of any
  // transaction still open on this engine (prepared in-doubt participants
  // included), else "now": versions superseded at or below it are
  // invisible to every live and future snapshot.  In `kWatermark` mode a
  // pass runs automatically every `commit_interval` commits (the epoch),
  // finished transaction states and their SSI SIREAD bookkeeping are
  // retired alongside the versions, and `BeginAt` below the collected
  // floor is refused — time travel is never answered from a pruned chain.
  // In `kRetainAll` (the default) nothing is pruned unless a pass is
  // requested explicitly.

  /// Runs one GC pass now; returns the number of versions discarded.
  size_t GarbageCollectVersions() override;

  /// Backwards-compatible alias for `GarbageCollectVersions`.
  size_t GarbageCollect() { return GarbageCollectVersions(); }

  /// Stored version count (GC observability).
  size_t VersionCount() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return store_.VersionCount();
  }

  /// Longest version chain (GC boundedness metric).
  size_t MaxVersionChainLength() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return store_.MaxChainLength();
  }

  VersionGcStats version_gc_stats() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return gc_stats_;
  }

  /// Highest watermark any GC pass has pruned to; `BeginAt` refuses
  /// snapshots below it.
  Timestamp gc_floor() const {
    std::lock_guard<std::mutex> lk(mu_);
    return gc_floor_;
  }

  const SnapshotIsolationOptions& options() const { return options_; }

 private:
  struct TxnState {
    bool active = false;
    bool committed = false;
    bool aborted = false;
    /// Prepared (in doubt): validated, pending versions reserved, waiting
    /// for the coordinator's decision.
    bool prepared = false;
    Timestamp start_ts = kInvalidTimestamp;
    Timestamp commit_ts = kInvalidTimestamp;
    std::set<ItemId> write_set;
    std::set<ItemId> read_set;
    // SSI rw-antidependency neighbours: `in_from` holds U with U -rw-> this
    // (U read something this wrote over); `out_to` holds W with
    // this -rw-> W.  A transaction with live edges on both sides is a
    // pivot of a dangerous structure and must not commit.
    std::set<TxnId> in_from;
    std::set<TxnId> out_to;
  };

  // Private helpers all require `mu_` held.
  Status BeginAtLocked(TxnId txn, Timestamp ts);
  Status CheckActive(TxnId txn) const;
  Status CheckPrepared(TxnId txn) const;
  Status AbortInternal(TxnId txn, Status reason);

  /// First-Committer-Wins + in-doubt reservation + SSI pivot validation —
  /// the checks shared by one-phase Commit and Prepare.  On failure the
  /// transaction is aborted and the refusal status returned.
  Status ValidateForCommit(TxnId txn);
  Result<std::optional<Row>> DoRead(TxnId txn, const ItemId& id,
                                    Action::Type type);
  Status DoWrite(TxnId txn, const ItemId& id, std::optional<Row> new_row,
                 Action::Type type, bool is_insert);

  // True when U (by state) was concurrent with T (by state): their
  // [start, commit] intervals overlap (an active transaction's commit is
  // "infinity").
  bool Concurrent(const TxnState& a, const TxnState& b) const;

  void AddRwEdge(TxnId reader, TxnId writer);
  void TrackReadConflicts(TxnId reader, const ItemId& id);
  void TrackWriteConflicts(TxnId writer, const ItemId& id,
                           const std::optional<Row>& before,
                           const std::optional<Row>& after);
  bool SsiPivot(const TxnState& st) const;

  /// Counts a commit toward the GC epoch and runs the periodic pass in
  /// kWatermark mode.  Requires `mu_` held.
  void MaybeGcLocked();

  /// One GC pass: compute the watermark, prune chains, raise the floor,
  /// and (kWatermark mode) retire finished transaction states plus their
  /// SSI bookkeeping.  Requires `mu_` held; returns versions dropped.
  size_t RunGcLocked();

  SnapshotIsolationOptions options_;
  /// Latch over clock_/store_/txns_ and operation bodies.
  mutable std::mutex mu_;
  LogicalClock clock_;
  MultiVersionStore store_;
  std::map<TxnId, TxnState> txns_;
  // SSI SIREAD bookkeeping: item readers and predicate readers.
  std::map<ItemId, std::set<TxnId>> readers_;
  std::vector<std::pair<Predicate, TxnId>> predicate_readers_;
  uint32_t commits_since_gc_ = 0;
  Timestamp gc_floor_ = kInvalidTimestamp;  ///< highest pruned watermark
  VersionGcStats gc_stats_;
};

}  // namespace critique

#endif  // CRITIQUE_ENGINE_SI_ENGINE_H_
