#ifndef CRITIQUE_ENGINE_SI_ENGINE_H_
#define CRITIQUE_ENGINE_SI_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "critique/common/clock.h"
#include "critique/engine/engine.h"
#include "critique/storage/version_store.h"

namespace critique {

/// Options for `SnapshotIsolationEngine`.
struct SnapshotIsolationOptions {
  /// First-Updater-Wins ablation: abort a write immediately when another
  /// active transaction holds a pending version of the item (instead of
  /// waiting for the paper's commit-time First-Committer-Wins check).
  bool eager_write_conflicts = false;

  /// Serializable Snapshot Isolation extension: track rw anti-dependencies
  /// (the hazard this paper's write-skew analysis exposed; made precise by
  /// Cahill et al. 2008) and abort pivot transactions at commit.  May
  /// abort false positives; never admits an rw-only cycle.
  bool ssi = false;
};

/// What the commit pipeline has done so far (observability for tests and
/// benches; see the `Commit pipeline` notes on the class).
struct CommitPipelineStats {
  /// Commit-sequence slots issued (one per Commit/Prepare validation).
  uint64_t slots_issued = 0;
  /// Transactions refused by the *re*-validation between slot acquisition
  /// and version publication (a dangerous structure completed inside the
  /// commit window).
  uint64_t revalidation_aborts = 0;
  /// Prepared (in-doubt) participants refused at `CommitPrepared` because
  /// their dangerous structure completed while they were in doubt.
  uint64_t decision_aborts = 0;
};

/// \brief Snapshot Isolation (Section 4.2): every transaction reads from
/// the committed snapshot at its Start-Timestamp, sees its own writes, and
/// commits only if no concurrent committed transaction wrote the same data
/// (First-Committer-Wins).
///
/// "A transaction running in Snapshot Isolation is never blocked attempting
/// a read": no operation of this engine ever returns kWouldBlock; conflicts
/// surface only as kSerializationFailure aborts.
///
/// Latching (thread-safe per the `Engine` contract, without an engine-wide
/// latch): disjoint sessions no longer queue behind one mutex.
///
///  * `table_mu_` (reader-writer) — the transaction-table registry.  Every
///    session operation holds it *shared*; only `Begin`/`BeginAt` (insert),
///    a version-GC pass (retire), and `InDoubtTransactions` take it
///    exclusive.  A transaction's own state is mutated only by its driving
///    thread ("one session per thread"), so shared table access suffices
///    for everything per-transaction.
///  * `commit_mu_` — the commit pipeline (below): validation, write-set
///    reservations, publication, and the commit-sequence counter.
///  * `ssi_mu_` — SSI bookkeeping: SIREAD tables, rw-edge sets, and (in SSI
///    mode) cross-transaction state reads, so edge tracking and pivot
///    validation see consistent neighbour states.  Never held across a
///    store scan that doesn't need it; not touched at plain SI.
///  * `store_mu_` (reader-writer) — the physical version store.  Reads and
///    scans share; writes, publication, and GC are exclusive.  A commit
///    timestamp is drawn *inside* the publication's exclusive section, so
///    any snapshot that could observe the timestamp observes the stamped
///    versions too (no torn visibility).
///
/// Lock order: table_mu_ < commit_mu_ < ssi_mu_ < store_mu_ (never
/// acquired against this order; non-nested sequential sections are free).
///
/// Commit pipeline (the SSI commit-window fix; Cahill et al. 2008, and
/// Ports & Grittner 2012 for the prepared flavor): ending a transaction is
/// two pipeline stages rather than one latched block.
///
///  1. *Validate + reserve*: under `commit_mu_` the transaction takes the
///     next commit-sequence slot, runs First-Committer-Wins, the in-doubt
///     write-set reservation check, and the SSI dangerous-structure checks
///     (its own pivot status *and* whether its commit would complete a
///     structure through an already-committed pivot).  On success its
///     write set is reserved so no overlapping transaction can slip
///     through validation while this one is between stages.
///  2. *Re-validate + publish*: under `commit_mu_` again, the SSI checks
///     re-run against every rw-edge that appeared since stage 1 — the
///     window in which the old engine-wide latch silently admitted
///     dangerous structures — and only then is the commit timestamp drawn
///     and the versions published.
///
/// `Prepare` is stage 1 with the transaction frozen in doubt (the
/// reservation held until the coordinator decides); `CommitPrepared` is
/// stage 2, so a participant whose dangerous structure completed while in
/// doubt aborts at the decision phase with `kSerializationFailure` instead
/// of publishing a non-serializable commit (see the 2PC notes below).
class SnapshotIsolationEngine : public Engine {
 public:
  explicit SnapshotIsolationEngine(SnapshotIsolationOptions options = {});

  IsolationLevel level() const override {
    return options_.ssi ? IsolationLevel::kSerializableSI
                        : IsolationLevel::kSnapshotIsolation;
  }

  Status Load(const ItemId& id, Row row) override;
  Status Begin(TxnId txn) override;

  /// Per-transaction isolation contracts inside one engine: Read Committed
  /// (each statement reads the latest committed snapshot, no
  /// First-Committer-Wins check) and Snapshot Isolation are always
  /// honored; Serializable-SI is honored only when the engine runs the SSI
  /// certifier (`options().ssi`), since only then are the rw edges
  /// tracked.  Every transaction — whatever its declared level — still
  /// participates in the others' bookkeeping (its writes feed FCW probes,
  /// its reads feed SSI edges), so weak transactions never weaken a
  /// stronger neighbour's guarantee.
  Status BeginWithLevel(TxnId txn, IsolationLevel level) override;

  /// Time travel (Section 4.2): begin a transaction whose snapshot is the
  /// historical timestamp `ts` ("taking a historical perspective of the
  /// database — while never blocking or being blocked by writes").
  Status BeginAt(TxnId txn, Timestamp ts) override;

  std::optional<Timestamp> SnapshotTimestamp() const override {
    return clock_.Now();
  }

  Result<std::optional<Row>> Read(TxnId txn, const ItemId& id) override;
  Result<std::vector<std::pair<ItemId, Row>>> ReadPredicate(
      TxnId txn, const std::string& name, const Predicate& pred) override;
  Status Write(TxnId txn, const ItemId& id, Row row) override;
  Status Insert(TxnId txn, const ItemId& id, Row row) override;
  Status Delete(TxnId txn, const ItemId& id) override;
  Result<size_t> UpdateWhere(
      TxnId txn, const std::string& name, const Predicate& pred,
      const std::function<Row(const Row&)>& transform) override;
  Result<size_t> DeleteWhere(TxnId txn, const std::string& name,
                             const Predicate& pred) override;
  Result<std::optional<Row>> FetchCursor(TxnId txn, const ItemId& id) override;
  Status WriteCursor(TxnId txn, const ItemId& id, Row row) override;
  Status CloseCursor(TxnId txn) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;

  // 2PC participant protocol.  `Prepare` runs commit-pipeline stage 1 (the
  // First-Committer-Wins check, the reservation check, and the SSI
  // dangerous-structure checks) *now* and freezes the transaction in
  // doubt; its write-set reservation stays held, so any other transaction
  // whose write set overlaps a prepared write set is refused at its own
  // validation (kSerializationFailure): the in-doubt window acts as a
  // commit-order reservation on the prepared write set, preserving
  // First-Committer-Wins across the coordinator boundary.  Reads are
  // untouched — pending versions stay invisible and "a transaction
  // running in Snapshot Isolation is never blocked attempting a read".
  //
  // `CommitPrepared` is commit-pipeline stage 2: it *re-runs* the SSI
  // dangerous-structure checks against every rw-antidependency that formed
  // while the participant was in doubt.  If the participant became the
  // pivot of a completed dangerous structure during that window (its
  // in-edge source committed or prepared, its out-edge target committed
  // first — the Ports & Grittner prepared-transaction hazard), the
  // decision phase refuses with kSerializationFailure and the engine has
  // already rolled the participant back, exactly as a failed `Commit`.
  // This binds into the coordinator's presumed-abort rules: the refusal is
  // an abort acknowledgement, never an open question (the participant is
  // terminal either way), and `AbortPrepared` is unaffected.  Engines
  // whose prepare pins every conflict under locks still promise an
  // infallible CommitPrepared; a *certifying* engine cannot, because
  // certification is only complete at publication.
  Status Prepare(TxnId txn) override;
  Status CommitPrepared(TxnId txn) override;
  Status AbortPrepared(TxnId txn) override;
  std::vector<TxnId> InDoubtTransactions() const override;

  /// Latest committed timestamp (the "now" a new snapshot would see).
  Timestamp Now() const { return clock_.Now(); }

  // Version GC.  The low-watermark is the smallest begin timestamp of any
  // transaction still open on this engine (prepared in-doubt participants
  // included), else "now": versions superseded at or below it are
  // invisible to every live and future snapshot.  In `kWatermark` mode a
  // pass runs automatically every `commit_interval` commits (the epoch),
  // finished transaction states and their SSI SIREAD bookkeeping are
  // retired alongside the versions, and `BeginAt` below the collected
  // floor is refused — time travel is never answered from a pruned chain.
  // In `kRetainAll` (the default) nothing is pruned unless a pass is
  // requested explicitly.

  /// Runs one GC pass now; returns the number of versions discarded.
  size_t GarbageCollectVersions() override;

  /// Backwards-compatible alias for `GarbageCollectVersions`.
  size_t GarbageCollect() { return GarbageCollectVersions(); }

  /// Stored version count (GC observability).
  size_t VersionCount() const override {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    return store_->VersionCount();
  }

  /// Longest version chain (GC boundedness metric).
  size_t MaxVersionChainLength() const override {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    return store_->MaxChainLength();
  }

  /// Adopts `c.storage_backend` alongside the base behavior: the version
  /// store is swapped for a fresh store of the selected backend.  Only
  /// legal before any data is loaded — re-announcing the backend already
  /// in force (as `Database::SetLockWakeupHook` does when it re-runs
  /// SetConcurrency) is a no-op that never touches the store.
  void SetConcurrency(EngineConcurrency c) override;

  VersionGcStats version_gc_stats() const override {
    std::lock_guard<std::mutex> lk(gc_stats_mu_);
    return gc_stats_;
  }

  /// Highest watermark any GC pass has pruned to; `BeginAt` refuses
  /// snapshots below it.
  Timestamp gc_floor() const {
    return gc_floor_.load(std::memory_order_acquire);
  }

  /// Commit-pipeline counters (slots issued, window re-validation aborts,
  /// in-doubt decision aborts).
  CommitPipelineStats commit_pipeline_stats() const {
    std::lock_guard<std::mutex> lk(commit_mu_);
    return pipeline_stats_;
  }

  /// Base gauges plus pipeline counters and per-stage latency histograms.
  void RegisterMetrics(obs::MetricsRegistry& reg,
                       const std::string& prefix) override;

  /// Commit-pipeline stage-1 (validate + reserve) latency, microseconds.
  const obs::Histogram& validate_histogram() const { return stage1_hist_; }

  /// Commit-pipeline stage-2 (re-validate + publish) latency, microseconds.
  const obs::Histogram& publish_histogram() const { return stage2_hist_; }

  /// Test-only failpoint: runs between commit-pipeline stages 1 and 2 of
  /// every `Commit`, with *no engine latch held*, on the committing
  /// thread.  The hook may drive other transactions on this engine to
  /// force an rw-antidependency into the commit window — the deterministic
  /// reproduction of the escape stage 2 exists to close.  Install before
  /// any session starts; pass nullptr to clear.
  void SetCommitWindowHook(std::function<void(TxnId)> hook) {
    commit_window_hook_ = std::move(hook);
  }

  const SnapshotIsolationOptions& options() const { return options_; }

 private:
  struct TxnState {
    bool active = false;
    bool committed = false;
    bool aborted = false;
    /// Prepared (in doubt): validated, pending versions reserved, waiting
    /// for the coordinator's decision.
    bool prepared = false;
    /// Declared isolation contract (BeginWithLevel); governs read
    /// timestamps (RC reads per-statement), the FCW probe (skipped at
    /// RC), and which transactions the SSI certifier refuses as pivots.
    IsolationLevel level = IsolationLevel::kSnapshotIsolation;
    Timestamp start_ts = kInvalidTimestamp;
    Timestamp commit_ts = kInvalidTimestamp;
    /// Sticky GC summary: some committed rw-successor of this (committed)
    /// transaction committed *before* it and was then retired by version
    /// GC.  Keeps the dangerous-structure completion check sound after
    /// the successor's state is gone.
    bool committed_first_out = false;
    std::set<ItemId> write_set;
    std::set<ItemId> read_set;
    /// Redo after-images (nullopt = tombstone), collected only while a WAL
    /// sink is attached; drained into a kWriteSet record at Prepare or
    /// immediately before the kCommit append.  Owner-thread-only.
    std::map<ItemId, std::optional<Row>> redo;
    // SSI rw-antidependency neighbours: `in_from` holds U with U -rw-> this
    // (U read something this wrote over); `out_to` holds W with
    // this -rw-> W.  A transaction with live edges on both sides is a
    // pivot of a dangerous structure and must not commit.
    std::set<TxnId> in_from;
    std::set<TxnId> out_to;
  };

  // --- helpers; each names the latches it requires ---------------------------

  /// Requires `table_mu_` exclusive.
  Status BeginAtLocked(TxnId txn, Timestamp ts, IsolationLevel level);

  /// The snapshot a read of `st` uses *now*: the begin snapshot, except
  /// at Read Committed, where each statement reads the latest committed
  /// state ("read committed data" — no repeatable-read promise).
  Timestamp ReadTs(const TxnState& st) const {
    return st.level == IsolationLevel::kReadCommitted ? clock_.Now()
                                                      : st.start_ts;
  }
  /// Require `table_mu_` shared (the entry is read by its own session).
  Status CheckActive(TxnId txn) const;
  Status CheckPrepared(TxnId txn) const;

  /// Rolls `txn` back (store abort + state flags + `a<t>` record), charging
  /// `counter`, and records the abort's paper-taxonomy tag: the matching
  /// `EngineStats` breakdown counter (serialization aborts only) plus a
  /// tracer event when a tracer is attached.  Requires `table_mu_` shared;
  /// takes `ssi_mu_`/`store_mu_` internally, so the caller may hold
  /// `commit_mu_` but neither of those.
  Status AbortInternal(TxnId txn, Status reason,
                       uint64_t EngineStats::*counter, obs::AbortReason why);

  /// Commit-pipeline stage 1: First-Committer-Wins + reservation overlap +
  /// SSI dangerous-structure checks; on success reserves the write set and
  /// issues a commit slot.  Requires `table_mu_` shared + `commit_mu_`;
  /// takes `ssi_mu_`/`store_mu_` internally.  On failure the transaction
  /// is aborted and the refusal returned.
  Status ValidateAndReserve(TxnId txn);

  /// Commit-pipeline stage 2 for `txn` (already validated): re-runs the
  /// SSI checks, then publishes versions at a fresh commit timestamp and
  /// retires the reservation.  `decision` distinguishes a CommitPrepared
  /// (refined in-doubt completion check, decision_aborts counter) from a
  /// plain Commit window re-validation.  Same latch contract as stage 1.
  /// When a WAL is attached, the publication section appends the redo +
  /// commit records and stores the commit LSN in `*wal_lsn` (untouched
  /// when nothing was logged); the caller waits on it *after* releasing
  /// every latch.
  Status RevalidateAndPublish(TxnId txn, bool decision,
                              std::optional<uint64_t>* wal_lsn);

  /// Drops `txn`'s write-set reservations.  Requires `commit_mu_`.
  void ReleaseReservations(TxnId txn);

  /// Counts a published commit toward the GC epoch; true when a periodic
  /// pass is due (kWatermark mode).  Requires `commit_mu_`.
  bool GcTick();

  Result<std::optional<Row>> DoRead(TxnId txn, const ItemId& id,
                                    Action::Type type);
  Status DoWrite(TxnId txn, const ItemId& id, std::optional<Row> new_row,
                 Action::Type type, bool is_insert);

  // True when U (by state) was concurrent with T (by state): their
  // [start, commit] intervals overlap (an active transaction's commit is
  // "infinity").  Requires `ssi_mu_` (neighbour states are read).
  bool Concurrent(const TxnState& a, const TxnState& b) const;

  // SSI edge tracking; all require `table_mu_` shared + `ssi_mu_`.
  void AddRwEdge(TxnId reader, TxnId writer);
  void TrackReadConflicts(TxnId reader, const ItemId& id);
  void TrackWriteConflicts(TxnId writer, const ItemId& id,
                           const std::optional<Row>& before,
                           const std::optional<Row>& after);

  /// Conservative pivot test: a live (non-aborted) rw edge on both sides.
  /// Requires `ssi_mu_`.
  bool SsiPivot(const TxnState& st) const;

  /// True when committing `st` (id `self`) would complete a dangerous
  /// structure whose pivot P is already *committed*: self -rw-> P and some
  /// other W in P's out-edges committed before P did (Cahill's
  /// committed-pivot rule — P can no longer abort, so self must).
  /// Requires `ssi_mu_`.
  bool CompletesCommittedPivot(TxnId self, const TxnState& st) const;

  /// The refined decision-phase test for a prepared participant: its
  /// dangerous structure *completed* while in doubt — an in-edge source
  /// committed or prepared AND an out-edge target committed (committed
  /// first, since this participant has no commit timestamp yet).
  /// Requires `ssi_mu_`.
  bool CompletedPivotInDoubt(const TxnState& st) const;

  /// Guard over the per-transaction state that SSI bookkeeping reads
  /// across sessions: locked in SSI mode, disengaged (and free) at plain
  /// SI, where all such state is owner-thread-only.  Every mutation of
  /// TxnState fields outside a table-exclusive section goes through it.
  std::unique_lock<std::mutex> SsiLock() {
    std::unique_lock<std::mutex> lk(ssi_mu_, std::defer_lock);
    if (options_.ssi) lk.lock();
    return lk;
  }

  /// The SSI refusals shared by stage 1 and the stage-2 re-validation.
  /// Returns the refusal message, or nullopt to admit.  Requires
  /// `table_mu_` shared; takes `ssi_mu_` internally.  No-op at plain SI.
  std::optional<std::string> SsiRefusal(TxnId txn, bool decision);

  /// One GC pass: compute the watermark, prune chains, raise the floor,
  /// and (kWatermark mode) retire finished transaction states plus their
  /// SSI bookkeeping.  Takes `table_mu_` exclusive (and `store_mu_`
  /// inside); call with no engine latch held.  Returns versions dropped.
  size_t RunGcPass();

  SnapshotIsolationOptions options_;

  /// Reader-writer latch over the transaction-table registry (see class
  /// comment for the full latching map).
  mutable std::shared_mutex table_mu_;
  /// Commit pipeline: validation order, reservations, publication.
  mutable std::mutex commit_mu_;
  /// SSI bookkeeping (SIREAD tables, edges, neighbour-state reads).
  mutable std::mutex ssi_mu_;
  /// Physical version store.
  mutable std::shared_mutex store_mu_;
  mutable std::mutex gc_stats_mu_;

  LogicalClock clock_;
  std::unique_ptr<VersionStore> store_;     ///< store_mu_
  std::map<TxnId, TxnState> txns_;          ///< table_mu_ (+ ssi_mu_ rules)
  // SSI SIREAD bookkeeping: item readers and predicate readers (ssi_mu_).
  std::map<ItemId, std::set<TxnId>> readers_;
  std::vector<std::pair<Predicate, TxnId>> predicate_readers_;
  // Write-set reservations of transactions between pipeline stage 1 and
  // publication — in-flight committers and prepared (in-doubt)
  // participants (commit_mu_).
  std::map<ItemId, TxnId> reservations_;
  // `slots_issued` doubles as the commit-sequence counter: stage-1
  // entries are serialized by commit_mu_, so each validation owns a
  // distinct slot number.
  CommitPipelineStats pipeline_stats_;      ///< commit_mu_
  // Per-stage commit-pipeline latency (internally synchronized).
  obs::Histogram stage1_hist_;
  obs::Histogram stage2_hist_;
  uint32_t commits_since_gc_ = 0;           ///< commit_mu_
  std::atomic<Timestamp> gc_floor_{kInvalidTimestamp};
  VersionGcStats gc_stats_;                 ///< gc_stats_mu_
  std::function<void(TxnId)> commit_window_hook_;  ///< test failpoint
};

}  // namespace critique

#endif  // CRITIQUE_ENGINE_SI_ENGINE_H_
