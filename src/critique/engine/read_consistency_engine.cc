#include "critique/engine/read_consistency_engine.h"

#include <algorithm>

namespace critique {
namespace {

std::optional<Value> HistoryValue(const std::optional<Row>& row) {
  if (row.has_value() && row->Has("val")) return row->scalar();
  return std::nullopt;
}

}  // namespace

Status ReadConsistencyEngine::Load(const ItemId& id, Row row) {
  std::unique_lock<std::mutex> lk(mu_);
  store_.Bootstrap(id, std::move(row), clock_.Tick());
  return Status::OK();
}

Status ReadConsistencyEngine::Begin(TxnId txn) {
  std::unique_lock<std::mutex> lk(mu_);
  if (txn < 1) return Status::InvalidArgument("txn ids start at 1");
  if (txns_.count(txn)) {
    return Status::InvalidArgument("txn " + std::to_string(txn) +
                                   " already used");
  }
  txns_[txn].active = true;
  return Status::OK();
}

Status ReadConsistencyEngine::CheckActive(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active) {
    return Status::TransactionAborted("txn " + std::to_string(txn) +
                                      " is not active");
  }
  if (it->second.prepared) {
    return Status::FailedPrecondition(
        "txn " + std::to_string(txn) +
        " is prepared (in doubt); only CommitPrepared/AbortPrepared may end "
        "it");
  }
  return Status::OK();
}

Status ReadConsistencyEngine::CheckPrepared(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active || !it->second.prepared) {
    return Status::FailedPrecondition("txn " + std::to_string(txn) +
                                      " is not prepared");
  }
  return Status::OK();
}

void ReadConsistencyEngine::Rollback(TxnId txn) {
  TxnState& st = txns_[txn];
  st.active = false;
  store_.AbortTxn(txn, st.write_set);
  st.write_set.clear();  // the hint is dead once the versions are gone
  lock_manager_.ReleaseAll(txn);
  recorder_.Record(Action::Abort(txn));
}

Result<LockHandle> ReadConsistencyEngine::AcquireWriteLock(
    std::unique_lock<std::mutex>& lk, TxnId txn, const ItemId& id,
    std::optional<Row> after) {
  std::optional<Row> before = store_.Read(id, clock_.Now(), txn);
  LockSpec spec = LockSpec::WriteItem(txn, id, std::move(before),
                                      std::move(after));
  // (No image-staleness redo here: this engine takes no predicate locks,
  // so its conflicts are decided by item identity alone.)
  return AcquireLockWithProtocol(lock_manager_, lk, spec,
                                 concurrency_.lock_wait_timeout,
                                 [&] { Rollback(txn); });
}

Result<std::optional<Row>> ReadConsistencyEngine::DoRead(TxnId txn,
                                                         const ItemId& id,
                                                         Action::Type type) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  // Statement-level snapshot: the most recent committed value now.
  const Timestamp stmt_ts = clock_.Now();
  auto version = store_.ReadVersionInfo(id, stmt_ts, txn);
  std::optional<Row> row;
  Action a = type == Action::Type::kCursorRead ? Action::CursorRead(txn, id)
                                               : Action::Read(txn, id);
  if (version.has_value()) {
    a.version = version->creator;
    if (!version->tombstone) {
      row = version->row;
      a.value = HistoryValue(row);
    }
  }
  recorder_.Record(std::move(a), &EngineStats::reads);
  return row;
}

Result<std::optional<Row>> ReadConsistencyEngine::Read(TxnId txn,
                                                       const ItemId& id) {
  std::unique_lock<std::mutex> lk(mu_);
  return DoRead(txn, id, Action::Type::kRead);
}

Result<std::optional<Row>> ReadConsistencyEngine::FetchCursor(
    TxnId txn, const ItemId& id) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  // SELECT ... FOR UPDATE: the write lock at fetch is what rules out P4C.
  CRITIQUE_ASSIGN_OR_RETURN(LockHandle h,
                            AcquireWriteLock(lk, txn, id, std::nullopt));
  (void)h;  // long duration; released at commit/abort
  return DoRead(txn, id, Action::Type::kCursorRead);
}

Result<std::vector<std::pair<ItemId, Row>>>
ReadConsistencyEngine::ReadPredicate(TxnId txn, const std::string& name,
                                     const Predicate& pred) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  const Timestamp stmt_ts = clock_.Now();
  auto rows = store_.Scan(pred, stmt_ts, txn);
  Action a = Action::PredicateRead(txn, name, pred);
  for (const auto& [id, row] : rows) {
    (void)row;
    a.read_set.push_back(id);
  }
  recorder_.Record(std::move(a), &EngineStats::predicate_reads);
  return rows;
}

Status ReadConsistencyEngine::DoWrite(std::unique_lock<std::mutex>& lk,
                                      TxnId txn, const ItemId& id,
                                      std::optional<Row> new_row,
                                      Action::Type type, bool is_insert,
                                      bool already_locked) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  if (!already_locked) {
    CRITIQUE_ASSIGN_OR_RETURN(LockHandle h,
                              AcquireWriteLock(lk, txn, id, new_row));
    // A blocking wait released the latch, so the Insert/Delete
    // preconditions checked before it may have been decided by a
    // concurrent committer; the granted X lock now makes the re-check
    // stable.
    const std::optional<Row> committed = store_.Read(id, clock_.Now(), txn);
    if (is_insert && committed.has_value()) {
      lock_manager_.Release(h);
      return Status::FailedPrecondition("insert: item '" + id + "' exists");
    }
    if (!new_row.has_value() && !committed.has_value()) {
      lock_manager_.Release(h);
      return Status::NotFound("delete: item '" + id + "' absent");
    }
  }
  // Post-lock read: statement-level write consistency against the latest
  // committed value at lock-grant time.
  std::optional<Row> before = store_.Read(id, clock_.Now(), txn);
  if (new_row.has_value()) {
    store_.Write(id, *new_row, txn);
  } else {
    store_.Delete(id, txn);
  }
  txns_[txn].write_set.insert(id);
  Action a = type == Action::Type::kCursorWrite
                 ? Action::CursorWrite(txn, id, HistoryValue(new_row))
                 : Action::Write(txn, id, HistoryValue(new_row));
  a.version = txn;
  a.before_image = std::move(before);
  a.after_image = std::move(new_row);
  a.is_insert = is_insert;
  recorder_.Record(std::move(a), &EngineStats::writes);
  return Status::OK();
}

Status ReadConsistencyEngine::Write(TxnId txn, const ItemId& id, Row row) {
  std::unique_lock<std::mutex> lk(mu_);
  return DoWrite(lk, txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/false, /*already_locked=*/false);
}

Status ReadConsistencyEngine::Insert(TxnId txn, const ItemId& id, Row row) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  if (store_.Read(id, clock_.Now(), txn).has_value()) {
    return Status::FailedPrecondition("insert: item '" + id + "' exists");
  }
  return DoWrite(lk, txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/true, /*already_locked=*/false);
}

Status ReadConsistencyEngine::Delete(TxnId txn, const ItemId& id) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  if (!store_.Read(id, clock_.Now(), txn).has_value()) {
    return Status::NotFound("delete: item '" + id + "' absent");
  }
  return DoWrite(lk, txn, id, std::nullopt, Action::Type::kWrite,
                 /*is_insert=*/false, /*already_locked=*/false);
}

Status ReadConsistencyEngine::WriteCursor(TxnId txn, const ItemId& id,
                                          Row row) {
  // The fetch already holds the write lock.
  std::unique_lock<std::mutex> lk(mu_);
  return DoWrite(lk, txn, id, std::move(row), Action::Type::kCursorWrite,
                 /*is_insert=*/false, /*already_locked=*/true);
}

Status ReadConsistencyEngine::CloseCursor(TxnId txn) {
  std::unique_lock<std::mutex> lk(mu_);
  return CheckActive(txn);
}

Status ReadConsistencyEngine::Update(
    TxnId txn, const ItemId& id,
    const std::function<Row(const std::optional<Row>&)>& transform) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  // Statement-level write consistency: lock first, then apply the
  // transform to the most recent committed value ("the underlying
  // mechanism recomputes the appropriate version of the row as of the
  // statement timestamp").
  CRITIQUE_ASSIGN_OR_RETURN(LockHandle h,
                            AcquireWriteLock(lk, txn, id, std::nullopt));
  (void)h;
  CRITIQUE_ASSIGN_OR_RETURN(std::optional<Row> current,
                            DoRead(txn, id, Action::Type::kRead));
  return DoWrite(lk, txn, id, transform(current), Action::Type::kWrite,
                 /*is_insert=*/false, /*already_locked=*/true);
}

Status ReadConsistencyEngine::Commit(TxnId txn) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];
  st.active = false;
  store_.CommitTxn(txn, clock_.Tick(), st.write_set);
  st.write_set.clear();  // the hint is dead once the versions are stamped
  recorder_.Record(Action::Commit(txn), &EngineStats::commits);
  lock_manager_.ReleaseAll(txn);
  MaybeGcLocked();
  return Status::OK();
}

Status ReadConsistencyEngine::Abort(TxnId txn) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  Rollback(txn);
  recorder_.Count(&EngineStats::aborts);
  return Status::OK();
}

Status ReadConsistencyEngine::Prepare(TxnId txn) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  txns_[txn].prepared = true;
  return Status::OK();
}

Status ReadConsistencyEngine::CommitPrepared(TxnId txn) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
  TxnState& st = txns_[txn];
  st.prepared = false;
  st.active = false;
  store_.CommitTxn(txn, clock_.Tick(), st.write_set);
  st.write_set.clear();  // the hint is dead once the versions are stamped
  recorder_.Record(Action::Commit(txn), &EngineStats::commits);
  lock_manager_.ReleaseAll(txn);
  MaybeGcLocked();
  return Status::OK();
}

Status ReadConsistencyEngine::AbortPrepared(TxnId txn) {
  std::unique_lock<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
  txns_[txn].prepared = false;
  Rollback(txn);
  recorder_.Count(&EngineStats::aborts);
  return Status::OK();
}

std::vector<TxnId> ReadConsistencyEngine::InDoubtTransactions() const {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<TxnId> out;
  for (const auto& [t, st] : txns_) {
    if (st.active && st.prepared) out.push_back(t);
  }
  return out;
}

void ReadConsistencyEngine::MaybeGcLocked() {
  if (gc_policy_.mode != VersionGcMode::kWatermark) return;
  const uint32_t interval = std::max<uint32_t>(1, gc_policy_.commit_interval);
  if (++commits_since_gc_ < interval) return;
  (void)RunGcLocked();
}

size_t ReadConsistencyEngine::RunGcLocked() {
  commits_since_gc_ = 0;
  // Statement-level reads always take the newest committed value, so no
  // snapshot ever looks below "now" — the watermark is the clock itself.
  size_t dropped = store_.GarbageCollect(clock_.Now());
  ++gc_stats_.runs;
  gc_stats_.collected += dropped;
  if (gc_policy_.mode == VersionGcMode::kWatermark) {
    // Retire finished transaction states.  Duplicate-id detection no
    // longer covers retired ids (the session facade never reuses an id,
    // and a sharded global id may legitimately begin here long after
    // higher ids committed — refusing it would fail a valid txn).
    for (auto it = txns_.begin(); it != txns_.end();) {
      if (!it->second.active) {
        it = txns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

size_t ReadConsistencyEngine::GarbageCollectVersions() {
  std::unique_lock<std::mutex> lk(mu_);
  return RunGcLocked();
}

size_t ReadConsistencyEngine::VersionCount() const {
  std::unique_lock<std::mutex> lk(mu_);
  return store_.VersionCount();
}

size_t ReadConsistencyEngine::MaxVersionChainLength() const {
  std::unique_lock<std::mutex> lk(mu_);
  return store_.MaxChainLength();
}

VersionGcStats ReadConsistencyEngine::version_gc_stats() const {
  std::unique_lock<std::mutex> lk(mu_);
  return gc_stats_;
}

}  // namespace critique
