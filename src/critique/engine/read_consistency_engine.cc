#include "critique/engine/read_consistency_engine.h"

#include <algorithm>

namespace critique {
namespace {

std::optional<Value> HistoryValue(const std::optional<Row>& row) {
  if (row.has_value() && row->Has("val")) return row->scalar();
  return std::nullopt;
}

}  // namespace

ReadConsistencyEngine::ReadConsistencyEngine()
    : store_(MakeVersionStore(StorageBackend::kMap)) {
  store_->DiscourageUnhinted();
}

Status ReadConsistencyEngine::Load(const ItemId& id, Row row) {
  std::unique_lock<std::shared_mutex> sl(store_mu_);
  store_->Bootstrap(id, std::move(row), clock_.Tick());
  return Status::OK();
}

Status ReadConsistencyEngine::Begin(TxnId txn) {
  std::unique_lock<std::shared_mutex> tl(table_mu_);
  if (txn < 1) return Status::InvalidArgument("txn ids start at 1");
  if (txns_.count(txn)) {
    return Status::InvalidArgument("txn " + std::to_string(txn) +
                                   " already used");
  }
  txns_[txn].active = true;
  // Informational, buffered with the next sync (see the SI engine).
  if (wal_ != nullptr) wal_->Append(WalRecord::Begin(txn));
  Trace(txn, obs::TraceEventType::kBegin);
  return Status::OK();
}

void ReadConsistencyEngine::RegisterMetrics(obs::MetricsRegistry& reg,
                                            const std::string& prefix) {
  Engine::RegisterMetrics(reg, prefix);
  reg.RegisterGauge(prefix + "lock.acquired",
                    [this] { return lock_manager_.stats().acquired; });
  reg.RegisterGauge(prefix + "lock.blocked",
                    [this] { return lock_manager_.stats().blocked; });
  reg.RegisterGauge(prefix + "lock.deadlocks",
                    [this] { return lock_manager_.stats().deadlocks; });
  reg.RegisterGauge(prefix + "lock.timeouts",
                    [this] { return lock_manager_.stats().timeouts; });
  reg.RegisterGauge(prefix + "lock.coop_parks",
                    [this] { return lock_manager_.stats().coop_parks; });
  reg.RegisterGauge(prefix + "lock.wakeups",
                    [this] { return lock_manager_.stats().wakeups; });
  reg.RegisterHistogram(prefix + "lock.wait_us",
                        &lock_manager_.wait_histogram());
  reg.RegisterHistogram(prefix + "lock.park_wakeup_us",
                        &lock_manager_.park_wakeup_histogram());
  // Hint-free (full-store-scan) commit/abort counters: nonzero means some
  // call site regressed to the slow path the write-set hints exist to avoid.
  reg.RegisterGauge(prefix + "storage.unhinted_commits", [this] {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    return store_->unhinted_commits();
  });
  reg.RegisterGauge(prefix + "storage.unhinted_aborts", [this] {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    return store_->unhinted_aborts();
  });
}

std::string ReadConsistencyEngine::DebugDump() const {
  return lock_manager_.DebugSnapshot().ToString();
}

Status ReadConsistencyEngine::CheckActive(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active) {
    return Status::TransactionAborted("txn " + std::to_string(txn) +
                                      " is not active");
  }
  if (it->second.prepared) {
    return Status::FailedPrecondition(
        "txn " + std::to_string(txn) +
        " is prepared (in doubt); only CommitPrepared/AbortPrepared may end "
        "it");
  }
  return Status::OK();
}

Status ReadConsistencyEngine::CheckPrepared(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active || !it->second.prepared) {
    return Status::FailedPrecondition("txn " + std::to_string(txn) +
                                      " is not prepared");
  }
  return Status::OK();
}

void ReadConsistencyEngine::Rollback(TxnId txn) {
  TxnState& st = txns_.find(txn)->second;
  st.active = false;
  {
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    store_->AbortTxn(txn, st.write_set);
    recorder_.Record(Action::Abort(txn));  // under the latch, see DoRead
  }
  st.write_set.clear();  // the hint is dead once the versions are gone
  st.redo.clear();
  lock_manager_.ReleaseAll(txn);
}

Result<LockHandle> ReadConsistencyEngine::AcquireWriteLock(
    TableLock& lk, TxnId txn, const ItemId& id, std::optional<Row> after) {
  std::optional<Row> before;
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    before = store_->Read(id, clock_.Now(), txn);
  }
  LockSpec spec = LockSpec::WriteItem(txn, id, std::move(before),
                                      std::move(after));
  // (No image-staleness redo here: this engine takes no predicate locks,
  // so its conflicts are decided by item identity alone.)
  return AcquireLockWithProtocol(lock_manager_, lk, spec,
                                 concurrency_.lock_wait_timeout,
                                 [&] { Rollback(txn); });
}

Result<std::optional<Row>> ReadConsistencyEngine::DoRead(TxnId txn,
                                                         const ItemId& id,
                                                         Action::Type type) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  // Statement-level snapshot: the most recent committed value now.  The
  // record is appended while the store latch is held, so a read can never
  // precede the publication record of the version it observed.
  std::optional<Row> row;
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    std::optional<Version> version =
        store_->ReadVersionInfo(id, clock_.Now(), txn);
    Action a = type == Action::Type::kCursorRead ? Action::CursorRead(txn, id)
                                                 : Action::Read(txn, id);
    if (version.has_value()) {
      a.version = version->creator;
      if (!version->tombstone) {
        row = version->row;
        a.value = HistoryValue(row);
      }
    } else {
      // Nothing committed at the statement timestamp: the statement
      // observed the initial (absent) state of the item.  Subscript it
      // explicitly — an unversioned read would be misattributed by
      // single-version creator inference (this is a multiversion
      // history).
      a.version = kInitialTxn;
    }
    recorder_.Record(std::move(a), &EngineStats::reads);
  }
  return row;
}

Result<std::optional<Row>> ReadConsistencyEngine::Read(TxnId txn,
                                                       const ItemId& id) {
  TableLock lk(table_mu_);
  return DoRead(txn, id, Action::Type::kRead);
}

Result<std::optional<Row>> ReadConsistencyEngine::FetchCursor(
    TxnId txn, const ItemId& id) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  // SELECT ... FOR UPDATE: the write lock at fetch is what rules out P4C.
  CRITIQUE_ASSIGN_OR_RETURN(LockHandle h,
                            AcquireWriteLock(lk, txn, id, std::nullopt));
  (void)h;  // long duration; released at commit/abort
  return DoRead(txn, id, Action::Type::kCursorRead);
}

Result<std::vector<std::pair<ItemId, Row>>>
ReadConsistencyEngine::ReadPredicate(TxnId txn, const std::string& name,
                                     const Predicate& pred) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  std::vector<std::pair<ItemId, Row>> rows;
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    rows = store_->Scan(pred, clock_.Now(), txn);
    Action a = Action::PredicateRead(txn, name, pred);
    for (const auto& [id, row] : rows) {
      (void)row;
      a.read_set.push_back(id);
    }
    // Appended under the store latch (see DoRead).
    recorder_.Record(std::move(a), &EngineStats::predicate_reads);
  }
  return rows;
}

Status ReadConsistencyEngine::DoWrite(TableLock& lk, TxnId txn,
                                      const ItemId& id,
                                      std::optional<Row> new_row,
                                      Action::Type type, bool is_insert,
                                      bool already_locked) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  if (!already_locked) {
    CRITIQUE_ASSIGN_OR_RETURN(LockHandle h,
                              AcquireWriteLock(lk, txn, id, new_row));
    // A blocking wait released the latch, so the Insert/Delete
    // preconditions checked before it may have been decided by a
    // concurrent committer; the granted X lock now makes the re-check
    // stable.
    std::optional<Row> committed;
    {
      std::shared_lock<std::shared_mutex> sl(store_mu_);
      committed = store_->Read(id, clock_.Now(), txn);
    }
    if (is_insert && committed.has_value()) {
      lock_manager_.Release(h);
      return Status::FailedPrecondition("insert: item '" + id + "' exists");
    }
    if (!new_row.has_value() && !committed.has_value()) {
      lock_manager_.Release(h);
      return Status::NotFound("delete: item '" + id + "' absent");
    }
  }
  // Post-lock read: statement-level write consistency against the latest
  // committed value at lock-grant time.  Recorded under the store latch
  // (see DoRead).
  {
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    std::optional<Row> before = store_->Read(id, clock_.Now(), txn);
    if (new_row.has_value()) {
      store_->Write(id, *new_row, txn);
    } else {
      store_->Delete(id, txn);
    }
    Action a = type == Action::Type::kCursorWrite
                   ? Action::CursorWrite(txn, id, HistoryValue(new_row))
                   : Action::Write(txn, id, HistoryValue(new_row));
    a.version = txn;
    a.before_image = std::move(before);
    a.is_insert = is_insert;
    if (wal_ != nullptr) {
      a.after_image = new_row;
      txns_.find(txn)->second.redo[id] = std::move(new_row);
    } else {
      a.after_image = std::move(new_row);
    }
    recorder_.Record(std::move(a), &EngineStats::writes);
  }
  txns_.find(txn)->second.write_set.insert(id);
  return Status::OK();
}

Status ReadConsistencyEngine::Write(TxnId txn, const ItemId& id, Row row) {
  TableLock lk(table_mu_);
  return DoWrite(lk, txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/false, /*already_locked=*/false);
}

Status ReadConsistencyEngine::Insert(TxnId txn, const ItemId& id, Row row) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    if (store_->Read(id, clock_.Now(), txn).has_value()) {
      return Status::FailedPrecondition("insert: item '" + id + "' exists");
    }
  }
  return DoWrite(lk, txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/true, /*already_locked=*/false);
}

Status ReadConsistencyEngine::Delete(TxnId txn, const ItemId& id) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    if (!store_->Read(id, clock_.Now(), txn).has_value()) {
      return Status::NotFound("delete: item '" + id + "' absent");
    }
  }
  return DoWrite(lk, txn, id, std::nullopt, Action::Type::kWrite,
                 /*is_insert=*/false, /*already_locked=*/false);
}

Status ReadConsistencyEngine::WriteCursor(TxnId txn, const ItemId& id,
                                          Row row) {
  // The fetch already holds the write lock.
  TableLock lk(table_mu_);
  return DoWrite(lk, txn, id, std::move(row), Action::Type::kCursorWrite,
                 /*is_insert=*/false, /*already_locked=*/true);
}

Status ReadConsistencyEngine::CloseCursor(TxnId txn) {
  TableLock lk(table_mu_);
  return CheckActive(txn);
}

Status ReadConsistencyEngine::Update(
    TxnId txn, const ItemId& id,
    const std::function<Row(const std::optional<Row>&)>& transform) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  // Statement-level write consistency: lock first, then apply the
  // transform to the most recent committed value ("the underlying
  // mechanism recomputes the appropriate version of the row as of the
  // statement timestamp").
  CRITIQUE_ASSIGN_OR_RETURN(LockHandle h,
                            AcquireWriteLock(lk, txn, id, std::nullopt));
  (void)h;
  CRITIQUE_ASSIGN_OR_RETURN(std::optional<Row> current,
                            DoRead(txn, id, Action::Type::kRead));
  return DoWrite(lk, txn, id, transform(current), Action::Type::kWrite,
                 /*is_insert=*/false, /*already_locked=*/true);
}

Status ReadConsistencyEngine::Commit(TxnId txn) {
  bool gc_due = false;
  std::optional<uint64_t> wal_lsn;
  {
    TableLock lk(table_mu_);
    CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
    TxnState& st = txns_.find(txn)->second;
    st.active = false;
    {
      // Draw the commit timestamp inside the exclusive section that
      // stamps the versions: a statement snapshot new enough to observe
      // the timestamp observes the stamped versions too.  The commit
      // record is appended in the same section, so no read of a stamped
      // version can precede it in the history — and commits publish in
      // log order, which recovery's sequential replay relies on.
      std::unique_lock<std::shared_mutex> sl(store_mu_);
      const Timestamp commit_ts = clock_.Tick();
      store_->CommitTxn(txn, commit_ts, st.write_set);
      if (wal_ != nullptr && !st.redo.empty()) {
        wal_->Append(WalRecord::WriteSet(txn, WalImagesFromMap(st.redo)));
        wal_lsn = wal_->Append(WalRecord::Commit(txn, commit_ts));
      }
      recorder_.Record(Action::Commit(txn), &EngineStats::commits);
    }
    st.write_set.clear();  // the hint is dead once the versions are stamped
    st.redo.clear();
    lock_manager_.ReleaseAll(txn);
    gc_due = GcTick();
  }
  Trace(txn, obs::TraceEventType::kCommit);
  if (gc_due) (void)RunGcPass();
  if (wal_lsn.has_value()) return wal_->WaitDurable(*wal_lsn);
  return Status::OK();
}

Status ReadConsistencyEngine::Abort(TxnId txn) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  Rollback(txn);
  recorder_.Count(&EngineStats::aborts);
  Trace(txn, obs::TraceEventType::kAbort, obs::AbortReason::kExplicit);
  return Status::OK();
}

Status ReadConsistencyEngine::Prepare(TxnId txn) {
  std::optional<uint64_t> wal_lsn;
  {
    TableLock lk(table_mu_);
    CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
    TxnState& st = txns_.find(txn)->second;
    st.prepared = true;
    if (wal_ != nullptr) {
      if (!st.redo.empty()) {
        wal_->Append(WalRecord::WriteSet(txn, WalImagesFromMap(st.redo)));
        st.redo.clear();
      }
      wal_lsn = wal_->Append(WalRecord::Prepare(txn));
    }
  }
  Trace(txn, obs::TraceEventType::kPrepare);
  // Durable-vote rule (see the locking engine).
  if (wal_lsn.has_value()) return wal_->WaitDurable(*wal_lsn);
  return Status::OK();
}

Status ReadConsistencyEngine::CommitPrepared(TxnId txn) {
  bool gc_due = false;
  std::optional<uint64_t> wal_lsn;
  {
    TableLock lk(table_mu_);
    CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
    TxnState& st = txns_.find(txn)->second;
    st.prepared = false;
    st.active = false;
    {
      std::unique_lock<std::shared_mutex> sl(store_mu_);
      const Timestamp commit_ts = clock_.Tick();
      store_->CommitTxn(txn, commit_ts, st.write_set);
      // Slim commit: the write set is already durable from Prepare.
      if (wal_ != nullptr) {
        wal_lsn = wal_->Append(WalRecord::Commit(txn, commit_ts));
      }
      recorder_.Record(Action::Commit(txn), &EngineStats::commits);
    }
    st.write_set.clear();  // the hint is dead once the versions are stamped
    lock_manager_.ReleaseAll(txn);
    gc_due = GcTick();
  }
  Trace(txn, obs::TraceEventType::kCommit);
  if (gc_due) (void)RunGcPass();
  if (wal_lsn.has_value()) return wal_->WaitDurable(*wal_lsn);
  return Status::OK();
}

Status ReadConsistencyEngine::AbortPrepared(TxnId txn) {
  TableLock lk(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
  // Buffered only (presumed abort; see the locking engine).
  if (wal_ != nullptr) wal_->Append(WalRecord::Abort(txn));
  txns_.find(txn)->second.prepared = false;
  Rollback(txn);
  recorder_.Count(&EngineStats::aborts);
  Trace(txn, obs::TraceEventType::kAbort, obs::AbortReason::kInDoubtDecision);
  return Status::OK();
}

std::vector<TxnId> ReadConsistencyEngine::InDoubtTransactions() const {
  // Exclusive: the one cross-session scan of the registry.
  std::unique_lock<std::shared_mutex> tl(table_mu_);
  std::vector<TxnId> out;
  for (const auto& [t, st] : txns_) {
    if (st.active && st.prepared) out.push_back(t);
  }
  return out;
}

bool ReadConsistencyEngine::GcTick() {
  if (gc_policy_.mode != VersionGcMode::kWatermark) return false;
  std::lock_guard<std::mutex> gl(gc_mu_);
  const uint32_t interval = std::max<uint32_t>(1, gc_policy_.commit_interval);
  if (++commits_since_gc_ < interval) return false;
  commits_since_gc_ = 0;
  return true;
}

size_t ReadConsistencyEngine::RunGcPass() {
  size_t dropped = 0;
  {
    std::unique_lock<std::shared_mutex> tl(table_mu_);
    // Statement-level reads always take the newest committed value, so no
    // snapshot ever looks below "now" — the watermark is the clock itself.
    {
      std::unique_lock<std::shared_mutex> sl(store_mu_);
      dropped = store_->GarbageCollect(clock_.Now());
    }
    if (gc_policy_.mode == VersionGcMode::kWatermark) {
      // Retire finished transaction states.  Duplicate-id detection no
      // longer covers retired ids (the session facade never reuses an id,
      // and a sharded global id may legitimately begin here long after
      // higher ids committed — refusing it would fail a valid txn).
      for (auto it = txns_.begin(); it != txns_.end();) {
        if (!it->second.active) {
          it = txns_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> gl(gc_mu_);
    ++gc_stats_.runs;
    gc_stats_.collected += dropped;
  }
  return dropped;
}

size_t ReadConsistencyEngine::GarbageCollectVersions() {
  {
    std::lock_guard<std::mutex> gl(gc_mu_);
    commits_since_gc_ = 0;  // an explicit pass restarts the epoch
  }
  return RunGcPass();
}

size_t ReadConsistencyEngine::VersionCount() const {
  std::shared_lock<std::shared_mutex> sl(store_mu_);
  return store_->VersionCount();
}

size_t ReadConsistencyEngine::MaxVersionChainLength() const {
  std::shared_lock<std::shared_mutex> sl(store_mu_);
  return store_->MaxChainLength();
}

VersionGcStats ReadConsistencyEngine::version_gc_stats() const {
  std::lock_guard<std::mutex> gl(gc_mu_);
  return gc_stats_;
}

}  // namespace critique
