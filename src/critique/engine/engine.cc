#include "critique/engine/engine.h"

#include <ostream>

namespace critique {

std::string EngineStats::ToString() const {
  return "reads=" + std::to_string(reads) +
         " predicate_reads=" + std::to_string(predicate_reads) +
         " writes=" + std::to_string(writes) +
         " commits=" + std::to_string(commits) +
         " aborts=" + std::to_string(aborts) +
         " deadlock_aborts=" + std::to_string(deadlock_aborts) +
         " serialization_aborts=" + std::to_string(serialization_aborts) +
         " (fcw=" + std::to_string(fcw_aborts) +
         " ssi=" + std::to_string(ssi_aborts) +
         " in_doubt=" + std::to_string(in_doubt_aborts) + ")" +
         " blocked_ops=" + std::to_string(blocked_ops);
}

std::ostream& operator<<(std::ostream& os, const EngineStats& stats) {
  return os << stats.ToString();
}

void Engine::RegisterMetrics(obs::MetricsRegistry& reg,
                             const std::string& prefix) {
  // Field-by-field gauges over the recorder's stats snapshot: collect is
  // cold-path, so taking the recorder mutex once per field is fine.
  auto field = [this, &reg, &prefix](const char* name,
                                     uint64_t EngineStats::*member) {
    reg.RegisterGauge(prefix + name,
                      [this, member] { return StatsSnapshot().*member; });
  };
  field("reads", &EngineStats::reads);
  field("predicate_reads", &EngineStats::predicate_reads);
  field("writes", &EngineStats::writes);
  field("commits", &EngineStats::commits);
  field("aborts", &EngineStats::aborts);
  field("deadlock_aborts", &EngineStats::deadlock_aborts);
  field("serialization_aborts", &EngineStats::serialization_aborts);
  field("fcw_aborts", &EngineStats::fcw_aborts);
  field("ssi_aborts", &EngineStats::ssi_aborts);
  field("in_doubt_aborts", &EngineStats::in_doubt_aborts);
  field("blocked_ops", &EngineStats::blocked_ops);
}

Status Engine::Update(
    TxnId txn, const ItemId& id,
    const std::function<Row(const std::optional<Row>&)>& transform) {
  CRITIQUE_ASSIGN_OR_RETURN(std::optional<Row> current, Read(txn, id));
  return Write(txn, id, transform(current));
}

Result<size_t> Engine::UpdateWhere(
    TxnId txn, const std::string& name, const Predicate& pred,
    const std::function<Row(const Row&)>& transform) {
  CRITIQUE_ASSIGN_OR_RETURN(auto rows, ReadPredicate(txn, name, pred));
  for (const auto& [id, row] : rows) {
    CRITIQUE_RETURN_NOT_OK(Write(txn, id, transform(row)));
  }
  return rows.size();
}

Result<size_t> Engine::DeleteWhere(TxnId txn, const std::string& name,
                                   const Predicate& pred) {
  CRITIQUE_ASSIGN_OR_RETURN(auto rows, ReadPredicate(txn, name, pred));
  for (const auto& [id, row] : rows) {
    (void)row;
    CRITIQUE_RETURN_NOT_OK(Delete(txn, id));
  }
  return rows.size();
}

}  // namespace critique
