#include "critique/engine/engine.h"

namespace critique {

Status Engine::Update(
    TxnId txn, const ItemId& id,
    const std::function<Row(const std::optional<Row>&)>& transform) {
  CRITIQUE_ASSIGN_OR_RETURN(std::optional<Row> current, Read(txn, id));
  return Write(txn, id, transform(current));
}

Result<size_t> Engine::UpdateWhere(
    TxnId txn, const std::string& name, const Predicate& pred,
    const std::function<Row(const Row&)>& transform) {
  CRITIQUE_ASSIGN_OR_RETURN(auto rows, ReadPredicate(txn, name, pred));
  for (const auto& [id, row] : rows) {
    CRITIQUE_RETURN_NOT_OK(Write(txn, id, transform(row)));
  }
  return rows.size();
}

Result<size_t> Engine::DeleteWhere(TxnId txn, const std::string& name,
                                   const Predicate& pred) {
  CRITIQUE_ASSIGN_OR_RETURN(auto rows, ReadPredicate(txn, name, pred));
  for (const auto& [id, row] : rows) {
    (void)row;
    CRITIQUE_RETURN_NOT_OK(Delete(txn, id));
  }
  return rows.size();
}

}  // namespace critique
