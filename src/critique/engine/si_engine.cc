#include "critique/engine/si_engine.h"

#include <algorithm>

namespace critique {
namespace {

std::optional<Value> HistoryValue(const std::optional<Row>& row) {
  if (row.has_value() && row->Has("val")) return row->scalar();
  return std::nullopt;
}

}  // namespace

SnapshotIsolationEngine::SnapshotIsolationEngine(
    SnapshotIsolationOptions options)
    : options_(options), store_(MakeVersionStore(StorageBackend::kMap)) {
  store_->DiscourageUnhinted();
}

void SnapshotIsolationEngine::SetConcurrency(EngineConcurrency c) {
  Engine::SetConcurrency(c);
  std::unique_lock<std::shared_mutex> sl(store_mu_);
  if (store_->backend() == c.storage_backend) return;  // idempotent re-set
  store_ = MakeVersionStore(c.storage_backend);
  store_->DiscourageUnhinted();
}

Status SnapshotIsolationEngine::Load(const ItemId& id, Row row) {
  std::unique_lock<std::shared_mutex> sl(store_mu_);
  store_->Bootstrap(id, std::move(row), clock_.Tick());
  return Status::OK();
}

Status SnapshotIsolationEngine::Begin(TxnId txn) {
  std::unique_lock<std::shared_mutex> tl(table_mu_);
  return BeginAtLocked(txn, clock_.Tick(), level());
}

Status SnapshotIsolationEngine::BeginWithLevel(TxnId txn,
                                               IsolationLevel level) {
  const bool honored =
      level == IsolationLevel::kReadCommitted ||
      level == IsolationLevel::kSnapshotIsolation ||
      (level == IsolationLevel::kSerializableSI && options_.ssi);
  if (!honored) {
    return Status::FailedPrecondition(
        name() + " cannot honor a per-transaction " +
        IsolationLevelName(level) + " contract" +
        (level == IsolationLevel::kSerializableSI
             ? " without the SSI certifier (SnapshotIsolationOptions::ssi)"
             : ""));
  }
  std::unique_lock<std::shared_mutex> tl(table_mu_);
  return BeginAtLocked(txn, clock_.Tick(), level);
}

Status SnapshotIsolationEngine::BeginAt(TxnId txn, Timestamp ts) {
  std::unique_lock<std::shared_mutex> tl(table_mu_);
  return BeginAtLocked(txn, ts, level());
}

Status SnapshotIsolationEngine::BeginAtLocked(TxnId txn, Timestamp ts,
                                              IsolationLevel level) {
  if (txn < 1) return Status::InvalidArgument("txn ids start at 1");
  if (txns_.count(txn)) {
    return Status::InvalidArgument("txn " + std::to_string(txn) +
                                   " already used");
  }
  const Timestamp floor = gc_floor_.load(std::memory_order_acquire);
  if (ts < floor) {
    // Accurate in both modes: the floor only rises when a GC pass prunes
    // (periodic in kWatermark; explicit GarbageCollectVersions in either
    // mode), so never advise switching to a mode already in force.
    return Status::FailedPrecondition(
        "snapshot timestamp " + std::to_string(ts) +
        " is below the version-GC floor " + std::to_string(floor) +
        ": history up to the floor has been pruned (for exact time travel "
        "stay in VersionGcMode::kRetainAll and run no explicit GC passes)");
  }
  TxnState st;
  st.active = true;
  st.level = level;
  st.start_ts = ts;
  txns_[txn] = st;
  // Informational, buffered with the next sync: keeps the log
  // self-describing and advances the recovered id-allocator floor past
  // ids that never reach a terminal record.
  if (wal_ != nullptr) wal_->Append(WalRecord::Begin(txn));
  Trace(txn, obs::TraceEventType::kBegin);
  return Status::OK();
}

Status SnapshotIsolationEngine::CheckActive(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active) {
    return Status::TransactionAborted("txn " + std::to_string(txn) +
                                      " is not active");
  }
  if (it->second.prepared) {
    return Status::FailedPrecondition(
        "txn " + std::to_string(txn) +
        " is prepared (in doubt); only CommitPrepared/AbortPrepared may end "
        "it");
  }
  return Status::OK();
}

Status SnapshotIsolationEngine::CheckPrepared(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active || !it->second.prepared) {
    return Status::FailedPrecondition("txn " + std::to_string(txn) +
                                      " is not prepared");
  }
  return Status::OK();
}

Status SnapshotIsolationEngine::AbortInternal(TxnId txn, Status reason,
                                              uint64_t EngineStats::*counter,
                                              obs::AbortReason why) {
  TxnState& st = txns_.find(txn)->second;
  {
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    store_->AbortTxn(txn, st.write_set);
    recorder_.Record(Action::Abort(txn), counter);  // under the latch
  }
  // Breakdown by the paper's taxonomy: only serialization aborts split
  // (coordinator-decided AbortPrepared traces kInDoubtDecision but counts
  // as a plain abort).
  if (counter == &EngineStats::serialization_aborts) {
    switch (why) {
      case obs::AbortReason::kFirstCommitterWins:
        recorder_.Count(&EngineStats::fcw_aborts);
        break;
      case obs::AbortReason::kSsiDangerousStructure:
        recorder_.Count(&EngineStats::ssi_aborts);
        break;
      case obs::AbortReason::kInDoubtDecision:
        recorder_.Count(&EngineStats::in_doubt_aborts);
        break;
      default:
        break;
    }
  }
  Trace(txn, obs::TraceEventType::kAbort, why,
        reason.ok() ? std::string() : std::string(reason.message()));
  {
    auto el = SsiLock();
    st.active = false;
    st.aborted = true;
    st.prepared = false;
  }
  st.redo.clear();
  return reason;
}

bool SnapshotIsolationEngine::Concurrent(const TxnState& a,
                                         const TxnState& b) const {
  const Timestamp a_end =
      a.commit_ts == kInvalidTimestamp ? ~Timestamp{0} : a.commit_ts;
  const Timestamp b_end =
      b.commit_ts == kInvalidTimestamp ? ~Timestamp{0} : b.commit_ts;
  return a.start_ts < b_end && b.start_ts < a_end;
}

void SnapshotIsolationEngine::AddRwEdge(TxnId reader, TxnId writer) {
  auto r = txns_.find(reader);
  auto w = txns_.find(writer);
  if (r == txns_.end() || w == txns_.end()) return;
  r->second.out_to.insert(writer);
  w->second.in_from.insert(reader);
}

void SnapshotIsolationEngine::TrackReadConflicts(TxnId reader,
                                                 const ItemId& id) {
  readers_[id].insert(reader);
  TxnState& rd = txns_.find(reader)->second;
  // reader -rw-> U for every concurrent U that produced a newer version.
  for (auto& [u, ust] : txns_) {
    if (u == reader || ust.aborted) continue;
    if (!ust.write_set.count(id)) continue;
    if (!Concurrent(rd, ust)) continue;
    AddRwEdge(reader, u);
  }
}

void SnapshotIsolationEngine::TrackWriteConflicts(
    TxnId writer, const ItemId& id, const std::optional<Row>& before,
    const std::optional<Row>& after) {
  TxnState& wr = txns_.find(writer)->second;
  auto it = readers_.find(id);
  if (it != readers_.end()) {
    for (TxnId u : it->second) {
      auto uit = txns_.find(u);
      if (u == writer || uit == txns_.end() || uit->second.aborted) continue;
      if (!Concurrent(wr, uit->second)) continue;
      AddRwEdge(u, writer);  // U read the old version; writer replaces it
    }
  }
  // Predicate readers: the write (either image) entering the predicate's
  // coverage is the phantom-precise rw edge ordinary SIREAD item tracking
  // misses.
  for (const auto& [pred, u] : predicate_readers_) {
    auto uit = txns_.find(u);
    if (u == writer || uit == txns_.end() || uit->second.aborted) continue;
    if (!Concurrent(wr, uit->second)) continue;
    const bool covered =
        (before.has_value() && pred.Covers(id, *before)) ||
        (after.has_value() && pred.Covers(id, *after));
    if (covered) AddRwEdge(u, writer);
  }
}

bool SnapshotIsolationEngine::SsiPivot(const TxnState& st) const {
  // A pivot has a live (non-aborted) rw edge on both sides.
  auto live = [&](const std::set<TxnId>& peers) {
    for (TxnId u : peers) {
      auto it = txns_.find(u);
      if (it != txns_.end() && !it->second.aborted) return true;
    }
    return false;
  };
  return live(st.in_from) && live(st.out_to);
}

bool SnapshotIsolationEngine::CompletesCommittedPivot(
    TxnId self, const TxnState& st) const {
  // self -rw-> P with P committed: P can no longer abort, so if some other
  // W in P's out-edges committed before P did (the dangerous structure's
  // "T3 commits first"), self completing the in-edge side must abort
  // instead.  This is the edge the old validate-once engine never
  // re-examined: it forms *after* the pivot committed.
  for (TxnId u : st.out_to) {
    auto it = txns_.find(u);
    if (it == txns_.end()) continue;  // retired or gone: dead edge
    const TxnState& p = it->second;
    if (!p.committed || p.aborted) continue;
    // Only a Serializable-SI pivot's contract demands the refusal: a
    // plain-SI pivot is permitted its write skew (the structure is its
    // declared anomaly, not a broken guarantee).
    if (p.level != IsolationLevel::kSerializableSI) continue;
    if (p.committed_first_out) return true;  // witness retired by GC
    for (TxnId w : p.out_to) {
      if (w == self) continue;
      auto wt = txns_.find(w);
      if (wt == txns_.end()) continue;
      if (wt->second.committed && wt->second.commit_ts < p.commit_ts) {
        return true;
      }
    }
  }
  return false;
}

bool SnapshotIsolationEngine::CompletedPivotInDoubt(const TxnState& st) const {
  // The participant prepared as a non-pivot; while in doubt both sides of
  // a dangerous structure closed around it: an in-edge source that
  // committed (or itself prepared — it can still commit), and an out-edge
  // target that committed, necessarily before this participant's still
  // unassigned commit timestamp.
  bool in_live = false;
  for (TxnId u : st.in_from) {
    auto it = txns_.find(u);
    if (it == txns_.end() || it->second.aborted) continue;
    if (it->second.committed || it->second.prepared) {
      in_live = true;
      break;
    }
  }
  if (!in_live) return false;
  for (TxnId w : st.out_to) {
    auto it = txns_.find(w);
    if (it == txns_.end() || it->second.aborted) continue;
    if (it->second.committed) return true;
  }
  return false;
}

std::optional<std::string> SnapshotIsolationEngine::SsiRefusal(TxnId txn,
                                                               bool decision) {
  if (!options_.ssi) return std::nullopt;
  std::lock_guard<std::mutex> el(ssi_mu_);
  const TxnState& st = txns_.find(txn)->second;
  // A transaction is refused as a pivot only under its own declared
  // Serializable-SI contract — a plain-SI neighbour keeps its write skew.
  // The committed-pivot completion check below runs for *every* level,
  // because there the broken contract would be the committed pivot's.
  const bool self_ssi = st.level == IsolationLevel::kSerializableSI;
  if (!decision && self_ssi && SsiPivot(st)) {
    return "ssi: pivot in an rw-antidependency dangerous structure";
  }
  if (decision && self_ssi && CompletedPivotInDoubt(st)) {
    return "ssi: dangerous structure completed while prepared (in doubt)";
  }
  if (CompletesCommittedPivot(txn, st)) {
    return "ssi: commit would complete a dangerous structure through an "
           "already-committed pivot";
  }
  return std::nullopt;
}

Result<std::optional<Row>> SnapshotIsolationEngine::DoRead(TxnId txn,
                                                           const ItemId& id,
                                                           Action::Type type) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_.find(txn)->second;

  // Recorded under the store latch: a read can never precede the record
  // of the version write (or publication) it observed in the history.
  std::optional<Row> row;
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    std::optional<Version> version = store_->ReadVersionInfo(id, ReadTs(st), txn);
    Action a = type == Action::Type::kCursorRead ? Action::CursorRead(txn, id)
                                                 : Action::Read(txn, id);
    if (version.has_value()) {
      a.version = version->creator;
      if (!version->tombstone) {
        row = version->row;
        a.value = HistoryValue(row);
      }
    } else {
      // Nothing visible at the read timestamp: the transaction observed
      // the initial (absent) state of the item.  Subscript it explicitly
      // — an unversioned read would be misattributed by single-version
      // creator inference (this is a multiversion history).
      a.version = kInitialTxn;
    }
    recorder_.Record(std::move(a), &EngineStats::reads);
  }
  {
    auto el = SsiLock();
    st.read_set.insert(id);
    if (options_.ssi) TrackReadConflicts(txn, id);
  }
  return row;
}

Result<std::optional<Row>> SnapshotIsolationEngine::Read(TxnId txn,
                                                         const ItemId& id) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  return DoRead(txn, id, Action::Type::kRead);
}

Result<std::optional<Row>> SnapshotIsolationEngine::FetchCursor(
    TxnId txn, const ItemId& id) {
  // Snapshot reads never block; a cursor adds nothing under SI.
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  return DoRead(txn, id, Action::Type::kCursorRead);
}

Result<std::vector<std::pair<ItemId, Row>>>
SnapshotIsolationEngine::ReadPredicate(TxnId txn, const std::string& name,
                                       const Predicate& pred) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_.find(txn)->second;

  std::vector<std::pair<ItemId, Row>> rows;
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    rows = store_->Scan(pred, ReadTs(st), txn);
    Action a = Action::PredicateRead(txn, name, pred);
    for (const auto& [id, row] : rows) {
      (void)row;
      a.read_set.push_back(id);
    }
    // Appended under the store latch (see DoRead).
    recorder_.Record(std::move(a), &EngineStats::predicate_reads);
  }
  {
    auto el = SsiLock();
    for (const auto& [id, row] : rows) {
      (void)row;
      st.read_set.insert(id);
      if (options_.ssi) TrackReadConflicts(txn, id);
    }
    if (options_.ssi) {
      // Phantom-precise SIREAD: remember the predicate itself, plus rw
      // edges to concurrent transactions whose pending/later writes
      // already fall under it.  One store acquisition covers the whole
      // scan (lock order ssi_mu_ < store_mu_).
      predicate_readers_.emplace_back(pred, txn);
      std::shared_lock<std::shared_mutex> sl(store_mu_);
      for (auto& [u, ust] : txns_) {
        if (u == txn || ust.aborted || !Concurrent(st, ust)) continue;
        for (const ItemId& wid : ust.write_set) {
          std::optional<Version> vi =
              store_->ReadVersionInfo(wid, ~Timestamp{0}, u);
          if (vi.has_value() && !vi->tombstone && pred.Covers(wid, vi->row)) {
            AddRwEdge(txn, u);
          }
        }
      }
    }
  }
  return rows;
}

Status SnapshotIsolationEngine::DoWrite(TxnId txn, const ItemId& id,
                                        std::optional<Row> new_row,
                                        Action::Type type, bool is_insert) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_.find(txn)->second;

  bool eager_conflict = false;
  std::optional<Row> before;
  {
    // One exclusive section: the eager probe, the before-image, the
    // pending install, and the record stay atomic with respect to other
    // writers and to readers appending their own records (see DoRead).
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    if (options_.eager_write_conflicts &&
        store_->HasConcurrentPendingWrite(id, txn)) {
      eager_conflict = true;
    } else {
      before = store_->Read(id, ReadTs(st), txn);
      if (new_row.has_value()) {
        store_->Write(id, *new_row, txn);
      } else {
        store_->Delete(id, txn);
      }
      Action a = type == Action::Type::kCursorWrite
                     ? Action::CursorWrite(txn, id, HistoryValue(new_row))
                     : Action::Write(txn, id, HistoryValue(new_row));
      a.version = txn;
      a.before_image = before;
      a.after_image = new_row;
      a.is_insert = is_insert;
      recorder_.Record(std::move(a), &EngineStats::writes);
    }
  }
  if (eager_conflict) {
    return AbortInternal(
        txn,
        Status::SerializationFailure(
            "first-updater-wins: concurrent pending write on '" + id + "'"),
        &EngineStats::serialization_aborts,
        obs::AbortReason::kFirstCommitterWins);
  }
  {
    auto el = SsiLock();
    st.write_set.insert(id);
    if (options_.ssi) TrackWriteConflicts(txn, id, before, new_row);
  }
  if (wal_ != nullptr) st.redo[id] = std::move(new_row);
  return Status::OK();
}

Status SnapshotIsolationEngine::Write(TxnId txn, const ItemId& id, Row row) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  return DoWrite(txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/false);
}

Status SnapshotIsolationEngine::Insert(TxnId txn, const ItemId& id, Row row) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  const Timestamp read_ts = ReadTs(txns_.find(txn)->second);
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    if (store_->Read(id, read_ts, txn).has_value()) {
      return Status::FailedPrecondition("insert: item '" + id +
                                        "' visible in snapshot");
    }
  }
  return DoWrite(txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/true);
}

Status SnapshotIsolationEngine::Delete(TxnId txn, const ItemId& id) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  const Timestamp read_ts = ReadTs(txns_.find(txn)->second);
  {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    if (!store_->Read(id, read_ts, txn).has_value()) {
      return Status::NotFound("delete: item '" + id + "' not visible");
    }
  }
  return DoWrite(txn, id, std::nullopt, Action::Type::kWrite,
                 /*is_insert=*/false);
}

Result<size_t> SnapshotIsolationEngine::UpdateWhere(
    TxnId txn, const std::string& name, const Predicate& pred,
    const std::function<Row(const Row&)>& transform) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_.find(txn)->second;
  std::vector<std::pair<ItemId, Row>> rows;
  std::vector<Row> nexts;
  {
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    rows = store_->Scan(pred, ReadTs(st), txn);
    nexts.reserve(rows.size());
    Action a = Action::PredicateWrite(txn, name, pred);
    a.version = txn;
    for (const auto& [id, row] : rows) {
      Row next = transform(row);
      store_->Write(id, next, txn);
      nexts.push_back(std::move(next));
      a.read_set.push_back(id);
    }
    // Appended under the store latch (see DoRead).
    recorder_.Count(&EngineStats::writes, rows.size());
    recorder_.Record(std::move(a));
  }
  {
    auto el = SsiLock();
    for (size_t i = 0; i < rows.size(); ++i) {
      st.write_set.insert(rows[i].first);
      if (options_.ssi) {
        TrackWriteConflicts(txn, rows[i].first, rows[i].second, nexts[i]);
      }
    }
  }
  if (wal_ != nullptr) {
    for (size_t i = 0; i < rows.size(); ++i) st.redo[rows[i].first] = nexts[i];
  }
  return rows.size();
}

Result<size_t> SnapshotIsolationEngine::DeleteWhere(TxnId txn,
                                                    const std::string& name,
                                                    const Predicate& pred) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_.find(txn)->second;
  std::vector<std::pair<ItemId, Row>> rows;
  {
    std::unique_lock<std::shared_mutex> sl(store_mu_);
    rows = store_->Scan(pred, ReadTs(st), txn);
    Action a = Action::PredicateWrite(txn, name, pred);
    a.version = txn;
    for (const auto& [id, row] : rows) {
      (void)row;
      store_->Delete(id, txn);
      a.read_set.push_back(id);
    }
    // Appended under the store latch (see DoRead).
    recorder_.Count(&EngineStats::writes, rows.size());
    recorder_.Record(std::move(a));
  }
  {
    auto el = SsiLock();
    for (const auto& [id, row] : rows) {
      st.write_set.insert(id);
      if (options_.ssi) TrackWriteConflicts(txn, id, row, std::nullopt);
    }
  }
  if (wal_ != nullptr) {
    for (const auto& [id, row] : rows) {
      (void)row;
      st.redo[id] = std::nullopt;
    }
  }
  return rows.size();
}

Status SnapshotIsolationEngine::WriteCursor(TxnId txn, const ItemId& id,
                                            Row row) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  return DoWrite(txn, id, std::move(row), Action::Type::kCursorWrite,
                 /*is_insert=*/false);
}

Status SnapshotIsolationEngine::CloseCursor(TxnId txn) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  return CheckActive(txn);
}

void SnapshotIsolationEngine::ReleaseReservations(TxnId txn) {
  const TxnState& st = txns_.find(txn)->second;
  for (const ItemId& id : st.write_set) {
    auto it = reservations_.find(id);
    if (it != reservations_.end() && it->second == txn) {
      reservations_.erase(it);
    }
  }
}

Status SnapshotIsolationEngine::ValidateAndReserve(TxnId txn) {
  TxnState& st = txns_.find(txn)->second;
  // The commit-sequence slot: stage-1 entries are serialized by
  // commit_mu_, so this counter orders every validation.
  ++pipeline_stats_.slots_issued;

  // First-Committer-Wins: some transaction with a Commit-Timestamp inside
  // [start_ts, now] wrote data this transaction also wrote.  Publication
  // is serialized behind `commit_mu_`, held here, so the probe is stable;
  // one store acquisition covers the whole write set.
  // A Read Committed transaction declared no lost-update protection: its
  // statements already read the latest committed state, so the interval
  // probe is skipped and overwriting a concurrent commit is its permitted
  // anomaly (P4), not a serialization failure.
  std::optional<ItemId> fcw_conflict;
  if (st.level != IsolationLevel::kReadCommitted) {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    for (const ItemId& id : st.write_set) {
      if (store_->LatestCommitTs(id) > st.start_ts) {
        fcw_conflict = id;
        break;
      }
    }
  }
  if (fcw_conflict.has_value()) {
    return AbortInternal(
        txn,
        Status::SerializationFailure(
            "first-committer-wins: '" + *fcw_conflict +
            "' was committed during this transaction's interval"),
        &EngineStats::serialization_aborts,
        obs::AbortReason::kFirstCommitterWins);
  }

  // Reservation overlap: a transaction between pipeline stage 1 and
  // publication — an in-flight committer or a prepared (in-doubt)
  // participant — has validated its write set but not yet published a
  // commit timestamp.  A later committer overlapping that write set would
  // slip past the timestamp probe above and both would install — a lost
  // update First-Committer-Wins exists to prevent.  The reserving side
  // must stay committable (it already said yes), so the requester aborts.
  for (const ItemId& id : st.write_set) {
    auto it = reservations_.find(id);
    if (it != reservations_.end() && it->second != txn) {
      return AbortInternal(
          txn,
          Status::SerializationFailure(
              "first-committer-wins: '" + id + "' is reserved by " +
              "in-flight/prepared txn " + std::to_string(it->second)),
          &EngineStats::serialization_aborts,
          obs::AbortReason::kFirstCommitterWins);
    }
  }

  if (auto refusal = SsiRefusal(txn, /*decision=*/false)) {
    return AbortInternal(txn, Status::SerializationFailure(*refusal),
                         &EngineStats::serialization_aborts,
                         obs::AbortReason::kSsiDangerousStructure);
  }

  for (const ItemId& id : st.write_set) reservations_[id] = txn;
  return Status::OK();
}

Status SnapshotIsolationEngine::RevalidateAndPublish(
    TxnId txn, bool decision, std::optional<uint64_t>* wal_lsn) {
  TxnState& st = txns_.find(txn)->second;

  // Re-validation: rw-antidependencies that formed after stage 1 — during
  // the commit window, or the whole in-doubt window for a prepared
  // participant — are examined here against the current edge state.
  // First-Committer-Wins needs no re-run: the write-set reservation taken
  // at stage 1 kept every overlapping committer out.
  if (auto refusal = SsiRefusal(txn, decision)) {
    ReleaseReservations(txn);
    if (decision) {
      ++pipeline_stats_.decision_aborts;
    } else {
      ++pipeline_stats_.revalidation_aborts;
    }
    return AbortInternal(txn, Status::SerializationFailure(*refusal),
                         &EngineStats::serialization_aborts,
                         decision ? obs::AbortReason::kInDoubtDecision
                                  : obs::AbortReason::kSsiDangerousStructure);
  }

  // Publish: the commit timestamp is drawn inside the store-exclusive
  // section that stamps the versions, so any snapshot new enough to see
  // the timestamp is guaranteed to find the versions already stamped —
  // and the commit record is appended in the same section, so no read of
  // a stamped version can precede it in the history.
  {
    auto el = SsiLock();
    {
      std::unique_lock<std::shared_mutex> sl(store_mu_);
      st.commit_ts = clock_.Tick();
      store_->CommitTxn(txn, st.commit_ts, st.write_set);
      recorder_.Record(Action::Commit(txn), &EngineStats::commits);
      if (wal_ != nullptr && (decision || !st.write_set.empty())) {
        // Inside the publication section, behind commit_mu_: log order is
        // commit order, the property recovery's sequential replay relies
        // on.  Prepared participants already logged their write set at
        // Prepare (slim commit); read-only decisions still log the commit
        // so replay can resolve the restored in-doubt participant.
        if (!decision && !st.redo.empty()) {
          wal_->Append(WalRecord::WriteSet(txn, WalImagesFromMap(st.redo)));
        }
        *wal_lsn = wal_->Append(WalRecord::Commit(txn, st.commit_ts));
      }
    }
    st.active = false;
    st.committed = true;
    st.prepared = false;
  }
  st.redo.clear();
  ReleaseReservations(txn);
  Trace(txn, obs::TraceEventType::kCommit);
  return Status::OK();
}

Status SnapshotIsolationEngine::Commit(TxnId txn) {
  // Commit-pipeline stage 1: validate and reserve.
  {
    obs::ScopedTimer t(stage1_hist_);
    std::shared_lock<std::shared_mutex> tl(table_mu_);
    CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
    std::lock_guard<std::mutex> cl(commit_mu_);
    CRITIQUE_RETURN_NOT_OK(ValidateAndReserve(txn));
  }

  // The commit window: no engine latch held.  Other sessions run freely;
  // any rw-antidependency they hang on this transaction is caught by the
  // stage-2 re-validation.  The hook is the test failpoint that makes the
  // window deterministic.
  if (commit_window_hook_) commit_window_hook_(txn);

  // Stage 2: re-validate and publish.
  bool gc_due = false;
  std::optional<uint64_t> wal_lsn;
  {
    obs::ScopedTimer t(stage2_hist_);
    std::shared_lock<std::shared_mutex> tl(table_mu_);
    std::lock_guard<std::mutex> cl(commit_mu_);
    CRITIQUE_RETURN_NOT_OK(
        RevalidateAndPublish(txn, /*decision=*/false, &wal_lsn));
    gc_due = GcTick();
  }
  if (gc_due) (void)RunGcPass();
  // The durability wait runs with no engine latch held: other sessions
  // keep validating and publishing while this one sits out the fsync (and,
  // in group mode, rides another leader's batch).
  if (wal_lsn.has_value()) return wal_->WaitDurable(*wal_lsn);
  return Status::OK();
}

bool SnapshotIsolationEngine::GcTick() {
  if (gc_policy_.mode != VersionGcMode::kWatermark) return false;
  const uint32_t interval = std::max<uint32_t>(1, gc_policy_.commit_interval);
  if (++commits_since_gc_ < interval) return false;
  commits_since_gc_ = 0;
  return true;
}

Status SnapshotIsolationEngine::Prepare(TxnId txn) {
  // Commit-pipeline stage 1 only: prepare is the participant's last
  // *unprompted* chance to refuse; the write-set reservation then rides
  // the whole in-doubt window, and stage 2 runs at the decision.
  std::optional<uint64_t> wal_lsn;
  {
    obs::ScopedTimer t(stage1_hist_);
    std::shared_lock<std::shared_mutex> tl(table_mu_);
    CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
    std::lock_guard<std::mutex> cl(commit_mu_);
    CRITIQUE_RETURN_NOT_OK(ValidateAndReserve(txn));
    TxnState& st = txns_.find(txn)->second;
    {
      auto el = SsiLock();
      st.prepared = true;
    }
    if (wal_ != nullptr) {
      // The vote and its redo, appended behind commit_mu_ like a commit
      // (the reservation ordering argument covers prepares too).
      if (!st.redo.empty()) {
        wal_->Append(WalRecord::WriteSet(txn, WalImagesFromMap(st.redo)));
        st.redo.clear();
      }
      wal_lsn = wal_->Append(WalRecord::Prepare(txn));
    }
    Trace(txn, obs::TraceEventType::kPrepare);
  }
  // The durable-vote rule: the coordinator may not count this participant
  // as prepared until its vote would survive a crash.  A dead log surfaces
  // here as a refusal — the participant stays frozen in doubt, which is
  // exactly what a crash at this instant means.
  if (wal_lsn.has_value()) return wal_->WaitDurable(*wal_lsn);
  return Status::OK();
}

Status SnapshotIsolationEngine::CommitPrepared(TxnId txn) {
  bool gc_due = false;
  std::optional<uint64_t> wal_lsn;
  {
    obs::ScopedTimer t(stage2_hist_);
    std::shared_lock<std::shared_mutex> tl(table_mu_);
    CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
    std::lock_guard<std::mutex> cl(commit_mu_);
    // Stage 2 at the decision phase: a dangerous structure that completed
    // while in doubt aborts the participant here (kSerializationFailure;
    // already rolled back) instead of publishing a non-serializable
    // commit.
    CRITIQUE_RETURN_NOT_OK(
        RevalidateAndPublish(txn, /*decision=*/true, &wal_lsn));
    gc_due = GcTick();
  }
  if (gc_due) (void)RunGcPass();
  if (wal_lsn.has_value()) return wal_->WaitDurable(*wal_lsn);
  return Status::OK();
}

Status SnapshotIsolationEngine::AbortPrepared(TxnId txn) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
  {
    std::lock_guard<std::mutex> cl(commit_mu_);
    // Buffered only, never synced: presumed abort means a lost abort
    // record just re-restores the participant in doubt, and the next
    // recovery aborts it again.
    if (wal_ != nullptr) wal_->Append(WalRecord::Abort(txn));
    ReleaseReservations(txn);
  }
  return AbortInternal(txn, Status::OK(), &EngineStats::aborts,
                       obs::AbortReason::kInDoubtDecision);
}

std::vector<TxnId> SnapshotIsolationEngine::InDoubtTransactions() const {
  std::unique_lock<std::shared_mutex> tl(table_mu_);
  std::vector<TxnId> out;
  for (const auto& [t, st] : txns_) {
    if (st.active && st.prepared) out.push_back(t);
  }
  return out;
}

Status SnapshotIsolationEngine::Abort(TxnId txn) {
  std::shared_lock<std::shared_mutex> tl(table_mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  return AbortInternal(txn, Status::OK(), &EngineStats::aborts,
                       obs::AbortReason::kExplicit);
}

size_t SnapshotIsolationEngine::RunGcPass() {
  size_t dropped = 0;
  {
    std::unique_lock<std::shared_mutex> tl(table_mu_);
    // Low-watermark: the oldest begin timestamp still open (prepared
    // in-doubt participants and mid-pipeline committers are active and
    // count), else "now".  Every version superseded at or below it is
    // invisible to all live snapshots, and future snapshots only begin at
    // >= now.
    Timestamp watermark = clock_.Now();
    for (const auto& [t, st] : txns_) {
      (void)t;
      if (st.active && st.start_ts < watermark) watermark = st.start_ts;
    }
    {
      std::unique_lock<std::shared_mutex> sl(store_mu_);
      dropped = store_->GarbageCollect(watermark);
    }
    if (watermark > gc_floor_.load(std::memory_order_relaxed)) {
      gc_floor_.store(watermark, std::memory_order_release);
    }

    if (gc_policy_.mode == VersionGcMode::kWatermark) {
      // Retire transaction states whose interval ended at or below the
      // watermark: nothing still active was concurrent with them (any
      // active T concurrent with committed U has T.start < U.commit, which
      // would have kept the watermark below U.commit), so no live SSI edge
      // can need them — a missing neighbour reads as "not live", which is
      // exactly what these retirees are.  Aborted states are dead already.
      // Duplicate-id detection no longer covers retired ids (the session
      // facade's monotonic id assignment never reuses one, and a sharded
      // global id may legitimately arrive here long after higher ids
      // committed — refusing it would fail a valid cross-shard txn).
      //
      // The exclusive table latch excludes every session operation, so the
      // SSI structures are safe to edit here without `ssi_mu_`.
      std::set<TxnId> retired;
      std::map<TxnId, Timestamp> retired_commit_ts;
      for (auto it = txns_.begin(); it != txns_.end();) {
        const TxnState& st = it->second;
        const bool dead =
            st.aborted || (st.committed && st.commit_ts <= watermark);
        if (!st.active && dead) {
          retired.insert(it->first);
          if (st.committed) retired_commit_ts[it->first] = st.commit_ts;
          it = txns_.erase(it);
        } else {
          ++it;
        }
      }
      if (!retired.empty()) {
        for (auto& [t, st] : txns_) {
          (void)t;
          // Summarize before forgetting: a retired committed rw-successor
          // that committed before its (surviving, committed) predecessor
          // is a dangerous structure's "T3 commits first" witness — keep
          // that one bit so the completion check stays sound.
          if (st.committed && !st.committed_first_out) {
            for (TxnId w : st.out_to) {
              auto rc = retired_commit_ts.find(w);
              if (rc != retired_commit_ts.end() &&
                  rc->second < st.commit_ts) {
                st.committed_first_out = true;
                break;
              }
            }
          }
          for (TxnId r : retired) {
            st.in_from.erase(r);
            st.out_to.erase(r);
          }
        }
        // Drop the retirees' SIREAD bookkeeping so SSI memory is bounded
        // alongside the version chains.
        for (auto it = readers_.begin(); it != readers_.end();) {
          for (TxnId t : retired) it->second.erase(t);
          if (it->second.empty()) {
            it = readers_.erase(it);
          } else {
            ++it;
          }
        }
        predicate_readers_.erase(
            std::remove_if(predicate_readers_.begin(),
                           predicate_readers_.end(),
                           [&](const std::pair<Predicate, TxnId>& pr) {
                             return retired.count(pr.second) != 0;
                           }),
            predicate_readers_.end());
      }
    }
  }
  {
    std::lock_guard<std::mutex> gl(gc_stats_mu_);
    ++gc_stats_.runs;
    gc_stats_.collected += dropped;
  }
  return dropped;
}

void SnapshotIsolationEngine::RegisterMetrics(obs::MetricsRegistry& reg,
                                              const std::string& prefix) {
  Engine::RegisterMetrics(reg, prefix);
  reg.RegisterGauge(prefix + "pipeline.slots_issued", [this] {
    return commit_pipeline_stats().slots_issued;
  });
  reg.RegisterGauge(prefix + "pipeline.revalidation_aborts", [this] {
    return commit_pipeline_stats().revalidation_aborts;
  });
  reg.RegisterGauge(prefix + "pipeline.decision_aborts", [this] {
    return commit_pipeline_stats().decision_aborts;
  });
  reg.RegisterHistogram(prefix + "pipeline.validate_us", &stage1_hist_);
  reg.RegisterHistogram(prefix + "pipeline.publish_us", &stage2_hist_);
  // Hint-free (full-store-scan) commit/abort counters: nonzero means some
  // call site regressed to the slow path the write-set hints exist to avoid.
  reg.RegisterGauge(prefix + "storage.unhinted_commits", [this] {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    return store_->unhinted_commits();
  });
  reg.RegisterGauge(prefix + "storage.unhinted_aborts", [this] {
    std::shared_lock<std::shared_mutex> sl(store_mu_);
    return store_->unhinted_aborts();
  });
}

size_t SnapshotIsolationEngine::GarbageCollectVersions() {
  {
    std::lock_guard<std::mutex> cl(commit_mu_);
    commits_since_gc_ = 0;  // an explicit pass restarts the epoch
  }
  return RunGcPass();
}

}  // namespace critique
