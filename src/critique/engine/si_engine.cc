#include "critique/engine/si_engine.h"

#include <algorithm>

namespace critique {
namespace {

std::optional<Value> HistoryValue(const std::optional<Row>& row) {
  if (row.has_value() && row->Has("val")) return row->scalar();
  return std::nullopt;
}

}  // namespace

SnapshotIsolationEngine::SnapshotIsolationEngine(
    SnapshotIsolationOptions options)
    : options_(options) {}

Status SnapshotIsolationEngine::Load(const ItemId& id, Row row) {
  std::lock_guard<std::mutex> lk(mu_);
  store_.Bootstrap(id, std::move(row), clock_.Tick());
  return Status::OK();
}

Status SnapshotIsolationEngine::Begin(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  return BeginAtLocked(txn, clock_.Tick());
}

Status SnapshotIsolationEngine::BeginAt(TxnId txn, Timestamp ts) {
  std::lock_guard<std::mutex> lk(mu_);
  return BeginAtLocked(txn, ts);
}

Status SnapshotIsolationEngine::BeginAtLocked(TxnId txn, Timestamp ts) {
  if (txn < 1) return Status::InvalidArgument("txn ids start at 1");
  if (txns_.count(txn)) {
    return Status::InvalidArgument("txn " + std::to_string(txn) +
                                   " already used");
  }
  if (ts < gc_floor_) {
    // Accurate in both modes: the floor only rises when a GC pass prunes
    // (periodic in kWatermark; explicit GarbageCollectVersions in either
    // mode), so never advise switching to a mode already in force.
    return Status::FailedPrecondition(
        "snapshot timestamp " + std::to_string(ts) +
        " is below the version-GC floor " + std::to_string(gc_floor_) +
        ": history up to the floor has been pruned (for exact time travel "
        "stay in VersionGcMode::kRetainAll and run no explicit GC passes)");
  }
  TxnState st;
  st.active = true;
  st.start_ts = ts;
  txns_[txn] = st;
  return Status::OK();
}

Status SnapshotIsolationEngine::CheckActive(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active) {
    return Status::TransactionAborted("txn " + std::to_string(txn) +
                                      " is not active");
  }
  if (it->second.prepared) {
    return Status::FailedPrecondition(
        "txn " + std::to_string(txn) +
        " is prepared (in doubt); only CommitPrepared/AbortPrepared may end "
        "it");
  }
  return Status::OK();
}

Status SnapshotIsolationEngine::AbortInternal(TxnId txn, Status reason) {
  TxnState& st = txns_[txn];
  st.active = false;
  st.aborted = true;
  store_.AbortTxn(txn, st.write_set);
  recorder_.Record(Action::Abort(txn), &EngineStats::serialization_aborts);
  return reason;
}

bool SnapshotIsolationEngine::Concurrent(const TxnState& a,
                                         const TxnState& b) const {
  const Timestamp a_end =
      a.commit_ts == kInvalidTimestamp ? ~Timestamp{0} : a.commit_ts;
  const Timestamp b_end =
      b.commit_ts == kInvalidTimestamp ? ~Timestamp{0} : b.commit_ts;
  return a.start_ts < b_end && b.start_ts < a_end;
}

void SnapshotIsolationEngine::AddRwEdge(TxnId reader, TxnId writer) {
  txns_[reader].out_to.insert(writer);
  txns_[writer].in_from.insert(reader);
}

void SnapshotIsolationEngine::TrackReadConflicts(TxnId reader,
                                                 const ItemId& id) {
  if (!options_.ssi) return;
  readers_[id].insert(reader);
  TxnState& rd = txns_[reader];
  // reader -rw-> U for every concurrent U that produced a newer version.
  for (auto& [u, ust] : txns_) {
    if (u == reader || ust.aborted) continue;
    if (!ust.write_set.count(id)) continue;
    if (!Concurrent(rd, ust)) continue;
    AddRwEdge(reader, u);
  }
}

void SnapshotIsolationEngine::TrackWriteConflicts(
    TxnId writer, const ItemId& id, const std::optional<Row>& before,
    const std::optional<Row>& after) {
  if (!options_.ssi) return;
  TxnState& wr = txns_[writer];
  auto it = readers_.find(id);
  if (it != readers_.end()) {
    for (TxnId u : it->second) {
      if (u == writer || txns_[u].aborted) continue;
      if (!Concurrent(wr, txns_[u])) continue;
      AddRwEdge(u, writer);  // U read the old version; writer replaces it
    }
  }
  // Predicate readers: the write (either image) entering the predicate's
  // coverage is the phantom-precise rw edge ordinary SIREAD item tracking
  // misses.
  for (const auto& [pred, u] : predicate_readers_) {
    if (u == writer || txns_[u].aborted) continue;
    if (!Concurrent(wr, txns_[u])) continue;
    const bool covered =
        (before.has_value() && pred.Covers(id, *before)) ||
        (after.has_value() && pred.Covers(id, *after));
    if (covered) AddRwEdge(u, writer);
  }
}

bool SnapshotIsolationEngine::SsiPivot(const TxnState& st) const {
  // A pivot has a live (non-aborted) rw edge on both sides.
  auto live = [&](const std::set<TxnId>& peers) {
    for (TxnId u : peers) {
      auto it = txns_.find(u);
      if (it != txns_.end() && !it->second.aborted) return true;
    }
    return false;
  };
  return live(st.in_from) && live(st.out_to);
}

Result<std::optional<Row>> SnapshotIsolationEngine::DoRead(TxnId txn,
                                                           const ItemId& id,
                                                           Action::Type type) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];

  auto version = store_.ReadVersionInfo(id, st.start_ts, txn);
  std::optional<Row> row;
  Action a = type == Action::Type::kCursorRead ? Action::CursorRead(txn, id)
                                               : Action::Read(txn, id);
  if (version.has_value()) {
    a.version = version->creator;
    if (!version->tombstone) {
      row = version->row;
      a.value = HistoryValue(row);
    }
  }
  recorder_.Record(std::move(a), &EngineStats::reads);
  st.read_set.insert(id);
  TrackReadConflicts(txn, id);
  return row;
}

Result<std::optional<Row>> SnapshotIsolationEngine::Read(TxnId txn,
                                                         const ItemId& id) {
  std::lock_guard<std::mutex> lk(mu_);
  return DoRead(txn, id, Action::Type::kRead);
}

Result<std::optional<Row>> SnapshotIsolationEngine::FetchCursor(
    TxnId txn, const ItemId& id) {
  // Snapshot reads never block; a cursor adds nothing under SI.
  std::lock_guard<std::mutex> lk(mu_);
  return DoRead(txn, id, Action::Type::kCursorRead);
}

Result<std::vector<std::pair<ItemId, Row>>>
SnapshotIsolationEngine::ReadPredicate(TxnId txn, const std::string& name,
                                       const Predicate& pred) {
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];

  auto rows = store_.Scan(pred, st.start_ts, txn);
  Action a = Action::PredicateRead(txn, name, pred);
  for (const auto& [id, row] : rows) {
    (void)row;
    a.read_set.push_back(id);
    st.read_set.insert(id);
    TrackReadConflicts(txn, id);
  }
  if (options_.ssi) {
    // Phantom-precise SIREAD: remember the predicate itself, plus rw edges
    // to concurrent transactions whose pending/later writes already fall
    // under it.
    predicate_readers_.emplace_back(pred, txn);
    for (auto& [u, ust] : txns_) {
      if (u == txn || ust.aborted || !Concurrent(st, ust)) continue;
      for (const ItemId& wid : ust.write_set) {
        auto vi = store_.ReadVersionInfo(wid, ~Timestamp{0}, u);
        if (vi.has_value() && !vi->tombstone && pred.Covers(wid, vi->row)) {
          AddRwEdge(txn, u);
        }
      }
    }
  }
  recorder_.Record(std::move(a), &EngineStats::predicate_reads);
  return rows;
}

Status SnapshotIsolationEngine::DoWrite(TxnId txn, const ItemId& id,
                                        std::optional<Row> new_row,
                                        Action::Type type, bool is_insert) {
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];

  if (options_.eager_write_conflicts &&
      store_.HasConcurrentPendingWrite(id, txn)) {
    return AbortInternal(
        txn, Status::SerializationFailure(
                 "first-updater-wins: concurrent pending write on '" + id +
                 "'"));
  }

  std::optional<Row> before = store_.Read(id, st.start_ts, txn);
  if (new_row.has_value()) {
    store_.Write(id, *new_row, txn);
  } else {
    store_.Delete(id, txn);
  }
  st.write_set.insert(id);

  Action a = type == Action::Type::kCursorWrite
                 ? Action::CursorWrite(txn, id, HistoryValue(new_row))
                 : Action::Write(txn, id, HistoryValue(new_row));
  a.version = txn;
  a.before_image = before;
  a.after_image = new_row;
  a.is_insert = is_insert;
  recorder_.Record(std::move(a), &EngineStats::writes);
  TrackWriteConflicts(txn, id, before, new_row);
  return Status::OK();
}

Status SnapshotIsolationEngine::Write(TxnId txn, const ItemId& id, Row row) {
  std::lock_guard<std::mutex> lk(mu_);
  return DoWrite(txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/false);
}

Status SnapshotIsolationEngine::Insert(TxnId txn, const ItemId& id, Row row) {
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  if (store_.Read(id, txns_[txn].start_ts, txn).has_value()) {
    return Status::FailedPrecondition("insert: item '" + id +
                                      "' visible in snapshot");
  }
  return DoWrite(txn, id, std::move(row), Action::Type::kWrite,
                 /*is_insert=*/true);
}

Status SnapshotIsolationEngine::Delete(TxnId txn, const ItemId& id) {
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  if (!store_.Read(id, txns_[txn].start_ts, txn).has_value()) {
    return Status::NotFound("delete: item '" + id + "' not visible");
  }
  return DoWrite(txn, id, std::nullopt, Action::Type::kWrite,
                 /*is_insert=*/false);
}

Result<size_t> SnapshotIsolationEngine::UpdateWhere(
    TxnId txn, const std::string& name, const Predicate& pred,
    const std::function<Row(const Row&)>& transform) {
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];
  auto rows = store_.Scan(pred, st.start_ts, txn);
  Action a = Action::PredicateWrite(txn, name, pred);
  a.version = txn;
  for (const auto& [id, row] : rows) {
    Row next = transform(row);
    store_.Write(id, next, txn);
    st.write_set.insert(id);
    a.read_set.push_back(id);
    TrackWriteConflicts(txn, id, row, next);
  }
  recorder_.Count(&EngineStats::writes, rows.size());
  recorder_.Record(std::move(a));
  return rows.size();
}

Result<size_t> SnapshotIsolationEngine::DeleteWhere(TxnId txn,
                                                    const std::string& name,
                                                    const Predicate& pred) {
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];
  auto rows = store_.Scan(pred, st.start_ts, txn);
  Action a = Action::PredicateWrite(txn, name, pred);
  a.version = txn;
  for (const auto& [id, row] : rows) {
    store_.Delete(id, txn);
    st.write_set.insert(id);
    a.read_set.push_back(id);
    TrackWriteConflicts(txn, id, row, std::nullopt);
  }
  recorder_.Count(&EngineStats::writes, rows.size());
  recorder_.Record(std::move(a));
  return rows.size();
}

Status SnapshotIsolationEngine::WriteCursor(TxnId txn, const ItemId& id,
                                            Row row) {
  std::lock_guard<std::mutex> lk(mu_);
  return DoWrite(txn, id, std::move(row), Action::Type::kCursorWrite,
                 /*is_insert=*/false);
}

Status SnapshotIsolationEngine::CloseCursor(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  return CheckActive(txn);
}

Status SnapshotIsolationEngine::ValidateForCommit(TxnId txn) {
  TxnState& st = txns_[txn];

  // First-Committer-Wins: some transaction with a Commit-Timestamp inside
  // [start_ts, now] wrote data this transaction also wrote.
  for (const ItemId& id : st.write_set) {
    if (store_.LatestCommitTs(id) > st.start_ts) {
      return AbortInternal(
          txn, Status::SerializationFailure(
                   "first-committer-wins: '" + id +
                   "' was committed during this transaction's interval"));
    }
  }

  // In-doubt reservation: a *prepared* transaction has validated its write
  // set but not yet published a commit timestamp.  A later committer
  // overlapping that write set would slip past the timestamp check above
  // and both would install — a lost update First-Committer-Wins exists to
  // prevent.  The prepared side must stay committable (it already said
  // yes), so the requester aborts.
  for (const auto& [u, ust] : txns_) {
    if (u == txn || !ust.prepared) continue;
    for (const ItemId& id : st.write_set) {
      if (ust.write_set.count(id)) {
        return AbortInternal(
            txn, Status::SerializationFailure(
                     "first-committer-wins: '" + id + "' is reserved by " +
                     "prepared (in-doubt) txn " + std::to_string(u)));
      }
    }
  }

  if (options_.ssi && SsiPivot(st)) {
    return AbortInternal(
        txn,
        Status::SerializationFailure(
            "ssi: pivot in an rw-antidependency dangerous structure"));
  }
  return Status::OK();
}

Status SnapshotIsolationEngine::Commit(TxnId txn) {
  // The latch makes First-Committer-Wins validation and the commit itself
  // one atomic step with respect to concurrent committers.
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  CRITIQUE_RETURN_NOT_OK(ValidateForCommit(txn));
  TxnState& st = txns_[txn];
  st.commit_ts = clock_.Tick();
  st.active = false;
  st.committed = true;
  store_.CommitTxn(txn, st.commit_ts, st.write_set);
  recorder_.Record(Action::Commit(txn), &EngineStats::commits);
  MaybeGcLocked();
  return Status::OK();
}

Status SnapshotIsolationEngine::Prepare(TxnId txn) {
  // Validation runs here, not at CommitPrepared: prepare is the
  // participant's last chance to refuse, and the decision must then be
  // infallible.  The latch makes validate-then-mark atomic against
  // concurrent committers and preparers.
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  CRITIQUE_RETURN_NOT_OK(ValidateForCommit(txn));
  txns_[txn].prepared = true;
  return Status::OK();
}

Status SnapshotIsolationEngine::CheckPrepared(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.active || !it->second.prepared) {
    return Status::FailedPrecondition("txn " + std::to_string(txn) +
                                      " is not prepared");
  }
  return Status::OK();
}

Status SnapshotIsolationEngine::CommitPrepared(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
  TxnState& st = txns_[txn];
  st.prepared = false;
  st.commit_ts = clock_.Tick();
  st.active = false;
  st.committed = true;
  store_.CommitTxn(txn, st.commit_ts, st.write_set);
  recorder_.Record(Action::Commit(txn), &EngineStats::commits);
  MaybeGcLocked();
  return Status::OK();
}

Status SnapshotIsolationEngine::AbortPrepared(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckPrepared(txn));
  TxnState& st = txns_[txn];
  st.prepared = false;
  st.active = false;
  st.aborted = true;
  store_.AbortTxn(txn, st.write_set);
  recorder_.Record(Action::Abort(txn), &EngineStats::aborts);
  return Status::OK();
}

std::vector<TxnId> SnapshotIsolationEngine::InDoubtTransactions() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TxnId> out;
  for (const auto& [t, st] : txns_) {
    if (st.active && st.prepared) out.push_back(t);
  }
  return out;
}

Status SnapshotIsolationEngine::Abort(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  CRITIQUE_RETURN_NOT_OK(CheckActive(txn));
  TxnState& st = txns_[txn];
  st.active = false;
  st.aborted = true;
  store_.AbortTxn(txn, st.write_set);
  recorder_.Record(Action::Abort(txn), &EngineStats::aborts);
  return Status::OK();
}

void SnapshotIsolationEngine::MaybeGcLocked() {
  if (gc_policy_.mode != VersionGcMode::kWatermark) return;
  const uint32_t interval = std::max<uint32_t>(1, gc_policy_.commit_interval);
  if (++commits_since_gc_ < interval) return;
  (void)RunGcLocked();
}

size_t SnapshotIsolationEngine::RunGcLocked() {
  commits_since_gc_ = 0;
  // Low-watermark: the oldest begin timestamp still open (prepared
  // in-doubt participants are active and count), else "now".  Every
  // version superseded at or below it is invisible to all live snapshots,
  // and future snapshots only begin at >= now.
  Timestamp watermark = clock_.Now();
  for (const auto& [t, st] : txns_) {
    (void)t;
    if (st.active && st.start_ts < watermark) watermark = st.start_ts;
  }
  size_t dropped = store_.GarbageCollect(watermark);
  gc_floor_ = std::max(gc_floor_, watermark);
  ++gc_stats_.runs;
  gc_stats_.collected += dropped;

  if (gc_policy_.mode == VersionGcMode::kWatermark) {
    // Retire transaction states whose interval ended at or below the
    // watermark: nothing still active was concurrent with them (any
    // active T concurrent with committed U has T.start < U.commit, which
    // would have kept the watermark below U.commit), so no live SSI edge
    // can need them — a missing neighbour reads as "not live", which is
    // exactly what these retirees are.  Aborted states are dead already.
    // Duplicate-id detection no longer covers retired ids (the session
    // facade's monotonic id assignment never reuses one, and a sharded
    // global id may legitimately arrive here long after higher ids
    // committed — refusing it would fail a valid cross-shard txn).
    std::set<TxnId> retired;
    for (auto it = txns_.begin(); it != txns_.end();) {
      const TxnState& st = it->second;
      const bool dead =
          st.aborted || (st.committed && st.commit_ts <= watermark);
      if (!st.active && dead) {
        retired.insert(it->first);
        it = txns_.erase(it);
      } else {
        ++it;
      }
    }
    if (!retired.empty()) {
      // Drop the retirees' SIREAD bookkeeping so SSI memory is bounded
      // alongside the version chains.
      for (auto it = readers_.begin(); it != readers_.end();) {
        for (TxnId t : retired) it->second.erase(t);
        if (it->second.empty()) {
          it = readers_.erase(it);
        } else {
          ++it;
        }
      }
      predicate_readers_.erase(
          std::remove_if(predicate_readers_.begin(), predicate_readers_.end(),
                         [&](const std::pair<Predicate, TxnId>& pr) {
                           return retired.count(pr.second) != 0;
                         }),
          predicate_readers_.end());
    }
  }
  return dropped;
}

size_t SnapshotIsolationEngine::GarbageCollectVersions() {
  std::lock_guard<std::mutex> lk(mu_);
  return RunGcLocked();
}

}  // namespace critique
