#include "critique/engine/isolation.h"

#include <cassert>

namespace critique {

std::string IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kDegree0:
      return "Degree 0";
    case IsolationLevel::kReadUncommitted:
      return "Locking READ UNCOMMITTED (Degree 1)";
    case IsolationLevel::kReadCommitted:
      return "Locking READ COMMITTED (Degree 2)";
    case IsolationLevel::kCursorStability:
      return "Cursor Stability";
    case IsolationLevel::kRepeatableRead:
      return "Locking REPEATABLE READ";
    case IsolationLevel::kSerializable:
      return "Locking SERIALIZABLE (Degree 3)";
    case IsolationLevel::kSnapshotIsolation:
      return "Snapshot Isolation";
    case IsolationLevel::kOracleReadConsistency:
      return "Oracle Read Consistency";
    case IsolationLevel::kSerializableSI:
      return "Serializable SI (SSI extension)";
  }
  return "?";
}

const std::vector<IsolationLevel>& Table4Levels() {
  static const std::vector<IsolationLevel> kLevels = {
      IsolationLevel::kReadUncommitted, IsolationLevel::kReadCommitted,
      IsolationLevel::kCursorStability, IsolationLevel::kRepeatableRead,
      IsolationLevel::kSnapshotIsolation, IsolationLevel::kSerializable,
  };
  return kLevels;
}

const std::vector<IsolationLevel>& AllEngineLevels() {
  static const std::vector<IsolationLevel> kLevels = {
      IsolationLevel::kDegree0,
      IsolationLevel::kReadUncommitted,
      IsolationLevel::kReadCommitted,
      IsolationLevel::kCursorStability,
      IsolationLevel::kRepeatableRead,
      IsolationLevel::kSerializable,
      IsolationLevel::kSnapshotIsolation,
      IsolationLevel::kOracleReadConsistency,
      IsolationLevel::kSerializableSI,
  };
  return kLevels;
}

bool IsLockingLevel(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kDegree0:
    case IsolationLevel::kReadUncommitted:
    case IsolationLevel::kReadCommitted:
    case IsolationLevel::kCursorStability:
    case IsolationLevel::kRepeatableRead:
    case IsolationLevel::kSerializable:
      return true;
    default:
      return false;
  }
}

std::string LockingPolicy::ToString() const {
  auto dur = [](LockDuration d) {
    return d == LockDuration::kLong ? std::string("long")
                                    : std::string("short");
  };
  std::string out;
  if (!read_locks) {
    out = "reads: none required";
  } else {
    out = "reads: well-formed, item " + dur(item_read) + ", predicate " +
          dur(pred_read);
    if (cursor_stability) out += ", held on current of cursor";
  }
  out += "; writes: well-formed, " + dur(write);
  return out;
}

LockingPolicy PolicyFor(IsolationLevel level) {
  assert(IsLockingLevel(level) && "PolicyFor is defined on Table 2 levels");
  LockingPolicy p;
  switch (level) {
    case IsolationLevel::kDegree0:
      p.read_locks = false;
      p.write = LockDuration::kShort;
      break;
    case IsolationLevel::kReadUncommitted:
      p.read_locks = false;
      break;
    case IsolationLevel::kReadCommitted:
      p.item_read = LockDuration::kShort;
      p.pred_read = LockDuration::kShort;
      break;
    case IsolationLevel::kCursorStability:
      p.item_read = LockDuration::kShort;
      p.pred_read = LockDuration::kShort;
      p.cursor_stability = true;
      break;
    case IsolationLevel::kRepeatableRead:
      p.item_read = LockDuration::kLong;
      p.pred_read = LockDuration::kShort;
      break;
    case IsolationLevel::kSerializable:
      p.item_read = LockDuration::kLong;
      p.pred_read = LockDuration::kLong;
      break;
    default:
      break;
  }
  return p;
}

}  // namespace critique
