#ifndef CRITIQUE_ENGINE_ISOLATION_H_
#define CRITIQUE_ENGINE_ISOLATION_H_

#include <string>
#include <vector>

#include "critique/lock/lock_manager.h"

namespace critique {

/// \brief Every isolation level the paper names, across Tables 2 and 4 and
/// Figure 2, plus the SSI extension this paper's write-skew analysis seeded.
enum class IsolationLevel {
  kDegree0,                ///< [GLPT] Degree 0: short write locks only
  kReadUncommitted,        ///< Locking READ UNCOMMITTED == Degree 1
  kReadCommitted,          ///< Locking READ COMMITTED == Degree 2
  kCursorStability,        ///< Degree 2 + cursor-held read locks (Date)
  kRepeatableRead,         ///< Locking REPEATABLE READ (ANSI's misnomer)
  kSerializable,           ///< Locking SERIALIZABLE == Degree 3
  kSnapshotIsolation,      ///< Section 4.2: MVCC + First-Committer-Wins
  kOracleReadConsistency,  ///< Section 4.3: statement snapshots, FWW locks
  kSerializableSI,         ///< extension: SSI (Cahill-style rw-hazard aborts)
};

/// Display name matching the paper ("Locking READ COMMITTED (Degree 2)",
/// "Snapshot Isolation", ...).
std::string IsolationLevelName(IsolationLevel level);

/// The six rows of Table 4, in the paper's order, i.e. excluding the
/// engines the paper did not tabulate (Degree 0, Oracle RC, SSI).
const std::vector<IsolationLevel>& Table4Levels();

/// Every level with an engine in this library.
const std::vector<IsolationLevel>& AllEngineLevels();

/// True for the lock-scheduler levels of Table 2.
bool IsLockingLevel(IsolationLevel level);

/// \brief A row of Table 2: lock scopes, modes and durations defining one
/// locking isolation level.
struct LockingPolicy {
  /// Well-formed reads: request read locks at all.  False for Degree 0/1
  /// ("none required").
  bool read_locks = true;
  /// Duration of data-item read locks.
  LockDuration item_read = LockDuration::kShort;
  /// Duration of predicate read locks.
  LockDuration pred_read = LockDuration::kShort;
  /// Duration of write locks (items and predicates, "always the same").
  /// Short only at Degree 0; long everywhere else, which is what rules
  /// out P0 (Remark 3).
  LockDuration write = LockDuration::kLong;
  /// Cursor Stability: hold the read lock on the current of cursor until
  /// the cursor moves or closes (Section 4.1).
  bool cursor_stability = false;

  /// One-line rendering in Table 2's vocabulary.
  std::string ToString() const;
};

/// The Table 2 row for a locking level; must not be called for
/// multiversion levels (asserts).
LockingPolicy PolicyFor(IsolationLevel level);

}  // namespace critique

#endif  // CRITIQUE_ENGINE_ISOLATION_H_
