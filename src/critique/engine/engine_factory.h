#ifndef CRITIQUE_ENGINE_ENGINE_FACTORY_H_
#define CRITIQUE_ENGINE_ENGINE_FACTORY_H_

#include <memory>

#include "critique/engine/engine.h"

namespace critique {

/// Creates the engine implementing `level`: a `LockingEngine` for the
/// Table 2 levels, a `SnapshotIsolationEngine` for Snapshot Isolation and
/// the SSI extension, a `ReadConsistencyEngine` for Oracle Read
/// Consistency.
std::unique_ptr<Engine> CreateEngine(IsolationLevel level);

}  // namespace critique

#endif  // CRITIQUE_ENGINE_ENGINE_FACTORY_H_
