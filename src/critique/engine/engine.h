#ifndef CRITIQUE_ENGINE_ENGINE_H_
#define CRITIQUE_ENGINE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "critique/common/clock.h"
#include "critique/common/result.h"
#include "critique/common/status.h"
#include "critique/engine/isolation.h"
#include "critique/history/history.h"
#include "critique/lock/lock_manager.h"
#include "critique/model/predicate.h"
#include "critique/model/row.h"
#include "critique/obs/metrics.h"
#include "critique/obs/txn_trace.h"
#include "critique/storage/version_store.h"
#include "critique/wal/wal_sink.h"

namespace critique {

/// Operation counters shared by all engines.
struct EngineStats {
  uint64_t reads = 0;
  uint64_t predicate_reads = 0;
  uint64_t writes = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;            ///< explicit application aborts
  uint64_t deadlock_aborts = 0;   ///< victim aborts by the lock manager
  uint64_t serialization_aborts = 0;  ///< FCW / FWW / SSI aborts
  uint64_t blocked_ops = 0;       ///< operations answered kWouldBlock

  // Breakdown of `serialization_aborts` by the paper's taxonomy (the same
  // tags the `obs::TxnTracer` records).  The aggregate above keeps
  // counting for compatibility; these three always sum to it for the
  // stock engines.
  uint64_t fcw_aborts = 0;      ///< First-Committer/Updater-Wins conflicts
  uint64_t ssi_aborts = 0;      ///< SSI dangerous-structure refusals
  uint64_t in_doubt_aborts = 0; ///< 2PC decision-time revalidation refusals

  /// All aborts, whatever initiated them.
  uint64_t total_aborts() const {
    return aborts + deadlock_aborts + serialization_aborts;
  }

  /// Transactions that reached a terminal state (commit or any abort) —
  /// the invariant the runner tests assert: commits + total_aborts() must
  /// equal the number of finished transactions.
  uint64_t finished_txns() const { return commits + total_aborts(); }

  /// One line: "reads=3 predicate_reads=0 writes=2 commits=1 ...".
  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const EngineStats& stats);

/// How an engine resolves lock conflicts; set through
/// `Engine::SetConcurrency` before any session starts.
struct EngineConcurrency {
  /// When true, lock conflicts park the calling thread (condition-variable
  /// wait with deadlock detection) instead of answering `kWouldBlock`.
  bool blocking_locks = false;

  /// Blocking mode only: how long a lock wait may last before the engine
  /// gives up and answers `kWouldBlock` ("lock wait timeout"), which the
  /// session layer treats as a retryable whole-transaction failure.
  std::chrono::milliseconds lock_wait_timeout{250};

  /// Blocking mode only: how often a parked lock waiter re-runs deadlock
  /// detection even when no release notification arrived (the bound that
  /// catches cycles formed while threads sleep).
  std::chrono::milliseconds deadlock_check_interval{50};

  /// How many independently latched buckets the engine's lock table is
  /// hash-partitioned into (lock-based engines only; 1 = the old global
  /// table).  Applied when `SetConcurrency` runs, i.e. before any session.
  size_t lock_stripes = LockManager::kDefaultStripes;

  /// Which `VersionStore` backend multiversion engines run on (see
  /// `StorageBackend`).  Applied when `SetConcurrency` runs, i.e. before
  /// any session — switching backends later is refused by the engines
  /// (the swap would discard loaded data); re-announcing the same backend
  /// is a no-op, so hooks that re-run `SetConcurrency` stay safe.
  /// Single-version engines (the locking levels) accept and ignore it.
  StorageBackend storage_backend = StorageBackend::kMap;

  /// Cooperative mode only: release-notification hook for lock-based
  /// engines (`LockManager::SetWakeupHook`).  When set, every operation
  /// that answers `kWouldBlock` has first registered the transaction for
  /// exactly one wakeup — the hook fires with its TxnId once a conflicting
  /// lock is released, so a scheduler can park the session instead of
  /// polling through timed retries.  The hook runs on the releasing
  /// thread, outside lock-table latches but possibly under engine latches:
  /// it must only hand the id to a queue, never call back into the engine.
  /// Engines without a lock table ignore it (they never answer
  /// `kWouldBlock`).
  std::function<void(TxnId)> lock_wakeup;
};

/// What a multiversion engine does with versions no live snapshot can see.
enum class VersionGcMode {
  /// Keep every version forever: `BeginAtTimestamp` time travel to any
  /// historical snapshot stays exact, and diagnostic chain dumps show the
  /// full write history.  The default — correctness layers (paper
  /// schedules, history/diagnosis) rely on it.
  kRetainAll,
  /// Epoch-based pruning: every `commit_interval` commits the engine
  /// computes a low-watermark from the begin timestamps of the
  /// transactions still open on it and drops versions no live or future
  /// snapshot can observe.  Time travel below the collected floor is
  /// *refused* (FailedPrecondition), never answered from a pruned chain.
  kWatermark,
};

/// Version-GC configuration, set through `Engine::SetVersionGc` before
/// any session starts (the `Database` facade does this from its
/// constructor, from `DbOptions::version_gc` / `version_gc_interval`).
struct VersionGcPolicy {
  VersionGcMode mode = VersionGcMode::kRetainAll;
  /// kWatermark only: commits between automatic GC passes (the epoch
  /// length).  0 behaves as 1.
  uint32_t commit_interval = 64;
};

/// What version GC has done so far (multiversion engines).
struct VersionGcStats {
  uint64_t runs = 0;       ///< GC passes executed (automatic + explicit)
  uint64_t collected = 0;  ///< versions dropped across all passes
};

/// \brief Serializes history appends and stats updates across concurrent
/// sessions.
///
/// Engines mutate their recorded history and operation counters through
/// this recorder only, so the pair stays consistent however many threads
/// drive the engine.  The reference accessors are cheap views for quiescent
/// callers (no sessions in flight — the normal read-the-results point);
/// `HistorySnapshot` / `StatsSnapshot` copy under the recorder mutex for
/// mid-run observers.
class EngineRecorder {
 public:
  /// Observer invoked for every recorded action, under the recorder
  /// mutex: observers see exactly the recorded total order, at the price
  /// of running inside the engine's innermost critical section — keep
  /// them cheap and never call back into the engine.  The online MVSG
  /// checker (check/online_checker.h) feeds from here.
  using Observer = std::function<void(const Action&)>;

  /// Installs (or with nullptr removes) the action observer.  Call
  /// before any session starts — the `Database` facade does this when
  /// `DbOptions::online_check` is set.
  void SetObserver(Observer observer) {
    std::lock_guard<std::mutex> lk(mu_);
    observer_ = std::move(observer);
  }

  /// Appends `a`, bumping `*counter` (when non-null) atomically with it.
  void Record(Action a, uint64_t EngineStats::*counter = nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    if (counter != nullptr) ++(stats_.*counter);
    if (observer_) observer_(a);
    history_.Append(std::move(a));
  }

  /// Bumps `*counter` by `n` with no history append.
  void Count(uint64_t EngineStats::*counter, uint64_t n = 1) {
    std::lock_guard<std::mutex> lk(mu_);
    (stats_.*counter) += n;
  }

  const History& history() const { return history_; }
  const EngineStats& stats() const { return stats_; }

  History HistorySnapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return history_;
  }
  EngineStats StatsSnapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  History history_;
  EngineStats stats_;
  Observer observer_;
};

/// \brief The transaction-engine interface every isolation implementation
/// satisfies: the locking levels of Table 2, Snapshot Isolation
/// (Section 4.2), Oracle Read Consistency (Section 4.3) and the SSI
/// extension.
///
/// Conflict protocol:
///
///  * `kWouldBlock` — the operation did nothing; the caller may retry it
///    later (after other transactions progress).  Models waiting on a
///    conflicting lock in cooperative mode; in blocking mode it is only
///    answered after a lock wait timed out.
///  * `kDeadlock` — the lock manager chose this transaction as a deadlock
///    victim; the engine has already rolled it back (undo applied, locks
///    released, `a<t>` recorded).
///  * `kSerializationFailure` — a multiversion engine aborted the
///    transaction (First-Committer-Wins at commit, eager write-write
///    conflict, or an SSI hazard); already rolled back, `a<t>` recorded.
///  * `kTransactionAborted` — operation on a transaction that is not
///    active (never begun, already finished, or rolled back earlier).
///
/// Thread-safety contract (the stock engines all honor it): every
/// operation is safe to call from any thread, provided each transaction is
/// driven by one thread at a time.  Implementations serialize operation
/// bodies behind an internal latch and route every history append / stats
/// update through the `EngineRecorder`; in blocking mode, lock waits park
/// *outside* the latch so other sessions keep running while a thread
/// sleeps.  `SetConcurrency` must be called before the first session
/// begins (the `Database` facade does this from its constructor).
///
/// Every executed operation is recorded into `history()` with observed
/// values, row images, and (for multiversion engines) version subscripts,
/// so any run can be fed to the analysis layer: the engines *produce*
/// histories, the detectors *judge* them, and the two views must agree —
/// the property the test suite leans on hardest.  Concurrent runs record
/// the engine's own linearization of the actions, so the recorded history
/// is judged exactly like a cooperative one.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Selects cooperative (`kWouldBlock`) vs blocking lock-conflict
  /// handling and the lock-table stripe count.  Call before any session
  /// starts; engines without locks (Snapshot Isolation) accept and ignore
  /// it.
  virtual void SetConcurrency(EngineConcurrency c) { concurrency_ = c; }

  /// The conflict-handling mode in force.
  const EngineConcurrency& concurrency() const { return concurrency_; }

  /// Configures version garbage collection.  Call before any session
  /// starts; engines without version chains (the locking levels) accept
  /// and ignore it.
  virtual void SetVersionGc(const VersionGcPolicy& p) { gc_policy_ = p; }

  /// The version-GC policy in force.
  const VersionGcPolicy& version_gc() const { return gc_policy_; }

  /// Attaches the write-ahead-log sink redo records flow into (nullptr
  /// detaches; the engine then runs purely in memory, the historical
  /// default).  Call before any session starts — the `Database` facade
  /// does this when `DbOptions::wal_path` is set.  The emission protocol
  /// engines follow is documented on `WalSink`.
  virtual void SetWal(WalSink* wal) { wal_ = wal; }

  /// The attached WAL sink, or nullptr when running without durability.
  WalSink* wal() const { return wal_; }

  /// Installs an action observer on the recorder (see
  /// `EngineRecorder::SetObserver`).  Call before any session starts.
  void SetActionObserver(EngineRecorder::Observer observer) {
    recorder_.SetObserver(std::move(observer));
  }

  /// Attaches the opt-in transaction tracer (nullptr detaches, the
  /// default).  Engines record begin/prepare/commit/abort events — abort
  /// events tagged with the paper-taxonomy reason — through it.  Call
  /// before any session starts; the tracer must outlive the engine.
  virtual void SetTracer(obs::TxnTracer* tracer) { tracer_ = tracer; }

  /// The attached tracer, or nullptr.
  obs::TxnTracer* tracer() const { return tracer_; }

  /// Registers this engine's instruments with `reg` under `prefix`
  /// ("engine." by convention).  The base registers every `EngineStats`
  /// field as a gauge; lock-based engines add lock-table counters and
  /// wait histograms, the SI engine its commit-pipeline stage histograms.
  /// The engine must outlive the registry entries (`reg.Unregister`).
  virtual void RegisterMetrics(obs::MetricsRegistry& reg,
                               const std::string& prefix);

  /// Multi-line stall-introspection report (lock holders, waiters,
  /// waits-for edges for lock-based engines); "" when the engine has
  /// nothing to say.  Safe to call while sessions are parked mid-conflict.
  virtual std::string DebugDump() const { return std::string(); }

  /// Runs one version-GC pass now (whatever the configured mode), pruning
  /// with the engine's current low-watermark; returns versions dropped.
  /// No-op (0) for engines without version chains.
  virtual size_t GarbageCollectVersions() { return 0; }

  /// Stored version count across all items (0 for single-version engines).
  virtual size_t VersionCount() const { return 0; }

  /// Longest version chain (0 for single-version engines) — the GC
  /// boundedness metric.
  virtual size_t MaxVersionChainLength() const { return 0; }

  /// Version-GC counters (zeros for single-version engines).
  virtual VersionGcStats version_gc_stats() const { return {}; }

  /// Engine display name ("Locking READ COMMITTED (Degree 2)", ...).
  virtual std::string name() const { return IsolationLevelName(level()); }

  /// The isolation level this engine implements.
  virtual IsolationLevel level() const = 0;

  /// Loads an initial row before any transaction begins (bootstrap only).
  virtual Status Load(const ItemId& id, Row row) = 0;

  /// Starts transaction `txn` (ids must be unique per engine instance and
  /// >= 1; 0 is the initial-state pseudo-transaction).
  virtual Status Begin(TxnId txn) = 0;

  /// Starts `txn` with a *per-transaction* isolation level — the paper's
  /// Table 4 reading of isolation as a contract each transaction declares
  /// for itself, not a property of the whole system.  Engines that can
  /// honor `level` alongside their native one override this (the SI
  /// engine runs RC/SI/SSI transactions side by side, the locking engine
  /// any Table 2 lock protocol); the default refuses anything but the
  /// engine's own level, so a declared contract is never silently
  /// weakened or strengthened.
  virtual Status BeginWithLevel(TxnId txn, IsolationLevel level) {
    if (level == this->level()) return Begin(txn);
    return Status::FailedPrecondition(
        name() + " cannot honor a per-transaction " +
        IsolationLevelName(level) + " contract");
  }

  /// Time travel (Section 4.2): starts `txn` reading the historical
  /// snapshot `ts`.  A capability of timestamped multiversion engines
  /// (Snapshot Isolation / SSI — including any decorator wrapping one);
  /// everything else refuses with FailedPrecondition.
  virtual Status BeginAt(TxnId txn, Timestamp ts) {
    (void)txn;
    (void)ts;
    return Status::FailedPrecondition(name() +
                                      " keeps no timestamped history");
  }

  /// The latest committed snapshot timestamp, when the engine keeps one
  /// (the "now" a historical `BeginAt` is relative to); nullopt otherwise.
  virtual std::optional<Timestamp> SnapshotTimestamp() const {
    return std::nullopt;
  }

  /// Reads one item; nullopt when absent (or deleted at the snapshot).
  virtual Result<std::optional<Row>> Read(TxnId txn, const ItemId& id) = 0;

  /// Evaluates a <search condition>; returns matching (id, row) pairs.
  /// `name` is the history label for the predicate (the paper's "P").
  virtual Result<std::vector<std::pair<ItemId, Row>>> ReadPredicate(
      TxnId txn, const std::string& name, const Predicate& pred) = 0;

  /// Upserts one item.
  virtual Status Write(TxnId txn, const ItemId& id, Row row) = 0;

  /// Bulk UPDATE ... WHERE <pred>: transforms every matching row, i.e. the
  /// paper's predicate write `w1[P]` ("writing a set of records satisfying
  /// predicate P", Section 2.1).  Returns the number of rows updated.
  /// The default implementation evaluates the predicate through
  /// `ReadPredicate` and writes item-by-item; the locking engine overrides
  /// it to take a Write *predicate* lock (Table 2: "Write locks on data
  /// items and predicates"), the SI engine to install pending versions
  /// against its snapshot.
  virtual Result<size_t> UpdateWhere(
      TxnId txn, const std::string& name, const Predicate& pred,
      const std::function<Row(const Row&)>& transform);

  /// Bulk DELETE ... WHERE <pred>; returns the number of rows deleted.
  virtual Result<size_t> DeleteWhere(TxnId txn, const std::string& name,
                                     const Predicate& pred);

  /// Inserts; FailedPrecondition when the item is already visible.
  virtual Status Insert(TxnId txn, const ItemId& id, Row row) = 0;

  /// Deletes; NotFound when the item is not visible.
  virtual Status Delete(TxnId txn, const ItemId& id) = 0;

  /// Positions the transaction's default cursor on `id` and reads it
  /// (`rc` in the history).  Under Cursor Stability the read lock is held
  /// until the cursor moves or closes.
  virtual Result<std::optional<Row>> FetchCursor(TxnId txn,
                                                 const ItemId& id) = 0;

  /// Multi-cursor form (Section 4.1: "the technique of putting a cursor on
  /// an item to hold its value stable can be used for multiple items, at
  /// the cost of using multiple cursors").  The default cursor is "".
  /// Engines without per-cursor state delegate to `FetchCursor`.
  virtual Result<std::optional<Row>> FetchCursorNamed(TxnId txn,
                                                      const std::string& cursor,
                                                      const ItemId& id) {
    (void)cursor;
    return FetchCursor(txn, id);
  }

  /// Writes the current of cursor (`wc` in the history).
  virtual Status WriteCursor(TxnId txn, const ItemId& id, Row row) = 0;

  /// Closes the default cursor, releasing any cursor-held lock.
  virtual Status CloseCursor(TxnId txn) = 0;

  /// Closes one named cursor.  Engines without per-cursor state delegate
  /// to `CloseCursor`.
  virtual Status CloseCursorNamed(TxnId txn, const std::string& cursor) {
    (void)cursor;
    return CloseCursor(txn);
  }

  /// Atomic read-modify-write of one item — the model of a single SQL
  /// UPDATE statement ("the SQL standard defines each statement as
  /// atomic", Section 4.3).  The default runs Read-then-Write through the
  /// engine's normal paths; Oracle Read Consistency overrides it to apply
  /// the transform to the latest committed value after the write lock is
  /// granted (statement-level write consistency).
  virtual Status Update(
      TxnId txn, const ItemId& id,
      const std::function<Row(const std::optional<Row>&)>& transform);

  /// Commits; on kSerializationFailure the transaction was aborted instead.
  virtual Status Commit(TxnId txn) = 0;

  /// Rolls back (application-initiated ROLLBACK).
  virtual Status Abort(TxnId txn) = 0;

  // --- two-phase-commit participant protocol -------------------------------
  //
  // A distributed coordinator (shard/TxnCoordinator) ends a transaction in
  // two steps: `Prepare` runs every validation that could still refuse the
  // commit and moves the transaction into a *prepared* (in-doubt) state —
  // locks stay held, pending versions stay pending, and every further
  // operation (including plain Commit/Abort) answers FailedPrecondition
  // until the coordinator's decision arrives as `CommitPrepared` or
  // `AbortPrepared`.
  //
  // After an OK `Prepare`, `CommitPrepared` must not fail for engines
  // whose prepared state pins every conflict it validated (lock
  // schedulers: the locks held across the in-doubt window are the proof).
  // A *certifying* engine (SSI) cannot promise that: certification is only
  // complete at publication, so its `CommitPrepared` re-validates and may
  // answer kSerializationFailure when a dangerous structure completed
  // while the participant was in doubt — the engine has then already
  // rolled the participant back, exactly as a failed `Commit`, and the
  // refusal is an abort *acknowledgement* (the participant is terminal, no
  // locks or versions leak).  Coordinators must treat such a refusal as a
  // participant abort, not a protocol error (see shard/TxnCoordinator).
  //
  // The base-class defaults implement the *trivial participant* for
  // engines whose `Commit` cannot fail (pure lock schedulers): `Prepare`
  // validates nothing and leaves the transaction active, the decision
  // calls forward to `Commit`/`Abort`, and nothing is ever in doubt.
  // Caveat: a trivial participant cannot survive a coordinator crash —
  // after the crash the session layer rolls its still-active transaction
  // back, which is the correct presumed-abort answer for a crash *before*
  // the decision but breaks atomicity if a commit was already logged
  // (other participants recover forward).  Every stock engine therefore
  // overrides the protocol with a real prepared state; the default exists
  // for custom SPI engines that never see a crashing coordinator.  Engines
  // with a fallible commit (First-Committer-Wins, SSI) must override all
  // four regardless.

  /// Phase 1: validate and move `txn` to the prepared (in-doubt) state.
  /// Retryable refusals (`kSerializationFailure`, ...) mean the engine
  /// already rolled the transaction back, exactly as a failed `Commit`.
  virtual Status Prepare(TxnId txn) {
    (void)txn;
    return Status::OK();
  }

  /// Phase 2, commit decision: finishes a prepared transaction.  Succeeds
  /// after an OK `Prepare` except on a certifying engine, whose
  /// re-validation may refuse with kSerializationFailure (participant
  /// already rolled back — see the protocol notes above).
  virtual Status CommitPrepared(TxnId txn) { return Commit(txn); }

  /// Phase 2, abort decision: rolls back a prepared transaction.
  virtual Status AbortPrepared(TxnId txn) { return Abort(txn); }

  /// Transactions prepared but not yet decided — what a recovering
  /// coordinator must resolve (presumed abort: no logged decision means
  /// abort).  Sorted ascending.
  virtual std::vector<TxnId> InDoubtTransactions() const { return {}; }

  /// The history recorded so far.  Reference view for quiescent callers;
  /// use `HistorySnapshot` while sessions are in flight.
  const History& history() const { return recorder_.history(); }

  /// Operation counters.  Reference view for quiescent callers; use
  /// `StatsSnapshot` while sessions are in flight.
  const EngineStats& stats() const { return recorder_.stats(); }

  /// Copies of history / stats taken under the recorder mutex, safe while
  /// other threads are mid-operation.
  History HistorySnapshot() const { return recorder_.HistorySnapshot(); }
  EngineStats StatsSnapshot() const { return recorder_.StatsSnapshot(); }

 protected:
  /// Shared lock-acquisition protocol for lock-based engines: cooperative
  /// `TryAcquire`, or — in blocking mode — `Acquire` parked with the
  /// caller's latch `lk` dropped (and re-taken before returning), so
  /// conflicting sessions can run their releasing operations.  `timeout`
  /// is this call's wait budget (callers redoing an acquire pass the
  /// remaining budget, so one operation never waits longer than the
  /// configured lock-wait timeout in total); non-positive budgets answer
  /// `kWouldBlock` immediately on conflict.  Counts `blocked_ops` on a
  /// conflict answer; on a deadlock verdict counts `deadlock_aborts` and
  /// runs `rollback_requester` under the re-taken latch before returning.
  ///
  /// `Lk` is any lock wrapper with unlock()/lock() — `std::unique_lock`
  /// over a mutex, or `std::shared_lock` over the reader-writer table
  /// latch the stock engines hold during operation bodies.
  template <typename Lk>
  Result<LockHandle> AcquireLockWithProtocol(
      LockManager& lm, Lk& lk, const LockSpec& spec,
      std::chrono::milliseconds timeout,
      const std::function<void()>& rollback_requester) {
    Result<LockHandle> r = [&]() -> Result<LockHandle> {
      if (!concurrency_.blocking_locks) return lm.TryAcquire(spec);
      lk.unlock();
      auto waited =
          lm.Acquire(spec, timeout, concurrency_.deadlock_check_interval);
      lk.lock();
      return waited;
    }();
    if (r.ok()) return r;
    if (r.status().IsWouldBlock()) {
      recorder_.Count(&EngineStats::blocked_ops);
      return r;
    }
    if (r.status().IsDeadlock()) {
      recorder_.Count(&EngineStats::deadlock_aborts);
      Trace(spec.txn, obs::TraceEventType::kAbort,
            obs::AbortReason::kDeadlockVictim, r.status().message());
      rollback_requester();
    }
    return r;
  }

  /// Records a tracer event when a tracer is attached (one branch when
  /// not — tracing is opt-in and off the hot path by default).
  void Trace(TxnId txn, obs::TraceEventType type,
             obs::AbortReason reason = obs::AbortReason::kNone,
             std::string detail = std::string()) const {
    if (tracer_ != nullptr) {
      tracer_->Record(txn, type, reason, std::move(detail));
    }
  }

  EngineRecorder recorder_;
  EngineConcurrency concurrency_;
  VersionGcPolicy gc_policy_;
  WalSink* wal_ = nullptr;  ///< not owned; outlives the engine
  obs::TxnTracer* tracer_ = nullptr;  ///< not owned; outlives the engine
};

}  // namespace critique

#endif  // CRITIQUE_ENGINE_ENGINE_H_
