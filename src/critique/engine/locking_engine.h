#ifndef CRITIQUE_ENGINE_LOCKING_ENGINE_H_
#define CRITIQUE_ENGINE_LOCKING_ENGINE_H_

#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "critique/engine/engine.h"
#include "critique/lock/lock_manager.h"
#include "critique/storage/sv_store.h"

namespace critique {

/// \brief The lock scheduler of Table 2, parameterized by `LockingPolicy`.
///
/// One class implements Degree 0, Locking READ UNCOMMITTED (Degree 1),
/// Locking READ COMMITTED (Degree 2), Cursor Stability, Locking REPEATABLE
/// READ and Locking SERIALIZABLE (Degree 3) — the rows of Table 2 differ
/// only in lock scopes and durations, which is the paper's point
/// (Remark 6: the phenomena-based levels of Table 3 are "disguised
/// redefinitions of locking behavior").
///
/// Writes always take item Write locks whose before/after images make
/// predicate-lock conflicts phantom-precise; rollback restores
/// before-images in LIFO order (possible exactly because long write locks
/// preclude P0, Section 3).
///
/// Thread-safe per the `Engine` contract, without an engine-wide latch:
/// a reader-writer latch over the transaction table (`table_mu_`, held
/// shared by operation bodies, exclusive only by `Begin` and admin scans)
/// plus a store latch (`store_mu_`) and the independently striped lock
/// table.  Logical isolation between sessions comes from the locks
/// themselves — Table 2's point — so disjoint sessions no longer queue
/// behind one mutex; in blocking mode lock waits run with the table latch
/// dropped, so concurrent sessions progress (and release locks) while a
/// thread is parked in the lock manager.
class LockingEngine : public Engine {
 public:
  /// Creates an engine for one of the Table 2 levels (asserts otherwise).
  explicit LockingEngine(IsolationLevel level);

  IsolationLevel level() const override { return level_; }

  /// Also applies `c.lock_stripes` to the engine's lock table (legal here:
  /// SetConcurrency runs before any session starts, so the table is idle).
  void SetConcurrency(EngineConcurrency c) override {
    Engine::SetConcurrency(c);
    (void)lock_manager_.SetStripeCount(c.lock_stripes);
    lock_manager_.SetWakeupHook(concurrency().lock_wakeup);
  }

  Status Load(const ItemId& id, Row row) override;
  Status Begin(TxnId txn) override;

  /// Per-transaction isolation: any Table 2 row may be declared — the
  /// rows differ only in lock scopes and durations (the paper's Remark 6),
  /// so one lock table serves every mix.  The transaction runs under
  /// `PolicyFor(level)` while its neighbours keep their own policies;
  /// since writes take long X locks at every level above Degree 0,
  /// a weak transaction still cannot break a Degree 3 neighbour's reads.
  Status BeginWithLevel(TxnId txn, IsolationLevel level) override;

  Result<std::optional<Row>> Read(TxnId txn, const ItemId& id) override;
  Result<std::vector<std::pair<ItemId, Row>>> ReadPredicate(
      TxnId txn, const std::string& name, const Predicate& pred) override;
  Status Write(TxnId txn, const ItemId& id, Row row) override;
  Status Insert(TxnId txn, const ItemId& id, Row row) override;
  Status Delete(TxnId txn, const ItemId& id) override;
  Result<size_t> UpdateWhere(
      TxnId txn, const std::string& name, const Predicate& pred,
      const std::function<Row(const Row&)>& transform) override;
  Result<size_t> DeleteWhere(TxnId txn, const std::string& name,
                             const Predicate& pred) override;
  Result<std::optional<Row>> FetchCursor(TxnId txn, const ItemId& id) override;
  Result<std::optional<Row>> FetchCursorNamed(TxnId txn,
                                              const std::string& cursor,
                                              const ItemId& id) override;
  Status WriteCursor(TxnId txn, const ItemId& id, Row row) override;
  Status CloseCursor(TxnId txn) override;
  Status CloseCursorNamed(TxnId txn, const std::string& cursor) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;

  // 2PC participant protocol: `Prepare` pins the transaction in doubt with
  // every lock still held (a lock scheduler's commit cannot fail, so
  // prepare validates nothing but freezes the transaction until the
  // coordinator decides); the locks held across the in-doubt window are
  // exactly what keeps other transactions from observing or clobbering
  // uncommitted state.
  Status Prepare(TxnId txn) override;
  Status CommitPrepared(TxnId txn) override;
  Status AbortPrepared(TxnId txn) override;
  std::vector<TxnId> InDoubtTransactions() const override;

  /// The active policy (a row of Table 2).
  const LockingPolicy& policy() const { return policy_; }

  /// Lock-manager counters for benchmarks.
  LockStats lock_stats() const { return lock_manager_.stats(); }

  /// Base gauges plus lock-table counters and wait/park histograms.
  void RegisterMetrics(obs::MetricsRegistry& reg,
                       const std::string& prefix) override;

  /// Lock holders, waiters, and waits-for edges (stall introspection).
  std::string DebugDump() const override;

  /// Current store contents (post-run verification).
  const SingleVersionStore& store() const { return store_; }

 private:
  struct CursorState {
    ItemId item;
    LockHandle lock = 0;
  };

  struct TxnState {
    bool active = false;
    /// The Table 2 row this transaction runs under (its declared level's
    /// policy; the engine's own row unless BeginWithLevel said otherwise).
    LockingPolicy policy;
    /// Prepared (in-doubt) by a 2PC coordinator: locks held, undo kept,
    /// every operation but CommitPrepared/AbortPrepared refused.
    bool prepared = false;
    std::vector<UndoRecord> undo;
    /// Redo after-images (nullopt = tombstone), collected only while a WAL
    /// sink is attached; drained into a kWriteSet record at Prepare or
    /// Commit.  Owner-thread-only, like `undo`.
    std::map<ItemId, std::optional<Row>> redo;
    /// One entry per open cursor; "" is the default cursor.  Each holds
    /// the read lock on its current item under Cursor Stability.
    std::map<std::string, CursorState> cursors;
  };

  /// The table-latch guard every operation body holds (shared: sessions
  /// only read the registry and mutate their own entry).
  using TableLock = std::shared_lock<std::shared_mutex>;

  /// Registers `txn` under `policy`.  Requires `table_mu_` exclusive.
  Status BeginLocked(TxnId txn, LockingPolicy policy);

  /// Status when `txn` is not active (kTransactionAborted) or is prepared
  /// (kFailedPrecondition — in doubt, only the coordinator may end it) or
  /// OK.  Requires `table_mu_` (any mode).
  Status CheckActive(TxnId txn) const;

  /// Status unless `txn` is prepared (in doubt).  Requires `table_mu_`.
  Status CheckPrepared(TxnId txn) const;

  /// Rolls `txn` back: undo LIFO, release locks, record `a<txn>`.
  /// Requires `table_mu_` shared; takes `store_mu_` internally.
  void Rollback(TxnId txn);

  /// One committed read of the store (takes `store_mu_` shared).
  std::optional<Row> StoreGet(const ItemId& id) const;

  /// Acquire with engine-side handling: on kDeadlock the transaction is
  /// rolled back before the status is returned.  In blocking mode the wait
  /// runs with `lk` (the shared table latch) dropped, so store/txn state
  /// read before the call may be stale afterwards — re-read under the
  /// re-taken latch.
  Result<LockHandle> Acquire(TableLock& lk, TxnId txn, const LockSpec& spec);

  /// Shared write path for Write / Insert / Delete / WriteCursor
  /// (`new_row == nullopt` deletes).  Requires `lk` held on entry.
  Status DoWrite(TableLock& lk, TxnId txn, const ItemId& id,
                 std::optional<Row> new_row, Action::Type type,
                 bool is_insert);

  /// Shared bulk-write path for UpdateWhere / DeleteWhere.  Takes a long
  /// Write predicate lock, then applies `transform` (nullopt result
  /// deletes) to every matching row under one recorded `w<t>[P]` action.
  Result<size_t> DoPredicateWrite(
      TableLock& lk, TxnId txn, const std::string& name,
      const Predicate& pred,
      const std::function<std::optional<Row>(const Row&)>& transform);

  /// Shared read path for Read / FetchCursor (`cursor` names the cursor
  /// when `type` is kCursorRead).  Requires `lk` held on entry.
  Result<std::optional<Row>> DoRead(TableLock& lk, TxnId txn,
                                    const ItemId& id, Action::Type type,
                                    const std::string& cursor = "");

  IsolationLevel level_;
  LockingPolicy policy_;
  /// Reader-writer latch over the transaction-table registry: operation
  /// bodies hold it shared (each session mutates only its own entry —
  /// "one session per thread"); `Begin` (insert) and
  /// `InDoubtTransactions` (cross-session scan) take it exclusive.
  /// Logical isolation is the lock manager's job, not this latch's.
  mutable std::shared_mutex table_mu_;
  /// Latch over the physical store (reads shared, mutations exclusive);
  /// which sessions may touch which items is already decided by the item
  /// and predicate locks.  Ordered after `table_mu_`.
  mutable std::shared_mutex store_mu_;
  SingleVersionStore store_;
  LockManager lock_manager_;
  std::map<TxnId, TxnState> txns_;
};

}  // namespace critique

#endif  // CRITIQUE_ENGINE_LOCKING_ENGINE_H_
