#include "critique/storage/sv_store.h"

namespace critique {

std::optional<Row> SingleVersionStore::Get(const ItemId& id) const {
  auto it = rows_.find(id);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

bool SingleVersionStore::Contains(const ItemId& id) const {
  return rows_.find(id) != rows_.end();
}

std::optional<Row> SingleVersionStore::Put(const ItemId& id, Row row) {
  auto it = rows_.find(id);
  std::optional<Row> before;
  if (it != rows_.end()) {
    before = it->second;
    it->second = std::move(row);
  } else {
    rows_.emplace(id, std::move(row));
  }
  return before;
}

std::optional<Row> SingleVersionStore::Erase(const ItemId& id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) return std::nullopt;
  std::optional<Row> before = std::move(it->second);
  rows_.erase(it);
  return before;
}

void SingleVersionStore::ApplyUndo(const UndoRecord& undo) {
  if (undo.before.has_value()) {
    rows_[undo.item] = *undo.before;
  } else {
    rows_.erase(undo.item);
  }
}

std::vector<std::pair<ItemId, Row>> SingleVersionStore::Scan(
    const Predicate& pred) const {
  std::vector<std::pair<ItemId, Row>> out;
  for (const auto& [id, row] : rows_) {
    if (pred.Covers(id, row)) out.emplace_back(id, row);
  }
  return out;
}

std::vector<std::pair<ItemId, Row>> SingleVersionStore::Dump() const {
  return {rows_.begin(), rows_.end()};
}

}  // namespace critique
