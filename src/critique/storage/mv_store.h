#ifndef CRITIQUE_STORAGE_MV_STORE_H_
#define CRITIQUE_STORAGE_MV_STORE_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "critique/storage/version_store.h"

namespace critique {

/// \brief The reference version-store backend: multiversion storage in the
/// style of Reed [REE] over an ordered `std::map` of version vectors —
/// each item keeps a chain of versions; readers pick the version visible
/// at their snapshot timestamp, writers append uncommitted versions that
/// commit or vanish atomically with their transaction.
///
/// Simple and observably correct by construction (key order and chain
/// order are the container orders); every other backend is judged against
/// it by the conformance battery.  See `VersionStore` for the contract,
/// including the external-synchronization rule.
class MapVersionStore : public VersionStore {
 public:
  StorageBackend backend() const override { return StorageBackend::kMap; }

  void Bootstrap(const ItemId& id, Row row, Timestamp ts) override;
  std::optional<Row> Read(const ItemId& id, Timestamp ts,
                          TxnId txn) const override;
  std::optional<Version> ReadVersionInfo(const ItemId& id, Timestamp ts,
                                         TxnId txn) const override;
  void Write(const ItemId& id, Row row, TxnId txn) override;
  void Delete(const ItemId& id, TxnId txn) override;
  bool HasPendingWrite(const ItemId& id, TxnId txn) const override;
  bool HasConcurrentPendingWrite(const ItemId& id, TxnId txn) const override;
  Timestamp LatestCommitTs(const ItemId& id) const override;

  using VersionStore::AbortTxn;
  using VersionStore::CommitTxn;
  void CommitTxn(TxnId txn, Timestamp commit_ts,
                 const std::set<ItemId>& items) override;
  void AbortTxn(TxnId txn, const std::set<ItemId>& items) override;

  std::vector<std::pair<ItemId, Row>> Scan(const Predicate& pred,
                                           Timestamp ts,
                                           TxnId txn) const override;
  size_t GarbageCollect(Timestamp watermark) override;
  size_t VersionCount() const override;
  size_t MaxChainLength() const override;
  size_t ItemCount() const override { return chains_.size(); }
  std::vector<Version> Chain(const ItemId& id) const override;

 protected:
  void CommitTxnScan(TxnId txn, Timestamp commit_ts) override;
  void AbortTxnScan(TxnId txn) override;

 private:
  const Version* Visible(const ItemId& id, Timestamp ts, TxnId txn) const;

  std::map<ItemId, std::vector<Version>> chains_;
};

/// Historical name of the reference backend, kept so existing clients
/// (tests, benches, paper schedules) compile unchanged.
using MultiVersionStore = MapVersionStore;

}  // namespace critique

#endif  // CRITIQUE_STORAGE_MV_STORE_H_
