#ifndef CRITIQUE_STORAGE_MV_STORE_H_
#define CRITIQUE_STORAGE_MV_STORE_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "critique/common/clock.h"
#include "critique/history/action.h"
#include "critique/model/predicate.h"
#include "critique/model/row.h"

namespace critique {

/// \brief One version in an item's version chain.
struct Version {
  Row row;
  bool tombstone = false;          ///< a committed/pending delete
  TxnId creator = kInitialTxn;     ///< transaction that produced it
  Timestamp commit_ts = kInvalidTimestamp;  ///< 0 while uncommitted

  bool committed() const { return commit_ts != kInvalidTimestamp; }
};

/// \brief Multiversion store in the style of Reed [REE]: each item keeps a
/// chain of versions; readers pick the version visible at their snapshot
/// timestamp, writers append uncommitted versions that commit or vanish
/// atomically with their transaction.
///
/// Visibility for a reader (txn `t`, snapshot `ts`): `t`'s own pending
/// version if present, else the committed version with the largest
/// commit_ts <= ts.  "Updates by other transactions active after the
/// transaction Start-Timestamp are invisible to the transaction"
/// (Section 4.2).
///
/// Not internally synchronized; engines serialize access.
class MultiVersionStore {
 public:
  /// Installs an initial (commit_ts = 1 by convention of the owning
  /// engine) version; used for database setup.
  void Bootstrap(const ItemId& id, Row row, Timestamp ts);

  /// The row visible to `txn` at snapshot `ts` (nullopt when absent or
  /// deleted at that snapshot).
  std::optional<Row> Read(const ItemId& id, Timestamp ts, TxnId txn) const;

  /// The visible version itself, tombstones included (for engines that
  /// record version subscripts); nullopt when no version is visible.
  std::optional<Version> ReadVersionInfo(const ItemId& id, Timestamp ts,
                                         TxnId txn) const;

  /// Appends (or replaces) `txn`'s pending version of `id`.
  void Write(const ItemId& id, Row row, TxnId txn);

  /// Appends (or replaces) `txn`'s pending tombstone of `id`.
  void Delete(const ItemId& id, TxnId txn);

  /// True when `txn` has a pending version of `id`.
  bool HasPendingWrite(const ItemId& id, TxnId txn) const;

  /// True when some *other* transaction has a pending version of `id`
  /// (the eager write-write conflict probe).
  bool HasConcurrentPendingWrite(const ItemId& id, TxnId txn) const;

  /// Largest commit timestamp of any committed version of `id`
  /// (kInvalidTimestamp when none): the First-Committer-Wins probe —
  /// a conflict exists when this exceeds the writer's start timestamp.
  Timestamp LatestCommitTs(const ItemId& id) const;

  /// Stamps all of `txn`'s pending versions with `commit_ts`.  The
  /// hint-free overload scans every chain; engines that track the
  /// transaction's write set pass it so commit costs O(|write set|), not
  /// O(items in the store) — the hot-path difference `bench_mvcc_store`
  /// measures.
  void CommitTxn(TxnId txn, Timestamp commit_ts);
  void CommitTxn(TxnId txn, Timestamp commit_ts, const std::set<ItemId>& items);

  /// Discards all of `txn`'s pending versions (same hint contract as
  /// `CommitTxn`).
  void AbortTxn(TxnId txn);
  void AbortTxn(TxnId txn, const std::set<ItemId>& items);

  /// Items (id, row) visible to (`txn`, `ts`) that satisfy `pred`,
  /// in key order.
  std::vector<std::pair<ItemId, Row>> Scan(const Predicate& pred,
                                           Timestamp ts, TxnId txn) const;

  /// Drops versions no longer visible to any snapshot >= `watermark`
  /// (keeps, per item, the newest committed version at or below the
  /// watermark, everything newer, and all pending versions).  A chain
  /// whose only survivor is a committed tombstone at or below the
  /// watermark is dropped entirely — the item reads as absent at every
  /// surviving snapshot either way, so deleted keys stop pinning memory.
  /// Returns the number of versions discarded.
  size_t GarbageCollect(Timestamp watermark);

  /// Total number of stored versions (across all items).
  size_t VersionCount() const;

  /// Length of the longest version chain (0 when empty) — the GC
  /// boundedness metric benches and tests assert on.
  size_t MaxChainLength() const;

  /// Number of distinct items with at least one version.
  size_t ItemCount() const { return chains_.size(); }

  /// The full chain for an item (diagnostics/tests); empty when unknown.
  std::vector<Version> Chain(const ItemId& id) const;

 private:
  const Version* Visible(const ItemId& id, Timestamp ts, TxnId txn) const;

  std::map<ItemId, std::vector<Version>> chains_;
};

}  // namespace critique

#endif  // CRITIQUE_STORAGE_MV_STORE_H_
