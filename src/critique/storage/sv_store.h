#ifndef CRITIQUE_STORAGE_SV_STORE_H_
#define CRITIQUE_STORAGE_SV_STORE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "critique/model/predicate.h"
#include "critique/model/row.h"

namespace critique {

/// One undo record: restoring `before` undoes a write to `item`
/// (`before == nullopt` means the item did not exist, so undo erases it).
struct UndoRecord {
  ItemId item;
  std::optional<Row> before;
};

/// \brief The single-version in-memory store under the locking engines.
///
/// Holds exactly one current row per item.  Mutators return the
/// before-image so the caller (the engine's per-transaction undo log) can
/// roll back on abort by restoring before-images in LIFO order — the
/// recovery discipline whose impossibility under Dirty Writes motivates P0
/// (Section 3: "you don't want to undo w1[x] by restoring its
/// before-image...").
///
/// Not internally synchronized; engines serialize access.
class SingleVersionStore {
 public:
  /// Current row, or nullopt when absent.
  std::optional<Row> Get(const ItemId& id) const;

  /// True when the item exists.
  bool Contains(const ItemId& id) const;

  /// Upserts and returns the before-image.
  std::optional<Row> Put(const ItemId& id, Row row);

  /// Erases and returns the before-image (nullopt when it did not exist).
  std::optional<Row> Erase(const ItemId& id);

  /// Applies one undo record (restore or erase).
  void ApplyUndo(const UndoRecord& undo);

  /// All items satisfying `pred`, in key order.
  std::vector<std::pair<ItemId, Row>> Scan(const Predicate& pred) const;

  /// Number of items present.
  size_t size() const { return rows_.size(); }

  /// Every item in key order (diagnostics).
  std::vector<std::pair<ItemId, Row>> Dump() const;

 private:
  std::map<ItemId, Row> rows_;
};

}  // namespace critique

#endif  // CRITIQUE_STORAGE_SV_STORE_H_
