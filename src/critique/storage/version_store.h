#ifndef CRITIQUE_STORAGE_VERSION_STORE_H_
#define CRITIQUE_STORAGE_VERSION_STORE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "critique/common/clock.h"
#include "critique/history/action.h"
#include "critique/model/predicate.h"
#include "critique/model/row.h"

namespace critique {

/// \brief One version in an item's version chain.
struct Version {
  Row row;
  bool tombstone = false;          ///< a committed/pending delete
  TxnId creator = kInitialTxn;     ///< transaction that produced it
  Timestamp commit_ts = kInvalidTimestamp;  ///< 0 while uncommitted

  bool committed() const { return commit_ts != kInvalidTimestamp; }
};

/// Which physical version-store implementation a multiversion engine runs
/// on.  Selected through `DbOptions::storage_backend` and carried to the
/// engines by `EngineConcurrency`; engines without version chains accept
/// and ignore it.
enum class StorageBackend {
  /// `MapVersionStore`: ordered `std::map` of version vectors — the
  /// reference backend every other one must agree with observation for
  /// observation.
  kMap,
  /// `HashVersionStore`: open-addressing hash index with cache-line-
  /// aligned bucket clusters and inline hot version slots — the
  /// cache-conscious backend for point-read-heavy workloads.
  kHash,
};

/// Short stable token for a backend: "map" / "hash" (bench flags, HISTEX
/// config lines, JSON keys).
const char* StorageBackendName(StorageBackend backend);

/// Inverse of `StorageBackendName`; nullopt on an unknown token.
std::optional<StorageBackend> ParseStorageBackend(const std::string& token);

/// Every registered backend, in a stable order — what the conformance
/// battery and the bench sweep iterate over.
const std::vector<StorageBackend>& AllStorageBackends();

/// \brief The version-store SPI: the storage surface every multiversion
/// engine (Snapshot Isolation / SSI, Oracle Read Consistency) drives,
/// extracted from the original `MultiVersionStore` so backends compete
/// under `bench_mvcc_store` the way the Engine SPI lets isolation levels
/// compete.
///
/// Semantics every backend must honor bit-for-bit (the conformance
/// battery in tests/version_store_test.cc checks them against each):
///
///  * Visibility for a reader (txn `t`, snapshot `ts`): `t`'s own pending
///    version if present, else the committed version with the largest
///    commit_ts <= ts — "updates by other transactions active after the
///    transaction Start-Timestamp are invisible" (Section 4.2).
///  * `Scan` returns matches in ascending key order, whatever the
///    backend's physical layout.
///  * `GarbageCollect(watermark)` keeps, per item, the newest committed
///    version at or below the watermark, everything newer, and all
///    pending versions; a chain whose only survivor is a committed
///    tombstone at or below the watermark is dropped entirely.
///  * The hinted `CommitTxn`/`AbortTxn` overloads are O(|write set|); a
///    hinted abort erases a chain it emptied, so aborted inserts stop
///    occupying the index.
///
/// Synchronization contract: a store is NOT internally synchronized;
/// engines serialize access (the stock engines hold a reader-writer
/// `store_mu_` — reads and scans shared, mutation and GC exclusive).  The
/// unhinted-operation counters are the one exception: they are relaxed
/// atomics so metrics collectors may read them under the shared latch.
class VersionStore {
 public:
  virtual ~VersionStore() = default;

  /// Which backend this store is (factory round-trip + diagnostics).
  virtual StorageBackend backend() const = 0;

  /// Installs an initial (commit_ts = 1 by convention of the owning
  /// engine) version; used for database setup.
  virtual void Bootstrap(const ItemId& id, Row row, Timestamp ts) = 0;

  /// The row visible to `txn` at snapshot `ts` (nullopt when absent or
  /// deleted at that snapshot).
  virtual std::optional<Row> Read(const ItemId& id, Timestamp ts,
                                  TxnId txn) const = 0;

  /// The visible version itself, tombstones included (for engines that
  /// record version subscripts); nullopt when no version is visible.
  virtual std::optional<Version> ReadVersionInfo(const ItemId& id,
                                                 Timestamp ts,
                                                 TxnId txn) const = 0;

  /// Appends (or replaces) `txn`'s pending version of `id`.
  virtual void Write(const ItemId& id, Row row, TxnId txn) = 0;

  /// Appends (or replaces) `txn`'s pending tombstone of `id`.
  virtual void Delete(const ItemId& id, TxnId txn) = 0;

  /// True when `txn` has a pending version of `id`.
  virtual bool HasPendingWrite(const ItemId& id, TxnId txn) const = 0;

  /// True when some *other* transaction has a pending version of `id`
  /// (the eager write-write conflict probe).
  virtual bool HasConcurrentPendingWrite(const ItemId& id,
                                         TxnId txn) const = 0;

  /// Largest commit timestamp of any committed version of `id`
  /// (kInvalidTimestamp when none): the First-Committer-Wins probe —
  /// a conflict exists when this exceeds the writer's start timestamp.
  virtual Timestamp LatestCommitTs(const ItemId& id) const = 0;

  /// Stamps all of `txn`'s pending versions of `items` with `commit_ts`:
  /// O(|write set|), the commit fast path every engine call site uses.
  virtual void CommitTxn(TxnId txn, Timestamp commit_ts,
                         const std::set<ItemId>& items) = 0;

  /// Discards all of `txn`'s pending versions of `items`, erasing chains
  /// it emptied (same hint contract as the hinted `CommitTxn`).
  virtual void AbortTxn(TxnId txn, const std::set<ItemId>& items) = 0;

  /// Hint-free commit: scans EVERY chain for `txn`'s pending versions —
  /// O(items in the store), the slow path the write-set hint exists to
  /// avoid.  Kept for callers that genuinely have no write set (none of
  /// the stock engines; they all track one), counted so regressions are
  /// visible (`unhinted_commits`, exported by the engines as
  /// `storage.unhinted_commits`), and debug-asserted against once a store
  /// is wired into an engine (`DiscourageUnhinted`).
  void CommitTxn(TxnId txn, Timestamp commit_ts) {
    unhinted_commits_.fetch_add(1, std::memory_order_relaxed);
    assert(!discourage_unhinted_ &&
           "unhinted CommitTxn full-store scan: pass the write set");
    CommitTxnScan(txn, commit_ts);
  }

  /// Hint-free abort: same full-scan contract and accounting as the
  /// hint-free `CommitTxn`.  (Unlike the hinted overload it never erases
  /// emptied chains — without the hint it cannot know which to revisit.)
  void AbortTxn(TxnId txn) {
    unhinted_aborts_.fetch_add(1, std::memory_order_relaxed);
    assert(!discourage_unhinted_ &&
           "unhinted AbortTxn full-store scan: pass the write set");
    AbortTxnScan(txn);
  }

  /// Items (id, row) visible to (`txn`, `ts`) that satisfy `pred`,
  /// in key order.
  virtual std::vector<std::pair<ItemId, Row>> Scan(const Predicate& pred,
                                                   Timestamp ts,
                                                   TxnId txn) const = 0;

  /// Drops versions no longer visible to any snapshot >= `watermark`
  /// (see the class contract).  Returns the number of versions discarded.
  virtual size_t GarbageCollect(Timestamp watermark) = 0;

  /// Total number of stored versions (across all items).
  virtual size_t VersionCount() const = 0;

  /// Length of the longest version chain (0 when empty) — the GC
  /// boundedness metric benches and tests assert on.
  virtual size_t MaxChainLength() const = 0;

  /// Number of distinct items with at least one version slot (a chain an
  /// unhinted abort emptied still counts until GC or a hinted abort
  /// retires it).
  virtual size_t ItemCount() const = 0;

  /// The full chain for an item, oldest first (diagnostics/tests); empty
  /// when unknown.
  virtual std::vector<Version> Chain(const ItemId& id) const = 0;

  /// Marks this store as engine-owned: every commit/abort is expected to
  /// carry its write-set hint from here on, and the hint-free overloads
  /// assert in debug builds (they still work — and count — in release).
  /// The engines call this when they adopt a store.
  void DiscourageUnhinted() { discourage_unhinted_ = true; }

  /// How many hint-free (full-scan) commits/aborts this store has served.
  uint64_t unhinted_commits() const {
    return unhinted_commits_.load(std::memory_order_relaxed);
  }
  uint64_t unhinted_aborts() const {
    return unhinted_aborts_.load(std::memory_order_relaxed);
  }

 protected:
  /// The full-store scans behind the hint-free overloads.
  virtual void CommitTxnScan(TxnId txn, Timestamp commit_ts) = 0;
  virtual void AbortTxnScan(TxnId txn) = 0;

 private:
  std::atomic<uint64_t> unhinted_commits_{0};
  std::atomic<uint64_t> unhinted_aborts_{0};
  bool discourage_unhinted_ = false;
};

/// Builds a fresh, empty store of the given backend.
std::unique_ptr<VersionStore> MakeVersionStore(StorageBackend backend);

}  // namespace critique

#endif  // CRITIQUE_STORAGE_VERSION_STORE_H_
