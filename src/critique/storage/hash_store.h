#ifndef CRITIQUE_STORAGE_HASH_STORE_H_
#define CRITIQUE_STORAGE_HASH_STORE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "critique/storage/version_store.h"

namespace critique {

/// \brief The cache-conscious version-store backend: an open-addressing
/// hash index over per-item version chains, in the style of a chess
/// engine's transposition table.
///
/// Layout:
///
///  * The index is a power-of-two array of fixed-size, cache-line-aligned
///    *bucket clusters* (64 bytes = 4 slots of fingerprint + entry
///    index).  A lookup computes one splitmix64-finalized hash of the
///    item id, lands on a cluster, and scans its 4 slots in one cache
///    line; collisions probe linearly cluster-by-cluster, so every probe
///    step costs exactly one line.  Full-key comparison only runs on a
///    64-bit fingerprint match, so misses almost never touch the item
///    entries at all.
///  * Each item entry keeps its newest versions in a small *inline hot
///    array* (the versions point reads and FCW probes actually inspect)
///    and spills older history into an overflow vector — deep chains under
///    `kRetainAll` stay exact, while the common bounded-chain case after
///    watermark GC fits entirely in the hot slots.
///  * Reclamation rides the engines' existing `GarbageCollectVersions`
///    epoch: the GC watermark plays the role of the transposition table's
///    generation counter.  A pass prunes chains in place, retires chains
///    that fold to a lone committed tombstone, marks their index slots
///    reusable, and recycles their entries — no separate sweep.
///
/// Observable behavior is identical to `MapVersionStore` (the conformance
/// battery in tests/version_store_test.cc holds both to the same
/// answers); `Scan` sorts its matches, so key order survives the hashed
/// layout.  Not internally synchronized — see the `VersionStore`
/// contract.
class HashVersionStore : public VersionStore {
 public:
  HashVersionStore();

  StorageBackend backend() const override { return StorageBackend::kHash; }

  void Bootstrap(const ItemId& id, Row row, Timestamp ts) override;
  std::optional<Row> Read(const ItemId& id, Timestamp ts,
                          TxnId txn) const override;
  std::optional<Version> ReadVersionInfo(const ItemId& id, Timestamp ts,
                                         TxnId txn) const override;
  void Write(const ItemId& id, Row row, TxnId txn) override;
  void Delete(const ItemId& id, TxnId txn) override;
  bool HasPendingWrite(const ItemId& id, TxnId txn) const override;
  bool HasConcurrentPendingWrite(const ItemId& id, TxnId txn) const override;
  Timestamp LatestCommitTs(const ItemId& id) const override;

  using VersionStore::AbortTxn;
  using VersionStore::CommitTxn;
  void CommitTxn(TxnId txn, Timestamp commit_ts,
                 const std::set<ItemId>& items) override;
  void AbortTxn(TxnId txn, const std::set<ItemId>& items) override;

  std::vector<std::pair<ItemId, Row>> Scan(const Predicate& pred,
                                           Timestamp ts,
                                           TxnId txn) const override;
  size_t GarbageCollect(Timestamp watermark) override;
  size_t VersionCount() const override;
  size_t MaxChainLength() const override;
  size_t ItemCount() const override { return live_items_; }
  std::vector<Version> Chain(const ItemId& id) const override;

 protected:
  void CommitTxnScan(TxnId txn, Timestamp commit_ts) override;
  void AbortTxnScan(TxnId txn) override;

 private:
  /// Slots per 64-byte cluster: 4 x (8-byte fingerprint + 4-byte entry
  /// index) = 48 bytes of payload in one cache line.
  static constexpr size_t kClusterSlots = 4;
  /// `entry` sentinel: never occupied — probing stops here.
  static constexpr uint32_t kEmptySlot = 0xffffffffu;
  /// `entry` sentinel: occupied once, since vacated — probing continues,
  /// inserts may reuse it (the open-addressing deletion marker).
  static constexpr uint32_t kVacatedSlot = 0xfffffffeu;

  struct alignas(64) Cluster {
    uint64_t fp[kClusterSlots];
    uint32_t entry[kClusterSlots];
  };
  static_assert(sizeof(Cluster) == 64, "one cluster = one cache line");

  /// Newest versions kept inline with the entry header; chains at most
  /// this long (the steady state under watermark GC) never touch the
  /// overflow heap.
  static constexpr size_t kHotSlots = 3;

  struct ItemEntry {
    ItemId id;
    uint64_t fp = 0;
    bool live = false;
    /// The logical chain, oldest first, is `cold` then `hot[0..hot_count)`.
    uint32_t hot_count = 0;
    Version hot[kHotSlots];
    std::vector<Version> cold;

    size_t chain_size() const { return cold.size() + hot_count; }
  };

  /// splitmix64-finalized hash of an item id (never 0; 0 marks a slot
  /// that has no fingerprint).
  static uint64_t HashId(const ItemId& id);

  /// Index lookup; kEmptySlot when absent.
  uint32_t FindEntry(const ItemId& id, uint64_t fp) const;
  const ItemEntry* Find(const ItemId& id) const;

  /// Lookup-or-create (fresh entries start with an empty chain).
  ItemEntry& FindOrCreate(const ItemId& id);

  /// Inserts (fp, entry_index) into the index; assumes the id is absent.
  void IndexInsert(uint64_t fp, uint32_t entry_index);

  /// Marks the id's index slot vacated and recycles its entry.
  void EraseEntry(const ItemId& id, uint64_t fp);

  /// Doubles the cluster array and reinserts every live entry (vacated
  /// markers do not survive a rehash).
  void Rehash(size_t clusters);

  /// Appends a version at the newest end, spilling the oldest hot slot to
  /// the overflow vector when the hot array is full.
  static void Append(ItemEntry& e, Version v);

  /// `txn`'s pending version in `e`, or nullptr (newest first, matching
  /// the reference backend's reverse scan).
  static Version* OwnPending(ItemEntry& e, TxnId txn);
  static const Version* OwnPending(const ItemEntry& e, TxnId txn);

  /// Visible version for (`ts`, `txn`) per the SPI visibility rule.
  static const Version* VisibleIn(const ItemEntry& e, Timestamp ts, TxnId txn);

  /// Replaces `e`'s chain with `chain` (oldest first), repacking the
  /// newest versions into the hot slots.
  static void SetChain(ItemEntry& e, std::vector<Version> chain);

  /// Drops `txn`'s pending versions from `e`; returns how many went.
  static size_t DropPending(ItemEntry& e, TxnId txn);

  std::vector<Cluster> clusters_;
  uint64_t cluster_mask_ = 0;
  /// Occupied + vacated index slots (the load-factor numerator: vacated
  /// slots still lengthen probe sequences until a rehash reclaims them).
  size_t used_slots_ = 0;
  size_t live_items_ = 0;

  std::vector<ItemEntry> entries_;
  std::vector<uint32_t> free_entries_;
};

}  // namespace critique

#endif  // CRITIQUE_STORAGE_HASH_STORE_H_
