#include "critique/storage/hash_store.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace critique {
namespace {

constexpr size_t kInitialClusters = 64;  // 256 slots, one page of index

// Rehash when more than ~3/4 of the slots are occupied or vacated: past
// that, linear probe sequences grow superlinearly and the "one cache line
// per probe step" promise stops holding.
bool OverLoaded(size_t used, size_t clusters, size_t slots_per_cluster) {
  return used * 4 > clusters * slots_per_cluster * 3;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

HashVersionStore::HashVersionStore() { Rehash(kInitialClusters); }

uint64_t HashVersionStore::HashId(const ItemId& id) {
  // FNV-1a over the bytes, then the splitmix64 finalizer to spread the
  // low bits the cluster mask selects.  0 is reserved for "no
  // fingerprint", so it maps to an arbitrary nonzero constant.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : id) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  h = SplitMix64(h);
  return h != 0 ? h : 0x9e3779b97f4a7c15ULL;
}

uint32_t HashVersionStore::FindEntry(const ItemId& id, uint64_t fp) const {
  uint64_t c = fp & cluster_mask_;
  for (size_t probes = 0; probes <= cluster_mask_; ++probes) {
    const Cluster& cl = clusters_[c];
    for (size_t s = 0; s < kClusterSlots; ++s) {
      const uint32_t e = cl.entry[s];
      if (e == kEmptySlot) return kEmptySlot;
      if (e == kVacatedSlot || cl.fp[s] != fp) continue;
      if (entries_[e].id == id) return e;
    }
    c = (c + 1) & cluster_mask_;
  }
  return kEmptySlot;
}

const HashVersionStore::ItemEntry* HashVersionStore::Find(
    const ItemId& id) const {
  const uint32_t e = FindEntry(id, HashId(id));
  return e == kEmptySlot ? nullptr : &entries_[e];
}

void HashVersionStore::IndexInsert(uint64_t fp, uint32_t entry_index) {
  uint64_t c = fp & cluster_mask_;
  for (;;) {
    Cluster& cl = clusters_[c];
    for (size_t s = 0; s < kClusterSlots; ++s) {
      if (cl.entry[s] == kEmptySlot || cl.entry[s] == kVacatedSlot) {
        // A vacated slot is reused but stays counted in `used_slots_`:
        // reusing it never shortens any existing probe sequence.
        if (cl.entry[s] == kEmptySlot) ++used_slots_;
        cl.fp[s] = fp;
        cl.entry[s] = entry_index;
        return;
      }
    }
    c = (c + 1) & cluster_mask_;
  }
}

HashVersionStore::ItemEntry& HashVersionStore::FindOrCreate(const ItemId& id) {
  const uint64_t fp = HashId(id);
  uint32_t e = FindEntry(id, fp);
  if (e != kEmptySlot) return entries_[e];
  if (OverLoaded(used_slots_ + 1, clusters_.size(), kClusterSlots)) {
    Rehash(clusters_.size() * 2);
  }
  if (!free_entries_.empty()) {
    e = free_entries_.back();
    free_entries_.pop_back();
  } else {
    e = static_cast<uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  ItemEntry& entry = entries_[e];
  entry.id = id;
  entry.fp = fp;
  entry.live = true;
  entry.hot_count = 0;
  entry.cold.clear();
  IndexInsert(fp, e);
  ++live_items_;
  return entry;
}

void HashVersionStore::EraseEntry(const ItemId& id, uint64_t fp) {
  uint64_t c = fp & cluster_mask_;
  for (size_t probes = 0; probes <= cluster_mask_; ++probes) {
    Cluster& cl = clusters_[c];
    for (size_t s = 0; s < kClusterSlots; ++s) {
      const uint32_t e = cl.entry[s];
      if (e == kEmptySlot) return;  // not indexed: nothing to do
      if (e == kVacatedSlot || cl.fp[s] != fp) continue;
      if (entries_[e].id != id) continue;
      cl.fp[s] = 0;
      cl.entry[s] = kVacatedSlot;
      entries_[e].live = false;
      entries_[e].cold.clear();
      entries_[e].cold.shrink_to_fit();
      entries_[e].hot_count = 0;
      entries_[e].id.clear();
      free_entries_.push_back(e);
      --live_items_;
      return;
    }
    c = (c + 1) & cluster_mask_;
  }
}

void HashVersionStore::Rehash(size_t clusters) {
  assert((clusters & (clusters - 1)) == 0 && "cluster count: power of two");
  clusters_.assign(clusters, Cluster{});
  for (Cluster& cl : clusters_) {
    for (size_t s = 0; s < kClusterSlots; ++s) {
      cl.fp[s] = 0;
      cl.entry[s] = kEmptySlot;
    }
  }
  cluster_mask_ = clusters - 1;
  used_slots_ = 0;
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    if (entries_[e].live) IndexInsert(entries_[e].fp, e);
  }
}

void HashVersionStore::Append(ItemEntry& e, Version v) {
  if (e.hot_count < kHotSlots) {
    e.hot[e.hot_count++] = std::move(v);
    return;
  }
  // Hot array full: the oldest hot version spills to the overflow vector
  // and the newcomers shift down — newest stays inline.
  e.cold.push_back(std::move(e.hot[0]));
  for (size_t i = 1; i < kHotSlots; ++i) e.hot[i - 1] = std::move(e.hot[i]);
  e.hot[kHotSlots - 1] = std::move(v);
}

Version* HashVersionStore::OwnPending(ItemEntry& e, TxnId txn) {
  for (uint32_t i = e.hot_count; i-- > 0;) {
    Version& v = e.hot[i];
    if (!v.committed() && v.creator == txn) return &v;
  }
  for (size_t i = e.cold.size(); i-- > 0;) {
    Version& v = e.cold[i];
    if (!v.committed() && v.creator == txn) return &v;
  }
  return nullptr;
}

const Version* HashVersionStore::OwnPending(const ItemEntry& e, TxnId txn) {
  return OwnPending(const_cast<ItemEntry&>(e), txn);
}

const Version* HashVersionStore::VisibleIn(const ItemEntry& e, Timestamp ts,
                                           TxnId txn) {
  // Own pending version wins ("the transaction's writes will be reflected
  // in this snapshot").
  if (const Version* own = OwnPending(e, txn)) return own;
  // Latest committed version at or before the snapshot.  The hot slots
  // hold the newest versions, so the answer is almost always inline.
  const Version* best = nullptr;
  for (uint32_t i = 0; i < e.hot_count; ++i) {
    const Version& v = e.hot[i];
    if (!v.committed() || v.commit_ts > ts) continue;
    if (best == nullptr || v.commit_ts > best->commit_ts) best = &v;
  }
  for (const Version& v : e.cold) {
    if (!v.committed() || v.commit_ts > ts) continue;
    if (best == nullptr || v.commit_ts > best->commit_ts) best = &v;
  }
  return best;
}

void HashVersionStore::SetChain(ItemEntry& e, std::vector<Version> chain) {
  const size_t hot = std::min(chain.size(), kHotSlots);
  const size_t cold = chain.size() - hot;
  e.cold.assign(std::make_move_iterator(chain.begin()),
                std::make_move_iterator(chain.begin() +
                                        static_cast<ptrdiff_t>(cold)));
  e.hot_count = static_cast<uint32_t>(hot);
  for (size_t i = 0; i < hot; ++i) e.hot[i] = std::move(chain[cold + i]);
}

size_t HashVersionStore::DropPending(ItemEntry& e, TxnId txn) {
  auto doomed = [txn](const Version& v) {
    return !v.committed() && v.creator == txn;
  };
  size_t dropped = 0;
  // Fast path: the pending version is a hot slot (the overwhelmingly
  // common case — a transaction's own write is the newest thing there).
  bool cold_hit = false;
  for (const Version& v : e.cold) cold_hit = cold_hit || doomed(v);
  if (!cold_hit) {
    uint32_t w = 0;
    for (uint32_t i = 0; i < e.hot_count; ++i) {
      if (doomed(e.hot[i])) {
        ++dropped;
        continue;
      }
      if (w != i) e.hot[w] = std::move(e.hot[i]);
      ++w;
    }
    e.hot_count = w;
    return dropped;
  }
  std::vector<Version> chain = e.cold;
  for (uint32_t i = 0; i < e.hot_count; ++i) chain.push_back(e.hot[i]);
  const size_t before = chain.size();
  chain.erase(std::remove_if(chain.begin(), chain.end(), doomed), chain.end());
  dropped = before - chain.size();
  SetChain(e, std::move(chain));
  return dropped;
}

void HashVersionStore::Bootstrap(const ItemId& id, Row row, Timestamp ts) {
  Version v;
  v.row = std::move(row);
  v.creator = kInitialTxn;
  v.commit_ts = ts;
  Append(FindOrCreate(id), std::move(v));
}

std::optional<Row> HashVersionStore::Read(const ItemId& id, Timestamp ts,
                                          TxnId txn) const {
  const ItemEntry* e = Find(id);
  if (e == nullptr) return std::nullopt;
  const Version* v = VisibleIn(*e, ts, txn);
  if (v == nullptr || v->tombstone) return std::nullopt;
  return v->row;
}

std::optional<Version> HashVersionStore::ReadVersionInfo(const ItemId& id,
                                                         Timestamp ts,
                                                         TxnId txn) const {
  const ItemEntry* e = Find(id);
  if (e == nullptr) return std::nullopt;
  const Version* v = VisibleIn(*e, ts, txn);
  if (v == nullptr) return std::nullopt;
  return *v;
}

void HashVersionStore::Write(const ItemId& id, Row row, TxnId txn) {
  ItemEntry& e = FindOrCreate(id);
  if (Version* own = OwnPending(e, txn)) {
    own->row = std::move(row);
    own->tombstone = false;
    return;
  }
  Version v;
  v.row = std::move(row);
  v.creator = txn;
  Append(e, std::move(v));
}

void HashVersionStore::Delete(const ItemId& id, TxnId txn) {
  ItemEntry& e = FindOrCreate(id);
  if (Version* own = OwnPending(e, txn)) {
    own->tombstone = true;
    return;
  }
  Version v;
  v.creator = txn;
  v.tombstone = true;
  Append(e, std::move(v));
}

bool HashVersionStore::HasPendingWrite(const ItemId& id, TxnId txn) const {
  const ItemEntry* e = Find(id);
  return e != nullptr && OwnPending(*e, txn) != nullptr;
}

bool HashVersionStore::HasConcurrentPendingWrite(const ItemId& id,
                                                 TxnId txn) const {
  const ItemEntry* e = Find(id);
  if (e == nullptr) return false;
  auto other_pending = [txn](const Version& v) {
    return !v.committed() && v.creator != txn;
  };
  for (uint32_t i = 0; i < e->hot_count; ++i) {
    if (other_pending(e->hot[i])) return true;
  }
  for (const Version& v : e->cold) {
    if (other_pending(v)) return true;
  }
  return false;
}

Timestamp HashVersionStore::LatestCommitTs(const ItemId& id) const {
  const ItemEntry* e = Find(id);
  if (e == nullptr) return kInvalidTimestamp;
  Timestamp best = kInvalidTimestamp;
  for (uint32_t i = 0; i < e->hot_count; ++i) {
    const Version& v = e->hot[i];
    if (v.committed() && v.commit_ts > best) best = v.commit_ts;
  }
  for (const Version& v : e->cold) {
    if (v.committed() && v.commit_ts > best) best = v.commit_ts;
  }
  return best;
}

void HashVersionStore::CommitTxn(TxnId txn, Timestamp commit_ts,
                                 const std::set<ItemId>& items) {
  for (const ItemId& id : items) {
    const uint32_t e = FindEntry(id, HashId(id));
    if (e == kEmptySlot) continue;
    while (Version* own = OwnPending(entries_[e], txn)) {
      own->commit_ts = commit_ts;
    }
  }
}

void HashVersionStore::CommitTxnScan(TxnId txn, Timestamp commit_ts) {
  for (ItemEntry& e : entries_) {
    if (!e.live) continue;
    while (Version* own = OwnPending(e, txn)) own->commit_ts = commit_ts;
  }
}

void HashVersionStore::AbortTxn(TxnId txn, const std::set<ItemId>& items) {
  for (const ItemId& id : items) {
    const uint64_t fp = HashId(id);
    const uint32_t e = FindEntry(id, fp);
    if (e == kEmptySlot) continue;
    (void)DropPending(entries_[e], txn);
    // A chain the abort emptied (an aborted insert of a fresh item) is
    // retired so the key stops occupying the index.
    if (entries_[e].chain_size() == 0) EraseEntry(id, fp);
  }
}

void HashVersionStore::AbortTxnScan(TxnId txn) {
  // Hint-free contract (matches the reference backend): pending versions
  // go, but emptied chains stay until GC or a hinted abort retires them.
  for (ItemEntry& e : entries_) {
    if (e.live) (void)DropPending(e, txn);
  }
}

std::vector<std::pair<ItemId, Row>> HashVersionStore::Scan(
    const Predicate& pred, Timestamp ts, TxnId txn) const {
  std::vector<std::pair<ItemId, Row>> out;
  for (const ItemEntry& e : entries_) {
    if (!e.live) continue;
    const Version* v = VisibleIn(e, ts, txn);
    if (v == nullptr || v->tombstone) continue;
    if (pred.Covers(e.id, v->row)) out.emplace_back(e.id, v->row);
  }
  // The physical layout is hashed; the SPI promises key order.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

size_t HashVersionStore::GarbageCollect(Timestamp watermark) {
  size_t dropped = 0;
  for (uint32_t idx = 0; idx < entries_.size(); ++idx) {
    ItemEntry& e = entries_[idx];
    if (!e.live) continue;
    // Newest committed version at or below the watermark must survive.
    Timestamp keep_ts = kInvalidTimestamp;
    auto note = [&](const Version& v) {
      if (v.committed() && v.commit_ts <= watermark && v.commit_ts > keep_ts) {
        keep_ts = v.commit_ts;
      }
    };
    for (uint32_t i = 0; i < e.hot_count; ++i) note(e.hot[i]);
    for (const Version& v : e.cold) note(v);

    auto obsolete = [&](const Version& v) {
      return v.committed() && v.commit_ts < keep_ts;
    };
    bool any = false;
    for (uint32_t i = 0; i < e.hot_count && !any; ++i) any = obsolete(e.hot[i]);
    for (size_t i = 0; i < e.cold.size() && !any; ++i) any = obsolete(e.cold[i]);
    if (any) {
      std::vector<Version> chain = e.cold;
      for (uint32_t i = 0; i < e.hot_count; ++i) chain.push_back(e.hot[i]);
      const size_t before = chain.size();
      chain.erase(std::remove_if(chain.begin(), chain.end(), obsolete),
                  chain.end());
      dropped += before - chain.size();
      SetChain(e, std::move(chain));
    }
    // A lone committed tombstone at/below the watermark reads exactly like
    // an absent item at every surviving snapshot: retire the whole chain —
    // this is where the watermark acts as the table's generation counter.
    if (e.chain_size() == 1 && e.hot_count == 1 && e.hot[0].committed() &&
        e.hot[0].tombstone && e.hot[0].commit_ts <= watermark) {
      ++dropped;
      EraseEntry(e.id, e.fp);
    }
  }
  return dropped;
}

size_t HashVersionStore::VersionCount() const {
  size_t n = 0;
  for (const ItemEntry& e : entries_) {
    if (e.live) n += e.chain_size();
  }
  return n;
}

size_t HashVersionStore::MaxChainLength() const {
  size_t n = 0;
  for (const ItemEntry& e : entries_) {
    if (e.live) n = std::max(n, e.chain_size());
  }
  return n;
}

std::vector<Version> HashVersionStore::Chain(const ItemId& id) const {
  const ItemEntry* e = Find(id);
  if (e == nullptr) return {};
  std::vector<Version> out = e->cold;
  for (uint32_t i = 0; i < e->hot_count; ++i) out.push_back(e->hot[i]);
  return out;
}

}  // namespace critique
