#include "critique/storage/mv_store.h"

#include <algorithm>

namespace critique {

void MapVersionStore::Bootstrap(const ItemId& id, Row row, Timestamp ts) {
  Version v;
  v.row = std::move(row);
  v.creator = kInitialTxn;
  v.commit_ts = ts;
  chains_[id].push_back(std::move(v));
}

const Version* MapVersionStore::Visible(const ItemId& id, Timestamp ts,
                                          TxnId txn) const {
  auto it = chains_.find(id);
  if (it == chains_.end()) return nullptr;
  const auto& chain = it->second;
  // Own pending version wins ("the transaction's writes will be reflected
  // in this snapshot").
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    if (!rit->committed() && rit->creator == txn) return &*rit;
  }
  // Latest committed version at or before the snapshot.
  const Version* best = nullptr;
  for (const auto& v : chain) {
    if (!v.committed() || v.commit_ts > ts) continue;
    if (!best || v.commit_ts > best->commit_ts) best = &v;
  }
  return best;
}

std::optional<Row> MapVersionStore::Read(const ItemId& id, Timestamp ts,
                                           TxnId txn) const {
  const Version* v = Visible(id, ts, txn);
  if (!v || v->tombstone) return std::nullopt;
  return v->row;
}

std::optional<Version> MapVersionStore::ReadVersionInfo(const ItemId& id,
                                                          Timestamp ts,
                                                          TxnId txn) const {
  const Version* v = Visible(id, ts, txn);
  if (!v) return std::nullopt;
  return *v;
}

void MapVersionStore::Write(const ItemId& id, Row row, TxnId txn) {
  auto& chain = chains_[id];
  for (auto& v : chain) {
    if (!v.committed() && v.creator == txn) {
      v.row = std::move(row);
      v.tombstone = false;
      return;
    }
  }
  Version v;
  v.row = std::move(row);
  v.creator = txn;
  chain.push_back(std::move(v));
}

void MapVersionStore::Delete(const ItemId& id, TxnId txn) {
  auto& chain = chains_[id];
  for (auto& v : chain) {
    if (!v.committed() && v.creator == txn) {
      v.tombstone = true;
      return;
    }
  }
  Version v;
  v.creator = txn;
  v.tombstone = true;
  chain.push_back(std::move(v));
}

bool MapVersionStore::HasPendingWrite(const ItemId& id, TxnId txn) const {
  auto it = chains_.find(id);
  if (it == chains_.end()) return false;
  for (const auto& v : it->second) {
    if (!v.committed() && v.creator == txn) return true;
  }
  return false;
}

bool MapVersionStore::HasConcurrentPendingWrite(const ItemId& id,
                                                  TxnId txn) const {
  auto it = chains_.find(id);
  if (it == chains_.end()) return false;
  for (const auto& v : it->second) {
    if (!v.committed() && v.creator != txn) return true;
  }
  return false;
}

Timestamp MapVersionStore::LatestCommitTs(const ItemId& id) const {
  auto it = chains_.find(id);
  if (it == chains_.end()) return kInvalidTimestamp;
  Timestamp best = kInvalidTimestamp;
  for (const auto& v : it->second) {
    if (v.committed() && v.commit_ts > best) best = v.commit_ts;
  }
  return best;
}

void MapVersionStore::CommitTxnScan(TxnId txn, Timestamp commit_ts) {
  for (auto& [id, chain] : chains_) {
    (void)id;
    for (auto& v : chain) {
      if (!v.committed() && v.creator == txn) v.commit_ts = commit_ts;
    }
  }
}

void MapVersionStore::CommitTxn(TxnId txn, Timestamp commit_ts,
                                  const std::set<ItemId>& items) {
  for (const ItemId& id : items) {
    auto it = chains_.find(id);
    if (it == chains_.end()) continue;
    for (auto& v : it->second) {
      if (!v.committed() && v.creator == txn) v.commit_ts = commit_ts;
    }
  }
}

void MapVersionStore::AbortTxnScan(TxnId txn) {
  for (auto& [id, chain] : chains_) {
    (void)id;
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const Version& v) {
                                 return !v.committed() && v.creator == txn;
                               }),
                chain.end());
  }
}

void MapVersionStore::AbortTxn(TxnId txn, const std::set<ItemId>& items) {
  for (const ItemId& id : items) {
    auto it = chains_.find(id);
    if (it == chains_.end()) continue;
    auto& chain = it->second;
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const Version& v) {
                                 return !v.committed() && v.creator == txn;
                               }),
                chain.end());
    if (chain.empty()) chains_.erase(it);
  }
}

std::vector<std::pair<ItemId, Row>> MapVersionStore::Scan(
    const Predicate& pred, Timestamp ts, TxnId txn) const {
  std::vector<std::pair<ItemId, Row>> out;
  for (const auto& [id, chain] : chains_) {
    (void)chain;
    const Version* v = Visible(id, ts, txn);
    if (!v || v->tombstone) continue;
    if (pred.Covers(id, v->row)) out.emplace_back(id, v->row);
  }
  return out;
}

size_t MapVersionStore::GarbageCollect(Timestamp watermark) {
  size_t dropped = 0;
  for (auto it = chains_.begin(); it != chains_.end();) {
    auto& chain = it->second;
    // Newest committed version at or below the watermark must survive.
    Timestamp keep_ts = kInvalidTimestamp;
    for (const auto& v : chain) {
      if (v.committed() && v.commit_ts <= watermark && v.commit_ts > keep_ts) {
        keep_ts = v.commit_ts;
      }
    }
    auto obsolete = [&](const Version& v) {
      return v.committed() && v.commit_ts < keep_ts;
    };
    size_t before = chain.size();
    chain.erase(std::remove_if(chain.begin(), chain.end(), obsolete),
                chain.end());
    dropped += before - chain.size();
    // A lone committed tombstone at/below the watermark reads exactly like
    // an absent item at every surviving snapshot: drop the whole chain.
    if (chain.size() == 1 && chain[0].committed() && chain[0].tombstone &&
        chain[0].commit_ts <= watermark) {
      ++dropped;
      it = chains_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

size_t MapVersionStore::VersionCount() const {
  size_t n = 0;
  for (const auto& [id, chain] : chains_) {
    (void)id;
    n += chain.size();
  }
  return n;
}

size_t MapVersionStore::MaxChainLength() const {
  size_t n = 0;
  for (const auto& [id, chain] : chains_) {
    (void)id;
    n = std::max(n, chain.size());
  }
  return n;
}

std::vector<Version> MapVersionStore::Chain(const ItemId& id) const {
  auto it = chains_.find(id);
  if (it == chains_.end()) return {};
  return it->second;
}

}  // namespace critique
