#include "critique/storage/version_store.h"

#include "critique/storage/hash_store.h"
#include "critique/storage/mv_store.h"

namespace critique {

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kMap:
      return "map";
    case StorageBackend::kHash:
      return "hash";
  }
  return "unknown";
}

std::optional<StorageBackend> ParseStorageBackend(const std::string& token) {
  if (token == "map") return StorageBackend::kMap;
  if (token == "hash") return StorageBackend::kHash;
  return std::nullopt;
}

const std::vector<StorageBackend>& AllStorageBackends() {
  static const std::vector<StorageBackend> kAll = {StorageBackend::kMap,
                                                   StorageBackend::kHash};
  return kAll;
}

std::unique_ptr<VersionStore> MakeVersionStore(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kHash:
      return std::make_unique<HashVersionStore>();
    case StorageBackend::kMap:
      break;
  }
  return std::make_unique<MapVersionStore>();
}

}  // namespace critique
