#ifndef CRITIQUE_DB_DATABASE_H_
#define CRITIQUE_DB_DATABASE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "critique/check/online_checker.h"
#include "critique/common/clock.h"
#include "critique/common/random.h"
#include "critique/db/retry_policy.h"
#include "critique/db/transaction.h"
#include "critique/engine/engine.h"
#include "critique/engine/isolation.h"
#include "critique/obs/metrics.h"
#include "critique/obs/txn_trace.h"
#include "critique/wal/commit_log.h"
#include "critique/wal/recovery.h"

namespace critique {

/// The engine SPI hook: produces the implementation a `Database` runs on.
/// Defaults to the built-in factory for `DbOptions::isolation`; supply your
/// own to plug in a custom engine (ablations, instrumented engines,
/// future backends) without clients noticing.
using EngineFactory = std::function<std::unique_ptr<Engine>()>;

/// How sessions resolve lock conflicts (see `Database` thread-safety
/// notes).
enum class ConcurrencyMode {
  /// Cooperative protocol: conflicting operations answer `kWouldBlock`
  /// and the caller decides when to retry — the step-wise `Runner` on one
  /// thread (the default, and the mode every paper schedule runs under),
  /// or the `SessionExecutor`, which multiplexes many parked sessions
  /// over a few workers and retries on lock-release wakeups
  /// (`SetLockWakeupHook`).  The "one session per thread at a time"
  /// contract from the thread-safety notes applies unchanged: handles may
  /// hop threads between steps, they just cannot be driven from two at
  /// once.
  kCooperative,
  /// Thread-safe blocking protocol: conflicting operations park the
  /// calling thread in the lock manager (deadlock detection + lock-wait
  /// timeout) while other sessions keep running.  Drive one `Database`
  /// from as many threads as you like, one transaction per thread.
  kBlocking,
};

/// \brief Construction-time configuration of a `Database` session facade.
struct DbOptions {
  DbOptions() = default;
  /// Convenience: options for a stock engine at `level`.
  explicit DbOptions(IsolationLevel level) : isolation(level) {}

  /// Which stock engine to build when `engine_factory` is not set.
  IsolationLevel isolation = IsolationLevel::kSerializable;

  /// Engine SPI: overrides `isolation` when set.
  EngineFactory engine_factory;

  /// Client-side retry protocol; null selects `DefaultRetryPolicy()`.
  std::shared_ptr<const RetryPolicy> retry_policy;

  /// Seed of the facade's deterministic RNG (schedule shuffles, jitter).
  uint64_t seed = 1;

  /// Lock-conflict handling; `kBlocking` makes the database safe to drive
  /// from many threads at once.
  ConcurrencyMode mode = ConcurrencyMode::kCooperative;

  /// Blocking mode only: how long one lock wait may last before it is
  /// answered `kWouldBlock` ("lock wait timeout") and surfaces to the
  /// retry protocol as an ordinary retryable failure.
  std::chrono::milliseconds lock_wait_timeout{250};

  /// Blocking mode only: how often a parked lock waiter re-runs deadlock
  /// detection even when no lock-release notification woke it — the bound
  /// on how long a deadlock formed while threads sleep can go unnoticed.
  /// Smaller values detect cross-session cycles sooner at the cost of more
  /// wake-ups.
  std::chrono::milliseconds deadlock_check_interval{50};

  /// How many independently latched buckets the engine's lock table is
  /// hash-partitioned into (lock-based engines; 1 = one global table).
  /// Applies in both concurrency modes.
  size_t lock_stripes = LockManager::kDefaultStripes;

  /// Version garbage collection for multiversion engines.  The default
  /// `kRetainAll` keeps every version (exact `BeginAtTimestamp` time
  /// travel, full diagnostic chains); `kWatermark` prunes versions no
  /// live or future snapshot can observe, every `version_gc_interval`
  /// commits, and refuses time travel below the collected floor.
  VersionGcMode version_gc = VersionGcMode::kRetainAll;

  /// kWatermark only: commits between automatic GC passes.
  uint32_t version_gc_interval = 64;

  /// Which `VersionStore` backend multiversion engines run on: `kMap`
  /// (the ordered reference backend, the default) or `kHash` (the
  /// cache-conscious open-addressing backend).  Observable behavior is
  /// identical — the conformance battery holds every backend to the
  /// reference answers; only the cost profile changes.  Single-version
  /// engines (the locking levels) ignore it.
  StorageBackend storage_backend = StorageBackend::kMap;

  // --- durability ----------------------------------------------------------

  /// Write-ahead-log file.  Empty (the default) runs the engine purely in
  /// memory, the historical behavior.  Non-empty: the constructor starts a
  /// FRESH log (truncating any existing file — an explicit "new database");
  /// to restart from an existing log use `Database::Recover`.
  std::string wal_path;

  /// Group commit (leader/follower batching): many concurrent committers
  /// share one physical sync.  Off, every committer pays its own sync.
  bool group_commit = false;

  /// What a physical sync does: kFlush (fwrite+fflush, real-file
  /// durability), kSimulated (flush + `fsync_latency` sleep, the honest
  /// device model benches use), kNone (ack before durable).
  FsyncMode fsync_mode = FsyncMode::kFlush;

  /// kSimulated only: modeled device latency per physical sync.
  /// (kFsync — real fsync(2)/fdatasync per physical sync, power-loss
  /// durability — is also selectable here; see `FsyncMode`.)
  std::chrono::microseconds fsync_latency{25};

  // --- online certification ------------------------------------------------

  /// Opt-in online MVSG certification: the facade owns an
  /// `check::OnlineChecker` fed from the engine recorder's action
  /// observer, maintaining the multiversion serialization graph as
  /// commits stream in and judging every transaction against its
  /// declared isolation level (`BeginOptions::level`).  Read the verdict
  /// any time with `Database::checker()->Report()`; counters also appear
  /// in the metrics registry under "check.".  Off by default — the
  /// observer is never installed and the engine hot path is untouched.
  /// (`BeginAtTimestamp` time travel below the checker's pruned horizon
  /// is not certified: such reads are skipped, never misjudged.)
  bool online_check = false;

  /// online_check only: ingested commits between automatic watermark
  /// prune passes (bounds checker memory; `GarbageCollectVersions` also
  /// triggers one).  0 disables automatic pruning.
  uint32_t online_check_prune_interval = 256;

  // --- observability -------------------------------------------------------

  /// Transaction-tracing ring capacity in events; 0 (the default)
  /// disables tracing entirely.  When nonzero the facade owns an
  /// `obs::TxnTracer`, the engine records begin/prepare/commit/abort
  /// events (aborts tagged with the paper-taxonomy reason), and the
  /// `SessionExecutor` adds park/wakeup events; dump any transaction's
  /// events with `Database::tracer()->Format(txn)`.  The always-on
  /// metrics registry (`Database::metrics()`) is independent of this
  /// knob.
  size_t trace_events = 0;
};

/// \brief Per-transaction begin-time declarations (the paper's Table 4
/// reading: isolation is a contract each transaction picks for itself).
struct BeginOptions {
  /// The isolation level this transaction declares.  Unset runs at the
  /// engine's own level.  A set level is handed to the engine SPI
  /// (`Engine::BeginWithLevel`), which refuses contracts it cannot honor
  /// — the SI engine runs Read Committed / Snapshot Isolation (and, when
  /// built with SSI, Serializable-SI) transactions side by side; the
  /// locking engine honors any Table 2 lock protocol per transaction.
  /// The online checker, when enabled, judges the transaction against
  /// this declared level.
  std::optional<IsolationLevel> level;
};

/// \brief The public session facade over the engine SPI.
///
/// The paper's central argument is that isolation levels must be judged by
/// the histories an engine actually produces; for that, every client —
/// runner, harness, examples, benches — has to drive engines uniformly and
/// record histories identically.  `Database` owns one engine instance
/// (built through the SPI factory), hands out move-only RAII `Transaction`
/// handles with auto-assigned ids, and centralizes the retry protocol that
/// callers used to hand-roll around `kWouldBlock` / `kDeadlock` /
/// `kSerializationFailure`.
///
/// Two driving styles coexist:
///
///  * `Execute(body)` — the closure style real MVCC stores expose: run the
///    body in a fresh transaction, commit, and on a retryable failure roll
///    back and re-run under the `RetryPolicy`;
///  * `Begin()` / `BeginWithId(t)` — explicit session handles for the
///    paper's step-wise interleavings (the `Runner` path), where the
///    schedule, not a policy, decides who advances.
///
/// Thread-safety guarantees (`ConcurrencyMode::kBlocking`):
///
///  * `Begin`, `BeginAtTimestamp`, `Execute`, `ForkRng`, and every
///    `Transaction` operation are safe to call from any thread, provided
///    each `Transaction` handle is driven by one thread at a time (the
///    universal "one session per thread" contract).  Transaction ids, the
///    open-transaction count, and the `execute_retries` counter are
///    atomic; the engines serialize operation bodies internally and park
///    lock waits outside their latches.
///  * `rng()` hands out the facade's single deterministic RNG and is NOT
///    synchronized: it belongs to the cooperative single-threaded style
///    (the `Runner` path).  Concurrent workers call `ForkRng()` once per
///    thread instead, which derives an independent deterministic stream
///    under an internal mutex.
///  * `history()` / `stats()` are cheap reference views for quiescent
///    callers (no sessions in flight); while threads are mid-transaction
///    use `HistorySnapshot()` / `StatsSnapshot()`.
///  * Construction, destruction, and moves are not thread-safe; finish
///    all sessions first (moves assert no transaction is open).
///
/// In the default `kCooperative` mode conflicting operations answer
/// `kWouldBlock` for the caller to retry.  The classic driver is the
/// single-threaded `Runner`; the same "one session per thread at a time"
/// contract also makes multi-worker cooperative driving safe — the
/// `SessionExecutor` (sched layer) moves parked sessions between worker
/// threads, each handle still touched by exactly one thread at any
/// moment.
///
/// Movable (so factories can return one by value) but must not be moved
/// while transactions are open — open `Transaction` handles point back at
/// their database, so the move operations assert none exist; not copyable.
class Database {
 public:
  /// A serializable-by-default database.
  Database() : Database(DbOptions()) {}
  /// A database running the stock engine for `level`.
  explicit Database(IsolationLevel level) : Database(DbOptions(level)) {}
  /// Requires that the engine factory (or the built-in one for
  /// `options.isolation`) produces a non-null engine; aborts with a
  /// diagnostic otherwise (in every build type).
  explicit Database(DbOptions options);

  /// A database over an already-built engine (the non-factory SPI form);
  /// `options.engine_factory` and `options.isolation` are ignored.
  /// `engine` must be non-null.
  Database(std::unique_ptr<Engine> engine, DbOptions options);

  /// Restart recovery: reads the WAL at `options.wal_path` (required),
  /// replays its intact prefix into a fresh engine (committed transactions
  /// roll forward; prepared-but-undecided participants are re-frozen in
  /// doubt for `RecoverInDoubt` / presumed abort), truncates any torn
  /// tail, and reopens the log for appending — the recovered database logs
  /// onward into the same file.  Fails on a log the engine refuses to
  /// replay (corruption past the CRC layer) or on I/O errors; a missing
  /// file is an empty log (first boot), not an error.
  static Result<Database> Recover(DbOptions options);

  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Engine display name ("Locking READ COMMITTED (Degree 2)", ...).
  std::string name() const { return engine_->name(); }

  /// The isolation level the underlying engine implements.
  IsolationLevel level() const { return engine_->level(); }

  /// The lock-conflict handling mode this database was built with.
  ConcurrencyMode mode() const { return mode_; }

  /// Loads an initial row before any transaction begins (bootstrap only).
  /// With a WAL attached the load is also logged, as a `kLoad` record
  /// (buffered; durable with the next sync or clean shutdown): a
  /// redo-only log must carry the bootstrap state too, or `Recover`
  /// would rebuild a database missing every row no transaction ever
  /// rewrote — the log doubles as the checkpoint this scheme never takes.
  Status Load(const ItemId& id, Row row);

  /// Loads an initial scalar item.
  Status Load(const ItemId& id, Value v) {
    return Load(id, Row::Scalar(std::move(v)));
  }

  /// Starts a transaction with the next free id.
  Transaction Begin();

  /// Starts a transaction with the next free id under a per-transaction
  /// declaration.  Fails (FailedPrecondition) when the engine cannot
  /// honor the declared level — the contract is never silently adjusted.
  Result<Transaction> Begin(const BeginOptions& opts);

  /// Starts a transaction with an explicit id — the manual-interleaving
  /// path for the paper's schedules, where "T1" must be history subscript
  /// 1.  Fails on id reuse.  Sessions begun this way surface `kWouldBlock`
  /// immediately, bypassing the policy's op-level retry budget: the
  /// schedule (e.g. the `Runner`), not the `RetryPolicy`, decides when a
  /// blocked step runs again.
  Result<Transaction> BeginWithId(TxnId id);

  /// The explicit-id begin with a per-transaction declaration — manual
  /// interleavings over mixed-level populations.
  Result<Transaction> BeginWithId(TxnId id, const BeginOptions& opts);

  /// Time travel (Section 4.2): a transaction reading the historical
  /// snapshot `ts`.  FailedPrecondition unless the engine is multiversion
  /// with timestamped snapshots (Snapshot Isolation / SSI).
  Result<Transaction> BeginAtTimestamp(Timestamp ts);

  /// The latest committed snapshot timestamp, when the engine keeps one.
  std::optional<Timestamp> CurrentTimestamp() const;

  /// Runs `body` in a fresh transaction and commits it (unless the body
  /// already finished the transaction itself).  On a retryable failure —
  /// lock timeout, deadlock victim, First-Committer-Wins / SSI refusal —
  /// rolls back and re-runs the body while the `RetryPolicy` allows.
  /// Returns the first non-retryable status, or the last failure when
  /// retries are exhausted.
  Status Execute(const std::function<Status(Transaction&)>& body);

  /// `Execute` under a per-transaction declaration: every attempt (and
  /// retry) begins with `opts`.
  Status Execute(const BeginOptions& opts,
                 const std::function<Status(Transaction&)>& body);

  /// How many times `Execute` re-ran a body after a retryable failure
  /// (across all threads).
  uint64_t execute_retries() const {
    return execute_retries_.load(std::memory_order_relaxed);
  }

  /// The history recorded by the engine so far (quiescent view; see the
  /// thread-safety notes).
  const History& history() const { return engine_->history(); }

  /// Engine operation counters (quiescent view).
  const EngineStats& stats() const { return engine_->stats(); }

  /// Copies safe to take while sessions are in flight.
  History HistorySnapshot() const { return engine_->HistorySnapshot(); }
  EngineStats StatsSnapshot() const { return engine_->StatsSnapshot(); }

  /// The retry protocol in force.
  const RetryPolicy& retry_policy() const { return *retry_; }

  /// The facade's deterministic RNG (seeded from `DbOptions::seed`).
  /// Cooperative single-threaded use only — concurrent workers take a
  /// `ForkRng()` stream each instead.
  Rng& rng() { return rng_; }

  /// Derives an independent deterministic RNG stream from the facade RNG
  /// (mutex-guarded; safe from any thread).  Typical use: one fork per
  /// worker thread, taken before or after — never during — a run.
  Rng ForkRng();

  /// Installs (or, with nullptr, removes) the lock-release wakeup hook on
  /// the underlying engine (`EngineConcurrency::lock_wakeup`): in
  /// cooperative mode, every operation that answers `kWouldBlock` first
  /// registers its transaction for exactly one wakeup, and the hook fires
  /// with that TxnId once a conflicting lock is released — the event a
  /// scheduler parks the session on instead of polling.  Engines without
  /// a lock table ignore it.  Must be called while no transaction is open
  /// (aborts otherwise); the hook runs on releasing threads and must only
  /// enqueue the id, never call back into this database.
  void SetLockWakeupHook(std::function<void(TxnId)> hook);

  /// SPI escape hatch for engine-specific maintenance and tests.  Clients
  /// of the session API should not need it.
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

  /// Open (still-active) transaction handles pointing at this database.
  int open_transactions() const {
    return open_txns_.load(std::memory_order_relaxed);
  }

  // --- version garbage collection ------------------------------------------
  //
  // The facade tracks every open transaction's begin timestamp (for
  // timestamped engines), so the version-GC low-watermark — the oldest
  // snapshot any live session can still read — is observable here without
  // reaching into the engine.  The engine derives the same watermark from
  // its own transaction table when it prunes; the facade view exists for
  // observability, tests, and operators.

  /// The begin timestamp of the oldest still-open transaction (a lower
  /// bound on every open snapshot), or the engine's current timestamp
  /// when none are open; nullopt for engines without timestamps.
  std::optional<Timestamp> OldestOpenSnapshot() const;

  /// Runs one version-GC pass on the engine now (any mode); returns the
  /// number of versions discarded (0 for single-version engines).  With
  /// online certification enabled the checker runs a watermark prune
  /// pass alongside — its graph horizon is tied to version GC.
  size_t GarbageCollectVersions() {
    size_t n = engine_->GarbageCollectVersions();
    if (checker_ != nullptr) checker_->Prune();
    return n;
  }

  /// Stored version count (0 for single-version engines).
  size_t VersionCount() const { return engine_->VersionCount(); }

  // --- durability ----------------------------------------------------------

  /// The commit log, or nullptr when running without a WAL.
  CommitLog* wal() { return wal_.get(); }
  const CommitLog* wal() const { return wal_.get(); }

  /// True when this database came from `Recover` (vs a fresh log).
  bool recovered() const { return recovered_; }

  /// What recovery replayed (all-zero for a fresh database).
  const WalRecoveryStats& wal_recovery() const { return wal_recovery_; }

  // --- observability -------------------------------------------------------

  /// The always-on metrics registry: the engine's counters and stage
  /// histograms register under "engine.", the commit log's under "wal.",
  /// and a `SessionExecutor` adds "executor." entries while it lives.
  /// Export with `metrics().ToJson()` / `ToText()`.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// The transaction tracer, or nullptr unless `DbOptions::trace_events`
  /// was nonzero.
  obs::TxnTracer* tracer() { return tracer_.get(); }
  const obs::TxnTracer* tracer() const { return tracer_.get(); }

  /// The online MVSG checker, or nullptr unless `DbOptions::online_check`
  /// was set.  `checker()->Report()` is the live certification verdict.
  check::OnlineChecker* checker() { return checker_.get(); }
  const check::OnlineChecker* checker() const { return checker_.get(); }

  /// Stall introspection: open-transaction census (ids with begin
  /// timestamps where tracked) plus the engine's own dump — lock holders,
  /// waiters, and waits-for edges for lock-based engines.  Safe to call
  /// from any thread while sessions are parked mid-conflict; this is the
  /// "why is nothing moving?" snapshot.
  std::string DebugDump() const;

 private:
  friend class Transaction;

  /// Open-snapshot registry upkeep (timestamped engines only).
  void RegisterSnapshot(TxnId id, Timestamp begin_ts);
  void ForgetSnapshot(TxnId id);

  /// Attaches a freshly built commit log and points the engine at it.
  void AttachWal(WalWriter writer, const DbOptions& options);

  /// Builds the metrics registry (and the tracer, when opted in) and
  /// hands both to the engine.  Constructor-only.
  void WireObservability(const DbOptions& options);

  std::unique_ptr<Engine> engine_;
  /// Heap-allocated so the engine's raw `WalSink*` stays stable across
  /// facade moves.  Destroyed (flushing cleanly) before the engine, which
  /// is quiescent by then and never logs from its destructor.
  std::unique_ptr<CommitLog> wal_;
  /// Heap-allocated like `wal_`: the engine / commit log hold raw
  /// pointers into these, which must survive facade moves.  The registry
  /// always exists; the tracer only when `DbOptions::trace_events` > 0.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::TxnTracer> tracer_;
  /// Heap-allocated for the same pointer-stability reason: the engine's
  /// recorder observer captures the raw checker pointer.
  std::unique_ptr<check::OnlineChecker> checker_;
  WalRecoveryStats wal_recovery_;
  bool recovered_ = false;
  std::shared_ptr<const RetryPolicy> retry_;
  ConcurrencyMode mode_ = ConcurrencyMode::kCooperative;
  std::mutex rng_mu_;  ///< guards rng_ for ForkRng
  Rng rng_;
  std::atomic<TxnId> next_id_{1};
  std::atomic<uint64_t> execute_retries_{0};
  std::atomic<int> open_txns_{0};
  /// Whether the engine keeps timestamped snapshots (decided once at
  /// construction; snapshot tracking is skipped entirely otherwise).
  bool track_snapshots_ = false;
  mutable std::mutex snap_mu_;  ///< guards open_snapshots_
  std::map<TxnId, Timestamp> open_snapshots_;
};

}  // namespace critique

#endif  // CRITIQUE_DB_DATABASE_H_
