#ifndef CRITIQUE_DB_RETRY_POLICY_H_
#define CRITIQUE_DB_RETRY_POLICY_H_

#include <chrono>
#include <memory>
#include <string>

#include "critique/common/status.h"

namespace critique {

/// True for the statuses an engine uses to ask the client to try again:
/// lock waits (`kWouldBlock`), deadlock-victim aborts (`kDeadlock`) and
/// FCW / FWW / SSI refusals (`kSerializationFailure`).  Everything else
/// (NotFound, InvalidArgument, ...) is a semantic answer, never retried.
bool IsRetryableStatus(const Status& s);

/// \brief Pluggable client-side retry protocol for the `Database` facade.
///
/// The paper's engines are cooperative: they answer `kWouldBlock` instead
/// of parking a thread, abort deadlock victims, and refuse snapshot
/// conflicts at commit.  Every client used to re-implement the resulting
/// retry protocol by hand; the policy centralizes both halves of it:
///
///  * *operation-level* — whether `Transaction` should immediately re-issue
///    an operation answered `kWouldBlock` (useful once other sessions can
///    progress concurrently; pointless — and defaulted off — in the
///    single-threaded cooperative model, where the `Runner` interleaves
///    blocked steps across transactions instead);
///  * *transaction-level* — whether `Database::Execute` should roll back
///    and re-run a transaction body that failed with a retryable status,
///    the restart loop every real MVCC store asks applications to write.
class RetryPolicy {
 public:
  virtual ~RetryPolicy() = default;

  /// Display name ("no-retry", "limited(8)").
  virtual std::string name() const = 0;

  /// Re-issue an operation answered `kWouldBlock`?  `attempt` is the
  /// number of tries already made (>= 1).
  virtual bool RetryBlockedOp(int attempt) const = 0;

  /// Re-run an `Execute` body whose attempt failed with retryable status
  /// `s`?  `attempt` is the number of body runs already made (>= 1).
  virtual bool RetryTransaction(const Status& s, int attempt) const = 0;

  /// How long `Execute` should sleep before re-running the body after
  /// `attempt` failed runs (>= 1).  Zero — the default — restarts
  /// immediately; backoff policies override it to shed contention.
  virtual std::chrono::microseconds RetryDelay(int attempt) const {
    (void)attempt;
    return std::chrono::microseconds::zero();
  }
};

/// Never retries anything: every status surfaces to the caller unchanged.
/// The policy the step-wise `Runner` path relies on.
class NoRetryPolicy : public RetryPolicy {
 public:
  std::string name() const override { return "no-retry"; }
  bool RetryBlockedOp(int) const override { return false; }
  bool RetryTransaction(const Status&, int) const override { return false; }
};

/// Retries retryable failures a bounded number of times.
class LimitedRetryPolicy : public RetryPolicy {
 public:
  explicit LimitedRetryPolicy(int max_txn_retries = 8,
                              int max_blocked_op_retries = 0)
      : max_txn_retries_(max_txn_retries),
        max_blocked_op_retries_(max_blocked_op_retries) {}

  std::string name() const override;

  bool RetryBlockedOp(int attempt) const override {
    return attempt <= max_blocked_op_retries_;
  }
  bool RetryTransaction(const Status& s, int attempt) const override {
    return IsRetryableStatus(s) && attempt <= max_txn_retries_;
  }

  int max_txn_retries() const { return max_txn_retries_; }
  int max_blocked_op_retries() const { return max_blocked_op_retries_; }

 private:
  int max_txn_retries_;
  int max_blocked_op_retries_;
};

/// A `LimitedRetryPolicy` that sleeps exponentially longer before each
/// body restart: `base * 2^(attempt-1)`, saturating at `cap`.  The delay
/// sequence is deterministic and non-decreasing — the property the retry
/// tests assert — and bounded, so a retry storm under heavy contention
/// degrades into a paced trickle instead of a spin.
class ExponentialBackoffRetryPolicy : public LimitedRetryPolicy {
 public:
  explicit ExponentialBackoffRetryPolicy(
      int max_txn_retries = 8,
      std::chrono::microseconds base = std::chrono::microseconds(100),
      std::chrono::microseconds cap = std::chrono::milliseconds(10))
      : LimitedRetryPolicy(max_txn_retries),
        base_(base < std::chrono::microseconds::zero()
                  ? std::chrono::microseconds::zero()
                  : base),
        cap_(cap < base_ ? base_ : cap) {}

  std::string name() const override;

  std::chrono::microseconds RetryDelay(int attempt) const override;

  std::chrono::microseconds base() const { return base_; }
  std::chrono::microseconds cap() const { return cap_; }

 private:
  std::chrono::microseconds base_;
  std::chrono::microseconds cap_;
};

/// The default: `LimitedRetryPolicy(8, 0)` — restart aborted transaction
/// bodies up to 8 times, never spin on a blocked operation.
std::shared_ptr<const RetryPolicy> DefaultRetryPolicy();

}  // namespace critique

#endif  // CRITIQUE_DB_RETRY_POLICY_H_
